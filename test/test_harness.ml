(* Tests for the experiment harness: the Fenwick rank oracle, the spec
   parser, report formatting, and smoke runs of the throughput / quality /
   SSSP drivers on tiny configurations. *)

open Helpers
module Oracle = Klsm_harness.Oracle
module Report = Klsm_harness.Report
module Sim = Klsm_backend.Sim
module R = Klsm_harness.Registry.Make (Sim)
module T = Klsm_harness.Throughput.Make (Sim)
module Q = Klsm_harness.Quality.Make (Sim)

(* ---------------- oracle (Fenwick rank multiset) ---------------- *)

(* Naive reference multiset with the same interface. *)
module Naive = struct
  type t = int list ref

  let create () = ref []
  let insert t k = t := k :: !t
  let rank_below t k = List.length (List.filter (fun x -> x < k) !t)

  let delete t k =
    let r = rank_below t k in
    let rec remove = function
      | [] -> failwith "not present"
      | x :: rest when x = k -> rest
      | x :: rest -> x :: remove rest
    in
    t := remove !t;
    r
end

let prop_oracle_matches_naive =
  qtest "fenwick oracle = naive multiset" ~count:100
    QCheck2.Gen.(list_size (int_bound 200) (pair bool (int_bound 100)))
    (fun ops ->
      let o = Oracle.create ~universe:128 in
      let n = Naive.create () in
      List.for_all
        (fun (is_insert, k) ->
          if is_insert then begin
            Oracle.insert o k;
            Naive.insert n k;
            true
          end
          else if !n = [] then true
          else begin
            (* Delete a key actually present: pick the smallest. *)
            let k = List.fold_left min max_int !n in
            let a = Oracle.delete o k and b = Naive.delete n k in
            a = b && a = 0
          end)
        ops
      && Oracle.size o = List.length !n)

let test_oracle_rank_error_example () =
  let o = Oracle.create ~universe:100 in
  List.iter (Oracle.insert o) [ 10; 20; 30; 40 ];
  (* Deleting 30 while 10 and 20 are present: rank error 2. *)
  check_int "rank error" 2 (Oracle.delete o 30);
  check_int "then 10 is exact" 0 (Oracle.delete o 10);
  check_int "size" 2 (Oracle.size o)

let test_oracle_missing_key () =
  let o = Oracle.create ~universe:10 in
  Alcotest.check_raises "absent" (Failure "Oracle.delete: key not present")
    (fun () -> ignore (Oracle.delete o 5))

let test_oracle_duplicates () =
  let o = Oracle.create ~universe:10 in
  Oracle.insert o 5;
  Oracle.insert o 5;
  check_int "first" 0 (Oracle.delete o 5);
  check_int "second" 0 (Oracle.delete o 5)

(* ---------------- registry ---------------- *)

let test_parse_spec () =
  let cases =
    [
      ("klsm:256", Some (R.Klsm 256));
      ("klsm", Some (R.Klsm 256));
      ("KLSM:4", Some (R.Klsm 4));
      ("dlsm", Some R.Dlsm);
      ("heap", Some R.Heap_lock);
      ("heap+lock", Some R.Heap_lock);
      ("linden", Some R.Linden);
      ("spray", Some R.Spraylist);
      ("multiq:4", Some (R.Multiq 4));
      ("centralized", Some R.Wimmer_centralized);
      ("hybrid:4096", Some (R.Wimmer_hybrid 4096));
      ("klsm-sharded", Some (R.klsm_sharded 256 4));
      ("klsm-sharded:64", Some (R.klsm_sharded 64 4));
      ("klsm-sharded:64:8", Some (R.klsm_sharded 64 8));
      ("sharded:32:2", Some (R.klsm_sharded 32 2));
      (* the §15 contention knobs, keyed and order-independent *)
      ("klsm-sharded:64:8:sticky=4", Some (R.klsm_sharded ~sticky:4 64 8));
      ("klsm-sharded:64:8:buf=2", Some (R.klsm_sharded ~buf:2 64 8));
      ( "klsm-sharded:256:4:sticky=8:buf=16:adapt=2-8",
        Some (R.klsm_sharded ~sticky:8 ~buf:16 ~adapt:(2, 8) 256 4) );
      ( "sharded:256:4:buf=16:sticky=8",
        Some (R.klsm_sharded ~sticky:8 ~buf:16 256 4) );
      ("klsm-sharded:64:4:adapt=2-16", Some (R.klsm_sharded ~adapt:(2, 16) 64 4));
      (* the §17 deletion-batch knob, alone and alongside the others *)
      ("klsm-sharded:64:8:dbuf=4", Some (R.klsm_sharded ~dbuf:4 64 8));
      ( "klsm-sharded:256:4:sticky=8:buf=16:dbuf=8",
        Some (R.klsm_sharded ~sticky:8 ~buf:16 ~dbuf:8 256 4) );
      ( "sharded:256:4:dbuf=8:buf=16",
        Some (R.klsm_sharded ~buf:16 ~dbuf:8 256 4) );
      ("nonsense", None);
    ]
  in
  List.iter
    (fun (s, want) -> check_bool s true (R.parse_spec_opt s = want))
    cases

let test_parse_spec_rejects_bad_args () =
  (* Specs that used to be silently mis-accepted must now produce an
     error message mentioning the offending spec. *)
  let bad =
    [
      "linden:4"; "dlsm:8"; "heap:1"; "klsm:abc"; "klsm:-3"; "multiq:2x";
      "spraylist:0";
      (* sharded: malformed params, zero stripes, more stripes than k *)
      "klsm-sharded:abc"; "klsm-sharded:64:x"; "klsm-sharded:64:0";
      "klsm-sharded:4:8";
      (* contention knobs: sticky=0 and buf=0 mean "omit the knob";
         buf beyond the per-stripe budget breaks the charged rank bound;
         adapt targets must be powers of two bracketing a pow2 S <= k *)
      "klsm-sharded:64:8:sticky=0"; "klsm-sharded:64:8:buf=0";
      "klsm-sharded:64:8:buf=9"; "klsm-sharded:64:8:sticky=x";
      "klsm-sharded:64:8:adapt=3-8"; "klsm-sharded:64:8:adapt=2-6";
      "klsm-sharded:64:8:adapt=8-2"; "klsm-sharded:64:8:adapt=4";
      "klsm-sharded:64:8:adapt=2-128"; "klsm-sharded:64:6:adapt=2-8";
      "klsm-sharded:64:8:adapt=16-32"; "klsm-sharded:64:8:wat=1";
      "klsm-sharded:64:8:1";
      (* dbuf: 0 means "omit the knob"; a batch beyond the per-stripe
         budget ceil(k/S) = 8 cannot fit one stripe's relaxation; and
         buf + dbuf together must not overdraw that same budget *)
      "klsm-sharded:64:8:dbuf=0"; "klsm-sharded:64:8:dbuf=9";
      "klsm-sharded:64:8:dbuf=x"; "klsm-sharded:64:8:buf=5:dbuf=4";
    ]
  in
  List.iter
    (fun s ->
      match R.parse_spec s with
      | Ok _ -> Alcotest.failf "%S should be rejected" s
      | Error msg ->
          check_bool
            (Printf.sprintf "%s: message mentions spec (%s)" s msg)
            true
            (String.length msg > 0))
    bad;
  (* Unknown base names list the known implementations. *)
  match R.parse_spec "nonsense" with
  | Ok _ -> Alcotest.fail "nonsense accepted"
  | Error msg ->
      check_bool "lists known impls" true
        (String.length msg > 20)

let test_spec_names_unique () =
  let names = List.map R.spec_name R.figure3_specs in
  check_int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_lazy_deletion_support_flags () =
  check_bool "klsm yes" true (R.supports_lazy_deletion (R.Klsm 1));
  check_bool "linden no" false (R.supports_lazy_deletion R.Linden)

(* ---------------- report ---------------- *)

let test_table_renders () =
  let buf_path = Filename.temp_file "klsm_table" ".txt" in
  let oc = open_out buf_path in
  Report.table ~out:oc ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yyy"; "22" ] ];
  close_out oc;
  let ic = open_in buf_path in
  let line1 = input_line ic in
  close_in ic;
  Sys.remove buf_path;
  check_bool "header present" true
    (String.length line1 >= 4 && String.sub line1 0 1 = "a")

let test_csv_roundtrip () =
  let path = Filename.temp_file "klsm_csv" ".csv" in
  Report.csv ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "content" [ "x,y"; "1,2"; "3,4" ]
    (List.rev !lines)

let test_human_float () =
  Alcotest.(check string) "millions" "2.50M" (Report.human_float 2_500_000.);
  Alcotest.(check string) "thousands" "3.20k" (Report.human_float 3_200.);
  Alcotest.(check string) "small" "12" (Report.human_float 12.)

(* ---------------- workload distributions ---------------- *)

module W = Klsm_harness.Workload

let test_workload_uniform_bounds () =
  let rng = Helpers.Xoshiro.create ~seed:4 in
  let gen = W.generator (W.Uniform 1000) rng in
  for _ = 1 to 1000 do
    let k = gen () in
    check_bool "in range" true (k >= 0 && k < 1000)
  done

let test_workload_ascending_monotone () =
  let rng = Helpers.Xoshiro.create ~seed:4 in
  let gen = W.generator (W.Ascending 8) rng in
  let prev = ref (-1000) in
  let violations = ref 0 in
  for _ = 1 to 1000 do
    let k = gen () in
    (* Drifts upward: each key exceeds (previous - jitter). *)
    if k < !prev - 8 then incr violations;
    prev := k
  done;
  check_int "monotone up to jitter" 0 !violations

let test_workload_descending () =
  let rng = Helpers.Xoshiro.create ~seed:4 in
  let gen = W.generator (W.Descending 10_000) rng in
  let first = gen () in
  let later = List.init 500 (fun _ -> gen ()) in
  let last = List.nth later 499 in
  check_bool "descends" true (last < first);
  List.iter (fun k -> check_bool "non-negative" true (k >= 0)) later

let test_workload_clustered () =
  let rng = Helpers.Xoshiro.create ~seed:4 in
  let gen =
    W.generator (W.Clustered { clusters = 4; spread = 10; range = 100_000 }) rng
  in
  (* Distinct values should be few (clustered). *)
  let seen = Hashtbl.create 64 in
  for _ = 1 to 2000 do
    Hashtbl.replace seen (gen ()) ()
  done;
  check_bool "clustered" true (Hashtbl.length seen < 4 * 25)

let test_workload_parse () =
  check_bool "uniform" true (W.parse "uniform" <> None);
  check_bool "ascending" true (W.parse "ascending" <> None);
  check_bool "descending" true (W.parse "descending" <> None);
  check_bool "clustered" true (W.parse "clustered" <> None);
  check_bool "junk" true (W.parse "junk" = None)

let test_throughput_with_workloads () =
  Sim.configure ~seed:1 ~policy:Sim.Fair ();
  List.iter
    (fun w ->
      let config =
        {
          T.default_config with
          num_threads = 2;
          prefill = 300;
          ops_per_thread = 300;
          workload = w;
        }
      in
      let r = T.run config (R.Klsm 16) in
      check_bool (W.name w) true (r.T.throughput_per_thread > 0.))
    [ W.Uniform 1000; W.Ascending 16; W.Descending 100_000;
      W.Clustered { clusters = 4; spread = 16; range = 10_000 } ]

(* ---------------- drivers (smoke) ---------------- *)

let test_throughput_driver_runs () =
  Sim.configure ~seed:1 ~policy:Sim.Fair ();
  let config =
    { T.default_config with num_threads = 4; prefill = 500; ops_per_thread = 500 }
  in
  List.iter
    (fun spec ->
      let r = T.run config spec in
      check_bool
        (Printf.sprintf "%s throughput > 0" (R.spec_name spec))
        true
        (r.T.throughput_per_thread > 0.);
      check_int "op count" (4 * 500) r.T.total_ops)
    [ R.Klsm 16; R.Heap_lock; R.Multiq 2 ]

let test_throughput_reps_vary_seed () =
  Sim.configure ~seed:1 ~policy:Sim.Fair ();
  let config =
    { T.default_config with num_threads = 2; prefill = 200; ops_per_thread = 200 }
  in
  let samples = T.run_reps ~reps:3 config (R.Klsm 8) in
  check_int "three samples" 3 (Array.length samples)

let test_quality_driver_bounds () =
  Sim.configure ~seed:1 ~policy:Sim.Fair ();
  let config =
    {
      Q.default_config with
      num_threads = 4;
      prefill = 2_000;
      ops_per_thread = 1_000;
    }
  in
  (* The exact queue must have (near-)zero rank error... *)
  let exact = Q.run config R.Heap_lock in
  check_bool "heap+lock exact" true (exact.Q.max_rank_error = 0);
  (* ...and the k-LSM must respect rho = T*k (+ slack T for in-flight). *)
  let relaxed = Q.run config (R.Klsm 16) in
  check_bool "klsm bounded" true
    (relaxed.Q.max_rank_error <= (4 * 16) + 4);
  check_bool "some deletes measured" true (relaxed.Q.deletes > 0)

let test_quality_grows_with_k () =
  (* The mean rank error must grow (weakly) with k — the quality/throughput
     trade the relaxation buys. *)
  Sim.configure ~seed:2 ~policy:Sim.Fair ();
  let config =
    {
      Q.default_config with
      num_threads = 8;
      prefill = 8_000;
      ops_per_thread = 2_000;
    }
  in
  let mean k = (Q.run config (R.Klsm k)).Q.mean_rank_error in
  let m0 = mean 0 and m4096 = mean 4096 in
  check_bool "relaxation costs quality" true (m4096 > m0)

let () =
  Alcotest.run "harness"
    [
      ( "oracle",
        [
          prop_oracle_matches_naive;
          Alcotest.test_case "rank error" `Quick test_oracle_rank_error_example;
          Alcotest.test_case "missing key" `Quick test_oracle_missing_key;
          Alcotest.test_case "duplicates" `Quick test_oracle_duplicates;
        ] );
      ( "registry",
        [
          Alcotest.test_case "parse_spec" `Quick test_parse_spec;
          Alcotest.test_case "parse_spec rejects bad args" `Quick
            test_parse_spec_rejects_bad_args;
          Alcotest.test_case "unique names" `Quick test_spec_names_unique;
          Alcotest.test_case "lazy-deletion flags" `Quick test_lazy_deletion_support_flags;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_table_renders;
          Alcotest.test_case "csv" `Quick test_csv_roundtrip;
          Alcotest.test_case "human_float" `Quick test_human_float;
        ] );
      ( "workload",
        [
          Alcotest.test_case "uniform bounds" `Quick test_workload_uniform_bounds;
          Alcotest.test_case "ascending" `Quick test_workload_ascending_monotone;
          Alcotest.test_case "descending" `Quick test_workload_descending;
          Alcotest.test_case "clustered" `Quick test_workload_clustered;
          Alcotest.test_case "parse" `Quick test_workload_parse;
          Alcotest.test_case "throughput integration" `Slow test_throughput_with_workloads;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "throughput" `Slow test_throughput_driver_runs;
          Alcotest.test_case "reps" `Quick test_throughput_reps_vary_seed;
          Alcotest.test_case "quality bounds" `Slow test_quality_driver_bounds;
          Alcotest.test_case "quality grows with k" `Slow test_quality_grows_with_k;
        ] );
    ]
