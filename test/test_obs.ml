(* lib/obs tests: exact counter values for scripted schedules (the sim
   backend and single-threaded real-backend scripts are deterministic, so
   we can assert precise counts from the paper's arithmetic), the forced
   push_snapshot CAS-failure script, and the "observation changes nothing"
   guarantee — enabled vs disabled runs of the same sim schedule must
   produce byte-identical results, because counter writes are plain
   (non-atomic) stores the simulator does not charge. *)

open Helpers
module Obs = Klsm_obs.Obs
module Real = Klsm_backend.Real
module Sim = Klsm_backend.Sim
module Xo = Klsm_primitives.Xoshiro

(* Run [f] with the global observability flag set to [b], restoring the
   previous value afterwards (the flag is global, latched per sheet). *)
let with_obs b f =
  let prev = Obs.enabled () in
  Obs.set_enabled b;
  Fun.protect ~finally:(fun () -> Obs.set_enabled prev) f

let ctotal name (s : Obs.snapshot) =
  match List.assoc_opt name s.Obs.counters with
  | Some per -> Array.fold_left ( + ) 0 per
  | None -> 0

let cper name tid (s : Obs.snapshot) =
  match List.assoc_opt name s.Obs.counters with
  | Some per -> per.(tid)
  | None -> 0

let span_count name (s : Obs.snapshot) =
  match List.assoc_opt name s.Obs.spans with
  | Some d -> Array.fold_left ( + ) 0 d.Obs.count
  | None -> 0

(* ---------------- primitives ---------------- *)

let test_interning () =
  let a = Obs.counter "testobs.a" in
  let b = Obs.counter "testobs.a" in
  check_int "re-registration returns the same counter" a b;
  check_bool "name round-trips" true (Obs.counter_name a = "testobs.a");
  with_obs true @@ fun () ->
  let sheet = Obs.create_sheet ~num_threads:2 () in
  let h = Obs.handle sheet ~tid:1 in
  Obs.incr h a;
  Obs.add h a 4;
  let s = Obs.snapshot sheet in
  check_int "total" 5 (ctotal "testobs.a" s);
  check_int "attributed to tid 1" 5 (cper "testobs.a" 1 s);
  check_int "nothing on tid 0" 0 (cper "testobs.a" 0 s);
  Obs.reset sheet;
  check_int "reset clears" 0 (ctotal "testobs.a" (Obs.snapshot sheet))

let test_span () =
  with_obs true @@ fun () ->
  (* A scripted clock: spans must report exactly the virtual time the
     clock advanced between begin and end, in ns. *)
  let t = ref 0.0 in
  let sheet = Obs.create_sheet ~now:(fun () -> !t) ~num_threads:1 () in
  let h = Obs.handle sheet ~tid:0 in
  let sp = Obs.span "testobs.span" in
  let t0 = Obs.span_begin h in
  t := 2.5e-6;
  Obs.span_end h sp t0;
  let s = Obs.snapshot sheet in
  match List.assoc_opt "testobs.span" s.Obs.spans with
  | None -> Alcotest.fail "span missing from snapshot"
  | Some d ->
      check_int "span count" 1 d.Obs.count.(0);
      check_bool "span ns = 2500" true (abs_float (d.Obs.ns.(0) -. 2500.) < 1e-6)

let test_latching () =
  let module K = Klsm_core.Klsm.Make (Real) in
  (* A sheet created while enabled keeps counting after a global disable. *)
  (with_obs true @@ fun () ->
   let q = K.create ~num_threads:1 () in
   Obs.set_enabled false;
   let h = K.register q 0 in
   K.insert h 5 0;
   (match K.try_delete_min h with
   | Some (k, _) -> check_int "delete works" 5 k
   | None -> Alcotest.fail "queue lost the item");
   check_int "enabled-at-creation sheet still counts" 1
     (ctotal "klsm.delete_local" (K.stats q)));
  (* ... and a sheet created while disabled stays off for good. *)
  with_obs false @@ fun () ->
  let q = K.create ~num_threads:1 () in
  Obs.set_enabled true;
  let h = K.register q 0 in
  K.insert h 5 0;
  ignore (K.try_delete_min h);
  let s = K.stats q in
  check_bool "disabled-at-creation sheet stays empty" true
    (s.Obs.counters = [] && s.Obs.spans = [])

(* ---------------- exact counters, real backend ---------------- *)

(* k = 4 gives max_level = floor(log2 4) - 1 = 1, so a thread-local LSM
   holds at most 2^2 - 1 = 3 items.  Inserting 4 keys single-threaded is a
   fully scripted schedule:

     insert #1:  block placed at level 0                    (0 merges)
     insert #2:  0+0 -> level-1 block                       (1 merge)
     insert #3:  block placed at level 0                    (0 merges)
     insert #4:  0+0 -> 1, 1+1 -> 2 > max_level             (2 merges, spill)

   so exactly 3 merges and one spill of 4 items, which is one shared-
   component insert: one CAS attempt, no failures, no retries. *)
let test_spill_arithmetic () =
  with_obs true @@ fun () ->
  let module K = Klsm_core.Klsm.Make (Real) in
  let q = K.create_with ~k:4 ~num_threads:1 () in
  let h = K.register q 0 in
  List.iter (fun k -> K.insert h k (10 * k)) [ 40; 10; 30; 20 ];
  let s = K.stats q in
  check_int "dist.merge" 3 (ctotal "dist.merge" s);
  check_int "dist.spill" 1 (ctotal "dist.spill" s);
  check_int "dist.spill_items" 4 (ctotal "dist.spill_items" s);
  check_int "shared.cas_attempt" 1 (ctotal "shared.cas_attempt" s);
  check_int "shared.cas_fail" 0 (ctotal "shared.cas_fail" s);
  check_int "shared.insert_retry" 0 (ctotal "shared.insert_retry" s);
  check_int "shared.pivot_recompute" 1 (ctotal "shared.pivot_recompute" s);
  check_int "shared.insert span ran once" 1 (span_count "shared.insert" s);
  (* Draining: everything spilled, so all four deletes are served by the
     shared component, in exact key order (one thread, one block). *)
  let popped = ref [] in
  let rec drain () =
    match K.try_delete_min h with
    | Some (k, _) ->
        popped := k :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  check_list_int "drain order" [ 10; 20; 30; 40 ] (List.rev !popped);
  let s2 = K.stats q in
  check_int "klsm.delete_shared" 4 (ctotal "klsm.delete_shared" s2);
  check_int "klsm.delete_local" 0 (ctotal "klsm.delete_local" s2);
  check_int "klsm.take_race" 0 (ctotal "klsm.take_race" s2);
  (* The final (empty) delete consolidates the local LSM, tries one spy
     (no victims with T = 1) and reports empty — exactly once each. *)
  check_int "klsm.delete_empty" 1 (ctotal "klsm.delete_empty" s2);
  check_int "klsm.spy_attempt" 1 (ctotal "klsm.spy_attempt" s2);
  check_int "klsm.spy_success" 0 (ctotal "klsm.spy_success" s2);
  check_int "dist.consolidate" 1 (ctotal "dist.consolidate" s2)

(* The ISSUE's scripted CAS-failure schedule: thread 1 starts an insert
   (refreshing its snapshot), thread 0 sneaks in a successful install
   before thread 1's push_snapshot, so thread 1's CAS fails exactly once
   and the insert loop retries exactly once.  Single-threaded we script
   the interleaving through the queue's liveness predicate, which
   Shared_klsm calls between refresh_snapshot and push_snapshot. *)
let test_forced_cas_failure () =
  with_obs true @@ fun () ->
  let module S = Klsm_core.Shared_klsm.Make (Real) in
  let module I = Klsm_core.Item.Make (Real) in
  let module Blk = Klsm_core.Block.Make (Real) in
  let hasher = Klsm_primitives.Tabular_hash.create ~seed:7 in
  let armed = ref false in
  let trigger = ref (fun () -> ()) in
  let alive it =
    if !armed then begin
      armed := false;
      !trigger ()
    end;
    not (I.is_taken it)
  in
  let q = S.create ~k:0 ~hasher ~alive () in
  let sheet = Obs.create_sheet ~num_threads:2 () in
  let reg tid =
    S.register
      ~obs:(Obs.handle sheet ~tid)
      q ~tid
      ~rng:(Xo.create ~seed:(100 + tid))
  in
  let h0 = reg 0 and h1 = reg 1 in
  let blk tid key =
    Blk.singleton
      ~filter:(Klsm_primitives.Bloom.singleton ~hasher tid)
      (I.make key key)
  in
  S.insert h0 (blk 0 10);
  trigger := (fun () -> S.insert h0 (blk 0 30));
  armed := true;
  S.insert h1 (blk 1 20);
  check_bool "interleaved install fired" true (not !armed);
  let s = Obs.snapshot sheet in
  check_int "exactly one retry" 1 (ctotal "shared.insert_retry" s);
  check_int "exactly one CAS failure" 1 (ctotal "shared.cas_fail" s);
  check_int "retry charged to thread 1" 1 (cper "shared.insert_retry" 1 s);
  check_int "failure charged to thread 1" 1 (cper "shared.cas_fail" 1 s);
  (* Thread 0: two clean installs.  Thread 1: one failed + one clean. *)
  check_int "thread 0 attempts" 2 (cper "shared.cas_attempt" 0 s);
  check_int "thread 1 attempts" 2 (cper "shared.cas_attempt" 1 s)

(* Spy with an exactly-known victim shape: 3 items in thread 0's local LSM
   sit in a level-1 + level-0 block pair, so thread 1's first delete spies
   exactly 2 blocks / 3 items, then serves the minimum locally. *)
let test_spy_counters () =
  with_obs true @@ fun () ->
  let module K = Klsm_core.Klsm.Make (Real) in
  let q = K.create_with ~k:256 ~num_threads:2 () in
  let h0 = K.register q 0 in
  let h1 = K.register q 1 in
  List.iter (fun k -> K.insert h0 k k) [ 10; 20; 30 ];
  (match K.try_delete_min h1 with
  | Some (k, _) -> check_int "spied delete returns the minimum" 10 k
  | None -> Alcotest.fail "spy failed to find thread 0's items");
  let s = K.stats q in
  check_int "klsm.spy_attempt" 1 (ctotal "klsm.spy_attempt" s);
  check_int "klsm.spy_success" 1 (ctotal "klsm.spy_success" s);
  check_int "dist.spy_blocks" 2 (ctotal "dist.spy_blocks" s);
  check_int "dist.spy_items" 3 (ctotal "dist.spy_items" s);
  check_int "served locally after the spy" 1 (ctotal "klsm.delete_local" s);
  check_int "spy work charged to tid 1" 2 (cper "dist.spy_blocks" 1 s)

(* ---------------- sim backend ---------------- *)

(* k = 0 sends every insert through the shared component, so with two
   preempting sim threads the CAS counters obey exact conservation laws:
   every insert installs exactly once (attempts - failures = inserts) and
   every failed CAS causes exactly one insert retry. *)
let run_contended_inserts ~seed () =
  Sim.configure ~seed ~policy:(Sim.Random_preempt 0.25) ();
  let module K = Klsm_core.Klsm.Make (Sim) in
  let q = K.create_with ~k:0 ~num_threads:2 () in
  Sim.parallel_run ~num_threads:2 (fun tid ->
      let h = K.register q tid in
      for i = 0 to 49 do
        K.insert h ((100 * i) + tid) tid
      done);
  K.stats q

let norm (s : Obs.snapshot) =
  List.map (fun (n, per) -> (n, Array.to_list per)) s.Obs.counters

let test_sim_cas_conservation () =
  with_obs true @@ fun () ->
  let s = run_contended_inserts ~seed:21 () in
  check_int "every insert installs exactly once"
    (ctotal "shared.cas_attempt" s)
    (ctotal "shared.cas_fail" s + 100);
  check_int "every failure retries exactly once"
    (ctotal "shared.cas_fail" s)
    (ctotal "shared.insert_retry" s);
  check_bool "the schedule actually contended" true
    (ctotal "shared.cas_fail" s > 0);
  check_int "every insert spilled" 100 (ctotal "dist.spill" s)

let test_sim_determinism () =
  with_obs true @@ fun () ->
  let a = run_contended_inserts ~seed:21 () in
  let b = run_contended_inserts ~seed:21 () in
  Alcotest.(check (list (pair string (list int))))
    "same seed, same counters" (norm a) (norm b)

(* Observation must not change behaviour: counter writes are plain stores
   the simulator charges nothing for, so the same seeded schedule must
   yield identical per-thread pop sequences and an identical virtual-time
   makespan whether observability is on or off. *)
let sim_workload () =
  Sim.configure ~seed:11 ~policy:(Sim.Random_preempt 0.3) ();
  let module K = Klsm_core.Klsm.Make (Sim) in
  let q = K.create_with ~k:16 ~num_threads:4 () in
  let got = Array.init 4 (fun _ -> ref []) in
  Sim.parallel_run ~num_threads:4 (fun tid ->
      let h = K.register q tid in
      let rng = Xo.create ~seed:(50 + tid) in
      for i = 0 to 99 do
        K.insert h (Xo.int rng 10_000) ((tid * 1000) + i);
        if i land 3 = 3 then
          match K.try_delete_min h with
          | Some (k, _) -> got.(tid) := k :: !(got.(tid))
          | None -> ()
      done;
      let misses = ref 0 in
      while !misses < 50 do
        match K.try_delete_min h with
        | Some (k, _) ->
            got.(tid) := k :: !(got.(tid));
            misses := 0
        | None -> incr misses
      done);
  ( Array.to_list (Array.map (fun r -> List.rev !r) got),
    Sim.makespan (),
    K.stats q )

let test_observation_changes_nothing () =
  let on_pops, on_mk, on_stats = with_obs true sim_workload in
  let off_pops, off_mk, off_stats = with_obs false sim_workload in
  Alcotest.(check (list (list int)))
    "identical pop sequences" on_pops off_pops;
  Alcotest.(check (float 0.0)) "identical virtual makespan" on_mk off_mk;
  check_bool "enabled run produced counters" true (on_stats.Obs.counters <> []);
  check_bool "disabled run produced none" true
    (off_stats.Obs.counters = [] && off_stats.Obs.spans = [])

(* ---------------- registry plumbing ---------------- *)

(* Every registry queue must expose stats: empty when created disabled,
   well-formed (per-thread arrays sized to the queue) when enabled.  The
   relaxed/lock-free designs are additionally guaranteed to count
   something under this insert+drain workload. *)
let test_registry_stats_plumbing () =
  let module R = Klsm_harness.Registry.Make (Real) in
  let specs =
    [
      R.Heap_lock;
      R.Linden;
      R.Spraylist;
      R.Multiq 2;
      R.Klsm 16;
      R.klsm_sharded 16 2;
      R.Dlsm;
      R.Wimmer_centralized;
      R.Wimmer_hybrid 16;
    ]
  in
  let rec must_count = function
    | R.Klsm _ | R.Klsm_sharded _ | R.Dlsm | R.Wimmer_hybrid _ | R.Linden
    | R.Spraylist ->
        true
    | R.Heap_lock | R.Multiq _ | R.Wimmer_centralized ->
        (* lock-contention counters need real parallelism to fire *)
        false
    | R.Stored (inner, _) -> must_count inner
  in
  List.iter
    (fun spec ->
      (with_obs false @@ fun () ->
       let inst = R.make ~seed:3 ~num_threads:2 spec in
       let h = (inst.R.register) 0 in
       for i = 1 to 32 do
         h.R.insert i i
       done;
       for _ = 1 to 16 do
         ignore (h.R.try_delete_min ())
       done;
       let s = (inst.R.stats) () in
       check_bool
         (inst.R.name ^ ": disabled stats are empty")
         true
         (s.Obs.counters = [] && s.Obs.spans = []));
      with_obs true @@ fun () ->
      let inst = R.make ~seed:3 ~num_threads:2 spec in
      let h0 = (inst.R.register) 0 in
      let h1 = (inst.R.register) 1 in
      for i = 1 to 32 do
        h0.R.insert i i;
        h1.R.insert (1000 + i) i
      done;
      let misses = ref 0 in
      while !misses < 40 do
        match h0.R.try_delete_min () with
        | Some _ -> misses := 0
        | None -> incr misses
      done;
      let s = (inst.R.stats) () in
      check_int (inst.R.name ^ ": snapshot thread count") 2 s.Obs.threads;
      List.iter
        (fun (n, per) ->
          check_int (inst.R.name ^ "/" ^ n ^ ": per-thread width") 2
            (Array.length per))
        s.Obs.counters;
      if must_count spec then
        check_bool
          (inst.R.name ^ ": counted something")
          true
          (List.exists
             (fun (_, per) -> Array.fold_left ( + ) 0 per > 0)
             s.Obs.counters))
    specs

let () =
  Alcotest.run "obs"
    [
      ( "primitives",
        [
          Alcotest.test_case "interning and sheets" `Quick test_interning;
          Alcotest.test_case "span accumulation" `Quick test_span;
          Alcotest.test_case "enable flag latches per sheet" `Quick
            test_latching;
        ] );
      ( "exact-counters",
        [
          Alcotest.test_case "k=4 spill arithmetic" `Quick
            test_spill_arithmetic;
          Alcotest.test_case "forced CAS failure counts exactly once" `Quick
            test_forced_cas_failure;
          Alcotest.test_case "spy counters" `Quick test_spy_counters;
        ] );
      ( "sim",
        [
          Alcotest.test_case "CAS accounting conservation" `Quick
            test_sim_cas_conservation;
          Alcotest.test_case "counter snapshots are deterministic" `Quick
            test_sim_determinism;
          Alcotest.test_case "observation changes no results" `Quick
            test_observation_changes_nothing;
        ] );
      ( "registry",
        [
          Alcotest.test_case "stats plumbing for every spec" `Quick
            test_registry_stats_plumbing;
        ] );
    ]
