(* Tests for Block_array (paper Listing 2): level invariants under
   insert/consolidate, pivot calculation, and the randomized relaxed
   find_min with local ordering. *)

open Helpers
module B = Klsm_backend.Real
module Item = Klsm_core.Item.Make (B)
module Block = Klsm_core.Block.Make (B)
module Block_array = Klsm_core.Block_array.Make (B)
module Bloom = Klsm_primitives.Bloom
module Xoshiro = Klsm_primitives.Xoshiro
module Tabular_hash = Klsm_primitives.Tabular_hash

let alive it = not (Item.is_taken it)
let hasher = Tabular_hash.create ~seed:77

let block_of_keys ?(filter = Bloom.empty) keys =
  match keys with
  | [] -> invalid_arg "block_of_keys: empty"
  | k0 :: _ ->
      let sorted = List.sort (fun a b -> compare b a) keys in
      let level = Klsm_primitives.Bits.ceil_log2 (List.length keys) in
      let b = Block.create_with_exemplar level (Item.make k0 ()) in
      List.iter (fun k -> Block.append ~alive b (Item.make k ())) sorted;
      b.Block.filter <- filter;
      b

let array_of_key_lists lists =
  let t = Block_array.empty () in
  List.iter (fun keys -> Block_array.insert ~alive t (block_of_keys keys)) lists;
  t

let all_keys t =
  Array.to_list (Block_array.blocks t)
  |> List.concat_map (fun b -> List.map Item.key (Block.to_list b))

(* Keys of items that are still alive (consolidate guarantees nothing about
   dead items that happen to survive physically in unmoved blocks). *)
let alive_keys t =
  Array.to_list (Block_array.blocks t)
  |> List.concat_map (fun b ->
         Block.to_list b
         |> List.filter_map (fun it ->
                if Item.is_taken it then None else Some (Item.key it)))

(* ---------------- insert / consolidate ---------------- *)

let prop_insert_preserves_invariants =
  qtest "insert keeps invariants and content" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 15)
        (list_size (int_range 1 40) (int_bound 1000)))
    (fun lists ->
      let t = array_of_key_lists lists in
      Block_array.check_invariants t;
      List.sort compare (all_keys t)
      = List.sort compare (List.concat lists))

let test_insert_merges_same_level () =
  let t = array_of_key_lists [ [ 1; 2 ]; [ 3; 4 ] ] in
  (* Two level-1 blocks must have merged into one level-2 block. *)
  check_int "one block" 1 (Block_array.size t);
  Block_array.check_invariants t

let test_consolidate_drops_taken () =
  let t = array_of_key_lists [ [ 1; 2; 3; 4 ]; [ 5; 6 ] ] in
  Array.iter
    (fun b ->
      Block.iter b ~f:(fun it ->
          if Item.key it mod 2 = 0 then ignore (Item.take it)))
    (Block_array.blocks t);
  ignore (Block_array.consolidate ~alive t);
  Block_array.check_invariants t;
  check_list_int "odds remain" [ 1; 3; 5 ] (List.sort compare (alive_keys t))

let test_consolidate_empties () =
  let t = array_of_key_lists [ [ 1; 2; 3 ] ] in
  Array.iter
    (fun b -> Block.iter b ~f:(fun it -> ignore (Item.take it)))
    (Block_array.blocks t);
  ignore (Block_array.consolidate ~alive t);
  check_bool "empty" true (Block_array.is_empty t)

let test_copy_is_shallow_consistent () =
  let t = array_of_key_lists [ [ 1; 2; 3; 4; 5 ] ] in
  let c = Block_array.copy t in
  check_int "same size" (Block_array.size t) (Block_array.size c);
  check_bool "same blocks" true
    (Array.for_all2 ( == ) (Block_array.blocks t) (Block_array.blocks c))

(* ---------------- pooled / scratch operation ---------------- *)

(* Running the same inserts through a pool + scratch must be observationally
   identical to the allocation-per-call path: same invariants, same key
   multiset, and no recycled array aliased by a block still in the array. *)
let prop_pooled_insert_equivalent =
  qtest "pooled insert/consolidate = unpooled" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 15)
        (list_size (int_range 1 40) (int_bound 1000)))
    (fun lists ->
      let plain = array_of_key_lists lists in
      let pool = Block.Pool.create () in
      let scratch = Block_array.Scratch.create () in
      let pooled = Block_array.empty () in
      List.iter
        (fun keys ->
          Block_array.insert ~pool ~scratch ~alive pooled (block_of_keys keys))
        lists;
      Block_array.check_invariants pooled;
      (* No block reachable from the array may sit in the pool's freelists. *)
      Array.iter
        (fun live ->
          Array.iter
            (fun free ->
              if List.exists (fun pb -> pb == live) free then
                Alcotest.fail "pooled block aliased by the live array")
            pool.Block.Pool.slots)
        (Block_array.blocks pooled);
      List.sort compare (all_keys pooled) = List.sort compare (all_keys plain))

let test_pooled_consolidate_drops_taken () =
  let pool = Block.Pool.create () in
  let scratch = Block_array.Scratch.create () in
  let t = Block_array.empty () in
  List.iter
    (fun keys ->
      Block_array.insert ~pool ~scratch ~alive t (block_of_keys keys))
    [ [ 1; 2; 3; 4 ]; [ 5; 6 ] ];
  Array.iter
    (fun b ->
      Block.iter b ~f:(fun it ->
          if Item.key it mod 2 = 0 then ignore (Item.take it)))
    (Block_array.blocks t);
  ignore (Block_array.consolidate ~pool ~scratch ~alive t);
  Block_array.check_invariants t;
  check_list_int "odds remain" [ 1; 3; 5 ] (List.sort compare (alive_keys t))

(* ---------------- pivots ---------------- *)

(* The candidate ranges [pivots.(i), filled) must (a) contain at most k+1
   items and (b) all candidates must be among the k+1 smallest keys. *)
let prop_pivots_select_k_smallest =
  qtest "pivot ranges = k+1 smallest" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 10)
           (list_size (int_range 1 50) (int_bound 10_000)))
        (int_bound 64))
    (fun (lists, k) ->
      let t = array_of_key_lists lists in
      Block_array.calculate_pivots t ~k;
      let all = List.sort compare (all_keys t) in
      let total = List.length all in
      let selected = ref [] in
      Array.iteri
        (fun i b ->
          for pos = t.Block_array.pivots.(i) to Block.filled b - 1 do
            selected := Item.key (Block.items b).(pos) :: !selected
          done)
        (Block_array.blocks t);
      let n_sel = List.length !selected in
      let cutoff_count = min (k + 1) total in
      (* (a) at most k+1 candidates, (b) at least one (array non-empty),
         (c) every candidate belongs to the k+1 smallest multiset. *)
      let smallest = List.filteri (fun i _ -> i < cutoff_count) all in
      n_sel <= k + 1 && n_sel >= 1
      && List.for_all
           (fun key ->
             (* key appears in the k+1-smallest multiset *)
             List.exists (fun s -> s = key) smallest)
           !selected)

let test_pivots_exhausted_small_array () =
  let t = array_of_key_lists [ [ 5; 6 ] ] in
  Block_array.calculate_pivots t ~k:100;
  (* Everything is a candidate. *)
  check_int "pivot 0" 0 t.Block_array.pivots.(0)

let test_pivots_array_reused_in_place () =
  (* When the block count is unchanged, recomputing pivots must write into
     the existing array instead of allocating a fresh one (the per-round
     allocation the scratch refactor removes). *)
  let t = array_of_key_lists [ [ 1; 2; 3; 4 ]; [ 5; 6 ] ] in
  Block_array.calculate_pivots t ~k:2;
  let p0 = t.Block_array.pivots in
  Block_array.calculate_pivots t ~k:4;
  check_bool "pivot array physically reused" true (t.Block_array.pivots == p0)

(* ---------------- find_min ---------------- *)

let rng = Xoshiro.create ~seed:5

let test_find_min_empty () =
  let t = Block_array.empty () in
  check_bool "none" true
    (Block_array.find_min ~alive ~rng ~my_tid:0 ~hasher t = None)

let prop_find_min_within_k1_smallest =
  qtest "find_min returns one of the k+1 smallest" ~count:200
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 8)
           (list_size (int_range 1 40) (int_bound 10_000)))
        (int_bound 32) int)
    (fun (lists, k, seed) ->
      let t = array_of_key_lists lists in
      Block_array.calculate_pivots t ~k;
      let rng = Xoshiro.create ~seed in
      let all = List.sort compare (all_keys t) in
      let cutoff =
        List.nth all (min k (List.length all - 1))
      in
      match Block_array.find_min ~alive ~rng ~my_tid:0 ~hasher t with
      | None -> false
      | Some it -> Item.key it <= cutoff)

let test_find_min_falls_back_on_taken () =
  (* Single block, the randomly selected candidate may be taken; the block
     minimum is alive, so eventually an alive item must be returned and it
     must be the block min. *)
  let t = array_of_key_lists [ [ 1; 2; 3; 4; 5; 6; 7; 8 ] ] in
  Block_array.calculate_pivots t ~k:7;
  (* Take everything except the minimum. *)
  Array.iter
    (fun b ->
      Block.iter b ~f:(fun it ->
          if Item.key it <> 1 then ignore (Item.take it)))
    (Block_array.blocks t);
  for _ = 1 to 20 do
    match Block_array.find_min ~alive ~rng ~my_tid:0 ~hasher t with
    | Some it ->
        (* Either an alive item (the min) or a taken one (caller retries);
           the alive one must be the true minimum. *)
        if alive it then check_int "min" 1 (Item.key it)
    | None -> Alcotest.fail "array is not empty"
  done

let test_local_ordering_returns_my_min () =
  (* Build one block attributed to tid 3 holding the global minimum, and a
     big block of smaller candidates attributed to someone else; with local
     ordering the returned key must never exceed my block's minimum. *)
  let mine = block_of_keys ~filter:(Bloom.singleton ~hasher 3) [ 100; 50 ] in
  let other =
    block_of_keys
      ~filter:(Bloom.singleton ~hasher 9)
      (List.init 32 (fun i -> 200 + i))
  in
  let t = Block_array.empty () in
  Block_array.insert ~alive t other;
  Block_array.insert ~alive t mine;
  Block_array.calculate_pivots t ~k:16;
  for seed = 0 to 50 do
    let rng = Xoshiro.create ~seed in
    match Block_array.find_min ~alive ~rng ~my_tid:3 ~hasher t with
    | Some it -> check_bool "never skips my min" true (Item.key it <= 50)
    | None -> Alcotest.fail "non-empty"
  done

let test_find_min_never_none_with_alive_items () =
  (* Regression for the mass-loss bug: concurrent deleters can shrink every
     block's [filled] below its stale pivot, making every candidate range
     empty.  find_min must fall back to the block minima instead of
     reporting emptiness (the caller would otherwise publish None and
     disconnect live items). *)
  let t = array_of_key_lists [ List.init 16 (fun i -> i) ] in
  Block_array.calculate_pivots t ~k:3;
  (* Take the 8 smallest and let peek_min publish the shrunken filled —
     now filled (8) < pivot (12). *)
  Array.iter
    (fun b ->
      Block.iter b ~f:(fun it -> if Item.key it < 8 then ignore (Item.take it)))
    (Block_array.blocks t);
  Array.iter
    (fun b -> ignore (Block.peek_min ~alive b))
    (Block_array.blocks t);
  check_bool "pivot now exceeds filled" true
    (t.Block_array.pivots.(0) > Block.filled (Block_array.blocks t).(0));
  for seed = 0 to 20 do
    let rng = Xoshiro.create ~seed in
    match Block_array.find_min ~alive ~rng ~my_tid:0 ~hasher t with
    | Some it -> check_bool "alive item findable" true (Item.key it >= 8)
    | None -> Alcotest.fail "transient None on non-empty array (regression)"
  done

let test_local_ordering_disabled () =
  (* Sanity for the ablation knob: with local_ordering:false and the
     minimum hidden outside the candidate window... the candidates all come
     from pivot ranges, which are the k+1 smallest, so we simply check a
     value is returned. *)
  let t = array_of_key_lists [ List.init 16 (fun i -> i * 2) ] in
  Block_array.calculate_pivots t ~k:3;
  let rng = Xoshiro.create ~seed:1 in
  match
    Block_array.find_min ~local_ordering:false ~alive ~rng ~my_tid:0 ~hasher t
  with
  | Some it -> check_bool "candidate small" true (Item.key it <= 6)
  | None -> Alcotest.fail "non-empty"

let () =
  Alcotest.run "block_array"
    [
      ( "insert/consolidate",
        [
          prop_insert_preserves_invariants;
          Alcotest.test_case "same-level merge" `Quick test_insert_merges_same_level;
          Alcotest.test_case "consolidate drops taken" `Quick test_consolidate_drops_taken;
          Alcotest.test_case "consolidate to empty" `Quick test_consolidate_empties;
          Alcotest.test_case "copy shallow" `Quick test_copy_is_shallow_consistent;
        ] );
      ( "pool/scratch",
        [
          prop_pooled_insert_equivalent;
          Alcotest.test_case "pooled consolidate drops taken" `Quick
            test_pooled_consolidate_drops_taken;
        ] );
      ( "pivots",
        [
          prop_pivots_select_k_smallest;
          Alcotest.test_case "small array" `Quick test_pivots_exhausted_small_array;
          Alcotest.test_case "pivot array reuse" `Quick
            test_pivots_array_reused_in_place;
        ] );
      ( "find_min",
        [
          Alcotest.test_case "empty" `Quick test_find_min_empty;
          prop_find_min_within_k1_smallest;
          Alcotest.test_case "fallback on taken" `Quick test_find_min_falls_back_on_taken;
          Alcotest.test_case "local ordering" `Quick test_local_ordering_returns_my_min;
          Alcotest.test_case "local ordering off" `Quick test_local_ordering_disabled;
          Alcotest.test_case "no transient None (regression)" `Quick
            test_find_min_never_none_with_alive_items;
        ] );
    ]
