(* Tests for the distributed LSM (paper Listing 4): exact single-owner
   semantics, the spill rule, spying, and consolidation. *)

open Helpers
module B = Klsm_backend.Real
module Item = Klsm_core.Item.Make (B)
module Block = Klsm_core.Block.Make (B)
module Dist_lsm = Klsm_core.Dist_lsm.Make (B)
module Tabular_hash = Klsm_primitives.Tabular_hash
module Xoshiro = Klsm_primitives.Xoshiro

let hasher = Tabular_hash.create ~seed:7
let alive it = not (Item.is_taken it)

let make_lsm ?(tid = 0) () = Dist_lsm.create ~tid ~hasher ~alive ()

let no_spill _ = Alcotest.fail "unexpected spill"

let insert_keys t keys =
  List.iter
    (fun k -> Dist_lsm.insert t (Item.make k ()) ~max_level:max_int ~spill:no_spill)
    keys

(* Owner-side exact delete-min: find_min + take. *)
let delete_min t =
  match Dist_lsm.find_min t with
  | None -> None
  | Some it ->
      check_bool "owner take succeeds" true (Item.take it);
      Some (Item.key it)

(* ---------------- exact sequential semantics ---------------- *)

let prop_dist_lsm_is_exact_pq =
  qtest "single-owner LSM = exact priority queue" ~count:150 ops_gen
    (fun ops ->
      let t = make_lsm () in
      matches_oracle
        ~insert:(fun k ->
          Dist_lsm.insert t (Item.make k ()) ~max_level:max_int ~spill:no_spill)
        ~delete_min:(fun () -> delete_min t)
        ops)

let test_levels_strictly_decreasing () =
  let t = make_lsm () in
  insert_keys t (List.init 100 Fun.id);
  Dist_lsm.check_invariants t

let test_total_filled () =
  let t = make_lsm () in
  insert_keys t (List.init 37 Fun.id);
  check_int "all live" 37 (Dist_lsm.total_filled t)

(* ---------------- spill rule ---------------- *)

let test_spill_threshold () =
  (* max_level 1 allows blocks of capacity <= 2; the first merge cascade
     exceeding that spills. *)
  let spilled = ref [] in
  let t = make_lsm () in
  let spill b = spilled := b :: !spilled in
  for i = 1 to 16 do
    Dist_lsm.insert t (Item.make i ()) ~max_level:1 ~spill
  done;
  check_bool "spills happened" true (List.length !spilled > 0);
  List.iter
    (fun b -> check_bool "spilled blocks exceed the bound" true (Block.level b >= 2))
    !spilled;
  (* Local LSM never holds more than 2^(max_level+1) - 1 = 3 items. *)
  check_bool "local bounded" true (Dist_lsm.total_filled t <= 3)

let test_spill_conserves_items () =
  let spilled = ref 0 in
  let t = make_lsm () in
  let spill b = spilled := !spilled + Block.filled b in
  for i = 1 to 100 do
    Dist_lsm.insert t (Item.make i ()) ~max_level:2 ~spill
  done;
  check_int "items conserved" 100 (!spilled + Dist_lsm.total_filled t)

let test_max_level_for_k () =
  check_int "k=0" (-1) (Dist_lsm.max_level_for_k 0);
  check_int "k=1" (-1) (Dist_lsm.max_level_for_k 1);
  check_int "k=4" 1 (Dist_lsm.max_level_for_k 4);
  check_int "k=256" 7 (Dist_lsm.max_level_for_k 256);
  (* Capacity bound of Lemma 2: 2^(L+1) - 1 <= k. *)
  List.iter
    (fun k ->
      let l = Dist_lsm.max_level_for_k k in
      check_bool "capacity <= k" true ((1 lsl (l + 1)) - 1 <= k))
    [ 2; 3; 4; 7; 8; 100; 256; 4096 ]

(* ---------------- consolidate ---------------- *)

let test_consolidate_removes_dead () =
  let t = make_lsm () in
  insert_keys t (List.init 50 Fun.id);
  (* Take the even keys. *)
  Dist_lsm.iter_items t ~f:(fun it ->
      if Item.key it mod 2 = 0 then ignore (Item.take it));
  Dist_lsm.consolidate t;
  Dist_lsm.check_invariants t;
  check_int "25 alive" 25 (Dist_lsm.total_filled t);
  check_bool "dead fraction 0" true (Dist_lsm.dead_fraction t = 0.)

let test_consolidate_empty () =
  let t = make_lsm () in
  insert_keys t [ 1; 2; 3 ];
  Dist_lsm.iter_items t ~f:(fun it -> ignore (Item.take it));
  Dist_lsm.consolidate t;
  check_int "size 0" 0 (Dist_lsm.size t)

(* ---------------- spy ---------------- *)

let test_spy_copies_alive_items () =
  let victim = make_lsm ~tid:0 () in
  insert_keys victim [ 5; 3; 9; 1 ];
  let thief = make_lsm ~tid:1 () in
  check_bool "spy succeeds" true (Dist_lsm.spy thief ~victim);
  (* The thief sees the same minimal key. *)
  (match (Dist_lsm.find_min thief, Dist_lsm.find_min victim) with
  | Some a, Some b -> check_int "same min" (Item.key b) (Item.key a)
  | _ -> Alcotest.fail "both should be non-empty");
  (* And they are the SAME items (pointers), so deletion is exclusive. *)
  match (Dist_lsm.find_min thief, Dist_lsm.find_min victim) with
  | Some a, Some b ->
      check_bool "same item" true (a == b);
      check_bool "take once" true (Item.take a);
      check_bool "other copy is dead too" true (Item.is_taken b)
  | _ -> Alcotest.fail "non-empty"

let test_spy_empty_victim () =
  let victim = make_lsm ~tid:0 () in
  let thief = make_lsm ~tid:1 () in
  check_bool "nothing to spy" false (Dist_lsm.spy thief ~victim)

let test_spy_all_dead_victim () =
  let victim = make_lsm ~tid:0 () in
  insert_keys victim [ 1; 2; 3 ];
  Dist_lsm.iter_items victim ~f:(fun it -> ignore (Item.take it));
  let thief = make_lsm ~tid:1 () in
  check_bool "dead items are not acquisitions" false
    (Dist_lsm.spy thief ~victim)

let test_spy_respects_level_order () =
  let victim = make_lsm ~tid:0 () in
  insert_keys victim (List.init 60 Fun.id);
  let thief = make_lsm ~tid:1 () in
  ignore (Dist_lsm.spy thief ~victim);
  Dist_lsm.check_invariants thief

let test_spy_copy_levels_strictly_decreasing () =
  (* Explicit check of the §4.2 copy rule: spy accepts a victim block only
     when its level is strictly below the last accepted one, so the thief
     ends up with a valid LSM shape whatever the victim's published state
     looked like.  On a quiescent victim, nothing is skipped: the thief
     acquires exactly the victim's alive multiset. *)
  let victim = make_lsm ~tid:0 () in
  insert_keys victim (List.init 85 Fun.id);
  let thief = make_lsm ~tid:1 () in
  check_bool "spy succeeds" true (Dist_lsm.spy thief ~victim);
  let n = Dist_lsm.size thief in
  check_bool "thief non-empty" true (n > 0);
  let last = ref max_int in
  for i = 0 to n - 1 do
    match Dist_lsm.block_at thief i with
    | None -> Alcotest.failf "thief slot %d empty below size" i
    | Some b ->
        let lvl = Block.level b in
        if lvl >= !last then
          Alcotest.failf "thief levels not strictly decreasing: %d then %d"
            !last lvl;
        last := lvl
  done;
  let keys_of t =
    let acc = ref [] in
    Dist_lsm.iter_items t ~f:(fun it ->
        if alive it then acc := Item.key it :: !acc);
    List.sort compare !acc
  in
  check_list_int "quiescent spy copies everything" (keys_of victim)
    (keys_of thief)

(* Spy racing the victim's insert-driven merge cascades (there is no
   separate merge entry point — merges happen inside [insert], republishing
   the block array slot by slot, and that publication order is exactly what
   is under test): across many random preemption schedules, every inserted
   item must be taken exactly once, whether it is stolen through a spy copy
   or drained from the victim afterwards.  Because spy copies share the
   physical items, a duplicated delivery would show up as a payload taken
   twice; a lost item as a payload never taken. *)
module Sim = Klsm_backend.Sim
module SItem = Klsm_core.Item.Make (Sim)
module SDist = Klsm_core.Dist_lsm.Make (Sim)

let test_spy_racing_merges_fuzzed () =
  let n = 150 in
  for seed = 1 to 32 do
    Sim.configure ~seed ~policy:(Sim.Random_preempt 0.3) ();
    let hasher = Tabular_hash.create ~seed:7 in
    let salive it = not (SItem.is_taken it) in
    let no_spill _ = Alcotest.fail "unexpected spill" in
    let victim = SDist.create ~tid:0 ~hasher ~alive:salive () in
    let inserts_done = Sim.make false in
    let taken = Array.make n 0 in
    let take_all_of lsm =
      let continue_loop = ref true in
      while !continue_loop do
        match SDist.find_min lsm with
        | None -> continue_loop := false
        | Some it ->
            if SItem.take it then taken.(SItem.value it) <- taken.(SItem.value it) + 1
      done
    in
    Sim.parallel_run ~num_threads:2 (fun tid ->
        if tid = 0 then begin
          let rng = Xoshiro.create ~seed:(seed * 31) in
          for i = 0 to n - 1 do
            SDist.insert victim
              (SItem.make (Xoshiro.int rng 10_000) i)
              ~max_level:max_int ~spill:no_spill
          done;
          Sim.set inserts_done true
        end
        else begin
          (* Keep spying fresh thief LSMs (spy's precondition: an empty
             local LSM) and stealing whatever each copy acquired, until the
             victim finished inserting; one final spy catches stragglers. *)
          let rounds = ref 0 in
          while not (Sim.get inserts_done) && !rounds < 10_000 do
            incr rounds;
            let thief = SDist.create ~tid:1 ~hasher ~alive:salive () in
            if SDist.spy thief ~victim then begin
              SDist.check_invariants thief;
              take_all_of thief
            end
            else Sim.yield ()
          done;
          let thief = SDist.create ~tid:1 ~hasher ~alive:salive () in
          if SDist.spy thief ~victim then take_all_of thief
        end);
    (* Post-run (single-threaded): drain what the thief did not steal. *)
    take_all_of victim;
    Array.iteri
      (fun payload count ->
        if count <> 1 then
          Alcotest.failf "seed %d: payload %d taken %d times" seed payload
            count)
      taken
  done;
  Sim.configure ~policy:Sim.Fair ()

(* Crash mid-publication (lib/chaos): kill the owner between Listing 4's
   two publication writes — merged block visible, [size] not yet bumped —
   and check the half-published LSM is still fully usable by others: the
   structural invariants hold, a spy copy is a valid strictly-decreasing
   prefix, and every item whose insert returned is reachable through it.
   This is exactly the window the paper's publication order protects. *)
let test_crash_mid_publication () =
  let module Chaos = Klsm_chaos.Chaos in
  Sim.configure ~seed:11 ();
  let n = 64 in
  let crash_hit = 9 in
  let hasher = Tabular_hash.create ~seed:5 in
  let salive it = not (SItem.is_taken it) in
  let no_spill _ = Alcotest.fail "unexpected spill" in
  let completed = ref [] in
  (* inserts that returned, victim-side *)
  let spied = ref [] in
  let plan =
    [ Chaos.rule ~tid:1 ~hit:crash_hit "dist.insert.pre_size" Chaos.Crash ]
  in
  Chaos.install plan;
  Fun.protect ~finally:Chaos.uninstall (fun () ->
      let victim = SDist.create ~tid:1 ~hasher ~alive:salive () in
      let thief = SDist.create ~tid:0 ~hasher ~alive:salive () in
      Sim.parallel_run ~num_threads:2 (fun tid ->
          if tid = 1 then
            for i = 0 to n - 1 do
              SDist.insert victim (SItem.make i ()) ~max_level:max_int
                ~spill:no_spill;
              completed := i :: !completed
            done
          else begin
            (* Wait (virtual time) until the crash fired, then spy the
               corpse: its last publication is half done. *)
            while (Chaos.stats ()).Chaos.crashes = 0 do
              Sim.relax_n 1
            done;
            ignore (SDist.spy thief ~victim);
            SDist.check_invariants thief;
            SDist.iter_items thief ~f:(fun it ->
                spied := SItem.key it :: !spied)
          end);
      check_int "victim crashed" 1 (Chaos.stats ()).Chaos.crashes;
      check_bool "crash interrupted the loop" true
        (List.length !completed < n);
      (* The half-published victim still satisfies the invariants: the
         merged block replaced its slot before [size] changed. *)
      SDist.check_invariants victim);
  (* Conservation through spy: completed inserts all visible; nothing
     beyond the in-flight key ever appears. *)
  let spied = List.sort_uniq compare !spied in
  List.iter
    (fun k ->
      if not (List.mem k spied) then
        Alcotest.failf "completed key %d invisible to spy" k)
    !completed;
  List.iter
    (fun k ->
      if k > List.length !completed then
        Alcotest.failf "spy saw phantom key %d" k)
    spied

(* Publication-order regression: find_min during a partially-visible merge
   must never lose reachability of items (single-threaded re-check that the
   merged publication preserves the whole content). *)
let prop_insert_never_loses_items =
  qtest "insert conserves the key multiset" ~count:150 keys_gen (fun keys ->
      match keys with
      | [] -> true
      | _ ->
          let t = make_lsm () in
          insert_keys t keys;
          let collected = ref [] in
          Dist_lsm.iter_items t ~f:(fun it ->
              collected := Item.key it :: !collected);
          List.sort compare !collected = List.sort compare keys)

let () =
  Alcotest.run "dist_lsm"
    [
      ( "sequential",
        [
          prop_dist_lsm_is_exact_pq;
          Alcotest.test_case "invariants" `Quick test_levels_strictly_decreasing;
          Alcotest.test_case "total_filled" `Quick test_total_filled;
          prop_insert_never_loses_items;
        ] );
      ( "spill",
        [
          Alcotest.test_case "threshold" `Quick test_spill_threshold;
          Alcotest.test_case "conservation" `Quick test_spill_conserves_items;
          Alcotest.test_case "max_level_for_k" `Quick test_max_level_for_k;
        ] );
      ( "consolidate",
        [
          Alcotest.test_case "removes dead" `Quick test_consolidate_removes_dead;
          Alcotest.test_case "to empty" `Quick test_consolidate_empty;
        ] );
      ( "spy",
        [
          Alcotest.test_case "copies alive" `Quick test_spy_copies_alive_items;
          Alcotest.test_case "empty victim" `Quick test_spy_empty_victim;
          Alcotest.test_case "all-dead victim" `Quick test_spy_all_dead_victim;
          Alcotest.test_case "level order" `Quick test_spy_respects_level_order;
          Alcotest.test_case "copy order strictly decreasing" `Quick
            test_spy_copy_levels_strictly_decreasing;
          Alcotest.test_case "spy vs merges (32 fuzzed schedules)" `Slow
            test_spy_racing_merges_fuzzed;
          Alcotest.test_case "crash mid-publication" `Quick
            test_crash_mid_publication;
        ] );
    ]
