(* Tests for lib/chaos: the plan grammar, the fault engine's semantics on
   the simulator (arm-next-CAS, stalls, crashes, fire-once rules), and the
   end-to-end drive cases the chaos gate (bin/chaos.exe) is built from. *)

open Helpers
module Sim = Klsm_backend.Sim
module Chaos = Klsm_chaos.Chaos
module Drive = Klsm_chaos.Drive
module Vfs = Klsm_store.Vfs
module Xoshiro = Klsm_primitives.Xoshiro

(* ---------------- plan grammar ---------------- *)

let roundtrip text =
  match Chaos.parse_plan text with
  | Error e -> Alcotest.failf "parse %S: %s" text e
  | Ok plan -> Chaos.plan_to_string plan

let test_grammar_roundtrip () =
  List.iter
    (fun text -> check_string "roundtrip" text (roundtrip text))
    [
      "dist.insert.pre_size:crash";
      "shared.push_snapshot.before@4:casfail";
      "dist.spy.block@2#3:stall:500";
      "block_array.consolidate#0:casfail,dist.insert.spill@12#1:crash";
      (* The I/O fault verbs (ISSUE 8, docs/CHAOS.md). *)
      "vfs.write@2:torn:9";
      "vfs.write:shortwrite:7";
      "vfs.write:enospc:sticky";
      "vfs.read@3:eio:sticky";
      "vfs.read:bitflip";
      "vfs.rename:droprename";
      "vfs.fsync:fsynclie";
      "vfs.fsyncdir:eio,vfs.remove@2:enospc";
    ]

let test_grammar_rejects () =
  List.iter
    (fun text ->
      match Chaos.parse_plan text with
      | Ok _ -> Alcotest.failf "accepted bad plan %S" text
      | Error _ -> ())
    [
      "no-action";
      "site:explode";
      "site:stall:0";
      "site:stall:x";
      "site@0:crash";
      "site#-1:crash";
      ":crash";
      "vfs.write:torn";
      "vfs.write:torn:x";
      "vfs.write:shortwrite";
      "vfs.read:eio:stickyy";
      "vfs.read:bitflip:3";
    ]

let test_random_plan_covers_kinds () =
  (* Any 3 consecutive sweep indices exercise all three fault kinds — the
     property the acceptance bar of the chaos suite rests on. *)
  let rng = Xoshiro.create ~seed:3 in
  let kinds = Hashtbl.create 4 in
  for k = 0 to 2 do
    List.iter
      (fun (r : Chaos.rule) ->
        let kind =
          match r.Chaos.action with
          | Chaos.Cas_fail -> "casfail"
          | Chaos.Stall _ -> "stall"
          | Chaos.Crash -> "crash"
          | Chaos.Io _ -> "io"
        in
        Hashtbl.replace kinds kind ())
      (Chaos.random_plan ~rng ~sites:Chaos.sites ~num_threads:4 ~rules:1 k)
  done;
  check_int "all three kinds" 3 (Hashtbl.length kinds)

let test_random_plan_never_crashes_tid0 () =
  let rng = Xoshiro.create ~seed:17 in
  for k = 0 to 199 do
    List.iter
      (fun (r : Chaos.rule) ->
        match (r.Chaos.action, r.Chaos.tid) with
        | Chaos.Crash, Some 0 -> Alcotest.fail "generated a tid-0 crash"
        | Chaos.Crash, None -> Alcotest.fail "generated an unfiltered crash"
        | _ -> ())
      (Chaos.random_plan ~rng ~sites:Chaos.sites ~num_threads:4 ~rules:2 k)
  done

(* One plan string drives both engines: [io_rules] compiles the vfs.*
   rules for the Faulty vfs (crash becomes a process death; casfail and
   stall have no I/O meaning), and leaves the simulator rules alone. *)
let test_io_rules_compilation () =
  let plan =
    match
      Chaos.parse_plan
        "vfs.write@3:torn:9,vfs.read:bitflip,vfs.rename:crash,vfs.fsync:casfail,dist.insert.pre_size:crash"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let rules = Chaos.io_rules plan in
  check_int "two io faults + one io crash compile" 3 (List.length rules);
  let f = Vfs.faulty () in
  Vfs.arm f rules;
  let vfs = Vfs.vfs f in
  vfs.Vfs.mkdir_p "/io";
  (* vfs.read:bitflip fires on the first read... *)
  let h = vfs.Vfs.create "/io/a" in
  h.Vfs.h_write "payload";
  h.Vfs.h_close ();
  check_bool "bit flipped on read" true
    (not (String.equal "payload" (vfs.Vfs.read_file "/io/a")));
  check_string "fault spent: second read clean" "payload"
    (vfs.Vfs.read_file "/io/a");
  (* ...vfs.rename:crash is a process death at the rename... *)
  (match vfs.Vfs.rename "/io/a" "/io/b" with
  | () -> Alcotest.fail "compiled vfs crash did not kill the process"
  | exception Vfs.Crashed _ -> ());
  (* ...and vfs.write@3:torn:9 tears the third write of the run. *)
  Vfs.crash f;
  let h = vfs.Vfs.create "/io/c" in
  h.Vfs.h_write "first write intact";
  (match h.Vfs.h_write "second write torn" with
  | () -> Alcotest.fail "torn write did not kill the process"
  | exception Vfs.Crashed _ -> ());
  check_int "every compiled rule fired" 3 (Vfs.injected f)

(* ---------------- engine semantics on the simulator ---------------- *)

(* A rule fires exactly once, on its hit index, only for its thread. *)
let test_rule_fires_once_on_hit () =
  Sim.configure ~seed:1 ();
  let plan = [ Chaos.rule ~tid:1 ~hit:3 "unit.site" (Chaos.Stall 10) ] in
  Chaos.install plan;
  Fun.protect ~finally:Chaos.uninstall (fun () ->
      Sim.parallel_run ~num_threads:2 (fun _tid ->
          for _ = 1 to 10 do
            Sim.fault_point "unit.site"
          done);
      check_int "fired once" 1 (Chaos.fired_count plan);
      check_int "one stall" 1 (Chaos.stats ()).Chaos.stalls)

(* Cas_fail arms the thread's next CAS: it fails spuriously once, then the
   retry (with the same expected value) succeeds. *)
let test_casfail_forces_one_failure () =
  Sim.configure ~seed:1 ();
  let plan = [ Chaos.rule "unit.cas" Chaos.Cas_fail ] in
  Chaos.install plan;
  Fun.protect ~finally:Chaos.uninstall (fun () ->
      Sim.parallel_run ~num_threads:1 (fun _ ->
          let a = Sim.make 0 in
          Sim.fault_point "unit.cas";
          check_bool "armed CAS fails" false (Sim.compare_and_set a 0 1);
          check_int "value untouched" 0 (Sim.get a);
          check_bool "retry succeeds" true (Sim.compare_and_set a 0 1);
          check_int "value updated" 1 (Sim.get a)))

(* A crash kills only the targeted fiber; the run completes and the other
   fibers' work survives. *)
let test_crash_kills_one_fiber () =
  Sim.configure ~seed:1 ();
  let plan = [ Chaos.rule ~tid:1 "unit.crash" Chaos.Crash ] in
  Chaos.install plan;
  Fun.protect ~finally:Chaos.uninstall (fun () ->
      let reached = Array.make 2 false in
      Sim.parallel_run ~num_threads:2 (fun tid ->
          Sim.fault_point "unit.crash";
          reached.(tid) <- true);
      check_bool "survivor finished" true reached.(0);
      check_bool "victim died at the fault point" false reached.(1);
      check_list_int "crashed tid recorded" [ 1 ] (Chaos.crashed_tids ()))

(* ---------------- end-to-end drive cases ---------------- *)

let no_violations (c : Drive.case_result) =
  if c.Drive.violations <> [] then
    Alcotest.failf "case %s seed=0x%x plan=%s violated: %s" c.Drive.label
      c.Drive.seed c.Drive.plan_text
      (String.concat "; " c.Drive.violations)

let test_queue_case_casfail_stall () =
  let plan =
    match
      Chaos.parse_plan
        "shared.push_snapshot.before@2:casfail,dist.spy.block@3:stall:5000"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let c = Drive.queue_case ~seed:42 ~threads:4 ~per_thread:200 ~k:8 plan in
  no_violations c;
  check_bool "cas fault injected" true (c.Drive.cas_fails = 1)

let test_queue_case_crash () =
  let plan = [ Chaos.rule ~tid:2 ~hit:5 "dist.insert.pre_size" Chaos.Crash ] in
  let c = Drive.queue_case ~seed:43 ~threads:4 ~per_thread:200 ~k:8 plan in
  no_violations c;
  check_int "crash injected" 1 c.Drive.crashes

(* The kill-and-restart store case: a crash after the spill's durability
   point must be recovered by Store/Spill.recover with nothing lost,
   duplicated, or resurrected (docs/STORAGE.md failure matrix). *)
let test_store_case_kill_mid_spill () =
  let plan = [ Chaos.rule ~tid:1 ~hit:1 "store.spill" Chaos.Crash ] in
  let c =
    Drive.store_case ~seed:45 ~threads:4 ~per_thread:200 ~k:8 ~threshold:64
      plan
  in
  no_violations c;
  check_int "crash injected" 1 c.Drive.crashes;
  check_bool "recovery reinserted items" true
    (List.assoc "recovered_items" c.Drive.info > 0)

let test_sched_case_crash () =
  let plan =
    [ Chaos.rule ~tid:1 ~hit:4 "sched.execute.post_lease" Chaos.Crash ]
  in
  let c = Drive.sched_case ~seed:44 ~threads:4 ~roots:50 plan in
  no_violations c;
  check_int "crash injected" 1 c.Drive.crashes

(* The teeth check: with Listing 4's publication order flipped, the same
   conservation oracle must detect the planted loss — the suite can catch
   the bug class it exists for. *)
let test_teeth_catch () =
  let caught, cases = Drive.teeth ~plans:6 () in
  check_int "ran all plans" 6 (List.length cases);
  check_bool "planted publication-order bug caught" true caught;
  (* The flag is restored: a normal crash case must pass again. *)
  test_queue_case_crash ()

let () =
  Alcotest.run "chaos"
    [
      ( "grammar",
        [
          Alcotest.test_case "roundtrip" `Quick test_grammar_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_grammar_rejects;
          Alcotest.test_case "kind coverage" `Quick
            test_random_plan_covers_kinds;
          Alcotest.test_case "no tid-0 crashes" `Quick
            test_random_plan_never_crashes_tid0;
          Alcotest.test_case "io_rules compile for the vfs engine" `Quick
            test_io_rules_compilation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fires once on hit" `Quick
            test_rule_fires_once_on_hit;
          Alcotest.test_case "casfail arms next CAS" `Quick
            test_casfail_forces_one_failure;
          Alcotest.test_case "crash kills one fiber" `Quick
            test_crash_kills_one_fiber;
        ] );
      ( "drive",
        [
          Alcotest.test_case "queue casfail+stall" `Quick
            test_queue_case_casfail_stall;
          Alcotest.test_case "queue crash" `Quick test_queue_case_crash;
          Alcotest.test_case "store kill mid-spill" `Quick
            test_store_case_kill_mid_spill;
          Alcotest.test_case "sched crash" `Quick test_sched_case_crash;
          Alcotest.test_case "teeth" `Slow test_teeth_catch;
        ] );
    ]
