(* Tests for lib/store — the SHA-256 implementation, the content-addressed
   object store, the block codec, the crash-recovery journal, the spill
   policy end-to-end on the simulator, and the registry's +spill/+store
   spec suffixes (docs/STORAGE.md). *)

open Helpers
module Sim = Klsm_backend.Sim
module Sha256 = Klsm_store.Sha256
module Store = Klsm_store.Store
module Journal = Klsm_store.Journal
module Spill = Klsm_store.Spill.Make (Sim)
module K = Klsm_core.Klsm.Make (Sim)
module R = Klsm_harness.Registry.Make (Sim)
module Obs = Klsm_obs.Obs
module Bloom = Klsm_primitives.Bloom

let rm_rf root =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> go (Filename.concat p n)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists root then go root

let with_root f =
  let root = Filename.temp_dir "klsm-store-test" "" in
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)

(* ---------------- sha256 ---------------- *)

let test_sha256_vectors () =
  (* FIPS 180-2 test vectors. *)
  check_string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex_digest "");
  check_string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex_digest "abc");
  check_string "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex_digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_string "one million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_digest (String.make 1_000_000 'a'))

let test_line_checksum () =
  check_int "8 hex chars" 8 (String.length (Sha256.line_checksum "S t0.0 d 1 2"));
  check_bool "distinct payloads differ" true
    (not (String.equal (Sha256.line_checksum "a") (Sha256.line_checksum "b")))

(* ---------------- object store ---------------- *)

let test_store_roundtrip () =
  with_root @@ fun root ->
  let s = Store.open_store ~root () in
  let payload = "hello, spilled world" in
  let d = Store.put s payload in
  check_string "content addressed" (Sha256.hex_digest payload) d;
  check_string "get returns the bytes" payload (Store.get s d);
  check_string "idempotent put" d (Store.put s payload);
  check_bool "contains" true (Store.contains s d)

let test_store_corruption_detected () =
  with_root @@ fun root ->
  let s = Store.open_store ~root () in
  let d = Store.put s "precious bytes" in
  (* Flip one byte in the object file: get must fail checked, not lie. *)
  let path = Store.object_path s d in
  let bytes = Bytes.of_string (Store.get s d) in
  Bytes.set bytes 3 (Char.chr (Char.code (Bytes.get bytes 3) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  match Store.get s d with
  | _ -> Alcotest.fail "corrupt object returned as if intact"
  | exception Store.Corrupt _ -> ()

let test_store_refcount_gc () =
  with_root @@ fun root ->
  let s = Store.open_store ~root () in
  let d1 = Store.put s "object one" in
  let d2 = Store.put s "object two" in
  Store.incr_ref s d1;
  check_int "refcount" 1 (Store.refcount s d1);
  check_int "unreferenced object collected" 1 (Store.gc s);
  check_string "referenced object survives" "object one" (Store.get s d1);
  (match Store.get s d2 with
  | _ -> Alcotest.fail "unreferenced object survived gc"
  | exception Sys_error _ -> ());
  Store.decr_ref s d1;
  check_int "refcount back to zero" 0 (Store.refcount s d1);
  check_int "released object collected" 1 (Store.gc s)

(* ---------------- journal ---------------- *)

let test_journal_replay () =
  with_root @@ fun root ->
  let dir = Store.journal_dir root in
  let j = Journal.open_journal ~dir ~num_threads:2 () in
  let a = Journal.append_spill j ~tid:0 ~digest:"d1" ~level:3 ~count:8 in
  let b = Journal.append_spill j ~tid:1 ~digest:"d2" ~level:2 ~count:4 in
  let c = Journal.append_spill j ~tid:0 ~digest:"d1" ~level:3 ~count:8 in
  Journal.append_rehydrate j ~iid:b ~digest:"d2";
  Journal.close j;
  let records, bad = Journal.read_all ~dir in
  check_int "no torn lines" 0 bad;
  let live = Journal.live_instances records in
  check_int "rehydrated instance is dead" 2 (List.length live);
  check_bool "first instance live" true
    (List.exists (fun l -> String.equal l.Journal.iid a) live);
  check_bool "same-content second instance live" true
    (List.exists (fun l -> String.equal l.Journal.iid c) live);
  (* A fresh writer over the same dir continues above the existing
     sequence numbers: instance ids never recycle. *)
  let j2 = Journal.open_journal ~dir ~num_threads:2 () in
  let d = Journal.append_spill j2 ~tid:0 ~digest:"d3" ~level:1 ~count:1 in
  check_bool "no iid reuse" true (d <> a && d <> c);
  Journal.close j2

let test_journal_torn_tail () =
  with_root @@ fun root ->
  let dir = Store.journal_dir root in
  let j = Journal.open_journal ~dir ~num_threads:1 () in
  let a = Journal.append_spill j ~tid:0 ~digest:"d1" ~level:0 ~count:2 in
  Journal.close j;
  (* A crash mid-append leaves a checksum-less torn last line. *)
  let oc =
    open_out_gen
      [ Open_append; Open_binary ]
      0o644
      (Filename.concat dir "spill-0.log")
  in
  output_string oc "S t0.99 dea";
  close_out oc;
  let records, bad = Journal.read_all ~dir in
  check_int "torn line skipped" 1 bad;
  let live = Journal.live_instances records in
  check_int "intact record survives" 1 (List.length live);
  check_string "the intact instance" a (List.hd live).Journal.iid

let test_journal_checkpoint () =
  with_root @@ fun root ->
  let dir = Store.journal_dir root in
  let j = Journal.open_journal ~dir ~num_threads:2 () in
  let a = Journal.append_spill j ~tid:0 ~digest:"d1" ~level:3 ~count:8 in
  let _b = Journal.append_spill j ~tid:1 ~digest:"d2" ~level:2 ~count:4 in
  let records, _ = Journal.read_all ~dir in
  let live = Journal.live_instances records in
  check_int "first epoch" 1 (Journal.checkpoint j ~live);
  check_bool "spill logs compacted away" true
    (not (Sys.file_exists (Filename.concat dir "spill-0.log")));
  let records, bad = Journal.read_all ~dir in
  check_int "epoch replays clean" 0 bad;
  let live2 = Journal.live_instances records in
  check_int "live set preserved" 2 (List.length live2);
  check_bool "original instance ids kept" true
    (List.exists (fun l -> String.equal l.Journal.iid a) live2);
  Journal.close j

(* ---------------- block codec ---------------- *)

let test_codec_roundtrip () =
  let pairs = Array.init 17 (fun i -> (1000 - (7 * i), i * 3)) in
  let bytes = Spill.encode ~level:5 pairs in
  check_int "size formula" (Spill.encoded_size ~count:17) (String.length bytes);
  let level, pairs' = Spill.decode bytes in
  check_int "level" 5 level;
  check_bool "pairs identical" true (pairs = pairs');
  check_string "re-encode is byte-identical" bytes (Spill.encode ~level:5 pairs');
  (* Structural damage is a checked failure at the codec layer too. *)
  let b = Bytes.of_string bytes in
  Bytes.set b 0 'X';
  match Spill.decode (Bytes.unsafe_to_string b) with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception Store.Corrupt _ -> ()

(* ---------------- spill policy end-to-end (simulator) ---------------- *)

let run_spill_workload ~seed ~threads ~per_thread ~handles q key_of got =
  Sim.parallel_run ~num_threads:threads (fun tid ->
      let h = K.register q tid in
      handles.(tid) <- Some h;
      let rng = Xoshiro.create ~seed:(seed + (7919 * tid)) in
      for i = 0 to per_thread - 1 do
        let payload = (tid * per_thread) + i in
        let key = Xoshiro.int rng 100_000 in
        key_of.(payload) <- key;
        K.insert h key payload;
        if i land 1 = 1 then
          match K.try_delete_min h with
          | Some (_, v) -> got.(v) <- got.(v) + 1
          | None -> ()
      done)

let test_spill_rehydrate_conservation () =
  with_root @@ fun root ->
  Sim.configure ~seed:7 ();
  let threads = 4 and per_thread = 300 in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let spill = Spill.create ~threshold:64 ~num_threads:threads ~root () in
  Obs.set_enabled was;
  let q =
    K.create_with ~seed:7 ~k:8 ~num_threads:threads
      ~spill_policy:(Spill.policy spill) ()
  in
  let total = threads * per_thread in
  let key_of = Array.make total (-1) in
  let got = Array.make total 0 in
  let handles = Array.make threads None in
  run_spill_workload ~seed:7 ~threads ~per_thread ~handles q key_of got;
  (* Fault-free run: plain conservation must hold straight through the
     spill → rehydrate round-trips. *)
  let h = Option.get handles.(0) in
  let misses = ref 0 in
  while !misses < 300 do
    match K.try_delete_min h with
    | Some (dk, v) ->
        got.(v) <- got.(v) + 1;
        check_int "key survives the round-trip" key_of.(v) dk;
        misses := 0
    | None -> incr misses
  done;
  Array.iteri
    (fun p c -> if c <> 1 then Alcotest.failf "payload %d delivered %d times" p c)
    got;
  let st = Spill.stats spill in
  let counter name =
    match List.assoc_opt name st.Obs.counters with
    | Some per -> Array.fold_left ( + ) 0 per
    | None -> 0
  in
  check_bool "blocks actually spilled" true (counter "store.spill" > 0);
  check_bool "blocks actually rehydrated" true (counter "store.rehydrate" > 0);
  Spill.close spill

(* Recovery against the failure matrix (docs/STORAGE.md), with the two
   interesting durable states built deterministically:

   - a {e mid-spill kill}: the object and [S] record are durable but the
     cold twin never linked (here: [maybe_spill]'s result is dropped on
     the floor) — recovery MUST bring those items back;
   - a {e rehydrated instance}: its items escaped into RAM before the
     kill ([R] on disk) — recovery MUST NOT resurrect them. *)
let test_recovery_conservation () =
  with_root @@ fun root ->
  Sim.configure ~seed:13 ();
  let alive _ = true in
  let spill = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let mk_block pairs =
    let pairs = Array.copy pairs in
    Array.sort (fun (a, _) (b, _) -> compare b a) pairs;
    Spill.Block.of_sorted_array ~filter:Bloom.empty
      (Array.map (fun (k, v) -> Spill.Item.make k v) pairs)
  in
  let pairs_a = Array.init 9 (fun i -> (100 + i, i)) in
  let pairs_b = Array.init 5 (fun i -> (50 + i, 100 + i)) in
  let pairs_c = Array.init 4 (fun i -> (200 + i, 200 + i)) in
  ignore (Spill.maybe_spill spill ~alive ~tid:0 (mk_block pairs_a));
  ignore (Spill.maybe_spill spill ~alive ~tid:1 (mk_block pairs_b));
  let cold_c = Spill.maybe_spill spill ~alive ~tid:0 (mk_block pairs_c) in
  (* Rehydrate instance c: its items are observable in RAM from here on,
     so the crash boundary must never bring them back. *)
  ignore (Spill.Block.items cold_c);
  Spill.close spill;
  (* Restart: disk is all that survives. *)
  let spill2 = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let q2 = K.create_with ~seed:1 ~k:8 ~num_threads:1 () in
  let h2 = K.register q2 0 in
  let r = Spill.recover spill2 ~link:(fun b -> K.adopt_block h2 b) in
  check_int "journal replays clean" 0 r.Spill.skipped_lines;
  check_int "no corrupt objects" 0 (List.length r.Spill.corrupt);
  check_int "both unlinked instances recovered" 2 r.Spill.blocks;
  check_int "all their items recovered" 14 r.Spill.items;
  (* Drain and compare the exact multiset. *)
  let expected = Hashtbl.create 16 in
  Array.iter
    (fun (k, v) -> Hashtbl.replace expected v k)
    (Array.append pairs_a pairs_b);
  let drained = ref 0 and misses = ref 0 in
  while !misses < 300 do
    match K.try_delete_min h2 with
    | Some (dk, v) ->
        incr drained;
        misses := 0;
        (match Hashtbl.find_opt expected v with
        | None ->
            Alcotest.failf "payload %d not owed (resurrected or invented)" v
        | Some k ->
            check_int "recovered byte-identical" k dk;
            Hashtbl.remove expected v)
    | None -> incr misses
  done;
  check_int "drain delivers the journal's promise" r.Spill.items !drained;
  check_int "nothing lost" 0 (Hashtbl.length expected);
  Spill.close spill2;
  (* After a full recovery drain every instance was rehydrated; a third
     open of the same root must find nothing live (the post-checkpoint
     [R] records are durable because recovery checkpoints before it
     links). *)
  let spill3 = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let q3 = K.create_with ~seed:2 ~k:8 ~num_threads:1 () in
  let h3 = K.register q3 0 in
  let r2 = Spill.recover spill3 ~link:(fun b -> K.adopt_block h3 b) in
  check_int "drained store recovers empty" 0 r2.Spill.items;
  Spill.close spill3

(* ---------------- registry spec suffixes ---------------- *)

let parse_ok s =
  match R.parse_spec s with
  | Ok sp -> sp
  | Error e -> Alcotest.failf "parse %S: %s" s e

let parse_err s =
  match R.parse_spec s with
  | Ok sp -> Alcotest.failf "accepted %S as %s" s (R.spec_name sp)
  | Error e -> e

let test_parse_suffixes () =
  (match parse_ok "klsm:256+spill:64k" with
  | R.Stored (R.Klsm 256, cfg) ->
      check_int "64k is binary" 65536 cfg.R.spill_bytes;
      check_string "default store dir" R.default_store_dir cfg.R.store_dir
  | sp -> Alcotest.failf "wrong spec %s" (R.spec_name sp));
  (match parse_ok "klsm-sharded:256:4+spill:1m+store:/tmp" with
  | R.Stored (R.Klsm_sharded { k = 256; shards = 4; _ }, cfg) ->
      check_int "1m" (1 lsl 20) cfg.R.spill_bytes;
      check_string "explicit dir" "/tmp" cfg.R.store_dir
  | sp -> Alcotest.failf "wrong spec %s" (R.spec_name sp));
  (match parse_ok "klsm:4+store:/tmp" with
  | R.Stored (R.Klsm 4, cfg) ->
      check_int "default threshold" R.default_spill_bytes cfg.R.spill_bytes
  | sp -> Alcotest.failf "wrong spec %s" (R.spec_name sp));
  (* '+' inside a base name is not a suffix separator. *)
  (match parse_ok "heap+lock" with
  | R.Heap_lock -> ()
  | sp -> Alcotest.failf "wrong spec %s" (R.spec_name sp));
  check_string "spec_name includes the threshold" "klsm(256)+spill:65536"
    (R.spec_name (parse_ok "klsm:256+spill:64k"))

let test_parse_suffix_rejects () =
  List.iter
    (fun s ->
      let msg = parse_err s in
      check_bool "error names the offending spec" true
        (String.length msg > 0))
    [
      "klsm:256+spill:abc";
      "klsm:256+spill:-4";
      "klsm:256+spill";
      "klsm:256+storage:3";
      "klsm:256+store:";
      "heap+lock+spill:64";
      "linden+spill:64";
    ];
  (* A store path that exists and is not a directory is a parse error. *)
  let f = Filename.temp_file "klsm-store-test" ".notadir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove f)
    (fun () -> ignore (parse_err (Printf.sprintf "klsm:8+store:%s" f)))

let () =
  Alcotest.run "store"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "line checksum" `Quick test_line_checksum;
        ] );
      ( "objects",
        [
          Alcotest.test_case "put/get roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_store_corruption_detected;
          Alcotest.test_case "refcount gc" `Quick test_store_refcount_gc;
        ] );
      ( "journal",
        [
          Alcotest.test_case "replay and liveness" `Quick test_journal_replay;
          Alcotest.test_case "torn tail skipped" `Quick test_journal_torn_tail;
          Alcotest.test_case "checkpoint compacts" `Quick
            test_journal_checkpoint;
        ] );
      ( "codec",
        [ Alcotest.test_case "roundtrip + corruption" `Quick test_codec_roundtrip ] );
      ( "spill",
        [
          Alcotest.test_case "spill/rehydrate conservation" `Quick
            test_spill_rehydrate_conservation;
          Alcotest.test_case "kill-and-recover conservation" `Quick
            test_recovery_conservation;
        ] );
      ( "registry",
        [
          Alcotest.test_case "suffix parsing" `Quick test_parse_suffixes;
          Alcotest.test_case "suffix rejects" `Quick test_parse_suffix_rejects;
        ] );
    ]
