(* Tests for lib/store — the SHA-256 implementation, the content-addressed
   object store, the block codec, the crash-recovery journal, the spill
   policy end-to-end on the simulator, and the registry's +spill/+store
   spec suffixes (docs/STORAGE.md). *)

open Helpers
module Sim = Klsm_backend.Sim
module RealB = Klsm_backend.Real
module Sha256 = Klsm_store.Sha256
module Store = Klsm_store.Store
module Journal = Klsm_store.Journal
module Vfs = Klsm_store.Vfs
module Audit = Klsm_store.Audit
module Spill = Klsm_store.Spill.Make (Sim)
module SpillR = Klsm_store.Spill.Make (RealB)
module K = Klsm_core.Klsm.Make (Sim)
module KR = Klsm_core.Klsm.Make (RealB)
module R = Klsm_harness.Registry.Make (Sim)
module Oracle = Klsm_harness.Oracle
module Obs = Klsm_obs.Obs
module Bloom = Klsm_primitives.Bloom

let rm_rf root =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> go (Filename.concat p n)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists root then go root

let with_root f =
  let root = Filename.temp_dir "klsm-store-test" "" in
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> f root)

(* ---------------- sha256 ---------------- *)

let test_sha256_vectors () =
  (* FIPS 180-2 test vectors. *)
  check_string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex_digest "");
  check_string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex_digest "abc");
  check_string "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex_digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_string "one million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex_digest (String.make 1_000_000 'a'))

let test_line_checksum () =
  check_int "8 hex chars" 8 (String.length (Sha256.line_checksum "S t0.0 d 1 2"));
  check_bool "distinct payloads differ" true
    (not (String.equal (Sha256.line_checksum "a") (Sha256.line_checksum "b")))

(* ---------------- object store ---------------- *)

let test_store_roundtrip () =
  with_root @@ fun root ->
  let s = Store.open_store ~root () in
  let payload = "hello, spilled world" in
  let d = Store.put s payload in
  check_string "content addressed" (Sha256.hex_digest payload) d;
  check_string "get returns the bytes" payload (Store.get s d);
  check_string "idempotent put" d (Store.put s payload);
  check_bool "contains" true (Store.contains s d)

let test_store_corruption_detected () =
  with_root @@ fun root ->
  let s = Store.open_store ~root () in
  let d = Store.put s "precious bytes" in
  (* Flip one byte in the object file: get must fail checked, not lie. *)
  let path = Store.object_path s d in
  let bytes = Bytes.of_string (Store.get s d) in
  Bytes.set bytes 3 (Char.chr (Char.code (Bytes.get bytes 3) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  match Store.get s d with
  | _ -> Alcotest.fail "corrupt object returned as if intact"
  | exception Store.Corrupt _ -> ()

let test_store_refcount_gc () =
  with_root @@ fun root ->
  let s = Store.open_store ~root () in
  let d1 = Store.put s "object one" in
  let d2 = Store.put s "object two" in
  Store.incr_ref s d1;
  check_int "refcount" 1 (Store.refcount s d1);
  check_int "unreferenced object collected" 1 (Store.gc s);
  check_string "referenced object survives" "object one" (Store.get s d1);
  (match Store.get s d2 with
  | _ -> Alcotest.fail "unreferenced object survived gc"
  | exception Sys_error _ -> ());
  Store.decr_ref s d1;
  check_int "refcount back to zero" 0 (Store.refcount s d1);
  check_int "released object collected" 1 (Store.gc s)

(* ---------------- journal ---------------- *)

let test_journal_replay () =
  with_root @@ fun root ->
  let dir = Store.journal_dir root in
  let j = Journal.open_journal ~dir ~num_threads:2 () in
  let a = Journal.append_spill j ~tid:0 ~digest:"d1" ~level:3 ~count:8 in
  let b = Journal.append_spill j ~tid:1 ~digest:"d2" ~level:2 ~count:4 in
  let c = Journal.append_spill j ~tid:0 ~digest:"d1" ~level:3 ~count:8 in
  Journal.append_rehydrate j ~iid:b ~digest:"d2";
  Journal.close j;
  let rp = Journal.read_all ~dir () in
  check_int "no torn lines" 0 rp.Journal.torn_lines;
  let live = Journal.live_instances rp.Journal.records in
  check_int "rehydrated instance is dead" 2 (List.length live);
  check_bool "first instance live" true
    (List.exists (fun l -> String.equal l.Journal.iid a) live);
  check_bool "same-content second instance live" true
    (List.exists (fun l -> String.equal l.Journal.iid c) live);
  (* A fresh writer over the same dir continues above the existing
     sequence numbers: instance ids never recycle. *)
  let j2 = Journal.open_journal ~dir ~num_threads:2 () in
  let d = Journal.append_spill j2 ~tid:0 ~digest:"d3" ~level:1 ~count:1 in
  check_bool "no iid reuse" true (d <> a && d <> c);
  Journal.close j2

let test_journal_torn_tail () =
  with_root @@ fun root ->
  let dir = Store.journal_dir root in
  let j = Journal.open_journal ~dir ~num_threads:1 () in
  let a = Journal.append_spill j ~tid:0 ~digest:"d1" ~level:0 ~count:2 in
  Journal.close j;
  (* A crash mid-append leaves a checksum-less torn last line. *)
  let oc =
    open_out_gen
      [ Open_append; Open_binary ]
      0o644
      (Filename.concat dir "spill-0.log")
  in
  output_string oc "S t0.99 dea";
  close_out oc;
  let rp = Journal.read_all ~dir () in
  check_int "torn line skipped" 1 rp.Journal.torn_lines;
  let live = Journal.live_instances rp.Journal.records in
  check_int "intact record survives" 1 (List.length live);
  check_string "the intact instance" a (List.hd live).Journal.iid

let test_journal_checkpoint () =
  with_root @@ fun root ->
  let dir = Store.journal_dir root in
  let j = Journal.open_journal ~dir ~num_threads:2 () in
  let a = Journal.append_spill j ~tid:0 ~digest:"d1" ~level:3 ~count:8 in
  let _b = Journal.append_spill j ~tid:1 ~digest:"d2" ~level:2 ~count:4 in
  let live =
    Journal.live_instances (Journal.read_all ~dir ()).Journal.records
  in
  check_int "first epoch" 1 (Journal.checkpoint j ~live);
  check_bool "spill logs compacted away" true
    (not (Sys.file_exists (Filename.concat dir "spill-0.log")));
  let rp = Journal.read_all ~dir () in
  check_int "epoch replays clean" 0 rp.Journal.torn_lines;
  let live2 = Journal.live_instances rp.Journal.records in
  check_int "live set preserved" 2 (List.length live2);
  check_bool "original instance ids kept" true
    (List.exists (fun l -> String.equal l.Journal.iid a) live2);
  Journal.close j

(* ---------------- block codec ---------------- *)

let test_codec_roundtrip () =
  let pairs = Array.init 17 (fun i -> (1000 - (7 * i), i * 3)) in
  let bytes = Spill.encode ~level:5 pairs in
  check_int "size formula" (Spill.encoded_size ~count:17) (String.length bytes);
  let level, pairs' = Spill.decode bytes in
  check_int "level" 5 level;
  check_bool "pairs identical" true (pairs = pairs');
  check_string "re-encode is byte-identical" bytes (Spill.encode ~level:5 pairs');
  (* Structural damage is a checked failure at the codec layer too. *)
  let b = Bytes.of_string bytes in
  Bytes.set b 0 'X';
  match Spill.decode (Bytes.unsafe_to_string b) with
  | _ -> Alcotest.fail "bad magic accepted"
  | exception Store.Corrupt _ -> ()

(* ---------------- spill policy end-to-end (simulator) ---------------- *)

let run_spill_workload ~seed ~threads ~per_thread ~handles q key_of got =
  Sim.parallel_run ~num_threads:threads (fun tid ->
      let h = K.register q tid in
      handles.(tid) <- Some h;
      let rng = Xoshiro.create ~seed:(seed + (7919 * tid)) in
      for i = 0 to per_thread - 1 do
        let payload = (tid * per_thread) + i in
        let key = Xoshiro.int rng 100_000 in
        key_of.(payload) <- key;
        K.insert h key payload;
        if i land 1 = 1 then
          match K.try_delete_min h with
          | Some (_, v) -> got.(v) <- got.(v) + 1
          | None -> ()
      done)

let test_spill_rehydrate_conservation () =
  with_root @@ fun root ->
  Sim.configure ~seed:7 ();
  let threads = 4 and per_thread = 300 in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let spill = Spill.create ~threshold:64 ~num_threads:threads ~root () in
  Obs.set_enabled was;
  let q =
    K.create_with ~seed:7 ~k:8 ~num_threads:threads
      ~spill_policy:(Spill.policy spill) ()
  in
  let total = threads * per_thread in
  let key_of = Array.make total (-1) in
  let got = Array.make total 0 in
  let handles = Array.make threads None in
  run_spill_workload ~seed:7 ~threads ~per_thread ~handles q key_of got;
  (* Fault-free run: plain conservation must hold straight through the
     spill → rehydrate round-trips. *)
  let h = Option.get handles.(0) in
  let misses = ref 0 in
  while !misses < 300 do
    match K.try_delete_min h with
    | Some (dk, v) ->
        got.(v) <- got.(v) + 1;
        check_int "key survives the round-trip" key_of.(v) dk;
        misses := 0
    | None -> incr misses
  done;
  Array.iteri
    (fun p c -> if c <> 1 then Alcotest.failf "payload %d delivered %d times" p c)
    got;
  let st = Spill.stats spill in
  let counter name =
    match List.assoc_opt name st.Obs.counters with
    | Some per -> Array.fold_left ( + ) 0 per
    | None -> 0
  in
  check_bool "blocks actually spilled" true (counter "store.spill" > 0);
  check_bool "blocks actually rehydrated" true (counter "store.rehydrate" > 0);
  Spill.close spill

(* Recovery against the failure matrix (docs/STORAGE.md), with the two
   interesting durable states built deterministically:

   - a {e mid-spill kill}: the object and [S] record are durable but the
     cold twin never linked (here: [maybe_spill]'s result is dropped on
     the floor) — recovery MUST bring those items back;
   - a {e rehydrated instance}: its items escaped into RAM before the
     kill ([R] on disk) — recovery MUST NOT resurrect them. *)
let test_recovery_conservation () =
  with_root @@ fun root ->
  Sim.configure ~seed:13 ();
  let alive _ = true in
  let spill = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let mk_block pairs =
    let pairs = Array.copy pairs in
    Array.sort (fun (a, _) (b, _) -> compare b a) pairs;
    Spill.Block.of_sorted_array ~filter:Bloom.empty
      (Array.map (fun (k, v) -> Spill.Item.make k v) pairs)
  in
  let pairs_a = Array.init 9 (fun i -> (100 + i, i)) in
  let pairs_b = Array.init 5 (fun i -> (50 + i, 100 + i)) in
  let pairs_c = Array.init 4 (fun i -> (200 + i, 200 + i)) in
  ignore (Spill.maybe_spill spill ~alive ~tid:0 (mk_block pairs_a));
  ignore (Spill.maybe_spill spill ~alive ~tid:1 (mk_block pairs_b));
  let cold_c = Spill.maybe_spill spill ~alive ~tid:0 (mk_block pairs_c) in
  (* Rehydrate instance c: its items are observable in RAM from here on,
     so the crash boundary must never bring them back. *)
  ignore (Spill.Block.items cold_c);
  Spill.close spill;
  (* Restart: disk is all that survives. *)
  let spill2 = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let q2 = K.create_with ~seed:1 ~k:8 ~num_threads:1 () in
  let h2 = K.register q2 0 in
  let r = Spill.recover spill2 ~link:(fun b -> K.adopt_block h2 b) in
  check_int "journal replays clean" 0 r.Audit.skipped_lines;
  check_int "no quarantined objects" 0 r.Audit.quarantined;
  check_int "nothing lost" 0 r.Audit.lost;
  check_int "both unlinked instances recovered" 2 r.Audit.recovered;
  check_int "all their items recovered" 14 r.Audit.recovered_items;
  (match Oracle.store_conservation r with
  | [] -> ()
  | v :: _ -> Alcotest.failf "audit books do not balance: %s" v);
  (* Drain and compare the exact multiset. *)
  let expected = Hashtbl.create 16 in
  Array.iter
    (fun (k, v) -> Hashtbl.replace expected v k)
    (Array.append pairs_a pairs_b);
  let drained = ref 0 and misses = ref 0 in
  while !misses < 300 do
    match K.try_delete_min h2 with
    | Some (dk, v) ->
        incr drained;
        misses := 0;
        (match Hashtbl.find_opt expected v with
        | None ->
            Alcotest.failf "payload %d not owed (resurrected or invented)" v
        | Some k ->
            check_int "recovered byte-identical" k dk;
            Hashtbl.remove expected v)
    | None -> incr misses
  done;
  check_int "drain delivers the journal's promise" r.Audit.recovered_items
    !drained;
  check_int "nothing lost" 0 (Hashtbl.length expected);
  Spill.close spill2;
  (* After a full recovery drain every instance was rehydrated; a third
     open of the same root must find nothing live (the post-checkpoint
     [R] records are durable because recovery checkpoints before it
     links). *)
  let spill3 = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let q3 = K.create_with ~seed:2 ~k:8 ~num_threads:1 () in
  let h3 = K.register q3 0 in
  let r2 = Spill.recover spill3 ~link:(fun b -> K.adopt_block h3 b) in
  check_int "drained store recovers empty" 0 r2.Audit.recovered_items;
  Spill.close spill3

(* ---------------- the Faulty-Vfs matrix (ISSUE 8) ----------------

   Every test below runs lib/store against the in-memory adversary
   [Vfs.faulty]: no real disk, fully deterministic fault injection at
   the seam.  The spill functor is instantiated over the Real backend —
   the "disk" is in-memory, so no simulator scheduling is involved. *)

let froot = "/faulty"

(* Plant [blocks] cold instances of [items_per] items each under [root]
   through [vfs], dropping every cold twin (the mid-spill-kill durable
   state); returns the payload -> key table the disk now owes. *)
let plant_faulty ?(fsync = false) ~vfs ~blocks ~items_per () =
  let spill =
    SpillR.create ~threshold:0 ~fsync ~vfs ~num_threads:1 ~root:froot ()
  in
  let alive _ = true in
  let expected = Hashtbl.create 64 in
  for b = 0 to blocks - 1 do
    let pairs =
      Array.init items_per (fun i ->
          let v = (b * items_per) + i in
          let k = 7919 * (((v * 31) + b) mod 997) in
          Hashtbl.replace expected v k;
          (k, v))
    in
    Array.sort (fun (a, _) (b, _) -> compare b a) pairs;
    ignore
      (SpillR.maybe_spill spill ~alive ~tid:0
         (SpillR.Block.of_sorted_array ~filter:Bloom.empty
            (Array.map (fun (k, v) -> SpillR.Item.make k v) pairs)))
  done;
  SpillR.close spill;
  expected

(* One recovery pass over [froot] through [vfs] into a fresh queue;
   returns the handle (for draining) and the audit, and checks the
   conservation oracle on the way out. *)
let recover_faulty ?(fsync = false) ~vfs () =
  let spill =
    SpillR.create ~threshold:0 ~fsync ~vfs ~num_threads:1 ~root:froot ()
  in
  let q = KR.create_with ~k:8 ~num_threads:1 () in
  let h = KR.register q 0 in
  let a = SpillR.recover spill ~link:(fun b -> KR.adopt_block h b) in
  (match Oracle.store_conservation a with
  | [] -> ()
  | v :: _ -> Alcotest.failf "audit books do not balance: %s" v);
  (spill, h, a)

let drain_all h =
  let out = ref [] in
  let rec loop () =
    match KR.try_delete_min h with
    | Some kv ->
        out := kv :: !out;
        loop ()
    | None -> ()
  in
  loop ();
  !out

let test_faulty_short_write () =
  let f = Vfs.faulty () in
  Vfs.arm f [ Vfs.rule "vfs.write" (Vfs.Short_write 7) ];
  let s = Store.open_store ~vfs:(Vfs.vfs f) ~root:froot () in
  let payload = "a payload much longer than seven bytes" in
  (match Store.put s payload with
  | _ -> Alcotest.fail "short write reported success"
  | exception Sys_error _ -> ());
  (* The torn temp never published: the object is absent, not torn. *)
  check_bool "short-written object not published" false
    (Store.contains s (Sha256.hex_digest payload));
  (* Fault spent; the retry succeeds and round-trips. *)
  let d = Store.put s payload in
  check_string "retry round-trips" payload (Store.get s d);
  check_int "exactly one injected fault" 1 (Vfs.injected f)

let test_faulty_sticky_enospc () =
  let f = Vfs.faulty () in
  Vfs.arm f [ Vfs.rule "vfs.write" (Vfs.Enospc true) ];
  let s = Store.open_store ~vfs:(Vfs.vfs f) ~root:froot () in
  (match Store.put s "does not fit" with
  | _ -> Alcotest.fail "ENOSPC put succeeded"
  | exception Sys_error _ -> ());
  (match Store.put s "still does not fit" with
  | _ -> Alcotest.fail "a full disk drained itself"
  | exception Sys_error _ -> ());
  check_bool "sticky fault keeps firing" true (Vfs.injected f >= 2);
  (* Operator frees space: disarm, and the path is healthy again. *)
  Vfs.disarm f;
  let d = Store.put s "space reclaimed" in
  check_string "healthy after disarm" "space reclaimed" (Store.get s d)

let test_faulty_bitflip_quarantine () =
  let f = Vfs.faulty () in
  let vfs = Vfs.vfs f in
  let expected = plant_faulty ~vfs ~blocks:2 ~items_per:5 () in
  (* Durably corrupt one object in place through the seam (a transient
     read-side bit flip would heal on recovery's retry; rot on the
     platter does not). *)
  let s = Store.open_store ~vfs ~root:froot () in
  let digests = ref [] in
  Store.iter_objects s (fun d -> digests := d :: !digests);
  check_int "two distinct objects planted" 2 (List.length !digests);
  let victim = List.hd (List.sort compare !digests) in
  let path = Store.object_path s victim in
  let bytes = Bytes.of_string (vfs.Vfs.read_file path) in
  let pos = Bytes.length bytes - 1 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  let h = vfs.Vfs.create path in
  h.Vfs.h_write (Bytes.unsafe_to_string bytes);
  h.Vfs.h_close ();
  let spill, qh, a = recover_faulty ~vfs () in
  check_int "corrupt instance quarantined" 1 a.Audit.quarantined;
  check_int "healthy instance recovered" 1 a.Audit.recovered;
  check_int "nothing lost" 0 a.Audit.lost;
  check_int "conservation" a.Audit.spilled
    (a.Audit.recovered + a.Audit.quarantined + a.Audit.lost);
  check_bool "evidence preserved under quarantine/" true
    (Store.quarantined s victim);
  check_bool "corrupt object out of the addressable namespace" false
    (Store.contains s victim);
  check_bool "gc never runs on a dirty pass" false a.Audit.gc_ran;
  (* The drain delivers exactly the recovered instance — never a byte of
     the quarantined one. *)
  let drained = drain_all qh in
  check_int "drain = recovered items" a.Audit.recovered_items
    (List.length drained);
  List.iter
    (fun (dk, v) ->
      match Hashtbl.find_opt expected v with
      | Some k when k = dk -> ()
      | Some _ -> Alcotest.failf "payload %d came back with a wrong key" v
      | None -> Alcotest.failf "payload %d invented by recovery" v)
    drained;
  SpillR.close spill

let test_faulty_transient_eio_retries () =
  let f = Vfs.faulty () in
  let vfs = Vfs.vfs f in
  let expected = plant_faulty ~vfs ~blocks:2 ~items_per:5 () in
  (* One transient EIO on the first object fetch of the recovery pass
     (read 1 is open_journal's replay, read 2 recover's replay, read 3
     the first classify fetch): the backoff-retry loop re-reads and
     recovery proceeds at full strength. *)
  Vfs.arm f [ Vfs.rule ~hit:3 "vfs.read" (Vfs.Eio false) ];
  let spill, h, a = recover_faulty ~vfs () in
  check_bool "the transient fault cost a retry" true (a.Audit.retries > 0);
  check_int "nothing quarantined" 0 a.Audit.quarantined;
  check_int "nothing lost" 0 a.Audit.lost;
  check_int "everything recovered" (Hashtbl.length expected)
    a.Audit.recovered_items;
  check_int "drain delivers everything" (Hashtbl.length expected)
    (List.length (drain_all h));
  SpillR.close spill

let test_faulty_torn_checkpoint () =
  let f = Vfs.faulty () in
  let vfs = Vfs.vfs f in
  let expected = plant_faulty ~vfs ~blocks:2 ~items_per:5 () in
  (* The first write of a recovery pass is the checkpoint's epoch temp
     file: tear it mid-line and kill the process.  The half-written
     epoch was never renamed over the real one, so the next pass replays
     the previous journal state in full. *)
  Vfs.arm f [ Vfs.rule "vfs.write" (Vfs.Torn_write 9) ];
  (match recover_faulty ~vfs () with
  | _ -> Alcotest.fail "torn checkpoint write did not crash"
  | exception Vfs.Crashed _ -> ());
  Vfs.crash f;
  let spill, h, a = recover_faulty ~vfs () in
  check_int "previous epoch wins: nothing lost" 0 a.Audit.lost;
  check_int "previous epoch wins: nothing quarantined" 0 a.Audit.quarantined;
  check_int "all planted items recovered after the crash"
    (Hashtbl.length expected) a.Audit.recovered_items;
  check_int "no torn journal lines (the tmp is not a journal file)" 0
    a.Audit.skipped_lines;
  check_int "drain delivers everything" (Hashtbl.length expected)
    (List.length (drain_all h));
  SpillR.close spill

let test_faulty_lost_stays_lost () =
  let f = Vfs.faulty () in
  let vfs = Vfs.vfs f in
  ignore (plant_faulty ~vfs ~blocks:2 ~items_per:5 ());
  (* Remove one object outright: its bytes are unproducible (not
     corrupt), so the instance is lost — and stays owed. *)
  let s = Store.open_store ~vfs ~root:froot () in
  let digests = ref [] in
  Store.iter_objects s (fun d -> digests := d :: !digests);
  let victim = List.hd (List.sort compare !digests) in
  vfs.Vfs.remove (Store.object_path s victim);
  let spill, _h, a = recover_faulty ~vfs () in
  check_int "one lost" 1 a.Audit.lost;
  check_int "one recovered" 1 a.Audit.recovered;
  check_bool "gc never runs with losses on the books" false a.Audit.gc_ran;
  SpillR.close spill;
  (* Recovery is idempotent under faults: a second pass (no drain in
     between) still owes the lost instance — the checkpoint kept its
     entry live — and invents nothing. *)
  let spill2, _h2, a2 = recover_faulty ~vfs () in
  check_int "second pass: still owed" 1 a2.Audit.lost;
  check_int "second pass: same live set" 2 a2.Audit.spilled;
  SpillR.close spill2

(* Satellite 1 regression: a rename is not durable until its directory
   is.  Non-strict mode loses the publish at power loss; strict mode
   (fsync file + parent dir) keeps it. *)
let test_powerloss_unfsynced_rename () =
  let f = Vfs.faulty ~mode:Vfs.Power_loss () in
  let vfs = Vfs.vfs f in
  let s = Store.open_store ~fsync:false ~vfs ~root:froot () in
  let d = Store.put s "vanishing bytes" in
  check_bool "visible before the crash" true (Store.contains s d);
  Vfs.crash f;
  let s2 = Store.open_store ~fsync:false ~vfs ~root:froot () in
  check_bool "unfsynced rename dropped at power loss" false
    (Store.contains s2 d);
  (* Same publish in strict mode survives the same crash. *)
  let g = Vfs.faulty ~mode:Vfs.Power_loss () in
  let vg = Vfs.vfs g in
  let t = Store.open_store ~fsync:true ~vfs:vg ~root:froot () in
  let d2 = Store.put t "durable bytes" in
  Vfs.crash g;
  let t2 = Store.open_store ~fsync:true ~vfs:vg ~root:froot () in
  check_string "strict publish survives power loss" "durable bytes"
    (Store.get t2 d2)

(* ---------------- registry spec suffixes ---------------- *)

let parse_ok s =
  match R.parse_spec s with
  | Ok sp -> sp
  | Error e -> Alcotest.failf "parse %S: %s" s e

let parse_err s =
  match R.parse_spec s with
  | Ok sp -> Alcotest.failf "accepted %S as %s" s (R.spec_name sp)
  | Error e -> e

let test_parse_suffixes () =
  (match parse_ok "klsm:256+spill:64k" with
  | R.Stored (R.Klsm 256, cfg) ->
      check_int "64k is binary" 65536 cfg.R.spill_bytes;
      check_string "default store dir" R.default_store_dir cfg.R.store_dir
  | sp -> Alcotest.failf "wrong spec %s" (R.spec_name sp));
  (match parse_ok "klsm-sharded:256:4+spill:1m+store:/tmp" with
  | R.Stored (R.Klsm_sharded { k = 256; shards = 4; _ }, cfg) ->
      check_int "1m" (1 lsl 20) cfg.R.spill_bytes;
      check_string "explicit dir" "/tmp" cfg.R.store_dir
  | sp -> Alcotest.failf "wrong spec %s" (R.spec_name sp));
  (match parse_ok "klsm:4+store:/tmp" with
  | R.Stored (R.Klsm 4, cfg) ->
      check_int "default threshold" R.default_spill_bytes cfg.R.spill_bytes
  | sp -> Alcotest.failf "wrong spec %s" (R.spec_name sp));
  (* '+' inside a base name is not a suffix separator. *)
  (match parse_ok "heap+lock" with
  | R.Heap_lock -> ()
  | sp -> Alcotest.failf "wrong spec %s" (R.spec_name sp));
  check_string "spec_name includes the threshold" "klsm(256)+spill:65536"
    (R.spec_name (parse_ok "klsm:256+spill:64k"))

let test_parse_suffix_rejects () =
  List.iter
    (fun s ->
      let msg = parse_err s in
      check_bool "error names the offending spec" true
        (String.length msg > 0))
    [
      "klsm:256+spill:abc";
      "klsm:256+spill:-4";
      "klsm:256+spill";
      "klsm:256+storage:3";
      "klsm:256+store:";
      "heap+lock+spill:64";
      "linden+spill:64";
    ];
  (* A store path that exists and is not a directory is a parse error. *)
  let f = Filename.temp_file "klsm-store-test" ".notadir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove f)
    (fun () -> ignore (parse_err (Printf.sprintf "klsm:8+store:%s" f)))

let () =
  Alcotest.run "store"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "line checksum" `Quick test_line_checksum;
        ] );
      ( "objects",
        [
          Alcotest.test_case "put/get roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption detected" `Quick
            test_store_corruption_detected;
          Alcotest.test_case "refcount gc" `Quick test_store_refcount_gc;
        ] );
      ( "journal",
        [
          Alcotest.test_case "replay and liveness" `Quick test_journal_replay;
          Alcotest.test_case "torn tail skipped" `Quick test_journal_torn_tail;
          Alcotest.test_case "checkpoint compacts" `Quick
            test_journal_checkpoint;
        ] );
      ( "codec",
        [ Alcotest.test_case "roundtrip + corruption" `Quick test_codec_roundtrip ] );
      ( "spill",
        [
          Alcotest.test_case "spill/rehydrate conservation" `Quick
            test_spill_rehydrate_conservation;
          Alcotest.test_case "kill-and-recover conservation" `Quick
            test_recovery_conservation;
        ] );
      ( "faulty-vfs",
        [
          Alcotest.test_case "short write fails checked" `Quick
            test_faulty_short_write;
          Alcotest.test_case "sticky ENOSPC" `Quick test_faulty_sticky_enospc;
          Alcotest.test_case "bit rot quarantined" `Quick
            test_faulty_bitflip_quarantine;
          Alcotest.test_case "transient EIO retried" `Quick
            test_faulty_transient_eio_retries;
          Alcotest.test_case "torn checkpoint: previous epoch wins" `Quick
            test_faulty_torn_checkpoint;
          Alcotest.test_case "lost stays lost (idempotence)" `Quick
            test_faulty_lost_stays_lost;
          Alcotest.test_case "power loss drops unfsynced rename" `Quick
            test_powerloss_unfsynced_rename;
        ] );
      ( "registry",
        [
          Alcotest.test_case "suffix parsing" `Quick test_parse_suffixes;
          Alcotest.test_case "suffix rejects" `Quick test_parse_suffix_rejects;
        ] );
    ]
