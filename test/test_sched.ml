(* Tests for the task-scheduling runtime (lib/sched).

   The two load-bearing properties:

   - determinism: on the simulator under the Fair policy, a (config, spec,
     seed) triple fully determines the run — same completion order, same
     makespan, byte-identical metrics on replay;
   - exactly-once: under randomized preemption schedules (many seeds, 8
     virtual threads) no submitted task is lost or executed twice, with
     and without task-spawning-tasks, across queue implementations.

   Plus unit tests for the submitter's batching/urgent-flush/admission
   machinery and the task claim protocol (on the Real backend — they are
   single-threaded and need no simulated schedule). *)

module Sim = Klsm_backend.Sim
module Real = Klsm_backend.Real
module CL = Klsm_sched.Closed_loop.Make (Sim)
module M = Klsm_sched.Metrics

(* ---------------- helpers ---------------- *)

let base_config =
  {
    CL.default_config with
    num_workers = 8;
    roots_per_worker = 30;
    service = CL.Fixed 16;
    priorities = Klsm_harness.Workload.Uniform 10_000;
    batch = 4;
  }

(* The simulated schedule is exactly reproducible, but [makespan] is
   computed as [(base +. m) -. base] against the simulator's global clock,
   whose base advances between runs — so replayed makespans agree only up
   to float-rounding of that subtraction.  Everything discrete (completion
   order, counters) is compared exactly. *)
let check_makespan name a b = Alcotest.(check (float 1e-9)) name a b

(* The completion log must be a permutation of 0 .. total-1: every task id
   appears exactly once (delivered, claimed, executed, logged). *)
let check_permutation name (r : CL.result) =
  Alcotest.(check int)
    (name ^ ": log length") r.CL.total_tasks
    (Array.length r.CL.completion_order);
  let seen = Array.make r.CL.total_tasks 0 in
  Array.iter
    (fun id ->
      if id < 0 || id >= r.CL.total_tasks then
        Alcotest.failf "%s: bogus id %d in completion log" name id;
      seen.(id) <- seen.(id) + 1)
    r.CL.completion_order;
  Array.iteri
    (fun id c ->
      if c <> 1 then Alcotest.failf "%s: task %d logged %d times" name id c)
    seen

let check_conserving name (r : CL.result) =
  Alcotest.(check (pair int int)) (name ^ ": lost/double") (0, 0)
    (r.CL.lost, r.CL.double);
  check_permutation name r

(* ---------------- determinism under Sim Fair ---------------- *)

let run_fair ~seed config spec =
  Sim.configure ~seed ~policy:Sim.Fair ();
  CL.run { config with CL.seed } spec

let test_determinism_fair () =
  List.iter
    (fun spec ->
      let name = CL.Registry.spec_name spec in
      let a = run_fair ~seed:42 base_config spec in
      let b = run_fair ~seed:42 base_config spec in
      check_conserving name a;
      Alcotest.(check (array int))
        (name ^ ": same completion order") a.CL.completion_order
        b.CL.completion_order;
      check_makespan (name ^ ": same makespan") a.CL.makespan b.CL.makespan;
      Alcotest.(check int)
        (name ^ ": same flush count") a.CL.metrics.M.flushes
        b.CL.metrics.M.flushes;
      (* ... and a different seed gives a genuinely different run (sanity
         check that determinism is not degeneracy). *)
      let c = run_fair ~seed:43 base_config spec in
      if
        a.CL.completion_order = c.CL.completion_order
        && a.CL.makespan = c.CL.makespan
      then Alcotest.failf "%s: seed 42 and 43 produced identical runs" name)
    [ CL.Registry.Klsm 16; CL.Registry.Multiq 2; CL.Registry.Linden ]

let test_determinism_fair_with_spawns () =
  let config =
    { base_config with CL.spawn_fanout = 2; spawn_depth = 2; batch = 3 }
  in
  let spec = CL.Registry.Klsm 64 in
  let a = run_fair ~seed:7 config spec in
  let b = run_fair ~seed:7 config spec in
  Alcotest.(check int)
    "spawn tree size" (CL.total_tasks config) a.CL.total_tasks;
  check_conserving "spawns" a;
  Alcotest.(check (array int))
    "same completion order (spawns)" a.CL.completion_order
    b.CL.completion_order;
  check_makespan "same makespan (spawns)" a.CL.makespan b.CL.makespan

(* ---------------- exactly-once under random preemption ---------------- *)

let test_exactly_once_fuzzed () =
  (* >= 32 schedules at 8 virtual threads: no task lost, none executed
     twice, whatever the preemption pattern does to the queue, the
     submitter buffers, and the claim races. *)
  let config = { base_config with CL.roots_per_worker = 15 } in
  for seed = 1 to 32 do
    Sim.configure ~seed ~policy:(Sim.Random_preempt 0.25) ();
    let r = CL.run { config with CL.seed } (CL.Registry.Klsm 8) in
    check_conserving (Printf.sprintf "klsm(8) seed %d" seed) r
  done;
  Sim.configure ~policy:Sim.Fair ()

let test_exactly_once_fuzzed_spawns_and_queues () =
  (* Fewer seeds but the harder shapes: spawning tasks, other queues, a
     tight admission bound that keeps the backpressure path hot. *)
  let config =
    {
      base_config with
      CL.roots_per_worker = 8;
      spawn_fanout = 2;
      spawn_depth = 1;
      capacity = 16;
    }
  in
  List.iter
    (fun spec ->
      for seed = 33 to 40 do
        Sim.configure ~seed ~policy:(Sim.Random_preempt 0.3) ();
        let r = CL.run { config with CL.seed } spec in
        check_conserving
          (Printf.sprintf "%s seed %d" (CL.Registry.spec_name spec) seed)
          r
      done)
    [ CL.Registry.Klsm 4; CL.Registry.Dlsm; CL.Registry.Multiq 2 ];
  Sim.configure ~policy:Sim.Fair ()

let test_open_loop_conserves () =
  let config =
    {
      base_config with
      CL.mode = CL.Open_poisson 100_000.0;
      roots_per_worker = 20;
    }
  in
  let r = run_fair ~seed:5 config (CL.Registry.Klsm 16) in
  check_conserving "open loop" r;
  let r2 = run_fair ~seed:5 config (CL.Registry.Klsm 16) in
  Alcotest.(check (array int))
    "open loop deterministic" r.CL.completion_order r2.CL.completion_order

let test_backpressure_bounds_inflight () =
  let config = { base_config with CL.capacity = 8; roots_per_worker = 50 } in
  let r = run_fair ~seed:11 config (CL.Registry.Klsm 16) in
  check_conserving "bounded" r;
  if r.CL.peak_inflight > 8 then
    Alcotest.failf "peak in-flight %d exceeds capacity 8" r.CL.peak_inflight;
  if r.CL.metrics.M.rejected = 0 then
    Alcotest.fail "capacity 8 under 400 tasks never triggered backpressure"

(* ---------------- fibers: determinism, depth, starvation -------------- *)

let test_fiber_steal_determinism_fuzzed () =
  (* 32 randomized preemption schedules with fibered bodies: forks land
     on deques, thieves steal them, yields requeue them — and the whole
     steal schedule must still replay byte-identically from the seed
     (victims come from per-worker seeded streams, Sim preemption from
     the configured seed). *)
  let config =
    {
      base_config with
      CL.num_workers = 4;
      roots_per_worker = 6;
      fiber_fanout = 3;
      service = CL.Fixed 24;
    }
  in
  let spec = CL.Registry.Klsm 8 in
  for seed = 1 to 32 do
    let go () =
      Sim.configure ~seed ~policy:(Sim.Random_preempt 0.25) ();
      CL.run { config with CL.seed } spec
    in
    let a = go () in
    let b = go () in
    let name = Printf.sprintf "fibers seed %d" seed in
    check_conserving name a;
    Alcotest.(check int) (name ^ ": no fiber lost") 0 a.CL.fiber_lost;
    (* every task = 1 root + fiber_fanout forked children *)
    Alcotest.(check int)
      (name ^ ": fiber count")
      (a.CL.total_tasks * (1 + 3))
      a.CL.metrics.M.fibers;
    Alcotest.(check (array int))
      (name ^ ": same completion order") a.CL.completion_order
      b.CL.completion_order;
    Alcotest.(check int)
      (name ^ ": same steal count") a.CL.metrics.M.steals
      b.CL.metrics.M.steals;
    Alcotest.(check int)
      (name ^ ": same suspension count") a.CL.metrics.M.fiber_suspends
      b.CL.metrics.M.fiber_suspends
  done;
  Sim.configure ~policy:Sim.Fair ()

(* A minimal direct-Worker harness for hand-written task bodies (the
   Closed_loop driver only builds its own body shapes): worker 0 submits
   [bodies] in order, everyone serves to exact termination. *)
module W = Klsm_sched.Worker.Make (Sim)

let run_custom_bodies ~num_workers ~seed bodies =
  Sim.configure ~seed ~policy:Sim.Fair ();
  let instance =
    CL.Registry.make ~seed ~num_threads:num_workers (CL.Registry.Klsm 8)
  in
  let pool =
    W.create_pool ~max_tasks:(List.length bodies) ~num_workers ()
  in
  let metrics = M.create ~num_workers in
  Sim.parallel_run ~num_threads:num_workers (fun tid ->
      let h = instance.CL.Registry.register tid in
      let sub =
        W.Submitter.create
          ~cfg:{ W.Submitter.batch = 1; urgency_margin = 1; capacity = max_int }
          ~inflight:pool.W.inflight
          ~enqueue_batch:h.CL.Registry.insert_batch ()
      in
      let ctx =
        W.make_ctx ~pool ~tid ~sub ~pop:h.CL.Registry.try_delete_min
          ~metrics:metrics.(tid) ()
      in
      let todo = ref (if tid = 0 then bodies else []) in
      let arrivals () =
        match !todo with
        | [] -> `Done
        | (priority, body) :: rest ->
            todo := rest;
            `Submit (priority, body)
      in
      W.run ctx ~arrivals);
  (pool, M.summarize metrics)

let test_fiber_tree_depth_1000 () =
  (* A fork/await chain 1000 deep: each fiber forks its successor and
     blocks on it, so the whole tower is parked in Join cells at peak;
     the deepest return unwinds it resumption by resumption, and the sum
     must come back intact. *)
  let depth = 1000 in
  let result = ref (-1) in
  let body =
    W.Task.Body
      (fun api ->
        let rec chain d =
          if d = 0 then 0
          else 1 + api.W.Task.await (api.W.Task.fork (fun () -> chain (d - 1)))
        in
        result := chain depth)
  in
  let pool, summary = run_custom_bodies ~num_workers:2 ~seed:3 [ (5, body) ] in
  Alcotest.(check int) "chain joined to the right value" depth !result;
  Alcotest.(check int) "task completed" 1 (W.completed_count pool);
  Alcotest.(check int) "all fibers finished" (depth + 1) summary.M.fibers_completed;
  Alcotest.(check int) "fibers = root + chain" (depth + 1) summary.M.fibers;
  (* every await but the last-instant ones must actually have parked *)
  if summary.M.fiber_suspends < depth / 2 then
    Alcotest.failf "only %d suspensions across a %d-deep chain"
      summary.M.fiber_suspends depth

let test_fiber_hog_cannot_stall_drain () =
  (* One hog fiber burning 200k ticks without yielding must not stall
     queue drain: with a second worker serving, every quick task (16
     ticks each) completes, and the hog — submitted first and most
     urgent, so it is picked up first — seals last. *)
  let quick = 16 in
  let hog =
    W.Task.Body
      (fun api ->
        let f =
          api.W.Task.fork (fun () ->
              Sim.tick 200_000;
              ())
        in
        api.W.Task.await f)
  in
  let bodies =
    (0, hog)
    :: List.init quick (fun i -> (100 + i, W.Task.fn (fun () -> Sim.tick 16)))
  in
  let pool, _ = run_custom_bodies ~num_workers:2 ~seed:9 bodies in
  Alcotest.(check int) "everything completed" (quick + 1)
    (W.completed_count pool);
  let log = W.completion_log pool in
  Alcotest.(check int) "log complete" (quick + 1) (Array.length log);
  Alcotest.(check int) "hog (id 0) sealed last" 0 (log.(Array.length log - 1))

(* ---------------- deque unit tests (Real atomics) ---------------- *)

module Dq = Klsm_primitives.Deque.Make (struct
  type 'a t = 'a Atomic.t

  let make = Atomic.make
  let get = Atomic.get
  let set = Atomic.set
  let compare_and_set = Atomic.compare_and_set
end)

let test_deque_lifo_fifo () =
  let d = Dq.create ~capacity:2 () in
  (* capacity 2 forces several buffer growths *)
  for i = 1 to 100 do
    Dq.push d i
  done;
  Alcotest.(check int) "size" 100 (Dq.size d);
  (match Dq.steal d with
  | `Stolen v -> Alcotest.(check int) "steal takes the oldest" 1 v
  | _ -> Alcotest.fail "steal on non-empty deque");
  (match Dq.steal d with
  | `Stolen v -> Alcotest.(check int) "steal is FIFO" 2 v
  | _ -> Alcotest.fail "second steal");
  Alcotest.(check (option int)) "pop takes the newest" (Some 100) (Dq.pop d);
  Alcotest.(check (option int)) "pop is LIFO" (Some 99) (Dq.pop d);
  (* drain the middle from both ends *)
  let popped = ref 0 and stolen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Dq.pop d with
    | Some _ -> incr popped
    | None -> (
        match Dq.steal d with
        | `Stolen _ -> incr stolen
        | `Race -> ()
        | `Empty -> continue_ := false)
  done;
  Alcotest.(check int) "conservation" 96 (!popped + !stolen);
  Alcotest.(check (option int)) "empty pop" None (Dq.pop d);
  (match Dq.steal d with
  | `Empty -> ()
  | _ -> Alcotest.fail "empty steal")

(* ---------------- sched spec parsing ---------------- *)

let test_parse_sched_spec () =
  let fibers_of = function
    | Ok c -> c.CL.Registry.fibers
    | Error e -> Alcotest.failf "unexpected parse error: %s" e
  in
  Alcotest.(check int) "bare sched" 0
    (fibers_of (CL.Registry.parse_sched_spec "sched"));
  Alcotest.(check int) "fibers knob" 7
    (fibers_of (CL.Registry.parse_sched_spec "sched:fibers=7"));
  Alcotest.(check int) "case and whitespace" 3
    (fibers_of (CL.Registry.parse_sched_spec "  SCHED:Fibers=3 "));
  let rejects s =
    match CL.Registry.parse_sched_spec s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error _ -> ()
  in
  rejects "sched:fibers=x";
  rejects "sched:fibers=-1";
  rejects "sched:threads=2";
  rejects "klsm:8";
  (* canonical names round-trip *)
  Alcotest.(check int) "name round-trips" 9
    (fibers_of
       (CL.Registry.parse_sched_spec
          (CL.Registry.sched_spec_name { CL.Registry.fibers = 9 })));
  Alcotest.(check string) "zero fibers is bare sched" "sched"
    (CL.Registry.sched_spec_name { CL.Registry.fibers = 0 })

(* ---------------- submitter unit tests (Real backend) ---------------- *)

module Sub = Klsm_sched.Submitter.Make (Real)

let make_sub ?(batch = 4) ?(margin = 10) ?(capacity = max_int) () =
  let batches = ref [] in
  let sub =
    Sub.create
      ~cfg:{ Sub.batch; urgency_margin = margin; capacity }
      ~inflight:(Real.make 0)
      ~enqueue_batch:(fun pairs -> batches := pairs :: !batches)
      ()
  in
  (sub, batches)

let test_submitter_batches () =
  let sub, batches = make_sub ~batch:4 () in
  for i = 1 to 3 do
    Sub.push sub ~priority:(100 * i) ~id:i
  done;
  Alcotest.(check int) "buffered, not flushed" 0 (List.length !batches);
  Sub.push sub ~priority:400 ~id:4;
  Alcotest.(check int) "flushed at batch size" 1 (List.length !batches);
  Alcotest.(check int) "whole buffer in one batch" 4
    (Array.length (List.hd !batches));
  Sub.push sub ~priority:7 ~id:5;
  Sub.flush sub;
  Alcotest.(check int) "manual flush" 2 (List.length !batches);
  Alcotest.(check (list (pair int int)))
    "flush carries the pending pair"
    [ (7, 5) ]
    (Array.to_list (List.hd !batches));
  Sub.flush sub;
  Alcotest.(check int) "empty flush is a no-op" 2 (List.length !batches)

let test_submitter_urgent_flush () =
  let sub, batches = make_sub ~batch:100 ~margin:10 () in
  Sub.push sub ~priority:1_000 ~id:1;
  Sub.push sub ~priority:995 ~id:2;
  (* within the margin of the buffered min: stays buffered *)
  Alcotest.(check int) "near-min priority buffers" 0 (List.length !batches);
  Sub.push sub ~priority:100 ~id:3;
  (* undercuts 995 by more than 10: the whole buffer must go out now *)
  Alcotest.(check int) "urgent task forces flush" 1 (List.length !batches);
  Alcotest.(check int) "urgent flush includes the urgent task" 3
    (Array.length (List.hd !batches));
  Alcotest.(check int) "urgent flush counted" 1 sub.Sub.urgent_flushes

let test_submitter_admission () =
  let sub, _ = make_sub ~capacity:2 () in
  Alcotest.(check (option int)) "admit 1" (Some 1) (Sub.try_admit sub);
  Alcotest.(check (option int)) "admit 2" (Some 2) (Sub.try_admit sub);
  Alcotest.(check (option int)) "reject at capacity" None (Sub.try_admit sub);
  Alcotest.(check int) "inflight unchanged by rejection" 2 (Sub.inflight sub);
  Sub.release sub;
  Alcotest.(check (option int)) "admit after release" (Some 2)
    (Sub.try_admit sub);
  (* spawned children bypass the bound but still count *)
  Sub.admit_spawn sub;
  Alcotest.(check int) "spawn counts in-flight" 3 (Sub.inflight sub)

(* ---------------- task claim protocol (Real backend) ---------------- *)

module T = Klsm_sched.Task.Make (Real)

let test_task_claim_exactly_once () =
  let t = T.make ~id:0 ~priority:5 ~now:0.0 T.noop in
  Alcotest.(check bool) "first claim wins" true (T.claim t);
  Alcotest.(check bool) "second claim loses" false (T.claim t);
  Alcotest.(check bool) "third claim loses" false (T.claim t);
  Alcotest.(check int) "claim count" 3 (T.claim_count t);
  Alcotest.(check bool) "not completed before finish" false (T.is_completed t);
  T.finish t ~now:1.0;
  Alcotest.(check bool) "completed after finish" true (T.is_completed t)

let test_task_rejects_negative_priority () =
  Alcotest.check_raises "negative priority"
    (Invalid_argument "Task.make: negative priority") (fun () ->
      ignore (T.make ~id:0 ~priority:(-1) ~now:0.0 T.noop))

let () =
  Alcotest.run "sched"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same run (3 queues)" `Quick
            test_determinism_fair;
          Alcotest.test_case "with spawn trees" `Quick
            test_determinism_fair_with_spawns;
          Alcotest.test_case "open loop" `Quick test_open_loop_conserves;
        ] );
      ( "exactly-once",
        [
          Alcotest.test_case "32 fuzzed schedules, 8 threads" `Slow
            test_exactly_once_fuzzed;
          Alcotest.test_case "fuzzed: spawns, queues, tight capacity" `Slow
            test_exactly_once_fuzzed_spawns_and_queues;
          Alcotest.test_case "backpressure bounds in-flight" `Quick
            test_backpressure_bounds_inflight;
        ] );
      ( "fibers",
        [
          Alcotest.test_case "32 fuzzed steal schedules replay" `Slow
            test_fiber_steal_determinism_fuzzed;
          Alcotest.test_case "fork/await chain 1000 deep" `Quick
            test_fiber_tree_depth_1000;
          Alcotest.test_case "hog fiber cannot stall drain" `Quick
            test_fiber_hog_cannot_stall_drain;
        ] );
      ( "deque",
        [ Alcotest.test_case "LIFO pop, FIFO steal" `Quick test_deque_lifo_fifo ] );
      ( "spec",
        [
          Alcotest.test_case "sched:fibers parsing" `Quick
            test_parse_sched_spec;
        ] );
      ( "submitter",
        [
          Alcotest.test_case "batch flush" `Quick test_submitter_batches;
          Alcotest.test_case "urgent flush" `Quick test_submitter_urgent_flush;
          Alcotest.test_case "admission control" `Quick
            test_submitter_admission;
        ] );
      ( "task",
        [
          Alcotest.test_case "claim exactly once" `Quick
            test_task_claim_exactly_once;
          Alcotest.test_case "negative priority rejected" `Quick
            test_task_rejects_negative_priority;
        ] );
    ]
