(* Tests for the contention-striped k-LSM (lib/core/sharded_klsm.ml):
   exact single-thread semantics, conservation across handles (spy paths),
   the ceil(k/S) relaxation-budget partition, spec validation, the
   delete-min candidate cache, migration under a CAS-failure storm, and
   the DESIGN.md §12 rank-error bound rho <= (T+S) * ceil(k/S) measured
   empirically on the simulator. *)

open Helpers
module SK = Klsm_core.Sharded_klsm.Default
module Shared = SK.Shared_klsm
module Obs = Klsm_obs.Obs
module Sim = Klsm_backend.Sim
module RS = Klsm_harness.Registry.Make (Sim)
module QS = Klsm_harness.Quality.Make (Sim)
module Drive = Klsm_chaos.Drive

(* Drain with retry: try_delete_min may fail spuriously (spy misses). *)
let drain_all try_delete_min =
  let rec go acc misses =
    if misses > 200 then List.rev acc
    else begin
      match try_delete_min () with
      | Some (k, _) -> go (k :: acc) 0
      | None -> go acc (misses + 1)
    end
  in
  go [] 0

(* ---------------- single-thread exactness ---------------- *)

let prop_single_thread_exact =
  qtest "sharded single thread = exact PQ (any k, S)" ~count:100
    QCheck2.Gen.(triple ops_gen (int_bound 300) (int_range 1 4))
    (fun (ops, k, shards) ->
      let k = max k shards in
      let q = SK.create_with ~k ~shards ~num_threads:1 () in
      let h = SK.register q 0 in
      matches_oracle
        ~insert:(fun key -> SK.insert h key ())
        ~delete_min:(fun () -> Option.map fst (SK.try_delete_min h))
        ops)

(* ---------------- conservation across handles ---------------- *)

let prop_multi_handle_conservation =
  qtest "two-handle conservation (S = 2)" ~count:50
    QCheck2.Gen.(list_size (int_range 1 300) (int_bound 5_000))
    (fun keys ->
      let q = SK.create_with ~k:16 ~shards:2 ~num_threads:2 () in
      let h0 = SK.register q 0 and h1 = SK.register q 1 in
      List.iteri
        (fun i k -> SK.insert (if i land 1 = 0 then h0 else h1) k ())
        keys;
      (* h0 drains everything: other stripes via the race, h1's local LSM
         via spy. *)
      let got = drain_all (fun () -> SK.try_delete_min h0) in
      List.sort compare got = List.sort compare keys)

let prop_batch_conservation =
  qtest "insert_batch conservation" ~count:50
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 5_000))
    (fun keys ->
      let q = SK.create_with ~k:8 ~shards:4 ~num_threads:1 () in
      let h = SK.register q 0 in
      SK.insert_batch h (Array.of_list (List.map (fun k -> (k, ())) keys));
      let got = drain_all (fun () -> SK.try_delete_min h) in
      List.sort compare got = List.sort compare keys)

(* ---------------- budget partition and validation ---------------- *)

let stripe_ks q =
  Array.to_list (Array.map Shared.get_k (SK.internal_stripes q))

let test_budget_partition () =
  (* k = 64, S = 4: every stripe runs at ceil(64/4) = 16. *)
  let q = SK.create_with ~k:64 ~shards:4 ~num_threads:1 () in
  check_int "global k" 64 (SK.get_k q);
  check_int "stripes" 4 (SK.num_stripes q);
  check_list_int "per-stripe k" [ 16; 16; 16; 16 ] (stripe_ks q);
  (* Non-divisible budget rounds up: ceil(10/4) = 3. *)
  let q = SK.create_with ~k:10 ~shards:4 ~num_threads:1 () in
  check_list_int "ceil partition" [ 3; 3; 3; 3 ] (stripe_ks q)

let test_set_k_repartitions () =
  let q = SK.create_with ~k:64 ~shards:4 ~num_threads:1 () in
  SK.set_k q 128;
  check_int "new global k" 128 (SK.get_k q);
  check_list_int "new per-stripe k" [ 32; 32; 32; 32 ] (stripe_ks q);
  (match SK.set_k q 2 with
  | () -> Alcotest.fail "k < S accepted"
  | exception Invalid_argument _ -> ())

let test_create_validation () =
  (match SK.create_with ~shards:0 ~num_threads:1 () with
  | _ -> Alcotest.fail "shards = 0 accepted"
  | exception Invalid_argument _ -> ());
  match SK.create_with ~k:4 ~shards:8 ~num_threads:1 () with
  | _ -> Alcotest.fail "shards > k accepted"
  | exception Invalid_argument _ -> ()

(* ---------------- candidate cache ---------------- *)

let test_candidate_cache_hits () =
  (* Two consecutive peeks with no publish in between: the second must be
     served from the candidate cache (stripe.cache_hit), not a re-race. *)
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      let q = SK.create_with ~k:4 ~shards:2 ~num_threads:1 () in
      let h = SK.register q 0 in
      for i = 0 to 99 do
        SK.insert h ((i * 7919) land 0xFFFF) ()
      done;
      let a = SK.try_find_min h and b = SK.try_find_min h in
      check_bool "peek found something" true (a <> None);
      check_bool "stable peek" true (a = b);
      let stat name =
        match List.assoc_opt name (SK.stats q).Obs.counters with
        | Some per -> Array.fold_left ( + ) 0 per
        | None -> 0
      in
      check_bool "cache missed at least once" true (stat "stripe.cache_miss" >= 1);
      check_bool "cache hit on the re-peek" true (stat "stripe.cache_hit" >= 1))

(* ---------------- migration under a CAS storm (Sim + chaos) ---------------- *)

let test_storm_migrates_and_conserves () =
  let cases =
    Drive.sharded_targeted ~threads:4 ~per_thread:400 ~k:8 ~shards:2
      ~seed0:0x51A2D
  in
  List.iter
    (fun (c : Drive.case_result) ->
      Alcotest.(check (list string))
        (Printf.sprintf "no violations under %s" c.Drive.plan_text)
        [] c.Drive.violations)
    cases;
  (* The storm concentrated on one thread must push its home-stripe fail
     streak past the threshold and trigger at least one migration. *)
  let concentrated = List.nth cases 2 in
  let migrations =
    match List.assoc_opt "stripe_migrate" concentrated.Drive.info with
    | Some n -> n
    | None -> 0
  in
  check_bool "storm forced a migration" true (migrations >= 1)

(* ---------------- rank-error bound (Sim) ---------------- *)

let test_rank_bound_partitioned () =
  (* DESIGN.md §12: rho <= (T+S) * ceil(k/S); + T slack for in-flight
     inserts the oracle has already counted (same slack as the unsharded
     quality test). *)
  Sim.configure ~seed:5 ~policy:Sim.Fair ();
  let threads = 4 and k = 32 and shards = 4 in
  let config =
    {
      QS.default_config with
      num_threads = threads;
      prefill = 2_000;
      ops_per_thread = 1_000;
      seed = 5;
    }
  in
  let r = QS.run config (RS.Klsm_sharded (k, shards)) in
  let bound = ((threads + shards) * ((k + shards - 1) / shards)) + threads in
  check_bool "some deletes measured" true (r.QS.deletes > 0);
  check_bool
    (Printf.sprintf "max rank error %d within partitioned bound %d"
       r.QS.max_rank_error bound)
    true
    (r.QS.max_rank_error <= bound)

let () =
  Alcotest.run "sharded"
    [
      ( "semantics",
        [
          prop_single_thread_exact;
          prop_multi_handle_conservation;
          prop_batch_conservation;
        ] );
      ( "partition",
        [
          Alcotest.test_case "budget partition" `Quick test_budget_partition;
          Alcotest.test_case "set_k repartitions" `Quick
            test_set_k_repartitions;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "candidate cache hits" `Quick
            test_candidate_cache_hits;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "storm migrates, conserves" `Slow
            test_storm_migrates_and_conserves;
        ] );
      ( "quality",
        [
          Alcotest.test_case "partitioned rank bound" `Slow
            test_rank_bound_partitioned;
        ] );
    ]
