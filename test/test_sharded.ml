(* Tests for the contention-striped k-LSM (lib/core/sharded_klsm.ml):
   exact single-thread semantics, conservation across handles (spy paths),
   the ceil(k/S) relaxation-budget partition, spec validation, the
   delete-min candidate cache, migration under a CAS-failure storm, the
   DESIGN.md §12 rank-error bound rho <= (T+S) * ceil(k/S) measured
   empirically on the simulator, and the §15 contention knobs: stickiness
   window open/decay/expiry, insertion-buffer flush triggers (undercutting
   find_min, capacity, age) and their exactness, conservation with
   buffering, resize-under-storm, the rank bound with the knobs on, and
   the §17 batched delete-min: batch exactness for the combined and the
   striped queue, empty/short edges, a batch+single-pop fuzz against the
   sequential oracle, and the widened rank bound under [~dbuf]. *)

open Helpers
module SK = Klsm_core.Sharded_klsm.Default
module Shared = SK.Shared_klsm
module Obs = Klsm_obs.Obs
module Sim = Klsm_backend.Sim
module RS = Klsm_harness.Registry.Make (Sim)
module QS = Klsm_harness.Quality.Make (Sim)
module Drive = Klsm_chaos.Drive

(* Drain with retry: try_delete_min may fail spuriously (spy misses). *)
let drain_all try_delete_min =
  let rec go acc misses =
    if misses > 200 then List.rev acc
    else begin
      match try_delete_min () with
      | Some (k, _) -> go (k :: acc) 0
      | None -> go acc (misses + 1)
    end
  in
  go [] 0

(* ---------------- single-thread exactness ---------------- *)

let prop_single_thread_exact =
  qtest "sharded single thread = exact PQ (any k, S)" ~count:100
    QCheck2.Gen.(triple ops_gen (int_bound 300) (int_range 1 4))
    (fun (ops, k, shards) ->
      let k = max k shards in
      let q = SK.create_with ~k ~shards ~num_threads:1 () in
      let h = SK.register q 0 in
      matches_oracle
        ~insert:(fun key -> SK.insert h key ())
        ~delete_min:(fun () -> Option.map fst (SK.try_delete_min h))
        ops)

let prop_single_thread_exact_knobs =
  qtest "sharded+sticky+buf single thread = exact PQ" ~count:100
    QCheck2.Gen.(triple ops_gen (int_bound 300) (int_range 1 4))
    (fun (ops, k, shards) ->
      let k = max k shards in
      let kp = (k + shards - 1) / shards in
      (* The buffered-delete flush rule (flush iff the buffered minimum
         undercuts the local LSM minimum) must keep the owner's view
         exact, whatever the buffer capacity. *)
      let q =
        SK.create_with ~k ~shards ~sticky:2 ~buf:(max 1 (min 4 kp))
          ~num_threads:1 ()
      in
      let h = SK.register q 0 in
      matches_oracle
        ~insert:(fun key -> SK.insert h key ())
        ~delete_min:(fun () -> Option.map fst (SK.try_delete_min h))
        ops)

(* ---------------- conservation across handles ---------------- *)

let prop_multi_handle_conservation =
  qtest "two-handle conservation (S = 2)" ~count:50
    QCheck2.Gen.(list_size (int_range 1 300) (int_bound 5_000))
    (fun keys ->
      let q = SK.create_with ~k:16 ~shards:2 ~num_threads:2 () in
      let h0 = SK.register q 0 and h1 = SK.register q 1 in
      List.iteri
        (fun i k -> SK.insert (if i land 1 = 0 then h0 else h1) k ())
        keys;
      (* h0 drains everything: other stripes via the race, h1's local LSM
         via spy. *)
      let got = drain_all (fun () -> SK.try_delete_min h0) in
      List.sort compare got = List.sort compare keys)

let prop_batch_conservation =
  qtest "insert_batch conservation" ~count:50
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 5_000))
    (fun keys ->
      let q = SK.create_with ~k:8 ~shards:4 ~num_threads:1 () in
      let h = SK.register q 0 in
      SK.insert_batch h (Array.of_list (List.map (fun k -> (k, ())) keys));
      let got = drain_all (fun () -> SK.try_delete_min h) in
      List.sort compare got = List.sort compare keys)

let prop_multi_handle_conservation_buffered =
  qtest "two-handle conservation with sticky+buf" ~count:50
    QCheck2.Gen.(list_size (int_range 1 300) (int_bound 5_000))
    (fun keys ->
      let q =
        SK.create_with ~k:16 ~shards:2 ~sticky:3 ~buf:4 ~num_threads:2 ()
      in
      let h0 = SK.register q 0 and h1 = SK.register q 1 in
      List.iteri
        (fun i k -> SK.insert (if i land 1 = 0 then h0 else h1) k ())
        keys;
      (* Insertion buffers live in handles: h1's buffered tail is invisible
         to h0's drain until flushed (h0's own buffer flushes itself on
         delete-min). *)
      SK.flush_buffer h1;
      let got = drain_all (fun () -> SK.try_delete_min h0) in
      List.sort compare got = List.sort compare keys)

(* ---------------- budget partition and validation ---------------- *)

let stripe_ks q =
  Array.to_list (Array.map Shared.get_k (SK.internal_stripes q))

let test_budget_partition () =
  (* k = 64, S = 4: every stripe runs at ceil(64/4) = 16. *)
  let q = SK.create_with ~k:64 ~shards:4 ~num_threads:1 () in
  check_int "global k" 64 (SK.get_k q);
  check_int "stripes" 4 (SK.num_stripes q);
  check_list_int "per-stripe k" [ 16; 16; 16; 16 ] (stripe_ks q);
  (* Non-divisible budget rounds up: ceil(10/4) = 3. *)
  let q = SK.create_with ~k:10 ~shards:4 ~num_threads:1 () in
  check_list_int "ceil partition" [ 3; 3; 3; 3 ] (stripe_ks q)

let test_set_k_repartitions () =
  let q = SK.create_with ~k:64 ~shards:4 ~num_threads:1 () in
  SK.set_k q 128;
  check_int "new global k" 128 (SK.get_k q);
  check_list_int "new per-stripe k" [ 32; 32; 32; 32 ] (stripe_ks q);
  (match SK.set_k q 2 with
  | () -> Alcotest.fail "k < S accepted"
  | exception Invalid_argument _ -> ())

let test_create_validation () =
  (match SK.create_with ~shards:0 ~num_threads:1 () with
  | _ -> Alcotest.fail "shards = 0 accepted"
  | exception Invalid_argument _ -> ());
  match SK.create_with ~k:4 ~shards:8 ~num_threads:1 () with
  | _ -> Alcotest.fail "shards > k accepted"
  | exception Invalid_argument _ -> ()

let test_knob_validation () =
  (* buf beyond the per-stripe budget would overdraw the charged local
     relaxation: ceil(64/4) = 16. *)
  (match SK.create_with ~k:64 ~shards:4 ~buf:17 ~num_threads:1 () with
  | _ -> Alcotest.fail "buf > ceil(k/S) accepted"
  | exception Invalid_argument _ -> ());
  (* adaptive targets must be powers of two bracketing the initial S. *)
  (match SK.create_with ~k:64 ~shards:4 ~adapt:(3, 8) ~num_threads:1 () with
  | _ -> Alcotest.fail "non-pow2 adapt lo accepted"
  | exception Invalid_argument _ -> ());
  (match SK.create_with ~k:64 ~shards:4 ~adapt:(8, 16) ~num_threads:1 () with
  | _ -> Alcotest.fail "S below adapt lo accepted"
  | exception Invalid_argument _ -> ());
  (match SK.create_with ~k:4 ~shards:4 ~adapt:(2, 8) ~num_threads:1 () with
  | _ -> Alcotest.fail "adapt hi > k accepted"
  | exception Invalid_argument _ -> ());
  (* with ~adapt the per-stripe budget is ceil(k / hi): buf = 9 > ceil(64/8). *)
  (match
     SK.create_with ~k:64 ~shards:4 ~adapt:(2, 8) ~buf:9 ~num_threads:1 ()
   with
  | _ -> Alcotest.fail "buf > ceil(k/hi) accepted"
  | exception Invalid_argument _ -> ());
  (* set_k must not shrink the per-stripe budget under a live buffer cap. *)
  let q = SK.create_with ~k:64 ~shards:4 ~buf:16 ~num_threads:1 () in
  match SK.set_k q 8 with
  | () -> Alcotest.fail "set_k below buffer cap accepted"
  | exception Invalid_argument _ -> ()

(* ---------------- candidate cache ---------------- *)

let test_candidate_cache_hits () =
  (* Two consecutive peeks with no publish in between: the second must be
     served from the candidate cache (stripe.cache_hit), not a re-race. *)
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      let q = SK.create_with ~k:4 ~shards:2 ~num_threads:1 () in
      let h = SK.register q 0 in
      for i = 0 to 99 do
        SK.insert h ((i * 7919) land 0xFFFF) ()
      done;
      let a = SK.try_find_min h and b = SK.try_find_min h in
      check_bool "peek found something" true (a <> None);
      check_bool "stable peek" true (a = b);
      let stat name =
        match List.assoc_opt name (SK.stats q).Obs.counters with
        | Some per -> Array.fold_left ( + ) 0 per
        | None -> 0
      in
      check_bool "cache missed at least once" true (stat "stripe.cache_miss" >= 1);
      check_bool "cache hit on the re-peek" true (stat "stripe.cache_hit" >= 1))

(* ---------------- stickiness (DESIGN.md §15) ---------------- *)

let test_sticky_window_opens_decays_expires () =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      let q = SK.create_with ~k:8 ~shards:2 ~sticky:4 ~num_threads:1 () in
      let h = SK.register q 0 in
      for i = 1 to 64 do
        SK.insert h i ()
      done;
      check_int "window starts closed" 0 (SK.internal_sticky_left h);
      (* k = 8, S = 2: the local LSM keeps at most ceil(8/2) = 4 items, so
         draining soon serves a delete from a stripe — which opens the
         full stickiness window on that stripe. *)
      let budget = ref 64 in
      while SK.internal_sticky_left h = 0 && !budget > 0 do
        ignore (SK.try_delete_min h);
        decr budget
      done;
      check_int "shared delete opened the full window" 4
        (SK.internal_sticky_left h);
      let s = SK.internal_sticky_stripe h in
      check_bool "serving stripe recorded" true (s >= 0 && s < 2);
      (* Decay: every publish-CAS failure halves what is left of the
         window (invoked through the stripe's contention hook, which is
         exactly the code path a lost CAS runs). *)
      let sh = (SK.internal_stripe_handles h).(0) in
      sh.Shared.on_cas_fail ();
      check_int "CAS failure halves the window" 2 (SK.internal_sticky_left h);
      sh.Shared.on_cas_fail ();
      sh.Shared.on_cas_fail ();
      check_int "decay bottoms out at zero" 0 (SK.internal_sticky_left h);
      (* Expiry: with no further shared deletes, races consume the window
         one consult at a time and it never goes negative.  Drain dry (the
         tail of the drain races an empty structure repeatedly). *)
      let _ = drain_all (fun () -> SK.try_delete_min h) in
      for _ = 1 to 8 do
        ignore (SK.try_find_min h)
      done;
      check_int "window expired" 0 (SK.internal_sticky_left h);
      let stat name =
        match List.assoc_opt name (SK.stats q).Obs.counters with
        | Some per -> Array.fold_left ( + ) 0 per
        | None -> 0
      in
      check_bool "sticky primary consults were counted" true
        (stat "stripe.sticky_hit" >= 1))

(* ---------------- insertion buffer (DESIGN.md §15) ---------------- *)

let test_buffer_flush_on_delete_min () =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.set_enabled was)
    (fun () ->
      let q = SK.create_with ~k:16 ~shards:2 ~buf:8 ~num_threads:1 () in
      let h = SK.register q 0 in
      SK.insert h 100 ();
      SK.insert h 5 ();
      check_int "both inserts buffered" 2
        (List.length (SK.internal_buffered h));
      (* find_min must see the buffered 5: the buffer undercuts the
         (empty) local LSM, so the peek flushes first — no buffered item
         may hide below the answer. *)
      (match SK.try_find_min h with
      | Some (5, ()) -> ()
      | other ->
          Alcotest.failf "peek saw %s, wanted 5"
            (match other with
            | Some (k, ()) -> string_of_int k
            | None -> "nothing"));
      check_int "the peek flushed the buffer" 0
        (List.length (SK.internal_buffered h));
      let stat name =
        match List.assoc_opt name (SK.stats q).Obs.counters with
        | Some per -> Array.fold_left ( + ) 0 per
        | None -> 0
      in
      check_bool "flush was counted" true (stat "stripe.buffer_flush" >= 1);
      (* And delete-min serves exactly 5 then 100. *)
      check_bool "first delete" true (SK.try_delete_min h = Some (5, ()));
      check_bool "second delete" true (SK.try_delete_min h = Some (100, ())))

let test_buffer_no_flush_when_local_wins () =
  (* buf = 3 < ceil(k/S) = 8 keeps the LSM spill threshold positive, so
     the capacity flush leaves keys 1..3 in the thread-local LSM. *)
  let q = SK.create_with ~k:16 ~shards:2 ~buf:3 ~num_threads:1 () in
  let h = SK.register q 0 in
  for i = 1 to 3 do
    SK.insert h i ()
  done;
  check_int "capacity flush emptied the buffer" 0
    (List.length (SK.internal_buffered h));
  (* 9 and 10 stay buffered with buf_min = 9 above the structure's
     minimum 1, so the peek is served exactly without touching the
     buffer. *)
  SK.insert h 9 ();
  SK.insert h 10 ();
  check_int "tail still buffered" 2 (List.length (SK.internal_buffered h));
  check_bool "peek exact from the LSM" true (SK.try_find_min h = Some (1, ()));
  check_int "no flush happened" 2 (List.length (SK.internal_buffered h))

let test_buffer_age_bound_flushes () =
  (* One buffered item, then enough further owner operations to cross
     buffer_age_bound = 64: the next insert force-flushes, so no item
     stays invisible indefinitely under an insert-only workload. *)
  let q = SK.create_with ~k:256 ~shards:2 ~buf:100 ~num_threads:1 () in
  let h = SK.register q 0 in
  for i = 1 to 65 do
    SK.insert h (1000 + i) ()
  done;
  check_int "age bound flushed all but the newest" 1
    (List.length (SK.internal_buffered h))

(* ---------------- migration under a CAS storm (Sim + chaos) ---------------- *)

let test_storm_migrates_and_conserves () =
  let cases =
    Drive.sharded_targeted ~threads:4 ~per_thread:400 ~k:8 ~shards:2
      ~seed0:0x51A2D
  in
  List.iter
    (fun (c : Drive.case_result) ->
      Alcotest.(check (list string))
        (Printf.sprintf "no violations under %s" c.Drive.plan_text)
        [] c.Drive.violations)
    cases;
  (* The storm concentrated on one thread must push its home-stripe fail
     streak past the threshold and trigger at least one migration. *)
  let info_of i name =
    match List.assoc_opt name (List.nth cases i).Drive.info with
    | Some n -> n
    | None -> 0
  in
  check_bool "storm forced a migration" true (info_of 2 "stripe_migrate" >= 1);
  (* Case 4 crashes a thread mid-buffer-flush: the flush path ran (and
     conservation already held above, with the crasher's still-buffered
     items exempt). *)
  check_bool "buffer-flush case flushed" true (info_of 4 "buffer_flush" >= 1);
  check_bool "buffer-flush case crashed the target" true
    ((List.nth cases 4).Drive.crashes >= 1);
  (* Case 5's 48-failure storm must fill the crasher's adapt window with
     failures and grow the active stripe count mid-run. *)
  check_bool "storm forced a resize" true (info_of 5 "stripe_resize" >= 1)

(* ---------------- batched delete-min (DESIGN.md §17) ---------------- *)

module K = Klsm_core.Klsm.Default

let prop_klsm_batch_exact =
  qtest "combined k-LSM batch pop = n smallest keys, ascending" ~count:80
    QCheck2.Gen.(pair keys_gen (int_range 1 16))
    (fun (keys, b) ->
      (* Small k pushes most items into the shared component, so the
         single-CAS claim path (Shared_klsm.try_pop_batch: multiway merge
         over block tails, prefix-copy rebuild) carries the batch. *)
      let q = K.create_with ~k:8 ~num_threads:1 () in
      let h = K.register q 0 in
      List.iter (fun key -> K.insert h key ()) keys;
      let expect = ref (List.sort compare keys) in
      let ok = ref true in
      let misses = ref 0 in
      while !expect <> [] && !misses < 200 do
        match K.try_delete_min_batch h b with
        | [] -> incr misses
        | got ->
            misses := 0;
            List.iter
              (fun (dk, ()) ->
                match !expect with
                | e :: rest when e = dk -> expect := rest
                | _ -> ok := false)
              got
      done;
      !ok && !expect = [])

let prop_sharded_batch_exact =
  qtest "sharded+dbuf batch pop = B smallest keys, ascending" ~count:80
    QCheck2.Gen.(triple keys_gen (int_range 1 8) (int_range 1 4))
    (fun (keys, b, shards) ->
      (* With the deletion buffer on, each batch pop claims a run from one
         stripe under the cross-stripe hint limit and serves the rest from
         the buffer — single-threaded both must stay exact. *)
      let k = 32 in
      let kp = (k + shards - 1) / shards in
      let q =
        SK.create_with ~k ~shards ~dbuf:(min b kp) ~num_threads:1 ()
      in
      let h = SK.register q 0 in
      List.iter (fun key -> SK.insert h key ()) keys;
      let expect = ref (List.sort compare keys) in
      let ok = ref true in
      let misses = ref 0 in
      while !expect <> [] && !misses < 200 do
        match SK.try_delete_min_batch h b with
        | [] -> incr misses
        | got ->
            misses := 0;
            List.iter
              (fun (dk, ()) ->
                match !expect with
                | e :: rest when e = dk -> expect := rest
                | _ -> ok := false)
              got
      done;
      !ok && !expect = [])

let test_batch_edges () =
  let q = SK.create_with ~k:16 ~shards:2 ~dbuf:4 ~num_threads:1 () in
  let h = SK.register q 0 in
  check_bool "empty queue: batch = []" true (SK.try_delete_min_batch h 4 = []);
  SK.insert h 3 ();
  SK.insert h 1 ();
  SK.insert h 2 ();
  check_bool "n = 0 yields []" true (SK.try_delete_min_batch h 0 = []);
  let got = List.map fst (SK.try_delete_min_batch h 10) in
  check_list_int "short batch: everything, ascending" [ 1; 2; 3 ] got;
  check_bool "then dry" true (SK.try_delete_min h = None)

let test_fuzz_batch_and_single_pops () =
  (* 32 seeds of a mixed stream — inserts, single pops, batch pops of
     random sizes — against the sorted-list oracle (Seq_lsm semantics).
     Single-threaded the sharded queue is exact even with every knob on,
     so every pop, batched or not, must return the oracle's minima in
     order. *)
  for seed = 1 to 32 do
    let rng = Xoshiro.create ~seed:(0xBA7C4 + seed) in
    let q =
      SK.create_with ~k:16 ~shards:2 ~sticky:2 ~buf:2 ~dbuf:4 ~num_threads:1
        ()
    in
    let h = SK.register q 0 in
    let oracle = Oracle_pq.create () in
    for _ = 1 to 400 do
      match Xoshiro.int rng 4 with
      | 0 | 1 ->
          let key = Xoshiro.int rng 10_000 in
          SK.insert h key ();
          Oracle_pq.insert oracle key
      | 2 ->
          let got = Option.map fst (SK.try_delete_min h) in
          let want = Oracle_pq.delete_min oracle in
          if got <> want then
            Alcotest.failf "seed %d: single pop %s, oracle %s" seed
              (match got with Some k -> string_of_int k | None -> "None")
              (match want with Some k -> string_of_int k | None -> "None")
      | _ ->
          let n = 1 + Xoshiro.int rng 6 in
          let got = SK.try_delete_min_batch h n in
          List.iter
            (fun (dk, ()) ->
              match Oracle_pq.delete_min oracle with
              | Some want when want = dk -> ()
              | want ->
                  Alcotest.failf "seed %d: batch pop %d, oracle %s" seed dk
                    (match want with
                    | Some k -> string_of_int k
                    | None -> "None"))
            got;
          if List.length got < n && Oracle_pq.to_list oracle <> [] then
            Alcotest.failf "seed %d: short batch (%d/%d) left oracle items"
              seed (List.length got) n
    done
  done

(* ---------------- rank-error bound (Sim) ---------------- *)

let test_rank_bound_partitioned () =
  (* DESIGN.md §12: rho <= (T+S) * ceil(k/S); + T slack for in-flight
     inserts the oracle has already counted (same slack as the unsharded
     quality test). *)
  Sim.configure ~seed:5 ~policy:Sim.Fair ();
  let threads = 4 and k = 32 and shards = 4 in
  let config =
    {
      QS.default_config with
      num_threads = threads;
      prefill = 2_000;
      ops_per_thread = 1_000;
      seed = 5;
    }
  in
  let r = QS.run config (RS.klsm_sharded k shards) in
  let bound = ((threads + shards) * ((k + shards - 1) / shards)) + threads in
  check_bool "some deletes measured" true (r.QS.deletes > 0);
  check_bool
    (Printf.sprintf "max rank error %d within partitioned bound %d"
       r.QS.max_rank_error bound)
    true
    (r.QS.max_rank_error <= bound)

let test_rank_bound_with_knobs () =
  (* Same bound with stickiness and buffering on: buffered items are
     charged against the local ceil(k/S) term (the LSM spill threshold
     shrinks by B), so the §12 bound must survive the §15 knobs
     unchanged. *)
  Sim.configure ~seed:7 ~policy:Sim.Fair ();
  let threads = 4 and k = 32 and shards = 4 in
  let config =
    {
      QS.default_config with
      num_threads = threads;
      prefill = 2_000;
      ops_per_thread = 1_000;
      seed = 7;
    }
  in
  let r = QS.run config (RS.klsm_sharded ~sticky:4 ~buf:4 k shards) in
  let bound = ((threads + shards) * ((k + shards - 1) / shards)) + threads in
  check_bool "some deletes measured" true (r.QS.deletes > 0);
  check_bool
    (Printf.sprintf "max rank error %d within bound %d under sticky+buf"
       r.QS.max_rank_error bound)
    true
    (r.QS.max_rank_error <= bound)

let test_rank_bound_with_dbuf () =
  (* DESIGN.md §17: per-handle deletion buffers widen the bound to
     rho <= (T+S) * ceil(k/S) + T * (B-1) — every handle can hold up to
     B-1 claimed-but-unserved items whose absence other threads cannot
     observe; + T slack for in-flight inserts as in the §12 test. *)
  Sim.configure ~seed:11 ~policy:Sim.Fair ();
  let threads = 4 and k = 32 and shards = 4 in
  let dbuf = 4 in
  let config =
    {
      QS.default_config with
      num_threads = threads;
      prefill = 2_000;
      ops_per_thread = 1_000;
      seed = 11;
    }
  in
  let r = QS.run config (RS.klsm_sharded ~dbuf k shards) in
  let bound =
    ((threads + shards) * ((k + shards - 1) / shards))
    + (threads * (dbuf - 1))
    + threads
  in
  check_bool "some deletes measured" true (r.QS.deletes > 0);
  check_bool
    (Printf.sprintf "max rank error %d within widened bound %d under dbuf"
       r.QS.max_rank_error bound)
    true
    (r.QS.max_rank_error <= bound)

let () =
  Alcotest.run "sharded"
    [
      ( "semantics",
        [
          prop_single_thread_exact;
          prop_single_thread_exact_knobs;
          prop_multi_handle_conservation;
          prop_multi_handle_conservation_buffered;
          prop_batch_conservation;
        ] );
      ( "partition",
        [
          Alcotest.test_case "budget partition" `Quick test_budget_partition;
          Alcotest.test_case "set_k repartitions" `Quick
            test_set_k_repartitions;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "knob validation" `Quick test_knob_validation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "candidate cache hits" `Quick
            test_candidate_cache_hits;
        ] );
      ( "sticky",
        [
          Alcotest.test_case "window opens, decays, expires" `Quick
            test_sticky_window_opens_decays_expires;
        ] );
      ( "buffer",
        [
          Alcotest.test_case "flush on undercutting delete-min" `Quick
            test_buffer_flush_on_delete_min;
          Alcotest.test_case "no flush when the LSM wins" `Quick
            test_buffer_no_flush_when_local_wins;
          Alcotest.test_case "age bound flushes" `Quick
            test_buffer_age_bound_flushes;
        ] );
      ( "batch",
        [
          prop_klsm_batch_exact;
          prop_sharded_batch_exact;
          Alcotest.test_case "empty and short batches" `Quick test_batch_edges;
          Alcotest.test_case "fuzz batch+single pops vs oracle" `Slow
            test_fuzz_batch_and_single_pops;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "storm migrates, conserves" `Slow
            test_storm_migrates_and_conserves;
        ] );
      ( "quality",
        [
          Alcotest.test_case "partitioned rank bound" `Slow
            test_rank_bound_partitioned;
          Alcotest.test_case "rank bound under sticky+buf" `Slow
            test_rank_bound_with_knobs;
          Alcotest.test_case "widened rank bound under dbuf" `Slow
            test_rank_bound_with_dbuf;
        ] );
    ]
