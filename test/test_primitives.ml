(* Unit and property tests for klsm_primitives: the seeded RNG, tabulation
   hashing, Bloom filters, backoff, bit utilities and statistics. *)

open Helpers
module Xoshiro = Klsm_primitives.Xoshiro
module Tabular_hash = Klsm_primitives.Tabular_hash
module Bloom = Klsm_primitives.Bloom
module Backoff = Klsm_primitives.Backoff
module Bits = Klsm_primitives.Bits
module Stats = Klsm_primitives.Stats

(* ---------------- Xoshiro ---------------- *)

let test_rng_deterministic () =
  let a = Xoshiro.create ~seed:42 and b = Xoshiro.create ~seed:42 in
  for _ = 1 to 1000 do
    check_bool "same stream" true (Xoshiro.next a = Xoshiro.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Xoshiro.create ~seed:1 and b = Xoshiro.create ~seed:2 in
  let different = ref false in
  for _ = 1 to 10 do
    if Xoshiro.next a <> Xoshiro.next b then different := true
  done;
  check_bool "streams differ" true !different

let test_rng_split_decorrelates () =
  let a = Xoshiro.create ~seed:7 in
  let b = Xoshiro.split a in
  let equal = ref 0 in
  for _ = 1 to 100 do
    if Xoshiro.next a = Xoshiro.next b then incr equal
  done;
  check_bool "split streams differ" true (!equal < 5)

let test_rng_copy () =
  let a = Xoshiro.create ~seed:9 in
  ignore (Xoshiro.next a);
  let b = Xoshiro.copy a in
  check_bool "copy replays" true (Xoshiro.next a = Xoshiro.next b)

let prop_int_bounds =
  qtest "Xoshiro.int stays in bounds"
    QCheck2.Gen.(pair (int_range 1 1_000_000) int)
    (fun (bound, seed) ->
      let rng = Xoshiro.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Xoshiro.int rng bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_int_in_bounds =
  qtest "Xoshiro.int_in inclusive bounds"
    QCheck2.Gen.(triple (int_range (-1000) 1000) (int_bound 2000) int)
    (fun (lo, span, seed) ->
      let hi = lo + span in
      let rng = Xoshiro.create ~seed in
      let v = Xoshiro.int_in rng ~lo ~hi in
      v >= lo && v <= hi)

let test_int_rejects_bad_bound () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Xoshiro.int: bound must be positive")
    (fun () -> ignore (Xoshiro.int (Xoshiro.create ~seed:1) 0))

let test_float_unit_interval () =
  let rng = Xoshiro.create ~seed:3 in
  for _ = 1 to 1000 do
    let f = Xoshiro.float rng in
    check_bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_int_uniformity () =
  (* Chi-squared-ish sanity: 10 buckets, 10000 draws; each bucket within
     3x-ish of the expectation. *)
  let rng = Xoshiro.create ~seed:11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Xoshiro.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c -> check_bool "bucket sane" true (c > 700 && c < 1300))
    buckets

let test_geometric_mean () =
  let rng = Xoshiro.create ~seed:13 in
  let sum = ref 0 in
  for _ = 1 to 10_000 do
    sum := !sum + Xoshiro.geometric rng ~p:0.5
  done;
  (* Mean of Geom(0.5) failures-before-success is 1. *)
  let mean = float_of_int !sum /. 10_000. in
  check_bool "geometric mean ~1" true (mean > 0.9 && mean < 1.1)

let test_shuffle_permutes () =
  let rng = Xoshiro.create ~seed:17 in
  let a = Array.init 50 Fun.id in
  Xoshiro.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "same multiset" true (sorted = Array.init 50 Fun.id);
  check_bool "actually moved" true (a <> Array.init 50 Fun.id)

(* ---------------- Tabulation hashing ---------------- *)

let test_hash_deterministic () =
  let h1 = Tabular_hash.create ~seed:5 and h2 = Tabular_hash.create ~seed:5 in
  for key = 0 to 100 do
    check_bool "same function" true
      (Tabular_hash.hash h1 key = Tabular_hash.hash h2 key)
  done

let test_hash_seed_changes_function () =
  let h1 = Tabular_hash.create ~seed:5 and h2 = Tabular_hash.create ~seed:6 in
  let diff = ref 0 in
  for key = 0 to 100 do
    if Tabular_hash.hash h1 key <> Tabular_hash.hash h2 key then incr diff
  done;
  check_bool "functions differ" true (!diff > 90)

let prop_hash_non_negative =
  qtest "hash is non-negative" QCheck2.Gen.int (fun key ->
      Tabular_hash.hash (Tabular_hash.create ~seed:1) key >= 0)

let test_hash_pair_spread () =
  (* The two components should not be trivially equal. *)
  let h = Tabular_hash.create ~seed:8 in
  let equal = ref 0 in
  for key = 0 to 999 do
    let a, b = Tabular_hash.hash_pair h key in
    if a land 63 = b land 63 then incr equal
  done;
  check_bool "components independent-ish" true (!equal < 100)

(* ---------------- Bloom ---------------- *)

let hasher = Tabular_hash.create ~seed:99

let prop_bloom_no_false_negative =
  qtest "no false negatives"
    QCheck2.Gen.(list_size (int_bound 50) (int_bound 200))
    (fun tids ->
      let f =
        List.fold_left
          (fun acc tid -> Bloom.union acc (Bloom.singleton ~hasher tid))
          Bloom.empty tids
      in
      List.for_all (fun tid -> Bloom.may_contain ~hasher f tid) tids)

let test_bloom_empty () =
  check_bool "empty contains nothing" false
    (Bloom.may_contain ~hasher Bloom.empty 3);
  check_bool "is_empty" true (Bloom.is_empty Bloom.empty)

let test_bloom_false_positive_rate () =
  (* One inserted tid; most others should not match. *)
  let f = Bloom.singleton ~hasher 0 in
  let fp = ref 0 in
  for tid = 1 to 1000 do
    if Bloom.may_contain ~hasher f tid then incr fp
  done;
  check_bool "fp rate small" true (!fp < 50)

let test_bloom_population () =
  check_int "empty pop" 0 (Bloom.population Bloom.empty);
  let p = Bloom.population (Bloom.singleton ~hasher 7) in
  check_bool "singleton pop 1 or 2" true (p = 1 || p = 2)

let prop_bloom_union_monotone =
  qtest "union preserves membership"
    QCheck2.Gen.(pair (int_bound 100) (int_bound 100))
    (fun (a, b) ->
      let fa = Bloom.singleton ~hasher a and fb = Bloom.singleton ~hasher b in
      let u = Bloom.union fa fb in
      Bloom.may_contain ~hasher u a && Bloom.may_contain ~hasher u b)

(* ---------------- Backoff ---------------- *)

let test_backoff_growth () =
  let b = Backoff.create ~min:1 ~max:8 () in
  let relax _ = () in
  check_int "start" 1 (Backoff.current b);
  Backoff.once b ~relax;
  check_int "doubled" 2 (Backoff.current b);
  Backoff.once b ~relax;
  Backoff.once b ~relax;
  Backoff.once b ~relax;
  check_int "capped" 8 (Backoff.current b);
  Backoff.reset b;
  check_int "reset" 1 (Backoff.current b)

let test_backoff_counts_relaxes () =
  let b = Backoff.create ~min:4 ~max:4 () in
  let n = ref 0 in
  Backoff.once b ~relax:(fun steps -> n := !n + steps);
  check_int "4 relaxes" 4 !n

let test_backoff_validation () =
  Alcotest.check_raises "bad min" (Invalid_argument "Backoff.create")
    (fun () -> ignore (Backoff.create ~min:0 ()))

(* Decorrelated jitter (AWS-style): next = min + U[0, 3*cur - min), clamped
   to [min, max].  Bounds must hold along any trajectory, the same seed
   must replay the same trajectory, and a jitter-free instance must keep
   the exact legacy doubling behaviour (Sim determinism depends on it). *)
let test_backoff_jitter_bounds () =
  let rng = Xoshiro.create ~seed:99 in
  let b = Backoff.create ~min:2 ~max:64 ~jitter:rng () in
  for _ = 1 to 200 do
    let spins = ref 0 in
    Backoff.once b ~relax:(fun n -> spins := n);
    check_bool "relaxed within [min,max]" true (!spins >= 2 && !spins <= 64);
    check_bool "state within [min,max]" true
      (Backoff.current b >= 2 && Backoff.current b <= 64)
  done

let test_backoff_jitter_deterministic () =
  let trajectory seed =
    let b =
      Backoff.create ~min:1 ~max:512 ~jitter:(Xoshiro.create ~seed) ()
    in
    List.init 50 (fun _ ->
        let n = ref 0 in
        Backoff.once b ~relax:(fun s -> n := !n + s);
        !n)
  in
  check_list_int "same seed, same delays" (trajectory 5) (trajectory 5);
  check_bool "different seed diverges" true (trajectory 5 <> trajectory 6)

let test_backoff_no_jitter_unchanged () =
  (* Without ~jitter the schedule is the deterministic doubling ramp. *)
  let b = Backoff.create ~min:1 ~max:16 () in
  let seen =
    List.init 6 (fun _ ->
        let n = ref 0 in
        Backoff.once b ~relax:(fun s -> n := !n + s);
        !n)
  in
  check_list_int "pure doubling" [ 1; 2; 4; 8; 16; 16 ] seen

(* ---------------- Bits ---------------- *)

let prop_ceil_log2 =
  qtest "ceil_log2 spec" QCheck2.Gen.(int_range 1 (1 lsl 40)) (fun n ->
      let l = Bits.ceil_log2 n in
      (1 lsl l) >= n && (l = 0 || 1 lsl (l - 1) < n))

let prop_floor_log2 =
  qtest "floor_log2 spec" QCheck2.Gen.(int_range 1 (1 lsl 40)) (fun n ->
      let l = Bits.floor_log2 n in
      (1 lsl l) <= n && n < 1 lsl (l + 1))

let test_powers () =
  check_bool "pow2 1" true (Bits.is_power_of_two 1);
  check_bool "pow2 64" true (Bits.is_power_of_two 64);
  check_bool "not pow2 63" false (Bits.is_power_of_two 63);
  check_int "next pow 1" 1 (Bits.next_power_of_two 1);
  check_int "next pow 5" 8 (Bits.next_power_of_two 5);
  check_int "next pow 8" 8 (Bits.next_power_of_two 8)

(* ---------------- Stats ---------------- *)

let test_stats_known () =
  let s = Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_bool "mean" true (abs_float (s.Stats.mean -. 5.) < 1e-9);
  check_bool "stddev" true (abs_float (s.Stats.stddev -. 2.13809) < 1e-3);
  check_bool "min/max" true (s.Stats.min = 2. && s.Stats.max = 9.)

let test_stats_single () =
  let s = Stats.summarize [| 3.14 |] in
  check_bool "single" true (s.Stats.stddev = 0. && s.Stats.ci95 = 0.)

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  check_bool "p50" true (Stats.percentile xs 50. = 50.);
  check_bool "p0" true (Stats.percentile xs 0. = 0.);
  check_bool "p100" true (Stats.percentile xs 100. = 100.);
  check_bool "median" true (Stats.median [| 1.; 2.; 3.; 4. |] = 2.5)

let test_stats_t_table () =
  check_bool "df1" true (abs_float (Stats.t_critical_95 1 -. 12.706) < 1e-9);
  check_bool "df30" true (abs_float (Stats.t_critical_95 30 -. 2.042) < 1e-9);
  check_bool "asymptotic" true (Stats.t_critical_95 1000 = 1.96)

let prop_stats_mean_bounds =
  qtest "mean within min/max"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let a = Array.of_list xs in
      let s = Stats.summarize a in
      s.Stats.mean >= s.Stats.min -. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let () =
  Alcotest.run "primitives"
    [
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split decorrelates" `Quick test_rng_split_decorrelates;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          prop_int_bounds;
          prop_int_in_bounds;
          Alcotest.test_case "bad bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "float in [0,1)" `Quick test_float_unit_interval;
          Alcotest.test_case "uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        ] );
      ( "tabular-hash",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "seed changes function" `Quick test_hash_seed_changes_function;
          prop_hash_non_negative;
          Alcotest.test_case "pair spread" `Quick test_hash_pair_spread;
        ] );
      ( "bloom",
        [
          prop_bloom_no_false_negative;
          Alcotest.test_case "empty" `Quick test_bloom_empty;
          Alcotest.test_case "fp rate" `Quick test_bloom_false_positive_rate;
          Alcotest.test_case "population" `Quick test_bloom_population;
          prop_bloom_union_monotone;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "growth and reset" `Quick test_backoff_growth;
          Alcotest.test_case "counts relaxes" `Quick test_backoff_counts_relaxes;
          Alcotest.test_case "validation" `Quick test_backoff_validation;
          Alcotest.test_case "jitter bounds" `Quick test_backoff_jitter_bounds;
          Alcotest.test_case "jitter deterministic" `Quick
            test_backoff_jitter_deterministic;
          Alcotest.test_case "no-jitter path unchanged" `Quick
            test_backoff_no_jitter_unchanged;
        ] );
      ("bits", [ prop_ceil_log2; prop_floor_log2; Alcotest.test_case "powers" `Quick test_powers ]);
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known;
          Alcotest.test_case "single sample" `Quick test_stats_single;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "t table" `Quick test_stats_t_table;
          prop_stats_mean_bounds;
        ] );
    ]
