(* Shared helpers for the alcotest/qcheck suites. *)

module Xoshiro = Klsm_primitives.Xoshiro

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_list_int = Alcotest.(check (list int))

(* Random key list generator with bounded values (suitable for oracles). *)
let keys_gen =
  QCheck2.Gen.(list_size (int_bound 400) (int_bound 10_000))

(* A mixed op sequence: [true, k] = insert k; [false, _] = delete-min. *)
let ops_gen =
  QCheck2.Gen.(list_size (int_bound 600) (pair bool (int_bound 10_000)))

(* Reference oracle: sorted-list priority queue (multiset semantics). *)
module Oracle_pq = struct
  type t = { mutable items : int list }  (* ascending *)

  let create () = { items = [] }

  let insert t k =
    let rec go = function
      | [] -> [ k ]
      | x :: rest when x < k -> x :: go rest
      | rest -> k :: rest
    in
    t.items <- go t.items

  let delete_min t =
    match t.items with
    | [] -> None
    | x :: rest ->
        t.items <- rest;
        Some x

  let to_list t = t.items
end

(* Run the same random op sequence against a queue (via closures) and the
   oracle; returns true iff every delete-min matched exactly.  Only valid
   for configurations that guarantee exact single-thread semantics. *)
let matches_oracle ~insert ~delete_min ops =
  let oracle = Oracle_pq.create () in
  List.for_all
    (fun (is_insert, k) ->
      if is_insert then begin
        insert k;
        Oracle_pq.insert oracle k;
        true
      end
      else begin
        let got = delete_min () in
        let want = Oracle_pq.delete_min oracle in
        got = want
      end)
    ops
