(* Unit and property tests for Item and Block (paper Listing 1): logical
   deletion, append/copy/merge/shrink, level sizing, Bloom filters. *)

open Helpers
module B = Klsm_backend.Real
module Item = Klsm_core.Item.Make (B)
module Block = Klsm_core.Block.Make (B)
module Bloom = Klsm_primitives.Bloom

let alive it = not (Item.is_taken it)

(* Build a block holding [keys] (any order) at the smallest fitting level. *)
let block_of_keys keys =
  match keys with
  | [] -> invalid_arg "block_of_keys: empty"
  | k0 :: _ ->
      let sorted = List.sort (fun a b -> compare b a) keys (* descending *) in
      let level = Klsm_primitives.Bits.ceil_log2 (List.length keys) in
      let b = Block.create_with_exemplar level (Item.make k0 ()) in
      List.iter (fun k -> Block.append ~alive b (Item.make k ())) sorted;
      b

let keys_of_block b = List.map Item.key (Block.to_list b)

(* ---------------- Item ---------------- *)

let test_item_take_once () =
  let it = Item.make 5 "payload" in
  check_bool "fresh" false (Item.is_taken it);
  check_bool "first take wins" true (Item.take it);
  check_bool "now taken" true (Item.is_taken it);
  check_bool "second take fails" false (Item.take it);
  check_int "key" 5 (Item.key it);
  Alcotest.(check string) "value" "payload" (Item.value it)

(* ---------------- Block basics ---------------- *)

let test_singleton () =
  let it = Item.make 3 () in
  let b = Block.singleton ~filter:Bloom.empty it in
  check_int "level" 0 (Block.level b);
  check_int "filled" 1 (Block.filled b);
  check_int "capacity" 1 (Block.capacity b);
  check_bool "not empty" false (Block.is_empty b);
  Block.check_invariants b

let test_capacity_of_level () =
  check_int "level 0" 1 (Block.capacity_of_level 0);
  check_int "level 5" 32 (Block.capacity_of_level 5)

let prop_block_sorted_descending =
  qtest "block keys descend"
    QCheck2.Gen.(list_size (int_range 1 300) (int_bound 1000))
    (fun keys ->
      let b = block_of_keys keys in
      Block.check_invariants b;
      keys_of_block b = List.sort (fun a b -> compare b a) keys)

let test_last_item_is_min () =
  let b = block_of_keys [ 9; 2; 7; 4 ] in
  match Block.last_item b with
  | Some it -> check_int "min" 2 (Item.key it)
  | None -> Alcotest.fail "expected min"

(* ---------------- peek_min ---------------- *)

let test_peek_min_skips_taken () =
  let b = block_of_keys [ 10; 8; 6; 4; 2 ] in
  (* Take the two smallest. *)
  Block.iter b ~f:(fun it ->
      if Item.key it <= 4 then ignore (Item.take it));
  (match Block.peek_min ~alive b with
  | Some it -> check_int "first alive" 6 (Item.key it)
  | None -> Alcotest.fail "expected alive item");
  (* peek_min publishes the shortened filled (benign cleanup). *)
  check_int "tail cleaned" 3 (Block.filled b)

let test_peek_min_all_dead () =
  let b = block_of_keys [ 5; 1 ] in
  Block.iter b ~f:(fun it -> ignore (Item.take it));
  check_bool "none" true (Block.peek_min ~alive b = None);
  check_int "emptied" 0 (Block.filled b)

(* ---------------- copy ---------------- *)

let prop_copy_filters_taken =
  qtest "copy keeps exactly the alive items"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 100) (int_bound 1000))
        (list_size (int_bound 100) bool))
    (fun (keys, kill_mask) ->
      let b = block_of_keys keys in
      let i = ref 0 in
      let expected = ref [] in
      Block.iter b ~f:(fun it ->
          let kill = List.nth_opt kill_mask !i = Some true in
          if kill then ignore (Item.take it)
          else expected := Item.key it :: !expected;
          incr i);
      let c = Block.copy ~alive b (Block.level b) in
      Block.check_invariants c;
      keys_of_block c = List.rev !expected)

(* ---------------- merge ---------------- *)

let prop_merge_is_sorted_union =
  qtest "merge = descending multiset union"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (int_bound 1000))
        (list_size (int_range 1 200) (int_bound 1000)))
    (fun (k1, k2) ->
      let b1 = block_of_keys k1 and b2 = block_of_keys k2 in
      let m = Block.merge ~alive b1 b2 in
      Block.check_invariants m;
      keys_of_block m = List.sort (fun a b -> compare b a) (k1 @ k2))

let test_merge_level_fits () =
  let b1 = block_of_keys (List.init 8 Fun.id) in
  let b2 = block_of_keys (List.init 8 (fun i -> i + 100)) in
  let m = Block.merge ~alive b1 b2 in
  check_bool "capacity suffices" true (Block.capacity m >= 16);
  check_int "filled" 16 (Block.filled m)

let test_merge_filters_taken () =
  let b1 = block_of_keys [ 1; 3; 5 ] and b2 = block_of_keys [ 2; 4; 6 ] in
  Block.iter b1 ~f:(fun it -> if Item.key it = 3 then ignore (Item.take it));
  let m = Block.merge ~alive b1 b2 in
  check_list_int "3 gone" [ 6; 5; 4; 2; 1 ] (keys_of_block m)

let test_merge_filter_union () =
  let hasher = Klsm_primitives.Tabular_hash.create ~seed:1 in
  let b1 = block_of_keys [ 1 ] and b2 = block_of_keys [ 2 ] in
  b1.Block.filter <- Bloom.singleton ~hasher 3;
  b2.Block.filter <- Bloom.singleton ~hasher 5;
  let m = Block.merge ~alive b1 b2 in
  check_bool "union contains both" true
    (Bloom.may_contain ~hasher (Block.filter m) 3
    && Bloom.may_contain ~hasher (Block.filter m) 5)

(* ---------------- shrink ---------------- *)

let test_shrink_removes_dead_tail () =
  let b = block_of_keys [ 10; 8; 6; 4; 2 ] in
  Block.iter b ~f:(fun it -> if Item.key it <= 4 then ignore (Item.take it));
  let s = Block.shrink ~alive b in
  Block.check_invariants s;
  check_list_int "tail dropped" [ 10; 8; 6 ] (keys_of_block s);
  (* 3 items need level 2. *)
  check_int "level" 2 (Block.level s)

let test_shrink_noop_when_tight () =
  let b = block_of_keys (List.init 8 Fun.id) in
  let s = Block.shrink ~alive b in
  check_bool "same block" true (s == b)

let test_shrink_filters_mid_block () =
  (* Dead items in the middle force a copy when the level drops; the copy
     must clean them out too (Listing 1's recursion).  Kill the 8-item dead
     tail (keys 0..7) and the odd keys above it: the tail pop leaves 8
     logical items which fit level 3 < 4, so shrink copies and the copy
     filters the odd keys, recursing down to level 2. *)
  let b = block_of_keys (List.init 16 Fun.id) in
  Block.iter b ~f:(fun it ->
      if Item.key it < 8 || Item.key it mod 2 = 1 then ignore (Item.take it));
  let s = Block.shrink ~alive b in
  Block.check_invariants s;
  check_list_int "alive survive" [ 14; 12; 10; 8 ] (keys_of_block s);
  check_int "level minimal" 2 (Block.level s)

let prop_shrink_preserves_alive =
  qtest "shrink preserves the alive multiset"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 150) (int_bound 500))
        (list_size (int_bound 150) bool))
    (fun (keys, kill_mask) ->
      let b = block_of_keys keys in
      let i = ref 0 in
      let expected = ref [] in
      Block.iter b ~f:(fun it ->
          let kill = List.nth_opt kill_mask !i = Some true in
          if kill then ignore (Item.take it)
          else expected := Item.key it :: !expected;
          incr i);
      let s = Block.shrink ~alive b in
      Block.check_invariants s;
      (* shrink only guarantees the dead tail is dropped; every alive item
         must survive (losing one would lose a queue element). *)
      let got = keys_of_block s in
      let surviving_alive =
        List.filter (fun _ -> true) got
        |> List.filter (fun k -> List.mem k !expected)
      in
      List.for_all (fun k -> List.mem k got) !expected
      && List.length surviving_alive >= List.length !expected)

let test_shrink_empty () =
  let b = block_of_keys [ 1 ] in
  Block.iter b ~f:(fun it -> ignore (Item.take it));
  let s = Block.shrink ~alive b in
  check_bool "empty" true (Block.is_empty s)

(* ---------------- SoA keys mirror ---------------- *)

(* [keys.(i) = Item.key items.(i)] for every i < filled, across every
   constructor and mutator.  check_invariants asserts this too; here the
   property is spelled out directly so a mirror regression fails with a
   named test rather than only inside other tests' invariant calls. *)
let mirror_in_sync b =
  let f = Block.filled b in
  let its = Block.items b in
  let ok = ref true in
  for i = 0 to f - 1 do
    if b.Block.keys.(i) <> Item.key its.(i) then ok := false
  done;
  !ok

let prop_soa_mirror =
  qtest "keys array mirrors item keys through append/merge/shrink"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 120) (int_bound 1000))
        (list_size (int_range 1 120) (int_bound 1000))
        (list_size (int_bound 240) bool))
    (fun (k1, k2, kill_mask) ->
      let b1 = block_of_keys k1 and b2 = block_of_keys k2 in
      let m = Block.merge ~alive b1 b2 in
      let i = ref 0 in
      Block.iter m ~f:(fun it ->
          if List.nth_opt kill_mask !i = Some true then ignore (Item.take it);
          incr i);
      let s = Block.shrink ~alive m in
      mirror_in_sync b1 && mirror_in_sync b2 && mirror_in_sync m
      && mirror_in_sync s)

let test_mirror_checked_by_invariants () =
  let b = block_of_keys [ 9; 4; 1 ] in
  b.Block.keys.(1) <- 777 (* corrupt the mirror *);
  check_bool "check_invariants catches desync" true
    (try
       Block.check_invariants b;
       false
     with _ -> true)

(* ---------------- block pool ---------------- *)

let test_pool_merge_retires_private_inputs () =
  let pool = Block.Pool.create () in
  let b1 = block_of_keys [ 1; 3 ] and b2 = block_of_keys [ 2; 4 ] in
  let m = Block.merge ~pool ~alive b1 b2 in
  check_bool "input 1 retired" true (Block.state b1 = Block.Retired);
  check_bool "input 2 retired" true (Block.state b2 = Block.Retired);
  check_bool "result private" true (Block.state m = Block.Private);
  check_list_int "merge content intact" [ 4; 3; 2; 1 ] (keys_of_block m)

let test_pool_physically_reuses_retired_block () =
  let pool = Block.Pool.create () in
  let b = Block.singleton ~filter:Bloom.empty (Item.make 7 ()) in
  Block.retire ~pool b;
  let c = Block.singleton ~pool ~filter:Bloom.empty (Item.make 42 ()) in
  check_bool "same record recycled" true (b == c);
  check_bool "reacquired as private" true (Block.state c = Block.Private);
  check_int "reset and refilled" 1 (Block.filled c);
  check_list_int "new content" [ 42 ] (keys_of_block c);
  check_bool "mirror in sync after reuse" true (mirror_in_sync c)

let test_pool_never_recycles_published () =
  let pool = Block.Pool.create () in
  let b = Block.singleton ~filter:Bloom.empty (Item.make 7 ()) in
  Block.publish b;
  Block.retire ~pool b (* must be a no-op *);
  check_bool "still published" true (Block.state b = Block.Published);
  let c = Block.singleton ~pool ~filter:Bloom.empty (Item.make 8 ()) in
  check_bool "fresh allocation, not the published block" true (not (b == c))

let test_pool_retired_block_fails_invariants () =
  let pool = Block.Pool.create () in
  let b = block_of_keys [ 5; 2 ] in
  Block.retire ~pool b;
  check_bool "retired block unreachable from live structures" true
    (try
       Block.check_invariants b;
       false
     with _ -> true)

let test_pool_publish_after_retire_fails () =
  let pool = Block.Pool.create () in
  let b = block_of_keys [ 5; 2 ] in
  Block.retire ~pool b;
  check_bool "resurfacing a retired block fails loudly" true
    (try
       Block.publish b;
       false
     with Failure _ -> true)

(* ---------------- lazy-deletion alive predicates ---------------- *)

let test_custom_alive_predicate () =
  (* A predicate that condemns even keys behaves like logical deletion for
     copy/merge/shrink. *)
  let alive it = (not (Item.is_taken it)) && Item.key it mod 2 = 1 in
  let b = block_of_keys [ 1; 2; 3; 4; 5 ] in
  let c = Block.copy ~alive b (Block.level b) in
  check_list_int "evens filtered" [ 5; 3; 1 ] (keys_of_block c)

let () =
  Alcotest.run "block"
    [
      ("item", [ Alcotest.test_case "take once" `Quick test_item_take_once ]);
      ( "block",
        [
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "capacity" `Quick test_capacity_of_level;
          prop_block_sorted_descending;
          Alcotest.test_case "last is min" `Quick test_last_item_is_min;
        ] );
      ( "peek",
        [
          Alcotest.test_case "skips taken" `Quick test_peek_min_skips_taken;
          Alcotest.test_case "all dead" `Quick test_peek_min_all_dead;
        ] );
      ("copy", [ prop_copy_filters_taken ]);
      ( "merge",
        [
          prop_merge_is_sorted_union;
          Alcotest.test_case "level fits" `Quick test_merge_level_fits;
          Alcotest.test_case "filters taken" `Quick test_merge_filters_taken;
          Alcotest.test_case "bloom union" `Quick test_merge_filter_union;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "dead tail" `Quick test_shrink_removes_dead_tail;
          Alcotest.test_case "noop when tight" `Quick test_shrink_noop_when_tight;
          Alcotest.test_case "mid-block filtering" `Quick test_shrink_filters_mid_block;
          prop_shrink_preserves_alive;
          Alcotest.test_case "to empty" `Quick test_shrink_empty;
        ] );
      ( "soa-mirror",
        [
          prop_soa_mirror;
          Alcotest.test_case "invariants catch desync" `Quick
            test_mirror_checked_by_invariants;
        ] );
      ( "pool",
        [
          Alcotest.test_case "merge retires private inputs" `Quick
            test_pool_merge_retires_private_inputs;
          Alcotest.test_case "physical reuse" `Quick
            test_pool_physically_reuses_retired_block;
          Alcotest.test_case "published never recycled" `Quick
            test_pool_never_recycles_published;
          Alcotest.test_case "retired fails invariants" `Quick
            test_pool_retired_block_fails_invariants;
          Alcotest.test_case "publish after retire fails" `Quick
            test_pool_publish_after_retire_fails;
        ] );
      ( "lazy-deletion",
        [ Alcotest.test_case "custom alive" `Quick test_custom_alive_predicate ]
      );
    ]
