(* A mini prioritized job server on the scheduling runtime (lib/sched).

   Run with:  dune exec examples/server.exe

   Models a request-processing server: front-end workers accept "requests"
   from an open-loop Poisson arrival stream, tag each with a deadline-style
   priority, and push it through the batched submitter into a shared
   k-LSM(256).  Request handlers may spawn follow-up work (a "logging"
   child task), exercising the task-spawns-task path.  Admission control
   bounds the in-flight population, so an overloaded server rejects (sheds)
   rather than grows an unbounded backlog.

   Runs on the deterministic simulator so the output is reproducible; flip
   [B] to [Klsm_backend.Real] for a live multi-domain run. *)

module B = Klsm_backend.Sim
module CL = Klsm_sched.Closed_loop.Make (B)
module Metrics = Klsm_sched.Metrics

let () =
  B.configure ~seed:7 ();
  let config =
    {
      CL.num_workers = 4;
      roots_per_worker = 500;
      (* ~requests/s per front-end worker, virtual time *)
      mode = CL.Open_poisson 300_000.0;
      service = CL.Exponential 48.0;
      (* deadlines cluster around a few hot values, like real traffic *)
      priorities =
        Klsm_harness.Workload.Clustered
          { clusters = 8; spread = 1024; range = 1 lsl 20 };
      fiber_fanout = 0;
      spawn_fanout = 1;
      (* each request spawns one follow-up task *)
      spawn_depth = 1;
      capacity = 256;
      (* small bound => visible backpressure under bursts *)
      batch = 8;
      dbuf = 0;
      urgency_margin = 4096;
      seed = 7;
      robust = CL.Worker.default_robust;
      drain_after = infinity;
    }
  in
  let r = CL.run config (CL.Registry.Klsm 256) in
  let m = r.CL.metrics in
  Printf.printf "jobs completed      %d (roots %d + follow-ups %d)\n"
    r.CL.total_tasks m.Metrics.submitted m.Metrics.spawned;
  Printf.printf "makespan            %.2f ms (virtual)\n" (r.CL.makespan *. 1e3);
  Printf.printf "throughput          %.0f jobs/s\n" r.CL.throughput;
  (match m.Metrics.delay with
  | Some d ->
      Printf.printf "queueing delay      mean %.1f us, p99 %.1f us\n"
        (d.mean *. 1e6)
        (m.Metrics.delay_p99 *. 1e6)
  | None -> ());
  Printf.printf "shed (backpressure) %d admissions rejected\n" m.Metrics.rejected;
  Printf.printf "peak in-flight      %d (capacity %d)\n" r.CL.peak_inflight
    config.CL.capacity;
  Printf.printf "dequeue inversions  %d of %d (relaxation at work)\n"
    m.Metrics.inversions m.Metrics.executed;
  Printf.printf "conservation        lost=%d double=%d\n" r.CL.lost r.CL.double;
  if r.CL.lost <> 0 || r.CL.double <> 0 then exit 1
