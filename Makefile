# Developer entry points.  `make check` is the gate CI runs: formatting,
# full build, full test suite, odoc build, and the BENCH_stats.json schema
# check against docs/METRICS.md.

.PHONY: all build test fmt fmt-fix doc stats-check docs-check chaos-check perf-check store-check torture-check check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Validates formatting (dune files; see the note in dune-project).
fmt:
	dune build @fmt

fmt-fix:
	dune fmt

# API docs from the odoc comments (lib/core cites the paper's listings).
# When the switch has no odoc installed, dune's @doc alias is an empty
# no-op, so this stays green everywhere; with odoc present it renders to
# _build/default/_doc/_html.
doc:
	dune build @doc

# Regenerate BENCH_stats.json (internal counters of every registry queue,
# lib/obs) and validate its schema + METRICS.md coverage.
stats-check:
	dune exec bench/main.exe -- stats
	dune exec bin/statscheck.exe -- BENCH_stats.json docs/METRICS.md

# Documentation-drift gate (bin/docscheck.ml): every Registry spec form
# must appear (backticked) in README.md's queue-spec table with a parsing
# example, and every Obs.counter/Obs.span name declared under lib/ must be
# documented in docs/METRICS.md — stricter than stats-check, which only
# sees names the stats benchmark happens to emit.
docs-check:
	dune exec bin/docscheck.exe -- README.md docs/METRICS.md lib

# Fault-injection gate (lib/chaos; docs/CHAOS.md): a 32-seed sweep of
# deterministic fault plans over queue conservation and hardened-scheduler
# cases, plus the planted-bug teeth check.  Writes BENCH_chaos.json and
# fails on any violation.
chaos-check:
	dune exec bin/chaos.exe -- --seeds 32

# Hot-path performance gate (bin/perfcheck.ml): runs the uniform
# insert/delete-min workload on both backends, writes BENCH_throughput.json
# (ops/sec + pool hit rate on Real, tick counts on Sim), and fails if the
# deterministic Sim tick count for the fixed merge/pivot workload exceeds
# its budget — i.e. if the merge/copy/pivot kernels start charging more
# work per operation.
perf-check:
	dune exec bin/perfcheck.exe

# Spill-tier gate (bin/storecheck.ml; docs/STORAGE.md): with block
# spillage enabled the descending-key workload must hold >= 90% of in-RAM
# throughput (and must actually spill — a vacuous pass fails), and a
# planted mid-spill-kill store must recover byte-identically with an
# idempotent second pass.  Writes BENCH_store.json.
store-check:
	dune exec bin/storecheck.exe

# Crash-point torture gate (bin/torture.ml; docs/CHAOS.md): a seeded grid
# of (fault site x hit index x fault kind) adversarial-I/O plans over the
# in-memory Faulty vfs — short/torn writes, transient and sticky
# EIO/ENOSPC, bit rot, lying fsyncs, dropped renames, process kills and
# power losses — each run to a recovery steady state with conservation,
# no-resurrection and loss-accounting oracles, plus a planted bit-rot
# teeth case that must be quarantined.  Writes BENCH_torture.json and
# fails on any violation.
torture-check:
	dune exec bin/torture.exe

check: fmt build test doc stats-check docs-check chaos-check perf-check store-check torture-check

bench:
	dune exec bench/main.exe

clean:
	dune clean
	rm -rf _store
