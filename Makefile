# Developer entry points.  `make check` is the gate CI runs: formatting,
# full build, full test suite.

.PHONY: all build test fmt fmt-fix check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Validates formatting (dune files; see the note in dune-project).
fmt:
	dune build @fmt

fmt-fix:
	dune fmt

check: fmt build test

bench:
	dune exec bench/main.exe

clean:
	dune clean
