(* The `make perf-check` gate (wired into `make check`).

   Two runs of the uniform insert/delete-min workload (the paper's Figure 3
   mix) on the k-LSM:

   - Real backend, 8 threads: reports ops/sec and the block-pool hit rate
     (lib/obs `pool.*` counters; docs/METRICS.md).  Wall-clock throughput
     on shared CI machines is too noisy to gate on, so this half only
     checks the run completes and the pool is actually being exercised.

   - Sim backend, fixed seed and cost model: the simulator's virtual-work
     tick count for this exact merge/pivot workload is DETERMINISTIC, so it
     is an assertable proxy for hot-path work.  The run fails (exit 1) if
     the tick count exceeds [sim_tick_budget], i.e. if a change regresses
     the amount of sequential work the merge/pivot kernels charge.

   Plus the tuned-knob gates ([real_knobs_section], [sim_scaling_section])
   and the fiber-runtime gate ([real_fibers_section]) — see the comments
   on each.  Results land in BENCH_throughput.json. *)

module Real = Klsm_backend.Real
module Sim = Klsm_backend.Sim
module Report = Klsm_harness.Report
module Obs = Klsm_obs.Obs

(* Sim ticks for the fixed workload below, measured at 323_603 when this
   gate was introduced (SoA blocks + pooled consolidation); the budget
   leaves ~20% headroom for benign drift.  A regression past it means the
   merge/copy/pivot kernels are charging materially more work per op. *)
let sim_tick_budget = 390_000

(* Same workload through the contention-striped composition
   (klsm-sharded:256:4), measured at 84_757 ticks when the gate was
   introduced — well under the single-stripe figure because the hint
   fast paths skip most snapshot copies and per-stripe arrays are a
   quarter the size.  The budget again leaves ~20% headroom. *)
let sharded_sim_tick_budget = 102_000

let counter_total snapshot name =
  match List.assoc_opt name snapshot.Obs.counters with
  | Some per_thread -> Array.fold_left ( + ) 0 per_thread
  | None -> 0

let real_section () =
  let module T = Klsm_harness.Throughput.Make (Real) in
  let module R = Klsm_harness.Registry.Make (Real) in
  let threads = 8 in
  let spec =
    match R.parse_spec "klsm:256" with Ok s -> s | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = threads;
      prefill = 50_000;
      ops_per_thread = 25_000;
      seed = 42;
    }
  in
  let r = T.run config spec in
  let ops_per_sec = r.T.throughput_per_thread *. float_of_int threads in
  let hits = counter_total r.T.stats "pool.hit" in
  let misses = counter_total r.T.stats "pool.miss" in
  let bytes = counter_total r.T.stats "pool.bytes_avoided" in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  Printf.printf "perf-check real: %.0f ops/s (%d threads), pool hit rate %.1f%% (%d hits, %d misses, %d bytes avoided)\n%!"
    ops_per_sec threads (100.0 *. hit_rate) hits misses bytes;
  if hits = 0 then begin
    prerr_endline "perf-check FAILED: block pool never hit (pooling broken?)";
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "real");
      ("impl", Report.String "klsm(256)");
      ("threads", Report.Int threads);
      ("shards", Report.Int 1);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("ops_per_sec", Report.Float ops_per_sec);
      ("throughput_per_thread", Report.Float r.T.throughput_per_thread);
      ("pool_hits", Report.Int hits);
      ("pool_misses", Report.Int misses);
      ("pool_hit_rate", Report.Float hit_rate);
      ("pool_bytes_avoided", Report.Int bytes);
    ]

(* Sharded-vs-unsharded on the Real backend (ISSUE 5 acceptance bar): the
   striped composition must not cost throughput — klsm-sharded:256:4 has
   to land within 5% of klsm:256 on the same 8-thread workload.  Wall
   clock on shared CI is noisy, so both sides take the MEDIAN of [reps]
   interleaved runs before comparing: the unsharded queue's samples have
   occasional +25% scheduling-luck spikes on an oversubscribed box, and a
   best-of comparison flips whenever one side happens to catch such a
   spike, while the medians order the two sides the same way run after
   run. *)
let real_sharded_section () =
  let module T = Klsm_harness.Throughput.Make (Real) in
  let module R = Klsm_harness.Registry.Make (Real) in
  let threads = 8 and shards = 4 in
  let parse s =
    match R.parse_spec s with Ok s -> s | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = threads;
      prefill = 50_000;
      ops_per_thread = 25_000;
      seed = 42;
    }
  in
  (* The two sides are measured INTERLEAVED (A,B,A,B,...) with a major-GC
     compaction before each sample: heap growth and machine-load drift
     across a run otherwise bias whichever side happens to run later, and
     on a shared box that bias exceeds the 5% band this gate enforces. *)
  let reps = 5 in
  let unsharded_spec = parse "klsm:256" and sharded_spec = parse "klsm-sharded:256:4" in
  let sample spec =
    Gc.compact ();
    let r = T.run config spec in
    r.T.throughput_per_thread *. float_of_int threads
  in
  let unsharded_s = Array.make reps 0.0 and sharded_s = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    unsharded_s.(i) <- sample unsharded_spec;
    sharded_s.(i) <- sample sharded_spec
  done;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let unsharded = median unsharded_s and sharded = median sharded_s in
  let floor = 0.95 *. unsharded in
  Printf.printf
    "perf-check real sharded: %.0f ops/s median-of-%d (S=%d, %d threads) vs \
     unsharded %.0f ops/s (floor %.0f)\n%!"
    sharded reps shards threads unsharded floor;
  if sharded < floor then begin
    Printf.eprintf
      "perf-check FAILED: sharded throughput %.0f ops/s fell more than 5%% \
       below unsharded %.0f ops/s\n%!"
      sharded unsharded;
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "real");
      ("impl", Report.String "klsm-sharded(256,4)");
      ("threads", Report.Int threads);
      ("shards", Report.Int shards);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("reps", Report.Int reps);
      ("ops_per_sec_median", Report.Float sharded);
      ("unsharded_ops_per_sec", Report.Float unsharded);
      ("floor_ops_per_sec", Report.Float floor);
    ]

(* The DESIGN.md §15 contention-knob gate (ISSUE 7 acceptance bar), in
   three parts, all on the tuned spec klsm-sharded:1024:4:sticky=16:buf=16
   (docs/TUNING.md motivates the values; in particular k doubles twice vs
   the PR 5 default because any buf > 0 costs the local LSM one level —
   kp is a power of two, so kp - buf always crosses a level boundary —
   and k = 1024 restores the local capacity that pays for):

   - an ABSOLUTE floor on the Real backend at T = 8: >= 33.4k
     ops/thread/s — the PR 5 sharded figure on the reference box, so the
     knobs must not cost throughput at moderate thread counts.  The
     sampling loop takes up to [knob_reps] compaction-normalized reps and
     passes as soon as one crosses the floor: per-sample wall-clock noise
     on a shared box is +-15%, so a healthy queue crosses within a rep or
     two while a real 20%+ regression still has no realistic path past
     the floor;
   - a full Real thread sweep 1..16 (past 2x the cores of any CI box we
     use, i.e. well into oversubscription) emitted into
     BENCH_throughput.json so the curve is on the record;
   - the FLATNESS gate runs on the simulator (below,
     {!sim_scaling_section}): on an oversubscribed host, Real per-thread
     throughput halves from timesharing alone — T = 16 on an 8-core (or
     1-core CI) box measures the scheduler, not the queue.  The
     simulator's cost model charges CAS contention and cache traffic but
     not timeslices, so its per-thread curve isolates exactly the
     algorithmic scalability the gate is about. *)
let knob_spec = "klsm-sharded:1024:4:sticky=16:buf=16"
let knob_real_floor_per_thread = 33_400.0
let knob_reps = 10

let real_knobs_section () =
  let module T = Klsm_harness.Throughput.Make (Real) in
  let module R = Klsm_harness.Registry.Make (Real) in
  let threads = 8 in
  let spec =
    match R.parse_spec knob_spec with Ok s -> s | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = threads;
      prefill = 50_000;
      ops_per_thread = 25_000;
      seed = 42;
    }
  in
  let best = ref 0.0 and reps_used = ref 0 in
  (while
     !reps_used < knob_reps && !best < knob_real_floor_per_thread
   do
     Gc.compact ();
     let r = T.run config spec in
     incr reps_used;
     best := Float.max !best r.T.throughput_per_thread
   done);
  let best = !best and reps = !reps_used in
  Printf.printf
    "perf-check real knobs: %.0f ops/thread/s in %d rep(s) (%s, %d threads; \
     floor %.0f)\n%!"
    best reps knob_spec threads knob_real_floor_per_thread;
  if best < knob_real_floor_per_thread then begin
    Printf.eprintf
      "perf-check FAILED: sticky/buffered throughput %.0f ops/thread/s \
       under the %.0f floor\n%!"
      best knob_real_floor_per_thread;
    exit 1
  end;
  (* The oversubscription sweep: one rep per point, smaller totals (the
     points are for the record, not a gate). *)
  let sweep_points =
    List.map
      (fun t ->
        Gc.compact ();
        let cfg =
          {
            T.default_config with
            num_threads = t;
            prefill = 20_000;
            ops_per_thread = max 2_000 (32_000 / t);
            seed = 42;
          }
        in
        let r = T.run cfg spec in
        (t, r.T.throughput_per_thread))
      [ 1; 2; 4; 8; 16 ]
  in
  List.iter
    (fun (t, per) ->
      Printf.printf "perf-check real knobs sweep: T=%-2d %.0f ops/thread/s\n%!"
        t per)
    sweep_points;
  Report.Obj
    [
      ("backend", Report.String "real");
      ("impl", Report.String knob_spec);
      ("threads", Report.Int threads);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("reps", Report.Int reps);
      ("ops_per_thread_per_sec_best", Report.Float best);
      ("floor_ops_per_thread_per_sec", Report.Float knob_real_floor_per_thread);
      ( "thread_sweep",
        Report.List
          (List.map
             (fun (t, per) ->
               Report.Obj
                 [
                   ("threads", Report.Int t);
                   ("ops_per_thread_per_sec", Report.Float per);
                   ("ops_per_sec", Report.Float (per *. float_of_int t));
                 ])
             sweep_points) );
    ]

(* The DESIGN.md §17 batched-delete gate (ISSUE 10 acceptance bar): the
   tuned spec with dbuf=8 — one shared CAS claims a run of 8 items, the
   per-handle deletion buffer serves the next 7 pops privately — against
   the dbuf-off tuned spec as control, on the same light workload the
   knob sweep records (prefill 20k, 32k total ops split across threads).
   Two floors:

   - T = 8, interleaved median-of-5 (same discipline as
     [real_sharded_section]: alternate control/batched samples with a
     compaction before each, compare medians): >= [batch_real_floor_t8]
     ops/thread/s — the pre-batch T = 8 sweep figure, so batching must
     not cost throughput where the queue was already healthy;
   - T = 16 (2x oversubscription on CI boxes, where the pre-batch sweep
     collapsed to ~20.7k): best-of-up-to-[batch_reps16] compaction-
     normalized reps must clear [batch_real_floor_t16], the same
     pass-on-first-crossing discipline as [real_knobs_section] and for
     the same reason (+-50% wall-clock noise on a loaded shared box; a
     healthy queue crosses within a few reps, a real regression has no
     path past the floor) — the batch claim divides the shared
     copy-and-CAS work per pop by ~B, which is exactly the regime where
     that work dominated.  The T = 16 leg runs 8k ops/thread rather than
     the sweep's 2k: the harness times domain spawn/join inside the
     measured window, and at 2k ops the 16-domain spawn on a small CI
     box dominates the figure — the gate would measure the OS, not the
     queue. *)
let batch_spec = knob_spec ^ ":dbuf=8"
let batch_real_floor_t8 = 37_200.0
let batch_real_floor_t16 = 24_000.0
let batch_reps = 5
let batch_reps16 = 10

let real_batch_section () =
  let module T = Klsm_harness.Throughput.Make (Real) in
  let module R = Klsm_harness.Registry.Make (Real) in
  let parse s =
    match R.parse_spec s with Ok s -> s | Error m -> failwith m
  in
  let batched = parse batch_spec and control = parse knob_spec in
  let config ~ops t =
    {
      T.default_config with
      num_threads = t;
      prefill = 20_000;
      ops_per_thread = ops;
      seed = 42;
    }
  in
  let sample ~ops t spec =
    Gc.compact ();
    let r = T.run (config ~ops t) spec in
    r.T.throughput_per_thread
  in
  let sample8 = sample ~ops:4_000 8 and sample16 = sample ~ops:8_000 16 in
  let control_s = Array.make batch_reps 0.0
  and batched_s = Array.make batch_reps 0.0 in
  for i = 0 to batch_reps - 1 do
    control_s.(i) <- sample8 control;
    batched_s.(i) <- sample8 batched
  done;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let control8 = median control_s and batched8 = median batched_s in
  Printf.printf
    "perf-check real batch: T=8 %.0f ops/thread/s median-of-%d (%s) vs \
     control %.0f (floor %.0f)\n%!"
    batched8 batch_reps batch_spec control8 batch_real_floor_t8;
  if batched8 < batch_real_floor_t8 then begin
    Printf.eprintf
      "perf-check FAILED: batched T=8 throughput %.0f ops/thread/s under \
       the %.0f floor\n%!"
      batched8 batch_real_floor_t8;
    exit 1
  end;
  let best16 = ref 0.0 and reps16 = ref 0 in
  (while !reps16 < batch_reps16 && !best16 < batch_real_floor_t16 do
     incr reps16;
     best16 := Float.max !best16 (sample16 batched)
   done);
  let best16 = !best16 and reps16 = !reps16 in
  Printf.printf
    "perf-check real batch: T=16 %.0f ops/thread/s in %d rep(s) (floor \
     %.0f)\n%!"
    best16 reps16 batch_real_floor_t16;
  if best16 < batch_real_floor_t16 then begin
    Printf.eprintf
      "perf-check FAILED: batched T=16 throughput %.0f ops/thread/s under \
       the %.0f floor\n%!"
      best16 batch_real_floor_t16;
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "real");
      ("impl", Report.String batch_spec);
      ("control_impl", Report.String knob_spec);
      ("prefill", Report.Int 20_000);
      ("t8_ops_per_thread", Report.Int 4_000);
      ("t16_ops_per_thread", Report.Int 8_000);
      ("reps", Report.Int batch_reps);
      ("t8_ops_per_thread_per_sec_median", Report.Float batched8);
      ("t8_control_ops_per_thread_per_sec_median", Report.Float control8);
      ("t8_floor_ops_per_thread_per_sec", Report.Float batch_real_floor_t8);
      ("t16_ops_per_thread_per_sec_best", Report.Float best16);
      ("t16_reps", Report.Int reps16);
      ("t16_floor_ops_per_thread_per_sec", Report.Float batch_real_floor_t16);
    ]

(* The fiber-runtime gate (lib/sched effects runtime; DESIGN.md section
   16): the closed-loop driver on the tuned sharded spec, with every task
   exploded into a [1 + fiber_fanout]-fiber tree, must push 100k+ fibers
   through 8 Real domains at >= [fiber_floor_per_thread] fibers/thread/s —
   the same absolute bar as the raw-queue knob gate above, so multiplexing
   cheap effect-handler fibers over the k-LSM may not cost throughput
   against plain task bodies.  Same sampling discipline as the knob gate:
   up to [fiber_reps] compaction-normalized reps, pass on the first one
   over the floor.  Every rep also re-asserts the scheduler's conservation
   story at this scale — lost = double = fiber_lost = 0 (per-task lease
   exactly-once AND per-fiber exactly-once; DESIGN.md sections 13/16).
   The steal success rate of the best rep and a thread sweep land in
   BENCH_throughput.json for the record. *)
let fiber_floor_per_thread = 33_400.0
let fiber_reps = 10
let fiber_workers = 8
let fiber_fanout = 7
let fiber_roots = 1_563 (* 8 * 1_563 * (1 + 7) = 100_032 fibers *)

let real_fibers_section () =
  let module CL = Klsm_sched.Closed_loop.Make (Real) in
  let module M = Klsm_sched.Metrics in
  let spec =
    match CL.Registry.parse_spec knob_spec with
    | Ok s -> s
    | Error m -> failwith m
  in
  let config =
    {
      CL.default_config with
      num_workers = fiber_workers;
      roots_per_worker = fiber_roots;
      fiber_fanout;
      seed = 42;
    }
  in
  let fibers_expected = fiber_workers * fiber_roots * (1 + fiber_fanout) in
  assert (fibers_expected >= 100_000);
  let run_once cfg =
    Gc.compact ();
    let r = CL.run cfg spec in
    if r.CL.lost > 0 || r.CL.double > 0 || r.CL.fiber_lost > 0 || r.CL.gave_up
    then begin
      Printf.eprintf
        "perf-check FAILED: fiber run broke conservation (lost=%d double=%d \
         fiber_lost=%d gave_up=%b)\n%!"
        r.CL.lost r.CL.double r.CL.fiber_lost r.CL.gave_up;
      exit 1
    end;
    r
  in
  let per_thread (r : CL.result) =
    float_of_int r.CL.metrics.M.fibers_completed
    /. r.CL.makespan
    /. float_of_int r.CL.config.CL.num_workers
  in
  let best = ref 0.0 and reps_used = ref 0 in
  let steals = ref 0 and steal_attempts = ref 0 in
  (while !reps_used < fiber_reps && !best < fiber_floor_per_thread do
     let r = run_once config in
     incr reps_used;
     if r.CL.metrics.M.fibers <> fibers_expected then begin
       Printf.eprintf "perf-check FAILED: fiber run created %d fibers, not %d\n%!"
         r.CL.metrics.M.fibers fibers_expected;
       exit 1
     end;
     let per = per_thread r in
     if per > !best then begin
       best := per;
       steals := r.CL.metrics.M.steals;
       steal_attempts := r.CL.metrics.M.steal_attempts
     end
   done);
  let best = !best and reps = !reps_used in
  let steal_rate =
    if !steal_attempts > 0 then
      float_of_int !steals /. float_of_int !steal_attempts
    else 0.0
  in
  Printf.printf
    "perf-check real fibers: %d fibers, %.0f fibers/thread/s in %d rep(s) \
     (%s, %d domains; floor %.0f; steal hit rate %.2f)\n%!"
    fibers_expected best reps knob_spec fiber_workers fiber_floor_per_thread
    steal_rate;
  if best < fiber_floor_per_thread then begin
    Printf.eprintf
      "perf-check FAILED: fiber runtime %.0f fibers/thread/s under the %.0f \
       floor\n%!"
      best fiber_floor_per_thread;
    exit 1
  end;
  (* Fiber thread sweep: constant per-worker load (one rep per point, for
     the record, not a gate). *)
  let sweep_points =
    List.map
      (fun t ->
        let cfg =
          {
            config with
            CL.num_workers = t;
            roots_per_worker = 400;
            seed = 42;
          }
        in
        let r = run_once cfg in
        (t, r.CL.metrics.M.fibers, per_thread r))
      [ 1; 2; 4; 8 ]
  in
  List.iter
    (fun (t, fibers, per) ->
      Printf.printf
        "perf-check real fibers sweep: T=%-2d %7d fibers %.0f \
         fibers/thread/s\n%!"
        t fibers per)
    sweep_points;
  Report.Obj
    [
      ("backend", Report.String "real");
      ("impl", Report.String knob_spec);
      ("workers", Report.Int fiber_workers);
      ("fiber_fanout", Report.Int fiber_fanout);
      ("roots_per_worker", Report.Int fiber_roots);
      ("fibers", Report.Int fibers_expected);
      ("reps", Report.Int reps);
      ("fibers_per_thread_per_sec_best", Report.Float best);
      ("floor_fibers_per_thread_per_sec", Report.Float fiber_floor_per_thread);
      ("steal_attempts", Report.Int !steal_attempts);
      ("steals", Report.Int !steals);
      ("steal_success_rate", Report.Float steal_rate);
      ( "thread_sweep",
        Report.List
          (List.map
             (fun (t, fibers, per) ->
               Report.Obj
                 [
                   ("threads", Report.Int t);
                   ("fibers", Report.Int fibers);
                   ("fibers_per_thread_per_sec", Report.Float per);
                 ])
             sweep_points) );
    ]

(* Algorithmic flatness on the simulator (deterministic): per-thread
   throughput at T = 16 must hold >= 85% of T = 8 on the tuned spec.  The
   simulator charges contention through its MESI-style cost model, so a
   contention collapse past T = 8 (the failure mode stickiness and
   buffering exist to prevent) would show here as a sub-0.85 ratio
   regardless of host core count. *)
let sim_flatness_ratio = 0.85

let sim_scaling_section () =
  let module T = Klsm_harness.Throughput.Make (Sim) in
  let module R = Klsm_harness.Registry.Make (Sim) in
  let spec =
    match R.parse_spec knob_spec with Ok s -> s | Error m -> failwith m
  in
  let run_at t =
    Sim.configure ~seed:42 ~cost:Klsm_backend.Cost_model.default ();
    let config =
      {
        T.default_config with
        num_threads = t;
        prefill = 2_000;
        ops_per_thread = 1_000;
        seed = 42;
      }
    in
    let r = T.run config spec in
    r.T.throughput_per_thread
  in
  let at8 = run_at 8 in
  let at16 = run_at 16 in
  let ratio = if at8 > 0.0 then at16 /. at8 else 0.0 in
  Printf.printf
    "perf-check sim scaling: per-thread T=16 / T=8 = %.2f (floor %.2f) on \
     %s\n%!"
    ratio sim_flatness_ratio knob_spec;
  if ratio < sim_flatness_ratio then begin
    Printf.eprintf
      "perf-check FAILED: per-thread throughput fell to %.0f%% of T=8 at \
       T=16 — the contention knobs stopped flattening the curve\n%!"
      (100.0 *. ratio);
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "sim");
      ("impl", Report.String knob_spec);
      ("per_thread_t8", Report.Float at8);
      ("per_thread_t16", Report.Float at16);
      ("ratio", Report.Float ratio);
      ("ratio_floor", Report.Float sim_flatness_ratio);
    ]

let sim_section () =
  let module T = Klsm_harness.Throughput.Make (Sim) in
  let module R = Klsm_harness.Registry.Make (Sim) in
  Sim.configure ~seed:42 ~cost:Klsm_backend.Cost_model.default ();
  let spec =
    match R.parse_spec "klsm:256" with Ok s -> s | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = 4;
      prefill = 2_000;
      ops_per_thread = 2_000;
      seed = 42;
    }
  in
  let r = T.run config spec in
  let st = Sim.stats () in
  let ticks = st.Sim.ticks in
  let makespan = Sim.makespan () in
  Printf.printf
    "perf-check sim: %d ticks (budget %d), makespan %.3f, %.0f ops/s-sim\n%!"
    ticks sim_tick_budget makespan
    (r.T.throughput_per_thread *. 4.0);
  if ticks > sim_tick_budget then begin
    Printf.eprintf
      "perf-check FAILED: sim tick count %d exceeds budget %d — the \
       merge/pivot hot paths regressed\n%!"
      ticks sim_tick_budget;
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "sim");
      ("impl", Report.String "klsm(256)");
      ("threads", Report.Int config.T.num_threads);
      ("shards", Report.Int 1);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("ticks", Report.Int ticks);
      ("tick_budget", Report.Int sim_tick_budget);
      ("makespan", Report.Float makespan);
    ]

let sharded_sim_section () =
  let module T = Klsm_harness.Throughput.Make (Sim) in
  let module R = Klsm_harness.Registry.Make (Sim) in
  Sim.configure ~seed:42 ~cost:Klsm_backend.Cost_model.default ();
  let spec =
    match R.parse_spec "klsm-sharded:256:4" with
    | Ok s -> s
    | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = 4;
      prefill = 2_000;
      ops_per_thread = 2_000;
      seed = 42;
    }
  in
  let r = T.run config spec in
  let st = Sim.stats () in
  let ticks = st.Sim.ticks in
  let makespan = Sim.makespan () in
  Printf.printf
    "perf-check sim sharded: %d ticks (budget %d), makespan %.3f, %.0f \
     ops/s-sim\n%!"
    ticks sharded_sim_tick_budget makespan
    (r.T.throughput_per_thread *. 4.0);
  if ticks > sharded_sim_tick_budget then begin
    Printf.eprintf
      "perf-check FAILED: sharded sim tick count %d exceeds budget %d — the \
       striped publish/race hot paths regressed\n%!"
      ticks sharded_sim_tick_budget;
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "sim");
      ("impl", Report.String "klsm-sharded(256,4)");
      ("threads", Report.Int config.T.num_threads);
      ("shards", Report.Int 4);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("ticks", Report.Int ticks);
      ("tick_budget", Report.Int sharded_sim_tick_budget);
      ("makespan", Report.Float makespan);
    ]

let () =
  Obs.set_enabled true;
  let real = real_section () in
  let real_sharded = real_sharded_section () in
  let real_knobs = real_knobs_section () in
  let real_batch = real_batch_section () in
  let real_fibers = real_fibers_section () in
  let sim = sim_section () in
  let sim_sharded = sharded_sim_section () in
  let sim_scaling = sim_scaling_section () in
  let path = "BENCH_throughput.json" in
  Report.write_json ~path
    (Report.Obj
       [
         ("benchmark", Report.String "perf-check");
         ("metric", Report.String "ops_per_sec (real) / ticks (sim)");
         ("real", real);
         ("real_sharded", real_sharded);
         ("real_knobs", real_knobs);
         ("real_batch", real_batch);
         ("real_fibers", real_fibers);
         ("sim", sim);
         ("sim_sharded", sim_sharded);
         ("sim_scaling", sim_scaling);
       ]);
  Printf.printf "wrote %s\nperf-check OK\n%!" path
