(* The `make perf-check` gate (wired into `make check`).

   Two runs of the uniform insert/delete-min workload (the paper's Figure 3
   mix) on the k-LSM:

   - Real backend, 8 threads: reports ops/sec and the block-pool hit rate
     (lib/obs `pool.*` counters; docs/METRICS.md).  Wall-clock throughput
     on shared CI machines is too noisy to gate on, so this half only
     checks the run completes and the pool is actually being exercised.

   - Sim backend, fixed seed and cost model: the simulator's virtual-work
     tick count for this exact merge/pivot workload is DETERMINISTIC, so it
     is an assertable proxy for hot-path work.  The run fails (exit 1) if
     the tick count exceeds [sim_tick_budget], i.e. if a change regresses
     the amount of sequential work the merge/pivot kernels charge.

   Results land in BENCH_throughput.json. *)

module Real = Klsm_backend.Real
module Sim = Klsm_backend.Sim
module Report = Klsm_harness.Report
module Obs = Klsm_obs.Obs

(* Sim ticks for the fixed workload below, measured at 323_603 when this
   gate was introduced (SoA blocks + pooled consolidation); the budget
   leaves ~20% headroom for benign drift.  A regression past it means the
   merge/copy/pivot kernels are charging materially more work per op. *)
let sim_tick_budget = 390_000

(* Same workload through the contention-striped composition
   (klsm-sharded:256:4), measured at 84_757 ticks when the gate was
   introduced — well under the single-stripe figure because the hint
   fast paths skip most snapshot copies and per-stripe arrays are a
   quarter the size.  The budget again leaves ~20% headroom. *)
let sharded_sim_tick_budget = 102_000

let counter_total snapshot name =
  match List.assoc_opt name snapshot.Obs.counters with
  | Some per_thread -> Array.fold_left ( + ) 0 per_thread
  | None -> 0

let real_section () =
  let module T = Klsm_harness.Throughput.Make (Real) in
  let module R = Klsm_harness.Registry.Make (Real) in
  let threads = 8 in
  let spec =
    match R.parse_spec "klsm:256" with Ok s -> s | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = threads;
      prefill = 50_000;
      ops_per_thread = 25_000;
      seed = 42;
    }
  in
  let r = T.run config spec in
  let ops_per_sec = r.T.throughput_per_thread *. float_of_int threads in
  let hits = counter_total r.T.stats "pool.hit" in
  let misses = counter_total r.T.stats "pool.miss" in
  let bytes = counter_total r.T.stats "pool.bytes_avoided" in
  let hit_rate =
    if hits + misses = 0 then 0.0
    else float_of_int hits /. float_of_int (hits + misses)
  in
  Printf.printf "perf-check real: %.0f ops/s (%d threads), pool hit rate %.1f%% (%d hits, %d misses, %d bytes avoided)\n%!"
    ops_per_sec threads (100.0 *. hit_rate) hits misses bytes;
  if hits = 0 then begin
    prerr_endline "perf-check FAILED: block pool never hit (pooling broken?)";
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "real");
      ("impl", Report.String "klsm(256)");
      ("threads", Report.Int threads);
      ("shards", Report.Int 1);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("ops_per_sec", Report.Float ops_per_sec);
      ("throughput_per_thread", Report.Float r.T.throughput_per_thread);
      ("pool_hits", Report.Int hits);
      ("pool_misses", Report.Int misses);
      ("pool_hit_rate", Report.Float hit_rate);
      ("pool_bytes_avoided", Report.Int bytes);
    ]

(* Sharded-vs-unsharded on the Real backend (ISSUE 5 acceptance bar): the
   striped composition must not cost throughput — klsm-sharded:256:4 has
   to land within 5% of klsm:256 on the same 8-thread workload.  Wall
   clock on shared CI is noisy, so both sides take the best of [reps]
   runs before comparing. *)
let real_sharded_section () =
  let module T = Klsm_harness.Throughput.Make (Real) in
  let module R = Klsm_harness.Registry.Make (Real) in
  let threads = 8 and shards = 4 in
  let parse s =
    match R.parse_spec s with Ok s -> s | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = threads;
      prefill = 50_000;
      ops_per_thread = 25_000;
      seed = 42;
    }
  in
  let reps = 3 in
  let best spec =
    let samples = T.run_reps ~reps config spec in
    Array.fold_left
      (fun acc per_thread -> Float.max acc (per_thread *. float_of_int threads))
      0.0 samples
  in
  let unsharded = best (parse "klsm:256") in
  let sharded = best (parse "klsm-sharded:256:4") in
  let floor = 0.95 *. unsharded in
  Printf.printf
    "perf-check real sharded: %.0f ops/s best-of-%d (S=%d, %d threads) vs \
     unsharded %.0f ops/s (floor %.0f)\n%!"
    sharded reps shards threads unsharded floor;
  if sharded < floor then begin
    Printf.eprintf
      "perf-check FAILED: sharded throughput %.0f ops/s fell more than 5%% \
       below unsharded %.0f ops/s\n%!"
      sharded unsharded;
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "real");
      ("impl", Report.String "klsm-sharded(256,4)");
      ("threads", Report.Int threads);
      ("shards", Report.Int shards);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("reps", Report.Int reps);
      ("ops_per_sec_best", Report.Float sharded);
      ("unsharded_ops_per_sec", Report.Float unsharded);
      ("floor_ops_per_sec", Report.Float floor);
    ]

let sim_section () =
  let module T = Klsm_harness.Throughput.Make (Sim) in
  let module R = Klsm_harness.Registry.Make (Sim) in
  Sim.configure ~seed:42 ~cost:Klsm_backend.Cost_model.default ();
  let spec =
    match R.parse_spec "klsm:256" with Ok s -> s | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = 4;
      prefill = 2_000;
      ops_per_thread = 2_000;
      seed = 42;
    }
  in
  let r = T.run config spec in
  let st = Sim.stats () in
  let ticks = st.Sim.ticks in
  let makespan = Sim.makespan () in
  Printf.printf
    "perf-check sim: %d ticks (budget %d), makespan %.3f, %.0f ops/s-sim\n%!"
    ticks sim_tick_budget makespan
    (r.T.throughput_per_thread *. 4.0);
  if ticks > sim_tick_budget then begin
    Printf.eprintf
      "perf-check FAILED: sim tick count %d exceeds budget %d — the \
       merge/pivot hot paths regressed\n%!"
      ticks sim_tick_budget;
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "sim");
      ("impl", Report.String "klsm(256)");
      ("threads", Report.Int config.T.num_threads);
      ("shards", Report.Int 1);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("ticks", Report.Int ticks);
      ("tick_budget", Report.Int sim_tick_budget);
      ("makespan", Report.Float makespan);
    ]

let sharded_sim_section () =
  let module T = Klsm_harness.Throughput.Make (Sim) in
  let module R = Klsm_harness.Registry.Make (Sim) in
  Sim.configure ~seed:42 ~cost:Klsm_backend.Cost_model.default ();
  let spec =
    match R.parse_spec "klsm-sharded:256:4" with
    | Ok s -> s
    | Error m -> failwith m
  in
  let config =
    {
      T.default_config with
      num_threads = 4;
      prefill = 2_000;
      ops_per_thread = 2_000;
      seed = 42;
    }
  in
  let r = T.run config spec in
  let st = Sim.stats () in
  let ticks = st.Sim.ticks in
  let makespan = Sim.makespan () in
  Printf.printf
    "perf-check sim sharded: %d ticks (budget %d), makespan %.3f, %.0f \
     ops/s-sim\n%!"
    ticks sharded_sim_tick_budget makespan
    (r.T.throughput_per_thread *. 4.0);
  if ticks > sharded_sim_tick_budget then begin
    Printf.eprintf
      "perf-check FAILED: sharded sim tick count %d exceeds budget %d — the \
       striped publish/race hot paths regressed\n%!"
      ticks sharded_sim_tick_budget;
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "sim");
      ("impl", Report.String "klsm-sharded(256,4)");
      ("threads", Report.Int config.T.num_threads);
      ("shards", Report.Int 4);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("ticks", Report.Int ticks);
      ("tick_budget", Report.Int sharded_sim_tick_budget);
      ("makespan", Report.Float makespan);
    ]

let () =
  Obs.set_enabled true;
  let real = real_section () in
  let real_sharded = real_sharded_section () in
  let sim = sim_section () in
  let sim_sharded = sharded_sim_section () in
  let path = "BENCH_throughput.json" in
  Report.write_json ~path
    (Report.Obj
       [
         ("benchmark", Report.String "perf-check");
         ("metric", Report.String "ops_per_sec (real) / ticks (sim)");
         ("real", real);
         ("real_sharded", real_sharded);
         ("sim", sim);
         ("sim_sharded", sim_sharded);
       ]);
  Printf.printf "wrote %s\nperf-check OK\n%!" path
