(* Chaos gate: deterministic fault-injection sweep for CI (lib/chaos).

   Examples:
     chaos                      # 64 seeds + the teeth check
     chaos --seeds 32           # the `make chaos-check` gate
     chaos --plan 'dist.insert.pre_size@4#1:crash' --seed 0xc4a07
                                # replay one reported (seed, plan) pair

   Sweeps seeded fault plans — forced CAS failures, mid-protocol stalls,
   fiber crashes — over queue conservation cases and hardened-scheduler
   cases on the simulator, then runs the teeth check (flips Listing 4's
   publication order and demands the suite catch the planted loss).
   Writes BENCH_chaos.json and exits non-zero on any violation, on a
   missed teeth check, or when some fault kind was never exercised.
   docs/CHAOS.md documents the plan grammar and the fault-point sites. *)

module Drive = Klsm_chaos.Drive
module Chaos = Klsm_chaos.Chaos
module Report = Klsm_harness.Report

let run ~seeds ~threads ~per_thread ~roots ~seed ~plan ~out ~no_teeth =
  match plan with
  | Some text -> (
      (* Replay mode: one queue case under an explicit plan. *)
      match Chaos.parse_plan text with
      | Error e ->
          Printf.eprintf "bad plan %S: %s\n" text e;
          exit 2
      | Ok plan ->
          let c =
            Drive.queue_case ~seed ~threads ~per_thread ~k:8 plan
          in
          Printf.printf "case=%s seed=0x%x plan=%s faults=%d/%d/%d\n"
            c.Drive.label c.Drive.seed c.Drive.plan_text c.Drive.cas_fails
            c.Drive.stalls c.Drive.crashes;
          List.iter (fun v -> Printf.printf "violation: %s\n" v)
            c.Drive.violations;
          if c.Drive.violations = [] then print_endline "ok";
          exit (if c.Drive.violations = [] then 0 else 1))
  | None ->
      let cases = Drive.sweep ~seed0:seed ~threads ~per_thread ~roots ~seeds () in
      let teeth_caught, _teeth_cases =
        if no_teeth then (true, []) else Drive.teeth ~plans:6 ()
      in
      let cas_fails, stalls, crashes, violations = Drive.totals cases in
      List.iter
        (fun (c : Drive.case_result) ->
          Printf.printf "%-5s seed=0x%-6x c/s/k=%d/%d/%d %s plan=%s\n"
            c.Drive.label c.Drive.seed c.Drive.cas_fails c.Drive.stalls
            c.Drive.crashes
            (if c.Drive.violations = [] then "ok  " else "FAIL")
            c.Drive.plan_text;
          List.iter (fun v -> Printf.printf "      violation: %s\n" v)
            c.Drive.violations)
        cases;
      Printf.printf
        "%d cases: faults %d cas-fail / %d stall / %d crash; violations %d; \
         teeth %s\n"
        (List.length cases) cas_fails stalls crashes violations
        (if no_teeth then "skipped"
         else if teeth_caught then "caught"
         else "MISSED");
      Report.write_json ~path:out (Drive.to_json ~teeth_caught cases);
      Printf.printf "wrote %s\n%!" out;
      let kind_missing = cas_fails = 0 || stalls = 0 || crashes = 0 in
      if kind_missing then
        Printf.eprintf "FAILURE: some fault kind was never exercised\n";
      if violations > 0 then Printf.eprintf "FAILURE: %d violations\n" violations;
      if not teeth_caught then
        Printf.eprintf
          "FAILURE: teeth check missed the planted publication-order bug\n";
      if violations > 0 || (not teeth_caught) || kind_missing then exit 1

open Cmdliner

let seeds =
  Arg.(
    value & opt int 64
    & info [ "seeds" ] ~doc:"Number of (seed, plan) sweep cases.")

let threads =
  Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Simulated threads per case.")

let per_thread =
  Arg.(
    value & opt int 400
    & info [ "per-thread" ] ~doc:"Inserts per thread in queue cases.")

let roots =
  Arg.(
    value & opt int 60
    & info [ "roots" ] ~doc:"Root tasks per worker in scheduler cases.")

let seed =
  Arg.(
    value & opt int 0xC4A05
    & info [ "seed" ] ~doc:"Base seed (sweep) or case seed (--plan replay).")

let plan =
  Arg.(
    value & opt (some string) None
    & info [ "plan" ]
        ~doc:
          "Replay a single queue case under this fault plan \
           (site[@hit][#tid]:action, comma-separated; docs/CHAOS.md).")

let out =
  Arg.(
    value & opt string "BENCH_chaos.json"
    & info [ "out" ] ~doc:"Output JSON path.")

let no_teeth =
  Arg.(
    value & flag
    & info [ "no-teeth" ] ~doc:"Skip the planted-bug teeth check.")

let cmd =
  let doc = "deterministic fault-injection sweep over the k-LSM stack" in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const (fun seeds threads per_thread roots seed plan out no_teeth ->
          run ~seeds ~threads ~per_thread ~roots ~seed ~plan ~out ~no_teeth)
      $ seeds $ threads $ per_thread $ roots $ seed $ plan $ out $ no_teeth)

let () = exit (Cmd.eval cmd)
