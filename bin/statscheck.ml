(* Schema sanity check for BENCH_stats.json (the `make stats-check` half of
   `make check`).

   Usage: statscheck BENCH_STATS_JSON METRICS_MD

   Validates that
   - the file is well-formed JSON of the shape Obs_report.to_json emits:
     top-level {benchmark, backend, threads, queues[]}, each queue
     {impl, threads, counters[], spans[]}, each counter {name, total,
     per_thread[]} with total = sum(per_thread) and |per_thread| = threads,
     each span {name, count, total_ns, per_thread_count, per_thread_ns};
   - at least one queue emitted at least one counter (an all-empty file
     means observability never got enabled — a plumbing regression);
   - every counter/span name appearing in the file is documented in
     docs/METRICS.md (the reference must never lag the code).

   Deliberately dependency-free: the repository has no JSON library, so a
   ~100-line recursive-descent parser for the JSON subset Report emits
   (only the simple backslash escapes, which Report never writes in names)
   lives here rather than a new dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* ---------------- parser ---------------- *)

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail "at %d: expected %C, got %C" st.pos c d
  | None -> fail "at %d: expected %C, got end of input" st.pos c

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at %d" st.pos
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'u' ->
            (* Report never emits non-ASCII names; keep the escape verbatim
               so the check still terminates on foreign files. *)
            Buffer.add_string buf "\\u"
        | c -> fail "bad escape %s at %d"
                 (match c with Some c -> String.make 1 c | None -> "EOF")
                 st.pos);
        advance st;
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> num_char c | None -> false) do
    advance st
  done;
  let lit = String.sub st.s start (st.pos - start) in
  match float_of_string_opt lit with
  | Some f -> Num f
  | None -> fail "bad number %S at %d" lit start

let parse_literal st lit v =
  if
    st.pos + String.length lit <= String.length st.s
    && String.sub st.s st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    v
  end
  else fail "bad literal at %d" st.pos

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, v) :: acc)
          | Some '}' ->
              advance st;
              Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or } at %d" st.pos
        in
        members []
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] at %d" st.pos
        in
        elements []
      end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st
  | None -> fail "unexpected end of input at %d" st.pos

let parse_json s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing garbage at %d" st.pos;
  v

(* ---------------- schema ---------------- *)

let field obj name =
  match obj with
  | Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> fail "missing field %S" name)
  | _ -> fail "expected an object with field %S" name

let as_str what = function Str s -> s | _ -> fail "%s: expected string" what
let as_arr what = function Arr l -> l | _ -> fail "%s: expected array" what

let as_int what = function
  | Num f when Float.is_integer f -> int_of_float f
  | _ -> fail "%s: expected integer" what

let int_list what v = List.map (as_int what) (as_arr what v)

let check_counter ~threads ~impl c =
  let name = as_str "counter.name" (field c "name") in
  let ctx = Printf.sprintf "%s/%s" impl name in
  let total = as_int (ctx ^ ".total") (field c "total") in
  let per = int_list (ctx ^ ".per_thread") (field c "per_thread") in
  if List.length per <> threads then
    fail "%s: per_thread has %d entries, queue has %d threads" ctx
      (List.length per) threads;
  let sum = List.fold_left ( + ) 0 per in
  if sum <> total then fail "%s: total %d <> sum(per_thread) %d" ctx total sum;
  name

let check_span ~threads ~impl s =
  let name = as_str "span.name" (field s "name") in
  let ctx = Printf.sprintf "%s/%s" impl name in
  let count = as_int (ctx ^ ".count") (field s "count") in
  (match field s "total_ns" with
  | Num _ | Null -> ()  (* Report serializes non-finite floats as null *)
  | _ -> fail "%s.total_ns: expected number" ctx);
  let per = int_list (ctx ^ ".per_thread_count") (field s "per_thread_count") in
  if List.length per <> threads then
    fail "%s: per_thread_count has %d entries, queue has %d threads" ctx
      (List.length per) threads;
  if List.fold_left ( + ) 0 per <> count then
    fail "%s: count <> sum(per_thread_count)" ctx;
  if
    List.length (as_arr (ctx ^ ".per_thread_ns") (field s "per_thread_ns"))
    <> threads
  then fail "%s: per_thread_ns has wrong length" ctx;
  name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let stats_path, metrics_path =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ ->
        prerr_endline "usage: statscheck BENCH_stats.json docs/METRICS.md";
        exit 2
  in
  try
    let root = parse_json (read_file stats_path) in
    ignore (as_str "benchmark" (field root "benchmark"));
    ignore (as_str "backend" (field root "backend"));
    ignore (as_int "threads" (field root "threads"));
    let queues = as_arr "queues" (field root "queues") in
    if queues = [] then fail "queues is empty";
    let metrics_md = read_file metrics_path in
    let documented name =
      (* METRICS.md writes every name in backticks; require exactly that so
         an incidental prose mention does not count as documentation. *)
      let needle = "`" ^ name ^ "`" in
      let nl = String.length needle and ml = String.length metrics_md in
      let rec scan i =
        i + nl <= ml && (String.sub metrics_md i nl = needle || scan (i + 1))
      in
      scan 0
    in
    let total_counters = ref 0 in
    let undocumented = ref [] in
    List.iter
      (fun q ->
        let impl = as_str "queue.impl" (field q "impl") in
        let threads = as_int (impl ^ ".threads") (field q "threads") in
        let counters = as_arr (impl ^ ".counters") (field q "counters") in
        let spans = as_arr (impl ^ ".spans") (field q "spans") in
        let names =
          List.map (check_counter ~threads ~impl) counters
          @ List.map (check_span ~threads ~impl) spans
        in
        total_counters := !total_counters + List.length counters;
        List.iter
          (fun n ->
            if (not (documented n)) && not (List.mem n !undocumented) then
              undocumented := n :: !undocumented)
          names)
      queues;
    if !total_counters = 0 then
      fail "no queue emitted any counter (observability never enabled?)";
    if !undocumented <> [] then
      fail "names missing from %s: %s" metrics_path
        (String.concat ", " (List.sort compare !undocumented));
    Printf.printf "statscheck: %s OK (%d queues, %d counters, all documented)\n"
      stats_path (List.length queues) !total_counters
  with
  | Bad msg ->
      Printf.eprintf "statscheck: %s: %s\n" stats_path msg;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "statscheck: %s\n" msg;
      exit 1
