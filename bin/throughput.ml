(* CLI for the Figure 3 throughput experiment.

   Examples:
     throughput --threads 1,2,3,5,10,20,40,80 --prefill 1000000
     throughput --impl klsm:256 --impl linden --threads 1,4 --mode real
     throughput --csv out.csv *)

let run ~mode ~threads ~prefill ~ops ~key_range ~impls ~reps ~seed ~csv
    ~workload =
  let module Go (B : Klsm_backend.Backend_intf.S) = struct
    module R = Klsm_harness.Registry.Make (B)
    module T = Klsm_harness.Throughput.Make (B)

    let specs =
      match impls with
      | [] -> R.figure3_specs
      | l ->
          List.map
            (fun s ->
              match R.parse_spec s with
              | Ok spec -> spec
              | Error msg -> failwith msg)
            l

    let main () =
      let rows = ref [] in
      let csv_rows = ref [] in
      List.iter
        (fun spec ->
          List.iter
            (fun t ->
              let config =
                {
                  T.default_config with
                  num_threads = t;
                  prefill;
                  ops_per_thread = ops / t;
                  key_range;
                  seed;
                  workload =
                    (match Klsm_harness.Workload.parse workload with
                    | Some w -> w
                    | None -> failwith ("unknown workload " ^ workload));
                }
              in
              let samples = T.run_reps ~reps config spec in
              let s = Klsm_primitives.Stats.summarize samples in
              rows :=
                [
                  R.spec_name spec;
                  string_of_int t;
                  Klsm_harness.Report.human_float s.mean;
                  Klsm_harness.Report.human_float s.ci95;
                ]
                :: !rows;
              csv_rows :=
                [
                  R.spec_name spec;
                  string_of_int t;
                  Printf.sprintf "%.1f" s.mean;
                  Printf.sprintf "%.1f" s.ci95;
                ]
                :: !csv_rows;
              Printf.eprintf "done %s T=%d\n%!" (R.spec_name spec) t)
            threads)
        specs;
      Klsm_harness.Report.section
        (Printf.sprintf
           "Throughput/thread/s (prefill %d, 50-50 mix, backend %s)" prefill
           B.name);
      Klsm_harness.Report.table
        ~header:[ "impl"; "threads"; "thr/thread"; "ci95" ]
        (List.rev !rows);
      match csv with
      | Some path ->
          Klsm_harness.Report.csv ~path
            ~header:[ "impl"; "threads"; "throughput_per_thread"; "ci95" ]
            (List.rev !csv_rows);
          Printf.printf "wrote %s\n" path
      | None -> ()
  end in
  match mode with
  | `Sim ->
      let module M = Go (Klsm_backend.Sim) in
      M.main ()
  | `Real ->
      let module M = Go (Klsm_backend.Real) in
      M.main ()

open Cmdliner

let mode_conv = Arg.enum [ ("sim", `Sim); ("real", `Real) ]

let mode =
  Arg.(value & opt mode_conv `Sim & info [ "mode" ] ~doc:"Backend: sim or real.")

let threads =
  Arg.(
    value
    & opt (list int) [ 1; 2; 3; 5; 10; 20; 40; 80 ]
    & info [ "threads" ] ~doc:"Comma-separated thread counts.")

let prefill =
  Arg.(value & opt int 100_000 & info [ "prefill" ] ~doc:"Prefilled keys (paper: 1e6 and 1e7).")

let ops =
  Arg.(value & opt int 200_000 & info [ "ops" ] ~doc:"Total timed operations per run.")

let key_range =
  Arg.(value & opt int (1 lsl 28) & info [ "key-range" ] ~doc:"Keys are uniform in [0, range).")

let impls =
  Arg.(
    value & opt_all string []
    & info [ "impl" ]
        ~doc:
          "Implementation spec (repeatable): heap, linden, spraylist, \
           multiq:C, klsm:K, dlsm, centralized, hybrid:K.  Default: the \
           full Figure 3 line-up.")

let reps = Arg.(value & opt int 3 & info [ "reps" ] ~doc:"Repetitions (paper: 30).")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Root random seed.")
let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Also write CSV here.")

let workload =
  Arg.(
    value & opt string "uniform"
    & info [ "workload" ] ~doc:"Key distribution: uniform | ascending | descending | clustered.")

let cmd =
  let doc = "k-LSM paper Figure 3: throughput benchmark" in
  Cmd.v
    (Cmd.info "throughput" ~doc)
    Term.(
      const (fun mode threads prefill ops key_range impls reps seed csv
                 workload ->
          run ~mode ~threads ~prefill ~ops ~key_range ~impls ~reps ~seed ~csv
            ~workload)
      $ mode $ threads $ prefill $ ops $ key_range $ impls $ reps $ seed $ csv
      $ workload)

let () = exit (Cmd.eval cmd)
