(* Schedule fuzzer: hunts for conservation violations (lost or duplicated
   items) in any queue implementation by running a mixed workload under
   many random-preemption simulator schedules — dscheck-style, but with
   the repository's own deterministic simulator.

   Examples:
     fuzz --impl klsm:8 --seeds 200
     fuzz --impl dlsm --threads 6 --preempt 0.4 *)

module Sim = Klsm_backend.Sim
module R = Klsm_harness.Registry.Make (Sim)
module Xo = Klsm_primitives.Xoshiro

(* One fuzzed run; returns (duplicates, lost). *)
let run_once ~seed ~num_threads ~per_thread ~preempt spec =
  Sim.configure ~seed ~policy:(Sim.Random_preempt preempt) ();
  let inst = R.make ~seed ~num_threads spec in
  let total = num_threads * per_thread in
  let got = Array.init num_threads (fun _ -> ref []) in
  Sim.parallel_run ~num_threads (fun tid ->
      let h = inst.R.register tid in
      let rng = Xo.create ~seed:(seed + (31 * tid)) in
      for i = 0 to per_thread - 1 do
        let payload = (tid * per_thread) + i in
        h.R.insert (Xo.int rng 100_000) payload;
        if i land 1 = 1 then begin
          match h.R.try_delete_min () with
          | Some (_, v) -> got.(tid) := v :: !(got.(tid))
          | None -> ()
        end
      done;
      let misses = ref 0 in
      while !misses < 300 do
        match h.R.try_delete_min () with
        | Some (_, v) ->
            got.(tid) := v :: !(got.(tid));
            misses := 0
        | None -> incr misses
      done);
  let seen = Array.make total 0 in
  Array.iter (fun l -> List.iter (fun v -> seen.(v) <- seen.(v) + 1) !l) got;
  let dup = ref 0 and lost = ref 0 in
  Array.iter (fun c -> if c > 1 then incr dup else if c = 0 then incr lost) seen;
  (!dup, !lost)

let run ~impls ~threads ~per_thread ~seeds ~seed0 ~preempt =
  let specs =
    match impls with
    | [] -> [ R.Klsm 8; R.Klsm 256; R.Dlsm; R.Linden; R.Spraylist; R.Multiq 2 ]
    | l -> List.map
          (fun s ->
            match R.parse_spec s with
            | Ok spec -> spec
            | Error msg -> failwith msg)
          l
  in
  let failures = ref 0 in
  List.iter
    (fun spec ->
      let bad = ref 0 in
      for seed = seed0 to seed0 + seeds - 1 do
        let dup, lost = run_once ~seed ~num_threads:threads ~per_thread ~preempt spec in
        if dup > 0 || lost > 0 then begin
          incr bad;
          incr failures;
          Printf.printf "VIOLATION %s seed=%d dup=%d lost=%d\n%!"
            (R.spec_name spec) seed dup lost
        end
      done;
      Printf.printf "%-14s %d seeds, %d violations\n%!" (R.spec_name spec)
        seeds !bad)
    specs;
  if !failures > 0 then exit 1

open Cmdliner

let impls = Arg.(value & opt_all string [] & info [ "impl" ] ~doc:"Queue spec (repeatable).")
let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Simulated threads.")
let per_thread = Arg.(value & opt int 300 & info [ "per-thread" ] ~doc:"Unique payloads per thread.")
let seeds = Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of schedules to explore.")
let seed0 = Arg.(value & opt int 1 & info [ "seed0" ] ~doc:"First seed.")
let preempt = Arg.(value & opt float 0.25 & info [ "preempt" ] ~doc:"Preemption probability per atomic access.")

let cmd =
  let doc = "schedule fuzzer: conservation checking under random preemption" in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const (fun impls threads per_thread seeds seed0 preempt ->
          run ~impls ~threads ~per_thread ~seeds ~seed0 ~preempt)
      $ impls $ threads $ per_thread $ seeds $ seed0 $ preempt)

let () = exit (Cmd.eval cmd)
