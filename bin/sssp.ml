(* CLI for the Figure 4 SSSP experiment.

   Examples:
     sssp --sweep threads --k 256                     (Figure 4 left)
     sssp --sweep k --threads-fixed 10                (Figure 4 right)
     sssp --nodes 10000 --prob 0.5 --sweep threads    (paper-scale graph)
     sssp --graph grid --nodes 10000 --sweep threads  (extra workload) *)

let parse_threads_list = [ 1; 2; 3; 5; 10; 20; 40; 80 ]
let paper_k_list = [ 0; 1; 4; 16; 64; 256; 1024; 4096; 16384 ]

let make_graph ~kind ~seed ~n ~p =
  match kind with
  | "er" -> Klsm_graph.Gen.erdos_renyi ~seed ~n ~p ()
  | "grid" ->
      let side = int_of_float (sqrt (float_of_int n)) in
      Klsm_graph.Gen.grid ~seed ~width:side ~height:side ()
  | "rmat" ->
      Klsm_graph.Gen.rmat ~seed ~scale:(Klsm_primitives.Bits.ceil_log2 n) ()
  | k -> failwith ("unknown graph kind " ^ k)

let run ~mode ~sweep ~graph_kind ~n ~p ~k ~threads_fixed ~impls ~seed ~csv =
  let module Go (B : Klsm_backend.Backend_intf.S) = struct
    module R = Klsm_harness.Registry.Make (B)
    module SB = Klsm_harness.Sssp_bench.Make (B)

    let main () =
      let graph = make_graph ~kind:graph_kind ~seed ~n ~p in
      let source = 0 in
      let reference = Klsm_graph.Dijkstra.run graph ~source in
      Printf.eprintf "graph: %d nodes, %d arcs; dijkstra settles %d\n%!"
        (Klsm_graph.Graph.num_nodes graph)
        (Klsm_graph.Graph.num_edges graph)
        reference.Klsm_graph.Dijkstra.settled;
      let rows = ref [] in
      let emit spec t r =
        rows :=
          [
            R.spec_name spec;
            string_of_int t;
            Printf.sprintf "%.2f" (r.SB.wall *. 1e3);
            string_of_int r.SB.iterations;
            Printf.sprintf "%+d" r.SB.extra_iterations;
            string_of_int r.SB.stale;
            (if r.SB.correct then "yes" else "NO");
          ]
          :: !rows
      in
      (match sweep with
      | `Threads ->
          let specs =
            match impls with
            | [] -> [ R.Wimmer_centralized; R.Wimmer_hybrid k; R.Klsm k ]
            | l -> List.map
          (fun s ->
            match R.parse_spec s with
            | Ok spec -> spec
            | Error msg -> failwith msg)
          l
          in
          List.iter
            (fun spec ->
              List.iter
                (fun t ->
                  let r =
                    SB.run ~seed ~graph ~source ~num_threads:t ~reference spec
                  in
                  emit spec t r;
                  Printf.eprintf "done %s T=%d\n%!" (R.spec_name spec) t)
                parse_threads_list)
            specs
      | `K ->
          let t = threads_fixed in
          List.iter
            (fun k ->
              List.iter
                (fun spec ->
                  let r =
                    SB.run ~seed ~graph ~source ~num_threads:t ~reference spec
                  in
                  emit spec t r;
                  Printf.eprintf "done %s k=%d\n%!" (R.spec_name spec) k)
                [ R.Wimmer_centralized; R.Wimmer_hybrid k; R.Klsm k ])
            paper_k_list);
      Klsm_harness.Report.section
        (Printf.sprintf "SSSP (%s graph, n=%d, backend %s)" graph_kind n B.name);
      Klsm_harness.Report.table
        ~header:
          [ "impl"; "threads"; "time(ms)"; "iters"; "extra"; "stale"; "correct" ]
        (List.rev !rows);
      match csv with
      | Some path ->
          Klsm_harness.Report.csv ~path
            ~header:
              [ "impl"; "threads"; "time_ms"; "iters"; "extra"; "stale"; "correct" ]
            (List.rev !rows);
          Printf.printf "wrote %s\n" path
      | None -> ()
  end in
  match mode with
  | `Sim ->
      let module M = Go (Klsm_backend.Sim) in
      M.main ()
  | `Real ->
      let module M = Go (Klsm_backend.Real) in
      M.main ()

open Cmdliner

let mode =
  Arg.(value & opt (enum [ ("sim", `Sim); ("real", `Real) ]) `Sim & info [ "mode" ] ~doc:"Backend.")

let sweep =
  Arg.(
    value
    & opt (enum [ ("threads", `Threads); ("k", `K) ]) `Threads
    & info [ "sweep" ] ~doc:"Sweep threads (Fig 4 left) or k (Fig 4 right).")

let graph_kind =
  Arg.(value & opt string "er" & info [ "graph" ] ~doc:"er | grid | rmat.")

let n = Arg.(value & opt int 1000 & info [ "n"; "nodes" ] ~doc:"Nodes (paper: 10000).")
let p = Arg.(value & opt float 0.5 & info [ "p"; "prob" ] ~doc:"ER edge probability (paper: 0.5).")
let k = Arg.(value & opt int 256 & info [ "k"; "relaxation" ] ~doc:"Relaxation for the threads sweep.")

let threads_fixed =
  Arg.(value & opt int 10 & info [ "threads-fixed" ] ~doc:"Threads for the k sweep (paper: 10).")

let impls =
  Arg.(value & opt_all string [] & info [ "impl" ] ~doc:"Override implementations (repeatable).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Root random seed.")
let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Also write CSV here.")

let cmd =
  let doc = "k-LSM paper Figure 4: parallel SSSP benchmark" in
  Cmd.v (Cmd.info "sssp" ~doc)
    Term.(
      const (fun mode sweep graph_kind n p k threads_fixed impls seed csv ->
          run ~mode ~sweep ~graph_kind ~n ~p ~k ~threads_fixed ~impls ~seed ~csv)
      $ mode $ sweep $ graph_kind $ n $ p $ k $ threads_fixed $ impls $ seed $ csv)

let () = exit (Cmd.eval cmd)
