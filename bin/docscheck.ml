(* Documentation-drift gate (the `make docs-check` half of `make check`).

   Usage: docscheck README_MD METRICS_MD LIB_DIR

   The repository's two documentation contracts that rot silently:

   - README.md carries the canonical queue-spec table.  Every spec form
     the Registry grammar accepts ([Registry.spec_forms] — the single
     source of truth the parser help text is built from) must appear in
     README.md in backticks, and every example attached to a form must
     actually parse.  Adding a grammar form without documenting it, or
     documenting a form the parser no longer accepts, fails the build.

   - docs/METRICS.md documents every observability name.  statscheck
     already cross-checks the names EMITTED by the stats benchmark run;
     this check is stricter at the source level: it scans lib/ for
     [Obs.counter "..."] / [Obs.span "..."] declarations, so a counter
     that exists in code but never fires in the stats workload still has
     to be documented before it lands.

   Names are required in backticks (`like.this`) in both documents, as in
   statscheck, so an incidental prose mention does not count. *)

module Registry = Klsm_harness.Registry.Make (Klsm_backend.Real)

let errors = ref 0

let complain fmt =
  Printf.ksprintf
    (fun m ->
      incr errors;
      Printf.eprintf "docscheck: %s\n" m)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Exact-substring search for `needle` (no regexp; the needles are
   backticked names and never contain metacharacters worth escaping). *)
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  nl > 0 && scan 0

let backticked doc name = contains doc ("`" ^ name ^ "`")

(* ---------------- spec forms vs README ---------------- *)

let check_spec_forms readme =
  List.iter
    (fun (form, example) ->
      if not (backticked readme form) then
        complain "README.md is missing the spec form `%s` (Registry.spec_forms)"
          form;
      match Registry.parse_spec example with
      | Ok _ -> ()
      | Error m ->
          complain "spec_forms example %S for form `%s` does not parse: %s"
            example form m)
    Registry.spec_forms

(* ---------------- Obs declarations vs METRICS.md ---------------- *)

(* Collect the string literal following each [Obs.counter] / [Obs.span]
   token: skip whitespace after the token and, when the next character
   opens a string literal, take it as the name (names never contain
   escapes).  A token followed by anything else — e.g. a computed name —
   is out of scope for a static check and skipped. *)
let obs_names_in source =
  let names = ref [] in
  let grab_after token =
    let tl = String.length token and sl = String.length source in
    let rec from i =
      if i + tl > sl then ()
      else if String.sub source i tl = token then begin
        let j = ref (i + tl) in
        while
          !j < sl
          && match source.[!j] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
        do
          incr j
        done;
        (if !j < sl && source.[!j] = '"' then
           match String.index_from_opt source (!j + 1) '"' with
           | Some close ->
               names := String.sub source (!j + 1) (close - !j - 1) :: !names
           | None -> ());
        from (i + tl)
      end
      else from (i + 1)
    in
    from 0
  in
  grab_after "Obs.counter";
  grab_after "Obs.span";
  !names

let rec ml_files_under dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun entry ->
         let path = Filename.concat dir entry in
         if Sys.is_directory path then ml_files_under path
         else if Filename.check_suffix entry ".ml" then [ path ]
         else [])

let check_obs_names metrics_path lib_dir =
  let metrics = read_file metrics_path in
  let checked = Hashtbl.create 97 in
  let total = ref 0 in
  List.iter
    (fun path ->
      List.iter
        (fun name ->
          if not (Hashtbl.mem checked name) then begin
            Hashtbl.add checked name ();
            incr total;
            if not (backticked metrics name) then
              complain "%s declares `%s` but %s does not document it" path name
                metrics_path
          end)
        (obs_names_in (read_file path)))
    (List.sort compare (ml_files_under lib_dir));
  if !total = 0 then
    complain "no Obs.counter/Obs.span declarations found under %s (scan broken?)"
      lib_dir;
  !total

let () =
  let readme_path, metrics_path, lib_dir =
    match Sys.argv with
    | [| _; a; b; c |] -> (a, b, c)
    | _ ->
        prerr_endline "usage: docscheck README.md docs/METRICS.md lib";
        exit 2
  in
  match
    let readme = read_file readme_path in
    check_spec_forms readme;
    check_obs_names metrics_path lib_dir
  with
  | exception Sys_error msg ->
      Printf.eprintf "docscheck: %s\n" msg;
      exit 1
  | total ->
      if !errors > 0 then begin
        Printf.eprintf "docscheck: %d problem(s)\n" !errors;
        exit 1
      end;
      Printf.printf
        "docscheck: OK (%d spec forms in %s, %d obs names documented in %s)\n"
        (List.length Registry.spec_forms)
        readme_path total metrics_path
