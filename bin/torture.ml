(* The crash-point torture gate (ISSUE 8; docs/CHAOS.md "The torture
   gate").  SQLite-crash-test style: run the whole spill/recover/drain
   lifecycle on the in-memory adversarial filesystem ([Vfs.faulty]) and
   enumerate a deterministic grid of

       crash model x fault site x operation index x fault kind

   single-fault cases, each a plan in the docs/CHAOS.md grammar
   (replayable with --plan).  Every case checks the same contract:

   - {b totality}: [Spill.recover] never raises anything but the injected
     process death ([Vfs.Crashed]); an unreadable journal may refuse the
     {e open} with an explicit error, never an unclassified crash;
   - {b conservation}: every audit balances
     (recovered + quarantined + lost = spilled; [Oracle.store_conservation]);
   - {b no invention}: every drained payload was planted, with its key;
   - {b no resurrection}: no payload is delivered twice — unless a lying
     fsync fired, which voids the durability contract by design
     (docs/CHAOS.md "what a lying fsync voids");
   - {b no silent loss}: items the disk owes (their spill completed) that
     never drain must be on the loss books (lost or quarantined entries
     of the final audit), unless the process died mid-drain (an [R] can
     land with its items unconsumed) or an fsync lied.

   The fault-free baseline must be perfect, and the teeth case (planted
   durable bit rot) must end quarantined, never linked.  Writes
   BENCH_torture.json; exits 1 on any violation. *)

module Vfs = Klsm_store.Vfs
module Store = Klsm_store.Store
module Audit = Klsm_store.Audit
module Chaos = Klsm_chaos.Chaos
module Oracle = Klsm_harness.Oracle
module Report = Klsm_harness.Report
module RealB = Klsm_backend.Real
module Spill = Klsm_store.Spill.Make (RealB)
module K = Klsm_core.Klsm.Make (RealB)
module Bloom = Klsm_primitives.Bloom

let root = "/torture"
let tids = 2
let blocks_per_tid = 3
let items_per = 20
let total = tids * blocks_per_tid * items_per
let key_of v = 7919 * (((v * 31) + 7) mod 997)

(* What the disk owes for each planted payload: [Absent] — its block was
   never offered to the spill tier (nothing durable can exist); [May] —
   the spill was attempted but failed visibly or died (a prefix, or even
   the whole instance, may still have landed); [Must] — the spill
   completed, the cold twin was dropped, the disk is the only copy. *)
type item_state = Absent | May | Must

type outcome = {
  label : string;
  omode : string;
  strict : bool;
  injected : int;
  crashes : int;
  passes : int;
  unopenable : bool;
  drained : int;
  missing : int;
  dups : int;
  quarantined : int;
  lost : int;
  violations : string list;
}

let mk_block pairs =
  let pairs = Array.copy pairs in
  Array.sort (fun (a, _) (b, _) -> compare b a) pairs;
  Spill.Block.of_sorted_array ~filter:Bloom.empty
    (Array.map (fun (k, v) -> Spill.Item.make k v) pairs)

let mode_name = function
  | Vfs.Process_kill -> "kill"
  | Vfs.Power_loss -> "power"

let run_case ~mode ~fsync ~label rules =
  let f = Vfs.faulty ~mode () in
  Vfs.arm f rules;
  let vfs = Vfs.vfs f in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun m -> violations := m :: !violations) fmt
  in
  let crashes = ref 0 and passes = ref 0 in
  let state = Array.make total Absent in
  let got = Array.make total 0 in
  let crashed_in_recovery = ref false in
  let stuck_end = ref false in
  let unopenable = ref false in
  let final : Audit.t option ref = ref None in
  let fsynclied () =
    List.exists
      (fun (_, n) -> String.equal n "fsynclie")
      (Vfs.injected_log f)
  in
  (* ---- plant: per-tid cold instances, every cold twin dropped ---- *)
  let plant () =
    let spill =
      Spill.create ~threshold:0 ~fsync ~vfs ~num_threads:tids ~root ()
    in
    let alive _ = true in
    for tid = 0 to tids - 1 do
      for b = 0 to blocks_per_tid - 1 do
        let base = ((tid * blocks_per_tid) + b) * items_per in
        let pairs =
          Array.init items_per (fun i -> (key_of (base + i), base + i))
        in
        for i = 0 to items_per - 1 do
          state.(base + i) <- May
        done;
        (match Spill.maybe_spill spill ~alive ~tid (mk_block pairs) with
        | _cold ->
            for i = 0 to items_per - 1 do
              state.(base + i) <- Must
            done
        | exception Sys_error _ ->
            (* Failed visibly — but a short write can still land a whole
               journal line, so the instance [May] exist. *)
            ())
      done
    done;
    Spill.close spill
  in
  (match plant () with
  | () -> ()
  | exception Vfs.Crashed _ ->
      incr crashes;
      Vfs.crash f
  | exception Sys_error _ -> ());
  (* ---- recover + drain until steady state ----

     A pass is: open, recover, drain.  The loop ends on the first of
     - a {e clean} steady state: a pass drained nothing new with empty
       loss books and a fully readable journal, or
     - a {e sick} steady state: two consecutive quiet passes with
       identical books (a sticky fault that will never heal — the items
       still owed are journal-live on a permanently sick disk), or
     - a persistently unopenable journal (open_journal's id-reuse
       refusal), or
     - the pass cap, which is a violation: recovery never converged. *)
  let rec passes_loop pass prev create_fails =
    if pass >= 10 then violation "no steady state within 10 recovery passes"
    else begin
      incr passes;
      match
        let spill =
          Spill.create ~threshold:0 ~fsync ~vfs ~num_threads:tids ~root ()
        in
        let q = K.create_with ~k:8 ~num_threads:1 () in
        let h = K.register q 0 in
        let a = Spill.recover spill ~link:(fun b -> K.adopt_block h b) in
        (spill, h, a)
      with
      | exception Vfs.Crashed _ ->
          (* Linking can itself rehydrate (adoption may merge a cold
             block into an existing level), so [R] records land during
             recovery and a crash here strands those items in the dead
             RAM image — same at-least-once window as a drain crash. *)
          incr crashes;
          crashed_in_recovery := true;
          Vfs.crash f;
          passes_loop (pass + 1) prev create_fails
      | exception Sys_error _ when create_fails < 2 ->
          (* [open_journal] refuses over unreadable records (the id-reuse
             hazard); transients heal on a later pass. *)
          passes_loop (pass + 1) prev (create_fails + 1)
      | exception Sys_error _ ->
          (* Persistently unopenable: an explicit, classified terminal
             state on a disk this sick — not a totality violation. *)
          unopenable := true
      | exception e ->
          violation "recovery totality broken: raised %s"
            (Printexc.to_string e)
      | spill, h, a -> (
          List.iter
            (fun v -> violation "conservation: %s" v)
            (Oracle.store_conservation a);
          final := Some a;
          let drained_this = ref 0 in
          let rec drain retries =
            match K.try_delete_min h with
            | Some (dk, v) ->
                if v < 0 || v >= total then
                  violation "drained payload %d was never planted" v
                else begin
                  (match state.(v) with
                  | Absent ->
                      violation
                        "payload %d drained but its block never spilled" v
                  | May | Must -> ());
                  if dk <> key_of v then
                    violation "payload %d drained with key %d, planted %d" v
                      dk (key_of v);
                  got.(v) <- got.(v) + 1;
                  incr drained_this
                end;
                drain 0
            | None -> `Drained
            | exception Vfs.Crashed _ -> `Crashed
            | exception Sys_error _ when retries < 3 -> drain (retries + 1)
            | exception Sys_error _ ->
                (* Persistent read failure mid-drain: no [R] landed for
                   the stuck block, so the next pass re-classifies it
                   (usually to lost). *)
                `Stuck
            | exception e ->
                violation "drain raised %s" (Printexc.to_string e);
                `Drained
          in
          let d = drain 0 in
          if Sys.getenv_opt "TORTURE_DEBUG" <> None then begin
            Printf.eprintf "pass %d: %s; drain=%s(%d); log=[%s]\n%!" pass
              (Audit.summary a)
              (match d with
              | `Drained -> "drained"
              | `Crashed -> "crashed"
              | `Stuck -> "stuck")
              !drained_this
              (String.concat "; "
                 (List.map
                    (fun (s, n) -> s ^ ":" ^ n)
                    (Vfs.injected_log f)));
            let jd = Filename.concat root "journal" in
            List.iter
              (fun name ->
                let p = Filename.concat jd name in
                if vfs.Vfs.file_exists p then
                  Printf.eprintf "  %s:\n%s%!" name
                    (String.concat ""
                       (List.map
                          (fun l -> "    | " ^ l ^ "\n")
                          (String.split_on_char '\n' (vfs.Vfs.read_file p)))))
              [ "epoch.log"; "events.log"; "spill-0.log"; "spill-1.log" ]
          end;
          (try Spill.close spill with _ -> ());
          match d with
          | `Crashed ->
              incr crashes;
              crashed_in_recovery := true;
              Vfs.crash f;
              passes_loop (pass + 1) prev create_fails
          | (`Drained | `Stuck) as d ->
              let quiet = !drained_this = 0 in
              let books = (a.Audit.lost, a.Audit.unreadable_files) in
              if
                d = `Drained && quiet && a.Audit.lost = 0
                && a.Audit.unreadable_files = 0
              then (* clean steady state: nothing owed, books empty *) ()
              else if quiet && prev = Some books then begin
                (* sick steady state: the books stopped moving *)
                if d = `Stuck || a.Audit.unreadable_files > 0 then
                  stuck_end := true
              end
              else
                passes_loop (pass + 1)
                  (if quiet then Some books else None)
                  create_fails)
    end
  in
  passes_loop 0 None 0;
  (* ---- the books ---- *)
  let missing = ref 0 and dups = ref 0 in
  Array.iteri
    (fun v n ->
      (match state.(v) with
      | Must when n = 0 -> incr missing
      | _ -> ());
      if n > 1 then begin
        incr dups;
        if not (fsynclied ()) then
          violation "payload %d delivered %d times (resurrection)" v n
      end)
    got;
  (match !final with
  | Some a ->
      (* Missing items are excused only by an explicit, visible account:
         the loss books (lost + quarantined), a crash boundary crossed
         after recovery began ([R] records strand items in the dead RAM
         image — the documented at-least-once window), a lying fsync
         (which voids every durability promise), a journal the final
         audit itself reports unreadable, or a disk so sick the journal
         never opened / the drain wedged for good. *)
      let slack = a.Audit.lost_items + a.Audit.quarantined_items in
      if
        !missing > slack
        && (not !crashed_in_recovery)
        && (not (fsynclied ()))
        && (not !unopenable)
        && (not !stuck_end)
        && a.Audit.unreadable_files = 0
      then
        violation "%d owed item(s) missing with only %d on the loss books"
          !missing slack
  | None ->
      if not !unopenable then violation "no recovery pass ever completed");
  {
    label;
    omode = mode_name mode;
    strict = fsync;
    injected = Vfs.injected f;
    crashes = !crashes;
    passes = !passes;
    unopenable = !unopenable;
    drained = Array.fold_left ( + ) 0 got;
    missing = !missing;
    dups = !dups;
    quarantined = (match !final with Some a -> a.Audit.quarantined | None -> 0);
    lost = (match !final with Some a -> a.Audit.lost | None -> 0);
    violations = List.rev !violations;
  }

(* The teeth case: plant durable bit rot under a healthy run and demand
   recovery quarantines it — the one failure the gate exists to catch.
   A harness that lets this pass would also let a real resurrection or a
   silently-linked corrupt block through. *)
let run_teeth () =
  let f = Vfs.faulty () in
  let vfs = Vfs.vfs f in
  let violations = ref [] in
  let violation fmt =
    Printf.ksprintf (fun m -> violations := m :: !violations) fmt
  in
  let spill = Spill.create ~threshold:0 ~vfs ~num_threads:1 ~root () in
  let alive _ = true in
  for b = 0 to 1 do
    let base = b * items_per in
    let pairs =
      Array.init items_per (fun i -> (key_of (base + i), base + i))
    in
    ignore (Spill.maybe_spill spill ~alive ~tid:0 (mk_block pairs))
  done;
  Spill.close spill;
  (* Rot one object in place, durably, through the seam. *)
  let s = Store.open_store ~vfs ~root () in
  let digests = ref [] in
  Store.iter_objects s (fun d -> digests := d :: !digests);
  let victim = List.hd (List.sort compare !digests) in
  let path = Store.object_path s victim in
  let bytes = Bytes.of_string (vfs.Vfs.read_file path) in
  let pos = Bytes.length bytes / 3 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
  let h = vfs.Vfs.create path in
  h.Vfs.h_write (Bytes.unsafe_to_string bytes);
  h.Vfs.h_close ();
  let spill2 = Spill.create ~threshold:0 ~vfs ~num_threads:1 ~root () in
  let q = K.create_with ~k:8 ~num_threads:1 () in
  let qh = K.register q 0 in
  let a = Spill.recover spill2 ~link:(fun b -> K.adopt_block qh b) in
  List.iter
    (fun v -> violation "conservation: %s" v)
    (Oracle.store_conservation a);
  if a.Audit.quarantined <> 1 then
    violation "planted bit rot not quarantined (got %d)" a.Audit.quarantined;
  if a.Audit.recovered <> 1 then
    violation "healthy sibling block not recovered (got %d)" a.Audit.recovered;
  if not (Store.quarantined s victim) then
    violation "no evidence under quarantine/ for %s" victim;
  let drained = ref 0 in
  let rec drain () =
    match K.try_delete_min qh with
    | Some (dk, v) ->
        if dk <> key_of v then violation "teeth drain: wrong key for %d" v;
        incr drained;
        drain ()
    | None -> ()
  in
  drain ();
  if !drained <> items_per then
    violation "teeth drained %d items; only the clean block's %d are owed"
      !drained items_per;
  Spill.close spill2;
  {
    label = "teeth:bitrot-quarantined";
    omode = "kill";
    strict = false;
    injected = 0;
    crashes = 0;
    passes = 1;
    unopenable = false;
    drained = !drained;
    missing = 0;
    dups = 0;
    quarantined = a.Audit.quarantined;
    lost = a.Audit.lost;
    violations = List.rev !violations;
  }

(* ---- the grid ---- *)

let grid_kinds =
  [
    ( "vfs.write",
      [ "torn:9"; "shortwrite:7"; "eio"; "enospc"; "enospc:sticky"; "crash" ]
    );
    ("vfs.read", [ "eio"; "eio:sticky"; "bitflip" ]);
    ("vfs.rename", [ "eio"; "droprename"; "crash" ]);
    ("vfs.fsync", [ "fsynclie"; "eio"; "crash" ]);
    ("vfs.fsyncdir", [ "fsynclie"; "eio" ]);
    ("vfs.remove", [ "eio"; "eio:sticky"; "crash" ]);
  ]

let grid_hits = [ 1; 2; 3; 5; 8; 13; 21 ]
let configs = [ (Vfs.Power_loss, true); (Vfs.Process_kill, false) ]

let rules_of_plan text =
  match Chaos.parse_plan text with
  | Ok plan -> Chaos.io_rules plan
  | Error e -> failwith (Printf.sprintf "bad plan %S: %s" text e)

let run_baseline (mode, fsync) =
  let o =
    run_case ~mode ~fsync
      ~label:(Printf.sprintf "baseline:%s" (mode_name mode))
      []
  in
  let extra = ref [] in
  if o.drained <> total then
    extra :=
      Printf.sprintf "baseline drained %d of %d" o.drained total :: !extra;
  if o.lost <> 0 || o.quarantined <> 0 then
    extra :=
      Printf.sprintf "baseline lost %d / quarantined %d" o.lost o.quarantined
      :: !extra;
  { o with violations = o.violations @ List.rev !extra }

let outcome_json o =
  Report.Obj
    [
      ("label", Report.String o.label);
      ("mode", Report.String o.omode);
      ("strict", Report.Bool o.strict);
      ("injected", Report.Int o.injected);
      ("crashes", Report.Int o.crashes);
      ("passes", Report.Int o.passes);
      ("unopenable", Report.Bool o.unopenable);
      ("drained", Report.Int o.drained);
      ("missing", Report.Int o.missing);
      ("dups", Report.Int o.dups);
      ("quarantined", Report.Int o.quarantined);
      ("lost", Report.Int o.lost);
      ( "violations",
        Report.List (List.map (fun v -> Report.String v) o.violations) );
    ]

let run_grid ~out =
  let cases = ref [] in
  List.iter (fun cfg -> cases := run_baseline cfg :: !cases) configs;
  List.iter
    (fun (mode, fsync) ->
      List.iter
        (fun (site, kinds) ->
          List.iter
            (fun kind ->
              List.iter
                (fun hit ->
                  let plan = Printf.sprintf "%s@%d:%s" site hit kind in
                  let label =
                    Printf.sprintf "%s/%s" (mode_name mode) plan
                  in
                  cases :=
                    run_case ~mode ~fsync ~label (rules_of_plan plan)
                    :: !cases)
                grid_hits)
            kinds)
        grid_kinds)
    configs;
  cases := run_teeth () :: !cases;
  let cases = List.rev !cases in
  let violated =
    List.filter (fun o -> o.violations <> []) cases
  in
  let injected = List.fold_left (fun n o -> n + o.injected) 0 cases in
  let crashes = List.fold_left (fun n o -> n + o.crashes) 0 cases in
  Report.write_json ~path:out
    (Report.Obj
       [
         ("benchmark", Report.String "torture");
         ("metric", Report.String "violations across the crash-point grid");
         ("cases", Report.Int (List.length cases));
         ("injected_faults", Report.Int injected);
         ("crash_boundaries", Report.Int crashes);
         ("violating_cases", Report.Int (List.length violated));
         ("results", Report.List (List.map outcome_json cases));
       ]);
  List.iter
    (fun o ->
      List.iter
        (fun v -> Printf.printf "torture VIOLATION [%s]: %s\n" o.label v)
        o.violations)
    violated;
  Printf.printf
    "torture: %d cases, %d faults injected, %d crash boundaries, %d \
     violating case(s)\n\
     wrote %s\n\
     %!"
    (List.length cases) injected crashes (List.length violated) out;
  if violated <> [] then exit 1;
  print_string "torture-check OK\n"

let run_one ~plan ~mode ~strict =
  let mode =
    match mode with
    | "kill" -> Vfs.Process_kill
    | "power" -> Vfs.Power_loss
    | m -> failwith (Printf.sprintf "unknown mode %S (kill|power)" m)
  in
  let o =
    run_case ~mode ~fsync:strict
      ~label:(Printf.sprintf "%s/%s" (mode_name mode) plan)
      (rules_of_plan plan)
  in
  print_string (Report.json_to_string (outcome_json o));
  print_newline ();
  if o.violations <> [] then exit 1

open Cmdliner

let plan =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan" ] ~docv:"PLAN"
        ~doc:
          "Replay one grid case: a docs/CHAOS.md plan over the vfs.* \
           sites (e.g. vfs.write@3:torn:9).  Without this, the full \
           deterministic grid runs.")

let mode =
  Arg.(
    value & opt string "kill"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Crash model for --plan: kill (process) or power (media).")

let strict =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:"Run --plan in strict durability mode (fsync everything).")

let out =
  Arg.(
    value & opt string "BENCH_torture.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Grid report path.")

let cmd =
  let doc = "crash-point torture grid for the k-LSM spill tier" in
  Cmd.v
    (Cmd.info "torture" ~doc)
    Term.(
      const (fun plan mode strict out ->
          match plan with
          | Some plan -> run_one ~plan ~mode ~strict
          | None -> run_grid ~out)
      $ plan $ mode $ strict $ out)

let () = exit (Cmd.eval cmd)
