(* CLI for the elastic task-scheduling runtime (lib/sched).

   Examples:
     sched --queue klsm:256 --threads 8
     sched --queue klsm:256 --queue multiq:2 --queue linden --threads 8
     sched --arrival open:50000 --service exp:64 --capacity 512
     sched --fanout 2 --depth 3 --tasks 50 --mode real
     sched --fibers 8 --tasks 2000 --mode real   # fiber-tree bodies
     sched --stats --queue klsm:256     # + per-thread internal counters

   --fibers F makes every task body fork and join F child fibers (the
   sched:fibers=<F> spec form; lib/sched runs each body as the root fiber
   of a work-stealing deque runtime), so F is the oversubscription knob:
   domains stay bounded by --threads while the in-flight computation count
   scales with tasks * (1 + F).

   Runs the closed/open-loop workload driver over each requested queue and
   reports throughput, queueing delay (mean/p99), dequeue slack — the
   scheduler-level view of relaxation-induced priority inversion — and the
   batching/backpressure counters.  Exits non-zero if any task was lost or
   executed twice. *)

let parse_arrival s =
  match String.lowercase_ascii s with
  | "closed" -> `Closed
  | s when String.length s > 5 && String.sub s 0 5 = "open:" -> (
      match float_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some rate when rate > 0.0 -> `Open rate
      | _ -> failwith ("bad arrival rate in " ^ s))
  | _ -> failwith ("unknown arrival mode " ^ s ^ " (closed | open:RATE)")

let parse_service s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "fixed"; n ] -> `Fixed (int_of_string n)
  | [ "uniform"; n ] -> `Uniform (int_of_string n)
  | [ ("exp" | "exponential"); m ] -> `Exp (float_of_string m)
  | _ -> failwith ("unknown service distribution " ^ s ^ " (fixed:N | uniform:N | exp:MEAN)")

let run ~mode ~queues ~threads ~tasks ~arrival ~service ~workload ~fanout
    ~depth ~fibers ~batch ~dbuf ~margin ~capacity ~seed ~stats ~oversubscribe =
  (* Must happen before any queue is created: lib/obs latches the flag at
     sheet creation. *)
  if stats then Klsm_obs.Obs.set_enabled true;
  (* Domains are not threads: running more workers than cores just
     timeslices whole domains (and their GC) against each other.  On the
     real backend, refuse the silent oversubscription — fibers are the
     oversubscription mechanism now (--fibers). *)
  let threads =
    let recommended = Domain.recommended_domain_count () in
    if mode = `Real && threads > recommended && not oversubscribe then begin
      Printf.eprintf
        "sched: --threads %d exceeds recommended_domain_count (%d); \
         clamping to %d.  Use --fibers to oversubscribe with lightweight \
         fibers instead of domains, or --oversubscribe to force.\n%!"
        threads recommended recommended;
      recommended
    end
    else threads
  in
  let module Go (B : Klsm_backend.Backend_intf.S) = struct
    module CL = Klsm_sched.Closed_loop.Make (B)
    module Report = Klsm_harness.Report

    let specs =
      match queues with
      | [] -> [ CL.Registry.Klsm 256 ]
      | l ->
          List.map
            (fun s ->
              match CL.Registry.parse_spec s with
              | Ok spec -> spec
              | Error msg -> failwith msg)
            l

    (* The fiber knob travels as a canonical spec string and back through
       the Registry parser, so the CLI, bench and docs all agree on the
       sched:fibers=<F> form. *)
    let sched_cfg =
      let spec = Printf.sprintf "sched:fibers=%d" (max 0 fibers) in
      match CL.Registry.parse_sched_spec spec with
      | Ok c -> c
      | Error msg -> failwith msg

    let config =
      {
        CL.num_workers = threads;
        roots_per_worker = tasks;
        mode =
          (match parse_arrival arrival with
          | `Closed -> CL.Closed
          | `Open rate -> CL.Open_poisson rate);
        service =
          (match parse_service service with
          | `Fixed n -> CL.Fixed n
          | `Uniform n -> CL.Uniform_work n
          | `Exp m -> CL.Exponential m);
        priorities =
          (match Klsm_harness.Workload.parse workload with
          | Some w -> w
          | None -> failwith ("unknown workload " ^ workload));
        spawn_fanout = fanout;
        spawn_depth = depth;
        fiber_fanout = sched_cfg.CL.Registry.fibers;
        batch;
        dbuf;
        urgency_margin = margin;
        capacity;
        seed;
        robust = CL.Worker.default_robust;
        drain_after = infinity;
      }

    let main () =
      let failures = ref 0 in
      let measured = ref [] in
      let rows =
        List.map
          (fun spec ->
            let r = CL.run config spec in
            measured := !measured @ [ (spec, r) ];
            if r.CL.lost > 0 || r.CL.double > 0 || r.CL.fiber_lost <> 0 then
              incr failures;
            let m = r.CL.metrics in
            let fmean = function
              | Some (s : Klsm_primitives.Stats.summary) -> s.mean
              | None -> Float.nan
            in
            [
              CL.Registry.spec_name spec;
              string_of_int r.CL.total_tasks;
              Printf.sprintf "%.2f" (r.CL.makespan *. 1e3);
              Report.human_float r.CL.throughput;
              Printf.sprintf "%.3f" (fmean m.Klsm_sched.Metrics.delay *. 1e3);
              Printf.sprintf "%.3f" (m.Klsm_sched.Metrics.delay_p99 *. 1e3);
              Printf.sprintf "%.0f" (fmean m.Klsm_sched.Metrics.slack);
              Printf.sprintf "%.0f" m.Klsm_sched.Metrics.slack_p99;
              string_of_int m.Klsm_sched.Metrics.inversions;
              string_of_int m.Klsm_sched.Metrics.flushes;
              string_of_int m.Klsm_sched.Metrics.rejected;
              string_of_int r.CL.peak_inflight;
              string_of_int m.Klsm_sched.Metrics.fibers;
              string_of_int m.Klsm_sched.Metrics.steals;
              Printf.sprintf "%d/%d" r.CL.lost r.CL.double;
            ])
          specs
      in
      Report.section
        (Printf.sprintf
           "Scheduler: %d workers, %d roots/worker, %s arrivals, %s service, \
            %s, backend %s"
           threads tasks arrival service
           (CL.Registry.sched_spec_name sched_cfg)
           B.name);
      Report.table
        ~header:
          [
            "queue";
            "tasks";
            "makespan ms";
            "tasks/s";
            "delay ms";
            "p99 ms";
            "slack";
            "p99";
            "inversions";
            "flushes";
            "rejected";
            "peak";
            "fibers";
            "steals";
            "lost/dup";
          ]
        rows;
      if stats then
        List.iter
          (fun (spec, (r : CL.result)) ->
            let name = CL.Registry.spec_name spec in
            Klsm_harness.Obs_report.print_table ~name:(name ^ " (queue)")
              r.CL.queue_stats;
            Klsm_harness.Obs_report.print_table ~name:(name ^ " (sched)")
              r.CL.sched_stats)
          !measured;
      if !failures > 0 then begin
        Printf.eprintf
          "FAILURE: tasks lost, double-executed, or fibers leaked\n";
        exit 1
      end
  end in
  match mode with
  | `Sim ->
      let module M = Go (Klsm_backend.Sim) in
      M.main ()
  | `Real ->
      let module M = Go (Klsm_backend.Real) in
      M.main ()

open Cmdliner

let mode_conv = Arg.enum [ ("sim", `Sim); ("real", `Real) ]

let mode =
  Arg.(value & opt mode_conv `Sim & info [ "mode" ] ~doc:"Backend: sim or real.")

let queues =
  Arg.(
    value & opt_all string []
    & info [ "queue" ]
        ~doc:
          "Priority queue spec (repeatable): heap, linden, spraylist, \
           multiq:C, klsm:K, dlsm, centralized, hybrid:K.  Default klsm:256.")

let threads =
  Arg.(value & opt int 8 & info [ "threads" ] ~doc:"Worker threads.")

let tasks =
  Arg.(
    value & opt int 250
    & info [ "tasks" ] ~doc:"Root tasks submitted per worker.")

let arrival =
  Arg.(
    value & opt string "closed"
    & info [ "arrival" ] ~doc:"Arrival process: closed | open:RATE (tasks/s per worker).")

let service =
  Arg.(
    value & opt string "fixed:32"
    & info [ "service" ] ~doc:"Service demand: fixed:N | uniform:N | exp:MEAN (work units).")

let workload =
  Arg.(
    value & opt string "uniform"
    & info [ "workload" ]
        ~doc:"Priority distribution: uniform | ascending | descending | clustered.")

let fanout =
  Arg.(value & opt int 0 & info [ "fanout" ] ~doc:"Children spawned per task.")

let depth =
  Arg.(value & opt int 0 & info [ "depth" ] ~doc:"Spawn recursion depth.")

let fibers =
  Arg.(
    value & opt int 0
    & info [ "fibers" ]
        ~doc:
          "Child fibers forked and joined per task body (the \
           sched:fibers=F spec form).  0 = straight-line bodies.")

let oversubscribe =
  Arg.(
    value & flag
    & info [ "oversubscribe" ]
        ~doc:
          "Allow --threads above Domain.recommended_domain_count on the \
           real backend (normally clamped with a warning; prefer --fibers).")

let batch =
  Arg.(value & opt int 16 & info [ "batch" ] ~doc:"Submitter buffer size.")

let dbuf =
  Arg.(
    value & opt int 0
    & info [ "dbuf" ]
        ~doc:
          "Tasks pulled per shared-queue round trip by each worker (the \
           delete-side counterpart of --batch; pair with a klsm-sharded \
           queue's dbuf=B knob for single-CAS batch claims).  The head \
           task starts inline, the rest seed the worker's deque as \
           steal-ready fibers.  0 = classic one-pop serving.")

let margin =
  Arg.(
    value & opt int 512
    & info [ "margin" ] ~doc:"Urgency margin: flush when an incoming priority undercuts the buffer by more.")

let capacity =
  Arg.(
    value & opt int 4096
    & info [ "capacity" ] ~doc:"Admission bound on in-flight tasks (backpressure).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Root random seed.")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Enable lib/obs observability and print per-thread internal \
           counter tables (queue internals and sched.* scheduler events; \
           see docs/METRICS.md) after the summary table.")

let cmd =
  let doc = "elastic task-scheduling runtime on relaxed priority queues" in
  Cmd.v (Cmd.info "sched" ~doc)
    Term.(
      const (fun mode queues threads tasks arrival service workload fanout
                 depth fibers batch dbuf margin capacity seed stats
                 oversubscribe ->
          run ~mode ~queues ~threads ~tasks ~arrival ~service ~workload
            ~fanout ~depth ~fibers ~batch ~dbuf ~margin ~capacity ~seed ~stats
            ~oversubscribe)
      $ mode $ queues $ threads $ tasks $ arrival $ service $ workload $ fanout
      $ depth $ fibers $ batch $ dbuf $ margin $ capacity $ seed $ stats
      $ oversubscribe)

let () = exit (Cmd.eval cmd)
