(* CLI for crash recovery (docs/STORAGE.md): replay the journal under a
   store root, rebuild every live spilled block instance into a fresh
   queue, and report — or, with --drain, dump the recovered (key, value)
   pairs to stdout in priority order so an operator can salvage or
   re-ingest them.

   Examples:
     recover --root _store/default
     recover --root /var/tmp/klsm --drain > salvaged.tsv *)

module Real = Klsm_backend.Real
module Spill = Klsm_store.Spill.Make (Real)
module Store = Klsm_store.Store
module Audit = Klsm_store.Audit
module K = Klsm_core.Klsm.Make (Real)

let run ~root ~drain ~k =
  if not (Sys.file_exists root && Sys.is_directory root) then begin
    Printf.eprintf "recover: no store root at %s\n%!" root;
    exit 2
  end;
  let spill = Spill.create ~num_threads:1 ~root () in
  let q = K.create_with ~k ~num_threads:1 () in
  let h = K.register q 0 in
  let a = Spill.recover spill ~link:(fun b -> K.adopt_block h b) in
  Printf.eprintf "recover: %s\n%!" (Audit.summary a);
  List.iter
    (fun (e : Audit.entry) ->
      match e.Audit.outcome with
      | Audit.Recovered -> ()
      | Audit.Quarantined why ->
          Printf.eprintf
            "recover: QUARANTINED %s (%s): %s (bytes preserved under \
             quarantine/)\n\
             %!"
            e.Audit.digest e.Audit.iid why
      | Audit.Lost why ->
          Printf.eprintf
            "recover: LOST %s (%s): %s (journal entry kept for a later \
             pass)\n\
             %!"
            e.Audit.digest e.Audit.iid why)
    a.Audit.entries;
  if drain then begin
    let n = ref 0 in
    let rec loop () =
      match K.try_delete_min h with
      | Some (key, value) ->
          incr n;
          Printf.printf "%d\t%d\n" key value;
          loop ()
      | None -> ()
    in
    loop ();
    Printf.eprintf "recover: drained %d item(s)\n%!" !n;
    if !n <> a.Audit.recovered_items then begin
      Printf.eprintf
        "recover: FAILED — drained %d but recovery promised %d\n%!" !n
        a.Audit.recovered_items;
      exit 1
    end
  end;
  Spill.close spill;
  if a.Audit.quarantined > 0 || a.Audit.lost > 0 then exit 1

open Cmdliner

let root =
  Arg.(
    required
    & opt (some string) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Store root to recover (the +store:<dir> of the crashed run).")

let drain =
  Arg.(
    value & flag
    & info [ "drain" ]
        ~doc:
          "After recovery, delete-min every item and print key\\\\tvalue \
           lines to stdout; fails if the drain count disagrees with the \
           journal.")

let k =
  Arg.(
    value & opt int 256
    & info [ "k" ] ~doc:"Relaxation parameter of the rebuilt queue.")

let cmd =
  let doc = "replay a k-LSM store journal and rebuild the spilled items" in
  Cmd.v
    (Cmd.info "recover" ~doc)
    Term.(const (fun root drain k -> run ~root ~drain ~k) $ root $ drain $ k)

let () = exit (Cmd.eval cmd)
