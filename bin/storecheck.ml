(* The `make store-check` gate (wired into `make check`; docs/STORAGE.md).

   Three sections, all on the Real backend:

   - throughput: a descending-key insert/delete-min workload with the
     spill tier enabled must hold >= 90% of the same queue's in-RAM
     throughput, best of three paired reps.  Descending keys are the
     tier's design point: old merged blocks hold the {e largest} keys, so
     the spilled backlog sits far behind the delete-min frontier and stays
     cold (ascending or uniform keys instead put the next minima inside
     the big old blocks, so every spill is promptly rehydrated — a regime
     the Sim/chaos suites cover for correctness, but whose cost is the
     disk's, not the queue's).  The thread count is the host's recommended domain
     count (capped at 8): on an oversubscribed host a wall-clock
     comparison measures scheduler interference around the (milliseconds
     long) fetches, not the tier — the same reason perf-check refuses to
     gate oversubscribed wall clock.  The gate also fails if no block
     spilled — a vacuously fast run proves nothing.

   - recovery: spill hand-built blocks into a fresh root, drop the cold
     twins (the exact durable-but-unlinked state a mid-spill kill
     leaves), reopen, Spill.recover into a 1-thread queue, drain, and
     check every (key, value) pair round-trips byte-identically with
     nothing lost or duplicated.

   - idempotence: a second recovery of the drained root must find
     nothing (the drain's R records were checkpointed durably).

   Results land in BENCH_storecheck.json (`bench store` owns
   BENCH_store.json with the latency/recovery-scaling tables). *)

module Real = Klsm_backend.Real
module Spill = Klsm_store.Spill.Make (Real)
module K = Klsm_core.Klsm.Make (Real)
module Report = Klsm_harness.Report
module Oracle = Klsm_harness.Oracle
module Audit = Klsm_store.Audit
module Obs = Klsm_obs.Obs
module Bloom = Klsm_primitives.Bloom

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let counter_total snapshot name =
  match List.assoc_opt name snapshot.Obs.counters with
  | Some per_thread -> Array.fold_left ( + ) 0 per_thread
  | None -> 0

(* The throughput section runs at the tier's design point: spill only
   the {e large} blocks.  Blocks enter the policy on publish into the
   shared component, whose size the relaxation parameter caps at ~k
   items — with k=4096 the dist-spill publishes weigh 32-64 KiB and a
   32 KiB threshold sends exactly those to disk while every smaller
   publish stays resident.  (At k=256 all publishes are ~4 KiB, so any
   spilling threshold would push {e every} block through disk — a
   memory-pressure regime, not the hot path this gate protects.) *)
let gate_k = 4096
let spill_bytes = 1 lsl 15

let throughput_section ~root =
  let module T = Klsm_harness.Throughput.Make (Real) in
  let module R = Klsm_harness.Registry.Make (Real) in
  let threads = max 1 (min 8 (Domain.recommended_domain_count ())) in
  let parse s =
    match R.parse_spec s with Ok s -> s | Error m -> failwith m
  in
  let ram = parse (Printf.sprintf "klsm:%d" gate_k) in
  let stored sub =
    parse (Printf.sprintf "klsm:%d+spill:%d+store:%s" gate_k spill_bytes sub)
  in
  let config =
    {
      T.default_config with
      num_threads = threads;
      prefill = 50_000;
      ops_per_thread = 200_000 / threads;
      seed = 42;
      workload = Klsm_harness.Workload.Descending (1 lsl 30);
    }
  in
  (* One instrumented run first: prove the policy actually fired. *)
  let probe = T.run config (stored (Filename.concat root "probe")) in
  let spills = counter_total probe.T.stats "store.spill" in
  let rehydrates = counter_total probe.T.stats "store.rehydrate" in
  if spills = 0 then begin
    Printf.eprintf
      "store-check FAILED: no block spilled at threshold %d — the \
       throughput comparison would be vacuous\n%!"
      spill_bytes;
    exit 1
  end;
  (* Paired reps: each rep measures in-RAM and spilling back to back with
     the same seed, and the gate takes the best of the per-rep ratios.
     Two independently-run best-of-3s would compare numbers taken under
     different process states (major-heap shape, page cache) — on a small
     CI box that drift dwarfs the effect being gated.  Each spilling rep
     also gets a fresh store root: reps generate distinct key streams, so
     a shared root would accumulate objects and journal records across
     reps and bill later reps for earlier reps' state. *)
  let reps = 3 in
  let ratio = ref 0.0 and ram_ops = ref 0.0 and stored_ops = ref 0.0 in
  for rep = 0 to reps - 1 do
    let config = { config with T.seed = config.T.seed + (1009 * rep) } in
    let ops spec =
      (T.run config spec).T.throughput_per_thread *. float_of_int threads
    in
    let a = ops ram in
    let b = ops (stored (Filename.concat root (Printf.sprintf "rep%d" rep))) in
    Printf.printf
      "store-check rep %d: %.0f ops/s spilling vs %.0f in-RAM (ratio %.3f)\n%!"
      rep b a (b /. a);
    if b /. a > !ratio then begin
      ratio := b /. a;
      ram_ops := a;
      stored_ops := b
    end
  done;
  let ratio = !ratio and ram_ops = !ram_ops and stored_ops = !stored_ops in
  Printf.printf
    "store-check real: %.0f ops/s spilling (%d spills, %d rehydrates in \
     probe) vs %.0f ops/s in-RAM — best ratio %.3f (floor 0.90, %d threads)\n%!"
    stored_ops spills rehydrates ram_ops ratio threads;
  if ratio < 0.90 then begin
    Printf.eprintf
      "store-check FAILED: spill-enabled throughput %.0f ops/s fell more \
       than 10%% below in-RAM %.0f ops/s\n%!"
      stored_ops ram_ops;
    exit 1
  end;
  Report.Obj
    [
      ("backend", Report.String "real");
      ("impl", Report.String (Printf.sprintf "klsm:%d+spill:%d" gate_k spill_bytes));
      ("threads", Report.Int threads);
      ("prefill", Report.Int config.T.prefill);
      ("ops_per_thread", Report.Int config.T.ops_per_thread);
      ("spill_bytes", Report.Int spill_bytes);
      ("spills", Report.Int spills);
      ("rehydrates", Report.Int rehydrates);
      ("ops_per_sec_best", Report.Float stored_ops);
      ("ram_ops_per_sec_best", Report.Float ram_ops);
      ("ratio", Report.Float ratio);
      ("floor", Report.Float 0.90);
    ]

let recovery_section ~root =
  let alive _ = true in
  let spill = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let mk_block pairs =
    Spill.Block.of_sorted_array ~filter:Bloom.empty
      (Array.map (fun (k, v) -> Spill.Item.make k v) pairs)
  in
  let expected = Hashtbl.create 64 in
  let planted = ref 0 in
  for tid = 0 to 1 do
    for b = 0 to 3 do
      let pairs =
        Array.init 25 (fun i ->
            let v = (tid * 1000) + (b * 100) + i in
            let k = 7919 * ((v * 31) mod 997) in
            Hashtbl.replace expected v k;
            incr planted;
            (k, v))
      in
      Array.sort (fun (a, _) (b, _) -> compare b a) pairs;
      (* Drop the cold twin: durable object + S record, never linked —
         the mid-spill-kill row of the failure matrix. *)
      ignore (Spill.maybe_spill spill ~alive ~tid (mk_block pairs))
    done
  done;
  Spill.close spill;
  let spill2 = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let q = K.create_with ~k:256 ~num_threads:1 () in
  let h = K.register q 0 in
  let r = Spill.recover spill2 ~link:(fun b -> K.adopt_block h b) in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "store-check FAILED: %s\n%!" m;
        exit 1)
      fmt
  in
  if r.Audit.skipped_lines <> 0 then
    fail "%d torn journal lines in a clean shutdown" r.Audit.skipped_lines;
  if r.Audit.quarantined > 0 || r.Audit.lost > 0 then
    fail "%d quarantined + %d lost objects in a clean store" r.Audit.quarantined
      r.Audit.lost;
  (match Oracle.store_conservation r with
  | [] -> ()
  | v :: _ -> fail "audit books do not balance: %s" v);
  if r.Audit.recovered_items <> !planted then
    fail "recovered %d items, planted %d" r.Audit.recovered_items !planted;
  let drained = ref 0 in
  let rec loop () =
    match K.try_delete_min h with
    | Some (dk, v) -> (
        incr drained;
        match Hashtbl.find_opt expected v with
        | None -> fail "payload %d recovered but never planted" v
        | Some k ->
            if k <> dk then
              fail "payload %d came back with key %d, planted %d" v dk k;
            Hashtbl.remove expected v;
            loop ())
    | None -> ()
  in
  loop ();
  if Hashtbl.length expected <> 0 then
    fail "%d planted items lost in recovery" (Hashtbl.length expected);
  Spill.close spill2;
  (* Idempotence: the drain's R records are checkpointed; a third open
     finds nothing live. *)
  let spill3 = Spill.create ~threshold:0 ~num_threads:2 ~root () in
  let q3 = K.create_with ~k:256 ~num_threads:1 () in
  let h3 = K.register q3 0 in
  let r2 = Spill.recover spill3 ~link:(fun b -> K.adopt_block h3 b) in
  if r2.Audit.recovered_items <> 0 then
    fail "drained root recovered %d items on the second pass"
      r2.Audit.recovered_items;
  Spill.close spill3;
  Printf.printf
    "store-check recovery: %d items across %d blocks round-tripped \
     byte-identically; second recovery empty\n%!"
    !planted r.Audit.recovered;
  Report.Obj
    [
      ("planted_items", Report.Int !planted);
      ("recovered_blocks", Report.Int r.Audit.recovered);
      ("recovered_items", Report.Int r.Audit.recovered_items);
      ("drained", Report.Int !drained);
      ("second_recovery_items", Report.Int r2.Audit.recovered_items);
    ]

let () =
  Obs.set_enabled true;
  let tmp = Filename.temp_dir "klsm-storecheck" "" in
  Fun.protect
    ~finally:(fun () -> rm_rf tmp)
    (fun () ->
      let throughput = throughput_section ~root:(Filename.concat tmp "thr") in
      let recovery = recovery_section ~root:(Filename.concat tmp "rec") in
      let path = "BENCH_storecheck.json" in
      Report.write_json ~path
        (Report.Obj
           [
             ("benchmark", Report.String "store-check");
             ("metric", Report.String "ops_per_sec ratio / recovery counts");
             ("throughput", throughput);
             ("recovery", recovery);
           ]);
      Printf.printf "wrote %s\nstore-check OK\n%!" path)
