(* CLI for the rank-error quality experiment (DESIGN.md ablation A1):
   empirical delete-min rank errors per implementation and k, checked
   against the paper's rho = T*k worst-case bound.

   Only the simulator backend is supported: the oracle needs the
   cooperative single-domain execution to observe operations in order. *)

let run ~threads ~prefill ~ops ~impls ~seed ~csv =
  let module R = Klsm_harness.Registry.Make (Klsm_backend.Sim) in
  let module Q = Klsm_harness.Quality.Make (Klsm_backend.Sim) in
  let specs =
    match impls with
    | [] ->
        [
          R.Heap_lock;
          R.Linden;
          R.Multiq 2;
          R.Spraylist;
          R.Klsm 0;
          R.Klsm 4;
          R.Klsm 64;
          R.Klsm 256;
          R.Klsm 4096;
          R.Dlsm;
          R.Wimmer_hybrid 256;
        ]
    | l -> List.map
          (fun s ->
            match R.parse_spec s with
            | Ok spec -> spec
            | Error msg -> failwith msg)
          l
  in
  let rows =
    List.map
      (fun spec ->
        let config =
          { Q.default_config with num_threads = threads; prefill; ops_per_thread = ops / threads; seed }
        in
        let r = Q.run config spec in
        let rec rho_of = function
          | R.Klsm k | R.Wimmer_hybrid k -> string_of_int (threads * k)
          | R.Klsm_sharded { k; shards; adapt; _ } ->
              (* Partitioned bound, DESIGN.md §12: rho <= (T+S) * ceil(k/S),
                 over the allocated stripe count (adapt's upper target —
                 the find-min race always covers the full array).  The
                 buffered-insert knob is pre-charged against the local
                 budget, so it does not enter the bound (§15). *)
              let s = match adapt with Some (_, hi) -> hi | None -> shards in
              string_of_int ((threads + s) * ((k + s - 1) / s))
          | R.Heap_lock | R.Linden | R.Wimmer_centralized -> "0"
          | R.Multiq _ | R.Spraylist | R.Dlsm -> "unbounded"
          | R.Stored (inner, _) ->
              (* Spilling moves payloads, not ordering: same bound. *)
              rho_of inner
        in
        let rho = rho_of spec in
        Printf.eprintf "done %s\n%!" (R.spec_name spec);
        [
          R.spec_name spec;
          string_of_int r.Q.deletes;
          Printf.sprintf "%.2f" r.Q.mean_rank_error;
          Printf.sprintf "%.0f" r.Q.p99_rank_error;
          string_of_int r.Q.max_rank_error;
          rho;
        ])
      specs
  in
  Klsm_harness.Report.section
    (Printf.sprintf "Delete-min rank error (T=%d, prefill=%d)" threads prefill);
  Klsm_harness.Report.table
    ~header:[ "impl"; "deletes"; "mean"; "p99"; "max"; "rho bound" ]
    rows;
  match csv with
  | Some path ->
      Klsm_harness.Report.csv ~path
        ~header:[ "impl"; "deletes"; "mean"; "p99"; "max"; "rho" ]
        rows;
      Printf.printf "wrote %s\n" path
  | None -> ()

open Cmdliner

let threads = Arg.(value & opt int 8 & info [ "threads" ] ~doc:"Simulated threads.")
let prefill = Arg.(value & opt int 20_000 & info [ "prefill" ] ~doc:"Prefilled keys.")
let ops = Arg.(value & opt int 40_000 & info [ "ops" ] ~doc:"Total operations.")
let impls = Arg.(value & opt_all string [] & info [ "impl" ] ~doc:"Implementations (repeatable).")
let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Root seed.")
let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Also write CSV here.")

let cmd =
  let doc = "delete-min rank-error quality measurement" in
  Cmd.v (Cmd.info "quality" ~doc)
    Term.(
      const (fun threads prefill ops impls seed csv ->
          run ~threads ~prefill ~ops ~impls ~seed ~csv)
      $ threads $ prefill $ ops $ impls $ seed $ csv)

let () = exit (Cmd.eval cmd)
