(* Benchmark harness regenerating every figure of the paper's evaluation,
   plus the ablations of DESIGN.md and Bechamel micro-benchmarks.

   Run everything (scaled-down defaults, a few minutes):
       dune exec bench/main.exe
   Run one section:
       dune exec bench/main.exe -- fig3 | fig4a | fig4b | quality | sharded |
                                   batch | sched | stats | chaos | store |
                                   ablation-spill | ablation-bloom |
                                   ablation-cost | ablation-workload |
                                   bnb | micro

   fig3 and quality also emit machine-readable BENCH_throughput.json /
   BENCH_quality.json (raw floats, not the table-formatted strings) into
   the working directory; the stats section emits BENCH_stats.json (the
   lib/obs internal counters of every registry queue; docs/METRICS.md).
   Paper-scale parameters (slow):
       dune exec bench/main.exe -- --full fig3
   Internal counters for any section (lib/obs, ~no overhead):
       dune exec bench/main.exe -- --stats sched

   Figures are reproduced on the simulator backend (DESIGN.md §1.4): the
   shapes — who wins, how curves move with T and k — are the reproduction
   target; absolute ops/s are nominal for the modeled 80-core machine.
   The EXPERIMENTS.md file records paper-vs-measured for each table. *)

module Sim = Klsm_backend.Sim
module R = Klsm_harness.Registry.Make (Sim)
module T = Klsm_harness.Throughput.Make (Sim)
module Q = Klsm_harness.Quality.Make (Sim)
module SB = Klsm_harness.Sssp_bench.Make (Sim)
module Report = Klsm_harness.Report
module Obs = Klsm_obs.Obs
module Obs_report = Klsm_harness.Obs_report

let full = ref false
let paper_threads = [ 1; 2; 3; 5; 10; 20; 40; 80 ]

(* ------------------------------------------------------------------ *)
(* Figure 3: throughput per thread, two prefill sizes                   *)
(* ------------------------------------------------------------------ *)

let fig3_one ~label ~prefill ~ops =
  let threads = if !full then paper_threads else [ 1; 2; 5; 10; 20; 40; 80 ] in
  let header = "impl" :: List.map (fun t -> Printf.sprintf "T=%d" t) threads in
  (* One pass collects the raw numbers; the text table formats them and the
     caller serializes them into BENCH_throughput.json. *)
  let measured =
    List.map
      (fun spec ->
        ( spec,
          List.map
            (fun t ->
              let config =
                {
                  T.default_config with
                  num_threads = t;
                  prefill;
                  ops_per_thread = max 200 (ops / t);
                }
              in
              let r = T.run config spec in
              (t, r.T.throughput_per_thread))
            threads ))
      R.figure3_specs
  in
  let rows =
    List.map
      (fun (spec, points) ->
        R.spec_name spec
        :: List.map (fun (_, thr) -> Report.human_float thr) points)
      measured
  in
  Report.section
    (Printf.sprintf
       "Figure 3 (%s): throughput/thread/s, prefill %d, 50-50 mix (sim)"
       label prefill);
  Report.table ~header rows;
  Report.Obj
    [
      ("label", Report.String label);
      ("prefill", Report.Int prefill);
      ( "series",
        Report.List
          (List.map
             (fun (spec, points) ->
               Report.Obj
                 [
                   ("impl", Report.String (R.spec_name spec));
                   ( "points",
                     Report.List
                       (List.map
                          (fun (t, thr) ->
                            Report.Obj
                              [
                                ("threads", Report.Int t);
                                ("throughput_per_thread", Report.Float thr);
                              ])
                          points) );
                 ])
             measured) );
    ]

let fig3 () =
  let panels =
    if !full then
      [
        fig3_one ~label:"left" ~prefill:1_000_000 ~ops:400_000;
        fig3_one ~label:"right" ~prefill:10_000_000 ~ops:400_000;
      ]
    else
      [
        fig3_one ~label:"left, scaled" ~prefill:10_000 ~ops:40_000;
        fig3_one ~label:"right, scaled" ~prefill:100_000 ~ops:40_000;
      ]
  in
  let path = "BENCH_throughput.json" in
  Report.write_json ~path
    (Report.Obj
       [
         ("benchmark", Report.String "fig3-throughput");
         ("backend", Report.String Sim.name);
         ("metric", Report.String "throughput_per_thread_per_s");
         ("full_scale", Report.Bool !full);
         ("panels", Report.List panels);
       ]);
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Figure 4: SSSP                                                      *)
(* ------------------------------------------------------------------ *)

let sssp_graph () =
  if !full then Klsm_graph.Gen.erdos_renyi ~seed:42 ~n:10_000 ~p:0.5 ()
  else Klsm_graph.Gen.erdos_renyi ~seed:42 ~n:600 ~p:0.5 ()

let fig4a () =
  let graph = sssp_graph () in
  let reference = Klsm_graph.Dijkstra.run graph ~source:0 in
  let threads = paper_threads in
  let header = "impl" :: List.map (fun t -> Printf.sprintf "T=%d" t) threads in
  let rows =
    List.map
      (fun spec ->
        R.spec_name spec
        :: List.map
             (fun t ->
               let r = SB.run ~graph ~source:0 ~num_threads:t ~reference spec in
               if not r.SB.correct then "WRONG"
               else Printf.sprintf "%.2f" (r.SB.wall *. 1e3))
             threads)
      [ R.Wimmer_centralized; R.Wimmer_hybrid 256; R.Klsm 256 ]
  in
  Report.section
    (Printf.sprintf
       "Figure 4 (left): SSSP time (ms, simulated) vs threads, k=256, G(%d, 0.5)"
       (Klsm_graph.Graph.num_nodes graph));
  Report.table ~header rows

let fig4b () =
  let graph = sssp_graph () in
  let reference = Klsm_graph.Dijkstra.run graph ~source:0 in
  let t = 10 in
  let ks = [ 0; 1; 4; 16; 64; 256; 1024; 4096; 16384 ] in
  let header = "impl" :: List.map (fun k -> Printf.sprintf "k=%d" k) ks in
  let time_row name mk =
    name
    :: List.map
         (fun k ->
           let r = SB.run ~graph ~source:0 ~num_threads:t ~reference (mk k) in
           if not r.SB.correct then "WRONG"
           else Printf.sprintf "%.2f" (r.SB.wall *. 1e3))
         ks
  in
  let extra_row name mk =
    (name ^ " +it")
    :: List.map
         (fun k ->
           let r = SB.run ~graph ~source:0 ~num_threads:t ~reference (mk k) in
           Printf.sprintf "%+d" r.SB.extra_iterations)
         ks
  in
  Report.section
    (Printf.sprintf
       "Figure 4 (right): SSSP time (ms, simulated) vs k at %d threads, \
        G(%d, 0.5); '+it' rows = extra iterations vs sequential (paper \
        §6.1: +362 for k-LSM(256), +305 for hybrid(4096), +3965 for \
        k-LSM(16384) on G(10000, 0.5))"
       t
       (Klsm_graph.Graph.num_nodes graph));
  Report.table ~header
    [
      time_row "centralized-k" (fun _ -> R.Wimmer_centralized);
      time_row "hybrid-k" (fun k -> R.Wimmer_hybrid k);
      time_row "k-lsm" (fun k -> R.Klsm k);
      extra_row "hybrid-k" (fun k -> R.Wimmer_hybrid k);
      extra_row "k-lsm" (fun k -> R.Klsm k);
    ]

(* ------------------------------------------------------------------ *)
(* Quality: rank errors (ablation A1)                                  *)
(* ------------------------------------------------------------------ *)

let quality () =
  let t = 8 in
  let specs =
    [
      R.Heap_lock;
      R.Linden;
      R.Multiq 2;
      R.Spraylist;
      R.Klsm 0;
      R.Klsm 4;
      R.Klsm 64;
      R.Klsm 256;
      R.Klsm 4096;
      R.klsm_sharded 256 4;
      R.Dlsm;
      R.Wimmer_hybrid 256;
    ]
  in
  let measured =
    List.map
      (fun spec ->
        let config = { Q.default_config with num_threads = t } in
        (spec, Q.run config spec))
      specs
  in
  let rec rho_of spec =
    match spec with
    | R.Klsm k | R.Wimmer_hybrid k -> Some (t * k)
    | R.Klsm_sharded { k; shards; adapt; _ } ->
        (* Partitioned bound, DESIGN.md §12, over the allocated stripe
           count (adapt's upper target). *)
        let s = match adapt with Some (_, hi) -> hi | None -> shards in
        Some ((t + s) * ((k + s - 1) / s))
    | R.Heap_lock | R.Linden | R.Wimmer_centralized -> Some 0
    | R.Multiq _ | R.Spraylist | R.Dlsm -> None
    | R.Stored (inner, _) -> rho_of inner
  in
  let rows =
    List.map
      (fun (spec, r) ->
        [
          R.spec_name spec;
          string_of_int r.Q.deletes;
          Printf.sprintf "%.2f" r.Q.mean_rank_error;
          Printf.sprintf "%.0f" r.Q.p99_rank_error;
          string_of_int r.Q.max_rank_error;
          (match rho_of spec with
          | Some rho -> string_of_int rho
          | None -> "unbounded");
        ])
      measured
  in
  Report.section
    (Printf.sprintf "Quality: delete-min rank error at T=%d (sim)" t);
  Report.table
    ~header:[ "impl"; "deletes"; "mean"; "p99"; "max"; "rho = T*k" ]
    rows;
  let path = "BENCH_quality.json" in
  Report.write_json ~path
    (Report.Obj
       [
         ("benchmark", Report.String "quality-rank-error");
         ("backend", Report.String Sim.name);
         ("threads", Report.Int t);
         ( "results",
           Report.List
             (List.map
                (fun (spec, r) ->
                  Report.Obj
                    [
                      ("impl", Report.String (R.spec_name spec));
                      ("deletes", Report.Int r.Q.deletes);
                      ("mean_rank_error", Report.Float r.Q.mean_rank_error);
                      ("p99_rank_error", Report.Float r.Q.p99_rank_error);
                      ("max_rank_error", Report.Int r.Q.max_rank_error);
                      ( "rho",
                        match rho_of spec with
                        | Some rho -> Report.Int rho
                        | None -> Report.Null );
                    ])
                measured) );
       ]);
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Sharded: the shard-dimension sweep (contention striping)            *)
(* ------------------------------------------------------------------ *)

(* Throughput and rank error of the contention-striped composition
   (lib/core/sharded_klsm.ml) against the single-stripe k-LSM at the same
   global relaxation budget k = 256: S = 1 is the baseline, S in {2, 4}
   trades snapshot-CAS contention for the extra stripes consulted by
   find_min, and the DESIGN.md §15 contention knobs (stickiness window,
   insertion buffer, adaptive striping) are swept one at a time on top of
   S = 4 so each knob's marginal effect is visible — this table is the
   measured basis of docs/TUNING.md.  The thread axis runs to T = 16
   (oversubscription on small hosts; the simulator charges contention via
   its cost model, so per-thread throughput here measures algorithmic
   scalability, not timesharing).  The rank-error column checks the cost
   side of the trade: the measured max must stay within the partitioned
   bound rho <= (T+S) * ceil(k/S) (DESIGN.md §12). *)
let sharded () =
  let k = 256 in
  let threads = [ 1; 2; 4; 8; 16 ] in
  let specs =
    [
      R.Klsm k;
      R.klsm_sharded k 2;
      R.klsm_sharded k 4;
      R.klsm_sharded ~sticky:8 k 4;
      R.klsm_sharded ~buf:16 k 4;
      R.klsm_sharded ~sticky:8 ~buf:16 k 4;
      R.klsm_sharded ~sticky:8 ~buf:16 ~adapt:(2, 8) k 4;
      R.klsm_sharded ~sticky:16 ~buf:16 (4 * k) 4;
    ]
  in
  let shards_of = function
    | R.Klsm_sharded { shards; adapt; _ } ->
        (match adapt with Some (_, hi) -> hi | None -> shards)
    | _ -> 1
  in
  let measured =
    List.map
      (fun spec ->
        ( spec,
          List.map
            (fun t ->
              let config =
                {
                  T.default_config with
                  num_threads = t;
                  prefill = 8_000;
                  ops_per_thread = max 500 (16_000 / t);
                }
              in
              let r = T.run config spec in
              (t, r.T.throughput_per_thread))
            threads ))
      specs
  in
  let rows =
    List.map
      (fun (spec, points) ->
        R.spec_name spec
        :: List.map (fun (_, thr) -> Report.human_float thr) points)
      measured
  in
  Report.section
    (Printf.sprintf
       "Sharded: throughput/thread/s vs shard count, k=%d unless shown, 50-50 \
        mix (sim)"
       k)
    ;
  Report.table
    ~header:("impl" :: List.map (fun t -> Printf.sprintf "T=%d" t) threads)
    rows;
  (* Rank error at T=8 for the same three configurations. *)
  let t = 8 in
  let qrows =
    List.map
      (fun spec ->
        let r = Q.run { Q.default_config with num_threads = t } spec in
        let s = shards_of spec in
        let kk =
          match spec with
          | R.Klsm k | R.Klsm_sharded { k; _ } -> k
          | _ -> k
        in
        let rho = (t + s) * ((kk + s - 1) / s) in
        [
          R.spec_name spec;
          string_of_int r.Q.deletes;
          Printf.sprintf "%.2f" r.Q.mean_rank_error;
          string_of_int r.Q.max_rank_error;
          string_of_int rho;
        ])
      specs
  in
  Report.section
    (Printf.sprintf "Sharded: rank error at T=%d (sim)" t);
  Report.table
    ~header:[ "impl"; "deletes"; "mean"; "max"; "rho = (T+S)*ceil(k/S)" ]
    qrows

(* ------------------------------------------------------------------ *)
(* Batch: the deletion-batch sweep (DESIGN.md §17)                     *)
(* ------------------------------------------------------------------ *)

(* Throughput and rank error of the batched delete-min (dbuf=B,
   lib/core/sharded_klsm.ml) on the tuned spec as the batch size sweeps
   B in {1, 2, 4, 8, 16}: B = 1 is the dbuf-off control (the classic
   single-pop delete-min), every larger B claims a run of B items with
   one shared CAS (`shared.batch_claim`) and serves up to B - 1 of them
   from the per-handle deletion buffer.  The quality table is the
   measured side of the DESIGN.md §17 trade: the max column must stay
   within the widened bound rho <= (T+S)*ceil(k/S) + T*(B-1), and the
   rank-error-vs-B curve is how an operator prices the slack before
   turning the knob (the measured basis of docs/TUNING.md's dbuf row).
   Emits the sweep into BENCH_throughput.json, fig3-style — run it
   standalone (`dune exec bench/main.exe -- batch`) to keep the file. *)
let batch () =
  let k = 1024 and shards = 4 in
  let t_axis = [ 1; 2; 4; 8; 16 ] in
  let bs = [ 1; 2; 4; 8; 16 ] in
  let spec_of b =
    if b = 1 then R.klsm_sharded ~sticky:16 ~buf:16 k shards
    else R.klsm_sharded ~sticky:16 ~buf:16 ~dbuf:b k shards
  in
  let measured =
    List.map
      (fun b ->
        let spec = spec_of b in
        let points =
          List.map
            (fun t ->
              let config =
                {
                  T.default_config with
                  num_threads = t;
                  prefill = 8_000;
                  ops_per_thread = max 500 (16_000 / t);
                }
              in
              let r = T.run config spec in
              (t, r.T.throughput_per_thread))
            t_axis
        in
        (b, spec, points))
      bs
  in
  let rows =
    List.map
      (fun (_, spec, points) ->
        R.spec_name spec
        :: List.map (fun (_, thr) -> Report.human_float thr) points)
      measured
  in
  Report.section
    (Printf.sprintf
       "Batch: throughput/thread/s vs deletion batch B, k=%d S=%d, 50-50 mix \
        (sim)"
       k shards);
  Report.table
    ~header:("impl" :: List.map (fun t -> Printf.sprintf "T=%d" t) t_axis)
    rows;
  (* Rank error vs B at T = 8: the quality price of the batch. *)
  let t = 8 in
  let qmeasured =
    List.map
      (fun b ->
        let r = Q.run { Q.default_config with num_threads = t } (spec_of b) in
        let rho = ((t + shards) * ((k + shards - 1) / shards)) + (t * (b - 1)) in
        (b, r, rho))
      bs
  in
  let qrows =
    List.map
      (fun (b, r, rho) ->
        [
          R.spec_name (spec_of b);
          string_of_int b;
          string_of_int r.Q.deletes;
          Printf.sprintf "%.2f" r.Q.mean_rank_error;
          Printf.sprintf "%.0f" r.Q.p99_rank_error;
          string_of_int r.Q.max_rank_error;
          string_of_int rho;
        ])
      qmeasured
  in
  Report.section (Printf.sprintf "Batch: rank error vs B at T=%d (sim)" t);
  Report.table
    ~header:
      [
        "impl";
        "B";
        "deletes";
        "mean";
        "p99";
        "max";
        "rho = (T+S)*ceil(k/S) + T*(B-1)";
      ]
    qrows;
  let path = "BENCH_throughput.json" in
  Report.write_json ~path
    (Report.Obj
       [
         ("benchmark", Report.String "batch-sweep");
         ("backend", Report.String Sim.name);
         ("metric", Report.String "throughput_per_thread_per_s");
         ("impl_base", Report.String (R.spec_name (spec_of 1)));
         ( "series",
           Report.List
             (List.map
                (fun (b, spec, points) ->
                  Report.Obj
                    [
                      ("batch", Report.Int b);
                      ("impl", Report.String (R.spec_name spec));
                      ( "points",
                        Report.List
                          (List.map
                             (fun (t, thr) ->
                               Report.Obj
                                 [
                                   ("threads", Report.Int t);
                                   ("throughput_per_thread", Report.Float thr);
                                 ])
                             points) );
                    ])
                measured) );
         ( "quality",
           Report.List
             (List.map
                (fun (b, r, rho) ->
                  Report.Obj
                    [
                      ("batch", Report.Int b);
                      ("threads", Report.Int t);
                      ("deletes", Report.Int r.Q.deletes);
                      ("mean_rank_error", Report.Float r.Q.mean_rank_error);
                      ("p99_rank_error", Report.Float r.Q.p99_rank_error);
                      ("max_rank_error", Report.Int r.Q.max_rank_error);
                      ("rho", Report.Int rho);
                    ])
                qmeasured) );
       ]);
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Scheduler: queues as scheduling backbones (lib/sched)               *)
(* ------------------------------------------------------------------ *)

(* The k-LSM was built to back a task scheduler (Wimmer's Pheet); this
   section measures the queues in that role rather than under the synthetic
   50-50 op mix: workers submit prioritized spawning tasks through the
   batched submitter and execute them, and we report end-to-end scheduler
   metrics — makespan, queueing delay, and dequeue slack (the
   scheduler-visible cost of relaxation). *)
let sched () =
  let module CL = Klsm_sched.Closed_loop.Make (Sim) in
  let module M = Klsm_sched.Metrics in
  let t = 8 in
  let config =
    {
      CL.default_config with
      num_workers = t;
      roots_per_worker = (if !full then 2_000 else 300);
      service = CL.Uniform_work 64;
      spawn_fanout = 2;
      spawn_depth = 2;
    }
  in
  let specs = [ R.Klsm 256; R.Klsm 4; R.Multiq 2; R.Linden; R.Heap_lock ] in
  let measured = ref [] in
  let rows =
    List.map
      (fun spec ->
        let r = CL.run config spec in
        measured := !measured @ [ (spec, r) ];
        if r.CL.lost > 0 || r.CL.double > 0 then
          failwith
            (Printf.sprintf "sched: %s lost=%d double=%d" (R.spec_name spec)
               r.CL.lost r.CL.double);
        let m = r.CL.metrics in
        let delay_mean =
          match m.M.delay with Some s -> s.mean | None -> Float.nan
        in
        [
          R.spec_name spec;
          string_of_int r.CL.total_tasks;
          Printf.sprintf "%.2f" (r.CL.makespan *. 1e3);
          Report.human_float r.CL.throughput;
          Printf.sprintf "%.1f" (delay_mean *. 1e6);
          Printf.sprintf "%.1f" (m.M.delay_p99 *. 1e6);
          string_of_int m.M.inversions;
          string_of_int m.M.flushes;
        ])
      specs
  in
  Report.section
    (Printf.sprintf
       "Scheduler: closed loop, T=%d, fanout 2 depth 2, uniform service \
        (sim; lib/sched)"
       t);
  Report.table
    ~header:
      [
        "queue";
        "tasks";
        "makespan ms";
        "tasks/s";
        "delay us";
        "p99 us";
        "inversions";
        "flushes";
      ]
    rows;
  if Obs.enabled () then
    List.iter
      (fun (spec, (r : CL.result)) ->
        Obs_report.print_table
          ~name:(R.spec_name spec ^ " (queue)")
          r.CL.queue_stats;
        Obs_report.print_table
          ~name:(R.spec_name spec ^ " (sched)")
          r.CL.sched_stats)
      !measured

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* A2: spill threshold.  The §4.3 rule spills local blocks above level
   floor(log2 k) - 1; forcing other levels shows the batching effect on the
   shared hot spot (CAS count) and throughput. *)
let ablation_spill () =
  let t = 10 in
  let k = 256 in
  let levels = [ -1; 0; 2; 4; 6; 8 ] in
  let module K = Klsm_core.Klsm.Make (Sim) in
  let module Xo = Klsm_primitives.Xoshiro in
  let rows =
    List.map
      (fun lvl ->
        let q = K.create_with ~k ~spill_max_level:lvl ~num_threads:t () in
        let handles = Array.make t None in
        Sim.parallel_run ~num_threads:t (fun tid ->
            let h = K.register q tid in
            handles.(tid) <- Some h;
            let rng = Xo.create ~seed:(tid + 7) in
            for _ = 1 to 2_000 do
              K.insert h (Xo.int rng 1_000_000) 0
            done);
        let t0 = Sim.time () in
        Sim.parallel_run ~num_threads:t (fun tid ->
            let h =
              match handles.(tid) with Some h -> h | None -> assert false
            in
            let rng = Xo.create ~seed:(tid + 77) in
            for _ = 1 to 3_000 do
              if Xo.bool rng then K.insert h (Xo.int rng 1_000_000) 0
              else ignore (K.try_delete_min h)
            done);
        let elapsed = Sim.time () -. t0 in
        let st = Sim.stats () in
        [
          string_of_int lvl;
          string_of_int (1 lsl (lvl + 1));
          Report.human_float
            (float_of_int (t * 3_000) /. elapsed /. float_of_int t);
          string_of_int st.Sim.cas;
          string_of_int st.Sim.cas_failures;
        ])
      levels
  in
  Report.section
    (Printf.sprintf
       "Ablation A2: DistLSM spill threshold (k=%d, T=%d; the paper's rule \
        gives max level %d)"
       k t
       (Klsm_primitives.Bits.floor_log2 k - 1));
  Report.table
    ~header:[ "max level"; "local cap"; "thr/thread"; "CAS ops"; "CAS fails" ]
    rows

(* A3: Bloom-filter local ordering on/off. *)
let ablation_bloom () =
  let t = 10 in
  let module K = Klsm_core.Klsm.Make (Sim) in
  let module Xo = Klsm_primitives.Xoshiro in
  let run_one local_ordering =
    let q = K.create_with ~k:256 ~local_ordering ~num_threads:t () in
    let handles = Array.make t None in
    Sim.parallel_run ~num_threads:t (fun tid ->
        let h = K.register q tid in
        handles.(tid) <- Some h;
        let rng = Xo.create ~seed:(tid + 3) in
        for _ = 1 to 3_000 do
          K.insert h (Xo.int rng 1_000_000) 0
        done);
    let t0 = Sim.time () in
    Sim.parallel_run ~num_threads:t (fun tid ->
        let h = match handles.(tid) with Some h -> h | None -> assert false in
        let rng = Xo.create ~seed:(tid + 33) in
        for _ = 1 to 4_000 do
          if Xo.bool rng then K.insert h (Xo.int rng 1_000_000) 0
          else ignore (K.try_delete_min h)
        done);
    let elapsed = Sim.time () -. t0 in
    float_of_int (t * 4_000) /. elapsed /. float_of_int t
  in
  let with_bloom = run_one true in
  let without = run_one false in
  Report.section "Ablation A3: local-ordering Bloom filters (k=256, T=10)";
  Report.table
    ~header:[ "configuration"; "thr/thread" ]
    [
      [ "with local ordering (paper)"; Report.human_float with_bloom ];
      [ "without (ablated)"; Report.human_float without ];
    ]

(* Cost-model sensitivity: rerun a Figure 3 slice under a near-uniform
   memory model to show which rankings depend on coherence costs. *)
let ablation_cost () =
  let slice = [ R.Heap_lock; R.Linden; R.Multiq 2; R.Klsm 256; R.Dlsm ] in
  let run_with cost label =
    Sim.configure ~cost ();
    let rows =
      List.map
        (fun spec ->
          let config =
            {
              T.default_config with
              num_threads = 20;
              prefill = 10_000;
              ops_per_thread = 2_000;
            }
          in
          let r = T.run config spec in
          [ R.spec_name spec; Report.human_float r.T.throughput_per_thread ])
        slice
    in
    Report.section
      (Printf.sprintf "Ablation: cost-model sensitivity — %s (T=20)" label);
    Report.table ~header:[ "impl"; "thr/thread" ] rows
  in
  run_with Klsm_backend.Cost_model.default "default (NUMA-like misses)";
  run_with Klsm_backend.Cost_model.uniform "uniform (cheap coherence)";
  Sim.configure ~cost:Klsm_backend.Cost_model.default ()

(* Workload-distribution ablation: the paper benchmarks uniform keys; the
   relaxed queues behave very differently under monotone (Dijkstra-like)
   and adversarial descending keys. *)
let ablation_workload () =
  let module W = Klsm_harness.Workload in
  let slice = [ R.Heap_lock; R.Multiq 2; R.Klsm 256; R.Dlsm ] in
  let workloads =
    [
      W.Uniform (1 lsl 28);
      W.Ascending 64;
      W.Descending (1 lsl 30);
      W.Clustered { clusters = 16; spread = 256; range = 1 lsl 28 };
    ]
  in
  let rows =
    List.map
      (fun spec ->
        R.spec_name spec
        :: List.map
             (fun w ->
               let config =
                 {
                   T.default_config with
                   num_threads = 10;
                   prefill = 10_000;
                   ops_per_thread = 3_000;
                   workload = w;
                 }
               in
               let r = T.run config spec in
               Report.human_float r.T.throughput_per_thread)
             workloads)
      slice
  in
  Report.section "Ablation: key-distribution sensitivity (T=10, thr/thread)";
  Report.table ~header:("impl" :: List.map W.name workloads) rows

(* Branch-and-bound application scaling: wall time and node expansions of
   the parallel best-first knapsack solver vs thread count and k — the
   application class the paper's introduction motivates. *)
let bnb () =
  let module E = Klsm_bnb.Engine.Make (Sim) in
  let module K = Klsm_bnb.Knapsack in
  let inst = K.random ~seed:9 ~n:30 () in
  let optimum = K.dp_optimum inst in
  let run ~threads ~k =
    Sim.configure ~seed:1 ();
    let s = E.solve ~k ~num_threads:threads (K.problem inst) in
    if K.profit_of_best inst s.E.best <> optimum then
      failwith "bnb: suboptimal result";
    s
  in
  let threads = [ 1; 2; 5; 10; 20; 40 ] in
  Report.section
    "Application: parallel branch-and-bound knapsack (30 items; simulated      time and expansions; k=64)";
  Report.table
    ~header:("metric" :: List.map (fun t -> Printf.sprintf "T=%d" t) threads)
    [
      ("time (ms)"
      :: List.map
           (fun t ->
             Printf.sprintf "%.2f" ((run ~threads:t ~k:64).E.wall *. 1e3))
           threads);
      ("expanded"
      :: List.map
           (fun t -> string_of_int (run ~threads:t ~k:64).E.expanded)
           threads);
    ];
  let ks = [ 0; 4; 64; 1024; 16384 ] in
  Report.section "Branch-and-bound: relaxation k vs extra expansions (T=10)";
  Report.table
    ~header:("metric" :: List.map (fun k -> Printf.sprintf "k=%d" k) ks)
    [
      ("time (ms)"
      :: List.map
           (fun k ->
             Printf.sprintf "%.2f" ((run ~threads:10 ~k).E.wall *. 1e3))
           ks);
      ("expanded"
      :: List.map (fun k -> string_of_int (run ~threads:10 ~k).E.expanded) ks);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (real backend, single thread)             *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let module K = Klsm_core.Klsm.Default in
  let module D = Klsm_core.Dlsm.Default in
  let module L = Klsm_baselines.Linden_pq.Default in
  let module S = Klsm_baselines.Spraylist.Default in
  let module M = Klsm_baselines.Multiq.Default in
  let module H = Klsm_baselines.Locked_heap.Default in
  let module Blk = Klsm_core.Block.Make (Klsm_backend.Real) in
  let module I = Klsm_core.Item.Make (Klsm_backend.Real) in
  let module Xo = Klsm_primitives.Xoshiro in
  (* Steady-state "mixed op": one insert + one delete per run, so the
     structure keeps its prefill size. *)
  let mixed_pair name insert delete =
    Test.make ~name
      (Staged.stage (fun () ->
           insert ();
           delete ()))
  in
  let rng = Xo.create ~seed:5 in
  let prefill insert =
    for _ = 1 to 10_000 do
      insert (Xo.int rng 1_000_000)
    done
  in
  let klsm_test k =
    let q = K.create_with ~k ~num_threads:1 () in
    let h = K.register q 0 in
    prefill (fun key -> K.insert h key 0);
    mixed_pair
      (Printf.sprintf "klsm(%d)" k)
      (fun () -> K.insert h (Xo.int rng 1_000_000) 0)
      (fun () -> ignore (K.try_delete_min h))
  in
  let dlsm_test =
    let q = D.create_with ~num_threads:1 () in
    let h = D.register q 0 in
    prefill (fun key -> D.insert h key 0);
    mixed_pair "dlsm"
      (fun () -> D.insert h (Xo.int rng 1_000_000) 0)
      (fun () -> ignore (D.try_delete_min h))
  in
  let linden_test =
    let q = L.create_with ~dummy:0 ~num_threads:1 () in
    let h = L.register q 0 in
    prefill (fun key -> L.insert h key 0);
    mixed_pair "linden"
      (fun () -> L.insert h (Xo.int rng 1_000_000) 0)
      (fun () -> ignore (L.try_delete_min h))
  in
  let spray_test =
    let q = S.create_with ~dummy:0 ~num_threads:1 () in
    let h = S.register q 0 in
    prefill (fun key -> S.insert h key 0);
    mixed_pair "spraylist"
      (fun () -> S.insert h (Xo.int rng 1_000_000) 0)
      (fun () -> ignore (S.try_delete_min h))
  in
  let multiq_test =
    let q = M.create_with ~num_threads:1 () in
    let h = M.register q 0 in
    prefill (fun key -> M.insert h key 0);
    mixed_pair "multiq"
      (fun () -> M.insert h (Xo.int rng 1_000_000) 0)
      (fun () -> ignore (M.try_delete_min h))
  in
  let heap_test =
    let q = H.create ~num_threads:1 () in
    let h = H.register q 0 in
    prefill (fun key -> H.insert h key 0);
    mixed_pair "heap+lock"
      (fun () -> H.insert h (Xo.int rng 1_000_000) 0)
      (fun () -> ignore (H.try_delete_min h))
  in
  let merge_test =
    (* Cost of merging two 256-item blocks — the LSM's unit of work. *)
    let mk () =
      let b = Blk.create_with_exemplar 8 (I.make 0 0) in
      for i = 255 downto 0 do
        Blk.append ~alive:(fun _ -> true) b (I.make (i * 2) 0)
      done;
      b
    in
    let b1 = mk () and b2 = mk () in
    Test.make ~name:"block-merge-512"
      (Staged.stage (fun () ->
           ignore (Blk.merge ~alive:(fun it -> not (I.is_taken it)) b1 b2)))
  in
  let tests =
    [
      heap_test;
      linden_test;
      spray_test;
      multiq_test;
      klsm_test 0;
      klsm_test 256;
      klsm_test 4096;
      dlsm_test;
      merge_test;
    ]
  in
  Report.section
    "Micro-benchmarks (real backend, 1 thread, ns per insert+delete pair)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some [ x ] -> Printf.sprintf "%.1f" x
            | _ -> "?"
          in
          rows := [ name; est ] :: !rows)
        results)
    tests;
  Report.table ~header:[ "operation"; "ns/op-pair" ] (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Internal counters: one Figure 3 style run per registry queue, with    *)
(* lib/obs enabled, dumped as per-thread tables and BENCH_stats.json     *)
(* ------------------------------------------------------------------ *)

(* The observability companion of fig3 (docs/METRICS.md): the same mixed
   workload, but the reported quantities are the queues' internal events —
   CAS retries, consolidations, spills, spy traffic — rather than external
   throughput.  Observability is force-enabled for this section regardless
   of --stats (that is the section's whole point) and restored after. *)
(* Imbalanced producer/consumer fiber scenario (lib/sched; DESIGN.md
   section 16): worker 0 is the sole producer of fibered roots, so the
   consumers' deques start empty and the only fibers they ever run are
   pulled through the shared queue or STOLEN from a peer's deque.  The
   whole point of the Chase–Lev layer is that `steal.success` comes out
   positive here — asserted below, and written into BENCH_stats.json as a
   statscheck-validated queue entry so the record gates it too. *)
let sched_fibers_imbalanced ~workers ~roots ~fanout ~seed =
  let module W = Klsm_sched.Worker.Make (Sim) in
  let module M = Klsm_sched.Metrics in
  Sim.configure ~seed ~policy:Sim.Fair ();
  let sheet = Obs.create_sheet ~now:Sim.time ~num_threads:workers () in
  let instance = R.make ~seed ~num_threads:workers (R.Klsm 8) in
  let pool = W.create_pool ~max_tasks:roots ~num_workers:workers () in
  let metrics = M.create ~num_workers:workers in
  Sim.parallel_run ~num_threads:workers (fun tid ->
      let h = instance.R.register tid in
      let sub =
        W.Submitter.create
          ~cfg:{ W.Submitter.batch = 1; urgency_margin = 1; capacity = max_int }
          ~inflight:pool.W.inflight ~enqueue_batch:h.R.insert_batch ()
      in
      let ctx =
        W.make_ctx ~obs:(Obs.handle sheet ~tid) ~pool ~tid ~sub
          ~pop:h.R.try_delete_min ~metrics:metrics.(tid) ()
      in
      let remaining = ref (if tid = 0 then roots else 0) in
      let arrivals () =
        if !remaining = 0 then `Done
        else begin
          decr remaining;
          let priority = !remaining in
          `Submit
            ( priority,
              W.Task.Body
                (fun api ->
                  (* A wide fiber tree per root: odd children yield once so
                     parked fibers cross the requeue/steal surface. *)
                  let kids =
                    List.init fanout (fun i ->
                        api.W.Task.fork (fun () ->
                            if i land 1 = 1 then api.W.Task.yield ();
                            Sim.tick 64;
                            i))
                  in
                  List.iteri
                    (fun i k ->
                      if api.W.Task.await k <> i then
                        failwith "bench: fiber joined to the wrong value")
                    kids) )
        end
      in
      W.run ctx ~arrivals);
  let summary = M.summarize metrics in
  if W.completed_count pool <> roots then
    failwith "bench: imbalanced fiber run lost tasks";
  if summary.M.fibers <> summary.M.fibers_completed then
    failwith "bench: imbalanced fiber run lost fibers";
  if summary.M.steals = 0 then
    failwith "bench: imbalanced fiber run recorded no successful steals";
  (summary, Obs.snapshot sheet)

let stats_section () =
  let was_enabled = Obs.enabled () in
  Obs.set_enabled true;
  let t = if !full then 20 else 8 in
  let config =
    {
      T.default_config with
      num_threads = t;
      prefill = (if !full then 100_000 else 10_000);
      ops_per_thread = (if !full then 40_000 else 4_000);
    }
  in
  (* Every queue the registry knows: the Figure 3 line-up plus the Figure 4
     Wimmer variants. *)
  let specs =
    R.figure3_specs
    @ List.filter (fun s -> not (List.mem s R.figure3_specs)) R.figure4_specs
    @ [ R.klsm_sharded 256 4 ]
  in
  let measured = List.map (fun spec -> (spec, T.run config spec)) specs in
  let sched_workers = 4 in
  let fiber_summary, fiber_stats =
    sched_fibers_imbalanced ~workers:sched_workers ~roots:24 ~fanout:8 ~seed:11
  in
  Report.section
    (Printf.sprintf
       "Internal counters (lib/obs): 50-50 mix, T=%d, prefill %d (sim); see \
        docs/METRICS.md"
       t config.T.prefill);
  List.iter
    (fun (spec, (r : T.result)) ->
      Obs_report.print_table ~name:(R.spec_name spec) r.T.stats)
    measured;
  Obs_report.print_table ~name:"sched fibers imbalanced (klsm(8), 1 producer)"
    fiber_stats;
  Printf.printf
    "sched fibers imbalanced: %d fibers, %d/%d steals landed (hit rate \
     %.2f)\n%!"
    fiber_summary.Klsm_sched.Metrics.fibers
    fiber_summary.Klsm_sched.Metrics.steals
    fiber_summary.Klsm_sched.Metrics.steal_attempts
    (float_of_int fiber_summary.Klsm_sched.Metrics.steals
    /. float_of_int (max 1 fiber_summary.Klsm_sched.Metrics.steal_attempts));
  let path = "BENCH_stats.json" in
  Report.write_json ~path
    (Report.Obj
       [
         ("benchmark", Report.String "internal-stats");
         ("backend", Report.String Sim.name);
         ("threads", Report.Int t);
         ("full_scale", Report.Bool !full);
         ( "queues",
           Report.List
             (List.map
                (fun (spec, (r : T.result)) ->
                  match Obs_report.to_json r.T.stats with
                  | Report.Obj fields ->
                      Report.Obj
                        (("impl", Report.String (R.spec_name spec)) :: fields)
                  | other -> other)
                measured
             @ [
                 (* The scheduler's own counters under the imbalanced
                    producer/consumer fiber run: steal.success > 0 is
                    asserted before this entry is written. *)
                 (match Obs_report.to_json fiber_stats with
                 | Report.Obj fields ->
                     Report.Obj
                       (("impl", Report.String "sched-fibers-imbalanced")
                       :: fields)
                 | other -> other);
               ]) );
       ]);
  Printf.printf "wrote %s\n%!" path;
  Obs.set_enabled was_enabled

(* The chaos suite (lib/chaos; docs/CHAOS.md): seeded fault plans — forced
   CAS failures, mid-protocol stalls, fiber crashes — swept over queue
   conservation cases and hardened-scheduler cases, then the teeth check
   (a deliberately broken publication order that the suite must catch).
   Exits through the JSON only; bin/chaos.exe is the gating CLI. *)
let chaos_section () =
  let module Drive = Klsm_chaos.Drive in
  let seeds = if !full then 64 else 16 in
  let cases = Drive.sweep ~seeds () in
  let teeth_caught, teeth_cases = Drive.teeth ~plans:6 () in
  let cas_fails, stalls, crashes, violations = Drive.totals cases in
  Report.section
    (Printf.sprintf "Chaos: %d fault plans + %d teeth plans (sim); see \
                     docs/CHAOS.md"
       seeds (List.length teeth_cases));
  Report.table
    ~header:[ "case"; "seed"; "plan"; "cas/stall/crash"; "violations" ]
    (List.map
       (fun (c : Drive.case_result) ->
         [
           c.Drive.label;
           Printf.sprintf "0x%x" c.Drive.seed;
           c.Drive.plan_text;
           Printf.sprintf "%d/%d/%d" c.Drive.cas_fails c.Drive.stalls
             c.Drive.crashes;
           (match c.Drive.violations with
           | [] -> "-"
           | l -> String.concat "; " l);
         ])
       cases);
  Printf.printf
    "faults injected: %d cas-fail, %d stall, %d crash; violations: %d; \
     teeth caught: %b\n"
    cas_fails stalls crashes violations teeth_caught;
  let path = "BENCH_chaos.json" in
  Report.write_json ~path (Drive.to_json ~teeth_caught cases);
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Store: the spill tier measured honestly (lib/store; docs/STORAGE.md) *)
(* ------------------------------------------------------------------ *)

(* Unlike the figures, this section runs on the {e Real} backend:
   spill/rehydrate latency is SHA-256 + disk time, which the simulator's
   cost model deliberately does not model.  Absolute numbers are
   per-host; the shapes — cost per spill cycle vs threshold, the memo hit
   rate, recovery time scaling linearly in recovered items — are the
   reproduction target.  Gating lives in `make store-check`
   (bin/storecheck.ml); this section only reports. *)
let store_section () =
  let module Real = Klsm_backend.Real in
  let module RR = Klsm_harness.Registry.Make (Real) in
  let module RT = Klsm_harness.Throughput.Make (Real) in
  let module Spill = Klsm_store.Spill.Make (Real) in
  let module K = Klsm_core.Klsm.Make (Real) in
  let module Bloom = Klsm_primitives.Bloom in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let was_enabled = Obs.enabled () in
  Obs.set_enabled true;
  let tmp = Filename.temp_dir "klsm-bench-store" "" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf tmp;
      Obs.set_enabled was_enabled)
    (fun () ->
      let k = 4096 in
      let config =
        {
          RT.default_config with
          num_threads = 1;
          prefill = 50_000;
          ops_per_thread = 200_000;
          seed = 42;
          workload = Klsm_harness.Workload.Descending (1 lsl 30);
        }
      in
      let counter stats name =
        match List.assoc_opt name stats.Obs.counters with
        | Some a -> Array.fold_left ( + ) 0 a
        | None -> 0
      in
      let span_mean_us stats name =
        match List.assoc_opt name stats.Obs.spans with
        | Some (d : Obs.span_data) ->
            let n = Array.fold_left ( + ) 0 d.Obs.count in
            if n = 0 then Float.nan
            else Array.fold_left ( +. ) 0.0 d.Obs.ns /. float_of_int n /. 1e3
        | None -> Float.nan
      in
      (* Threshold sweep: from "spill every publish" up to "spill nothing"
         (in-RAM baseline).  The memo hit rate counts selections answered
         by an already-rehydrated block: rehydrate_memo /
         (rehydrate + rehydrate_memo). *)
      let thresholds = [ Some 16384; Some 32768; Some 131072; None ] in
      let sweep =
        List.mapi
          (fun i threshold ->
            let spec_s =
              match threshold with
              | Some b ->
                  Printf.sprintf "klsm:%d+spill:%d+store:%s" k b
                    (Filename.concat tmp (Printf.sprintf "sweep%d" i))
              | None -> Printf.sprintf "klsm:%d" k
            in
            let spec =
              match RR.parse_spec spec_s with
              | Ok s -> s
              | Error m -> failwith m
            in
            let r = RT.run config spec in
            let spills = counter r.RT.stats "store.spill" in
            let cold = counter r.RT.stats "store.rehydrate" in
            let memo = counter r.RT.stats "store.rehydrate_memo" in
            let hit_rate =
              if cold + memo = 0 then Float.nan
              else float_of_int memo /. float_of_int (cold + memo)
            in
            (threshold, r, spills, cold, memo, hit_rate))
          thresholds
      in
      Report.section
        (Printf.sprintf
           "Store: spill-threshold sweep, klsm:%d, descending 50-50 mix, \
            T=1 (real)"
           k);
      Report.table
        ~header:
          [
            "threshold";
            "ops/s";
            "spills";
            "cold fetches";
            "memo hits";
            "hit rate";
            "spill us";
            "rehydrate us";
          ]
        (List.map
           (fun (threshold, (r : RT.result), spills, cold, memo, hit_rate) ->
             [
               (match threshold with
               | Some b -> Printf.sprintf "%dB" b
               | None -> "off (in-RAM)");
               Report.human_float r.RT.throughput_per_thread;
               string_of_int spills;
               string_of_int cold;
               string_of_int memo;
               (if Float.is_nan hit_rate then "-"
                else Printf.sprintf "%.2f" hit_rate);
               (let v = span_mean_us r.RT.stats "store.spill" in
                if Float.is_nan v then "-" else Printf.sprintf "%.0f" v);
               (let v = span_mean_us r.RT.stats "store.rehydrate" in
                if Float.is_nan v then "-" else Printf.sprintf "%.0f" v);
             ])
           sweep);
      (* Recovery time vs recovered queue size: plant blocks whose cold
         twins were dropped (the mid-spill-kill state), reopen, and time
         [Spill.recover] rebuilding a 1-thread queue. *)
      let alive _ = true in
      let recovery =
        List.map
          (fun n ->
            let root = Filename.concat tmp (Printf.sprintf "rec%d" n) in
            let spill = Spill.create ~threshold:0 ~num_threads:1 ~root () in
            let block_items = 256 in
            let blocks = (n + block_items - 1) / block_items in
            for b = 0 to blocks - 1 do
              let base = b * block_items in
              let count = min block_items (n - base) in
              let pairs =
                Array.init count (fun i ->
                    let v = base + i in
                    (7919 * ((v * 31) mod 997), v))
              in
              Array.sort (fun (a, _) (b, _) -> compare b a) pairs;
              let blk =
                Spill.Block.of_sorted_array ~filter:Bloom.empty
                  (Array.map (fun (key, v) -> Spill.Item.make key v) pairs)
              in
              ignore (Spill.maybe_spill spill ~alive ~tid:0 blk)
            done;
            Spill.close spill;
            let spill2 = Spill.create ~threshold:0 ~num_threads:1 ~root () in
            let q = K.create_with ~k:256 ~num_threads:1 () in
            let h = K.register q 0 in
            let t0 = Real.time () in
            let r = Spill.recover spill2 ~link:(fun b -> K.adopt_block h b) in
            let dt = Real.time () -. t0 in
            Spill.close spill2;
            if r.Klsm_store.Audit.recovered_items <> n then
              failwith
                (Printf.sprintf "bench store: recovered %d of %d items"
                   r.Klsm_store.Audit.recovered_items n);
            (n, r.Klsm_store.Audit.recovered, dt))
          [ 1_000; 10_000; 50_000 ]
      in
      Report.section "Store: recovery time vs queue size (real)";
      Report.table
        ~header:[ "items"; "blocks"; "recover ms"; "items/s" ]
        (List.map
           (fun (n, blocks, dt) ->
             [
               string_of_int n;
               string_of_int blocks;
               Printf.sprintf "%.1f" (dt *. 1e3);
               Report.human_float (float_of_int n /. dt);
             ])
           recovery);
      let path = "BENCH_store.json" in
      Report.write_json ~path
        (Report.Obj
           [
             ("benchmark", Report.String "store");
             ("backend", Report.String "real");
             ( "sweep",
               Report.List
                 (List.map
                    (fun ( threshold,
                           (r : RT.result),
                           spills,
                           cold,
                           memo,
                           hit_rate ) ->
                      Report.Obj
                        [
                          ( "threshold_bytes",
                            match threshold with
                            | Some b -> Report.Int b
                            | None -> Report.Null );
                          ( "ops_per_sec",
                            Report.Float r.RT.throughput_per_thread );
                          ("spills", Report.Int spills);
                          ("cold_fetches", Report.Int cold);
                          ("memo_hits", Report.Int memo);
                          ( "memo_hit_rate",
                            if Float.is_nan hit_rate then Report.Null
                            else Report.Float hit_rate );
                          ( "spill_mean_us",
                            let v = span_mean_us r.RT.stats "store.spill" in
                            if Float.is_nan v then Report.Null
                            else Report.Float v );
                          ( "rehydrate_mean_us",
                            let v =
                              span_mean_us r.RT.stats "store.rehydrate"
                            in
                            if Float.is_nan v then Report.Null
                            else Report.Float v );
                        ])
                    sweep) );
             ( "recovery",
               Report.List
                 (List.map
                    (fun (n, blocks, dt) ->
                      Report.Obj
                        [
                          ("items", Report.Int n);
                          ("blocks", Report.Int blocks);
                          ("seconds", Report.Float dt);
                        ])
                    recovery) );
           ]);
      Printf.printf "wrote %s\n%!" path)

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("fig3", fig3);
    ("fig4a", fig4a);
    ("fig4b", fig4b);
    ("quality", quality);
    ("sharded", sharded);
    ("batch", batch);
    ("sched", sched);
    ("stats", stats_section);
    ("chaos", chaos_section);
    ("store", store_section);
    ("ablation-spill", ablation_spill);
    ("ablation-bloom", ablation_bloom);
    ("ablation-cost", ablation_cost);
    ("ablation-workload", ablation_workload);
    ("bnb", bnb);
    ("micro", micro);
  ]

let () =
  let args =
    Sys.argv |> Array.to_list |> List.tl
    |> List.filter (fun a ->
           if a = "--full" then begin
             full := true;
             false
           end
           else if a = "--stats" then begin
             (* Latch observability on for every queue created from here on
                (lib/obs); sections with a printer (sched) dump the counter
                tables after their own. *)
             Obs.set_enabled true;
             false
           end
           else true)
  in
  let chosen = match args with [] -> List.map fst sections | l -> l in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          Sim.configure ~seed:0xC0FFEE ~cost:Klsm_backend.Cost_model.default ();
          f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections));
          exit 2)
    chosen
