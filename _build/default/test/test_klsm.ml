(* Tests for the combined k-LSM queue (paper Listing 5) and the standalone
   DLSM wrapper: exact single-thread semantics, relaxation bounds, spying
   across handles, runtime k, lazy deletion, and input validation. *)

open Helpers
module B = Klsm_backend.Real
module Klsm = Klsm_core.Klsm.Default
module Dlsm = Klsm_core.Dlsm.Default

(* Drain with retry: try_delete_min may fail spuriously. *)
let drain_all try_delete_min =
  let rec go acc misses =
    if misses > 200 then List.rev acc
    else begin
      match try_delete_min () with
      | Some (k, _) -> go (k :: acc) 0
      | None -> go acc (misses + 1)
    end
  in
  go [] 0

(* ---------------- single-thread exactness (local ordering) ---------------- *)

let prop_klsm_single_thread_exact =
  qtest "k-LSM single thread = exact PQ (any k)" ~count:100
    QCheck2.Gen.(pair ops_gen (int_bound 300))
    (fun (ops, k) ->
      let q = Klsm.create_with ~k ~num_threads:1 () in
      let h = Klsm.register q 0 in
      matches_oracle
        ~insert:(fun key -> Klsm.insert h key ())
        ~delete_min:(fun () ->
          Option.map fst (Klsm.try_delete_min h))
        ops)

let prop_dlsm_single_thread_exact =
  qtest "DLSM single thread = exact PQ" ~count:100 ops_gen (fun ops ->
      let q = Dlsm.create_with ~num_threads:1 () in
      let h = Dlsm.register q 0 in
      matches_oracle
        ~insert:(fun key -> Dlsm.insert h key ())
        ~delete_min:(fun () -> Option.map fst (Dlsm.try_delete_min h))
        ops)

(* ---------------- conservation across handles ---------------- *)

let prop_multi_handle_conservation =
  (* Two handles driven deterministically from one thread: all inserted
     keys come out exactly once (spying paths included). *)
  qtest "two-handle conservation" ~count:50
    QCheck2.Gen.(list_size (int_range 1 300) (int_bound 5_000))
    (fun keys ->
      let q = Klsm.create_with ~k:16 ~num_threads:2 () in
      let h0 = Klsm.register q 0 and h1 = Klsm.register q 1 in
      List.iteri
        (fun i k -> Klsm.insert (if i land 1 = 0 then h0 else h1) k ())
        keys;
      (* h0 drains everything, spying on h1's local LSM. *)
      let got = drain_all (fun () -> Klsm.try_delete_min h0) in
      List.sort compare got = List.sort compare keys)

let test_spy_enables_cross_thread_delete () =
  let q = Klsm.create_with ~k:1024 ~num_threads:2 () in
  let h0 = Klsm.register q 0 and h1 = Klsm.register q 1 in
  (* All items live in h1's local LSM (k large: nothing spills). *)
  for i = 1 to 100 do
    Klsm.insert h1 i ()
  done;
  let got = drain_all (fun () -> Klsm.try_delete_min h0) in
  check_int "h0 got them all by spying" 100 (List.length got)

(* ---------------- relaxation bound (rho = T*k) ---------------- *)

let test_relaxation_bound_single_thread () =
  (* T = 1: every delete-min must return a key of rank <= deletions + k
     among the initial set (deletion-only phase). *)
  let k = 8 in
  let q = Klsm.create_with ~k ~num_threads:1 () in
  let h = Klsm.register q 0 in
  let n = 200 in
  (* Distinct keys 0..n-1 in shuffled order. *)
  let keys = Array.init n Fun.id in
  Klsm_primitives.Xoshiro.shuffle (Klsm_primitives.Xoshiro.create ~seed:4) keys;
  Array.iter (fun key -> Klsm.insert h key ()) keys;
  let deleted = ref 0 in
  let rec go () =
    match Klsm.try_delete_min h with
    | Some (key, ()) ->
        (* rank of key among remaining = key - (#smaller deleted); since we
           delete near-minimal keys, a loose but sound bound: *)
        check_bool "within rho window" true (key <= !deleted + k + 1);
        incr deleted;
        go ()
    | None -> ()
  in
  go ();
  check_int "drained" n !deleted

(* ---------------- runtime k ---------------- *)

let test_set_k () =
  let q = Klsm.create_with ~k:0 ~num_threads:1 () in
  let h = Klsm.register q 0 in
  for i = 1 to 50 do
    Klsm.insert h i ()
  done;
  Klsm.set_k q 1024;
  check_int "get_k" 1024 (Klsm.get_k q);
  for i = 51 to 100 do
    Klsm.insert h i ()
  done;
  let got = drain_all (fun () -> Klsm.try_delete_min h) in
  check_int "conserved across k change" 100 (List.length got)

(* ---------------- lazy deletion (§4.5) ---------------- *)

let test_lazy_deletion_filters () =
  let condemned = Hashtbl.create 16 in
  let dropped = ref [] in
  let q =
    Klsm.create_with ~k:4 ~num_threads:1
      ~should_delete:(fun key _ -> Hashtbl.mem condemned key)
      ~on_lazy_delete:(fun key _ -> dropped := key :: !dropped)
      ()
  in
  let h = Klsm.register q 0 in
  for i = 1 to 32 do
    Klsm.insert h i ()
  done;
  (* Condemn the odd keys, then force consolidation via more traffic. *)
  for i = 1 to 32 do
    if i mod 2 = 1 then Hashtbl.replace condemned i true
  done;
  let got = drain_all (fun () -> Klsm.try_delete_min h) in
  (* No condemned key is ever returned. *)
  List.iter
    (fun k -> check_bool "only even keys returned" true (k mod 2 = 0))
    got;
  check_int "16 survivors" 16 (List.length got);
  (* Every condemned key was dropped exactly once (16 odd keys). *)
  let d = List.sort compare !dropped in
  check_list_int "each dropped once" (List.init 16 (fun i -> (2 * i) + 1)) d

let test_lazy_deletion_exactly_once_hook () =
  (* Heavy merging must not double-fire the hook. *)
  let fired = Hashtbl.create 16 in
  let dupes = ref 0 in
  let q =
    Klsm.create_with ~k:8 ~num_threads:1
      ~should_delete:(fun key _ -> key mod 3 = 0)
      ~on_lazy_delete:(fun key _ ->
        if Hashtbl.mem fired key then incr dupes else Hashtbl.replace fired key ())
      ()
  in
  let h = Klsm.register q 0 in
  for i = 1 to 300 do
    Klsm.insert h i ()
  done;
  ignore (drain_all (fun () -> Klsm.try_delete_min h));
  check_int "no duplicate hook firings" 0 !dupes

(* ---------------- sizes & validation ---------------- *)

let test_approximate_size () =
  let q = Klsm.create_with ~k:16 ~num_threads:1 () in
  let h = Klsm.register q 0 in
  for i = 1 to 100 do
    Klsm.insert h i ()
  done;
  check_bool "size >= alive count" true (Klsm.approximate_size q >= 100)

let test_validation () =
  Alcotest.check_raises "threads" (Invalid_argument "Klsm.create: num_threads < 1")
    (fun () -> ignore (Klsm.create_with ~num_threads:0 ()));
  let q = Klsm.create_with ~num_threads:1 () in
  Alcotest.check_raises "tid range" (Invalid_argument "Klsm.register: tid")
    (fun () -> ignore (Klsm.register q 1));
  let h = Klsm.register q 0 in
  Alcotest.check_raises "negative key" (Invalid_argument "Klsm.insert: negative key")
    (fun () -> Klsm.insert h (-1) ())

let test_empty_queue () =
  let q = Klsm.create_with ~num_threads:4 () in
  let h = Klsm.register q 0 in
  check_bool "empty" true (Klsm.try_delete_min h = None);
  check_int "size" 0 (Klsm.approximate_size q)

let test_duplicate_keys () =
  let q = Klsm.create_with ~k:4 ~num_threads:1 () in
  let h = Klsm.register q 0 in
  for _ = 1 to 50 do
    Klsm.insert h 7 ()
  done;
  let got = drain_all (fun () -> Klsm.try_delete_min h) in
  check_int "all 50 duplicates" 50 (List.length got);
  List.iter (fun k -> check_int "key 7" 7 k) got

let test_consolidate_local_exposed () =
  let q =
    Klsm.create_with ~k:1024 ~num_threads:1
      ~should_delete:(fun key _ -> key > 10)
      ()
  in
  let h = Klsm.register q 0 in
  for i = 1 to 100 do
    Klsm.insert h i ()
  done;
  Klsm.consolidate_local h;
  (* Condemned items were filtered out of the local LSM. *)
  check_bool "shrunk" true (Klsm.approximate_size q <= 10)

let () =
  Alcotest.run "klsm"
    [
      ( "exactness",
        [ prop_klsm_single_thread_exact; prop_dlsm_single_thread_exact ] );
      ( "multi-handle",
        [
          prop_multi_handle_conservation;
          Alcotest.test_case "spy cross-thread" `Quick test_spy_enables_cross_thread_delete;
        ] );
      ( "relaxation",
        [ Alcotest.test_case "rho window" `Quick test_relaxation_bound_single_thread ] );
      ("runtime-k", [ Alcotest.test_case "set_k" `Quick test_set_k ]);
      ( "lazy-deletion",
        [
          Alcotest.test_case "filters condemned" `Quick test_lazy_deletion_filters;
          Alcotest.test_case "hook exactly once" `Quick test_lazy_deletion_exactly_once_hook;
        ] );
      ( "edges",
        [
          Alcotest.test_case "approximate size" `Quick test_approximate_size;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "empty" `Quick test_empty_queue;
          Alcotest.test_case "duplicates" `Quick test_duplicate_keys;
          Alcotest.test_case "consolidate_local" `Quick test_consolidate_local_exposed;
        ] );
    ]
