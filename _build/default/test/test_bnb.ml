(* Tests for the branch-and-bound engine and its two problem instances:
   optimality against independent oracles (DP / Held-Karp), determinism,
   multi-threaded runs on both backends, and pruning sanity. *)

open Helpers
module Sim = Klsm_backend.Sim
module Engine_sim = Klsm_bnb.Engine.Make (Sim)
module Engine_real = Klsm_bnb.Engine.Make (Klsm_backend.Real)
module Knapsack = Klsm_bnb.Knapsack
module Tsp = Klsm_bnb.Tsp

let solve_knapsack_sim ?(threads = 4) ?(k = 64) inst =
  Sim.configure ~seed:1 ~policy:Sim.Fair ();
  let stats = Engine_sim.solve ~k ~num_threads:threads (Knapsack.problem inst) in
  (Knapsack.profit_of_best inst stats.Engine_sim.best, stats)

(* ---------------- knapsack ---------------- *)

let prop_knapsack_matches_dp =
  qtest "B&B knapsack = DP optimum (sim, 4 threads)" ~count:25
    QCheck2.Gen.(pair int (int_range 4 18))
    (fun (seed, n) ->
      let inst = Knapsack.random ~seed ~n () in
      let profit, _ = solve_knapsack_sim inst in
      profit = Knapsack.dp_optimum inst)

let test_knapsack_thread_counts () =
  let inst = Knapsack.random ~seed:77 ~n:20 () in
  let expect = Knapsack.dp_optimum inst in
  List.iter
    (fun threads ->
      let profit, _ = solve_knapsack_sim ~threads inst in
      check_int (Printf.sprintf "T=%d" threads) expect profit)
    [ 1; 2; 8 ]

let test_knapsack_relaxation_values () =
  (* Higher k may expand more nodes, never worse answers. *)
  let inst = Knapsack.random ~seed:3 ~n:18 () in
  let expect = Knapsack.dp_optimum inst in
  List.iter
    (fun k ->
      let profit, _ = solve_knapsack_sim ~k inst in
      check_int (Printf.sprintf "k=%d" k) expect profit)
    [ 0; 4; 1024 ]

let test_knapsack_real_domains () =
  let inst = Knapsack.random ~seed:5 ~n:20 () in
  let stats = Engine_real.solve ~num_threads:3 (Knapsack.problem inst) in
  check_int "real backend optimal" (Knapsack.dp_optimum inst)
    (Knapsack.profit_of_best inst stats.Engine_real.best)

let test_knapsack_zero_capacity () =
  let inst =
    Knapsack.instance
      ~items:[| { Knapsack.weight = 5; profit = 10 } |]
      ~capacity:0
  in
  let profit, _ = solve_knapsack_sim ~threads:1 inst in
  check_int "nothing fits" 0 profit

let test_knapsack_validation () =
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Knapsack.instance: weights > 0, profits >= 0")
    (fun () ->
      ignore
        (Knapsack.instance ~items:[| { Knapsack.weight = 0; profit = 1 } |]
           ~capacity:5))

let test_engine_stats_sane () =
  let inst = Knapsack.random ~seed:11 ~n:16 () in
  let _, stats = solve_knapsack_sim inst in
  check_bool "expanded > 0" true (stats.Engine_sim.expanded > 0);
  check_bool "wall >= 0" true (stats.Engine_sim.wall >= 0.)

(* ---------------- TSP ---------------- *)

let prop_tsp_matches_held_karp =
  qtest "B&B TSP = Held-Karp optimum (sim, 4 threads)" ~count:15
    QCheck2.Gen.(pair int (int_range 4 9))
    (fun (seed, n) ->
      let inst = Tsp.random ~seed ~n () in
      Sim.configure ~seed:1 ~policy:Sim.Fair ();
      let stats = Engine_sim.solve ~k:32 ~num_threads:4 (Tsp.problem inst) in
      stats.Engine_sim.best = Tsp.held_karp inst)

let test_tsp_two_cities () =
  let inst = Tsp.random ~seed:2 ~n:2 () in
  Sim.configure ~seed:1 ~policy:Sim.Fair ();
  let stats = Engine_sim.solve ~num_threads:1 (Tsp.problem inst) in
  check_int "out and back" (2 * inst.Tsp.dist.(0).(1)) stats.Engine_sim.best

let test_tsp_bound_admissible () =
  (* Spot-check on small instances: the Held-Karp optimum never beats the
     root bound. *)
  for seed = 1 to 10 do
    let inst = Tsp.random ~seed ~n:7 () in
    let (module P) = Tsp.problem inst in
    check_bool "root bound admissible" true
      (P.bound P.root <= Tsp.held_karp inst)
  done

let test_tsp_larger_instance () =
  let inst = Tsp.random ~seed:123 ~n:12 () in
  Sim.configure ~seed:1 ~policy:Sim.Fair ();
  let stats = Engine_sim.solve ~k:64 ~num_threads:8 (Tsp.problem inst) in
  check_int "12 cities optimal" (Tsp.held_karp inst) stats.Engine_sim.best

let () =
  Alcotest.run "bnb"
    [
      ( "knapsack",
        [
          prop_knapsack_matches_dp;
          Alcotest.test_case "thread counts" `Slow test_knapsack_thread_counts;
          Alcotest.test_case "relaxation values" `Slow test_knapsack_relaxation_values;
          Alcotest.test_case "real domains" `Slow test_knapsack_real_domains;
          Alcotest.test_case "zero capacity" `Quick test_knapsack_zero_capacity;
          Alcotest.test_case "validation" `Quick test_knapsack_validation;
          Alcotest.test_case "stats" `Quick test_engine_stats_sane;
        ] );
      ( "tsp",
        [
          prop_tsp_matches_held_karp;
          Alcotest.test_case "two cities" `Quick test_tsp_two_cities;
          Alcotest.test_case "bound admissible" `Quick test_tsp_bound_admissible;
          Alcotest.test_case "12 cities" `Slow test_tsp_larger_instance;
        ] );
    ]
