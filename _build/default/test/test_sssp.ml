(* Integration tests for the parallel label-correcting SSSP (paper §6):
   distances must equal sequential Dijkstra for every queue, on both
   backends, with and without queue-side lazy deletion, across graph
   families. *)

open Helpers
module Gen = Klsm_graph.Gen
module Dijkstra = Klsm_graph.Dijkstra

module Against (B : Klsm_backend.Backend_intf.S) = struct
  module R = Klsm_harness.Registry.Make (B)
  module SB = Klsm_harness.Sssp_bench.Make (B)

  let check_spec ~graph ~reference ~num_threads spec =
    let r = SB.run ~graph ~source:0 ~num_threads ~reference spec in
    check_bool
      (Printf.sprintf "%s T=%d correct" (R.spec_name spec) num_threads)
      true r.SB.correct;
    r
end

module On_sim = Against (Klsm_backend.Sim)
module On_real = Against (Klsm_backend.Real)
module R_sim = Klsm_harness.Registry.Make (Klsm_backend.Sim)
module R_real = Klsm_harness.Registry.Make (Klsm_backend.Real)

let er_graph = lazy (Gen.erdos_renyi ~seed:21 ~n:250 ~p:0.08 ~max_weight:10_000 ())
let er_ref = lazy (Dijkstra.run (Lazy.force er_graph) ~source:0)

let test_sim_all_queues () =
  let graph = Lazy.force er_graph and reference = Lazy.force er_ref in
  List.iter
    (fun spec ->
      ignore (On_sim.check_spec ~graph ~reference ~num_threads:4 spec))
    [
      R_sim.Klsm 0;
      R_sim.Klsm 256;
      R_sim.Dlsm;
      R_sim.Wimmer_centralized;
      R_sim.Wimmer_hybrid 64;
      R_sim.Linden;
      R_sim.Multiq 2;
      R_sim.Heap_lock;
      R_sim.Spraylist;
    ]

let test_sim_thread_counts () =
  let graph = Lazy.force er_graph and reference = Lazy.force er_ref in
  List.iter
    (fun t ->
      ignore (On_sim.check_spec ~graph ~reference ~num_threads:t (R_sim.Klsm 64)))
    [ 1; 2; 8; 20 ]

let test_real_domains () =
  (* Genuine OS-thread parallelism (preemptive on 1 core still races). *)
  let graph = Lazy.force er_graph and reference = Lazy.force er_ref in
  List.iter
    (fun spec ->
      ignore (On_real.check_spec ~graph ~reference ~num_threads:3 spec))
    [ R_real.Klsm 64; R_real.Dlsm; R_real.Wimmer_hybrid 64 ]

let test_grid_graph () =
  let graph = Gen.grid ~seed:3 ~width:20 ~height:20 ~max_weight:50 () in
  let reference = Dijkstra.run graph ~source:0 in
  ignore (On_sim.check_spec ~graph ~reference ~num_threads:6 (R_sim.Klsm 128))

let test_rmat_graph () =
  let graph = Gen.rmat ~seed:3 ~scale:8 ~edge_factor:4 () in
  let reference = Dijkstra.run graph ~source:0 in
  ignore (On_sim.check_spec ~graph ~reference ~num_threads:6 (R_sim.Klsm 128))

let test_disconnected_graph () =
  (* Unreachable nodes must stay at max_int and not break termination. *)
  let graph = Klsm_graph.Graph.of_edges ~n:10 [ (0, 1, 3); (1, 2, 4) ] in
  let reference = Dijkstra.run graph ~source:0 in
  let r = On_sim.check_spec ~graph ~reference ~num_threads:4 (R_sim.Klsm 16) in
  check_int "only 3 settled" 3 reference.Dijkstra.settled;
  check_bool "no extra work on empty graph" true (r.On_sim.SB.iterations >= 3)

let test_single_node () =
  let graph = Klsm_graph.Graph.of_edges ~n:1 [] in
  let reference = Dijkstra.run graph ~source:0 in
  ignore (On_sim.check_spec ~graph ~reference ~num_threads:2 (R_sim.Klsm 4))

let test_extra_iterations_grow_with_k () =
  (* The paper's quality metric: higher k must not reduce correctness, and
     (statistically) produces at least as many extra iterations at high
     relaxation as at k=0.  Averaged over a few seeds to avoid flakiness. *)
  let graph = Lazy.force er_graph and reference = Lazy.force er_ref in
  let avg_extra k =
    let total = ref 0 in
    for seed = 1 to 3 do
      let r =
        On_sim.SB.run ~seed ~graph ~source:0 ~num_threads:8 ~reference
          (R_sim.Klsm k)
      in
      total := !total + r.On_sim.SB.extra_iterations
    done;
    !total
  in
  let low = avg_extra 0 and high = avg_extra 4096 in
  check_bool "relaxation costs iterations" true (high >= low)

let test_stale_counted () =
  let graph = Lazy.force er_graph and reference = Lazy.force er_ref in
  let r = On_sim.check_spec ~graph ~reference ~num_threads:8 (R_sim.Klsm 256) in
  (* iterations = settled + extra; both non-negative. *)
  check_bool "iterations >= settled" true
    (r.On_sim.SB.iterations >= reference.Dijkstra.settled);
  check_bool "stale >= 0" true (r.On_sim.SB.stale >= 0)

let () =
  Alcotest.run "sssp"
    [
      ( "correctness",
        [
          Alcotest.test_case "all queues (sim)" `Slow test_sim_all_queues;
          Alcotest.test_case "thread counts (sim)" `Slow test_sim_thread_counts;
          Alcotest.test_case "real domains" `Slow test_real_domains;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "grid" `Quick test_grid_graph;
          Alcotest.test_case "rmat" `Quick test_rmat_graph;
          Alcotest.test_case "disconnected" `Quick test_disconnected_graph;
          Alcotest.test_case "single node" `Quick test_single_node;
        ] );
      ( "quality",
        [
          Alcotest.test_case "extra iterations vs k" `Slow test_extra_iterations_grow_with_k;
          Alcotest.test_case "stale accounting" `Quick test_stale_counted;
        ] );
    ]
