(* Tests for the paper's §3 sequential LSM and the §4.5 extensions:
   try_find_min, meld, and the decrease-key (Keyed) wrapper. *)

open Helpers
module Seq_lsm = Klsm_core.Seq_lsm
module Klsm = Klsm_core.Klsm.Default
module Keyed = Klsm_core.Keyed.Default
module Sim = Klsm_backend.Sim

(* ---------------- Seq_lsm (§3) ---------------- *)

let prop_seq_lsm_is_exact =
  qtest "Seq_lsm = exact PQ" ~count:150 ops_gen (fun ops ->
      let t = Seq_lsm.create () in
      matches_oracle
        ~insert:(fun k -> Seq_lsm.insert t k ())
        ~delete_min:(fun () -> Option.map fst (Seq_lsm.delete_min t))
        ops)

let prop_seq_lsm_invariants =
  qtest "Seq_lsm structural invariants hold" ~count:150 ops_gen (fun ops ->
      let t = Seq_lsm.create () in
      List.iter
        (fun (is_insert, k) ->
          if is_insert then Seq_lsm.insert t k ()
          else ignore (Seq_lsm.delete_min t);
          Seq_lsm.check_invariants t)
        ops;
      true)

let prop_seq_lsm_drain_sorted =
  qtest "Seq_lsm drains sorted" keys_gen (fun keys ->
      let t = Seq_lsm.create () in
      List.iter (fun k -> Seq_lsm.insert t k ()) keys;
      check_int "size" (List.length keys) (Seq_lsm.size t);
      List.map fst (Seq_lsm.drain t) = List.sort compare keys)

let test_seq_lsm_find_min () =
  let t = Seq_lsm.create () in
  check_bool "empty" true (Seq_lsm.find_min t = None);
  Seq_lsm.insert t 5 "five";
  Seq_lsm.insert t 3 "three";
  Seq_lsm.insert t 9 "nine";
  check_bool "min" true (Seq_lsm.find_min t = Some (3, "three"));
  check_int "size unchanged" 3 (Seq_lsm.size t)

let test_seq_lsm_block_discipline () =
  (* After 2^n inserts the LSM should hold very few blocks. *)
  let t = Seq_lsm.create () in
  for i = 1 to 1024 do
    Seq_lsm.insert t i ()
  done;
  Seq_lsm.check_invariants t;
  (* 1024 items need at most ~11 blocks (one per level). *)
  check_bool "logarithmic blocks" true (List.length t.Seq_lsm.blocks <= 11)

let prop_seq_lsm_equals_seq_heap =
  (* Differential: the two sequential foundations agree operation-for-
     operation on any program. *)
  qtest "Seq_lsm = Seq_heap (differential)" ~count:100 ops_gen (fun ops ->
      let module Heap = Klsm_baselines.Seq_heap.Make (Klsm_backend.Real) in
      let lsm = Seq_lsm.create () in
      let heap = Heap.create () in
      List.for_all
        (fun (is_insert, k) ->
          if is_insert then begin
            Seq_lsm.insert lsm k ();
            Heap.insert heap k ();
            true
          end
          else
            Option.map fst (Seq_lsm.delete_min lsm)
            = Option.map fst (Heap.pop_min heap))
        ops
      && Seq_lsm.size lsm = Heap.size heap)

(* ---------------- try_find_min ---------------- *)

let test_try_find_min () =
  let q = Klsm.create_with ~k:8 ~num_threads:1 () in
  let h = Klsm.register q 0 in
  check_bool "peek empty" true (Klsm.try_find_min h = None);
  Klsm.insert h 7 "seven";
  Klsm.insert h 3 "three";
  (* Single thread + local ordering: the peek is exact. *)
  check_bool "peek min" true (Klsm.try_find_min h = Some (3, "three"));
  check_bool "not consumed" true (Klsm.try_find_min h = Some (3, "three"));
  check_bool "delete still works" true
    (Klsm.try_delete_min h = Some (3, "three"))

let test_try_find_min_relaxed_bound () =
  let q = Klsm.create_with ~k:4 ~num_threads:1 () in
  let h = Klsm.register q 0 in
  for i = 0 to 63 do
    Klsm.insert h i ()
  done;
  match Klsm.try_find_min h with
  | Some (key, ()) -> check_bool "within k+1 smallest" true (key <= 5)
  | None -> Alcotest.fail "non-empty"

(* ---------------- meld ---------------- *)

let drain_all try_delete_min =
  let rec go acc misses =
    if misses > 200 then List.rev acc
    else
      match try_delete_min () with
      | Some (k, _) -> go (k :: acc) 0
      | None -> go acc (misses + 1)
  in
  go [] 0

let test_meld_moves_everything () =
  let q1 = Klsm.create_with ~k:16 ~num_threads:1 () in
  let h1 = Klsm.register q1 0 in
  let q2 = Klsm.create_with ~k:16 ~num_threads:2 () in
  let h2a = Klsm.register q2 0 and h2b = Klsm.register q2 1 in
  for i = 0 to 49 do
    Klsm.insert h1 i ()
  done;
  for i = 50 to 79 do
    Klsm.insert h2a i ()
  done;
  for i = 80 to 99 do
    Klsm.insert h2b i ()
  done;
  Klsm.meld h1 ~src:q2;
  check_int "src emptied" 0 (Klsm.approximate_size q2);
  let got = drain_all (fun () -> Klsm.try_delete_min h1) in
  check_bool "dst holds the union" true
    (List.sort compare got = List.init 100 Fun.id)

let test_meld_filters_deleted () =
  let q1 = Klsm.create_with ~k:4 ~num_threads:1 () in
  let h1 = Klsm.register q1 0 in
  let q2 = Klsm.create_with ~k:4 ~num_threads:1 () in
  let h2 = Klsm.register q2 0 in
  for i = 0 to 19 do
    Klsm.insert h2 i ()
  done;
  (* Delete the evens from q2 before melding. *)
  let deleted = ref [] in
  for _ = 1 to 10 do
    match Klsm.try_delete_min h2 with
    | Some (k, ()) -> deleted := k :: !deleted
    | None -> ()
  done;
  Klsm.meld h1 ~src:q2;
  let got = drain_all (fun () -> Klsm.try_delete_min h1) in
  check_int "only survivors melded" (20 - List.length !deleted)
    (List.length got)

let test_meld_empty_source () =
  let q1 = Klsm.create_with ~num_threads:1 () in
  let h1 = Klsm.register q1 0 in
  Klsm.insert h1 1 ();
  let q2 = Klsm.create_with ~num_threads:1 () in
  let _h2 = Klsm.register q2 0 in
  Klsm.meld h1 ~src:q2;
  check_int "dst unchanged" 1 (List.length (drain_all (fun () -> Klsm.try_delete_min h1)))

(* ---------------- insert_batch ---------------- *)

let test_batch_insert_conserves () =
  let q = Klsm.create_with ~k:16 ~num_threads:1 () in
  let h = Klsm.register q 0 in
  Klsm.insert_batch h (Array.init 100 (fun i -> (99 - i, i)));
  Klsm.insert_batch h [||];
  Klsm.insert_batch h [| (200, 0) |];
  let got = drain_all (fun () -> Klsm.try_delete_min h) in
  check_bool "all delivered in order-ish" true
    (List.sort compare got = List.init 100 Fun.id @ [ 200 ])

let prop_batch_equals_loop =
  qtest "batch insert = repeated insert (multiset)" ~count:60 keys_gen
    (fun keys ->
      match keys with
      | [] -> true
      | _ ->
          let q1 = Klsm.create_with ~k:8 ~num_threads:1 () in
          let h1 = Klsm.register q1 0 in
          Klsm.insert_batch h1 (Array.of_list (List.map (fun k -> (k, ())) keys));
          let q2 = Klsm.create_with ~k:8 ~num_threads:1 () in
          let h2 = Klsm.register q2 0 in
          List.iter (fun k -> Klsm.insert h2 k ()) keys;
          let d1 = drain_all (fun () -> Klsm.try_delete_min h1) in
          let d2 = drain_all (fun () -> Klsm.try_delete_min h2) in
          List.sort compare d1 = List.sort compare d2)

let test_batch_local_ordering () =
  (* Batch-inserted keys carry my Bloom attribution: my minimum stays
     visible through local ordering. *)
  let q = Klsm.create_with ~k:64 ~num_threads:2 () in
  let h0 = Klsm.register q 0 in
  Klsm.insert_batch h0 (Array.init 32 (fun i -> (i + 10, ())));
  match Klsm.try_delete_min h0 with
  | Some (k, ()) -> check_int "my min" 10 k
  | None -> Alcotest.fail "non-empty"

let test_batch_concurrent_conservation () =
  (* Batches from several simulated threads interleave with deletes; every
     payload is delivered exactly once. *)
  let module K = Klsm_core.Klsm.Make (Sim) in
  Sim.configure ~seed:6 ~policy:Sim.Fair ();
  let t = 4 in
  let per = 50 (* batches *) and bsz = 8 in
  let q = K.create_with ~k:32 ~num_threads:t () in
  let got = Array.init t (fun _ -> ref []) in
  Sim.parallel_run ~num_threads:t (fun tid ->
      let h = K.register q tid in
      let rng = Klsm_primitives.Xoshiro.create ~seed:(tid + 40) in
      for b = 0 to per - 1 do
        let batch =
          Array.init bsz (fun i ->
              ( Klsm_primitives.Xoshiro.int rng 10_000,
                (tid * per * bsz) + (b * bsz) + i ))
        in
        K.insert_batch h batch;
        match K.try_delete_min h with
        | Some (_, v) -> got.(tid) := v :: !(got.(tid))
        | None -> ()
      done;
      let misses = ref 0 in
      while !misses < 200 do
        match K.try_delete_min h with
        | Some (_, v) ->
            got.(tid) := v :: !(got.(tid));
            misses := 0
        | None -> incr misses
      done);
  let total = t * per * bsz in
  let seen = Array.make total 0 in
  Array.iter (fun l -> List.iter (fun v -> seen.(v) <- seen.(v) + 1) !l) got;
  Array.iteri
    (fun v c -> if c <> 1 then Alcotest.failf "payload %d delivered %d times" v c)
    seen

let test_local_ordering_off_still_conserves () =
  (* The ablation knob must not affect safety, only the local-ordering
     guarantee. *)
  let module K = Klsm_core.Klsm.Make (Sim) in
  Sim.configure ~seed:8 ~policy:Sim.Fair ();
  let t = 4 in
  let q = K.create_with ~k:16 ~local_ordering:false ~num_threads:t () in
  let count = Sim.make 0 in
  let handles = Array.make t None in
  Sim.parallel_run ~num_threads:t (fun tid ->
      let h = K.register q tid in
      handles.(tid) <- Some h;
      for i = 0 to 199 do
        K.insert h ((tid * 1000) + i) ()
      done);
  Sim.parallel_run ~num_threads:t (fun tid ->
      let h = match handles.(tid) with Some h -> h | None -> assert false in
      let misses = ref 0 in
      while !misses < 200 do
        match K.try_delete_min h with
        | Some _ ->
            ignore (Sim.fetch_and_add count 1);
            misses := 0
        | None -> incr misses
      done);
  check_int "all delivered" (t * 200) (Sim.get count)

(* ---------------- Keyed (decrease-key) ---------------- *)

let test_keyed_basic () =
  let t = Keyed.create ~k:8 ~num_threads:1 () in
  let h = Keyed.register t 0 in
  let a = Keyed.element "a" and b = Keyed.element "b" in
  check_bool "insert a" true (Keyed.insert h a 10);
  check_bool "insert b" true (Keyed.insert h b 20);
  (match Keyed.try_delete_min h with
  | Some (el, p) ->
      check_bool "a first" true (Keyed.value el = "a" && p = 10)
  | None -> Alcotest.fail "non-empty");
  match Keyed.try_delete_min h with
  | Some (el, p) -> check_bool "b second" true (Keyed.value el = "b" && p = 20)
  | None -> Alcotest.fail "non-empty"

let test_keyed_decrease_key () =
  let t = Keyed.create ~k:8 ~num_threads:1 () in
  let h = Keyed.register t 0 in
  let a = Keyed.element "a" and b = Keyed.element "b" in
  ignore (Keyed.insert h a 10);
  ignore (Keyed.insert h b 5);
  (* Decrease a below b. *)
  check_bool "decrease wins" true (Keyed.decrease_key h a 1);
  check_bool "increase refused" false (Keyed.decrease_key h a 100);
  (match Keyed.try_delete_min h with
  | Some (el, p) -> check_bool "a now first" true (Keyed.value el = "a" && p = 1)
  | None -> Alcotest.fail "non-empty");
  (match Keyed.try_delete_min h with
  | Some (el, _) -> check_bool "b second" true (Keyed.value el = "b")
  | None -> Alcotest.fail "non-empty");
  (* The stale (10, a) entry must never be delivered. *)
  check_bool "no stale delivery" true (Keyed.try_delete_min h = None)

let test_keyed_exactly_once () =
  let t = Keyed.create ~k:8 ~num_threads:1 () in
  let h = Keyed.register t 0 in
  let el = Keyed.element 0 in
  (* Many decrease-keys pile up stale entries; the element comes out
     once. *)
  ignore (Keyed.insert h el 100);
  for p = 99 downto 50 do
    ignore (Keyed.decrease_key h el p)
  done;
  let deliveries = ref 0 in
  let rec drain () =
    match Keyed.try_delete_min h with
    | Some _ ->
        incr deliveries;
        drain ()
    | None -> ()
  in
  drain ();
  check_int "exactly once" 1 !deliveries;
  check_bool "claimed" true (Keyed.is_claimed el)

let test_keyed_reactivation () =
  let t = Keyed.create ~k:8 ~num_threads:1 () in
  let h = Keyed.register t 0 in
  let el = Keyed.element "x" in
  ignore (Keyed.insert h el 5);
  (match Keyed.try_delete_min h with
  | Some (el', _) -> check_bool "delivered" true (el' == el)
  | None -> Alcotest.fail "non-empty");
  (* Re-activate at a new priority (note: re-activation priorities must
     descend, like SSSP distances). *)
  check_bool "reinsert" true (Keyed.insert h el 3);
  match Keyed.try_delete_min h with
  | Some (el', p) -> check_bool "redelivered" true (el' == el && p = 3)
  | None -> Alcotest.fail "non-empty"

let test_keyed_concurrent_delivery_bounds () =
  (* Many elements, many decrease-keys from several fuzzed fibers.  With
     concurrent re-activation an element may legitimately be delivered more
     than once (exactly like SSSP re-expansions), but each delivery consumes
     a distinct successful activation's queue entry, so:
       1 <= deliveries(el) <= successful_activations(el). *)
  let module KS = Klsm_core.Keyed.Make (Sim) in
  for seed = 1 to 5 do
    Sim.configure ~seed ~policy:(Sim.Random_preempt 0.3) ();
    let n = 100 in
    let t = KS.create ~k:16 ~num_threads:4 () in
    let elements = Array.init n (fun v -> KS.element v) in
    let deliveries = Array.init n (fun _ -> Sim.make 0) in
    let activations = Array.init n (fun _ -> Sim.make 0) in
    Sim.parallel_run ~num_threads:4 (fun tid ->
        let h = KS.register t tid in
        let rng = Klsm_primitives.Xoshiro.create ~seed:(seed + (7 * tid)) in
        (* Everyone decrease-keys random elements with descending prios. *)
        for round = 0 to 199 do
          let v = Klsm_primitives.Xoshiro.int rng n in
          if KS.insert h elements.(v) (1_000 - (round / 2)) then
            ignore (Sim.fetch_and_add activations.(v) 1)
        done;
        let misses = ref 0 in
        while !misses < 200 do
          match KS.try_delete_min h with
          | Some (el, _) ->
              ignore (Sim.fetch_and_add deliveries.(KS.value el) 1);
              misses := 0
          | None -> incr misses
        done);
    Array.iteri
      (fun v d ->
        let d = Sim.get d and a = Sim.get activations.(v) in
        if a > 0 && d < 1 then
          Alcotest.failf "seed %d: element %d lost (a=%d)" seed v a;
        if d > a then
          Alcotest.failf "seed %d: element %d delivered %d > activations %d"
            seed v d a)
      deliveries
  done;
  Sim.configure ~policy:Sim.Fair ()

(* Keyed-based Dijkstra must agree with the plain lazy-deletion SSSP. *)
let test_keyed_dijkstra () =
  let module KeyedSim = Klsm_core.Keyed.Make (Sim) in
  let graph = Klsm_graph.Gen.erdos_renyi ~seed:33 ~n:120 ~p:0.1 () in
  let reference = Klsm_graph.Dijkstra.run graph ~source:0 in
  let n = Klsm_graph.Graph.num_nodes graph in
  Sim.configure ~seed:1 ~policy:Sim.Fair ();
  let dist = Array.init n (fun _ -> Sim.make max_int) in
  let in_flight = Sim.make 1 in
  let t =
    KeyedSim.create ~k:64
      ~on_entry_consumed:(fun _ _ -> ignore (Sim.fetch_and_add in_flight (-1)))
      ~num_threads:4 ()
  in
  let elements = Array.init n (fun v -> KeyedSim.element v) in
  Sim.set dist.(0) 0;
  Sim.parallel_run ~num_threads:4 (fun tid ->
      let h = KeyedSim.register t tid in
      if tid = 0 then ignore (KeyedSim.insert h elements.(0) 0);
      let rec loop () =
        match KeyedSim.try_delete_min h with
        | Some (el, d) ->
            let u = KeyedSim.value el in
            if d >= Sim.get dist.(u) then
              Klsm_graph.Graph.iter_succ graph u ~f:(fun v w ->
                  let nd = d + w in
                  let rec relax () =
                    let cur = Sim.get dist.(v) in
                    if nd < cur then
                      if Sim.compare_and_set dist.(v) cur nd then begin
                        ignore (Sim.fetch_and_add in_flight 1);
                        if not (KeyedSim.insert h elements.(v) nd) then
                          ignore (Sim.fetch_and_add in_flight (-1))
                      end
                      else relax ()
                  in
                  relax ());
            ignore (Sim.fetch_and_add in_flight (-1));
            loop ()
        | None -> if Sim.get in_flight > 0 then (Sim.cpu_relax (); loop ())
      in
      loop ());
  let got = Array.map Sim.get dist in
  check_bool "keyed dijkstra correct" true
    (got = reference.Klsm_graph.Dijkstra.dist)

let () =
  Alcotest.run "extensions"
    [
      ( "seq_lsm",
        [
          prop_seq_lsm_is_exact;
          prop_seq_lsm_invariants;
          prop_seq_lsm_drain_sorted;
          Alcotest.test_case "find_min" `Quick test_seq_lsm_find_min;
          Alcotest.test_case "block discipline" `Quick test_seq_lsm_block_discipline;
          prop_seq_lsm_equals_seq_heap;
        ] );
      ( "try_find_min",
        [
          Alcotest.test_case "peek" `Quick test_try_find_min;
          Alcotest.test_case "relaxed bound" `Quick test_try_find_min_relaxed_bound;
        ] );
      ( "batch",
        [
          Alcotest.test_case "conserves" `Quick test_batch_insert_conserves;
          prop_batch_equals_loop;
          Alcotest.test_case "local ordering" `Quick test_batch_local_ordering;
        ] );
      ( "meld",
        [
          Alcotest.test_case "moves everything" `Quick test_meld_moves_everything;
          Alcotest.test_case "filters deleted" `Quick test_meld_filters_deleted;
          Alcotest.test_case "empty source" `Quick test_meld_empty_source;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "batch conservation (sim)" `Slow test_batch_concurrent_conservation;
          Alcotest.test_case "local-ordering off (sim)" `Slow test_local_ordering_off_still_conserves;
        ] );
      ( "keyed",
        [
          Alcotest.test_case "basic" `Quick test_keyed_basic;
          Alcotest.test_case "decrease-key" `Quick test_keyed_decrease_key;
          Alcotest.test_case "exactly once" `Quick test_keyed_exactly_once;
          Alcotest.test_case "re-activation" `Quick test_keyed_reactivation;
          Alcotest.test_case "keyed dijkstra (sim)" `Slow test_keyed_dijkstra;
          Alcotest.test_case "concurrent delivery bounds (fuzzed)" `Slow
            test_keyed_concurrent_delivery_bounds;
        ] );
    ]
