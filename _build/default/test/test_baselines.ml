(* Tests for the baseline queues: the shared skiplist substrate, Lindén &
   Jonsson, SprayList, Multi-Queues, Heap+Lock, and the Wimmer et al.
   reimplementations.  Every queue must be an exact priority queue when
   driven by a single thread (their relaxations all collapse at T = 1),
   which gives one uniform oracle property over the whole registry. *)

open Helpers
module B = Klsm_backend.Real
module R = Klsm_harness.Registry.Make (B)
module Sk = Klsm_baselines.Skiplist.Make (B)
module Linden = Klsm_baselines.Linden_pq.Default
module Spray = Klsm_baselines.Spraylist.Default
module Multiq = Klsm_baselines.Multiq.Default
module Hybrid = Klsm_baselines.Wimmer_hybrid.Default
module Lock = Klsm_baselines.Spinlock.Make (B)
module Heap = Klsm_baselines.Seq_heap.Make (B)
module Xoshiro = Klsm_primitives.Xoshiro

(* ---------------- Seq_heap ---------------- *)

let prop_heap_is_exact =
  qtest "Seq_heap = exact PQ" ~count:150 ops_gen (fun ops ->
      let h = Heap.create () in
      matches_oracle
        ~insert:(fun k -> Heap.insert h k ())
        ~delete_min:(fun () -> Option.map fst (Heap.pop_min h))
        ops)

let prop_heap_drain_sorted =
  qtest "Seq_heap drains sorted" keys_gen (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.insert h k ()) keys;
      Heap.check_invariants h;
      List.map fst (Heap.drain h) = List.sort compare keys)

let test_heap_peek () =
  let h = Heap.create () in
  check_bool "empty peek" true (Heap.peek h = None);
  check_int "empty peek_key" max_int (Heap.peek_key h);
  Heap.insert h 5 "a";
  Heap.insert h 2 "b";
  check_int "peek_key" 2 (Heap.peek_key h);
  check_bool "peek" true (Heap.peek h = Some (2, "b"))

(* ---------------- Spinlock ---------------- *)

let test_spinlock_mutual_exclusion_domains () =
  let lock = Lock.create () in
  let counter = ref 0 in
  B.parallel_run ~num_threads:4 (fun _tid ->
      for _ = 1 to 10_000 do
        Lock.with_lock lock (fun () -> incr counter)
      done);
  check_int "no lost updates" 40_000 !counter

let test_spinlock_try_acquire () =
  let lock = Lock.create () in
  check_bool "first" true (Lock.try_acquire lock);
  check_bool "second fails" false (Lock.try_acquire lock);
  Lock.release lock;
  check_bool "after release" true (Lock.try_acquire lock)

let test_spinlock_releases_on_exception () =
  let lock = Lock.create () in
  (try Lock.with_lock lock (fun () -> failwith "boom") with Failure _ -> ());
  check_bool "released" true (Lock.try_acquire lock)

(* ---------------- skiplist substrate ---------------- *)

let prop_skiplist_sorted =
  qtest "skiplist keeps ascending alive order" ~count:100 keys_gen
    (fun keys ->
      let sk = Sk.create ~dummy:0 () in
      let rng = Xoshiro.create ~seed:9 in
      List.iter (fun k -> ignore (Sk.insert sk ~rng k 0)) keys;
      List.map fst (Sk.to_alive_list sk) = List.sort compare keys)

let test_skiplist_take_hides () =
  let sk = Sk.create ~dummy:0 () in
  let rng = Xoshiro.create ~seed:2 in
  let n1 = Sk.insert sk ~rng 1 0 in
  let _n2 = Sk.insert sk ~rng 2 0 in
  check_bool "take" true (Sk.try_take n1);
  check_bool "take twice fails" false (Sk.try_take n1);
  check_bool "hidden" true (List.map fst (Sk.to_alive_list sk) = [ 2 ])

let test_skiplist_unlink_via_search () =
  let sk = Sk.create ~dummy:0 () in
  let rng = Xoshiro.create ~seed:2 in
  let nodes = List.init 100 (fun i -> Sk.insert sk ~rng i 0) in
  (* Physically delete the first 50. *)
  List.iteri
    (fun i n ->
      if i < 50 then begin
        ignore (Sk.try_take n);
        Sk.mark_node n
      end)
    nodes;
  (* Search for the first alive key: the whole marked prefix lies on the
     bottom-level search path, so the traversal unlinks all of it (this is
     exactly how the Lindén-style batched cleanup invokes it).  Searching
     beyond alive nodes would legitimately skip over the prefix via upper
     levels and unlink less. *)
  ignore (Sk.search sk 50);
  check_int "physically unlinked" 50 (Sk.length sk)

let test_skiplist_duplicate_keys () =
  let sk = Sk.create ~dummy:0 () in
  let rng = Xoshiro.create ~seed:3 in
  for i = 0 to 9 do
    ignore (Sk.insert sk ~rng 5 i)
  done;
  check_int "ten copies" 10 (Sk.length sk)

(* ---------------- per-queue oracle properties ---------------- *)

let all_specs =
  [
    R.Heap_lock;
    R.Linden;
    R.Spraylist;
    R.Multiq 2;
    R.Klsm 0;
    R.Klsm 64;
    R.Dlsm;
    R.Wimmer_centralized;
    R.Wimmer_hybrid 16;
  ]

let oracle_test spec =
  qtest
    (Printf.sprintf "%s single thread = exact PQ" (R.spec_name spec))
    ~count:60 ops_gen
    (fun ops ->
      let inst = R.make ~seed:1 ~num_threads:1 spec in
      let h = inst.R.register 0 in
      matches_oracle
        ~insert:(fun k -> h.R.insert k 0)
        ~delete_min:(fun () -> Option.map fst (h.R.try_delete_min ()))
        ops)

(* ---------------- Linden ---------------- *)

let test_linden_interleaved_drain () =
  let q = Linden.create_with ~dummy:0 ~num_threads:1 () in
  let h = Linden.register q 0 in
  (* Enough deletes to cross the prefix_bound restructure path. *)
  for i = 0 to 199 do
    Linden.insert h i 0
  done;
  for i = 0 to 199 do
    match Linden.try_delete_min h with
    | Some (k, _) -> check_int "order" i k
    | None -> Alcotest.fail "early empty"
  done;
  check_bool "empty" true (Linden.try_delete_min h = None)

(* ---------------- SprayList ---------------- *)

let test_spray_returns_small_keys () =
  (* With T declared = 8 the spray may relax, but landed keys must still be
     near the front: we only check conservation and that repeated drains
     terminate. *)
  let q = Spray.create_with ~dummy:0 ~num_threads:8 () in
  let h = Spray.register q 0 in
  for i = 0 to 499 do
    Spray.insert h i 0
  done;
  let got = ref [] in
  let rec drain () =
    match Spray.try_delete_min h with
    | Some (k, _) ->
        got := k :: !got;
        drain ()
    | None -> ()
  in
  drain ();
  check_int "all out" 500 (List.length !got);
  check_bool "multiset" true
    (List.sort compare !got = List.init 500 Fun.id)

(* ---------------- MultiQ ---------------- *)

let test_multiq_conservation () =
  let q = Multiq.create_with ~c:4 ~num_threads:2 () in
  let h = Multiq.register q 0 in
  for i = 0 to 299 do
    Multiq.insert h i 0
  done;
  check_int "size" 300 (Multiq.approximate_size q);
  let got = ref [] in
  let rec drain () =
    match Multiq.try_delete_min h with
    | Some (k, _) ->
        got := k :: !got;
        drain ()
    | None -> ()
  in
  drain ();
  check_bool "multiset" true (List.sort compare !got = List.init 300 Fun.id)

let test_multiq_rank_quality () =
  (* Two-choices keeps the rank error small: with 8 queues and sequential
     drains the first returned key should be within the smallest few. *)
  let q = Multiq.create_with ~c:4 ~num_threads:2 ~seed:5 () in
  let h = Multiq.register q 0 in
  for i = 0 to 999 do
    Multiq.insert h i 0
  done;
  match Multiq.try_delete_min h with
  | Some (k, _) -> check_bool "near min" true (k < 100)
  | None -> Alcotest.fail "non-empty"

(* ---------------- Wimmer hybrid ---------------- *)

let test_hybrid_spills_to_global () =
  let q = Hybrid.create_with ~k:8 ~num_threads:2 () in
  let h0 = Hybrid.register q 0 in
  for i = 0 to 99 do
    Hybrid.insert h0 i 0
  done;
  (* With k = 8, most items must have been flushed to the global heap,
     where another thread can see them. *)
  let h1 = Hybrid.register q 1 in
  let seen = ref 0 in
  let rec drain () =
    match Hybrid.try_delete_min h1 with
    | Some _ ->
        incr seen;
        drain ()
    | None -> ()
  in
  drain ();
  check_bool "h1 sees the flushed majority" true (!seen >= 90)

let test_hybrid_lazy_deletion () =
  let dropped = ref 0 in
  let q =
    Hybrid.create_with ~k:4 ~num_threads:1
      ~should_delete:(fun key _ -> key mod 2 = 1)
      ~on_lazy_delete:(fun _ _ -> incr dropped)
      ()
  in
  let h = Hybrid.register q 0 in
  for i = 0 to 99 do
    Hybrid.insert h i 0
  done;
  let returned = ref 0 in
  let rec drain () =
    match Hybrid.try_delete_min h with
    | Some (k, _) ->
        check_int "only even" 0 (k mod 2);
        incr returned;
        drain ()
    | None -> ()
  in
  drain ();
  check_int "evens returned" 50 !returned;
  check_int "odds dropped" 50 !dropped

let () =
  Alcotest.run "baselines"
    [
      ( "seq_heap",
        [
          prop_heap_is_exact;
          prop_heap_drain_sorted;
          Alcotest.test_case "peek" `Quick test_heap_peek;
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutual_exclusion_domains;
          Alcotest.test_case "try_acquire" `Quick test_spinlock_try_acquire;
          Alcotest.test_case "exception safety" `Quick test_spinlock_releases_on_exception;
        ] );
      ( "skiplist",
        [
          prop_skiplist_sorted;
          Alcotest.test_case "take hides" `Quick test_skiplist_take_hides;
          Alcotest.test_case "unlink" `Quick test_skiplist_unlink_via_search;
          Alcotest.test_case "duplicates" `Quick test_skiplist_duplicate_keys;
        ] );
      ("oracle", List.map oracle_test all_specs);
      ( "linden",
        [ Alcotest.test_case "interleaved drain" `Quick test_linden_interleaved_drain ] );
      ( "spraylist",
        [ Alcotest.test_case "conservation" `Quick test_spray_returns_small_keys ] );
      ( "multiq",
        [
          Alcotest.test_case "conservation" `Quick test_multiq_conservation;
          Alcotest.test_case "two-choices quality" `Quick test_multiq_rank_quality;
        ] );
      ( "wimmer-hybrid",
        [
          Alcotest.test_case "spill to global" `Quick test_hybrid_spills_to_global;
          Alcotest.test_case "lazy deletion" `Quick test_hybrid_lazy_deletion;
        ] );
    ]
