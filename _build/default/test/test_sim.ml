(* Tests for the discrete-event simulator backend: determinism, atomic
   semantics, scheduling fairness, cost accounting, time, exception
   propagation, and the random-preemption schedule fuzzer. *)

open Helpers
module Sim = Klsm_backend.Sim
module Cost_model = Klsm_backend.Cost_model

let reset () = Sim.configure ~seed:1 ~cost:Cost_model.default ~policy:Sim.Fair ()

(* ---------------- basic execution ---------------- *)

let test_runs_all_threads () =
  reset ();
  let ran = Array.make 8 false in
  Sim.parallel_run ~num_threads:8 (fun tid -> ran.(tid) <- true);
  check_bool "all ran" true (Array.for_all Fun.id ran)

let test_single_thread () =
  reset ();
  let x = ref 0 in
  Sim.parallel_run ~num_threads:1 (fun _ -> x := 42);
  check_int "ran" 42 !x

let test_num_threads_validation () =
  Alcotest.check_raises "zero threads"
    (Invalid_argument "Sim.parallel_run: num_threads < 1") (fun () ->
      Sim.parallel_run ~num_threads:0 (fun _ -> ()))

(* ---------------- atomics ---------------- *)

let test_fetch_and_add_exact () =
  reset ();
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:10 (fun _ ->
      for _ = 1 to 1000 do
        ignore (Sim.fetch_and_add c 1)
      done);
  check_int "exact sum" 10_000 (Sim.get c)

let test_cas_mutual_exclusion () =
  reset ();
  (* A CAS-based lock-free counter: read-modify-write via CAS retry. *)
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:8 (fun _ ->
      for _ = 1 to 500 do
        let rec bump () =
          let v = Sim.get c in
          if not (Sim.compare_and_set c v (v + 1)) then bump ()
        in
        bump ()
      done);
  check_int "no lost updates" 4_000 (Sim.get c)

let test_racy_increment_loses_updates () =
  (* The canonical race: get + set is NOT atomic; the simulator must be
     able to interleave between them and lose updates (demonstrating it
     explores real interleavings). *)
  let lost = ref false in
  let seed = ref 0 in
  while (not !lost) && !seed < 50 do
    Sim.configure ~seed:!seed ~policy:(Sim.Random_preempt 0.5) ();
    let c = Sim.make 0 in
    Sim.parallel_run ~num_threads:4 (fun _ ->
        for _ = 1 to 50 do
          Sim.set c (Sim.get c + 1)
        done);
    if Sim.get c < 200 then lost := true;
    incr seed
  done;
  reset ();
  check_bool "a racy schedule was found" true !lost

let test_exchange () =
  reset ();
  let c = Sim.make "a" in
  Sim.parallel_run ~num_threads:1 (fun _ ->
      let old = Sim.exchange c "b" in
      check_bool "old" true (old = "a"));
  check_bool "new" true (Sim.get c = "b")

let test_atomics_outside_run () =
  (* Cost-free plain semantics outside parallel_run. *)
  let c = Sim.make 1 in
  Sim.set c 2;
  check_bool "cas" true (Sim.compare_and_set c 2 3);
  check_int "faa" 3 (Sim.fetch_and_add c 4);
  check_int "value" 7 (Sim.get c)

(* ---------------- determinism ---------------- *)

let run_workload () =
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:6 (fun tid ->
      for i = 1 to 200 do
        if i mod (tid + 2) = 0 then ignore (Sim.fetch_and_add c 1)
        else ignore (Sim.get c)
      done);
  (Sim.makespan (), (Sim.stats ()).Sim.switches, Sim.get c)

let test_deterministic_replay () =
  Sim.configure ~seed:7 ~policy:Sim.Fair ();
  let a = run_workload () in
  Sim.configure ~seed:7 ~policy:Sim.Fair ();
  let b = run_workload () in
  check_bool "identical replay" true (a = b)

let test_seed_changes_random_schedule () =
  Sim.configure ~seed:1 ~policy:(Sim.Random_preempt 0.3) ();
  let a = run_workload () in
  Sim.configure ~seed:2 ~policy:(Sim.Random_preempt 0.3) ();
  let b = run_workload () in
  reset ();
  (* Almost surely different switch counts. *)
  let _, sa, _ = a and _, sb, _ = b in
  check_bool "schedules differ" true (sa <> sb)

(* ---------------- time & cost model ---------------- *)

let test_time_advances () =
  reset ();
  let t0 = Sim.time () in
  Sim.parallel_run ~num_threads:2 (fun _ ->
      for _ = 1 to 100 do
        Sim.tick 10
      done);
  let t1 = Sim.time () in
  check_bool "time advanced" true (t1 > t0);
  check_bool "makespan positive" true (Sim.makespan () > 0.)

let test_parallel_speedup_model () =
  (* Independent work on T threads should take ~the same simulated
     makespan as on 1 thread (perfect scaling of independent ticks). *)
  reset ();
  Sim.parallel_run ~num_threads:1 (fun _ -> Sim.tick 100_000);
  let t1 = Sim.makespan () in
  reset ();
  Sim.parallel_run ~num_threads:8 (fun _ -> Sim.tick 100_000);
  let t8 = Sim.makespan () in
  check_bool "independent work scales" true (t8 < t1 *. 1.5)

let test_contention_costs_more () =
  (* Hammering one atomic from 8 threads must cost more per op than from
     one thread (coherence misses). *)
  reset ();
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:1 (fun _ ->
      for _ = 1 to 8000 do
        ignore (Sim.fetch_and_add c 1)
      done);
  let t1 = Sim.makespan () in
  reset ();
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:8 (fun _ ->
      for _ = 1 to 1000 do
        ignore (Sim.fetch_and_add c 1)
      done);
  let t8 = Sim.makespan () in
  check_bool "contention penalized" true (t8 > t1 *. 2.)

let test_stats_populated () =
  reset ();
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:4 (fun _ ->
      for _ = 1 to 100 do
        ignore (Sim.get c);
        Sim.set c 1;
        ignore (Sim.compare_and_set c 1 2);
        Sim.tick 3;
        Sim.cpu_relax ()
      done);
  let st = Sim.stats () in
  check_bool "reads" true (st.Sim.reads >= 400);
  check_bool "writes" true (st.Sim.writes >= 400);
  check_bool "cas" true (st.Sim.cas >= 400);
  check_bool "ticks" true (st.Sim.ticks >= 1200);
  check_bool "hits+misses consistent" true (st.Sim.hits + st.Sim.misses > 0)

(* ---------------- exceptions & nesting ---------------- *)

let test_exception_propagates () =
  reset ();
  let raised =
    try
      Sim.parallel_run ~num_threads:4 (fun tid ->
          if tid = 2 then failwith "boom"
          else
            for _ = 1 to 100 do
              Sim.tick 1
            done);
      false
    with Sim.Thread_failure (2, Failure "boom") -> true
  in
  check_bool "failure surfaced with tid" true raised;
  (* The simulator must be reusable afterwards. *)
  let ok = ref false in
  Sim.parallel_run ~num_threads:2 (fun _ -> ok := true);
  check_bool "reusable" true !ok

let test_nested_run_rejected () =
  reset ();
  let rejected = ref false in
  Sim.parallel_run ~num_threads:1 (fun _ ->
      match Sim.parallel_run ~num_threads:1 (fun _ -> ()) with
      | () -> ()
      | exception Failure _ -> rejected := true);
  check_bool "nested rejected" true !rejected

let test_yield_voluntary () =
  reset ();
  (* Two fibers ping-pong via yields; both must finish. *)
  let log = ref [] in
  Sim.parallel_run ~num_threads:2 (fun tid ->
      for i = 1 to 3 do
        log := (tid, i) :: !log;
        Sim.yield ()
      done);
  check_int "six events" 6 (List.length !log)

let test_relax_n_charges_batch () =
  (* relax_n n must cost ~n times one cpu_relax (single event, same total
     virtual time up to jitter). *)
  reset ();
  Sim.parallel_run ~num_threads:1 (fun _ ->
      for _ = 1 to 100 do
        Sim.relax_n 512
      done);
  let batched = Sim.makespan () in
  reset ();
  Sim.parallel_run ~num_threads:1 (fun _ ->
      for _ = 1 to 51_200 do
        Sim.cpu_relax ()
      done);
  let singles = Sim.makespan () in
  check_bool "same order of magnitude" true
    (batched > singles *. 0.8 && batched < singles *. 1.2)

(* ---------------- trace ---------------- *)

let test_trace_records_events () =
  reset ();
  Sim.set_trace 100;
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:2 (fun _ ->
      for _ = 1 to 5 do
        ignore (Sim.fetch_and_add c 1);
        ignore (Sim.get c)
      done);
  let events = Sim.dump_trace () in
  Sim.set_trace 0;
  check_bool "events recorded" true (List.length events = 20);
  check_bool "virtual times non-negative" true
    (List.for_all (fun e -> e.Sim.tr_at >= 0.) events);
  check_bool "both tids appear" true
    (List.exists (fun e -> e.Sim.tr_tid = 0) events
    && List.exists (fun e -> e.Sim.tr_tid = 1) events);
  check_bool "kinds include faa and read" true
    (List.exists (fun e -> e.Sim.tr_kind = Sim.T_faa) events
    && List.exists (fun e -> e.Sim.tr_kind = Sim.T_read) events)

let test_trace_ring_overwrites () =
  reset ();
  Sim.set_trace 8;
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:1 (fun _ ->
      for _ = 1 to 100 do
        Sim.set c 1
      done);
  let events = Sim.dump_trace () in
  Sim.set_trace 0;
  check_int "capped at capacity" 8 (List.length events);
  (* Oldest-first ordering by virtual time within one thread. *)
  let sorted =
    List.sort (fun a b -> compare a.Sim.tr_at b.Sim.tr_at) events
  in
  check_bool "chronological" true (events = sorted)

let test_trace_disabled_by_default () =
  reset ();
  Sim.set_trace 0;
  let c = Sim.make 0 in
  Sim.parallel_run ~num_threads:1 (fun _ -> Sim.set c 1);
  check_int "no events" 0 (List.length (Sim.dump_trace ()))

let test_trace_kind_names () =
  Alcotest.(check string) "read" "read" (Sim.kind_name Sim.T_read);
  Alcotest.(check string) "cas-fail" "cas-fail" (Sim.kind_name Sim.T_cas_fail)

let () =
  Alcotest.run "sim"
    [
      ( "execution",
        [
          Alcotest.test_case "all threads run" `Quick test_runs_all_threads;
          Alcotest.test_case "single thread" `Quick test_single_thread;
          Alcotest.test_case "validation" `Quick test_num_threads_validation;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "faa exact" `Quick test_fetch_and_add_exact;
          Alcotest.test_case "cas retry counter" `Quick test_cas_mutual_exclusion;
          Alcotest.test_case "racy rmw loses updates" `Quick test_racy_increment_loses_updates;
          Alcotest.test_case "exchange" `Quick test_exchange;
          Alcotest.test_case "outside run" `Quick test_atomics_outside_run;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay" `Quick test_deterministic_replay;
          Alcotest.test_case "seeded schedules" `Quick test_seed_changes_random_schedule;
        ] );
      ( "time",
        [
          Alcotest.test_case "advances" `Quick test_time_advances;
          Alcotest.test_case "independent work scales" `Quick test_parallel_speedup_model;
          Alcotest.test_case "contention penalized" `Quick test_contention_costs_more;
          Alcotest.test_case "stats" `Quick test_stats_populated;
          Alcotest.test_case "relax_n batching" `Quick test_relax_n_charges_batch;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records events" `Quick test_trace_records_events;
          Alcotest.test_case "ring overwrite" `Quick test_trace_ring_overwrites;
          Alcotest.test_case "disabled" `Quick test_trace_disabled_by_default;
          Alcotest.test_case "kind names" `Quick test_trace_kind_names;
        ] );
      ( "control",
        [
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "nested rejected" `Quick test_nested_run_rejected;
          Alcotest.test_case "voluntary yield" `Quick test_yield_voluntary;
        ] );
    ]
