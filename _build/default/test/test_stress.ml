(* Concurrency stress tests: conservation (every inserted key deleted
   exactly once), rho-relaxation bounds under concurrent deletion, and
   schedule fuzzing with the simulator's random-preemption policy, plus
   real-domain runs for genuine parallel races. *)

open Helpers
module Sim = Klsm_backend.Sim
module Real = Klsm_backend.Real

(* ---------------- conservation ---------------- *)

(* Run a mixed workload of unique payloads on a queue spec; every payload
   must be delivered exactly once across all threads (take-exactly-once +
   spy duplication safety). *)
module Conservation (B : Klsm_backend.Backend_intf.S) = struct
  module R = Klsm_harness.Registry.Make (B)
  module Xo = Klsm_primitives.Xoshiro

  (* Returns (duplicates, lost). *)
  let run ~seed ~num_threads ~per_thread spec =
    let inst = R.make ~seed ~num_threads spec in
    let total = num_threads * per_thread in
    let got = Array.init num_threads (fun _ -> ref []) in
    B.parallel_run ~num_threads (fun tid ->
        let h = inst.R.register tid in
        let rng = Xo.create ~seed:(seed + (31 * tid)) in
        for i = 0 to per_thread - 1 do
          let payload = (tid * per_thread) + i in
          h.R.insert (Xo.int rng 100_000) payload;
          if i land 1 = 1 then begin
            match h.R.try_delete_min () with
            | Some (_, v) -> got.(tid) := v :: !(got.(tid))
            | None -> ()
          end
        done;
        (* Drain with spurious-failure retries. *)
        let misses = ref 0 in
        while !misses < 300 do
          match h.R.try_delete_min () with
          | Some (_, v) ->
              got.(tid) := v :: !(got.(tid));
              misses := 0
          | None -> incr misses
        done);
    let seen = Array.make total 0 in
    Array.iter
      (fun l -> List.iter (fun v -> seen.(v) <- seen.(v) + 1) !l)
      got;
    let dup = ref 0 and lost = ref 0 in
    Array.iter
      (fun c -> if c > 1 then incr dup else if c = 0 then incr lost)
      seen;
    (!dup, !lost)
end

module Cons_sim = Conservation (Sim)
module Cons_real = Conservation (Real)

let sim_specs =
  [
    Cons_sim.R.Klsm 0;
    Cons_sim.R.Klsm 16;
    Cons_sim.R.Klsm 1024;
    Cons_sim.R.Dlsm;
    Cons_sim.R.Linden;
    Cons_sim.R.Spraylist;
    Cons_sim.R.Multiq 2;
    Cons_sim.R.Heap_lock;
    Cons_sim.R.Wimmer_hybrid 32;
    Cons_sim.R.Wimmer_centralized;
  ]

let test_conservation_sim_fair () =
  Sim.configure ~seed:3 ~policy:Sim.Fair ();
  List.iter
    (fun spec ->
      let dup, lost =
        Cons_sim.run ~seed:3 ~num_threads:8 ~per_thread:500 spec
      in
      Alcotest.(check (pair int int))
        (Cons_sim.R.spec_name spec) (0, 0) (dup, lost))
    sim_specs

let test_conservation_sim_fuzzed_schedules () =
  (* The heart of the race hunt: many random preemption schedules on the
     k-LSM and DLSM (the structures with the trickiest publication
     protocols). *)
  List.iter
    (fun spec ->
      for seed = 1 to 8 do
        Sim.configure ~seed ~policy:(Sim.Random_preempt 0.25) ();
        let dup, lost =
          Cons_sim.run ~seed ~num_threads:4 ~per_thread:200 spec
        in
        Alcotest.(check (pair int int))
          (Printf.sprintf "%s seed %d" (Cons_sim.R.spec_name spec) seed)
          (0, 0) (dup, lost)
      done)
    [ Cons_sim.R.Klsm 8; Cons_sim.R.Dlsm; Cons_sim.R.Linden; Cons_sim.R.Spraylist ];
  Sim.configure ~policy:Sim.Fair ()

let test_conservation_real_domains () =
  List.iter
    (fun spec ->
      let dup, lost =
        Cons_real.run ~seed:11 ~num_threads:4 ~per_thread:5_000 spec
      in
      Alcotest.(check (pair int int))
        (Cons_real.R.spec_name spec) (0, 0) (dup, lost))
    [
      Cons_real.R.Klsm 64;
      Cons_real.R.Dlsm;
      Cons_real.R.Linden;
      Cons_real.R.Multiq 2;
    ]

(* ---------------- rho bound under concurrent deletion ---------------- *)

let test_rho_bound_concurrent_deletions () =
  (* Prefill with distinct keys 0..n-1, then T simulated threads only
     delete.  A delete that completes after [m] earlier deletions completed
     must return a key of rank < m + rho + T (rho skippable + T in-flight).
     Tracked inside the simulator where completions are sequential. *)
  let module K = Klsm_core.Klsm.Make (Sim) in
  let module Xo = Klsm_primitives.Xoshiro in
  List.iter
    (fun (t, k) ->
      Sim.configure ~seed:5 ~policy:Sim.Fair ();
      let rho = t * k in
      let n = 2_000 in
      let q = K.create_with ~k ~num_threads:t () in
      let handles = Array.make t None in
      (* Prefill via thread 0 only: all items are "old", none in local
         buffers of other threads. *)
      Sim.parallel_run ~num_threads:t (fun tid ->
          let h = K.register q tid in
          handles.(tid) <- Some h;
          if tid = 0 then begin
            let keys = Array.init n Fun.id in
            Xo.shuffle (Xo.create ~seed:9) keys;
            Array.iter (fun key -> K.insert h key ()) keys
          end);
      let completed = Sim.make 0 in
      let violations = Sim.make 0 in
      Sim.parallel_run ~num_threads:t (fun tid ->
          let h = match handles.(tid) with Some h -> h | None -> assert false in
          let continue_loop = ref true in
          let misses = ref 0 in
          while !continue_loop do
            match K.try_delete_min h with
            | Some (key, ()) ->
                misses := 0;
                let m = Sim.fetch_and_add completed 1 in
                (* keys are distinct 0..n-1, so rank at start = key; after m
                   completed deletions rank >= key - m. *)
                if key - m >= rho + t then ignore (Sim.fetch_and_add violations 1)
            | None ->
                incr misses;
                if !misses > 200 then continue_loop := false
          done);
      Alcotest.(check int)
        (Printf.sprintf "rho bound T=%d k=%d" t k)
        0 (Sim.get violations);
      Alcotest.(check int) "all deleted" n (Sim.get completed))
    [ (1, 0); (4, 8); (8, 64) ]

(* ---------------- substrate-level concurrent stress ---------------- *)

let test_shared_klsm_direct_stress () =
  (* Drive the shared component directly (no DistLSM batching): concurrent
     block inserts and takes from several fuzzed fibers; conservation of a
     unique payload space. *)
  let module S = Klsm_core.Shared_klsm.Make (Sim) in
  let module I = Klsm_core.Item.Make (Sim) in
  let module Blk = Klsm_core.Block.Make (Sim) in
  let module Xo = Klsm_primitives.Xoshiro in
  let hasher = Klsm_primitives.Tabular_hash.create ~seed:3 in
  let alive it = not (I.is_taken it) in
  for seed = 1 to 4 do
    Sim.configure ~seed ~policy:(Sim.Random_preempt 0.2) ();
    let q = S.create ~k:8 ~hasher ~alive () in
    let t = 4 and per = 40 and bsz = 4 in
    let got = Array.init t (fun _ -> ref []) in
    Sim.parallel_run ~num_threads:t (fun tid ->
        let h = S.register q ~tid ~rng:(Xo.create ~seed:(tid + 9)) in
        let rng = Xo.create ~seed:(100 + tid) in
        for b = 0 to per - 1 do
          (* Build a sorted block of unique payloads and insert it. *)
          let base = (tid * per * bsz) + (b * bsz) in
          let items =
            Array.init bsz (fun i -> I.make (Xo.int rng 1_000) (base + i))
          in
          Array.sort (fun a b -> compare (I.key b) (I.key a)) items;
          let blk = Blk.create_with_exemplar 2 items.(0) in
          Array.iter (fun it -> Blk.append ~alive blk it) items;
          S.insert h blk;
          (* One take attempt. *)
          match S.find_min h with
          | Some it when I.take it -> got.(tid) := I.value it :: !(got.(tid))
          | _ -> ()
        done;
        (* Drain. *)
        let misses = ref 0 in
        while !misses < 100 do
          match S.find_min h with
          | Some it when I.take it ->
              got.(tid) := I.value it :: !(got.(tid));
              misses := 0
          | Some _ -> ()
          | None -> incr misses
        done);
    let total = t * per * bsz in
    let seen = Array.make total 0 in
    Array.iter (fun l -> List.iter (fun v -> seen.(v) <- seen.(v) + 1) !l) got;
    Array.iteri
      (fun v c ->
        if c <> 1 then
          Alcotest.failf "shared stress seed %d: payload %d seen %d times"
            seed v c)
      seen
  done;
  Sim.configure ~policy:Sim.Fair ()

let test_skiplist_concurrent_inserts () =
  (* Fuzzed concurrent inserts must produce a sorted list containing every
     key exactly once (tests the lock-free linking under preemption). *)
  let module Sk = Klsm_baselines.Skiplist.Make (Sim) in
  let module Xo = Klsm_primitives.Xoshiro in
  for seed = 1 to 6 do
    Sim.configure ~seed ~policy:(Sim.Random_preempt 0.3) ();
    let sk = Sk.create ~dummy:(-1) () in
    let t = 4 and per = 100 in
    Sim.parallel_run ~num_threads:t (fun tid ->
        let rng = Xo.create ~seed:(seed + (13 * tid)) in
        for i = 0 to per - 1 do
          (* Unique keys so the expected alive list is exact. *)
          ignore (Sk.insert sk ~rng ((Xo.int rng 1_000) * 1_000 + (tid * per) + i) 0)
        done);
    let keys = List.map fst (Sk.to_alive_list sk) in
    if List.length keys <> t * per then
      Alcotest.failf "skiplist seed %d: %d keys, expected %d" seed
        (List.length keys) (t * per);
    if keys <> List.sort compare keys then
      Alcotest.failf "skiplist seed %d: not sorted" seed
  done;
  Sim.configure ~policy:Sim.Fair ()

(* ---------------- invariant checks under concurrency ---------------- *)

let test_dist_invariants_after_concurrent_run () =
  let module K = Klsm_core.Klsm.Make (Sim) in
  let module Xo = Klsm_primitives.Xoshiro in
  Sim.configure ~seed:2 ~policy:Sim.Fair ();
  let t = 6 in
  let q = K.create_with ~k:32 ~num_threads:t () in
  let handles = Array.make t None in
  Sim.parallel_run ~num_threads:t (fun tid ->
      let h = K.register q tid in
      handles.(tid) <- Some h;
      let rng = Xo.create ~seed:tid in
      for _ = 1 to 1_000 do
        if Xo.bool rng then K.insert h (Xo.int rng 10_000) ()
        else ignore (K.try_delete_min h)
      done);
  Array.iter
    (fun slot ->
      match slot with
      | Some h -> K.Dist_lsm.check_invariants (K.internal_dist h)
      | None -> ())
    handles

let () =
  Alcotest.run "stress"
    [
      ( "conservation",
        [
          Alcotest.test_case "sim fair (all queues)" `Slow test_conservation_sim_fair;
          Alcotest.test_case "sim fuzzed schedules" `Slow test_conservation_sim_fuzzed_schedules;
          Alcotest.test_case "real domains" `Slow test_conservation_real_domains;
        ] );
      ( "relaxation",
        [ Alcotest.test_case "rho bound concurrent" `Slow test_rho_bound_concurrent_deletions ] );
      ( "substrates",
        [
          Alcotest.test_case "shared k-LSM direct (fuzzed)" `Slow test_shared_klsm_direct_stress;
          Alcotest.test_case "skiplist inserts (fuzzed)" `Slow test_skiplist_concurrent_inserts;
        ] );
      ( "invariants",
        [ Alcotest.test_case "dist invariants" `Quick test_dist_invariants_after_concurrent_run ] );
    ]
