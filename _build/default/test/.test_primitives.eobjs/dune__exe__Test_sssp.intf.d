test/test_sssp.mli:
