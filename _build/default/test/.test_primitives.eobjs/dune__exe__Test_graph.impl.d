test/test_graph.ml: Alcotest Array Hashtbl Helpers Klsm_graph List QCheck2
