test/test_sssp.ml: Alcotest Helpers Klsm_backend Klsm_graph Klsm_harness Lazy List Printf
