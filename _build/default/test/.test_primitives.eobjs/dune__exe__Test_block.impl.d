test/test_block.ml: Alcotest Fun Helpers Klsm_backend Klsm_core Klsm_primitives List QCheck2
