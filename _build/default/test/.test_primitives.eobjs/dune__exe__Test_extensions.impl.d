test/test_extensions.ml: Alcotest Array Fun Helpers Klsm_backend Klsm_baselines Klsm_core Klsm_graph Klsm_primitives List Option
