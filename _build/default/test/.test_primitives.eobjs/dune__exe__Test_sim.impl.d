test/test_sim.ml: Alcotest Array Fun Helpers Klsm_backend List
