test/test_bnb.ml: Alcotest Array Helpers Klsm_backend Klsm_bnb List Printf QCheck2
