test/test_primitives.ml: Alcotest Array Fun Helpers Klsm_primitives List QCheck2
