test/test_dist_lsm.mli:
