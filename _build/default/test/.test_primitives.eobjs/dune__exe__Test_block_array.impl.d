test/test_block_array.ml: Alcotest Array Helpers Klsm_backend Klsm_core Klsm_primitives List QCheck2
