test/test_baselines.ml: Alcotest Fun Helpers Klsm_backend Klsm_baselines Klsm_harness Klsm_primitives List Option Printf
