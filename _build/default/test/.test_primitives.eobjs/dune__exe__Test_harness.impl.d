test/test_harness.ml: Alcotest Array Filename Hashtbl Helpers Klsm_backend Klsm_harness List Printf QCheck2 String Sys
