test/test_stress.ml: Alcotest Array Fun Helpers Klsm_backend Klsm_baselines Klsm_core Klsm_harness Klsm_primitives List Printf
