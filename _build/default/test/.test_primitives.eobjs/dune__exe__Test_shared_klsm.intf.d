test/test_shared_klsm.mli:
