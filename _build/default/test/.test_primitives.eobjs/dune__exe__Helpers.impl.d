test/helpers.ml: Alcotest Klsm_primitives List QCheck2 QCheck_alcotest
