test/test_klsm.mli:
