test/test_block_array.mli:
