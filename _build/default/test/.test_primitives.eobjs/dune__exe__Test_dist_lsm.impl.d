test/test_dist_lsm.ml: Alcotest Fun Helpers Klsm_backend Klsm_core Klsm_primitives List
