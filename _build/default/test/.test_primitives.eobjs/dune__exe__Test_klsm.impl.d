test/test_klsm.ml: Alcotest Array Fun Hashtbl Helpers Klsm_backend Klsm_core Klsm_primitives List Option QCheck2
