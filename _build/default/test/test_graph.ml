(* Tests for the graph substrate: CSR construction, the three generators,
   and the two sequential SSSP oracles (cross-checked against each other
   and against hand-computed instances). *)

open Helpers
module Graph = Klsm_graph.Graph
module Gen = Klsm_graph.Gen
module Dijkstra = Klsm_graph.Dijkstra
module Bellman_ford = Klsm_graph.Bellman_ford

(* ---------------- CSR ---------------- *)

let test_of_edges_basic () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 10); (0, 2, 20); (1, 2, 5) ] in
  check_int "nodes" 3 (Graph.num_nodes g);
  check_int "edges" 3 (Graph.num_edges g);
  check_int "deg 0" 2 (Graph.out_degree g 0);
  check_int "deg 2" 0 (Graph.out_degree g 2);
  let succ = ref [] in
  Graph.iter_succ g 0 ~f:(fun v w -> succ := (v, w) :: !succ);
  check_bool "succ set" true
    (List.sort compare !succ = [ (1, 10); (2, 20) ])

let test_of_edges_validation () =
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 5, 1) ]));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Graph.of_edges: negative weight") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 1, -1) ]))

let test_fold_edges () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 10); (1, 2, 5) ] in
  let total = Graph.fold_edges g ~init:0 ~f:(fun acc _ _ w -> acc + w) in
  check_int "weight sum" 15 total

let prop_edge_arrays_consistent =
  qtest "of_edge_arrays = of_edges" ~count:50
    QCheck2.Gen.(
      list_size (int_bound 100) (triple (int_bound 9) (int_bound 9) (int_bound 50)))
    (fun edges ->
      let n = 10 in
      let g1 = Graph.of_edges ~n edges in
      let src = Array.of_list (List.map (fun (u, _, _) -> u) edges) in
      let dst = Array.of_list (List.map (fun (_, v, _) -> v) edges) in
      let w = Array.of_list (List.map (fun (_, _, w) -> w) edges) in
      let g2 = Graph.of_edge_arrays ~n ~src ~dst ~w in
      let dump g =
        List.init n (fun u ->
            let acc = ref [] in
            Graph.iter_succ g u ~f:(fun v w -> acc := (v, w) :: !acc);
            List.sort compare !acc)
      in
      dump g1 = dump g2)

(* ---------------- generators ---------------- *)

let test_er_deterministic () =
  let g1 = Gen.erdos_renyi ~seed:4 ~n:100 ~p:0.1 () in
  let g2 = Gen.erdos_renyi ~seed:4 ~n:100 ~p:0.1 () in
  check_int "same edges" (Graph.num_edges g1) (Graph.num_edges g2);
  check_bool "same dijkstra" true
    ((Dijkstra.run g1 ~source:0).Dijkstra.dist
    = (Dijkstra.run g2 ~source:0).Dijkstra.dist)

let test_er_edge_count () =
  (* E[arcs] = 2 * p * n(n-1)/2; allow a generous tolerance. *)
  let n = 200 and p = 0.2 in
  let g = Gen.erdos_renyi ~seed:7 ~n ~p () in
  let expected = p *. float_of_int (n * (n - 1)) in
  let got = float_of_int (Graph.num_edges g) in
  check_bool "within 15%" true
    (got > 0.85 *. expected && got < 1.15 *. expected)

let test_er_symmetric () =
  let g = Gen.erdos_renyi ~seed:11 ~n:50 ~p:0.3 () in
  let arcs = Hashtbl.create 64 in
  Graph.fold_edges g ~init:() ~f:(fun () u v w -> Hashtbl.replace arcs (u, v) w);
  Hashtbl.iter
    (fun (u, v) w ->
      match Hashtbl.find_opt arcs (v, u) with
      | Some w' -> check_int "mirrored weight" w w'
      | None -> Alcotest.fail "missing mirror arc")
    arcs

let test_er_weights_in_range () =
  let g = Gen.erdos_renyi ~seed:3 ~n:50 ~p:0.5 ~max_weight:100 () in
  Graph.fold_edges g ~init:() ~f:(fun () _ _ w ->
      check_bool "weight in [1,100]" true (w >= 1 && w <= 100))

let test_er_extremes () =
  let empty = Gen.erdos_renyi ~seed:1 ~n:10 ~p:0. () in
  check_int "p=0 no edges" 0 (Graph.num_edges empty);
  let full = Gen.erdos_renyi ~seed:1 ~n:10 ~p:1. () in
  check_int "p=1 complete" (10 * 9) (Graph.num_edges full)

let test_grid () =
  let g = Gen.grid ~seed:5 ~width:4 ~height:3 () in
  check_int "nodes" 12 (Graph.num_nodes g);
  (* Arcs: 2 * (3*(4-1) + 4*(3-1)) = 2 * 17. *)
  check_int "arcs" 34 (Graph.num_edges g)

let test_rmat () =
  let g = Gen.rmat ~seed:5 ~scale:8 ~edge_factor:4 () in
  check_int "nodes" 256 (Graph.num_nodes g);
  check_bool "arcs bounded" true (Graph.num_edges g <= 2 * 4 * 256);
  (* Power-law-ish: the max degree should far exceed the mean. *)
  let max_deg = ref 0 in
  for u = 0 to 255 do
    max_deg := max !max_deg (Graph.out_degree g u)
  done;
  check_bool "skewed degrees" true (!max_deg > 2 * Graph.num_edges g / 256)

(* ---------------- sequential oracles ---------------- *)

let test_dijkstra_tiny () =
  (* 0 -> 1 (1), 1 -> 2 (1), 0 -> 2 (5): best 0->2 is 2. *)
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (1, 2, 1); (0, 2, 5) ] in
  let r = Dijkstra.run g ~source:0 in
  check_int "d0" 0 r.Dijkstra.dist.(0);
  check_int "d1" 1 r.Dijkstra.dist.(1);
  check_int "d2" 2 r.Dijkstra.dist.(2);
  check_int "unreachable" max_int r.Dijkstra.dist.(3);
  check_int "settled" 3 r.Dijkstra.settled

let prop_dijkstra_equals_bellman_ford =
  qtest "dijkstra = bellman-ford on random graphs" ~count:50
    QCheck2.Gen.(pair int (int_range 2 60))
    (fun (seed, n) ->
      let g = Gen.erdos_renyi ~seed ~n ~p:0.15 ~max_weight:1000 () in
      (Dijkstra.run g ~source:0).Dijkstra.dist = Bellman_ford.run g ~source:0)

let prop_dijkstra_triangle_inequality =
  qtest "settled distances satisfy edge relaxations" ~count:30
    QCheck2.Gen.int
    (fun seed ->
      let g = Gen.erdos_renyi ~seed ~n:60 ~p:0.2 ~max_weight:1000 () in
      let d = (Dijkstra.run g ~source:0).Dijkstra.dist in
      Graph.fold_edges g ~init:true ~f:(fun acc u v w ->
          acc && (d.(u) = max_int || d.(v) <= d.(u) + w)))

let test_dijkstra_source_validation () =
  let g = Graph.of_edges ~n:2 [] in
  Alcotest.check_raises "source" (Invalid_argument "Dijkstra.run: source")
    (fun () -> ignore (Dijkstra.run g ~source:5))

let () =
  Alcotest.run "graph"
    [
      ( "csr",
        [
          Alcotest.test_case "of_edges" `Quick test_of_edges_basic;
          Alcotest.test_case "validation" `Quick test_of_edges_validation;
          Alcotest.test_case "fold_edges" `Quick test_fold_edges;
          prop_edge_arrays_consistent;
        ] );
      ( "generators",
        [
          Alcotest.test_case "er deterministic" `Quick test_er_deterministic;
          Alcotest.test_case "er edge count" `Quick test_er_edge_count;
          Alcotest.test_case "er symmetric" `Quick test_er_symmetric;
          Alcotest.test_case "er weights" `Quick test_er_weights_in_range;
          Alcotest.test_case "er extremes" `Quick test_er_extremes;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "rmat" `Quick test_rmat;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "tiny instance" `Quick test_dijkstra_tiny;
          prop_dijkstra_equals_bellman_ford;
          prop_dijkstra_triangle_inequality;
          Alcotest.test_case "validation" `Quick test_dijkstra_source_validation;
        ] );
    ]
