(* Tests for the shared k-LSM (paper Listing 3): snapshot/push protocol,
   relaxed find_min bounds, consolidation on deleted minima, and multi-
   handle interleavings driven deterministically from one thread. *)

open Helpers
module B = Klsm_backend.Real
module Item = Klsm_core.Item.Make (B)
module Block = Klsm_core.Block.Make (B)
module Shared = Klsm_core.Shared_klsm.Make (B)
module Bloom = Klsm_primitives.Bloom
module Tabular_hash = Klsm_primitives.Tabular_hash
module Xoshiro = Klsm_primitives.Xoshiro

let hasher = Tabular_hash.create ~seed:3
let alive it = not (Item.is_taken it)

let make ?(k = 8) () = Shared.create ~k ~hasher ~alive ()

let handle ?(tid = 0) q =
  Shared.register q ~tid ~rng:(Xoshiro.create ~seed:(tid + 1))

let block_of_keys ?(filter = Bloom.empty) keys =
  match keys with
  | [] -> invalid_arg "block_of_keys"
  | k0 :: _ ->
      let sorted = List.sort (fun a b -> compare b a) keys in
      let level = Klsm_primitives.Bits.ceil_log2 (List.length keys) in
      let b = Block.create_with_exemplar level (Item.make k0 ()) in
      List.iter (fun k -> Block.append ~alive b (Item.make k ())) sorted;
      b.Block.filter <- filter;
      b

(* Exact-ish delete-min through the shared component only. *)
let rec delete_min h =
  match Shared.find_min h with
  | None -> None
  | Some it -> if Item.take it then Some (Item.key it) else delete_min h

let test_empty () =
  let q = make () in
  let h = handle q in
  check_bool "empty" true (Shared.find_min h = None);
  check_int "size 0" 0 (Shared.approximate_size q)

let test_insert_then_find () =
  let q = make () in
  let h = handle q in
  Shared.insert h (block_of_keys [ 9; 4; 7 ]);
  (match Shared.find_min h with
  | Some it -> check_bool "among k+1 smallest" true (Item.key it <= 9)
  | None -> Alcotest.fail "non-empty");
  check_int "size 3" 3 (Shared.approximate_size q)

let test_k0_is_exact () =
  (* With k = 0 the candidate set is exactly the minimum. *)
  let q = make ~k:0 () in
  let h = handle q in
  Shared.insert h (block_of_keys [ 10; 30 ]);
  Shared.insert h (block_of_keys [ 20; 40 ]);
  check_bool "min is 10" true (delete_min h = Some 10);
  check_bool "then 20" true (delete_min h = Some 20);
  check_bool "then 30" true (delete_min h = Some 30);
  check_bool "then 40" true (delete_min h = Some 40);
  check_bool "then empty" true (delete_min h = None)

let prop_find_min_within_bound =
  qtest "find_min within the k+1 smallest" ~count:100
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 8)
           (list_size (int_range 1 30) (int_bound 10_000)))
        (int_bound 16) int)
    (fun (lists, k, seed) ->
      let q = Shared.create ~k ~hasher ~alive () in
      let h = Shared.register q ~tid:0 ~rng:(Xoshiro.create ~seed) in
      List.iter (fun keys -> Shared.insert h (block_of_keys keys)) lists;
      let all = List.sort compare (List.concat lists) in
      let cutoff = List.nth all (min k (List.length all - 1)) in
      match Shared.find_min h with
      | None -> false
      | Some it -> Item.key it <= cutoff)

let test_drain_is_relaxed_sorted () =
  (* Draining with relaxation k: each returned key exceeds at most k
     not-yet-returned smaller keys; in particular the sequence of returned
     keys can locally disorder by at most the relaxation window.  We check
     the multiset and the window bound. *)
  let k = 4 in
  let q = make ~k () in
  let h = handle q in
  let keys = List.init 64 (fun i -> i) in
  List.iteri
    (fun i _ -> Shared.insert h (block_of_keys [ List.nth keys i ]))
    keys;
  let returned = ref [] in
  let rec drain () =
    match delete_min h with
    | Some key ->
        returned := key :: !returned;
        drain ()
    | None -> ()
  in
  drain ();
  let got = List.rev !returned in
  check_int "all drained" 64 (List.length got);
  check_bool "multiset" true (List.sort compare got = keys);
  (* Window bound: the i-th returned key is among the first i + k + 1 keys
     in sorted order (single thread, T = 1 => rho = k). *)
  List.iteri
    (fun i key -> check_bool "rho window" true (key <= i + k + 1))
    got

let test_consolidation_publishes_cleanup () =
  let q = make ~k:2 () in
  let h = handle q in
  Shared.insert h (block_of_keys (List.init 16 Fun.id));
  (* Exhaust: every delete eventually triggers consolidations; the shared
     array must end empty (None) and stay so. *)
  let n = ref 0 in
  let rec drain () =
    match delete_min h with
    | Some _ ->
        incr n;
        drain ()
    | None -> ()
  in
  drain ();
  check_int "all 16" 16 !n;
  check_int "shared empty" 0 (Shared.approximate_size q);
  check_bool "peek None" true (Shared.peek_shared q = None)

let test_two_handles_contend () =
  (* Deterministic interleaving of two handles from one thread: pushes by
     one handle invalidate the other's snapshot; the retry logic must make
     both inserts land. *)
  let q = make ~k:4 () in
  let h1 = handle ~tid:0 q and h2 = handle ~tid:1 q in
  Shared.insert h1 (block_of_keys [ 1; 2 ]);
  Shared.insert h2 (block_of_keys [ 3; 4 ]);
  Shared.insert h1 (block_of_keys [ 5; 6 ]);
  check_int "six items" 6 (Shared.approximate_size q);
  (* h2's stale snapshot must refresh and see everything. *)
  let seen = ref [] in
  let rec drain () =
    match delete_min h2 with
    | Some key ->
        seen := key :: !seen;
        drain ()
    | None -> ()
  in
  drain ();
  check_bool "h2 drains all" true
    (List.sort compare !seen = [ 1; 2; 3; 4; 5; 6 ])

let test_set_k_runtime () =
  let q = make ~k:0 () in
  check_int "initial" 0 (Shared.get_k q);
  Shared.set_k q 128;
  check_int "updated" 128 (Shared.get_k q);
  Alcotest.check_raises "negative" (Invalid_argument "Shared_klsm.set_k: k < 0")
    (fun () -> Shared.set_k q (-1))

let test_local_ordering_across_merges () =
  (* Items inserted by tid 0 keep their bloom attribution across merges, so
     tid 0 always sees its own minimum. *)
  let q = make ~k:8 () in
  let h0 = handle ~tid:0 q and h9 = handle ~tid:9 q in
  let mine = Bloom.singleton ~hasher 0 in
  let theirs = Bloom.singleton ~hasher 9 in
  Shared.insert h9 (block_of_keys ~filter:theirs [ 100; 101; 102; 103 ]);
  Shared.insert h0 (block_of_keys ~filter:mine [ 50 ]);
  (* Force a merge by same-level collision. *)
  Shared.insert h9 (block_of_keys ~filter:theirs [ 200 ]);
  for _ = 1 to 20 do
    match Shared.find_min h0 with
    | Some it -> check_int "my min visible" 50 (Item.key it)
    | None -> Alcotest.fail "non-empty"
  done

let () =
  Alcotest.run "shared_klsm"
    [
      ( "basics",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_then_find;
          Alcotest.test_case "k=0 exact" `Quick test_k0_is_exact;
          Alcotest.test_case "set_k" `Quick test_set_k_runtime;
        ] );
      ( "relaxation",
        [
          prop_find_min_within_bound;
          Alcotest.test_case "drain window" `Quick test_drain_is_relaxed_sorted;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "consolidation" `Quick test_consolidation_publishes_cleanup;
          Alcotest.test_case "two handles" `Quick test_two_handles_contend;
          Alcotest.test_case "local ordering" `Quick test_local_ordering_across_merges;
        ] );
    ]
