(* CLI for the parallel branch-and-bound solver (knapsack / TSP) on the
   k-LSM — the application class the paper's introduction motivates.

   Examples:
     bnb --problem knapsack --n 30 --threads 1,2,10,40
     bnb --problem tsp --n 12 --k 0 --mode real --threads 1,2 *)

let run ~mode ~problem ~n ~k ~threads ~seed =
  let module Go (B : Klsm_backend.Backend_intf.S) = struct
    module E = Klsm_bnb.Engine.Make (B)

    let main () =
      let pack, oracle, describe =
        match problem with
        | `Knapsack ->
            let inst = Klsm_bnb.Knapsack.random ~seed ~n () in
            ( (fun () -> Klsm_bnb.Knapsack.problem inst),
              (fun best ->
                (Klsm_bnb.Knapsack.profit_of_best inst best,
                 Klsm_bnb.Knapsack.dp_optimum inst)),
              Printf.sprintf "knapsack, %d items (DP oracle)" n )
        | `Tsp ->
            let inst = Klsm_bnb.Tsp.random ~seed ~n () in
            ( (fun () -> Klsm_bnb.Tsp.problem inst),
              (fun best -> (best, Klsm_bnb.Tsp.held_karp inst)),
              Printf.sprintf "tsp, %d cities (Held-Karp oracle)" n )
      in
      Klsm_harness.Report.section
        (Printf.sprintf "Branch & bound: %s, k=%d, backend %s" describe k B.name);
      let rows =
        List.map
          (fun t ->
            let stats = E.solve ~seed ~k ~num_threads:t (pack ()) in
            let value, expect = oracle stats.E.best in
            [
              string_of_int t;
              string_of_int value;
              (if value = expect then "yes" else "NO");
              string_of_int stats.E.expanded;
              string_of_int stats.E.pruned;
              Printf.sprintf "%.2f" (stats.E.wall *. 1e3);
            ])
          threads
      in
      Klsm_harness.Report.table
        ~header:[ "threads"; "value"; "optimal"; "expanded"; "pruned"; "time(ms)" ]
        rows
  end in
  match mode with
  | `Sim ->
      let module M = Go (Klsm_backend.Sim) in
      M.main ()
  | `Real ->
      let module M = Go (Klsm_backend.Real) in
      M.main ()

open Cmdliner

let mode =
  Arg.(value & opt (enum [ ("sim", `Sim); ("real", `Real) ]) `Sim & info [ "mode" ] ~doc:"Backend.")

let problem =
  Arg.(
    value
    & opt (enum [ ("knapsack", `Knapsack); ("tsp", `Tsp) ]) `Knapsack
    & info [ "problem" ] ~doc:"knapsack or tsp.")

let n = Arg.(value & opt int 28 & info [ "n"; "size" ] ~doc:"Items / cities.")
let k = Arg.(value & opt int 64 & info [ "k"; "relaxation" ] ~doc:"Relaxation parameter.")
let threads = Arg.(value & opt (list int) [ 1; 2; 5; 10; 20 ] & info [ "threads" ] ~doc:"Thread counts.")
let seed = Arg.(value & opt int 9 & info [ "seed" ] ~doc:"Instance seed.")

let cmd =
  let doc = "parallel branch-and-bound on the k-LSM" in
  Cmd.v (Cmd.info "bnb" ~doc)
    Term.(
      const (fun mode problem n k threads seed ->
          run ~mode ~problem ~n ~k ~threads ~seed)
      $ mode $ problem $ n $ k $ threads $ seed)

let () = exit (Cmd.eval cmd)
