(* Parallel single-source shortest paths with the k-LSM — the paper's
   flagship application (§6, Figure 4).

   Run with:  dune exec examples/sssp_example.exe

   A label-correcting Dijkstra: instead of decrease-key, improved tentative
   distances are simply re-inserted and stale queue entries are dropped via
   the k-LSM's lazy-deletion hook (§4.5).  We run it on the simulator
   backend so the example shows 8-thread behaviour even on a 1-core
   machine; switch Sim to Real below for OS threads. *)

module B = Klsm_backend.Sim
module Sssp = Klsm_graph.Sssp.Make (B)
module Klsm = Klsm_core.Klsm.Make (B)

let () =
  let threads = 8 in
  (* A 40x40 grid world with random positive edge weights. *)
  let graph = Klsm_graph.Gen.grid ~seed:7 ~width:40 ~height:40 ~max_weight:100 () in
  Printf.printf "graph: %d nodes, %d arcs\n"
    (Klsm_graph.Graph.num_nodes graph)
    (Klsm_graph.Graph.num_edges graph);

  (* Sequential reference for comparison. *)
  let reference = Klsm_graph.Dijkstra.run graph ~source:0 in

  let stats =
    Sssp.run graph ~source:0 ~num_threads:threads
      ~setup:(fun ~dist ~drop ->
        (* The queue drops entries whose distance is out of date; each
           dropped entry returns its termination-detection token. *)
        let q =
          Klsm.create_with ~k:256 ~num_threads:threads
            ~should_delete:(Sssp.should_delete_of dist)
            ~on_lazy_delete:(fun k v -> drop k v)
            ()
        in
        fun tid ->
          let h = Klsm.register q tid in
          {
            Sssp.insert = (fun d v -> Klsm.insert h d v);
            try_delete_min = (fun () -> Klsm.try_delete_min h);
          })
      ()
  in
  let dist = Sssp.distances stats in
  let ok = dist = reference.Klsm_graph.Dijkstra.dist in
  Printf.printf "distances match sequential Dijkstra: %b\n" ok;
  Printf.printf "processed %d node relaxations (%+d vs sequential), %d stale pops\n"
    stats.Sssp.iterations
    (stats.Sssp.iterations - reference.Klsm_graph.Dijkstra.settled)
    stats.Sssp.stale;
  Printf.printf "simulated %d-thread wall time: %.2f ms\n" threads
    (stats.Sssp.wall *. 1e3);
  (* A couple of spot distances. *)
  let n = Klsm_graph.Graph.num_nodes graph in
  Printf.printf "dist[source]=%d  dist[last]=%d\n" dist.(0) dist.(n - 1);
  if not ok then exit 1
