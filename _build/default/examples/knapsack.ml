(* Parallel branch-and-bound 0/1 knapsack on the k-LSM.

   Run with:  dune exec examples/knapsack.exe

   Branch-and-bound is one of the paper's motivating applications (§1): a
   priority queue orders subproblems by their optimistic bound so the most
   promising are expanded first.  Relaxed delete-min is a natural fit —
   expanding the (rho+1)-best node instead of the best costs a little extra
   search, never correctness, because pruning uses the shared incumbent.

   Keys must be small-is-urgent ints, so a node with optimistic profit
   bound B is inserted with key (BIG - B). *)

module B = Klsm_backend.Real
module Klsm = Klsm_core.Klsm.Make (B)
module Xoshiro = Klsm_primitives.Xoshiro

type item = { weight : int; profit : int }

(* Fractional-relaxation upper bound for items [idx..), given remaining
   capacity.  Items must be sorted by profit/weight ratio descending. *)
let upper_bound items idx capacity profit =
  let n = Array.length items in
  let rec go i cap acc =
    if i >= n || cap = 0 then acc
    else begin
      let it = items.(i) in
      if it.weight <= cap then go (i + 1) (cap - it.weight) (acc + it.profit)
      else acc + (it.profit * cap / it.weight)
    end
  in
  go idx capacity profit

(* Search node: next item index, remaining capacity, profit so far.
   Encoded in the payload; the key encodes the bound. *)
type node = { idx : int; capacity : int; profit : int }

let big = 1 lsl 40

let () =
  let num_threads = 4 in
  let rng = Xoshiro.create ~seed:11 in
  let n_items = 26 in
  let items =
    Array.init n_items (fun _ ->
        {
          weight = Xoshiro.int_in rng ~lo:5 ~hi:60;
          profit = Xoshiro.int_in rng ~lo:5 ~hi:100;
        })
  in
  (* Sort by density for the bound function. *)
  Array.sort
    (fun (a : item) (b : item) ->
      compare (b.profit * a.weight) (a.profit * b.weight))
    items;
  let capacity = 3 * Array.fold_left (fun s i -> s + i.weight) 0 items / 10 in

  (* Exact reference by plain DP over capacity. *)
  let dp = Array.make (capacity + 1) 0 in
  Array.iter
    (fun it ->
      for c = capacity downto it.weight do
        dp.(c) <- max dp.(c) (dp.(c - it.weight) + it.profit)
      done)
    items;
  let exact = dp.(capacity) in

  (* Parallel branch and bound. *)
  let q = Klsm.create_with ~k:64 ~num_threads () in
  let incumbent = Atomic.make 0 in
  let expanded = Atomic.make 0 in
  let in_flight = Atomic.make 1 in
  let root = { idx = 0; capacity; profit = 0 } in
  B.parallel_run ~num_threads (fun tid ->
      let h = Klsm.register q tid in
      if tid = 0 then
        Klsm.insert h (big - upper_bound items 0 capacity 0) root;
      let push node =
        let bound = upper_bound items node.idx node.capacity node.profit in
        if bound > Atomic.get incumbent then begin
          Atomic.incr in_flight;
          Klsm.insert h (big - bound) node
        end
      in
      let rec improve_incumbent p =
        let cur = Atomic.get incumbent in
        if p > cur && not (Atomic.compare_and_set incumbent cur p) then
          improve_incumbent p
      in
      let rec loop () =
        match Klsm.try_delete_min h with
        | Some (key, node) ->
            let bound = big - key in
            if bound > Atomic.get incumbent then begin
              Atomic.incr expanded;
              if node.idx >= n_items then improve_incumbent node.profit
              else begin
                improve_incumbent node.profit;
                let it = items.(node.idx) in
                (* Branch: skip item, take item (if it fits). *)
                push { node with idx = node.idx + 1 };
                if it.weight <= node.capacity then
                  push
                    {
                      idx = node.idx + 1;
                      capacity = node.capacity - it.weight;
                      profit = node.profit + it.profit;
                    }
              end
            end;
            Atomic.decr in_flight;
            loop ()
        | None -> if Atomic.get in_flight > 0 then (Domain.cpu_relax (); loop ())
      in
      loop ());
  Printf.printf "items=%d capacity=%d\n" n_items capacity;
  Printf.printf "branch-and-bound optimum: %d (exact DP: %d) %s\n"
    (Atomic.get incumbent) exact
    (if Atomic.get incumbent = exact then "OK" else "MISMATCH");
  Printf.printf "nodes expanded: %d (by %d threads)\n" (Atomic.get expanded)
    num_threads;
  if Atomic.get incumbent <> exact then exit 1
