(* Quickstart: the k-LSM API in two minutes.

   Run with:  dune exec examples/quickstart.exe

   The k-LSM is a concurrent priority queue whose delete-min may return any
   of the (T*k + 1) smallest keys (T threads, runtime-configurable k), in
   exchange for scalability.  Keys inserted and deleted by the same thread
   still come back in exact priority order (local ordering semantics). *)

module Klsm = Klsm_core.Klsm.Default (* = Make (Klsm_backend.Real) *)

let () =
  (* One queue for up to 4 threads, relaxation k = 16.  Payloads are
     arbitrary; here strings. *)
  let q = Klsm.create_with ~k:16 ~num_threads:4 () in

  (* Each thread registers once with its dense id and keeps the handle. *)
  let h0 = Klsm.register q 0 in

  (* Single-threaded use behaves exactly like a strict priority queue. *)
  Klsm.insert h0 30 "thirty";
  Klsm.insert h0 10 "ten";
  Klsm.insert h0 20 "twenty";
  (match Klsm.try_delete_min h0 with
  | Some (key, v) -> Printf.printf "first delete-min: %d (%s)\n" key v
  | None -> assert false);

  (* Concurrent use: spawn domains, one handle each. *)
  let deleted = Atomic.make 0 in
  Klsm_backend.Real.parallel_run ~num_threads:4 (fun tid ->
      let h = if tid = 0 then h0 else Klsm.register q tid in
      (* Everyone inserts a slice of keys... *)
      for i = 1 to 1000 do
        Klsm.insert h ((tid * 10_000) + i) "payload"
      done;
      (* ...and everyone deletes; relaxed delete-min spreads contention. *)
      let rec drain () =
        match Klsm.try_delete_min h with
        | Some _ ->
            Atomic.incr deleted;
            drain ()
        | None -> ()  (* possibly spurious; a real app would retry *)
      in
      drain ());
  Printf.printf "concurrently deleted %d of %d keys (+2 from above)\n"
    (Atomic.get deleted) (4 * 1000);

  (* The relaxation is runtime-configurable. *)
  Klsm.set_k q 1024;
  Printf.printf "k is now %d; rho = T*k = %d\n" (Klsm.get_k q) (4 * 1024);

  (* Remaining keys drain in (relaxed) ascending order. *)
  let rec drain last n =
    match Klsm.try_delete_min h0 with
    | Some (key, _) -> drain (max last key) (n + 1)
    | None -> (last, n)
  in
  let last, n = drain (-1) 0 in
  Printf.printf "drained %d leftover keys, largest %d\n" n last
