(* A* pathfinding on a weighted grid with the Keyed (decrease-key) wrapper.

   Run with:  dune exec examples/astar.exe

   A* is the classic decrease-key consumer: when a better path to an open
   node is found, its f-score must drop.  The k-LSM has no decrease-key —
   the paper's §4.5 workaround (delete + reinsert via lazy deletion) is
   packaged in Klsm_core.Keyed, which this example exercises: each grid
   cell is a Keyed.element, improvements call decrease_key, and stale queue
   entries evaporate inside the queue.

   With an admissible heuristic and an *exact* queue, A* pops each node at
   most once.  A relaxed queue may pop a node before its final g-score is
   settled; as in label-correcting SSSP this costs re-expansions, never
   correctness — we verify the path cost against plain Dijkstra. *)

module Keyed = Klsm_core.Keyed.Default
module Xoshiro = Klsm_primitives.Xoshiro

let width = 120
let height = 80

let () =
  let rng = Xoshiro.create ~seed:9 in
  (* Cell terrain costs 1..9; a few impassable walls. *)
  let cost = Array.init (width * height) (fun _ -> Xoshiro.int_in rng ~lo:1 ~hi:9) in
  let wall = Array.init (width * height) (fun _ -> Xoshiro.float rng < 0.2) in
  let id x y = (y * width) + x in
  wall.(id 0 0) <- false;
  wall.(id (width - 1) (height - 1)) <- false;
  let start = id 0 0 and goal = id (width - 1) (height - 1) in

  (* Build the graph: moving into a cell costs its terrain. *)
  let edges = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if not wall.(id x y) then
        List.iter
          (fun (dx, dy) ->
            let nx = x + dx and ny = y + dy in
            if nx >= 0 && nx < width && ny >= 0 && ny < height
               && not wall.(id nx ny)
            then edges := (id x y, id nx ny, cost.(id nx ny)) :: !edges)
          [ (1, 0); (-1, 0); (0, 1); (0, -1) ]
    done
  done;
  let graph = Klsm_graph.Graph.of_edges ~n:(width * height) !edges in

  (* Reference: plain Dijkstra. *)
  let reference = (Klsm_graph.Dijkstra.run graph ~source:start).Klsm_graph.Dijkstra.dist in

  (* A* with the Keyed queue; heuristic = Manhattan distance (min terrain
     cost 1 per step => admissible). *)
  let h node =
    let x = node mod width and y = node / width in
    abs (x - (width - 1)) + abs (y - (height - 1))
  in
  let num_threads = 2 in
  let g = Array.init (width * height) (fun _ -> Atomic.make max_int) in
  let in_flight = Atomic.make 1 in
  let expansions = Atomic.make 0 in
  let q =
    Keyed.create ~k:32
      ~on_entry_consumed:(fun _ _ -> Atomic.decr in_flight)
      ~num_threads ()
  in
  let elements = Array.init (width * height) (fun v -> Keyed.element v) in
  Atomic.set g.(start) 0;
  let goal_cost = Atomic.make max_int in
  Klsm_backend.Real.parallel_run ~num_threads (fun tid ->
      let hq = Keyed.register q tid in
      if tid = 0 then ignore (Keyed.insert hq elements.(start) (h start));
      let rec loop () =
        match Keyed.try_delete_min hq with
        | Some (el, _f) ->
            let u = Keyed.value el in
            let gu = Atomic.get g.(u) in
            (* Prune expansions that cannot improve on the incumbent. *)
            if gu + h u < Atomic.get goal_cost then begin
              Atomic.incr expansions;
              if u = goal then begin
                let rec improve () =
                  let cur = Atomic.get goal_cost in
                  if gu < cur && not (Atomic.compare_and_set goal_cost cur gu)
                  then improve ()
                in
                improve ()
              end
              else
                Klsm_graph.Graph.iter_succ graph u ~f:(fun v w ->
                    let ng = gu + w in
                    let rec relax () =
                      let cur = Atomic.get g.(v) in
                      if ng < cur then
                        if Atomic.compare_and_set g.(v) cur ng then begin
                          Atomic.incr in_flight;
                          (* A concurrent, even better relaxation may have
                             queued the element already; return the token. *)
                          if not (Keyed.insert hq elements.(v) (ng + h v))
                          then Atomic.decr in_flight
                        end
                        else relax ()
                    in
                    relax ())
            end;
            Atomic.decr in_flight;
            loop ()
        | None ->
            if Atomic.get in_flight > 0 then begin
              Domain.cpu_relax ();
              loop ()
            end
      in
      loop ());

  let astar_cost = Atomic.get goal_cost in
  let exact = reference.(goal) in
  Printf.printf "grid %dx%d, %d arcs\n" width height
    (Klsm_graph.Graph.num_edges graph);
  Printf.printf "A* path cost: %d (dijkstra: %d) %s\n" astar_cost exact
    (if astar_cost = exact then "OK" else "MISMATCH");
  Printf.printf "expansions: %d (nodes: %d)\n" (Atomic.get expansions)
    (width * height);
  if astar_cost <> exact then exit 1
