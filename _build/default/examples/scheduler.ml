(* A prioritized work scheduler on the k-LSM.

   Run with:  dune exec examples/scheduler.exe

   The paper comes out of task-scheduling research (Wimmer et al.): worker
   threads pull the most urgent ready task from a shared relaxed priority
   queue.  This example schedules a fork-join style DAG: finishing a task
   may release successors with computed priorities (deadline-driven:
   earliest deadline first).  Relaxation means a worker may grab the
   rho+1-most-urgent task — fine for soft priorities — while local ordering
   keeps each thread's own spawned chain in order.

   We verify: every task runs exactly once, and no task runs before its
   dependencies completed. *)

module B = Klsm_backend.Real
module Klsm = Klsm_core.Klsm.Make (B)
module Xoshiro = Klsm_primitives.Xoshiro

let () =
  let num_threads = 4 in
  let n_tasks = 5000 in
  let rng = Xoshiro.create ~seed:23 in
  (* Random DAG: each task depends on up to 3 earlier tasks. *)
  let deps =
    Array.init n_tasks (fun i ->
        if i = 0 then [||]
        else
          Array.init (Xoshiro.int rng (min 4 i)) (fun _ -> Xoshiro.int rng i))
  in
  let deadline = Array.init n_tasks (fun _ -> Xoshiro.int rng 1_000_000) in
  (* Dependents adjacency + pending-dependency counters. *)
  let dependents = Array.make n_tasks [] in
  let pending = Array.init n_tasks (fun i ->
      let uniq = List.sort_uniq compare (Array.to_list deps.(i)) in
      List.iter (fun d -> dependents.(d) <- i :: dependents.(d)) uniq;
      Atomic.make (List.length uniq))
  in
  let completed = Array.init n_tasks (fun _ -> Atomic.make false) in
  let runs = Array.init n_tasks (fun _ -> Atomic.make 0) in
  let remaining = Atomic.make n_tasks in
  let violations = Atomic.make 0 in

  let q = Klsm.create_with ~k:32 ~num_threads () in
  (* Snapshot the initially-ready set before any thread starts: checking
     [pending] live would race with releases by already-running threads
     (a task could be seeded twice). *)
  let initially_ready =
    List.filter (fun i -> Atomic.get pending.(i) = 0) (List.init n_tasks Fun.id)
  in
  B.parallel_run ~num_threads (fun tid ->
      let h = Klsm.register q tid in
      (* Seed the queue with initially-ready tasks (split by tid). *)
      List.iter
        (fun i -> if i mod num_threads = tid then Klsm.insert h deadline.(i) i)
        initially_ready;
      let rec loop () =
        match Klsm.try_delete_min h with
        | Some (_deadline, task) ->
            (* Check dependencies really completed. *)
            Array.iter
              (fun d ->
                if not (Atomic.get completed.(d)) then
                  Atomic.incr violations)
              deps.(task);
            ignore (Atomic.fetch_and_add runs.(task) 1);
            Atomic.set completed.(task) true;
            (* Release successors whose last dependency this was. *)
            List.iter
              (fun succ ->
                if Atomic.fetch_and_add pending.(succ) (-1) = 1 then
                  Klsm.insert h deadline.(succ) succ)
              dependents.(task);
            Atomic.decr remaining;
            loop ()
        | None -> if Atomic.get remaining > 0 then (Domain.cpu_relax (); loop ())
      in
      loop ());

  let double_runs =
    Array.fold_left (fun acc r -> if Atomic.get r <> 1 then acc + 1 else acc) 0 runs
  in
  Printf.printf "tasks=%d threads=%d\n" n_tasks num_threads;
  Printf.printf "every task ran exactly once: %s\n"
    (if double_runs = 0 then "yes" else Printf.sprintf "NO (%d bad)" double_runs);
  Printf.printf "dependency violations: %d\n" (Atomic.get violations);
  if double_runs <> 0 || Atomic.get violations <> 0 then exit 1
