(* Discrete-event simulation of an M/M/1 queue on the sequential LSM
   priority queue (paper §3) as the event list.

   Run with:  dune exec examples/des.exe

   Event lists are the original priority-queue workload: near-monotone
   timestamps, one delete-min per insert — exactly the access pattern the
   LSM's sorted blocks digest well.  We simulate an M/M/1 queue and check
   the measured averages against the analytic steady-state results
   (utilization rho, mean number in system rho/(1-rho), Little's law). *)

module Seq_lsm = Klsm_core.Seq_lsm
module Xoshiro = Klsm_primitives.Xoshiro

type event = Arrival | Departure

let () =
  let lambda = 0.7 (* arrivals per time unit *) in
  let mu = 1.0 (* service rate *) in
  let horizon = 2_000_000.0 in
  let rng = Xoshiro.create ~seed:31 in
  let exp_sample rate = -.log (1.0 -. Xoshiro.float rng) /. rate in
  (* Event keys are timestamps scaled to integer microticks. *)
  let scale = 1e6 in
  let key_of_time t = int_of_float (t *. scale) in

  let events = Seq_lsm.create () in
  Seq_lsm.insert events (key_of_time (exp_sample lambda)) Arrival;

  let in_system = ref 0 in
  let served = ref 0 in
  let busy_time = ref 0.0 in
  let area_customers = ref 0.0 (* time-integral of #in-system *) in
  let last_time = ref 0.0 in
  let total_delay = ref 0.0 in
  let arrivals_fifo = Queue.create () in

  let continue_sim = ref true in
  while !continue_sim do
    match Seq_lsm.delete_min events with
    | None -> continue_sim := false
    | Some (key, ev) ->
        let now = float_of_int key /. scale in
        if now > horizon then continue_sim := false
        else begin
          let dt = now -. !last_time in
          area_customers := !area_customers +. (dt *. float_of_int !in_system);
          if !in_system > 0 then busy_time := !busy_time +. dt;
          last_time := now;
          match ev with
          | Arrival ->
              Queue.push now arrivals_fifo;
              incr in_system;
              (* Next arrival. *)
              Seq_lsm.insert events (key_of_time (now +. exp_sample lambda)) Arrival;
              (* If the server was idle, start service. *)
              if !in_system = 1 then
                Seq_lsm.insert events (key_of_time (now +. exp_sample mu)) Departure
          | Departure ->
              decr in_system;
              incr served;
              total_delay := !total_delay +. (now -. Queue.pop arrivals_fifo);
              if !in_system > 0 then
                Seq_lsm.insert events (key_of_time (now +. exp_sample mu)) Departure
        end
  done;

  let t = !last_time in
  let rho = lambda /. mu in
  let measured_util = !busy_time /. t in
  let measured_l = !area_customers /. t in
  let analytic_l = rho /. (1.0 -. rho) in
  let measured_w = !total_delay /. float_of_int !served in
  let analytic_w = 1.0 /. (mu -. lambda) in
  Printf.printf "M/M/1, lambda=%.2f mu=%.2f, simulated %.0f time units, %d served\n"
    lambda mu t !served;
  Printf.printf "utilization: measured %.4f, analytic %.4f\n" measured_util rho;
  Printf.printf "mean in system L: measured %.3f, analytic %.3f\n" measured_l analytic_l;
  Printf.printf "mean sojourn W:   measured %.3f, analytic %.3f (Little: L/lambda=%.3f)\n"
    measured_w analytic_w (measured_l /. lambda);
  let close a b tol = abs_float (a -. b) /. b < tol in
  let ok =
    close measured_util rho 0.02
    && close measured_l analytic_l 0.05
    && close measured_w analytic_w 0.05
  in
  Printf.printf "within tolerance of theory: %s\n" (if ok then "OK" else "FAIL");
  if not ok then exit 1
