(** Queue-based Bellman-Ford (SPFA) — an algorithmically independent
    shortest-path oracle used to cross-check {!Dijkstra} in the tests. *)

val run : Graph.t -> source:int -> int array
(** Distances from [source]; [max_int] = unreachable.  Raises
    [Invalid_argument] if [source] is out of range. *)
