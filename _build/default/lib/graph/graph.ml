(** Directed weighted graphs in compressed-sparse-row form.

    The SSSP benchmark (paper §6, Figure 4) runs on Erdős–Rényi graphs
    with 10^4 nodes and edge probability 0.5 — ~5*10^7 directed edges — so
    the representation is three flat int arrays: [row] offsets (length
    [n + 1]), [col] targets and [weight] weights (length [m]). *)

type t = { n : int; row : int array; col : int array; weight : int array }

let num_nodes t = t.n
let num_edges t = Array.length t.col

(** Build from an edge list.  Edges are directed; weights must be
    non-negative (Dijkstra's precondition). *)
let of_edges ~n edges =
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if w < 0 then invalid_arg "Graph.of_edges: negative weight")
    edges;
  let deg = Array.make n 0 in
  List.iter (fun (u, _, _) -> deg.(u) <- deg.(u) + 1) edges;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let m = row.(n) in
  let col = Array.make m 0 and weight = Array.make m 0 in
  let cursor = Array.copy row in
  List.iter
    (fun (u, v, w) ->
      col.(cursor.(u)) <- v;
      weight.(cursor.(u)) <- w;
      cursor.(u) <- cursor.(u) + 1)
    edges;
  { n; row; col; weight }

(** Same, from flat parallel arrays (the generators use this to avoid
    materializing 5*10^7 tuples). *)
let of_edge_arrays ~n ~src ~dst ~w =
  let m = Array.length src in
  if Array.length dst <> m || Array.length w <> m then
    invalid_arg "Graph.of_edge_arrays: length mismatch";
  let deg = Array.make n 0 in
  for e = 0 to m - 1 do
    deg.(src.(e)) <- deg.(src.(e)) + 1
  done;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let col = Array.make m 0 and weight = Array.make m 0 in
  let cursor = Array.copy row in
  for e = 0 to m - 1 do
    let u = src.(e) in
    col.(cursor.(u)) <- dst.(e);
    weight.(cursor.(u)) <- w.(e);
    cursor.(u) <- cursor.(u) + 1
  done;
  { n; row; col; weight }

(** Iterate over the out-edges of [u]. *)
let iter_succ t u ~f =
  for e = t.row.(u) to t.row.(u + 1) - 1 do
    f t.col.(e) t.weight.(e)
  done

let out_degree t u = t.row.(u + 1) - t.row.(u)

let fold_edges t ~init ~f =
  let acc = ref init in
  for u = 0 to t.n - 1 do
    for e = t.row.(u) to t.row.(u + 1) - 1 do
      acc := f !acc u t.col.(e) t.weight.(e)
    done
  done;
  !acc
