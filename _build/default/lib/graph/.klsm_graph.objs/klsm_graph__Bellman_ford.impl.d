lib/graph/bellman_ford.ml: Array Graph Queue
