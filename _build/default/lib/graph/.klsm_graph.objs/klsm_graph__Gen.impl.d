lib/graph/gen.ml: Array Graph Klsm_primitives
