lib/graph/sssp.ml: Array Graph Klsm_backend Klsm_primitives
