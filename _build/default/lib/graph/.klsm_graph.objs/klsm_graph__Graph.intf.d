lib/graph/graph.mli:
