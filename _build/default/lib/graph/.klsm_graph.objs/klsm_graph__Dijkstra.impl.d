lib/graph/dijkstra.ml: Array Graph Klsm_backend Klsm_baselines
