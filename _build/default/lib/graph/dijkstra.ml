(** Sequential Dijkstra — the baseline the paper's "+iterations" quality
    metric compares against (§6.1): a sequential run settles each reachable
    node exactly once, so a parallel label-correcting run's extra
    (re-)relaxations measure the price of relaxed delete-min ordering.

    Uses lazy deletion (re-insertion instead of decrease-key), mirroring
    the parallel algorithm so iteration counts are comparable. *)

module Heap = Klsm_baselines.Seq_heap.Make (Klsm_backend.Real)

type result = {
  dist : int array;  (** [max_int] = unreachable *)
  settled : int;  (** number of distinct nodes settled *)
  iterations : int;  (** heap pops that did real work (= settled here) *)
}

let run graph ~source =
  let n = Graph.num_nodes graph in
  if source < 0 || source >= n then invalid_arg "Dijkstra.run: source";
  let dist = Array.make n max_int in
  let done_ = Array.make n false in
  let heap = Heap.create () in
  dist.(source) <- 0;
  Heap.insert heap 0 source;
  let settled = ref 0 in
  let rec loop () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if (not done_.(u)) && d = dist.(u) then begin
          done_.(u) <- true;
          incr settled;
          Graph.iter_succ graph u ~f:(fun v w ->
              let nd = d + w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Heap.insert heap nd v
              end)
        end;
        loop ()
  in
  loop ();
  { dist; settled = !settled; iterations = !settled }
