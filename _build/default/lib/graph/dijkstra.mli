(** Sequential Dijkstra with lazy deletion (re-insertion instead of
    decrease-key, mirroring the parallel algorithm so iteration counts are
    comparable).  The baseline for the paper's "+iterations" quality metric
    (§6.1) and the correctness oracle for every parallel SSSP run. *)

type result = {
  dist : int array;  (** [max_int] = unreachable *)
  settled : int;  (** number of distinct nodes settled *)
  iterations : int;  (** heap pops that did real work (= settled) *)
}

val run : Graph.t -> source:int -> result
(** Raises [Invalid_argument] if [source] is out of range. *)
