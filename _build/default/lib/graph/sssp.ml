(** Parallel label-correcting single-source shortest paths — the paper's
    SSSP benchmark (§6, Figure 4): "a label-correcting version of
    Dijkstra's algorithm, parallelized in a straightforward manner using a
    concurrent priority queue.  It uses a lazy deletion scheme in
    connection with reinsertion of keys instead of an explicit decrease-key
    operation."

    The algorithm is generic over the queue through a pair of closures, so
    the same driver runs the k-LSM and the Wimmer et al. baselines.
    Distances live in an atomic array updated by CAS-min; each queue entry
    is (tentative distance, node); an entry is {e stale} when its distance
    no longer matches — stale entries are skipped on pop, and the queue's
    lazy-deletion predicate (built from the same distance array) lets it
    drop them wholesale during block copies.

    Termination uses an in-flight counter: incremented {e before} each
    insert and decremented {e after} an entry is fully processed, so it is
    an upper bound on queued work and reaching zero proves completion even
    against spuriously-failing [try_delete_min]. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Backoff = Klsm_primitives.Backoff

  type queue_ops = {
    insert : int -> int -> unit;  (** [insert dist node] *)
    try_delete_min : unit -> (int * int) option;
  }

  type stats = {
    dist : int B.atomic array;
    iterations : int;  (** entries processed with up-to-date distance *)
    stale : int;  (** entries skipped as stale *)
    wall : float;  (** seconds ({!B.time}: virtual under the simulator) *)
  }

  let distances stats = Array.map B.get stats.dist

  (** [run graph ~source ~num_threads ~setup ()] solves SSSP.  [setup] is
      called once, before the threads start, with the freshly created
      atomic distance array — so the caller can build the shared queue with
      the lazy-deletion predicate {!should_delete_of} over it — and returns
      the per-thread handle factory (called inside each thread).

      [~drop] must be wired to the queue's [on_lazy_delete] hook: every
      entry the queue discards lazily carries an in-flight token that must
      be returned, or termination detection would spin forever. *)
  let run graph ~source ~num_threads ~setup () =
    let n = Graph.num_nodes graph in
    if source < 0 || source >= n then invalid_arg "Sssp.run: source";
    let dist = Array.init n (fun _ -> B.make max_int) in
    B.set dist.(source) 0;
    let in_flight = B.make 1 (* the source entry *) in
    let drop _key _node = ignore (B.fetch_and_add in_flight (-1)) in
    let make_ops = setup ~dist ~drop in
    let iterations = Array.make num_threads 0 in
    let stale = Array.make num_threads 0 in
    let t0 = B.time () in
    B.parallel_run ~num_threads (fun tid ->
        let ops = make_ops tid in
        if tid = 0 then ops.insert 0 source;
        let backoff = Backoff.create ~max:64 () in
        let rec loop () =
          match ops.try_delete_min () with
          | Some (d, u) ->
              Backoff.reset backoff;
              if d = B.get dist.(u) then begin
                iterations.(tid) <- iterations.(tid) + 1;
                let du = d in
                Graph.iter_succ graph u ~f:(fun v w ->
                    let nd = du + w in
                    let rec relax () =
                      let cur = B.get dist.(v) in
                      if nd < cur then begin
                        if B.compare_and_set dist.(v) cur nd then begin
                          ignore (B.fetch_and_add in_flight 1);
                          ops.insert nd v
                        end
                        else relax ()
                      end
                    in
                    relax ())
              end
              else stale.(tid) <- stale.(tid) + 1;
              ignore (B.fetch_and_add in_flight (-1));
              loop ()
          | None ->
              (* Empty-looking queue: done only once no work is in flight
                 anywhere (inserts are counted before they happen, so 0 is
                 definitive). *)
              if B.get in_flight > 0 then begin
                Backoff.once backoff ~relax:B.relax_n;
                (* Saturated backoff means we have been idle for a while:
                   release the core so the threads holding work can run
                   (essential when domains outnumber cores). *)
                if Backoff.current backoff >= 64 then B.yield ();
                loop ()
              end
        in
        loop ());
    let wall = B.time () -. t0 in
    {
      dist;
      iterations = Array.fold_left ( + ) 0 iterations;
      stale = Array.fold_left ( + ) 0 stale;
      wall;
    }

  (** The lazy-deletion predicate of §4.5 for this workload: an entry is
      condemned when its recorded distance is no longer current. *)
  let should_delete_of dist = fun d v -> d > B.get dist.(v)
end
