(** Queue-based Bellman-Ford (SPFA).  An independent oracle used by the
    test suite to cross-check {!Dijkstra} — two algorithms agreeing on
    random graphs is much stronger evidence than either alone. *)

let run graph ~source =
  let n = Graph.num_nodes graph in
  if source < 0 || source >= n then invalid_arg "Bellman_ford.run: source";
  let dist = Array.make n max_int in
  let in_queue = Array.make n false in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.push source queue;
  in_queue.(source) <- true;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    in_queue.(u) <- false;
    let du = dist.(u) in
    Graph.iter_succ graph u ~f:(fun v w ->
        let nd = du + w in
        if nd < dist.(v) then begin
          dist.(v) <- nd;
          if not in_queue.(v) then begin
            Queue.push v queue;
            in_queue.(v) <- true
          end
        end)
  done;
  dist
