(** Directed weighted graphs in compressed-sparse-row (CSR) form.

    The SSSP benchmark (paper §6, Figure 4) runs on graphs up to ~5*10^7
    directed arcs, so the representation is three flat int arrays.  Graphs
    are immutable once built. *)

type t

val of_edges : n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds a graph on nodes [0..n-1] from directed
    [(src, dst, weight)] triples.  Raises [Invalid_argument] on an endpoint
    out of range or a negative weight (Dijkstra's precondition). *)

val of_edge_arrays : n:int -> src:int array -> dst:int array -> w:int array -> t
(** Same, from flat parallel arrays — what the generators use to avoid
    materializing tens of millions of tuples. *)

val num_nodes : t -> int
val num_edges : t -> int

val out_degree : t -> int -> int

val iter_succ : t -> int -> f:(int -> int -> unit) -> unit
(** [iter_succ t u ~f] calls [f v w] for every arc [u -> v] of weight [w]. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a
(** Fold over all arcs as [f acc src dst weight]. *)
