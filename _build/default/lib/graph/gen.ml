(** Workload graph generators, all deterministic from a seed.

    [erdos_renyi] is the paper's benchmark workload (§6 "Methodology"):
    G(n, p) with n = 10^4, p = 0.5, and uniform integer weights in
    [1, 10^8], symmetric (each undirected edge becomes two directed arcs
    with the same weight).  [grid] and [rmat] are additional workloads for
    the extended experiments: SSSP behaviour differs strongly between the
    dense/shallow ER graphs and deep/sparse topologies. *)

module Xoshiro = Klsm_primitives.Xoshiro

let paper_max_weight = 100_000_000

(* Growable int-array triple for edge accumulation. *)
module Edge_buf = struct
  type t = {
    mutable src : int array;
    mutable dst : int array;
    mutable w : int array;
    mutable len : int;
  }

  let create () =
    { src = Array.make 1024 0; dst = Array.make 1024 0; w = Array.make 1024 0; len = 0 }

  let push t u v wt =
    if t.len = Array.length t.src then begin
      let ncap = 2 * t.len in
      let grow a =
        let na = Array.make ncap 0 in
        Array.blit a 0 na 0 t.len;
        na
      in
      t.src <- grow t.src;
      t.dst <- grow t.dst;
      t.w <- grow t.w
    end;
    t.src.(t.len) <- u;
    t.dst.(t.len) <- v;
    t.w.(t.len) <- wt;
    t.len <- t.len + 1

  let to_graph t ~n =
    Graph.of_edge_arrays ~n
      ~src:(Array.sub t.src 0 t.len)
      ~dst:(Array.sub t.dst 0 t.len)
      ~w:(Array.sub t.w 0 t.len)
end

(** G(n, p) with symmetric weighted arcs.  Pair enumeration uses geometric
    skipping, so generation is O(#edges) even for tiny [p]. *)
let erdos_renyi ~seed ~n ~p ?(max_weight = paper_max_weight) () =
  if n < 1 then invalid_arg "Gen.erdos_renyi: n < 1";
  if not (p >= 0. && p <= 1.) then invalid_arg "Gen.erdos_renyi: p";
  let rng = Xoshiro.create ~seed in
  let buf = Edge_buf.create () in
  if p > 0. then begin
    (* Walk the strictly-upper-triangular pair index space [0, n(n-1)/2)
       with geometric skips of parameter p. *)
    let total = n * (n - 1) / 2 in
    let log1p = if p >= 1. then neg_infinity else log (1. -. p) in
    let idx = ref 0 in
    let skip () =
      if p >= 1. then 0
      else begin
        let u = Xoshiro.float rng in
        int_of_float (log (1. -. u) /. log1p)
      end
    in
    idx := skip ();
    while !idx < total do
      (* Invert the triangular index into (i, j), i < j. *)
      let i =
        let fi =
          (float_of_int (2 * n) -. 1.
          -. sqrt
               (((float_of_int (2 * n) -. 1.) ** 2.)
               -. (8. *. float_of_int !idx)))
          /. 2.
        in
        let i = int_of_float fi in
        (* Guard against float rounding at the strip boundaries. *)
        let strip_start i = (i * ((2 * n) - i - 1)) / 2 in
        let i = max 0 (min (n - 2) i) in
        if strip_start i > !idx then i - 1
        else if i + 1 <= n - 2 && strip_start (i + 1) <= !idx then i + 1
        else i
      in
      let strip_start = (i * ((2 * n) - i - 1)) / 2 in
      let j = i + 1 + (!idx - strip_start) in
      let w = Xoshiro.int_in rng ~lo:1 ~hi:max_weight in
      Edge_buf.push buf i j w;
      Edge_buf.push buf j i w;
      idx := !idx + 1 + skip ()
    done
  end;
  Edge_buf.to_graph buf ~n

(** [w x h] grid, 4-neighbour connectivity, symmetric random weights. *)
let grid ~seed ~width ~height ?(max_weight = paper_max_weight) () =
  if width < 1 || height < 1 then invalid_arg "Gen.grid";
  let rng = Xoshiro.create ~seed in
  let n = width * height in
  let buf = Edge_buf.create () in
  let id x y = (y * width) + x in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then begin
        let w = Xoshiro.int_in rng ~lo:1 ~hi:max_weight in
        Edge_buf.push buf (id x y) (id (x + 1) y) w;
        Edge_buf.push buf (id (x + 1) y) (id x y) w
      end;
      if y + 1 < height then begin
        let w = Xoshiro.int_in rng ~lo:1 ~hi:max_weight in
        Edge_buf.push buf (id x y) (id x (y + 1)) w;
        Edge_buf.push buf (id x (y + 1)) (id x y) w
      end
    done
  done;
  Edge_buf.to_graph buf ~n

(** R-MAT power-law generator (Chakrabarti et al.): [2^scale] nodes,
    [edge_factor * 2^scale] directed edges, recursively biased into the
    (a, b, c, d) quadrants; symmetric arcs added like the ER generator. *)
let rmat ~seed ~scale ?(edge_factor = 8) ?(a = 0.57) ?(b = 0.19) ?(c = 0.19)
    ?(max_weight = paper_max_weight) () =
  if scale < 1 || scale > 24 then invalid_arg "Gen.rmat: scale";
  let rng = Xoshiro.create ~seed in
  let n = 1 lsl scale in
  let m = edge_factor * n in
  let buf = Edge_buf.create () in
  for _ = 1 to m do
    let u = ref 0 and v = ref 0 in
    for _ = 1 to scale do
      let r = Xoshiro.float rng in
      let bit_u, bit_v =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor bit_u;
      v := (!v lsl 1) lor bit_v
    done;
    if !u <> !v then begin
      let w = Xoshiro.int_in rng ~lo:1 ~hi:max_weight in
      Edge_buf.push buf !u !v w;
      Edge_buf.push buf !v !u w
    end
  done;
  Edge_buf.to_graph buf ~n
