(** Deterministic workload graph generators.

    [erdos_renyi] is the paper's SSSP workload (§6 "Methodology"):
    G(n, p) with symmetric arcs and uniform integer weights in
    [1, {!paper_max_weight}].  [grid] and [rmat] are additional topologies
    for the extended experiments. *)

val paper_max_weight : int
(** 10^8, the paper's weight bound. *)

val erdos_renyi :
  seed:int -> n:int -> p:float -> ?max_weight:int -> unit -> Graph.t
(** [erdos_renyi ~seed ~n ~p ()] samples G(n, p): each unordered pair is an
    edge with probability [p], materialized as two arcs with one shared
    weight.  Generation uses geometric skipping, O(#edges) even for tiny
    [p].  Same seed, same graph. *)

val grid :
  seed:int -> width:int -> height:int -> ?max_weight:int -> unit -> Graph.t
(** 4-connected grid with symmetric random weights. *)

val rmat :
  seed:int ->
  scale:int ->
  ?edge_factor:int ->
  ?a:float ->
  ?b:float ->
  ?c:float ->
  ?max_weight:int ->
  unit ->
  Graph.t
(** R-MAT power-law generator (Chakrabarti et al.): [2^scale] nodes,
    [edge_factor * 2^scale] directed edge samples recursively biased into
    quadrants [(a, b, c, 1-a-b-c)]; self-loops dropped, arcs mirrored. *)
