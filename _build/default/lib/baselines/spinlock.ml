(** Test-and-test-and-set spinlock with truncated exponential backoff.

    Used by the "Heap + Lock" baseline of Figure 3, by the Multi-Queues and
    by the Wimmer et al. reimplementations — all the lock-based comparison
    points of the paper.  The TTAS read loop keeps the lock word in shared
    state while waiting, so under the simulator's coherence model waiting
    threads spin on cache hits and only pay a miss when the holder
    releases — the textbook behaviour the throughput figure depends on. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Backoff = Klsm_primitives.Backoff

  type t = bool B.atomic

  let create () : t = B.make false

  (** Single attempt; [true] iff the lock was acquired. *)
  let try_acquire t = (not (B.get t)) && B.compare_and_set t false true

  (** Blocking acquire (spin). *)
  let acquire t =
    let backoff = Backoff.create () in
    let rec loop () =
      if not (try_acquire t) then begin
        (* Test-and-test-and-set: spin on plain reads until free. *)
        while B.get t do
          Backoff.once backoff ~relax:B.relax_n
        done;
        loop ()
      end
    in
    loop ()

  let release t = B.set t false

  (** Run [f] under the lock. *)
  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e
end
