lib/baselines/spinlock.ml: Klsm_backend Klsm_primitives
