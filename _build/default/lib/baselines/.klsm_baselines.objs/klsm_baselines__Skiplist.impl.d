lib/baselines/skiplist.ml: Array Klsm_backend Klsm_primitives List
