lib/baselines/spraylist.ml: Array Klsm_backend Klsm_primitives List Skiplist
