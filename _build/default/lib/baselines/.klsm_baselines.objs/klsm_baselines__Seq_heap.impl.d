lib/baselines/seq_heap.ml: Array Klsm_backend List
