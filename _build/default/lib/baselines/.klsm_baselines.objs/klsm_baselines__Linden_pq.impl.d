lib/baselines/linden_pq.ml: Klsm_backend Klsm_primitives List Skiplist
