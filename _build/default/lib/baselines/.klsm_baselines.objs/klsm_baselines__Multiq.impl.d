lib/baselines/multiq.ml: Array Klsm_backend Klsm_core Klsm_primitives Seq_heap Spinlock
