lib/baselines/wimmer_centralized.ml: Klsm_backend Seq_heap Spinlock
