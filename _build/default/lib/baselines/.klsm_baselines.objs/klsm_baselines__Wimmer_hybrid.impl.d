lib/baselines/wimmer_hybrid.ml: Klsm_backend Seq_heap Spinlock
