lib/baselines/locked_heap.ml: Klsm_backend Seq_heap Spinlock
