(** Sequential array-based binary min-heap.

    The workhorse under the lock-based baselines: "Heap + Lock" of
    Figure 3, each Multi-Queue slot, and the global/local heaps of the
    Wimmer et al. reimplementations.  It is also the oracle the test suite
    compares every concurrent queue against.

    The heap is a functor over the backend only so that sift work can be
    charged to the simulator's virtual clock via [B.tick]; no atomics are
    involved (callers provide the synchronization). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  type 'v t = {
    mutable keys : int array;
    mutable values : 'v array;
    mutable size : int;
  }

  let create () = { keys = [||]; values = [||]; size = 0 }

  let size t = t.size
  let is_empty t = t.size = 0

  let grow t v =
    let cap = Array.length t.keys in
    B.tick (2 * t.size);
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nk = Array.make ncap 0 and nv = Array.make ncap v in
    Array.blit t.keys 0 nk 0 t.size;
    Array.blit t.values 0 nv 0 t.size;
    t.keys <- nk;
    t.values <- nv

  let swap t i j =
    let k = t.keys.(i) and v = t.values.(i) in
    t.keys.(i) <- t.keys.(j);
    t.values.(i) <- t.values.(j);
    t.keys.(j) <- k;
    t.values.(j) <- v

  let insert t key value =
    if t.size = Array.length t.keys then grow t value;
    (* Calibration: base memory traffic of one heap operation (root line,
       size/bounds, tail write) beyond the per-swap work below. *)
    B.tick 16;
    t.keys.(t.size) <- key;
    t.values.(t.size) <- value;
    t.size <- t.size + 1;
    (* Sift up. *)
    let i = ref (t.size - 1) in
    let continue_up = ref true in
    while !continue_up && !i > 0 do
      let parent = (!i - 1) / 2 in
      if t.keys.(parent) > t.keys.(!i) then begin
        (* A swap touches two (likely distinct) cache lines. *)
        B.tick 8;
        swap t parent !i;
        i := parent
      end
      else continue_up := false
    done

  (** Minimal key without removing it. *)
  let peek t = if t.size = 0 then None else Some (t.keys.(0), t.values.(0))

  (** Minimal key or [max_int] when empty — the cheap form the Multi-Queue
      uses to compare two queues without allocation. *)
  let peek_key t = if t.size = 0 then max_int else t.keys.(0)

  let pop_min t =
    if t.size = 0 then None
    else begin
      B.tick 16;
      let key = t.keys.(0) and value = t.values.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.keys.(0) <- t.keys.(t.size);
        t.values.(0) <- t.values.(t.size);
        (* Sift down. *)
        let i = ref 0 in
        let continue_down = ref true in
        while !continue_down do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
          if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
          if !smallest = !i then continue_down := false
          else begin
            B.tick 8;
            swap t !i !smallest;
            i := !smallest
          end
        done
      end;
      Some (key, value)
    end

  (** Drain everything into a (key, value) list in ascending key order;
      tests and flush operations. *)
  let drain t =
    let rec go acc =
      match pop_min t with None -> List.rev acc | Some kv -> go (kv :: acc)
    in
    go []

  let iter t ~f =
    for i = 0 to t.size - 1 do
      f t.keys.(i) t.values.(i)
    done

  (** Heap-property check for tests. *)
  let check_invariants t =
    for i = 1 to t.size - 1 do
      if t.keys.((i - 1) / 2) > t.keys.(i) then failwith "Seq_heap: violated"
    done
end
