(** Lock-free skiplist substrate for the two skiplist-based baselines
    (Lindén & Jonsson and the SprayList).

    Harris-style pointer marking is emulated with a dedicated link
    constructor: a node is {e physically} deleted by CASing its next
    pointers from [Node s] to [Mark s] (or [Null] to [Mark_null]); any
    insertion CAS on a marked pointer fails because the constructors
    differ, which is exactly the property hardware pointer-tagging buys in
    C.  {e Logical} priority-queue deletion is a separate test-and-set
    [taken] flag so that delete-min costs a single uncontended-in-the-
    common-case CAS (Lindén & Jonsson's central idea), with physical
    unlinking batched and performed by [search] (which heals marked nodes
    as it traverses, à la Harris). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Xoshiro = Klsm_primitives.Xoshiro

  let max_height = 24

  type 'v node = {
    key : int;
    value : 'v;
    height : int;
    taken : bool B.atomic;
    next : 'v link B.atomic array;  (** length [height]; slot 0 = bottom *)
  }

  and 'v link =
    | Null
    | Node of 'v node
    | Mark of 'v node  (** owner physically deleted; successor retained *)
    | Mark_null

  type 'v t = {
    head : 'v node;  (** sentinel, full height, never deleted *)
    level_p : float;  (** tower-height geometric parameter *)
  }

  let create ?(level_p = 0.5) ~dummy () =
    let head =
      {
        key = min_int;
        value = dummy;
        height = max_height;
        taken = B.make true;
        next = Array.init max_height (fun _ -> B.make Null);
      }
    in
    { head; level_p }

  let random_height t rng =
    1 + min (max_height - 1) (Xoshiro.geometric rng ~p:t.level_p)

  let node_key n = n.key
  let node_value n = n.value
  let is_taken n = B.get n.taken
  let try_take n = (not (B.get n.taken)) && B.compare_and_set n.taken false true

  (* Strip a mark: the successor a marked link still points to. *)
  let strip = function
    | Mark s -> Node s
    | Mark_null -> Null
    | (Null | Node _) as l -> l

  let is_marked = function Mark _ | Mark_null -> true | Null | Node _ -> false

  (** Physically condemn [n]: mark every level's next pointer, top down.
      Idempotent and helps concurrent markers. *)
  let mark_node n =
    for level = n.height - 1 downto 0 do
      let continue_mark = ref true in
      while !continue_mark do
        match B.get n.next.(level) with
        | Mark _ | Mark_null -> continue_mark := false
        | Node s as cur ->
            if B.compare_and_set n.next.(level) cur (Mark s) then
              continue_mark := false
        | Null as cur ->
            if B.compare_and_set n.next.(level) cur Mark_null then
              continue_mark := false
      done
    done

  exception Retry

  (** Harris search: predecessors and successors of [key] at every level,
      unlinking marked nodes on the way.  [succs.(l)] is the first link at
      level [l] whose key is [>= key] (or [Null]). *)
  let search t key =
    let preds = Array.make max_height t.head in
    let succs = Array.make max_height (Null : _ link) in
    let rec attempt () =
      match
        let pred = ref t.head in
        for level = max_height - 1 downto 0 do
          let continue_level = ref true in
          let curr = ref (B.get (!pred).next.(level)) in
          while !continue_level do
            match !curr with
            | Null -> continue_level := false
            | Mark _ | Mark_null ->
                (* Our predecessor got deleted under us: restart. *)
                raise_notrace Retry
            | Node n -> (
                let n_next = B.get n.next.(level) in
                if is_marked n_next then begin
                  (* [n] is physically deleted: unlink it at this level.
                     The expected value must be the link we actually read
                     ([!curr]) — CAS is physical equality. *)
                  let unlinked = strip n_next in
                  if
                    not (B.compare_and_set (!pred).next.(level) !curr unlinked)
                  then raise_notrace Retry;
                  curr := unlinked
                end
                else if n.key < key then begin
                  (* Pointer-chasing hop: dependent load, poor locality —
                     the cache-inefficiency of skiplists the paper contrasts
                     with the LSM's arrays (§6.1). *)
                  B.tick 20;
                  pred := n;
                  curr := n_next
                end
                else continue_level := false)
          done;
          preds.(level) <- !pred;
          succs.(level) <- !curr
        done
      with
      | () -> (preds, succs)
      | exception Retry -> attempt ()
    in
    attempt ()

  (** Lock-free insert of a fresh node; duplicates allowed (a new node with
      an existing key lands before its equals).  Returns the node so that
      priority-queue wrappers can keep a reference. *)
  let insert t ~rng key value =
    let height = random_height t rng in
    let node =
      {
        key;
        value;
        height;
        taken = B.make false;
        next = Array.init height (fun _ -> B.make Null);
      }
    in
    (* Link the bottom level; this is the linearization point. *)
    let rec link_bottom () =
      let preds, succs = search t key in
      B.set node.next.(0) succs.(0);
      if B.compare_and_set preds.(0).next.(0) succs.(0) (Node node) then
        (preds, succs)
      else link_bottom ()
    in
    let preds, succs = link_bottom () in
    (* Best-effort upper-level linking (standard Fraser/Herlihy scheme). *)
    let preds = ref preds and succs = ref succs in
    (try
       for level = 1 to height - 1 do
         let rec link_level () =
           if (!succs).(level) == Node node then ()  (* already linked here *)
           else begin
             match B.get node.next.(level) with
             | Mark _ | Mark_null ->
                 (* Node was deleted while we were linking: stop. *)
                 raise_notrace Exit
             | cur ->
                 if not (B.compare_and_set node.next.(level) cur (!succs).(level))
                 then link_level ()
                 else if
                   B.compare_and_set (!preds).(level).next.(level) (!succs).(level)
                     (Node node)
                 then ()
                 else begin
                   let p, s = search t key in
                   preds := p;
                   succs := s;
                   link_level ()
                 end
           end
         in
         link_level ()
       done
     with Exit -> ());
    node

  (** First link of the bottom level. *)
  let bottom_head t = B.get t.head.next.(0)

  (** Follow a bottom-level link to the next node, stripping marks. *)
  let follow link =
    match strip link with
    | Node n -> Some n
    | Null -> None
    | Mark _ | Mark_null -> None

  let next_bottom n = B.get n.next.(0)

  (** Count nodes (including logically deleted ones); O(n), tests only. *)
  let length t =
    let rec go acc link =
      match follow link with None -> acc | Some n -> go (acc + 1) (next_bottom n)
    in
    go 0 (bottom_head t)

  (** Ascending key list of alive nodes; tests only. *)
  let to_alive_list t =
    let rec go acc link =
      match follow link with
      | None -> List.rev acc
      | Some n ->
          let acc = if is_taken n then acc else (n.key, n.value) :: acc in
          go acc (next_bottom n)
    in
    go [] (bottom_head t)
end
