(** Key distributions for the synthetic benchmarks.  The paper's throughput
    benchmark draws keys uniformly; the other shapes model real consumers
    (Dijkstra-style monotone drift, adversarial descending keys, clustered
    deadlines) and drive the workload ablation. *)

type t =
  | Uniform of int  (** uniform in [0, range) — the paper's workload *)
  | Ascending of int  (** monotone counter + jitter in [0, arg) *)
  | Descending of int  (** monotone decreasing from [arg] *)
  | Clustered of { clusters : int; spread : int; range : int }

val name : t -> string

val parse : string -> t option
(** "uniform" | "ascending" | "descending" | "clustered", with default
    parameters; [None] otherwise. *)

val generator : t -> Klsm_primitives.Xoshiro.t -> unit -> int
(** [generator t rng] is a fresh stateful key source (all state in the
    closure, so per-thread generators are independent). *)
