(** Plain-text experiment reporting: aligned tables (the textual analogue
    of the paper's figures) and CSV export for external plotting. *)

let spf = Printf.sprintf

(** Pretty scientific-ish formatting for throughputs. *)
let human_float v =
  if Float.is_nan v then "nan"
  else if Float.abs v >= 1e6 then spf "%.2fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then spf "%.2fk" (v /. 1e3)
  else spf "%.3g" v

(** Print an aligned table with a header row and a separator. *)
let table ?(out = stdout) ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> width.(i) <- max width.(i) (String.length cell))
        row)
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = String.make (width.(i) - String.length cell) ' ' in
        if i = 0 then Printf.fprintf out "%s%s" cell pad
        else Printf.fprintf out "  %s%s" pad cell)
      row;
    output_char out '\n'
  in
  print_row header;
  let sep =
    List.init (List.length header) (fun i -> String.make width.(i) '-')
  in
  print_row sep;
  List.iter print_row rows;
  flush out

(** Write rows as CSV (no quoting needed for our numeric/identifier
    cells). *)
let csv ~path ~header rows =
  let oc = open_out path in
  let line row = output_string oc (String.concat "," row ^ "\n") in
  line header;
  List.iter line rows;
  close_out oc

let section ?(out = stdout) title =
  Printf.fprintf out "\n== %s ==\n\n" title;
  flush out
