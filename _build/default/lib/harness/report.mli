(** Plain-text experiment reporting: aligned tables (the textual analogue
    of the paper's figures) and CSV export for external plotting. *)

val human_float : float -> string
(** "2.50M", "3.20k", "12" — compact throughput formatting. *)

val table : ?out:out_channel -> header:string list -> string list list -> unit
(** Print an aligned table (first column left-aligned, rest right) with a
    dash separator under the header. *)

val csv : path:string -> header:string list -> string list list -> unit
(** Write header + rows as comma-separated lines. *)

val section : ?out:out_channel -> string -> unit
(** Print a "== title ==" banner. *)
