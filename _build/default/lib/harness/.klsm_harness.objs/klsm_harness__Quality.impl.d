lib/harness/quality.ml: Array Float Klsm_backend Klsm_primitives List Oracle Registry
