lib/harness/workload.ml: Array Klsm_primitives String
