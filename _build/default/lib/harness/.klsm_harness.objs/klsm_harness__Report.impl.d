lib/harness/report.ml: Array Float List Printf String
