lib/harness/oracle.mli:
