lib/harness/report.mli:
