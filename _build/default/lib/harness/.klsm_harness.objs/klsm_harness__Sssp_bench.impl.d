lib/harness/sssp_bench.ml: Klsm_backend Klsm_graph Registry
