lib/harness/registry.ml: Klsm_backend Klsm_baselines Klsm_core Option Printf String
