lib/harness/throughput.ml: Array Float Klsm_backend Klsm_primitives Registry Workload
