lib/harness/workload.mli: Klsm_primitives
