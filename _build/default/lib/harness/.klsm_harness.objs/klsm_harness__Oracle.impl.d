lib/harness/oracle.ml: Array
