(** Driver for the SSSP benchmark of Figure 4: wires a {!Registry.spec}
    into {!Klsm_graph.Sssp}, including the §4.5 lazy-deletion predicate for
    the queues that support it, validates the resulting distances against
    sequential Dijkstra, and reports wall time plus the "+iterations"
    quality metric quoted in the paper's §6.1. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Registry = Registry.Make (B)
  module Sssp = Klsm_graph.Sssp.Make (B)

  type result = {
    spec : Registry.spec;
    num_threads : int;
    wall : float;  (** seconds (virtual under the simulator) *)
    iterations : int;
    extra_iterations : int;  (** vs the sequential settle count *)
    stale : int;
    correct : bool;  (** distances match sequential Dijkstra *)
  }

  let run ?(seed = 1) ~graph ~source ~num_threads ~reference spec =
    let stats =
      Sssp.run graph ~source ~num_threads
        ~setup:(fun ~dist ~drop ->
          let should_delete, on_lazy_delete =
            if Registry.supports_lazy_deletion spec then
              (Some (Sssp.should_delete_of dist), Some drop)
            else (None, None)
          in
          let instance =
            Registry.make ~seed ?should_delete ?on_lazy_delete ~num_threads
              spec
          in
          fun tid ->
            let h = instance.Registry.register tid in
            {
              Sssp.insert = (fun d v -> h.Registry.insert d v);
              try_delete_min = (fun () -> h.Registry.try_delete_min ());
            })
        ()
    in
    let dist = Sssp.distances stats in
    let correct = dist = reference.Klsm_graph.Dijkstra.dist in
    {
      spec;
      num_threads;
      wall = stats.Sssp.wall;
      iterations = stats.Sssp.iterations;
      extra_iterations = stats.Sssp.iterations - reference.Klsm_graph.Dijkstra.settled;
      stale = stats.Sssp.stale;
      correct;
    }
end
