(** Key distributions for the synthetic benchmarks.

    The paper's throughput benchmark draws keys uniformly; real priority-
    queue workloads often do not — Dijkstra-style algorithms insert keys
    slightly above the current minimum (monotone ascending), and schedulers
    produce clustered deadlines.  These generators drive the workload
    ablation (queues with per-thread components behave very differently
    when fresh keys always beat the shared backlog). *)

module Xoshiro = Klsm_primitives.Xoshiro

type t =
  | Uniform of int  (** uniform in [0, range) — the paper's workload *)
  | Ascending of int
      (** monotone counter shared by the generator instance plus a jitter
          in [0, arg) — models Dijkstra/DES key drift *)
  | Descending of int
      (** monotone decreasing from [arg]; adversarial for relaxed queues
          (every new key is the new minimum) *)
  | Clustered of { clusters : int; spread : int; range : int }
      (** keys concentrate around [clusters] random centers *)

let name = function
  | Uniform _ -> "uniform"
  | Ascending _ -> "ascending"
  | Descending _ -> "descending"
  | Clustered _ -> "clustered"

let parse s =
  match String.lowercase_ascii s with
  | "uniform" -> Some (Uniform (1 lsl 28))
  | "ascending" -> Some (Ascending 64)
  | "descending" -> Some (Descending (1 lsl 30))
  | "clustered" -> Some (Clustered { clusters = 16; spread = 256; range = 1 lsl 28 })
  | _ -> None

(** [generator t rng] is a fresh stateful key source.  Each call returns
    the next key; all state lives in the closure so per-thread generators
    are independent. *)
let generator t rng =
  match t with
  | Uniform range -> fun () -> Xoshiro.int rng range
  | Ascending jitter ->
      let counter = ref 0 in
      fun () ->
        incr counter;
        !counter + Xoshiro.int rng (max 1 jitter)
  | Descending start ->
      let counter = ref start in
      fun () ->
        decr counter;
        max 0 !counter + Xoshiro.int rng 4
  | Clustered { clusters; spread; range } ->
      let centers =
        Array.init (max 1 clusters) (fun _ -> Xoshiro.int rng range)
      in
      fun () ->
        let c = centers.(Xoshiro.int rng (Array.length centers)) in
        min (range - 1) (max 0 (c + Xoshiro.int rng (2 * spread) - spread))
