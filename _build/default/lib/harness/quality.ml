(** Rank-error quality experiment (ablation A1 in DESIGN.md).

    The paper proves rho = T*k but reports quality only indirectly (the
    SSSP "+iterations" numbers).  This driver measures it directly: under
    the simulator, every completed operation also updates a sequential
    {!Oracle}, and each delete-min records how many strictly smaller keys
    were still present — its rank error.  The empirical maximum must stay
    within rho + slack, and the mean shows the quality/throughput trade as
    k grows.

    Only meaningful on the [Sim] backend (the oracle is sequential and
    relies on the simulator's single-domain cooperative execution). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Registry = Registry.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro
  module Stats = Klsm_primitives.Stats

  type config = {
    num_threads : int;
    prefill : int;
    ops_per_thread : int;
    key_range : int;
    seed : int;
  }

  let default_config =
    {
      num_threads = 8;
      prefill = 20_000;
      ops_per_thread = 5_000;
      key_range = 1 lsl 18;
      seed = 42;
    }

  type result = {
    spec : Registry.spec;
    deletes : int;
    mean_rank_error : float;
    p99_rank_error : float;
    max_rank_error : int;
  }

  let run config spec =
    let t = config.num_threads in
    let instance = Registry.make ~seed:config.seed ~num_threads:t spec in
    let oracle = Oracle.create ~universe:config.key_range in
    let errors = ref [] in
    let handles = Array.make t None in
    B.parallel_run ~num_threads:t (fun tid ->
        let h = instance.register tid in
        handles.(tid) <- Some h;
        let rng = Xoshiro.create ~seed:(config.seed + (7919 * tid)) in
        let share = config.prefill / t in
        for _ = 1 to share do
          let key = Xoshiro.int rng config.key_range in
          (* Oracle first: an item becomes visible (and deletable by other
             fibers) part-way through the queue insert, so the oracle must
             already know it.  The oracle thus over-approximates the
             contents by at most T in-flight items — a <= T skew on
             measured rank errors. *)
          Oracle.insert oracle key;
          h.Registry.insert key 0
        done);
    B.parallel_run ~num_threads:t (fun tid ->
        let h = match handles.(tid) with Some h -> h | None -> assert false in
        let rng = Xoshiro.create ~seed:(config.seed + 13 + (104729 * tid)) in
        for _ = 1 to config.ops_per_thread do
          if Xoshiro.bool rng then begin
            let key = Xoshiro.int rng config.key_range in
            Oracle.insert oracle key;
            h.Registry.insert key 0
          end
          else begin
            match h.Registry.try_delete_min () with
            | Some (key, _) -> errors := Oracle.delete oracle key :: !errors
            | None -> ()
          end
        done);
    let errs = Array.of_list (List.rev_map float_of_int !errors) in
    if Array.length errs = 0 then
      { spec; deletes = 0; mean_rank_error = 0.; p99_rank_error = 0.; max_rank_error = 0 }
    else
      {
        spec;
        deletes = Array.length errs;
        mean_rank_error = Stats.mean errs;
        p99_rank_error = Stats.percentile errs 99.;
        max_rank_error = int_of_float (Array.fold_left Float.max 0. errs);
      }
end
