(** Rank oracle for the quality (rank-error) experiments.

    A Fenwick tree over the key universe counts how many copies of each key
    are logically present; the {e rank error} of a delete-min returning
    [k] is the number of strictly smaller keys still present at that
    moment — 0 for an exact priority queue, bounded by rho = T*k for the
    k-LSM (paper §5, Lemma 2).

    The oracle itself is sequential; under the simulator the wrapping
    harness updates it at operation completion, which measures rank errors
    the way the relaxed-PQ literature reports them. *)

type t = {
  counts : int array;  (** Fenwick-indexed (1-based) key multiset *)
  universe : int;
  mutable size : int;
}

let create ~universe =
  if universe < 1 then invalid_arg "Oracle.create";
  { counts = Array.make (universe + 1) 0; universe; size = 0 }

let add t key delta =
  if key < 0 || key >= t.universe then invalid_arg "Oracle: key out of range";
  let i = ref (key + 1) in
  while !i <= t.universe do
    t.counts.(!i) <- t.counts.(!i) + delta;
    i := !i + (!i land - !i)
  done

(** Number of present keys strictly below [key]. *)
let rank_below t key =
  if key <= 0 then 0
  else begin
    let key = min key t.universe in
    (* Sum of counts for keys 0 .. key-1, i.e. Fenwick prefix of index key. *)
    let acc = ref 0 in
    let i = ref key in
    while !i > 0 do
      acc := !acc + t.counts.(!i);
      i := !i - (!i land - !i)
    done;
    !acc
  end

let insert t key =
  add t key 1;
  t.size <- t.size + 1

(** Remove one copy of [key], returning its rank error.  Raises if [key]
    is not present (a conservation violation — callers treat that as a
    test failure). *)
let delete t key =
  let r = rank_below t key in
  let present = rank_below t (key + 1) - r in
  if present <= 0 then failwith "Oracle.delete: key not present";
  add t key (-1);
  t.size <- t.size - 1;
  r

let size t = t.size
