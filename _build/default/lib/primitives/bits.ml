let floor_log2 n =
  if n < 1 then invalid_arg "Bits.floor_log2";
  let rec go l n = if n <= 1 then l else go (l + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  if n < 1 then invalid_arg "Bits.ceil_log2";
  let l = floor_log2 n in
  if 1 lsl l = n then l else l + 1

let is_power_of_two n = n >= 1 && n land (n - 1) = 0

let next_power_of_two n = 1 lsl ceil_log2 n
