(** Small bit-twiddling helpers used by block sizing and pivot search. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is the smallest [l] with [2^l >= n]. [n] must be >= 1.
    This is the level of the smallest block able to hold [n] items. *)

val floor_log2 : int -> int
(** [floor_log2 n] is the largest [l] with [2^l <= n]. [n] must be >= 1. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] for [n >= 1]. *)

val next_power_of_two : int -> int
(** Smallest power of two >= [n], for [n >= 1]. *)
