type t = { min : int; max : int; mutable cur : int }

let create ?(min = 1) ?(max = 512) () =
  if min < 1 || max < min then invalid_arg "Backoff.create";
  { min; max; cur = min }

let once t ~relax =
  relax t.cur;
  t.cur <- Stdlib.min t.max (t.cur * 2)

let reset t = t.cur <- t.min

let current t = t.cur
