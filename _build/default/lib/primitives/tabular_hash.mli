(** Tabulation hashing.

    Section 4.1 of the paper: "We use 64-bit Bloom filters with two
    hash-values obtained by tabular hashing."  Simple tabulation hashing is
    3-independent and extremely fast: the key is split into bytes and each
    byte indexes a table of random words which are XORed together. *)

type t
(** A fixed, immutable hash function (8 tables of 256 random words). *)

val create : seed:int -> t
(** [create ~seed] draws the tables from a {!Xoshiro} stream; the same seed
    always yields the same function. *)

val hash : t -> int -> int
(** [hash t key] hashes the 8 bytes of [key] to a non-negative int. *)

val hash_pair : t -> int -> int * int
(** [hash_pair t key] returns two independent-looking hash values extracted
    from disjoint halves of the 64-bit tabulation output — exactly the "two
    hash-values" needed by the Bloom filter. *)
