(** Summary statistics for experiment reporting.

    The paper reports the mean of 30 repetitions with confidence intervals;
    this module computes exactly that (Student-t based CIs for the small
    sample sizes we use), plus medians and percentiles for the quality
    (rank-error) experiments. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  ci95 : float;  (** half-width of the 95% confidence interval on the mean *)
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array.  With a single observation,
    [stddev] and [ci95] are 0. *)

val mean : float array -> float

val median : float array -> float
(** Median (average of middle two for even sizes). Input is not modified. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], nearest-rank with linear
    interpolation. Input is not modified. *)

val t_critical_95 : int -> float
(** Two-sided 95% Student-t critical value for [df] degrees of freedom
    (tabulated for small df, 1.96 asymptotically). *)
