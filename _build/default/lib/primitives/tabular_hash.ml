type t = int64 array
(* 8 tables of 256 entries, flattened: table for byte [b] of the key starts
   at index [b * 256]. *)

let create ~seed =
  let rng = Xoshiro.create ~seed in
  Array.init (8 * 256) (fun _ -> Xoshiro.next rng)

let hash64 t key =
  let h = ref 0L in
  let k = ref key in
  for byte = 0 to 7 do
    h := Int64.logxor !h t.((byte * 256) lor (!k land 0xff));
    k := !k lsr 8
  done;
  !h

let hash t key = Int64.to_int (Int64.shift_right_logical (hash64 t key) 2)

let hash_pair t key =
  let h = hash64 t key in
  let lo = Int64.to_int (Int64.logand h 0x3FFFFFFFL) in
  let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical h 32) 0x3FFFFFFFL) in
  (lo, hi)
