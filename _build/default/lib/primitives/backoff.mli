(** Truncated exponential backoff for contended retry loops.

    Every CAS-retry loop in the repository (spinlocks, snapshot pushes,
    Multi-Queue lock acquisition) backs off through one of these to avoid
    pathological livelock under contention.  The wait is expressed as a
    number of [relax] calls, which the backend maps either to
    [Domain.cpu_relax] (real execution) or to virtual-clock ticks
    (simulation). *)

type t

val create : ?min:int -> ?max:int -> unit -> t
(** [create ?min ?max ()] starts at [min] (default 1) relax-steps and doubles
    up to [max] (default 512) on every {!once}. *)

val once : t -> relax:(int -> unit) -> unit
(** [once t ~relax] calls [relax n] once with the current step count [n],
    then doubles it (truncated).  Passing the count in one call lets the
    simulator backend charge the whole wait as a single event instead of
    interpreting every pause instruction. *)

val reset : t -> unit
(** Return to the minimum step count after a success. *)

val current : t -> int
(** Current step count; exposed for tests. *)
