type t = int

let empty = 0
let full = -1  (* all 63 bits set: "may contain any thread" *)

(* OCaml ints carry 63 bits, so the filter uses bit positions 0..62 (shifts
   beyond 62 are unspecified).  One bit fewer than the paper's 64 is an
   epsilon on the false-positive rate. *)
let bits ~hasher tid =
  let h1, h2 = Tabular_hash.hash_pair hasher tid in
  (1 lsl (h1 mod 63)) lor (1 lsl (h2 mod 63))

let singleton ~hasher tid = bits ~hasher tid

let union a b = a lor b

let may_contain ~hasher t tid =
  let b = bits ~hasher tid in
  t land b = b

let is_empty t = t = 0

let population t =
  let rec go acc t = if t = 0 then acc else go (acc + 1) (t land (t - 1)) in
  go 0 t
