(** 64-bit Bloom filters over thread identifiers.

    The shared k-LSM attaches one of these to every block to remember which
    threads contributed items to it (Section 4.1, "Local ordering
    semantics").  A thread performing [find_min] must consider the minimum of
    every block that may contain its own items, so false positives only cost
    an extra comparison while false negatives would break local ordering —
    hence a Bloom filter is exactly the right trade.

    Filters are plain immutable integers ([t = int]): blocks are only ever
    written by their owning thread before publication, so no atomicity is
    needed (the paper makes the same observation). *)

type t = private int
(** 63 bits (an OCaml int); bit [i] set means "some thread hashing to [i]
    contributed".  The paper uses 64 bits; OCaml ints give us 63, an epsilon
    difference in the false-positive rate. *)

val empty : t
(** The filter of a block with no contributors. *)

val full : t
(** The conservative filter that may contain every thread — used when a
    block's provenance is unknown (e.g. blocks adopted by {!Klsm.meld}),
    costing extra scans but never a lost local-ordering guarantee. *)

val singleton : hasher:Tabular_hash.t -> int -> t
(** [singleton ~hasher tid] marks thread [tid] via two tabulation hashes. *)

val union : t -> t -> t
(** Filter of a merged block: bitwise or. *)

val may_contain : hasher:Tabular_hash.t -> t -> int -> bool
(** [may_contain ~hasher t tid] is [false] only if thread [tid] definitely
    contributed nothing (no false negatives). *)

val is_empty : t -> bool

val population : t -> int
(** Number of set bits; used by tests and diagnostics. *)
