lib/primitives/stats.mli:
