lib/primitives/tabular_hash.ml: Array Int64 Xoshiro
