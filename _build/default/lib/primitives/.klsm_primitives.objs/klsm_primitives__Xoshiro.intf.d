lib/primitives/xoshiro.mli:
