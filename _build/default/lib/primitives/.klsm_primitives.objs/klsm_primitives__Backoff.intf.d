lib/primitives/backoff.mli:
