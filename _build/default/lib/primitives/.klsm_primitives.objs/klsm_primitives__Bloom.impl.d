lib/primitives/bloom.ml: Tabular_hash
