lib/primitives/backoff.ml: Stdlib
