lib/primitives/bits.ml:
