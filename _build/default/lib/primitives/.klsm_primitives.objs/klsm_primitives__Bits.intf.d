lib/primitives/bits.mli:
