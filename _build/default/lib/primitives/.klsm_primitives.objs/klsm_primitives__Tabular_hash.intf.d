lib/primitives/tabular_hash.mli:
