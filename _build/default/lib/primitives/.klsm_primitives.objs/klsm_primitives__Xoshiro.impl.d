lib/primitives/xoshiro.ml: Array Int64
