lib/primitives/bloom.mli: Tabular_hash
