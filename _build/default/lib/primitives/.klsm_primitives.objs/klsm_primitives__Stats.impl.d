lib/primitives/stats.ml: Array Float
