type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

(* splitmix64: expands a 64-bit seed into a stream of well-mixed words.
   Recommended by Blackman & Vigna for seeding xoshiro. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  (* All-zero state is invalid for xoshiro; splitmix64 cannot produce four
     zero words from any seed, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (next t) in
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64_next st in
  let s1 = splitmix64_next st in
  let s2 = splitmix64_next st in
  let s3 = splitmix64_next st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let bits30 t = Int64.to_int (Int64.shift_right_logical (next t) 34)

(* Non-negative 62-bit int from the top bits of the raw output. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Xoshiro.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* Rejection sampling over the largest multiple of [bound] below 2^62. *)
    let max62 = (1 lsl 62) - 1 in
    let limit = max62 - (((max62 mod bound) + 1) mod bound) in
    let rec draw () =
      let r = bits62 t in
      if r <= limit then r mod bound else draw ()
    in
    draw ()
  end

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Xoshiro.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1.0p-53

let bool t = Int64.compare (Int64.logand (next t) 1L) 0L <> 0

let geometric t ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Xoshiro.geometric: p in (0,1]";
  let rec count acc = if float t < p then acc else count (acc + 1) in
  count 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
