(** Deterministic, seedable pseudo-random number generator.

    The generator is xoshiro256** (Blackman & Vigna) seeded through
    splitmix64, the combination recommended by its authors.  Every source of
    randomness in this repository — key distributions, victim selection for
    spying, the randomized candidate selection of the shared k-LSM, skiplist
    heights, simulator scheduling jitter — draws from an explicit [t] so that
    whole experiments are reproducible from a single root seed.

    A [t] is not thread-safe; each thread/handle owns its own state. *)

type t
(** Mutable generator state (4 x 64-bit words). *)

val create : seed:int -> t
(** [create ~seed] expands [seed] with splitmix64 into a full 256-bit state.
    Distinct seeds yield decorrelated streams. *)

val split : t -> t
(** [split t] derives a new, decorrelated generator from [t], advancing [t].
    Used to hand one stream per thread out of a root stream. *)

val copy : t -> t
(** Snapshot of the current state, advancing nothing. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so there is no modulo bias. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float
(** Uniform float in [\[0, 1)], 53 bits of precision. *)

val bool : t -> bool
(** Fair coin flip. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative OCaml int; cheap path for keys. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] counts Bernoulli(p) failures before the first success
    (support 0, 1, 2, ...).  Used for skiplist tower heights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
