type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
}

(* Two-sided 95% critical values of the Student-t distribution, df = 1..30. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical_95 df =
  if df <= 0 then invalid_arg "Stats.t_critical_95";
  if df <= Array.length t_table then t_table.(df - 1) else 1.96

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty";
  let m = mean xs in
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  if n = 1 then { n; mean = m; stddev = 0.; min = lo; max = hi; ci95 = 0. }
  else begin
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    let sd = sqrt (ss /. float_of_int (n - 1)) in
    let ci = t_critical_95 (n - 1) *. sd /. sqrt (float_of_int n) in
    { n; mean = m; stddev = sd; min = lo; max = hi; ci95 = ci }
  end

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let c = sorted_copy xs in
  let n = Array.length c in
  if n = 1 then c.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (c.(lo) *. (1. -. frac)) +. (c.(hi) *. frac)
  end

let median xs = percentile xs 50.
