(** 0/1 knapsack as a branch-and-bound {!Engine.PROBLEM}.

    Maximization negated into the engine's minimization: with
    [total = sum of all profits], a node whose optimistic achievable profit
    is [p_max] gets bound [total - p_max]; a completed selection of profit
    [p] has value [total - p].  Minimizing that value maximizes profit.

    The optimistic profit bound is the classic fractional (Dantzig)
    relaxation over items sorted by density, which is admissible. *)

type item = { weight : int; profit : int }

type instance = {
  items : item array;  (** sorted by profit/weight density, descending *)
  capacity : int;
  total_profit : int;
}

(** Build an instance (sorts a copy of the items by density). *)
let instance ~items ~capacity =
  Array.iter
    (fun it ->
      if it.weight <= 0 || it.profit < 0 then
        invalid_arg "Knapsack.instance: weights > 0, profits >= 0")
    items;
  if capacity < 0 then invalid_arg "Knapsack.instance: capacity >= 0";
  let sorted = Array.copy items in
  Array.sort
    (fun (a : item) (b : item) ->
      compare (b.profit * a.weight) (a.profit * b.weight))
    sorted;
  {
    items = sorted;
    capacity;
    total_profit = Array.fold_left (fun s it -> s + it.profit) 0 items;
  }

(** Deterministic random instance for tests and benchmarks. *)
let random ~seed ~n ?(max_weight = 60) ?(max_profit = 100) () =
  let rng = Klsm_primitives.Xoshiro.create ~seed in
  let items =
    Array.init n (fun _ ->
        {
          weight = Klsm_primitives.Xoshiro.int_in rng ~lo:1 ~hi:max_weight;
          profit = Klsm_primitives.Xoshiro.int_in rng ~lo:0 ~hi:max_profit;
        })
  in
  let total_weight = Array.fold_left (fun s it -> s + it.weight) 0 items in
  instance ~items ~capacity:(3 * total_weight / 10)

(** Exact optimum by dynamic programming over capacity — the oracle. *)
let dp_optimum inst =
  let dp = Array.make (inst.capacity + 1) 0 in
  Array.iter
    (fun it ->
      for c = inst.capacity downto it.weight do
        dp.(c) <- max dp.(c) (dp.(c - it.weight) + it.profit)
      done)
    inst.items;
  dp.(inst.capacity)

(* Fractional-relaxation profit bound for items [idx..), given remaining
   capacity and profit collected so far. *)
let profit_bound inst idx capacity profit =
  let n = Array.length inst.items in
  let rec go i cap acc =
    if i >= n || cap = 0 then acc
    else begin
      let it = inst.items.(i) in
      if it.weight <= cap then go (i + 1) (cap - it.weight) (acc + it.profit)
      else acc + (it.profit * cap / it.weight)
    end
  in
  go idx capacity profit

(** The {!Engine.PROBLEM} for an instance. *)
let problem inst =
  let module P = struct
    (* Field names avoid clashing with [instance]'s fields so that record
       disambiguation stays principled. *)
    type node = { idx : int; cap_left : int; acc_profit : int }

    let root = { idx = 0; cap_left = inst.capacity; acc_profit = 0 }

    let bound node =
      inst.total_profit
      - profit_bound inst node.idx node.cap_left node.acc_profit

    let leaf_value node =
      if node.idx >= Array.length inst.items then
        Some (inst.total_profit - node.acc_profit)
      else None

    let branch node =
      if node.idx >= Array.length inst.items then []
      else begin
        let it = inst.items.(node.idx) in
        let skip = { node with idx = node.idx + 1 } in
        if it.weight <= node.cap_left then
          [
            {
              idx = node.idx + 1;
              cap_left = node.cap_left - it.weight;
              acc_profit = node.acc_profit + it.profit;
            };
            skip;
          ]
        else [ skip ]
      end
  end in
  (module P : Engine.PROBLEM)

(** Convert the engine's minimized value back to a profit. *)
let profit_of_best inst best = inst.total_profit - best
