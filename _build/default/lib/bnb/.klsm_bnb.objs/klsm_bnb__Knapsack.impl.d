lib/bnb/knapsack.ml: Array Engine Klsm_primitives
