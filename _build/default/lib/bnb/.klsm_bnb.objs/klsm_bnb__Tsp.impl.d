lib/bnb/tsp.ml: Array Engine Float Klsm_primitives
