lib/bnb/engine.ml: Array Klsm_backend Klsm_core Klsm_primitives List
