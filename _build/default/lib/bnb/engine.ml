(** Generic parallel best-first branch-and-bound on the k-LSM.

    Branch-and-bound is one of the paper's motivating applications (§1):
    subproblems are expanded most-promising-first, ordered by an optimistic
    bound.  Relaxed delete-min fits naturally — expanding the (rho+1)-best
    node instead of the best costs some extra search, never optimality,
    because pruning is against a shared incumbent.

    The engine MINIMIZES.  A problem provides a root, an admissible lower
    bound (never exceeding the value of any completion), branching, and
    leaf detection; the engine runs [num_threads] workers over a shared
    k-LSM, using {!Klsm.insert_batch} to push each expansion's children as
    one block (bulk insertion, §4.1), an atomic incumbent for pruning, and
    in-flight token counting for termination.

    Maximization problems negate into minimization (see {!Knapsack}). *)

module type PROBLEM = sig
  type node

  val root : node

  val bound : node -> int
    (** Admissible optimistic bound: a lower bound (>= 0) on the value of
        every completion of [node].  Used as the priority-queue key. *)

  val branch : node -> node list
    (** Children of an internal node; [\[\]] for leaves. *)

  val leaf_value : node -> int option
    (** [Some v] iff [node] is a complete solution of value [v]. *)
end

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Klsm = Klsm_core.Klsm.Make (B)

  type stats = {
    best : int;  (** optimal value; [max_int] if infeasible *)
    expanded : int;  (** nodes whose children were generated *)
    pruned : int;  (** nodes discarded against the incumbent *)
    wall : float;  (** seconds ({!B.time}) *)
  }

  let solve ?(seed = 1) ?(k = 64) ~num_threads (module P : PROBLEM) =
    if num_threads < 1 then invalid_arg "Engine.solve: num_threads < 1";
    let incumbent = B.make max_int in
    let in_flight = B.make 1 (* root *) in
    (* Entries condemned once their bound cannot beat the incumbent: the
       queue drops them during maintenance, returning their tokens. *)
    let q =
      Klsm.create_with ~seed ~k
        ~should_delete:(fun bound_key _ -> bound_key >= B.get incumbent)
        ~on_lazy_delete:(fun _ _ -> ignore (B.fetch_and_add in_flight (-1)))
        ~num_threads ()
    in
    let expanded = Array.make num_threads 0 in
    let pruned = Array.make num_threads 0 in
    (* Degenerate case: the root is already a complete solution. *)
    (match P.leaf_value P.root with
    | Some v -> B.set incumbent v
    | None -> ());
    let t0 = B.time () in
    B.parallel_run ~num_threads (fun tid ->
        let h = Klsm.register q tid in
        if tid = 0 then Klsm.insert h (P.bound P.root) P.root;
        let rec improve v =
          let cur = B.get incumbent in
          if v < cur && not (B.compare_and_set incumbent cur v) then improve v
        in
        let push_children children =
          let viable =
            List.filter_map
              (fun child ->
                match P.leaf_value child with
                | Some v ->
                    improve v;
                    None
                | None ->
                    let bd = P.bound child in
                    if bd < B.get incumbent then Some (bd, child) else None)
              children
          in
          match viable with
          | [] -> ()
          | viable ->
              ignore
                (B.fetch_and_add in_flight (List.length viable));
              Klsm.insert_batch h (Array.of_list viable)
        in
        let backoff = Klsm_primitives.Backoff.create ~max:64 () in
        let rec loop () =
          match Klsm.try_delete_min h with
          | Some (bound_key, node) ->
              Klsm_primitives.Backoff.reset backoff;
              if bound_key < B.get incumbent then begin
                expanded.(tid) <- expanded.(tid) + 1;
                push_children (P.branch node)
              end
              else pruned.(tid) <- pruned.(tid) + 1;
              ignore (B.fetch_and_add in_flight (-1));
              loop ()
          | None ->
              if B.get in_flight > 0 then begin
                Klsm_primitives.Backoff.once backoff ~relax:B.relax_n;
                if Klsm_primitives.Backoff.current backoff >= 64 then B.yield ();
                loop ()
              end
        in
        loop ());
    {
      best = B.get incumbent;
      expanded = Array.fold_left ( + ) 0 expanded;
      pruned = Array.fold_left ( + ) 0 pruned;
      wall = B.time () -. t0;
    }
end
