(** Symmetric travelling salesman as a branch-and-bound {!Engine.PROBLEM},
    plus a Held-Karp dynamic program as the exact oracle (usable up to
    ~16 cities).

    Nodes are partial tours starting at city 0; the admissible lower bound
    is the tour cost so far plus, for the current city and every unvisited
    city, the cheapest edge leaving it towards the remaining tour — a
    standard (weak but cheap) TSP bound. *)

type instance = { n : int; dist : int array array }

(** Random symmetric euclidean-ish instance, deterministic from the seed. *)
let random ~seed ~n ?(coord_range = 1000) () =
  if n < 2 then invalid_arg "Tsp.random: n >= 2";
  let rng = Klsm_primitives.Xoshiro.create ~seed in
  let xs = Array.init n (fun _ -> Klsm_primitives.Xoshiro.int rng coord_range) in
  let ys = Array.init n (fun _ -> Klsm_primitives.Xoshiro.int rng coord_range) in
  let dist =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let dx = float_of_int (xs.(i) - xs.(j)) in
            let dy = float_of_int (ys.(i) - ys.(j)) in
            int_of_float (Float.round (sqrt ((dx *. dx) +. (dy *. dy))))))
  in
  { n; dist }

(** Exact optimum by Held-Karp (O(n^2 2^n)); oracle for the tests. *)
let held_karp inst =
  let n = inst.n in
  if n > 20 then invalid_arg "Tsp.held_karp: too large";
  let full = (1 lsl (n - 1)) - 1 in
  (* dp.(mask).(j): cheapest path 0 -> ... -> (j+1) visiting exactly the
     cities of [mask] (over cities 1..n-1), ending at city j+1. *)
  let dp = Array.make_matrix (full + 1) (n - 1) max_int in
  for j = 0 to n - 2 do
    dp.(1 lsl j).(j) <- inst.dist.(0).(j + 1)
  done;
  for mask = 1 to full do
    for j = 0 to n - 2 do
      if mask land (1 lsl j) <> 0 && dp.(mask).(j) < max_int then begin
        let base = dp.(mask).(j) in
        for j2 = 0 to n - 2 do
          if mask land (1 lsl j2) = 0 then begin
            let mask2 = mask lor (1 lsl j2) in
            let cand = base + inst.dist.(j + 1).(j2 + 1) in
            if cand < dp.(mask2).(j2) then dp.(mask2).(j2) <- cand
          end
        done
      end
    done
  done;
  let best = ref max_int in
  for j = 0 to n - 2 do
    if dp.(full).(j) < max_int then
      best := min !best (dp.(full).(j) + inst.dist.(j + 1).(0))
  done;
  !best

(* Cheapest edge from [city] to any city allowed by [allowed_mask] (bit i =
   city i allowed). *)
let min_edge inst city allowed_mask =
  let best = ref max_int in
  for j = 0 to inst.n - 1 do
    if j <> city && allowed_mask land (1 lsl j) <> 0 then
      best := min !best inst.dist.(city).(j)
  done;
  !best

(** The {!Engine.PROBLEM}.  Instance size is capped at 62 cities by the
    visited bitmask (far beyond exact-solvable sizes anyway). *)
let problem inst =
  if inst.n > 62 then invalid_arg "Tsp.problem: n <= 62";
  let module P = struct
    type node = { city : int; visited : int; cost : int; count : int }

    let root = { city = 0; visited = 1; cost = 0; count = 1 }

    let all_mask = (1 lsl inst.n) - 1

    let bound node =
      if node.count = inst.n then node.cost + inst.dist.(node.city).(0)
      else begin
        let unvisited = all_mask land lnot node.visited in
        (* Out-edge lower bound: current city must leave into the unvisited
           set; every unvisited city must be left towards the rest (or back
           to 0). *)
        let acc = ref (node.cost + min_edge inst node.city unvisited) in
        for j = 0 to inst.n - 1 do
          if node.visited land (1 lsl j) = 0 then
            acc := !acc + min_edge inst j ((unvisited lor 1) land lnot (1 lsl j))
        done;
        !acc
      end

    let leaf_value node =
      if node.count = inst.n then Some (node.cost + inst.dist.(node.city).(0))
      else None

    let branch node =
      if node.count = inst.n then []
      else begin
        let children = ref [] in
        for j = inst.n - 1 downto 1 do
          if node.visited land (1 lsl j) = 0 then
            children :=
              {
                city = j;
                visited = node.visited lor (1 lsl j);
                cost = node.cost + inst.dist.(node.city).(j);
                count = node.count + 1;
              }
              :: !children
        done;
        !children
      end
  end in
  (module P : Engine.PROBLEM)
