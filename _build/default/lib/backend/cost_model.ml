(** Cost parameters of the simulated machine (see {!Backend_intf}).

    Units are abstract "nanoseconds" of the simulated 80-core machine.  The
    defaults are order-of-magnitude figures for a multi-socket Xeon of the
    paper's era: an L1 hit costs ~1 ns, a cache line transferred from
    another core's cache ~60 ns (cross-socket coherence), a read-modify-write
    adds a few ns, and a failed CAS wastes the line transfer plus the retry.
    The figures' {e shapes} (who scales, where curves cross) are insensitive
    to the exact values; EXPERIMENTS.md shows a sensitivity note. *)

type t = {
  cache_hit : float;  (** access to a line already in this core's cache *)
  cache_miss : float;  (** line transfer from another core / memory *)
  rmw_extra : float;  (** additional cost of CAS/FAA over a read *)
  cas_fail_extra : float;  (** additional wasted time on a failed CAS *)
  work_unit : float;  (** one {!Backend_intf.S.tick} unit: streaming work *)
  relax : float;  (** one [cpu_relax] *)
  jitter : float;
      (** relative cost noise (seeded, deterministic).  Real machines never
          run in perfect lockstep; without jitter a deterministic min-clock
          schedule can settle into periodic patterns where one thread loses
          a lock race forever (a starvation artifact no real machine
          exhibits). *)
}

let default =
  {
    cache_hit = 1.0;
    cache_miss = 60.0;
    rmw_extra = 5.0;
    cas_fail_extra = 10.0;
    work_unit = 0.5;
    relax = 3.0;
    jitter = 0.1;
  }

(* A machine where coherence traffic is nearly free: used by the sensitivity
   ablation to show which conclusions depend on contention costs. *)
let uniform =
  {
    cache_hit = 1.0;
    cache_miss = 2.0;
    rmw_extra = 1.0;
    cas_fail_extra = 1.0;
    work_unit = 0.5;
    relax = 1.0;
    jitter = 0.1;
  }
