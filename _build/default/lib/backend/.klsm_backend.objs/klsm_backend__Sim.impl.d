lib/backend/sim.ml: Array Cost_model Effect Float Klsm_primitives List Option
