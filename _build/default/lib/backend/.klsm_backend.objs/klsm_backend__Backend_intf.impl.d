lib/backend/backend_intf.ml:
