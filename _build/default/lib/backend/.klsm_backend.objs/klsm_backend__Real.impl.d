lib/backend/real.ml: Array Atomic Domain Unix
