(** Blocks: sorted arrays of item pointers (paper §3 and Listing 1).

    A block of level [l] physically holds [2^l] slots and logically holds
    [filled <= 2^l] items sorted in {e decreasing} key order, so the minimal
    key sits at index [filled - 1] and is readable in O(1).  Blocks are
    written only by the thread that creates them and become immutable upon
    publication, with the single exception of [filled], which [shrink] may
    decrement; that race is benign (a stale, larger [filled] merely makes a
    reader inspect items that are already logically deleted — see §4.1).

    Every mutating operation filters out items that are no longer [alive]
    (logically deleted, or condemned by the application's lazy-deletion
    predicate of §4.5).

    The [filter] is the Bloom filter of contributing thread ids used for
    local ordering semantics (§4.1); it is only ever updated before a block
    is published, so it needs no synchronization. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Bloom = Klsm_primitives.Bloom

  type 'v t = {
    level : int;
    items : 'v Item.t array;  (** capacity [2^level]; descending keys *)
    filled : int B.atomic;
    mutable filter : Bloom.t;
  }

  let capacity_of_level level = 1 lsl level

  let level t = t.level
  let filled t = B.get t.filled
  let capacity t = Array.length t.items
  let filter t = t.filter
  let is_empty t = filled t = 0

  (** [singleton ~filter item] is the level-0 block of one item. *)
  let singleton ~filter item =
    { level = 0; items = [| item |]; filled = B.make 1; filter }

  (* Blocks are always created from at least one source item, which doubles
     as the array filler for the unfilled tail (never read: readers stop at
     [filled]). *)
  let create_with_exemplar level exemplar =
    {
      level;
      items = Array.make (capacity_of_level level) exemplar;
      filled = B.make 0;
      filter = Bloom.empty;
    }

  (** Minimal key of the block in O(1): the last logically-held item.
      May be a deleted item; callers handle that (find-min falls back and
      retries after consolidation). *)
  let last_item t =
    let f = filled t in
    if f = 0 then None else Some t.items.(f - 1)

  (** First alive item scanning from the minimum upward; [None] if the whole
      block is dead.  Opportunistically publishes the shortened [filled] so
      the dead tail is skipped only once — the same benign race as
      [shrink]: concurrent writes only ever shrink past items that are
      already dead, and a stale larger value merely re-exposes dead items
      (paper §4.1). *)
  let peek_min ~alive t =
    let f = filled t in
    let rec scan i =
      if i < 0 then begin
        if f > 0 then B.set t.filled 0;
        None
      end
      else begin
        B.tick 1;
        let it = t.items.(i) in
        if alive it then begin
          if i < f - 1 then B.set t.filled (i + 1);
          Some it
        end
        else scan (i - 1)
      end
    in
    scan (f - 1)

  (** Count of alive items; O(filled), for tests and spill decisions. *)
  let count_alive ~alive t =
    let n = ref 0 in
    for i = 0 to filled t - 1 do
      if alive t.items.(i) then incr n
    done;
    !n

  let iter ~f t =
    for i = 0 to filled t - 1 do
      f t.items.(i)
    done

  let to_list t =
    let acc = ref [] in
    for i = 0 to filled t - 1 do
      acc := t.items.(i) :: !acc
    done;
    List.rev !acc

  (* Append to a block under construction (private to the caller). *)
  let append ~alive t item =
    if alive item then begin
      let f = B.get t.filled in
      t.items.(f) <- item;
      B.set t.filled (f + 1)
    end

  (** [copy ~alive t lvl] copies the alive items of [t] into a fresh block
      of level [lvl] (capacity must suffice, which callers guarantee since
      filtering only shrinks). *)
  let copy ~alive t lvl =
    let f = filled t in
    let nb = create_with_exemplar lvl t.items.(if f = 0 then 0 else f - 1) in
    nb.filter <- t.filter;
    for i = 0 to f - 1 do
      append ~alive nb t.items.(i)
    done;
    B.tick f;
    nb

  (** Two-way merge of [b1] and [b2] into a fresh block whose level always
      has room for both inputs; alive filtering happens on the way.  The
      Bloom filters are united — the only point where filters change. *)
  let merge ~alive b1 b2 =
    let f1 = filled b1 and f2 = filled b2 in
    let lvl = 1 + max b1.level b2.level in
    let exemplar =
      if f1 > 0 then b1.items.(0)
      else if f2 > 0 then b2.items.(0)
      else invalid_arg "Block.merge: both blocks empty"
    in
    let nb = create_with_exemplar lvl exemplar in
    nb.filter <- Bloom.union b1.filter b2.filter;
    (* Inputs are descending; emit descending. *)
    let i = ref 0 and j = ref 0 in
    while !i < f1 && !j < f2 do
      let x = b1.items.(!i) and y = b2.items.(!j) in
      if Item.key x >= Item.key y then begin
        append ~alive nb x;
        incr i
      end
      else begin
        append ~alive nb y;
        incr j
      end
    done;
    while !i < f1 do
      append ~alive nb b1.items.(!i);
      incr i
    done;
    while !j < f2 do
      append ~alive nb b2.items.(!j);
      incr j
    done;
    B.tick (f1 + f2);
    nb

  (** Listing 1's [shrink]: drop the dead tail, and if the block now fits a
      strictly smaller level, copy it down (recursively, because the copy
      filters dead items out of the middle too). *)
  let rec shrink ~alive t =
    let f = ref (filled t) in
    while !f > 0 && not (alive t.items.(!f - 1)) do
      B.tick 1;
      decr f
    done;
    let l = ref t.level in
    while !l > 0 && !f <= capacity_of_level (!l - 1) do
      decr l
    done;
    if !l < t.level then shrink ~alive (copy ~alive t !l)
    else begin
      (* Benign racy write: only ever decreases towards the true value. *)
      if !f < B.get t.filled then B.set t.filled !f;
      t
    end

  (** Validate the block invariants (tests only): descending keys, filled
      within capacity. *)
  let check_invariants t =
    let f = filled t in
    if f < 0 || f > capacity t then failwith "Block: filled out of range";
    for i = 0 to f - 2 do
      if Item.key t.items.(i) < Item.key t.items.(i + 1) then
        failwith "Block: keys not descending"
    done
end
