(** Decrease-key on top of the k-LSM, productizing the paper's §4.5
    workaround: "deleting a key and reinserting it with its new value",
    driven by the lazy-deletion hook so stale entries evaporate during
    block maintenance instead of requiring random deletion.

    Each logical element carries its current priority in an atomic;
    [decrease_key] CAS-lowers it and reinserts, which condemns every older
    queue entry for the element (the queue's [should_delete] sees
    [entry priority > current priority]).  [try_delete_min] claims the
    element with a test-and-set so it is delivered exactly once per
    {!activate}/claim cycle — exactly the protocol the parallel SSSP uses
    with its distance array, generalized to arbitrary payloads. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Klsm = Klsm.Make (B)

  type 'v element = {
    value : 'v;
    prio : int B.atomic;  (** current priority; [max_int] = not queued *)
    claimed : bool B.atomic;  (** set when delivered by [try_delete_min] *)
  }

  type 'v t = {
    q : 'v element Klsm.t;
    consumed : int -> 'v element -> unit;
  }

  type 'v handle = { h : 'v element Klsm.handle; t : 'v t }

  (** A fresh, unqueued element wrapping [value]. *)
  let element value =
    { value; prio = B.make max_int; claimed = B.make false }

  let value el = el.value
  let priority el = B.get el.prio
  let is_claimed el = B.get el.claimed

  (** [on_entry_consumed] fires once for every queue entry that is consumed
      {e without} being delivered — lazily dropped during block maintenance
      or skipped as stale inside {!try_delete_min}.  Together with one
      "consumption" per delivered element, every successful {!insert} is
      balanced, which lets applications (e.g. SSSP) run exact in-flight
      counters for termination detection. *)
  let create ?seed ?(k = 256) ?on_entry_consumed ~num_threads () =
    let consumed =
      match on_entry_consumed with Some f -> f | None -> fun _ _ -> ()
    in
    let q =
      Klsm.create_with ?seed ~k
        ~should_delete:(fun entry_prio el ->
          (* An entry is stale once the element was re-prioritized below it
             or already delivered. *)
          B.get el.claimed || entry_prio > B.get el.prio)
        ~on_lazy_delete:(fun entry_prio el -> consumed entry_prio el)
        ~num_threads ()
    in
    { q; consumed }

  let register t tid = { h = Klsm.register t.q tid; t }

  (* CAS-min on the priority; true iff we lowered it. *)
  let rec lower el prio =
    let cur = B.get el.prio in
    if prio >= cur then false
    else if B.compare_and_set el.prio cur prio then true
    else lower el prio

  (** [insert h el prio] (re-)queues [el] at [prio] if that improves on its
      current priority.  Returns [true] if the element was (re)inserted.
      Re-inserting an already-claimed element is allowed: it un-claims and
      queues it again (re-activation). *)
  let insert handle el prio =
    if prio < 0 then invalid_arg "Keyed.insert: negative priority";
    B.set el.claimed false;
    if lower el prio then begin
      Klsm.insert handle.h prio el;
      true
    end
    else false

  (** Alias with the conventional name; equivalent to {!insert}. *)
  let decrease_key = insert

  (** Deliver the minimal-priority unclaimed element, claiming it.  Entries
      whose priority is stale are skipped (and lazily dropped by the queue);
      [None] may be spurious under concurrency, as for the plain k-LSM. *)
  let rec try_delete_min handle =
    match Klsm.try_delete_min handle.h with
    | None -> None
    | Some (entry_prio, el) ->
        if
          entry_prio = B.get el.prio
          && (not (B.get el.claimed))
          && B.compare_and_set el.claimed false true
        then Some (el, entry_prio)
        else begin
          (* Stale entry (superseded or already claimed): account for its
             consumption and keep looking. *)
          handle.t.consumed entry_prio el;
          try_delete_min handle
        end
end

module Default = Make (Klsm_backend.Real)
