(** Items: a key, a payload, and the logical-deletion flag (paper §4,
    "Shared components").

    Keys are native ints (the paper benchmarks integer keys).  Many pointers
    to the same [t] may coexist — blocks only ever hold pointers — and
    deletion is an atomic test-and-set on [taken], after which every block
    still referencing the item treats it as garbage to be filtered out on
    the next copy or shrink. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  type 'v t = { key : int; value : 'v; taken : bool B.atomic }

  (** [make key value] is a live item. *)
  let make key value = { key; value; taken = B.make false }

  let key it = it.key
  let value it = it.value

  (** Has the item been logically deleted? *)
  let is_taken it = B.get it.taken

  (** Attempt to logically delete; [true] iff this caller won the item.
      This is the linearization point of a successful delete-min. *)
  let take it =
    (not (B.get it.taken)) && B.compare_and_set it.taken false true
end
