lib/core/klsm.ml: Array Block Block_array Dist_lsm Item Klsm_backend Klsm_primitives List Option Pq_intf Shared_klsm
