lib/core/block_array.ml: Array Block Item Klsm_backend Klsm_primitives List
