lib/core/seq_lsm.mli:
