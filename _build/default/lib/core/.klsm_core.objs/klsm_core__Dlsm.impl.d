lib/core/dlsm.ml: Array Dist_lsm Item Klsm_backend Klsm_primitives Pq_intf
