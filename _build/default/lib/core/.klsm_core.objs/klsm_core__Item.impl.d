lib/core/item.ml: Klsm_backend
