lib/core/keyed.ml: Klsm Klsm_backend
