lib/core/seq_lsm.ml: Array List
