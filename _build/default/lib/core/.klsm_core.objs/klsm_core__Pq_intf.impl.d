lib/core/pq_intf.ml:
