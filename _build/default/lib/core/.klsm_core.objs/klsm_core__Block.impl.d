lib/core/block.ml: Array Item Klsm_backend Klsm_primitives List
