lib/core/dist_lsm.ml: Array Block Item Klsm_backend Klsm_primitives List
