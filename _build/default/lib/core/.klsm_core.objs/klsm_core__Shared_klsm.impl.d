lib/core/shared_klsm.ml: Array Block Block_array Item Klsm_backend Klsm_primitives Option
