(** The sequential log-structured merge-tree priority queue of paper §3 —
    the foundation the concurrent k-LSM is derived from, usable standalone
    as a cache-efficient sequential priority queue.

    Structure: a logarithmic list of blocks (sorted arrays) with at most
    one block per level, a level-[l] block holding [n] entries with
    [2^(l-1) < n <= 2^l]; inserts merge equal levels upward, delete-min
    pops a block tail and re-normalizes.  Amortized O(log n) per
    operation.  Not thread-safe. *)

type 'v block = {
  level : int;
  keys : int array;
  values : 'v array;
  mutable filled : int;
}
(** Exposed (read-only by convention) for white-box tests. *)

type 'v t = { mutable blocks : 'v block list; mutable size : int }

val create : unit -> 'v t

val insert : 'v t -> int -> 'v -> unit
(** Raises [Invalid_argument] on a negative key. *)

val find_min : 'v t -> (int * 'v) option
(** Minimal key without removal; O(#blocks) = O(log n). *)

val delete_min : 'v t -> (int * 'v) option

val size : 'v t -> int
val is_empty : 'v t -> bool

val drain : 'v t -> (int * 'v) list
(** Empty the queue in ascending key order. *)

val check_invariants : 'v t -> unit
(** Assert the §3 structural invariants (tests). *)
