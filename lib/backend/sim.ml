(** Deterministic discrete-event concurrency simulator (see {!Backend_intf}).

    Virtual threads are effect-handler fibers multiplexed on the calling
    domain.  Every atomic access is a potential preemption point, so the
    fibers execute a genuine interleaving of the data-structure code: the
    same CAS failures, logical-deletion races and snapshot invalidations
    occur as on real hardware.  Two scheduling policies are provided:

    - [Fair] (default): discrete-event execution.  Each access advances the
      executing thread's virtual clock by a cache-coherence cost from
      {!Cost_model}, and the runnable fiber with the smallest clock always
      executes next.  Simulated makespan then models parallel wall time on a
      machine with [num_threads] cores, which is how the paper's 80-core
      throughput figures are reproduced on this 1-core container.
    - [Random_preempt p]: yield with probability [p] before every access and
      pick a uniformly random runnable fiber — a schedule fuzzer in the
      spirit of dscheck, used by the stress tests with many seeds.

    The simulator is single-domain; do not call its operations from several
    domains at once.  Atomic cells created or used outside {!parallel_run}
    degrade to plain (cost-free) accesses, which is convenient for setup and
    teardown code. *)

type policy = Fair | Random_preempt of float

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable cas : int;
  mutable cas_failures : int;
  mutable faa : int;
  mutable hits : int;
  mutable misses : int;
  mutable ticks : int;
  mutable switches : int;
}

let fresh_stats () =
  {
    reads = 0;
    writes = 0;
    cas = 0;
    cas_failures = 0;
    faa = 0;
    hits = 0;
    misses = 0;
    ticks = 0;
    switches = 0;
  }

type fiber_state =
  | Not_started
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type sim = {
  n : int;
  clocks : float array;
  states : fiber_state array;
  mutable current : int;
  mutable live : int;
  rng : Klsm_primitives.Xoshiro.t;
  cost : Cost_model.t;
  policy : policy;
  (* Min-heap over (virtual clock, tid) of runnable fibers ([Fair]). *)
  hp_key : float array;
  hp_tid : int array;
  mutable hp_size : int;
  (* Vector of runnable tids ([Random_preempt]). *)
  run_vec : int array;
  mutable run_len : int;
  st : stats;
  base_time : float;
  mutable failure : (int * exn) option;
  forced_cas : bool array;
      (* Per-thread "next CAS fails spuriously" flag, armed by the fault
         hook ({!arm_cas_failure}) and consumed by [compare_and_set]. *)
}

(* The simulator is single-domain, so one global context suffices.  [None]
   means "not inside parallel_run": atomic ops degrade to plain accesses. *)
let state : sim option ref = ref None
let global_time = ref 0.0
let last_stats = ref (fresh_stats ())
let last_makespan = ref 0.0
let default_seed = ref 0xC0FFEE
let default_cost = ref Cost_model.default
let default_policy = ref Fair

let configure ?seed ?cost ?policy () =
  Option.iter (fun s -> default_seed := s) seed;
  Option.iter (fun c -> default_cost := c) cost;
  Option.iter (fun p -> default_policy := p) policy

let stats () = !last_stats
let makespan () = !last_makespan

(* ---- optional event trace (debugging aid) ----

   A ring buffer of the most recent simulator events: which fiber performed
   which kind of access at which virtual time.  Costless when disabled. *)

type trace_kind =
  | T_read
  | T_write
  | T_cas_ok
  | T_cas_fail
  | T_faa
  | T_tick
  | T_switch

type trace_event = { tr_tid : int; tr_kind : trace_kind; tr_at : float }

let trace_tids = ref [||]
let trace_kinds = ref [||]
let trace_ats = ref [||]
let trace_len = ref 0  (* capacity; 0 = disabled *)
let trace_next = ref 0
let trace_count = ref 0

(** [set_trace n] keeps the last [n] events ([0] disables tracing). *)
let set_trace n =
  if n < 0 then invalid_arg "Sim.set_trace";
  trace_len := n;
  trace_next := 0;
  trace_count := 0;
  trace_tids := Array.make (max n 1) 0;
  trace_kinds := Array.make (max n 1) T_read;
  trace_ats := Array.make (max n 1) 0.0

let kind_name = function
  | T_read -> "read"
  | T_write -> "write"
  | T_cas_ok -> "cas"
  | T_cas_fail -> "cas-fail"
  | T_faa -> "faa"
  | T_tick -> "tick"
  | T_switch -> "switch"

(** Most recent events, oldest first. *)
let dump_trace () =
  let n = min !trace_count !trace_len in
  List.init n (fun i ->
      let idx = (!trace_next - n + i + !trace_len) mod !trace_len in
      {
        tr_tid = !trace_tids.(idx);
        tr_kind = !trace_kinds.(idx);
        tr_at = !trace_ats.(idx);
      })

exception Aborted

(* ---- fault injection (Backend_intf.fault_point; lib/chaos) ----

   The simulator exposes raw mechanisms only; policy (which site, which
   hit, which thread) lives in the plan interpreter of [Klsm_chaos.Chaos],
   installed through [set_fault_hook].  The hook runs on the faulting
   fiber itself, so it may charge virtual time ([relax_n]), arm a forced
   CAS failure, or kill the fiber ([kill_current]). *)

exception Killed
(** Raised by {!kill_current}: the fiber unwinds and is retired {e without}
    failing the run — the simulated thread simply dies mid-protocol, which
    is the whole point of crash injection. *)

let fault_hook : (string -> unit) option ref = ref None

(** Install ([Some f]) or remove ([None]) the handler consulted by every
    {!fault_point} hit inside [parallel_run]. *)
let set_fault_hook h = fault_hook := h

(** Executing thread's id inside [parallel_run]; [-1] outside. *)
let current_tid () = match !state with Some s -> s.current | None -> -1

(** [Backend_intf.S.self]: the dynamic thread identity.  All virtual
    threads share one domain here, which is exactly why the interface
    offers this instead of letting clients reach for [Domain.DLS]. *)
let self = current_tid

(** Make the calling thread's next [compare_and_set] fail as if another
    thread had won the race (charged and recorded as an ordinary CAS
    failure).  Only meaningful inside [parallel_run]. *)
let arm_cas_failure () =
  match !state with
  | Some s -> s.forced_cas.(s.current) <- true
  | None -> ()

(** Kill the calling fiber (see {!Killed}).  The run continues with the
    remaining fibers. *)
let kill_current () = raise Killed

let fault_point site =
  match !fault_hook with
  | None -> ()
  | Some f -> if !state <> None then f site

type _ Effect.t += Yield : unit Effect.t

(* ---- runnable-set operations ---- *)

let heap_push s key tid =
  let i = ref s.hp_size in
  s.hp_size <- s.hp_size + 1;
  s.hp_key.(!i) <- key;
  s.hp_tid.(!i) <- tid;
  let continue_up = ref true in
  while !continue_up && !i > 0 do
    let parent = (!i - 1) / 2 in
    if s.hp_key.(parent) > s.hp_key.(!i) then begin
      let k = s.hp_key.(parent) and t = s.hp_tid.(parent) in
      s.hp_key.(parent) <- s.hp_key.(!i);
      s.hp_tid.(parent) <- s.hp_tid.(!i);
      s.hp_key.(!i) <- k;
      s.hp_tid.(!i) <- t;
      i := parent
    end
    else continue_up := false
  done

let heap_pop s =
  if s.hp_size = 0 then -1
  else begin
    let top = s.hp_tid.(0) in
    s.hp_size <- s.hp_size - 1;
    if s.hp_size > 0 then begin
      s.hp_key.(0) <- s.hp_key.(s.hp_size);
      s.hp_tid.(0) <- s.hp_tid.(s.hp_size);
      let i = ref 0 in
      let continue_down = ref true in
      while !continue_down do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < s.hp_size && s.hp_key.(l) < s.hp_key.(!smallest) then
          smallest := l;
        if r < s.hp_size && s.hp_key.(r) < s.hp_key.(!smallest) then
          smallest := r;
        if !smallest = !i then continue_down := false
        else begin
          let k = s.hp_key.(!i) and t = s.hp_tid.(!i) in
          s.hp_key.(!i) <- s.hp_key.(!smallest);
          s.hp_tid.(!i) <- s.hp_tid.(!smallest);
          s.hp_key.(!smallest) <- k;
          s.hp_tid.(!smallest) <- t;
          i := !smallest
        end
      done
    end;
    top
  end

let enqueue s tid =
  match s.policy with
  | Fair -> heap_push s s.clocks.(tid) tid
  | Random_preempt _ ->
      s.run_vec.(s.run_len) <- tid;
      s.run_len <- s.run_len + 1

let pick s =
  match s.policy with
  | Fair -> heap_pop s
  | Random_preempt _ ->
      if s.run_len = 0 then -1
      else begin
        let i = Klsm_primitives.Xoshiro.int s.rng s.run_len in
        let tid = s.run_vec.(i) in
        s.run_len <- s.run_len - 1;
        s.run_vec.(i) <- s.run_vec.(s.run_len);
        tid
      end

(* ---- cost accounting ---- *)

(* Cost-model values are in simulated nanoseconds; clocks are kept in
   seconds so that [time] has the same unit as the real backend.  Every
   charge carries seeded multiplicative noise (see {!Cost_model.jitter}) to
   break deterministic lockstep cycles. *)
let noise s c =
  c *. (1.0 +. (s.cost.jitter *. (Klsm_primitives.Xoshiro.float s.rng -. 0.5)))

let charge s c =
  s.clocks.(s.current) <- s.clocks.(s.current) +. (noise s c *. 1e-9)


let record s kind =
  if !trace_len > 0 then begin
    !trace_tids.(!trace_next) <- s.current;
    !trace_kinds.(!trace_next) <- kind;
    !trace_ats.(!trace_next) <- s.clocks.(s.current);
    trace_next := (!trace_next + 1) mod !trace_len;
    incr trace_count
  end

let maybe_yield s =
  match s.policy with
  | Fair ->
      if s.hp_size > 0 && s.hp_key.(0) < s.clocks.(s.current) then begin
        s.st.switches <- s.st.switches + 1;
        Effect.perform Yield
      end
  | Random_preempt p ->
      if s.run_len > 0 && Klsm_primitives.Xoshiro.float s.rng < p then begin
        s.st.switches <- s.st.switches + 1;
        Effect.perform Yield
      end

(* ---- atomic cells with per-line coherence metadata ----

   [writer] is the tid holding the line in exclusive/modified state (-1 for
   none); [readers] is a bitmask of tids (mod 62 — collisions above 62
   threads make the model slightly optimistic, which is harmless) that have
   read the line since the last write. *)

type 'a atomic = {
  mutable v : 'a;
  mutable writer : int;
  mutable readers : int;
  mutable busy_until : float;
      (* Cache-line ownership serialization: exclusive (write/RMW) accesses
         to one line cannot overlap in time on real coherence fabrics — the
         line bounces from core to core.  Each miss-ing exclusive access
         starts no earlier than [busy_until] and extends it, which is what
         makes hot spots (a lock word, the shared k-LSM pointer, a skiplist
         head) serialize instead of scaling. *)
}

let mask tid = 1 lsl (tid mod 62)

let make v = { v; writer = -1; readers = 0; busy_until = 0.0 }

(* Charge an exclusive (ownership-transferring) access: the access occupies
   the line for [c] ns starting no earlier than the line's previous release.
   Hits (already-owned lines) don't transfer ownership and skip this. *)
let charge_exclusive s a c =
  let start = Float.max s.clocks.(s.current) a.busy_until in
  let fin = start +. (noise s c *. 1e-9) in
  s.clocks.(s.current) <- fin;
  a.busy_until <- fin


let own s a =
  a.writer <- s.current;
  a.readers <- mask s.current

(* Shared (read) access: hits are free-ish; a miss must wait for the
   current exclusive holder to release the line ([busy_until]) and then pay
   the transfer, but concurrent readers do not serialize each other. *)
let read_access s a =
  let me = s.current in
  if a.writer = me || a.readers land mask me <> 0 then begin
    s.st.hits <- s.st.hits + 1;
    charge s s.cost.cache_hit
  end
  else begin
    s.st.misses <- s.st.misses + 1;
    let start = Float.max s.clocks.(me) a.busy_until in
    s.clocks.(me) <- start +. (noise s s.cost.cache_miss *. 1e-9)
  end;
  a.readers <- a.readers lor mask me

(* Exclusive (write/RMW) access: a miss transfers line ownership, which
   serializes on [busy_until] — the essence of why hot atomics do not
   scale. *)
let exclusive_access s a extra =
  let me = s.current in
  if a.writer = me && a.readers land lnot (mask me) = 0 then begin
    s.st.hits <- s.st.hits + 1;
    charge s (s.cost.cache_hit +. extra)
  end
  else begin
    s.st.misses <- s.st.misses + 1;
    charge_exclusive s a (s.cost.cache_miss +. extra)
  end;
  own s a

let get a =
  match !state with
  | None -> a.v
  | Some s ->
      maybe_yield s;
      s.st.reads <- s.st.reads + 1;
      read_access s a;
      record s T_read;
      a.v

let set a v =
  match !state with
  | None -> a.v <- v
  | Some s ->
      maybe_yield s;
      s.st.writes <- s.st.writes + 1;
      exclusive_access s a 0.0;
      record s T_write;
      a.v <- v

let compare_and_set a old nu =
  match !state with
  | None ->
      if a.v == old then begin
        a.v <- nu;
        true
      end
      else false
  | Some s ->
      maybe_yield s;
      s.st.cas <- s.st.cas + 1;
      if s.forced_cas.(s.current) then begin
        (* Injected spurious failure (see {!arm_cas_failure}): pay the same
           price a genuinely lost race would. *)
        s.forced_cas.(s.current) <- false;
        s.st.cas_failures <- s.st.cas_failures + 1;
        exclusive_access s a (s.cost.rmw_extra +. s.cost.cas_fail_extra);
        record s T_cas_fail;
        false
      end
      else if a.v == old then begin
        exclusive_access s a s.cost.rmw_extra;
        record s T_cas_ok;
        a.v <- nu;
        true
      end
      else begin
        (* A failed CAS still performs the read-for-ownership transfer. *)
        s.st.cas_failures <- s.st.cas_failures + 1;
        exclusive_access s a (s.cost.rmw_extra +. s.cost.cas_fail_extra);
        record s T_cas_fail;
        false
      end

let exchange a v =
  match !state with
  | None ->
      let old = a.v in
      a.v <- v;
      old
  | Some s ->
      maybe_yield s;
      s.st.cas <- s.st.cas + 1;
      exclusive_access s a s.cost.rmw_extra;
      let old = a.v in
      a.v <- v;
      old

let fetch_and_add a d =
  match !state with
  | None ->
      let old = a.v in
      a.v <- old + d;
      old
  | Some s ->
      maybe_yield s;
      s.st.faa <- s.st.faa + 1;
      exclusive_access s a s.cost.rmw_extra;
      record s T_faa;
      let old = a.v in
      a.v <- old + d;
      old

let tick n =
  match !state with
  | None -> ()
  | Some s ->
      s.st.ticks <- s.st.ticks + n;
      charge s (float_of_int n *. s.cost.work_unit);
      record s T_tick;
      maybe_yield s

let cpu_relax () =
  match !state with
  | None -> ()
  | Some s ->
      charge s s.cost.relax;
      maybe_yield s

let relax_n n =
  match !state with
  | None -> ()
  | Some s ->
      charge s (float_of_int n *. s.cost.relax);
      maybe_yield s

let yield () =
  match !state with
  | None -> ()
  | Some s ->
      let runnable =
        match s.policy with Fair -> s.hp_size > 0 | _ -> s.run_len > 0
      in
      if runnable then begin
        s.st.switches <- s.st.switches + 1;
        Effect.perform Yield
      end

(* ---- scheduler ---- *)

let run_fiber s tid thunk =
  Effect.Deep.match_with thunk ()
    {
      retc =
        (fun () ->
          s.states.(tid) <- Finished;
          s.live <- s.live - 1);
      exnc =
        (fun e ->
          s.states.(tid) <- Finished;
          s.live <- s.live - 1;
          (* [Killed] is an injected crash, not a bug: the fiber dies
             silently and the run carries on without it. *)
          if s.failure = None && e <> Aborted && e <> Killed then
            s.failure <- Some (tid, e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  s.states.(tid) <- Suspended k;
                  enqueue s tid)
          | _ -> None);
    }

exception Thread_failure of int * exn

let name = "sim"

let parallel_run ~num_threads body =
  if num_threads < 1 then invalid_arg "Sim.parallel_run: num_threads < 1";
  if !state <> None then failwith "Sim.parallel_run: nested runs unsupported";
  let s =
    {
      n = num_threads;
      clocks = Array.make num_threads 0.0;
      states = Array.make num_threads Not_started;
      current = 0;
      live = num_threads;
      rng = Klsm_primitives.Xoshiro.create ~seed:!default_seed;
      cost = !default_cost;
      policy = !default_policy;
      hp_key = Array.make num_threads 0.0;
      hp_tid = Array.make num_threads 0;
      hp_size = 0;
      run_vec = Array.make num_threads 0;
      run_len = 0;
      st = fresh_stats ();
      base_time = !global_time;
      failure = None;
      forced_cas = Array.make num_threads false;
    }
  in
  for tid = 0 to num_threads - 1 do
    enqueue s tid
  done;
  state := Some s;
  let rec loop () =
    if s.failure = None then begin
      match pick s with
      | -1 -> ()
      | tid -> (
          s.current <- tid;
          (match s.states.(tid) with
          | Not_started ->
              s.states.(tid) <- Running;
              run_fiber s tid (fun () -> body tid)
          | Suspended k ->
              s.states.(tid) <- Running;
              Effect.Deep.continue k ()
          | Running | Finished -> assert false);
          loop ())
    end
  in
  loop ();
  (* On failure, unwind every still-suspended fiber so their resources die. *)
  Array.iteri
    (fun tid st ->
      match st with
      | Suspended k -> (
          s.current <- tid;
          try Effect.Deep.discontinue k Aborted with _ -> ())
      | Not_started | Running | Finished -> ())
    s.states;
  state := None;
  let makespan = Array.fold_left Float.max 0.0 s.clocks in
  global_time := s.base_time +. makespan;
  last_stats := s.st;
  last_makespan := makespan;
  match s.failure with
  | Some (tid, e) -> raise (Thread_failure (tid, e))
  | None -> ()

let time () =
  match !state with
  | Some s -> s.base_time +. s.clocks.(s.current)
  | None -> !global_time
