(** The execution substrate every concurrent structure is a functor over.

    The paper's evaluation ran on an 80-core Xeon; this container has one
    core.  To reproduce the scalability experiments we abstract "atomic
    memory + threads + time" behind this signature and provide two
    implementations:

    - {!Real}: [Stdlib.Atomic] cells and [Domain]-based threads, real
      monotonic time.  This is the deployment backend, and the one
      correctness tests run against (OS preemption on one core still
      produces genuine races).
    - {!Sim}: a deterministic discrete-event simulator.  Virtual threads are
      effect-handler fibers; every atomic access is a preemption point and
      advances the accessing thread's virtual clock by a MESI-style
      cache-coherence cost.  Simulated time reproduces the contention
      behaviour (serialized cache-line transfers, CAS retry storms) that the
      paper's figures are about.

    Data-structure code must route {e every} cross-thread memory access
    through [atomic] cells and may report sequential work (array merges,
    heap sift, list hops) via {!val:tick} so the simulator can charge it. *)

module type S = sig
  val name : string
  (** ["real"] or ["sim"]; used in reports. *)

  type 'a atomic
  (** A shared atomic cell, the only legal cross-thread communication. *)

  val make : 'a -> 'a atomic
  val get : 'a atomic -> 'a
  val set : 'a atomic -> 'a -> unit

  val compare_and_set : 'a atomic -> 'a -> 'a -> bool
  (** Physical-equality CAS, like [Stdlib.Atomic.compare_and_set]. *)

  val exchange : 'a atomic -> 'a -> 'a

  val fetch_and_add : int atomic -> int -> int
  (** Returns the previous value. *)

  val tick : int -> unit
  (** [tick n] reports [n] units of thread-local sequential work (e.g. items
      moved by a merge).  No-op on {!Real}; advances the virtual clock on
      {!Sim} so that algorithmic work is visible in simulated time. *)

  val cpu_relax : unit -> unit
  (** Backoff hint inside spin loops. *)

  val relax_n : int -> unit
  (** [relax_n n] = n backoff pauses, charged in one step (spin waits would
      otherwise dominate simulator time). *)

  val yield : unit -> unit
  (** Voluntary reschedule point (no cost). *)

  val fault_point : string -> unit
  (** [fault_point site] marks a named sensitive step of a multi-step
      protocol (a publication order, a CAS dance) for fault injection.
      No-op on {!Real} and on {!Sim} unless a fault plan is installed
      ({!Klsm_chaos.Chaos}), in which case the plan may delay the calling
      thread here, force its next CAS to fail spuriously, or kill it
      outright.  Site names are catalogued in [docs/CHAOS.md]. *)

  val parallel_run : num_threads:int -> (int -> unit) -> unit
  (** [parallel_run ~num_threads body] runs [body 0 .. body (n-1)]
      concurrently to completion.  Exceptions in any thread abort the run
      and are re-raised. *)

  val self : unit -> int
  (** Index of the executing thread inside [parallel_run] ([-1] outside).
      This is the {e dynamic} identity — on {!Sim} all virtual threads
      share one domain, so thread-local state keyed by anything coarser
      (e.g. [Domain.DLS]) is shared across them and must not be used for
      per-thread ownership. *)

  val time : unit -> float
  (** Seconds.  On {!Real}, a monotonic wall clock.  On {!Sim}, the calling
      thread's virtual clock inside [parallel_run]; outside, a global clock
      that advances by each run's makespan.  Throughput = ops / (t1 - t0)
      works identically for both. *)
end
