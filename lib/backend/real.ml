(** Deployment backend: [Stdlib.Atomic] + [Domain]. See {!Backend_intf}. *)

let name = "real"

type 'a atomic = 'a Atomic.t

let make = Atomic.make
let get = Atomic.get
let set = Atomic.set
let compare_and_set = Atomic.compare_and_set
let exchange = Atomic.exchange
let fetch_and_add = Atomic.fetch_and_add
let tick _ = ()
let cpu_relax = Domain.cpu_relax

let relax_n n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* A genuine scheduling yield: on machines with fewer cores than domains
   (this container has one), spinning with cpu_relax alone starves the
   domain that holds the work for a whole OS timeslice.  A sub-millisecond
   sleep releases the core. *)
let yield () = Unix.sleepf 1e-4

(* Fault injection is a simulator facility; deployment code pays nothing. *)
let fault_point _ = ()

exception Thread_failure of int * exn

(* One worker per domain, so domain-local storage is the right carrier for
   the dynamic thread index (unlike on Sim, where every virtual thread
   shares one domain and [self] must come from the scheduler). *)
let self_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)
let self () = Domain.DLS.get self_key

let parallel_run ~num_threads body =
  if num_threads < 1 then invalid_arg "parallel_run: num_threads < 1";
  let wrap tid () =
    let saved = Domain.DLS.get self_key in
    Domain.DLS.set self_key tid;
    let r = try Ok (body tid) with e -> Error (tid, e) in
    Domain.DLS.set self_key saved;
    r
  in
  if num_threads = 1 then
    match wrap 0 () with Ok () -> () | Error (tid, e) -> raise (Thread_failure (tid, e))
  else begin
    (* Thread 0 runs on the calling domain so that [parallel_run] composes
       with callers that already hold per-run state on the current stack. *)
    let domains =
      Array.init (num_threads - 1) (fun i -> Domain.spawn (wrap (i + 1)))
    in
    let r0 = wrap 0 () in
    let results = Array.map Domain.join domains in
    let reraise = function
      | Ok () -> ()
      | Error (tid, e) -> raise (Thread_failure (tid, e))
    in
    reraise r0;
    Array.iter reraise results
  end

let time () = Unix.gettimeofday ()
