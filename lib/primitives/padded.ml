(* False-sharing avoidance for contended heap cells.

   OCaml gives no layout control, but the trick par-ml ships as
   [Multicore_magic.copy_as_padded] works on any boxed value: reallocate
   the block with its size rounded up past a cache line, so two cells
   allocated back to back can no longer land on the same line.  The extra
   words are ordinary immediate fields the GC scans and ignores; every
   runtime primitive that touches the value (atomic loads/CAS, record
   field access) addresses fields by index and never consults the block
   size, so the padded copy is observationally identical.

   This only pays on the Real backend (Sim charges contention through its
   own cost model, not the hardware's), but it is safe everywhere: the
   copy happens before the value is shared, and all fields are preserved. *)

(* 64-byte cache lines on every target we run on; one word is 8 bytes. *)
let words_per_cache_line = 8

let copy_as_padded (v : 'a) : 'a =
  let r = Obj.repr v in
  if not (Obj.is_block r) then v
  else
    let tag = Obj.tag r in
    (* Only pad plain scannable blocks (records, tuples, atomics).  Custom
       blocks, closures, strings and float arrays have layouts the copy
       below would corrupt; leave them alone. *)
    if tag >= Obj.no_scan_tag || tag = Obj.double_array_tag then v
    else begin
      let size = Obj.size r in
      let padded =
        (size / words_per_cache_line * words_per_cache_line)
        + words_per_cache_line
      in
      let b = Obj.new_block tag padded in
      for i = 0 to size - 1 do
        Obj.set_field b i (Obj.field r i)
      done;
      for i = size to padded - 1 do
        Obj.set_field b i (Obj.repr 0)
      done;
      Obj.obj b
    end

let make_array n f = Array.init n (fun i -> copy_as_padded (f i))
