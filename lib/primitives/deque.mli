(** Chase–Lev work-stealing deque (CL05), functorized over an atomic-cell
    implementation so one code path serves both backends.

    The owner treats the deque as a LIFO stack ([push]/[pop] at the
    bottom); thieves take the {e oldest} item ([steal] at the top, FIFO),
    so stolen work is the work the owner is least likely to touch soon —
    the classic depth-first-local / breadth-first-steal split of Cilk-style
    schedulers.  Only [steal] and the last-item [pop] race; both are
    resolved by a single CAS on [top].

    The [top] and [bottom] indices live on separate cache lines
    ({!Padded.copy_as_padded}) so the owner's bottom traffic does not
    evict every thief's cached top.  The circular buffer grows
    geometrically and is published through an atomic so thieves always
    read a consistent (buffer, top) pair. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
end

module Make (_ : ATOMIC) : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] is the initial buffer size (rounded up to a power of two,
      default 16); the deque grows without bound as needed. *)

  val push : 'a t -> 'a -> unit
  (** Owner only: push at the bottom. *)

  val pop : 'a t -> 'a option
  (** Owner only: pop the most recently pushed item (LIFO).  [None] when
      empty or when a thief won the race for the last item. *)

  val steal : 'a t -> [ `Stolen of 'a | `Empty | `Race ]
  (** Any thread: take the oldest item (FIFO).  [`Race] means another
      thief (or the owner, on the last item) interfered — the deque may
      still be non-empty, retry if desired. *)

  val size : 'a t -> int
  (** Racy snapshot of [bottom - top]; >= 0. *)
end
