(** Cache-line padding for contended heap cells (the par-ml
    [copy_as_padded] idiom).

    OCaml records and atomics are allocated at their exact size, so
    per-stripe atomics created in a loop end up adjacent in the minor heap
    and false-share a cache line: one stripe's CAS traffic evicts its
    neighbours' hints.  [copy_as_padded] reallocates a boxed value with
    its block size rounded up past a 64-byte cache line, separating
    neighbours without changing behaviour. *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded v] returns a copy of [v] whose heap block is padded to
    a cache-line multiple.  Must be called before [v] is shared (the copy
    is a {e different} cell).  Immediates, custom blocks, closures and
    float arrays are returned unchanged. *)

val make_array : int -> (int -> 'a) -> 'a array
(** [make_array n f] is [Array.init n f] with every element padded via
    {!copy_as_padded}, for arrays of per-stripe / per-thread state. *)
