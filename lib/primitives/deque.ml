(* Chase–Lev work-stealing deque (Chase & Lev, SPAA'05), over abstract
   atomic cells so the same code runs on Real (Stdlib.Atomic) and Sim
   (cost-charged virtual atomics).

   Invariants, with [top <= bottom] up to the transient owner states:
   - slots [top, bottom) hold live items;
   - only the owner writes [bottom] and buffer slots;
   - [top] only moves forward, and only by a successful CAS (a thief, or
     the owner racing for the last item), so a thief that read slot [t]
     and then wins [CAS top t (t+1)] knows the owner cannot have recycled
     that slot in between: recycling index [t] requires [top > t] first,
     which would make the CAS fail.

   OCaml atomics are sequentially consistent, so the fence the C11
   formulation needs between the owner's [bottom] store and [top] load in
   [pop] is implicit. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
end

module Make (A : ATOMIC) = struct
  type 'a buf = { mask : int; slots : 'a option A.t array }

  type 'a t = {
    top : int A.t;  (* oldest live index; thieves CAS it forward *)
    bottom : int A.t;  (* next free index; owner-only writes *)
    buf : 'a buf A.t;  (* owner grows and republishes *)
  }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let fresh_buf size =
    { mask = size - 1; slots = Array.init size (fun _ -> A.make None) }

  let create ?(capacity = 16) () =
    let size = pow2 (max 2 capacity) 2 in
    (* top and bottom on their own cache lines: the owner hammers bottom
       on every push/pop and thieves hammer top; sharing a line would put
       both on every coherence miss. *)
    {
      top = Padded.copy_as_padded (A.make 0);
      bottom = Padded.copy_as_padded (A.make 0);
      buf = A.make (fresh_buf size);
    }

  let slot_get b i =
    match A.get b.slots.(i land b.mask) with
    | Some x -> x
    | None -> assert false (* slots in [top, bottom) are always written *)

  (* Owner only; called with the live range [t, b).  Copies into a buffer
     twice the size and republishes it.  Thieves holding the old buffer
     stay correct: the old slots for [t, b) are never overwritten again
     (the owner writes only the new buffer from here on). *)
  let grow q bf ~t ~b =
    let size = (bf.mask + 1) * 2 in
    let nbf = fresh_buf size in
    for i = t to b - 1 do
      A.set nbf.slots.(i land nbf.mask) (A.get bf.slots.(i land bf.mask))
    done;
    A.set q.buf nbf;
    nbf

  let push q x =
    let b = A.get q.bottom in
    let t = A.get q.top in
    let bf = A.get q.buf in
    let bf = if b - t > bf.mask then grow q bf ~t ~b else bf in
    A.set bf.slots.(b land bf.mask) (Some x);
    A.set q.bottom (b + 1)

  let pop q =
    let b = A.get q.bottom - 1 in
    let bf = A.get q.buf in
    A.set q.bottom b;
    let t = A.get q.top in
    if b < t then begin
      (* already empty: undo the speculative decrement *)
      A.set q.bottom t;
      None
    end
    else if b > t then Some (slot_get bf b)
    else begin
      (* single item left: race thieves for it via top *)
      let won = A.compare_and_set q.top t (t + 1) in
      A.set q.bottom (t + 1);
      if won then Some (slot_get bf b) else None
    end

  let steal q =
    let t = A.get q.top in
    let b = A.get q.bottom in
    if t >= b then `Empty
    else begin
      let bf = A.get q.buf in
      (* Read the slot before the CAS: winning the CAS certifies the read
         (see the header invariant); losing it discards the value.  The
         buffer read is newer than the index reads, so a grow that raced
         in between may have dropped index [t] from the copy ([top] moved
         past it first) — that surfaces as an empty slot and the CAS below
         would fail anyway. *)
      match A.get bf.slots.(t land bf.mask) with
      | None -> `Race
      | Some x -> if A.compare_and_set q.top t (t + 1) then `Stolen x else `Race
    end

  let size q =
    let b = A.get q.bottom in
    let t = A.get q.top in
    max 0 (b - t)
end
