(** Truncated exponential backoff for contended retry loops.

    Every CAS-retry loop in the repository (spinlocks, snapshot pushes,
    Multi-Queue lock acquisition) backs off through one of these to avoid
    pathological livelock under contention.  The wait is expressed as a
    number of [relax] calls, which the backend maps either to
    [Domain.cpu_relax] (real execution) or to virtual-clock ticks
    (simulation). *)

type t

val create : ?min:int -> ?max:int -> ?jitter:Xoshiro.t -> unit -> t
(** [create ?min ?max ()] starts at [min] (default 1) relax-steps and doubles
    up to [max] (default 512) on every {!once}.

    With [?jitter] (a seeded {!Xoshiro} stream), growth switches to
    decorrelated jitter: the next wait is uniform in [min, 3 * previous]
    (truncated to [max]), so threads that lost the same race don't retry in
    lockstep.  Without it the deterministic doubling path is unchanged —
    the form simulator-based tests rely on for byte-identical replays. *)

val once : t -> relax:(int -> unit) -> unit
(** [once t ~relax] calls [relax n] once with the current step count [n],
    then doubles it (truncated) — or draws the next count from the jitter
    stream when one was supplied to {!create}.  Passing the count in one
    call lets the simulator backend charge the whole wait as a single event
    instead of interpreting every pause instruction. *)

val reset : t -> unit
(** Return to the minimum step count after a success. *)

val current : t -> int
(** Current step count; exposed for tests. *)
