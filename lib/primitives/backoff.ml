type t = {
  min : int;
  max : int;
  mutable cur : int;
  jitter : Xoshiro.t option;
}

let create ?(min = 1) ?(max = 512) ?jitter () =
  if min < 1 || max < min then invalid_arg "Backoff.create";
  { min; max; cur = min; jitter }

let once t ~relax =
  relax t.cur;
  let next =
    match t.jitter with
    | None -> t.cur * 2
    | Some rng ->
        (* Decorrelated jitter (the "decorrelated" variant of AWS's
           exponential-backoff study): uniform in [min, 3 * previous].
           Threads that lost the same race stop waking in lockstep, while
           the expected wait still grows geometrically. *)
        t.min + Xoshiro.int rng (Stdlib.max 1 ((t.cur * 3) - t.min))
  in
  t.cur <- Stdlib.min t.max (Stdlib.max t.min next)

let reset t = t.cur <- t.min

let current t = t.cur
