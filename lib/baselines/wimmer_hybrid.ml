(** Standalone reimplementation of the {e hybrid k-priority queue} of
    Wimmer et al. (PPoPP'14) — "Hybrid k" in Figure 4.

    Like the centralized variant this is a behavioural reimplementation
    (the original lives inside the Pheet scheduler; DESIGN.md §4).  The
    published idea: each thread buffers up to [k] items in a private
    sequential heap and spills them to a central (locked) queue when the
    bound is reached, giving rho = T*k relaxation; delete-min prefers the
    private heap when its minimum beats the central queue's cached minimum,
    so larger [k] means fewer lock acquisitions — until the relaxation
    makes the application (e.g. SSSP) perform enough extra work to cancel
    the gain, producing the U-shaped curve of Figure 4 (right). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Heap = Seq_heap.Make (B)
  module Lock = Spinlock.Make (B)
  module Obs = Klsm_obs.Obs

  let name = "wimmer-hybrid"

  (* Observability (lib/obs; docs/METRICS.md): spills of the private heap
     into the central queue (rarer as k grows — the whole point of the
     hybrid), central-lock contention, and lazy-deletion drops. *)
  let c_flush = Obs.counter "hybrid.flush"
  let c_flush_items = Obs.counter "hybrid.flush_items"
  let c_contended = Obs.counter "hybrid.lock_contended"
  let c_lazy_drop = Obs.counter "hybrid.lazy_drop"

  type 'v t = {
    lock : Lock.t;
    global : 'v Heap.t;
    global_min : int B.atomic;  (** cached; [max_int] when empty *)
    k : int B.atomic;
    should_delete : (int -> 'v -> bool) option;
    on_lazy_delete : int -> 'v -> unit;
    obs : Obs.sheet;
  }

  type 'v handle = { t : 'v t; local : 'v Heap.t; obs : Obs.handle }

  let create_with ?seed:_ ?(k = 256) ?should_delete ?on_lazy_delete
      ~num_threads () =
    if k < 0 then invalid_arg "Wimmer_hybrid.create: k < 0";
    {
      lock = Lock.create ();
      global = Heap.create ();
      global_min = B.make max_int;
      k = B.make k;
      should_delete;
      on_lazy_delete =
        (match on_lazy_delete with Some f -> f | None -> fun _ _ -> ());
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  let create ?seed ~num_threads () = create_with ?seed ~num_threads ()

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let register t tid =
    { t; local = Heap.create (); obs = Obs.handle t.obs ~tid }

  let set_k (t : _ t) k = B.set t.k k

  let locked h f =
    Lock.with_lock
      ~on_contend:(fun () -> Obs.incr h.obs c_contended)
      h.t.lock f

  let refresh_min t = B.set t.global_min (Heap.peek_key t.global)

  let condemned h key v =
    match h.t.should_delete with Some p -> p key v | None -> false

  (* Spill the whole private buffer under one lock acquisition — the
     batching that makes the hybrid cheaper than the centralized queue. *)
  let flush_local h =
    if not (Heap.is_empty h.local) then begin
      Obs.incr h.obs c_flush;
      Obs.add h.obs c_flush_items (Heap.size h.local);
      locked h (fun () ->
          let rec move () =
            match Heap.pop_min h.local with
            | None -> ()
            | Some (key, v) ->
                if condemned h key v then begin
                  Obs.incr h.obs c_lazy_drop;
                  h.t.on_lazy_delete key v
                end
                else Heap.insert h.t.global key v;
                move ()
          in
          move ();
          refresh_min h.t)
    end

  let insert h key value =
    if key < 0 then invalid_arg "Wimmer_hybrid.insert: negative key";
    Heap.insert h.local key value;
    if Heap.size h.local > B.get h.t.k then flush_local h

  (* Batched insert (Pq_intf): items land in the local heap first anyway, so
     the loop only flushes to the global heap when the batch overflows k. *)
  let insert_batch h pairs =
    Array.iter (fun (key, value) -> insert h key value) pairs

  let pop_global h =
    locked h (fun () ->
        let rec pop () =
          match Heap.pop_min h.t.global with
          | None -> None
          | Some (key, v) ->
              if condemned h key v then begin
                Obs.incr h.obs c_lazy_drop;
                h.t.on_lazy_delete key v;
                pop ()
              end
              else Some (key, v)
        in
        let r = pop () in
        refresh_min h.t;
        r)

  let rec pop_local h =
    match Heap.pop_min h.local with
    | None -> None
    | Some (key, v) ->
        if condemned h key v then begin
          Obs.incr h.obs c_lazy_drop;
          h.t.on_lazy_delete key v;
          pop_local h
        end
        else Some (key, v)

  let try_delete_min h =
    let local_min = Heap.peek_key h.local in
    let global_min = B.get h.t.global_min in
    if local_min = max_int && global_min = max_int then None
    else if local_min <= global_min then begin
      match pop_local h with None -> pop_global h | some -> some
    end
    else begin
      match pop_global h with None -> pop_local h | some -> some
    end

  (* Batched delete (Pq_intf): plain loop (the local/global split already
     keeps the common case lock-free). *)
  let try_delete_min_batch h n =
    let rec go acc got =
      if got >= n then List.rev acc
      else
        match try_delete_min h with
        | Some kv -> go (kv :: acc) (got + 1)
        | None -> List.rev acc
    in
    go [] 0

  let approximate_size (t : _ t) =
    Lock.with_lock t.lock (fun () -> Heap.size t.global)
end

module Default = Make (Klsm_backend.Real)
module _ : Klsm_core.Pq_intf.S = Default
