(** Multi-Queues (Rihani, Sanders, Dementiev, 2014) — "MultiQ" in
    Figure 3: [c * T] spin-locked sequential binary heaps.

    Insert pushes into a random queue (retrying elsewhere on lock
    contention).  Delete-min samples two distinct random queues, compares
    their cached minima and pops from the smaller — the power-of-two-
    choices load balancing that gives Multi-Queues their expected (but, as
    the paper stresses, not worst-case) rank-error quality, roughly
    comparable to k-LSM at k = 4 according to its inventors (§6.1).

    Each heap caches its minimal key in an atomic so the two-choices
    comparison is lock-free; the cache is refreshed by the lock holder
    after every mutation. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Heap = Seq_heap.Make (B)
  module Lock = Spinlock.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro
  module Obs = Klsm_obs.Obs

  let name = "multiq"

  (* Observability (lib/obs; docs/METRICS.md): how often the random choices
     collide (locked queue on insert, raced pop on delete) and how often the
     probabilistic sampling gives up into the deterministic sweep. *)
  let c_insert_retry = Obs.counter "multiq.insert_retry"
  let c_delete_retry = Obs.counter "multiq.delete_retry"
  let c_scan_all = Obs.counter "multiq.scan_all"

  type 'v queue = {
    lock : Lock.t;
    heap : 'v Heap.t;
    cached_min : int B.atomic;  (** [max_int] when empty *)
  }

  type 'v t = { queues : 'v queue array; seed : int; obs : Obs.sheet }
  type 'v handle = { t : 'v t; rng : Xoshiro.t; obs : Obs.handle }

  let create_with ?(seed = 1) ?(c = 2) ~num_threads () =
    if num_threads < 1 then invalid_arg "Multiq.create: num_threads < 1";
    let n = max 2 (c * num_threads) in
    {
      queues =
        Array.init n (fun _ ->
            {
              lock = Lock.create ();
              heap = Heap.create ();
              cached_min = B.make max_int;
            });
      seed;
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let create ?seed ~num_threads () = create_with ?seed ~num_threads ()

  let register t tid =
    {
      t;
      rng = Xoshiro.create ~seed:(t.seed + (1000003 * (tid + 1)));
      obs = Obs.handle t.obs ~tid;
    }

  let refresh_min q = B.set q.cached_min (Heap.peek_key q.heap)

  let insert h key value =
    if key < 0 then invalid_arg "Multiq.insert: negative key";
    let n = Array.length h.t.queues in
    let rec attempt () =
      let q = h.t.queues.(Xoshiro.int h.rng n) in
      if Lock.try_acquire q.lock then begin
        Heap.insert q.heap key value;
        refresh_min q;
        Lock.release q.lock
      end
      else begin
        (* Contended: pick another random queue. *)
        Obs.incr h.obs c_insert_retry;
        attempt ()
      end
    in
    attempt ()

  (* Batched insert (Pq_intf): one lock acquisition covers the whole batch
     on a single random queue — the batching/stickiness pattern of
     "Engineering MultiQueues" (arXiv 2504.11652).  Load balance across
     queues is preserved because each batch lands on a fresh random
     queue. *)
  let insert_batch h pairs =
    if Array.length pairs > 0 then begin
      Array.iter
        (fun (key, _) ->
          if key < 0 then invalid_arg "Multiq.insert_batch: negative key")
        pairs;
      let n = Array.length h.t.queues in
      let rec attempt () =
        let q = h.t.queues.(Xoshiro.int h.rng n) in
        if Lock.try_acquire q.lock then begin
          Array.iter (fun (key, value) -> Heap.insert q.heap key value) pairs;
          refresh_min q;
          Lock.release q.lock
        end
        else begin
          Obs.incr h.obs c_insert_retry;
          attempt ()
        end
      in
      attempt ()
    end

  (* Pop from one specific queue; [None] if it is empty (or its min moved). *)
  let pop_from q =
    Lock.acquire q.lock;
    let r = Heap.pop_min q.heap in
    refresh_min q;
    Lock.release q.lock;
    r

  let try_delete_min h =
    let n = Array.length h.t.queues in
    let rec attempt tries =
      if tries > 2 * n then begin
        Obs.incr h.obs c_scan_all;
        scan_all 0
      end
      else begin
        let i = Xoshiro.int h.rng n in
        let j =
          let r = Xoshiro.int h.rng (n - 1) in
          if r >= i then r + 1 else r
        in
        let qi = h.t.queues.(i) and qj = h.t.queues.(j) in
        let mi = B.get qi.cached_min and mj = B.get qj.cached_min in
        if mi = max_int && mj = max_int then attempt (tries + 1)
        else begin
          let q = if mi <= mj then qi else qj in
          match pop_from q with
          | Some kv -> Some kv
          | None ->
              (* Raced with another deleter. *)
              Obs.incr h.obs c_delete_retry;
              attempt (tries + 1)
        end
      end
    (* All sampled queues looked empty: one deterministic sweep before
       reporting empty, so emptiness is not purely probabilistic. *)
    and scan_all i =
      if i >= n then None
      else begin
        match pop_from h.t.queues.(i) with
        | Some kv -> Some kv
        | None -> scan_all (i + 1)
      end
    in
    attempt 0

  (* Batched delete (Pq_intf): re-sampling per item is the MultiQueue's
     quality mechanism, so no bulk shortcut; plain loop. *)
  let try_delete_min_batch h n =
    let rec go acc got =
      if got >= n then List.rev acc
      else
        match try_delete_min h with
        | Some kv -> go (kv :: acc) (got + 1)
        | None -> List.rev acc
    in
    go [] 0

  let approximate_size t =
    Array.fold_left (fun acc q -> acc + Heap.size q.heap) 0 t.queues
end

module Default = Make (Klsm_backend.Real)
module _ : Klsm_core.Pq_intf.S = Default
