(** Standalone reimplementation of the {e centralized k-priority queue} of
    Wimmer et al. (PPoPP'14) — "Centralized k" in Figure 4.

    The original is welded into the Pheet task scheduler ("cannot be used
    as standalone data structures", paper §6); what Figure 4 needs from it
    is its qualitative behaviour: a single global structure whose
    performance is {e independent of k} (the paper: "no visible difference
    between different values for k") and which degrades with thread count
    because every operation serializes on the central lock.  We therefore
    implement it as one spin-locked global heap with the same lazy-deletion
    hook the benchmark applies to our queue; [k] is accepted and ignored.
    This substitution is recorded in DESIGN.md §4. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Heap = Seq_heap.Make (B)
  module Lock = Spinlock.Make (B)

  let name = "wimmer-centralized"

  type 'v t = {
    lock : Lock.t;
    heap : 'v Heap.t;
    should_delete : (int -> 'v -> bool) option;
    on_lazy_delete : int -> 'v -> unit;
  }

  type 'v handle = 'v t

  let create_with ?seed:_ ?k:_ ?should_delete ?on_lazy_delete ~num_threads:_ () =
    {
      lock = Lock.create ();
      heap = Heap.create ();
      should_delete;
      on_lazy_delete =
        (match on_lazy_delete with Some f -> f | None -> fun _ _ -> ());
    }

  let create ?seed ~num_threads () = create_with ?seed ~num_threads ()
  let register t _tid = t

  let insert h key value =
    if key < 0 then invalid_arg "Wimmer_centralized.insert: negative key";
    Lock.with_lock h.lock (fun () -> Heap.insert h.heap key value)

  (* Batched insert (Pq_intf): one lock acquisition covers the batch. *)
  let insert_batch h pairs =
    if Array.length pairs > 0 then begin
      Array.iter
        (fun (key, _) ->
          if key < 0 then
            invalid_arg "Wimmer_centralized.insert_batch: negative key")
        pairs;
      Lock.with_lock h.lock (fun () ->
          Array.iter (fun (key, value) -> Heap.insert h.heap key value) pairs)
    end

  let try_delete_min h =
    Lock.with_lock h.lock (fun () ->
        (* Lazy deletion: condemned items die on the way out. *)
        let rec pop () =
          match Heap.pop_min h.heap with
          | None -> None
          | Some (key, v) -> (
              match h.should_delete with
              | Some p when p key v ->
                  h.on_lazy_delete key v;
                  pop ()
              | _ -> Some (key, v))
        in
        pop ())

  let size h = Lock.with_lock h.lock (fun () -> Heap.size h.heap)
end

module Default = Make (Klsm_backend.Real)
