(** Standalone reimplementation of the {e centralized k-priority queue} of
    Wimmer et al. (PPoPP'14) — "Centralized k" in Figure 4.

    The original is welded into the Pheet task scheduler ("cannot be used
    as standalone data structures", paper §6); what Figure 4 needs from it
    is its qualitative behaviour: a single global structure whose
    performance is {e independent of k} (the paper: "no visible difference
    between different values for k") and which degrades with thread count
    because every operation serializes on the central lock.  We therefore
    implement it as one spin-locked global heap with the same lazy-deletion
    hook the benchmark applies to our queue; [k] is accepted and ignored.
    This substitution is recorded in DESIGN.md §4. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Heap = Seq_heap.Make (B)
  module Lock = Spinlock.Make (B)
  module Obs = Klsm_obs.Obs

  let name = "wimmer-centralized"

  (* Observability (lib/obs; docs/METRICS.md): central-lock contention (the
     serialization that makes this queue k-independent and non-scalable)
     and lazy-deletion drops on the way out. *)
  let c_contended = Obs.counter "centralized.lock_contended"
  let c_lazy_drop = Obs.counter "centralized.lazy_drop"

  type 'v t = {
    lock : Lock.t;
    heap : 'v Heap.t;
    should_delete : (int -> 'v -> bool) option;
    on_lazy_delete : int -> 'v -> unit;
    obs : Obs.sheet;
  }

  type 'v handle = { t : 'v t; obs : Obs.handle }

  let create_with ?seed:_ ?k:_ ?should_delete ?on_lazy_delete ~num_threads () =
    {
      lock = Lock.create ();
      heap = Heap.create ();
      should_delete;
      on_lazy_delete =
        (match on_lazy_delete with Some f -> f | None -> fun _ _ -> ());
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  let create ?seed ~num_threads () = create_with ?seed ~num_threads ()

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let register t tid = { t; obs = Obs.handle t.obs ~tid }

  let locked h f =
    Lock.with_lock
      ~on_contend:(fun () -> Obs.incr h.obs c_contended)
      h.t.lock f

  let insert h key value =
    if key < 0 then invalid_arg "Wimmer_centralized.insert: negative key";
    locked h (fun () -> Heap.insert h.t.heap key value)

  (* Batched insert (Pq_intf): one lock acquisition covers the batch. *)
  let insert_batch h pairs =
    if Array.length pairs > 0 then begin
      Array.iter
        (fun (key, _) ->
          if key < 0 then
            invalid_arg "Wimmer_centralized.insert_batch: negative key")
        pairs;
      locked h (fun () ->
          Array.iter (fun (key, value) -> Heap.insert h.t.heap key value) pairs)
    end

  let try_delete_min h =
    locked h (fun () ->
        (* Lazy deletion: condemned items die on the way out. *)
        let rec pop () =
          match Heap.pop_min h.t.heap with
          | None -> None
          | Some (key, v) -> (
              match h.t.should_delete with
              | Some p when p key v ->
                  Obs.incr h.obs c_lazy_drop;
                  h.t.on_lazy_delete key v;
                  pop ()
              | _ -> Some (key, v))
        in
        pop ())

  (* Batched delete (Pq_intf): one lock acquisition for the whole batch. *)
  let try_delete_min_batch h n =
    if n <= 0 then []
    else
      locked h (fun () ->
          let rec pop () =
            match Heap.pop_min h.t.heap with
            | None -> None
            | Some (key, v) -> (
                match h.t.should_delete with
                | Some p when p key v ->
                    Obs.incr h.obs c_lazy_drop;
                    h.t.on_lazy_delete key v;
                    pop ()
                | _ -> Some (key, v))
          in
          let rec go acc got =
            if got >= n then List.rev acc
            else
              match pop () with
              | Some kv -> go (kv :: acc) (got + 1)
              | None -> List.rev acc
          in
          go [] 0)

  let size (t : _ t) = Lock.with_lock t.lock (fun () -> Heap.size t.heap)
end

module Default = Make (Klsm_backend.Real)
module _ : Klsm_core.Pq_intf.S = Default
