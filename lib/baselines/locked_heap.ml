(** "Heap + Lock": a sequential binary heap behind one spinlock — the
    classic non-scalable baseline of Figure 3.  Its throughput per thread
    decays roughly as 1/T, which the figure uses to anchor the bottom of
    the plot. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Heap = Seq_heap.Make (B)
  module Lock = Spinlock.Make (B)

  let name = "heap+lock"

  type 'v t = { lock : Lock.t; heap : 'v Heap.t }
  type 'v handle = 'v t

  let create ?seed:_ ~num_threads:_ () =
    { lock = Lock.create (); heap = Heap.create () }

  let register t _tid = t

  let insert h key value =
    if key < 0 then invalid_arg "Locked_heap.insert: negative key";
    Lock.with_lock h.lock (fun () -> Heap.insert h.heap key value)

  (* Batched insert (Pq_intf): one lock acquisition covers the batch. *)
  let insert_batch h pairs =
    if Array.length pairs > 0 then begin
      Array.iter
        (fun (key, _) ->
          if key < 0 then invalid_arg "Locked_heap.insert_batch: negative key")
        pairs;
      Lock.with_lock h.lock (fun () ->
          Array.iter (fun (key, value) -> Heap.insert h.heap key value) pairs)
    end

  let try_delete_min h = Lock.with_lock h.lock (fun () -> Heap.pop_min h.heap)

  let size h = Lock.with_lock h.lock (fun () -> Heap.size h.heap)
end

module Default = Make (Klsm_backend.Real)
