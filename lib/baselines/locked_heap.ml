(** "Heap + Lock": a sequential binary heap behind one spinlock — the
    classic non-scalable baseline of Figure 3.  Its throughput per thread
    decays roughly as 1/T, which the figure uses to anchor the bottom of
    the plot. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Heap = Seq_heap.Make (B)
  module Lock = Spinlock.Make (B)
  module Obs = Klsm_obs.Obs

  let name = "heap+lock"

  (* Observability (lib/obs; docs/METRICS.md): the single interesting
     internal quantity of this baseline is how often the one lock is
     contended — the serialization Figure 3 blames for the 1/T decay. *)
  let c_contended = Obs.counter "heap.lock_contended"

  type 'v t = { lock : Lock.t; heap : 'v Heap.t; obs : Obs.sheet }
  type 'v handle = { t : 'v t; obs : Obs.handle }

  let create ?seed:_ ~num_threads () =
    {
      lock = Lock.create ();
      heap = Heap.create ();
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let register t tid = { t; obs = Obs.handle t.obs ~tid }

  let locked h f =
    Lock.with_lock
      ~on_contend:(fun () -> Obs.incr h.obs c_contended)
      h.t.lock f

  let insert h key value =
    if key < 0 then invalid_arg "Locked_heap.insert: negative key";
    locked h (fun () -> Heap.insert h.t.heap key value)

  (* Batched insert (Pq_intf): one lock acquisition covers the batch. *)
  let insert_batch h pairs =
    if Array.length pairs > 0 then begin
      Array.iter
        (fun (key, _) ->
          if key < 0 then invalid_arg "Locked_heap.insert_batch: negative key")
        pairs;
      locked h (fun () ->
          Array.iter (fun (key, value) -> Heap.insert h.t.heap key value) pairs)
    end

  let try_delete_min h = locked h (fun () -> Heap.pop_min h.t.heap)

  (* Batched delete (Pq_intf): one lock acquisition for the whole batch. *)
  let try_delete_min_batch h n =
    if n <= 0 then []
    else
      locked h (fun () ->
          let rec go acc got =
            if got >= n then List.rev acc
            else
              match Heap.pop_min h.t.heap with
              | Some kv -> go (kv :: acc) (got + 1)
              | None -> List.rev acc
          in
          go [] 0)

  let size t = Lock.with_lock t.lock (fun () -> Heap.size t.heap)
end

module Default = Make (Klsm_backend.Real)
module _ : Klsm_core.Pq_intf.S = Default
