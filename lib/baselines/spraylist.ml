(** The SprayList (Alistarh, Kopinsky, Li, Shavit, PPoPP'15) — the paper's
    main relaxed lock-free competitor (Figure 3).

    Inserts are plain skiplist inserts.  Delete-min performs a "spray": a
    random walk that starts [O(log T)] levels up, takes a uniform number of
    horizontal steps on each level and descends one level at a time; the
    landed-on node is claimed with a test-and-set.  The walk spreads
    deleters over the O(T log^3 T) smallest items, removing the contention
    hot-spot at the list head at the cost of relaxation without a
    worst-case bound (the paper's §6 discussion).  With probability 1/T a
    deleter becomes a cleaner instead, walking linearly from the head like
    Lindén & Jonsson and physically unlinking the dead prefix — the
    SprayList's own garbage-collection scheme. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Sk = Skiplist.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro
  module Bits = Klsm_primitives.Bits
  module Obs = Klsm_obs.Obs

  let name = "spraylist"
  let cleaner_prefix_bound = 32

  (* Observability (lib/obs; docs/METRICS.md): how delete-min attempts
     split between sprays, cleaner duty and the exact-walk fallback — the
     contention-spreading machinery §6 compares against the k-LSM. *)
  let c_spray = Obs.counter "spray.spray"
  let c_collision = Obs.counter "spray.collision"
  let c_linear_fallback = Obs.counter "spray.linear_fallback"
  let c_cleaner = Obs.counter "spray.cleaner"
  let c_restructure = Obs.counter "spray.restructure"

  type 'v t = { sk : 'v Sk.t; num_threads : int; seed : int; obs : Obs.sheet }
  type 'v handle = { t : 'v t; rng : Xoshiro.t; obs : Obs.handle }

  let create_with ?(seed = 1) ~dummy ~num_threads () =
    if num_threads < 1 then invalid_arg "Spraylist.create: num_threads < 1";
    {
      sk = Sk.create ~dummy ();
      num_threads;
      seed;
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let register t tid =
    {
      t;
      rng = Xoshiro.create ~seed:(t.seed + (1000003 * (tid + 1)));
      obs = Obs.handle t.obs ~tid;
    }

  let insert h key value =
    if key < 0 then invalid_arg "Spraylist.insert: negative key";
    ignore (Sk.insert h.t.sk ~rng:h.rng key value)

  (* Batched insert (Pq_intf): no bulk path in a skiplist; plain loop. *)
  let insert_batch h pairs =
    Array.iter (fun (key, value) -> insert h key value) pairs

  (* Spray parameters from the SprayList paper: start height H = log T + 1,
     per-level jump length uniform in [0, M * log T + 1], descend D = 1. *)
  let spray_height t = min (Sk.max_height - 1) (Bits.ceil_log2 (t.num_threads + 1) + 1)
  let spray_jump t = (2 * Bits.ceil_log2 (t.num_threads + 1)) + 1

  (* One spray descent; lands on a candidate node (or None if the structure
     looks empty from here). *)
  let spray h =
    let t = h.t in
    let sk = t.sk in
    let jump_bound = spray_jump t in
    (* Walk within the head's towers first. *)
    let current = ref sk.Sk.head in
    for level = spray_height t downto 0 do
      let steps = Xoshiro.int h.rng (jump_bound + 1) in
      let remaining = ref steps in
      let continue_walk = ref true in
      while !continue_walk && !remaining > 0 do
        let cur = !current in
        if level < cur.Sk.height then begin
          match Sk.follow (B.get cur.Sk.next.(level)) with
          | Some n ->
              B.tick 20;
              current := n;
              decr remaining
          | None -> continue_walk := false
        end
        else continue_walk := false
      done
    done;
    if !current == sk.Sk.head then None else Some !current

  (* Linden-style linear walk from the head: used by cleaners and as the
     fallback that guarantees progress / detects emptiness. *)
  let linear_delete_min h =
    let sk = h.t.sk in
    let rec walk prefix link =
      match Sk.follow link with
      | None -> None
      | Some n ->
          if Sk.try_take n then begin
            Sk.mark_node n;
            if prefix >= cleaner_prefix_bound then begin
              Obs.incr h.obs c_restructure;
              ignore (Sk.search sk (Sk.node_key n + 1))
            end;
            Some (Sk.node_key n, Sk.node_value n)
          end
          else begin
            B.tick 20;
            walk (prefix + 1) (Sk.next_bottom n)
          end
    in
    walk 0 (Sk.bottom_head sk)

  let max_spray_attempts = 8

  let try_delete_min h =
    (* With probability 1/T, act as a cleaner. *)
    if Xoshiro.int h.rng h.t.num_threads = 0 then begin
      Obs.incr h.obs c_cleaner;
      linear_delete_min h
    end
    else begin
      let rec attempt n =
        if n >= max_spray_attempts then begin
          (* Too many collisions/dead landings: fall back to the exact walk
             so the operation cannot fail spuriously on a non-empty list. *)
          Obs.incr h.obs c_linear_fallback;
          linear_delete_min h
        end
        else begin
          Obs.incr h.obs c_spray;
          match spray h with
          | None ->
              Obs.incr h.obs c_linear_fallback;
              linear_delete_min h
          | Some node ->
              if Sk.try_take node then begin
                Sk.mark_node node;
                Some (Sk.node_key node, Sk.node_value node)
              end
              else begin
                Obs.incr h.obs c_collision;
                attempt (n + 1)
              end
        end
      in
      attempt 0
    end

  (* Batched delete (Pq_intf shape): each spray re-randomizes per item —
     that is the quality mechanism — so no bulk shortcut; loop. *)
  let try_delete_min_batch h n =
    let rec go acc got =
      if got >= n then List.rev acc
      else
        match try_delete_min h with
        | Some kv -> go (kv :: acc) (got + 1)
        | None -> List.rev acc
    in
    go [] 0

  let alive_size t = List.length (Sk.to_alive_list t.sk)
end

module Default = Make (Klsm_backend.Real)
