(** Skiplist-based priority queue in the style of Lindén & Jonsson
    (OPODIS'13) — the paper's representative exact (non-relaxed) lock-free
    priority queue (Figure 3).

    Delete-min walks the bottom level from the head and claims the first
    node whose [taken] flag it wins — one CAS on an uncontended-in-
    expectation cache line, instead of the remove-and-restructure of
    Lotan-Shavit.  Claimed nodes accumulate as a logically-deleted prefix
    that is physically unlinked in batches, only once it grows beyond
    [prefix_bound], so the expensive multi-level restructuring cost is
    amortized — the key idea of Lindén & Jonsson's "minimal memory
    contention" design. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Sk = Skiplist.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro
  module Obs = Klsm_obs.Obs

  let name = "linden"
  let prefix_bound = 32

  (* Observability (lib/obs; docs/METRICS.md): lost take races on the
     deleted prefix and the amortized physical restructures. *)
  let c_take_fail = Obs.counter "linden.take_fail"
  let c_restructure = Obs.counter "linden.restructure"

  type 'v t = { sk : 'v Sk.t; seed : int; obs : Obs.sheet }
  type 'v handle = { t : 'v t; rng : Xoshiro.t; obs : Obs.handle }

  let create_with ?(seed = 1) ~dummy ~num_threads () =
    {
      sk = Sk.create ~dummy ();
      seed;
      obs = Obs.create_sheet ~now:B.time ~num_threads ();
    }

  (** Internal-counter snapshot (see {!Pq_intf.S.stats}). *)
  let stats (t : _ t) = Obs.snapshot t.obs

  let register t tid =
    {
      t;
      rng = Xoshiro.create ~seed:(t.seed + (1000003 * (tid + 1)));
      obs = Obs.handle t.obs ~tid;
    }

  let insert h key value =
    if key < 0 then invalid_arg "Linden_pq.insert: negative key";
    ignore (Sk.insert h.t.sk ~rng:h.rng key value)

  (* Batched insert (Pq_intf): no bulk path in a skiplist; plain loop. *)
  let insert_batch h pairs =
    Array.iter (fun (key, value) -> insert h key value) pairs

  let try_delete_min h =
    let sk = h.t.sk in
    let rec walk prefix link =
      match Sk.follow link with
      | None -> None
      | Some n ->
          if Sk.try_take n then begin
            Sk.mark_node n;
            (* Batch the physical unlinking: restructure only when the dead
               prefix is long enough to amortize the multi-level repair. *)
            if prefix >= prefix_bound then begin
              Obs.incr h.obs c_restructure;
              ignore (Sk.search sk (Sk.node_key n + 1))
            end;
            Some (Sk.node_key n, Sk.node_value n)
          end
          else begin
            Obs.incr h.obs c_take_fail;
            B.tick 20;
            walk (prefix + 1) (Sk.next_bottom n)
          end
    in
    walk 0 (Sk.bottom_head sk)

  (* Batched delete (Pq_intf shape): no bulk path in a skiplist; loop. *)
  let try_delete_min_batch h n =
    let rec go acc got =
      if got >= n then List.rev acc
      else
        match try_delete_min h with
        | Some kv -> go (kv :: acc) (got + 1)
        | None -> List.rev acc
    in
    go [] 0

  (** Alive length; O(n), for tests. *)
  let alive_size t = List.length (Sk.to_alive_list t.sk)
end

module Default = Make (Klsm_backend.Real)
