(** Test-and-test-and-set spinlock with truncated exponential backoff.

    Used by the "Heap + Lock" baseline of Figure 3, by the Multi-Queues and
    by the Wimmer et al. reimplementations — all the lock-based comparison
    points of the paper.  The TTAS read loop keeps the lock word in shared
    state while waiting, so under the simulator's coherence model waiting
    threads spin on cache hits and only pay a miss when the holder
    releases — the textbook behaviour the throughput figure depends on. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Backoff = Klsm_primitives.Backoff

  type t = bool B.atomic

  let create () : t = B.make false

  (** Single attempt; [true] iff the lock was acquired. *)
  let try_acquire t = (not (B.get t)) && B.compare_and_set t false true

  (** Blocking acquire (spin).  [on_contend] fires once per acquisition that
      did not succeed on the first attempt — the hook the lock-based
      baselines hang their [*.lock_contended] observability counters on
      (lib/obs; docs/METRICS.md). *)
  let acquire ?(on_contend = fun () -> ()) t =
    if not (try_acquire t) then begin
      on_contend ();
      let backoff = Backoff.create () in
      let rec loop () =
        (* Test-and-test-and-set: spin on plain reads until free. *)
        while B.get t do
          Backoff.once backoff ~relax:B.relax_n
        done;
        if not (try_acquire t) then loop ()
      in
      loop ()
    end

  let release t = B.set t false

  (** Run [f] under the lock. *)
  let with_lock ?on_contend t f =
    acquire ?on_contend t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e
end
