(** The chaos sweep driver: seeds × fault plans on the simulator, shared
    by [bench chaos] and [bin/chaos.exe].

    Two kinds of cases, both run under an installed {!Chaos} plan:

    - {b queue cases} drive the combined k-LSM directly with uniquely
      tagged payloads while a {!Klsm_harness.Oracle} shadows every insert
      and delete.  After the run the survivors drain the queue and the
      case asserts {e conservation}: every payload whose insert returned
      comes out exactly once (a crashed thread's single in-flight payload
      may vanish with it; payloads it never reached are not owed),
      nothing comes out twice, the oracle never sees a key deleted twice, and the
      structural invariants (strictly decreasing block levels, sorted
      blocks) still hold for the shared array and every surviving
      thread-local LSM.
    - {b sched cases} run a {!Klsm_sched.Closed_loop} workload with the
      robustness knobs on (leases, retries, dead-lettering, supervision)
      and assert that every admitted task reaches a terminal state
      ([lost = 0]), nothing completes twice (the completion log has no
      duplicate ids), and the run makes bounded virtual-time progress
      (no give-up) — the no-deadlock half of the acceptance bar.

    A case is deterministic in (seed, plan): rerunning a reported failure
    replays it exactly (docs/CHAOS.md shows the workflow).

    {!teeth} is the suite's self-test: it flips Listing 4's publication
    order ({!Klsm_core.Dist_lsm.test_only_flip_publication_order}) and
    demands that crash plans aimed between the two writes make the
    conservation check fail — an injector that cannot catch a planted bug
    proves nothing about the absence of real ones. *)

module Sim = Klsm_backend.Sim
module K = Klsm_core.Klsm.Make (Sim)
module SK = Klsm_core.Sharded_klsm.Make (Sim)
module Spill = Klsm_store.Spill.Make (Sim)
module Dist_lsm = Klsm_core.Dist_lsm
module Shared = K.Shared_klsm
module Block_array = K.Block_array
module CL = Klsm_sched.Closed_loop.Make (Sim)
module Worker = CL.Worker
module Obs = Klsm_obs.Obs
module Oracle = Klsm_harness.Oracle
module Audit = Klsm_store.Audit
module Report = Klsm_harness.Report
module Xoshiro = Klsm_primitives.Xoshiro

type case_result = {
  label : string;
  seed : int;
  plan_text : string;
  cas_fails : int;  (** faults actually injected, by kind *)
  stalls : int;
  crashes : int;
  violations : string list;  (** empty = the case passed *)
  info : (string * int) list;  (** extra counters for the report *)
}

let key_range = 1 lsl 16

(* ------------------------------------------------------------------ *)
(* Queue-level case                                                    *)
(* ------------------------------------------------------------------ *)

let queue_case ~seed ~threads ~per_thread ~k plan =
  Sim.configure ~seed ();
  let plan_text = Chaos.plan_to_string plan in
  let q = K.create_with ~seed ~k ~num_threads:threads () in
  let handles = Array.make threads None in
  let total = threads * per_thread in
  let got = Array.make total 0 in
  (* Conservation is owed only for payloads whose insert returned: a
     crashed thread never reaches its remaining loop iterations, and its
     one in-flight payload (insert entered, not returned) may go either
     way — the item becomes visible part-way through the protocol, so it
     may be delivered once, or vanish with the crasher.  Either is fine;
     delivering it twice is not ([got] catches that regardless). *)
  let submitted = Array.make total false in
  let oracle = Oracle.create ~universe:key_range in
  let oracle_violations = ref 0 in
  let max_rank_error = ref 0 in
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  Chaos.install plan;
  (try
     Sim.parallel_run ~num_threads:threads (fun tid ->
         let h = K.register q tid in
         handles.(tid) <- Some h;
         let rng = Xoshiro.create ~seed:(seed + (7919 * tid)) in
         for i = 0 to per_thread - 1 do
           let payload = (tid * per_thread) + i in
           let key = Xoshiro.int rng key_range in
           (* Oracle first: the item becomes visible to other threads
              part-way through the insert (same pattern as Quality). *)
           Oracle.insert oracle key;
           K.insert h key payload;
           submitted.(payload) <- true;
           if i land 1 = 1 then
             match K.try_delete_min h with
             | None -> ()
             | Some (dk, v) ->
                 got.(v) <- got.(v) + 1;
                 (match Oracle.delete oracle dk with
                 | e -> if e > !max_rank_error then max_rank_error := e
                 | exception Failure _ ->
                     incr oracle_violations)
         done)
   with Sim.Thread_failure (tid, e) ->
     violation "thread %d failed: %s" tid (Printexc.to_string e));
  let faults = Chaos.stats () in
  let crashed = Chaos.crashed_tids () in
  Chaos.uninstall ();
  (* Survivor drain: crashed threads' items must still be reachable
     through spy.  The drainer retries through empty results because spy
     picks random victims (same miss bound as bin/fuzz.ml). *)
  let drained = ref 0 in
  (match
     Array.to_list handles
     |> List.filteri (fun tid _ -> not (List.mem tid crashed))
     |> List.find_map (fun h -> h)
   with
  | None -> violation "no surviving thread to drain with"
  | Some h ->
      let misses = ref 0 in
      while !misses < 300 do
        match K.try_delete_min h with
        | Some (dk, v) ->
            incr drained;
            got.(v) <- got.(v) + 1;
            (match Oracle.delete oracle dk with
            | e -> if e > !max_rank_error then max_rank_error := e
            | exception Failure _ -> incr oracle_violations);
            misses := 0
        | None -> incr misses
      done);
  if !oracle_violations > 0 then
    violation "oracle: %d deletes of absent keys" !oracle_violations;
  (* Conservation: every submitted payload delivered exactly once; no
     payload (submitted or in-flight) delivered twice. *)
  let lost = ref 0 and dup = ref 0 in
  for p = 0 to total - 1 do
    if got.(p) > 1 then incr dup
    else if got.(p) = 0 && submitted.(p) then incr lost
  done;
  if !lost > 0 then violation "%d payloads lost" !lost;
  if !dup > 0 then violation "%d payloads delivered twice" !dup;
  (* Structural invariants of everything the survivors can still reach
     (Block.check_invariants now also asserts the SoA keys mirror and that
     no Retired block is reachable). *)
  (try
     match Shared.peek_shared (K.internal_shared q) with
     | None -> ()
     | Some arr -> Block_array.check_invariants arr
   with Failure msg -> violation "shared invariant: %s" msg);
  Array.iteri
    (fun tid h ->
      match h with
      | Some h when not (List.mem tid crashed) -> (
          try K.Dist_lsm.check_invariants (K.internal_dist h)
          with Failure msg -> violation "dist[%d] invariant: %s" tid msg)
      | _ -> ())
    handles;
  (* Pool-reuse safety (paper §4.4 adapted; DESIGN.md §11): a recycled
     block must never be aliased by a published structure.  Collect every
     block physically reachable from the shared snapshot and the surviving
     thread-local LSMs, and assert it is disjoint (physical equality) from
     every surviving thread's freelist. *)
  let reachable = ref [] in
  (match Shared.peek_shared (K.internal_shared q) with
  | None -> ()
  | Some arr ->
      Array.iter (fun b -> reachable := b :: !reachable) (Block_array.blocks arr));
  Array.iteri
    (fun tid h ->
      match h with
      | Some h when not (List.mem tid crashed) ->
          let d = K.internal_dist h in
          for i = 0 to K.Dist_lsm.size d - 1 do
            match K.Dist_lsm.block_at d i with
            | Some b -> reachable := b :: !reachable
            | None -> ()
          done
      | _ -> ())
    handles;
  let pooled = ref 0 in
  Array.iteri
    (fun tid h ->
      match h with
      | Some h when not (List.mem tid crashed) ->
          Array.iteri
            (fun lvl free ->
              List.iter
                (fun pb ->
                  incr pooled;
                  if List.exists (fun rb -> rb == pb) !reachable then
                    violation
                      "pool[%d] level-%d block aliased by a live structure"
                      tid lvl)
                free)
            h.K.pool.K.Block.Pool.slots
      | _ -> ())
    handles;
  {
    label = "queue";
    seed;
    plan_text;
    cas_fails = faults.Chaos.cas_fails;
    stalls = faults.Chaos.stalls;
    crashes = faults.Chaos.crashes;
    violations = List.rev !violations;
    info =
      [
        ("items", total);
        ("drained", !drained);
        ("max_rank_error", !max_rank_error);
        ("crashed_threads", List.length crashed);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Sharded queue case                                                  *)
(* ------------------------------------------------------------------ *)

(** Conservation case for the contention-striped queue
    ({!Klsm_core.Sharded_klsm}): same workload, oracle and acceptance bar
    as {!queue_case}, but driving the S-stripe composition so the
    stripe-publish and migration protocol steps sit under fault pressure —
    crashes mid-stripe-publish ([sharded.spill.publish],
    [shared.push_snapshot.before]) must not lose already-inserted items,
    and CAS-failure storms on one stripe must only slow things down (and
    trip the migration policy), never break conservation.  Structural
    invariants are asserted per stripe. *)
let sharded_case ?(sticky = 0) ?(buf = 0) ?(dbuf = 0) ?adapt ~seed ~threads
    ~per_thread ~k ~shards plan =
  Sim.configure ~seed ();
  let plan_text = Chaos.plan_to_string plan in
  (* Latch counters on for this queue's sheet so the report can show the
     stripe-level fault response (CAS failures absorbed, migrations); the
     sheet records without synchronization, so the schedule is unchanged. *)
  let was_obs = Obs.enabled () in
  Obs.set_enabled true;
  let q =
    SK.create_with ~seed ~k ~shards ~sticky ~buf ~dbuf ?adapt
      ~num_threads:threads ()
  in
  Obs.set_enabled was_obs;
  let handles = Array.make threads None in
  let total = threads * per_thread in
  let got = Array.make total 0 in
  let submitted = Array.make total false in
  let oracle = Oracle.create ~universe:key_range in
  let oracle_violations = ref 0 in
  let max_rank_error = ref 0 in
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  Chaos.install plan;
  (try
     Sim.parallel_run ~num_threads:threads (fun tid ->
         let h = SK.register q tid in
         handles.(tid) <- Some h;
         let rng = Xoshiro.create ~seed:(seed + (7919 * tid)) in
         for i = 0 to per_thread - 1 do
           let payload = (tid * per_thread) + i in
           let key = Xoshiro.int rng key_range in
           Oracle.insert oracle key;
           SK.insert h key payload;
           submitted.(payload) <- true;
           if i land 1 = 1 then
             match SK.try_delete_min h with
             | None -> ()
             | Some (dk, v) ->
                 got.(v) <- got.(v) + 1;
                 (match Oracle.delete oracle dk with
                 | e -> if e > !max_rank_error then max_rank_error := e
                 | exception Failure _ -> incr oracle_violations)
         done)
   with Sim.Thread_failure (tid, e) ->
     violation "thread %d failed: %s" tid (Printexc.to_string e));
  let faults = Chaos.stats () in
  let crashed = Chaos.crashed_tids () in
  Chaos.uninstall ();
  (* Insertion buffers live in handles, not in the shared structure.  A
     crashed thread's still-buffered items (including the tail of a flush
     it crashed in the middle of: flush_buffer pops each item only after
     it entered the LSM) vanish with it — that is the documented crash
     cost of [~buf] (up to B items; DESIGN.md §15) — so they are not owed
     by conservation.  The same holds on the delete side ([~dbuf];
     DESIGN.md §17): items in a crashed thread's deletion buffer were
     already claimed out of the stripe by the batch CAS, so the crash
     consumes them — and a crash {e inside} a batch claim
     ([internal_dbuf_pending], the run staged before the publish CAS) is
     exempt in both CAS outcomes: CAS lost means the items are still in
     the stripe (delivered once at most), CAS won means they died with
     the crasher; a double delivery would need two winning [Item.take]s
     on one item, which the flag CAS forbids.  Survivors' buffers are
     flushed explicitly before the drain: the drainer can spy their LSMs
     but cannot see their buffers. *)
  Array.iteri
    (fun tid h ->
      match h with
      | Some h when List.mem tid crashed ->
          List.iter
            (fun (_, payload) -> submitted.(payload) <- false)
            (SK.internal_buffered h);
          List.iter
            (fun (_, payload) -> submitted.(payload) <- false)
            (SK.internal_dbuf h);
          List.iter
            (fun (_, payload) -> submitted.(payload) <- false)
            (SK.internal_dbuf_pending h)
      | Some h ->
          SK.flush_buffer h;
          SK.flush_dbuf h
      | None -> ())
    handles;
  let drained = ref 0 in
  (match
     Array.to_list handles
     |> List.filteri (fun tid _ -> not (List.mem tid crashed))
     |> List.find_map (fun h -> h)
   with
  | None -> violation "no surviving thread to drain with"
  | Some h ->
      let misses = ref 0 in
      while !misses < 300 do
        match SK.try_delete_min h with
        | Some (dk, v) ->
            incr drained;
            got.(v) <- got.(v) + 1;
            (match Oracle.delete oracle dk with
            | e -> if e > !max_rank_error then max_rank_error := e
            | exception Failure _ -> incr oracle_violations);
            misses := 0
        | None -> incr misses
      done);
  if !oracle_violations > 0 then
    violation "oracle: %d deletes of absent keys" !oracle_violations;
  let lost = ref 0 and dup = ref 0 in
  for p = 0 to total - 1 do
    if got.(p) > 1 then incr dup
    else if got.(p) = 0 && submitted.(p) then incr lost
  done;
  if !lost > 0 then violation "%d payloads lost" !lost;
  if !dup > 0 then violation "%d payloads delivered twice" !dup;
  (* Structural invariants, per stripe. *)
  Array.iteri
    (fun i stripe ->
      try
        match SK.Shared_klsm.peek_shared stripe with
        | None -> ()
        | Some arr -> SK.Block_array.check_invariants arr
      with Failure msg -> violation "stripe[%d] invariant: %s" i msg)
    (SK.internal_stripes q);
  Array.iteri
    (fun tid h ->
      match h with
      | Some h when not (List.mem tid crashed) -> (
          try SK.Dist_lsm.check_invariants (SK.internal_dist h)
          with Failure msg -> violation "dist[%d] invariant: %s" tid msg)
      | _ -> ())
    handles;
  (* Pool-reuse safety across every stripe (DESIGN.md §11/§12). *)
  let reachable = ref [] in
  Array.iter
    (fun stripe ->
      match SK.Shared_klsm.peek_shared stripe with
      | None -> ()
      | Some arr ->
          Array.iter (fun b -> reachable := b :: !reachable)
            (SK.Block_array.blocks arr))
    (SK.internal_stripes q);
  Array.iteri
    (fun tid h ->
      match h with
      | Some h when not (List.mem tid crashed) ->
          let d = SK.internal_dist h in
          for i = 0 to SK.Dist_lsm.size d - 1 do
            match SK.Dist_lsm.block_at d i with
            | Some b -> reachable := b :: !reachable
            | None -> ()
          done
      | _ -> ())
    handles;
  Array.iteri
    (fun tid h ->
      match h with
      | Some h when not (List.mem tid crashed) ->
          Array.iteri
            (fun lvl free ->
              List.iter
                (fun pb ->
                  if List.exists (fun rb -> rb == pb) !reachable then
                    violation
                      "pool[%d] level-%d block aliased by a live structure"
                      tid lvl)
                free)
            h.SK.pool.SK.Block.Pool.slots
      | _ -> ())
    handles;
  let stats = SK.stats q in
  let stat name =
    match List.assoc_opt name stats.Obs.counters with
    | Some per -> Array.fold_left ( + ) 0 per
    | None -> 0
  in
  {
    label = "shard";
    seed;
    plan_text;
    cas_fails = faults.Chaos.cas_fails;
    stalls = faults.Chaos.stalls;
    crashes = faults.Chaos.crashes;
    violations = List.rev !violations;
    info =
      [
        ("items", total);
        ("drained", !drained);
        ("max_rank_error", !max_rank_error);
        ("crashed_threads", List.length crashed);
        ("stripe_cas_fail", stat "stripe.cas_fail");
        ("stripe_migrate", stat "stripe.migrate");
        ("stripe_resize", stat "stripe.resize");
        ("buffer_flush", stat "stripe.buffer_flush");
        ("sticky_hit", stat "stripe.sticky_hit");
        ("batch_claim", stat "shared.batch_claim");
        ("dbuf_hit", stat "stripe.dbuf_hit");
        ("dbuf_flush", stat "stripe.dbuf_flush");
      ];
  }

(* ------------------------------------------------------------------ *)
(* Store kill-and-restart case                                         *)
(* ------------------------------------------------------------------ *)

let rm_rf root =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> go (Filename.concat p n)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists root then go root

(** Kill-and-restart recovery case for the spill tier (docs/STORAGE.md):
    run a spill-enabled combined queue (threshold low enough that most
    shared publications hit the store) under a fault plan aimed at the
    store's own protocol windows — mid-spill, mid-rehydrate, mid-publish —
    then simulate whole-process death: discard every in-RAM structure,
    reopen the same store root, [Spill.recover] into a {e fresh} queue,
    and drain it.  The conservation oracle across the crash boundary:

    - {e no invention}: every recovered payload was actually submitted,
      and comes back under its original key (spill → recover → rehydrate
      is byte-identical);
    - {e no duplication}: no payload is recovered twice, and the recovery
      drain delivers exactly the items the journal called live;
    - {e no resurrection}: a payload delivered {e before} the kill never
      comes back after it (the [R]-before-delivery journal rule);
    - the journal replays clean (no torn lines, no corrupt objects).

    Payloads that were RAM-resident and undelivered at the kill are
    legitimately lost — the crash model loses in-RAM state — so plain
    conservation is {e not} asserted across the boundary; that is exactly
    what distinguishes this case from {!queue_case}. *)
let store_case ~seed ~threads ~per_thread ~k ~threshold plan =
  Sim.configure ~seed ();
  let plan_text = Chaos.plan_to_string plan in
  let root = Filename.temp_dir "klsm-chaos-store" "" in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let spill = Spill.create ~threshold ~num_threads:threads ~root () in
  let q =
    K.create_with ~seed ~k ~num_threads:threads
      ~spill_policy:(Spill.policy spill) ()
  in
  let handles = Array.make threads None in
  let total = threads * per_thread in
  let got = Array.make total 0 in
  (* [key_of.(p) >= 0] means insert [p] was at least {e entered}: a thread
     killed inside its own insert (e.g. mid-spill) can leave that one
     in-flight payload durable, so "known to the store" is gated on entry,
     not on the insert returning. *)
  let key_of = Array.make total (-1) in
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  Chaos.install plan;
  (try
     Sim.parallel_run ~num_threads:threads (fun tid ->
         let h = K.register q tid in
         handles.(tid) <- Some h;
         let rng = Xoshiro.create ~seed:(seed + (7919 * tid)) in
         for i = 0 to per_thread - 1 do
           let payload = (tid * per_thread) + i in
           let key = Xoshiro.int rng key_range in
           key_of.(payload) <- key;
           K.insert h key payload;
           if i land 1 = 1 then
             match K.try_delete_min h with
             | None -> ()
             | Some (_, v) -> got.(v) <- got.(v) + 1
         done)
   with Sim.Thread_failure (tid, e) ->
     violation "thread %d failed: %s" tid (Printexc.to_string e));
  let faults = Chaos.stats () in
  let crashed = Chaos.crashed_tids () in
  Chaos.uninstall ();
  for p = 0 to total - 1 do
    if got.(p) > 1 then violation "payload %d delivered twice pre-kill" p
  done;
  (* The kill: every in-RAM structure is dead.  The journal's appends are
     flushed per record, so closing the channels models a process whose
     fds are reaped mid-run. *)
  Spill.close spill;
  (* Restart: reopen the same root, recover into a fresh single-thread
     queue, and drain it dry. *)
  let spill2 = Spill.create ~threshold ~num_threads:threads ~root () in
  let q2 = K.create_with ~seed ~k ~num_threads:1 () in
  let h2 = K.register q2 0 in
  let audit = Spill.recover spill2 ~link:(fun b -> K.adopt_block h2 b) in
  if audit.Audit.skipped_lines > 0 then
    violation "journal replay skipped %d lines" audit.Audit.skipped_lines;
  (* This case runs on a healthy (Real-vfs) disk: anything recovery had
     to quarantine or write off is a protocol violation here, not an
     environmental condition (bin/torture.exe owns the sick-disk grid). *)
  List.iter
    (fun (e : Audit.entry) ->
      match e.Audit.outcome with
      | Audit.Recovered -> ()
      | Audit.Quarantined why ->
          violation "object %s quarantined: %s" e.Audit.digest why
      | Audit.Lost why -> violation "instance %s lost: %s" e.Audit.iid why)
    audit.Audit.entries;
  (* The audit's books must balance whatever happened
     (recovered + quarantined + lost = spilled, in instances, items and
     bytes). *)
  List.iter (fun v -> violation "%s" v) (Oracle.store_conservation audit);
  let got2 = Array.make total 0 in
  let drained2 = ref 0 in
  let misses = ref 0 in
  while !misses < 300 do
    match K.try_delete_min h2 with
    | Some (dk, v) ->
        incr drained2;
        misses := 0;
        if v < 0 || v >= total || key_of.(v) < 0 then
          violation "recovered unknown payload %d" v
        else begin
          got2.(v) <- got2.(v) + 1;
          if dk <> key_of.(v) then
            violation "payload %d recovered under key %d, inserted as %d" v dk
              key_of.(v)
        end
    | None -> incr misses
  done;
  Spill.close spill2;
  for p = 0 to total - 1 do
    if got2.(p) > 1 then violation "payload %d recovered twice" p;
    if got.(p) > 0 && got2.(p) > 0 then
      violation "payload %d resurrected (delivered pre-kill and recovered)" p
  done;
  if !drained2 <> audit.Audit.recovered_items then
    violation "recovery drain: %d delivered, journal promised %d" !drained2
      audit.Audit.recovered_items;
  let pre_delivered = Array.fold_left ( + ) 0 got in
  {
    label = "store";
    seed;
    plan_text;
    cas_fails = faults.Chaos.cas_fails;
    stalls = faults.Chaos.stalls;
    crashes = faults.Chaos.crashes;
    violations = List.rev !violations;
    info =
      [
        ("items", total);
        ("pre_delivered", pre_delivered);
        ("recovered_blocks", audit.Audit.recovered);
        ("recovered_items", audit.Audit.recovered_items);
        ("crashed_threads", List.length crashed);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Scheduler-level case                                                *)
(* ------------------------------------------------------------------ *)

(* Virtual-time scales (Cost_model.default, nanosecond units): a task body
   is a few ns, a generated stall is 3-150 us — so the lease must sit in
   between, and the liveness timeout above the longest stall. *)
let chaos_robust =
  {
    Worker.lease = 2e-5;
    max_attempts = 6;
    retry_delay = 2e-6;
    task_deadline = infinity;
    liveness_timeout = 5e-4;
    run_deadline = 2e-2;
  }

let sched_case ?(fiber_fanout = 2) ~seed ~threads ~roots plan =
  Sim.configure ~seed ();
  let plan_text = Chaos.plan_to_string plan in
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  Chaos.install plan;
  let result =
    try
      Ok
        (CL.run
           {
             CL.default_config with
             num_workers = threads;
             roots_per_worker = roots;
             service = CL.Fixed 8;
             batch = 4;
             capacity = 256;
             seed;
             robust = chaos_robust;
             (* Fibered bodies so the steal/resume fault sites are live:
                every root forks children its workers can steal. *)
             fiber_fanout;
           }
           (CL.Registry.Klsm 8))
    with e -> Error e
  in
  let faults = Chaos.stats () in
  Chaos.uninstall ();
  match result with
  | Error e ->
      {
        label = "sched";
        seed;
        plan_text;
        cas_fails = faults.Chaos.cas_fails;
        stalls = faults.Chaos.stalls;
        crashes = faults.Chaos.crashes;
        violations = [ "run raised: " ^ Printexc.to_string e ];
        info = [];
      }
  | Ok r ->
      if r.CL.lost > 0 then
        violation "%d tasks lost (no terminal state)" r.CL.lost;
      if r.CL.gave_up then violation "run gave up (run_deadline hit): no progress";
      (* Exactly-once: the completion log must be duplicate-free even when
         faults forced re-deliveries. *)
      let seen = Hashtbl.create 256 in
      Array.iter
        (fun id ->
          if Hashtbl.mem seen id then violation "task %d completed twice" id
          else Hashtbl.add seen id ())
        r.CL.completion_order;
      if
        Array.length r.CL.completion_order + r.CL.dead_lettered
        <> r.CL.total_tasks
      then
        violation "accounting: %d completed + %d dead <> %d allocated"
          (Array.length r.CL.completion_order)
          r.CL.dead_lettered r.CL.total_tasks;
      (* The at-least-once window (docs/CHAOS.md): after a lease times out,
         the supervisor's re-enqueue may race the original worker, so an
         id can be delivered twice (completion stays exactly-once via the
         CAS above).  Each extra delivery — a re-lease that ran the body
         again ([retries]) or a delivery that lost the lease race
         ([double_claims]) — is caused by exactly one re-enqueue push, so
         their sum is bounded by reenqueues; more would mean ids
         multiplying without a supervisor handoff, a real bug. *)
      let extra =
        r.CL.metrics.Klsm_sched.Metrics.retries
        + r.CL.metrics.Klsm_sched.Metrics.double_claims
      in
      if extra > r.CL.metrics.Klsm_sched.Metrics.reenqueues then
        violation
          "%d extra deliveries (%d re-leased, %d lease races) exceed %d \
           reenqueues"
          extra r.CL.metrics.Klsm_sched.Metrics.retries
          r.CL.metrics.Klsm_sched.Metrics.double_claims
          r.CL.metrics.Klsm_sched.Metrics.reenqueues;
      {
        label = "sched";
        seed;
        plan_text;
        cas_fails = faults.Chaos.cas_fails;
        stalls = faults.Chaos.stalls;
        crashes = faults.Chaos.crashes;
        violations = List.rev !violations;
        info =
          [
            ("tasks", r.CL.total_tasks);
            ("completed", Array.length r.CL.completion_order);
            ("dead_lettered", r.CL.dead_lettered);
            ("retries", r.CL.metrics.Klsm_sched.Metrics.retries);
            ("timeouts", r.CL.metrics.Klsm_sched.Metrics.timeouts);
            ("reenqueues", r.CL.metrics.Klsm_sched.Metrics.reenqueues);
            ("worker_deaths", r.CL.metrics.Klsm_sched.Metrics.worker_deaths);
            ("late_completions",
             r.CL.metrics.Klsm_sched.Metrics.late_completions);
            ("double_deliveries", r.CL.double);
            (* > 0 under crashes is the expected signature: a killed
               worker's fibers never finish, and recovery re-runs their
               attempt with fresh ones. *)
            ("fibers_lost", r.CL.fiber_lost);
            ("steals", r.CL.metrics.Klsm_sched.Metrics.steals);
          ];
      }

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)
(* ------------------------------------------------------------------ *)

let queue_sites =
  [
    "shared.push_snapshot.before";
    "shared.push_snapshot.after";
    "dist.insert.pre_size";
    "dist.insert.spill";
    "dist.spy.block";
    "dist.consolidate.pre_size";
    "block_array.consolidate";
  ]

(* The sharded composition reaches every queue site plus its own five
   (spill publish, home migration, insertion-buffer flush, deletion-buffer
   flush, adaptive resize). *)
let sharded_sites =
  queue_sites
  @ [
      "sharded.spill.publish";
      "sharded.migrate";
      "sharded.buffer.flush";
      "sharded.dbuf.flush";
      "sharded.resize";
    ]

(* Scheduler runs have no spill tier, so the store.* fault points never
   fire there; drawing them would only dilute the sched sweep. *)
let sched_sites =
  List.filter
    (fun s -> not (String.length s > 6 && String.sub s 0 6 = "store."))
    Chaos.sites

(** One deterministic plan per seed, alternating case kinds and cycling
    the primary fault kind (see {!Chaos.random_plan}); every third seed
    adds a second rule so multi-fault runs are covered too.  Odd indices
    stress the hardened scheduler; even indices alternate between the
    plain combined queue and the contention-striped one. *)
let case_for ~threads ~per_thread ~roots ~k i seed =
  let rng = Xoshiro.create ~seed:(seed * 31 + 17) in
  let sched = i mod 2 = 1 in
  let sharded = (not sched) && i mod 4 = 2 in
  let sites =
    if sched then sched_sites
    else if sharded then sharded_sites
    else queue_sites
  in
  let rules = 1 + (if i mod 3 = 0 then 1 else 0) in
  let plan =
    Chaos.random_plan ~rng ~sites ~num_threads:threads ~rules i
  in
  if sched then sched_case ~seed ~threads ~roots plan
  else if sharded then
    (* Modest §15/§17 knobs so the random draw can land on the buffer- and
       dbuf-flush sites (and both buffered-crash exemptions get coverage);
       kp = ceil(k/2) bounds buf + dbuf. *)
    sharded_case ~sticky:2 ~buf:2 ~dbuf:2 ~seed ~threads ~per_thread ~k
      ~shards:2 plan
  else queue_case ~seed ~threads ~per_thread ~k plan

(** Fixed sharded-queue plans the ISSUE's acceptance bar names explicitly
    (appended to every sweep so the gate always exercises them, whatever
    the random site draw does):

    - a crash in the middle of a stripe publish — after the blocks are
      marked published, before/around the installing CAS;
    - a CAS-failure storm concentrated on one stripe: [n] consecutive
      arrivals at the home stripe's publish CAS are forced to fail, which
      both stresses the retry loop and (past {!Klsm_core.Sharded_klsm}'s
      migration threshold) forces a home-stripe migration under fire;
    - a crash in the middle of an insertion-buffer flush ([~buf]): the
      crasher's not-yet-inserted buffered items may vanish (the documented
      [~buf] crash cost), but nothing that reached the LSM may be lost and
      nothing may be delivered twice;
    - a resize-under-storm case ([~adapt]): a concentrated failure storm
      long enough to cross the adapt window forces an active-stripe-count
      grow mid-run (with the first resize CAS itself forced to fail), and
      conservation must hold across the re-homing;
    - two deletion-buffer cases ([~dbuf]): a kill with a nonempty buffer
      (mid-flush, the claimed remainder dies with the crasher) and a kill
      at the batch claim's publish CAS itself (the staged run is exempt
      whichever way the CAS went). *)
let sharded_targeted ~threads ~per_thread ~k ~shards ~seed0 =
  (* A storm aimed at one thread: its first [n] arrivals at the publish
     CAS all fail, and (spills all target its home stripe) the home-stripe
     failure streak crosses migrate_threshold = 8 with no intervening
     success to reset it — a deterministic migration under fire. *)
  let storm ?tid n site =
    List.init n (fun i -> Chaos.rule ?tid ~hit:(i + 1) site Chaos.Cas_fail)
  in
  ([
     (* Crash a non-drainer thread mid-stripe-publish, both sides. *)
     [ Chaos.rule ~tid:1 ~hit:2 "sharded.spill.publish" Chaos.Crash ];
     [ Chaos.rule ~tid:2 ~hit:3 "shared.push_snapshot.before" Chaos.Crash ];
     (* CAS storms: one concentrated on thread 1's stripe (must migrate),
        one spread over everyone (must merely survive). *)
     storm ~tid:1 12 "shared.push_snapshot.before";
     storm 12 "shared.push_snapshot.before"
     @ [ Chaos.rule ~tid:3 ~hit:1 "sharded.migrate" (Chaos.Stall 40) ];
   ]
  |> List.mapi (fun i plan ->
         sharded_case ~seed:(seed0 + i) ~threads ~per_thread ~k ~shards plan)
  )
  @ [
      (* Crash thread 1 mid-buffer-flush (second flush, so the first
         exercised the happy path): items still buffered at the crash are
         exempt, everything already flushed must survive. *)
      sharded_case ~sticky:4 ~buf:4 ~seed:(seed0 + 4) ~threads ~per_thread
        ~k ~shards
        [ Chaos.rule ~tid:1 ~hit:2 "sharded.buffer.flush" Chaos.Crash ];
      (* Resize under storm: thread 1's first 48 publish CASes all fail,
         so its adapt window (32 publishes) fills with failures and the
         grow watermark trips mid-storm; the first resize CAS is itself
         forced to fail so the retry path runs too.  Start at the adapt
         lower target so there is room to grow. *)
      sharded_case ~adapt:(shards, 2 * shards) ~seed:(seed0 + 5) ~threads
        ~per_thread ~k ~shards
        (storm ~tid:1 48 "shared.push_snapshot.before"
        @ [ Chaos.rule ~hit:1 "sharded.resize" Chaos.Cas_fail ]);
      (* Kill thread 1 with a nonempty deletion buffer ([~dbuf]; DESIGN.md
         §17): the crash lands inside flush_dbuf, before the first
         reinsert, so the whole buffered remainder — items the batch CAS
         already claimed out of the stripe — dies with the crasher.  The
         exemption above must absorb exactly those items; everything
         already served from the buffer, and everything still in the
         stripes, must survive with no duplicates. *)
      sharded_case ~dbuf:4 ~seed:(seed0 + 6) ~threads ~per_thread ~k ~shards
        [ Chaos.rule ~tid:1 ~hit:1 "sharded.dbuf.flush" Chaos.Crash ];
      (* Kill thread 2 in the middle of a batch claim, at the publish CAS
         itself: the staged run ([internal_dbuf_pending]) is in limbo —
         claimed if the CAS won, still queued if it lost — and the
         either-way exemption must hold. *)
      sharded_case ~dbuf:4 ~seed:(seed0 + 7) ~threads ~per_thread ~k ~shards
        [ Chaos.rule ~tid:2 ~hit:4 "shared.push_snapshot.before" Chaos.Crash ];
    ]

(** Fixed scheduler plans aimed at the fiber runtime's two crash windows
    (docs/CHAOS.md):

    - a kill {e between steal and resume}: worker 1 wins the steal CAS on
      a victim's fiber and dies before running it — the fiber is gone
      from every deque, so recovery {e must} come from the lease (the
      attempt's live-fiber counter never reaches zero, the lease expires,
      a fresh attempt re-runs the whole body) and completion must stay
      exactly-once;
    - a kill {e at a fiber resumption}: the finisher of an awaited fiber
      dies exactly as it resumes the parked waiter, taking both fibers'
      progress down mid-task;
    - a stall between steal and resume: the stolen fiber is invisible to
      everyone for 40 cost units while its task's lease keeps ticking —
      the late-completion path must absorb the re-lease race. *)
let sched_targeted ~threads ~roots ~seed0 =
  [
    [ Chaos.rule ~tid:1 ~hit:1 "sched.steal" Chaos.Crash ];
    [ Chaos.rule ~tid:2 ~hit:2 "sched.fiber.resume" Chaos.Crash ];
    [ Chaos.rule ~tid:1 ~hit:1 "sched.steal" (Chaos.Stall 40) ];
  ]
  |> List.mapi (fun i plan ->
         sched_case ~fiber_fanout:3 ~seed:(seed0 + i) ~threads ~roots plan)

(** Fixed spill-tier plans (the ISSUE's kill-and-restart acceptance bar),
    every one followed by a full process-death + {!Spill.recover} cycle:

    - a kill {e mid-spill}, after the object file and [S] record are
      durable but before the cold twin links — the items have no live RAM
      pointer (claim-first protocol) and {e must} come back via recovery;
    - a kill {e mid-rehydrate}, before the [R] record — the instance must
      stay live and recover intact;
    - a kill {e mid-publish} with spilled blocks in flight;
    - a stall mid-spill, letting every other thread run against the
      half-spilled state (items claimed, cold twin unpublished). *)
let store_targeted ~threads ~per_thread ~k ~seed0 =
  [
    [ Chaos.rule ~tid:1 ~hit:1 "store.spill" Chaos.Crash ];
    [ Chaos.rule ~tid:2 ~hit:1 "store.rehydrate" Chaos.Crash ];
    [ Chaos.rule ~tid:1 ~hit:2 "shared.push_snapshot.before" Chaos.Crash ];
    [ Chaos.rule ~hit:3 "store.spill" (Chaos.Stall 20_000) ];
  ]
  |> List.mapi (fun i plan ->
         store_case ~seed:(seed0 + i) ~threads ~per_thread ~k ~threshold:64
           plan)

(** Run [seeds] random cases starting at [seed0] (queue / sharded-queue /
    scheduler rotation), then the fixed sharded-queue plans, the fixed
    steal/resume crash plans, then the fixed store kill-and-restart
    plans. *)
let sweep ?(seed0 = 0xC4A05) ?(threads = 4) ?(per_thread = 400) ?(roots = 60)
    ?(k = 8) ~seeds () =
  List.init seeds (fun i ->
      case_for ~threads ~per_thread ~roots ~k i (seed0 + i))
  @ sharded_targeted ~threads ~per_thread ~k ~shards:2 ~seed0:(seed0 + seeds)
  @ sched_targeted ~threads ~roots ~seed0:(seed0 + seeds + 8)
  @ store_targeted ~threads ~per_thread ~k ~seed0:(seed0 + seeds + 16)

(* ------------------------------------------------------------------ *)
(* Teeth: the planted-bug check                                        *)
(* ------------------------------------------------------------------ *)

(** Flip Listing 4's publication order and aim crashes between the two
    (now reversed) writes: the conservation check must catch the planted
    loss on at least one plan.  Returns [(caught, cases)]. *)
let teeth ?(seed0 = 0x7EE7) ?(threads = 4) ?(per_thread = 400) ~plans () =
  Dist_lsm.test_only_flip_publication_order := true;
  let cases =
    Fun.protect
      ~finally:(fun () -> Dist_lsm.test_only_flip_publication_order := false)
      (fun () ->
        List.init plans (fun i ->
            (* Vary the hit index so some crash lands on a merge publish
               (a merge-free insert consumes no blocks, so a crash there
               only strands the crasher's own in-flight item, which the
               fault model forgives).  k = 64 keeps the local LSMs deep
               enough that merges routinely consume multi-item blocks. *)
            let plan =
              [ Chaos.rule ~tid:1 ~hit:(3 + (5 * i)) "dist.insert.pre_size"
                  Chaos.Crash ]
            in
            queue_case ~seed:(seed0 + i) ~threads ~per_thread ~k:64 plan))
  in
  let caught = List.exists (fun c -> c.violations <> []) cases in
  (caught, cases)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let totals cases =
  List.fold_left
    (fun (c, s, k, v) r ->
      ( c + r.cas_fails,
        s + r.stalls,
        k + r.crashes,
        v + List.length r.violations ))
    (0, 0, 0, 0) cases

let case_to_json r =
  Report.Obj
    ([
       ("case", Report.String r.label);
       ("seed", Report.Int r.seed);
       ("plan", Report.String r.plan_text);
       ("cas_fails", Report.Int r.cas_fails);
       ("stalls", Report.Int r.stalls);
       ("crashes", Report.Int r.crashes);
       ( "violations",
         Report.List (List.map (fun v -> Report.String v) r.violations) );
     ]
    @ List.map (fun (name, v) -> (name, Report.Int v)) r.info)

let to_json ?teeth_caught cases =
  let cas_fails, stalls, crashes, violations = totals cases in
  Report.Obj
    ([
       ("benchmark", Report.String "chaos");
       ("backend", Report.String Sim.name);
       ("cases", Report.Int (List.length cases));
       ("cas_fails", Report.Int cas_fails);
       ("stalls", Report.Int stalls);
       ("crashes", Report.Int crashes);
       ("violations", Report.Int violations);
     ]
    @ (match teeth_caught with
      | None -> []
      | Some caught -> [ ("teeth_caught", Report.Bool caught) ])
    @ [ ("results", Report.List (List.map case_to_json cases)) ])
