(** Deterministic fault injection for the simulator backend.

    The queue's correctness rests on fragile multi-step publication
    protocols — Listing 4's merge → publish-block → publish-size order in
    {!Klsm_core.Dist_lsm}, the snapshot CAS dance of
    {!Klsm_core.Shared_klsm} — and relaxed-queue bugs in those protocols
    surface only under adversarial schedules (Gruber, arXiv:1509.07053).
    [Sim.Random_preempt] reorders accesses but never {e crashes} or
    indefinitely delays a fiber; this module closes that gap.

    A {!plan} is a list of {!rule}s, each naming a fault {e site} (a
    [Backend_intf.fault_point] call threaded through the sensitive steps;
    the catalogue lives in [docs/CHAOS.md]), an optional thread filter, a
    1-based hit index, and an {!action}:

    - [Cas_fail]: the thread's next CAS fails spuriously (charged and
      recorded as an ordinary lost race) — exercises every retry loop;
    - [Stall n]: the thread loses [n] relax-units of virtual time mid-
      protocol, letting every other thread run ahead and observe the
      half-published state;
    - [Crash]: the fiber dies on the spot ([Sim.kill_current]) — the
      simulated thread never publishes the rest of the protocol, ever.

    Rules fire at most once, so every plan injects a finite amount of
    chaos and a fault-free suffix remains in which the survivors must
    still drain the structure — the liveness half of every chaos check.

    Everything is deterministic: rule matching consumes no randomness, and
    plan {e generation} ({!random_plan}) draws from a seeded {!Xoshiro}
    stream, so a failing (seed, plan) pair replays exactly. *)

module Sim = Klsm_backend.Sim
module Xoshiro = Klsm_primitives.Xoshiro
module Obs = Klsm_obs.Obs
module Vfs = Klsm_store.Vfs

(* Observability (lib/obs; docs/METRICS.md): faults actually injected,
   counted on the faulting thread's shard. *)
let c_cas_fail = Obs.counter "chaos.cas_fail"
let c_stall = Obs.counter "chaos.stall"
let c_crash = Obs.counter "chaos.crash"

type action =
  | Cas_fail
  | Stall of int
  | Crash
  | Io of Vfs.fault
      (** an I/O fault for a [vfs.*] site (docs/CHAOS.md); carried by the
          same grammar, executed by the {!Vfs} engine via {!io_rules}
          rather than by the simulator's fault hook *)

type rule = {
  site : string;  (** fault-point name (docs/CHAOS.md) *)
  tid : int option;  (** restrict to one simulated thread; [None] = any *)
  hit : int;  (** fire on the n-th matching arrival, 1-based *)
  action : action;
  mutable seen : int;  (** matching arrivals so far (run state) *)
  mutable fired : bool;  (** rules fire at most once (run state) *)
}

type plan = rule list

let rule ?tid ?(hit = 1) site action =
  if hit < 1 then invalid_arg "Chaos.rule: hit < 1";
  { site; tid; hit; action; seen = 0; fired = false }

(** The fault-point sites placed across the stack, one per sensitive
    protocol step (kept in sync with docs/CHAOS.md). *)
let sites =
  [
    "shared.push_snapshot.before";
    "shared.push_snapshot.after";
    "dist.insert.pre_size";
    "dist.insert.spill";
    "dist.spy.block";
    "dist.consolidate.pre_size";
    "block_array.consolidate";
    "sharded.spill.publish";
    "sharded.migrate";
    "sharded.buffer.flush";
    "sharded.dbuf.flush";
    "sharded.resize";
    "store.spill";
    "store.rehydrate";
    "store.recover";
    "sched.execute.post_lease";
    "sched.execute.pre_complete";
    "sched.steal";
    "sched.fiber.resume";
  ]

(** The I/O operation sites of the {!Vfs} seam (docs/CHAOS.md).  These are
    not [Backend_intf.fault_point] calls — rules naming them are compiled
    by {!io_rules} into the Faulty vfs's own engine, which injects at the
    I/O operation itself (below the store API) instead of between protocol
    steps. *)
let io_sites = Vfs.sites

let is_io_site site =
  String.length site >= 4 && String.equal (String.sub site 0 4) "vfs."

(* ---- plan grammar: site[@hit][#tid]:action, comma-separated ---- *)

let action_to_string = function
  | Cas_fail -> "casfail"
  | Stall n -> Printf.sprintf "stall:%d" n
  | Crash -> "crash"
  | Io f -> Vfs.fault_name f

let rule_to_string r =
  let hit = if r.hit = 1 then "" else Printf.sprintf "@%d" r.hit in
  let tid = match r.tid with None -> "" | Some t -> Printf.sprintf "#%d" t in
  Printf.sprintf "%s%s%s:%s" r.site hit tid (action_to_string r.action)

let plan_to_string plan = String.concat "," (List.map rule_to_string plan)

let parse_action s =
  match String.split_on_char ':' s with
  | [ "casfail" ] -> Ok Cas_fail
  | [ "crash" ] -> Ok Crash
  | [ "stall"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (Stall n)
      | _ -> Error (Printf.sprintf "bad stall count %S" n))
  | [ "eio" ] -> Ok (Io (Vfs.Eio false))
  | [ "eio"; "sticky" ] -> Ok (Io (Vfs.Eio true))
  | [ "enospc" ] -> Ok (Io (Vfs.Enospc false))
  | [ "enospc"; "sticky" ] -> Ok (Io (Vfs.Enospc true))
  | [ "shortwrite"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> Ok (Io (Vfs.Short_write n))
      | _ -> Error (Printf.sprintf "bad short-write prefix %S" n))
  | [ "torn"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 -> Ok (Io (Vfs.Torn_write n))
      | _ -> Error (Printf.sprintf "bad torn-write prefix %S" n))
  | [ "bitflip" ] -> Ok (Io Vfs.Bit_flip)
  | [ "fsynclie" ] -> Ok (Io Vfs.Fsync_lie)
  | [ "droprename" ] -> Ok (Io Vfs.Drop_rename)
  | _ ->
      Error
        (Printf.sprintf
           "unknown action %S \
            (casfail|stall:N|crash|eio[:sticky]|enospc[:sticky]|shortwrite:N|torn:N|bitflip|fsynclie|droprename)"
           s)

let parse_rule s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "rule %S has no ':action'" s)
  | Some i -> (
      let head = String.sub s 0 i in
      let action = String.sub s (i + 1) (String.length s - i - 1) in
      match parse_action action with
      | Error e -> Error e
      | Ok action -> (
          let head, tid =
            match String.index_opt head '#' with
            | None -> (head, Ok None)
            | Some j -> (
                let t = String.sub head (j + 1) (String.length head - j - 1) in
                ( String.sub head 0 j,
                  match int_of_string_opt t with
                  | Some t when t >= 0 -> Ok (Some t)
                  | _ -> Error (Printf.sprintf "bad tid %S" t) ))
          in
          let site, hit =
            match String.index_opt head '@' with
            | None -> (head, Ok 1)
            | Some j -> (
                let h = String.sub head (j + 1) (String.length head - j - 1) in
                ( String.sub head 0 j,
                  match int_of_string_opt h with
                  | Some h when h >= 1 -> Ok h
                  | _ -> Error (Printf.sprintf "bad hit index %S" h) ))
          in
          match (tid, hit) with
          | Error e, _ | _, Error e -> Error e
          | Ok tid, Ok hit ->
              if site = "" then Error (Printf.sprintf "rule %S has no site" s)
              else Ok (rule ?tid ~hit site action)))

let parse_plan s =
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match parse_rule (String.trim p) with
        | Ok r -> go (r :: acc) rest
        | Error e -> Error e)
  in
  go [] parts

(* ---- the installed engine ---- *)

type stats = {
  mutable cas_fails : int;
  mutable stalls : int;
  mutable crashes : int;
  mutable crashed_tids : int list;
}

let empty_stats () = { cas_fails = 0; stalls = 0; crashes = 0; crashed_tids = [] }

let installed : plan ref = ref []
let st = empty_stats ()
let obs_handles : Obs.handle array ref = ref [||]

(** Faults injected since the last {!install}. *)
let stats () =
  { st with crashed_tids = st.crashed_tids }

(** Threads killed by [Crash] rules since the last {!install}. *)
let crashed_tids () = st.crashed_tids

let obs_for tid =
  let hs = !obs_handles in
  if tid >= 0 && tid < Array.length hs then hs.(tid) else Obs.null_handle

(* The handler runs on the faulting fiber.  Stalls and armed CAS failures
   happen immediately; a crash is deferred to the end of the matching scan
   (it raises) so one arrival can satisfy several rules. *)
let handler site =
  let tid = Sim.current_tid () in
  let crash = ref false in
  List.iter
    (fun r ->
      if r.site = site && (r.tid = None || r.tid = Some tid) then begin
        r.seen <- r.seen + 1;
        if (not r.fired) && r.seen = r.hit then begin
          r.fired <- true;
          match r.action with
          | Cas_fail ->
              st.cas_fails <- st.cas_fails + 1;
              Obs.incr (obs_for tid) c_cas_fail;
              Sim.arm_cas_failure ()
          | Stall n ->
              st.stalls <- st.stalls + 1;
              Obs.incr (obs_for tid) c_stall;
              Sim.relax_n n
          | Crash ->
              st.crashes <- st.crashes + 1;
              st.crashed_tids <- tid :: st.crashed_tids;
              Obs.incr (obs_for tid) c_crash;
              crash := true
          | Io _ ->
              (* I/O faults belong to the Vfs engine ({!io_rules}); at a
                 simulator fault point they have nothing to act on. *)
              ()
        end
      end)
    !installed;
  if !crash then Sim.kill_current ()

(** Install [plan] as the simulator's fault hook (resetting rule state and
    fault statistics).  [?obs] supplies per-thread observability handles so
    injected faults land on the [chaos.*] counters.  Call {!uninstall}
    when done — typically via [Fun.protect]. *)
let install ?(obs = [||]) plan =
  List.iter
    (fun r ->
      r.seen <- 0;
      r.fired <- false)
    plan;
  st.cas_fails <- 0;
  st.stalls <- 0;
  st.crashes <- 0;
  st.crashed_tids <- [];
  obs_handles := obs;
  installed := plan;
  Sim.set_fault_hook (Some handler)

let uninstall () =
  Sim.set_fault_hook None;
  installed := [];
  obs_handles := [||]

(** Number of rules that actually fired. *)
let fired_count plan =
  List.fold_left (fun acc r -> if r.fired then acc + 1 else acc) 0 plan

(* ---- seeded plan generation ---- *)

(** [random_plan ~rng ~sites ~num_threads ~rules k] draws [rules] rules
    over the given sites.  The [k]-th plan of a sweep cycles its primary
    fault kind through casfail/stall/crash so a sweep of >= 3 plans always
    exercises every kind (the acceptance bar of the chaos suite); hit
    indices and thread filters come from the seeded stream. *)
let random_plan ~rng ~sites ~num_threads ~rules k =
  if rules < 1 then invalid_arg "Chaos.random_plan: rules < 1";
  let sites = Array.of_list sites in
  if Array.length sites = 0 then invalid_arg "Chaos.random_plan: no sites";
  List.init rules (fun i ->
      let site = sites.(Xoshiro.int rng (Array.length sites)) in
      let action =
        match (k + i) mod 3 with
        | 0 -> Cas_fail
        | 1 -> Stall (1_000 + Xoshiro.int rng 50_000)
        | _ -> Crash
      in
      let tid =
        (* Never crash thread 0 in generated plans: drivers use a fixed
           surviving thread for post-run draining. *)
        match action with
        | Crash -> Some (1 + Xoshiro.int rng (max 1 (num_threads - 1)))
        | _ ->
            if Xoshiro.int rng 2 = 0 then None
            else Some (Xoshiro.int rng num_threads)
      in
      let hit = 1 + Xoshiro.int rng 24 in
      rule ?tid ~hit site action)

(* ---- compiling the I/O half of a plan ---- *)

(** Compile the [vfs.*] rules of [plan] into the Faulty vfs's own engine
    ([Vfs.arm]).  [Crash] on an I/O site becomes the vfs-level process
    death ([Vfs.Crash] → {!Vfs.Crashed}); [Io f] passes through; [casfail]
    and [stall] have no I/O meaning and are dropped.  Thread filters are
    ignored — the vfs engine injects at the I/O operation, below any
    notion of simulated thread.  Non-[vfs.*] rules are left for
    {!install} to run through the simulator hook, so one plan string can
    drive both engines. *)
let io_rules plan =
  List.filter_map
    (fun r ->
      if not (is_io_site r.site) then None
      else
        match r.action with
        | Io f -> Some (Vfs.rule ~hit:r.hit r.site f)
        | Crash -> Some (Vfs.rule ~hit:r.hit r.site Vfs.Crash)
        | Cas_fail | Stall _ -> None)
    plan
