(** Low-overhead observability for queue internals.

    The paper's evaluation (§5, Figures 3-4) explains throughput differences
    by {e internal} behaviour — shared-component consolidations, CAS retries
    on the snapshot pointer, spy traffic — which externally visible
    throughput cannot separate.  This module provides the counters and span
    timers the instrumented structures report into, designed so that the
    instrumentation itself cannot perturb the measurement:

    - {b per-thread sharding}: every registered thread writes to its own
      shard — plain (non-atomic) [int]/[float] arrays, never shared cells —
      so counting adds no coherence traffic on the real backend and no
      simulated cost on the simulator (the simulator charges only accesses
      routed through its [atomic] cells);
    - {b false-sharing padding}: shards are separately allocated and padded
      to more than a cache line on both ends, so two threads' shards never
      share a line even when the allocator places them adjacently;
    - {b no-ops when disabled}: the enabled flag is latched into each sheet
      at creation; a disabled handle short-circuits on one immutable record
      field ([on = false]), which is branch-predicted away — the hot path
      is unperturbed, and on the simulator a disabled and an enabled run
      execute byte-identical schedules (asserted by [test/test_obs.ml]).

    Counter and span {e names} are interned into a global table at module
    initialization time (each instrumented functor interns its names when
    instantiated).  Interning is idempotent and must happen before threads
    start — which it does, since OCaml runs module initializers on the main
    thread before [parallel_run] is reachable.

    Span timers read the clock through the [now] function the owning
    structure supplies ([B.time] of its backend), so on the simulator spans
    measure deterministic {e virtual} nanoseconds and on the real backend
    wall-clock nanoseconds (at the resolution of [Unix.gettimeofday]).

    See [docs/METRICS.md] for the reference of every counter and span the
    repository emits and how each maps to the paper's listings. *)

(* ------------------------------------------------------------------ *)
(* Global enable flag and name interning                               *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref false

(** Enable/disable observability for sheets created {e from now on};
    existing sheets keep the state latched at their creation. *)
let set_enabled b = enabled_flag := b

let enabled () = !enabled_flag

(** Fixed capacity of the intern tables.  Every shard allocates this many
    slots, so registration after sheet creation stays safe (new counters
    simply index into already-allocated space). *)
let max_counters = 192

let max_spans = 48

type counter = int
type span = int

let counter_names = Array.make max_counters ""
let num_counters = ref 0
let span_names = Array.make max_spans ""
let num_spans = ref 0

let intern table count cap kind name =
  let rec find i = if i >= !count then -1 else if table.(i) = name then i else find (i + 1) in
  match find 0 with
  | -1 ->
      if !count >= cap then
        failwith (Printf.sprintf "Obs: too many %s (max %d)" kind cap);
      let id = !count in
      table.(id) <- name;
      incr count;
      id
  | id -> id

(** Intern a counter name; idempotent.  Call at module-init time. *)
let counter name = intern counter_names num_counters max_counters "counters" name

(** Intern a span name; idempotent.  Call at module-init time. *)
let span name = intern span_names num_spans max_spans "spans" name

let counter_name (c : counter) = counter_names.(c)
let span_name (s : span) = span_names.(s)

(* ------------------------------------------------------------------ *)
(* Sheets, shards, handles                                             *)
(* ------------------------------------------------------------------ *)

(* A cache line is 64 B = 8 words; [pad] words of dead space on both ends
   of every shard array keep two threads' counters off any shared line
   regardless of allocator adjacency. *)
let pad = 8

type shard = {
  c : int array;  (** [pad] dead slots, then one slot per counter id *)
  sp_count : int array;
  sp_ns : float array;
}

let fresh_shard () =
  {
    c = Array.make (max_counters + (2 * pad)) 0;
    sp_count = Array.make (max_spans + (2 * pad)) 0;
    sp_ns = Array.make (max_spans + (2 * pad)) 0.0;
  }

(* The shared shard behind every disabled handle: writes are unreachable
   (guarded by [on]), so sharing is safe and keeps disabled sheets
   allocation-free per thread. *)
let dead_shard = fresh_shard ()

type handle = { on : bool; now : unit -> float; sh : shard }

(** The always-disabled handle: instrumented structures default to it so
    observability stays strictly opt-in. *)
let null_handle = { on = false; now = (fun () -> 0.0); sh = dead_shard }

type sheet = {
  threads : int;
  on : bool;  (** latched from {!enabled} at creation *)
  now : unit -> float;
  shards : shard array;
}

(** [create_sheet ~now ~num_threads ()] builds one sheet with one shard per
    thread slot.  [now] is the owning backend's clock ([B.time]); it is
    only consulted by span timers.  The global {!enabled} flag is latched
    here: a sheet created while disabled stays disabled (and costs one
    predictable branch per event). *)
let create_sheet ?(now = fun () -> 0.0) ~num_threads () =
  if num_threads < 1 then invalid_arg "Obs.create_sheet: num_threads < 1";
  let on = !enabled_flag in
  {
    threads = num_threads;
    on;
    now;
    shards =
      (if on then Array.init num_threads (fun _ -> fresh_shard ())
       else Array.make num_threads dead_shard);
  }

let sheet_enabled sheet = sheet.on

(** Per-thread handle; the only value the hot path touches. *)
let handle sheet ~tid =
  if tid < 0 || tid >= sheet.threads then invalid_arg "Obs.handle: tid";
  { on = sheet.on; now = sheet.now; sh = sheet.shards.(tid) }

(* ------------------------------------------------------------------ *)
(* Hot path                                                            *)
(* ------------------------------------------------------------------ *)

let incr (h : handle) (c : counter) = if h.on then h.sh.c.(pad + c) <- h.sh.c.(pad + c) + 1

let add (h : handle) (c : counter) n =
  if h.on then h.sh.c.(pad + c) <- h.sh.c.(pad + c) + n

(** Start a span: returns the clock reading to pass to {!span_end} ([0.]
    when disabled — never inspected in that case). *)
let span_begin (h : handle) = if h.on then h.now () else 0.0

(** Close a span opened by {!span_begin}: accumulates the elapsed time (in
    nanoseconds) and the completion count. *)
let span_end (h : handle) (s : span) t0 =
  if h.on then begin
    h.sh.sp_count.(pad + s) <- h.sh.sp_count.(pad + s) + 1;
    h.sh.sp_ns.(pad + s) <- h.sh.sp_ns.(pad + s) +. ((h.now () -. t0) *. 1e9)
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type span_data = { count : int array; ns : float array }  (** per thread *)

(** A type-erased, structure-independent view of one sheet: per-thread
    values for every counter/span that fired at least once, in
    registration order.  Plain data — safe to hold after the queue is
    gone, serialize, or diff. *)
type snapshot = {
  threads : int;
  counters : (string * int array) list;
  spans : (string * span_data) list;
}

let counter_total per_thread = Array.fold_left ( + ) 0 per_thread

(** Read the sheet.  Call after [parallel_run] joins (shards are written
    without synchronization by their owning threads). *)
let snapshot sheet =
  let counters = ref [] in
  for id = !num_counters - 1 downto 0 do
    let per = Array.map (fun sh -> sh.c.(pad + id)) sheet.shards in
    if counter_total per <> 0 then
      counters := (counter_names.(id), per) :: !counters
  done;
  let spans = ref [] in
  for id = !num_spans - 1 downto 0 do
    let count = Array.map (fun sh -> sh.sp_count.(pad + id)) sheet.shards in
    if counter_total count <> 0 then
      spans :=
        ( span_names.(id),
          { count; ns = Array.map (fun sh -> sh.sp_ns.(pad + id)) sheet.shards }
        )
        :: !spans
  done;
  { threads = sheet.threads; counters = !counters; spans = !spans }

(** The snapshot of a disabled (or untouched) sheet. *)
let empty_snapshot ~threads = { threads; counters = []; spans = [] }

(** Zero every shard (e.g. between benchmark phases on one queue). *)
let reset sheet =
  if sheet.on then
    Array.iter
      (fun sh ->
        Array.fill sh.c 0 (Array.length sh.c) 0;
        Array.fill sh.sp_count 0 (Array.length sh.sp_count) 0;
        Array.fill sh.sp_ns 0 (Array.length sh.sp_ns) 0.0)
      sheet.shards
