(** Tasks for the scheduling runtime (lib/sched).

    The k-LSM was designed as the scheduling backbone of Wimmer's
    task-parallel runtime; this module is the unit of work that backbone
    moves around.  A task carries a priority (smaller = more urgent — the
    queue's key), a payload closure, the timestamp at which it entered the
    system (for queueing-delay metrics), an optional start-by deadline, and
    an execution-lifecycle cell.

    {2 Lifecycle}

    The {!status} cell is the single source of truth for what may happen
    to a task, and every transition is a CAS, so concurrent workers (or a
    worker racing the supervisor that declared it dead) always agree:

    {v
      Pending a --try_lease--> Running (a+1) --try_complete--> Completed
          |                        |
          | (deadline passed)      | (lease expired; attempts left)
          v                        v
        Dead  <--(attempts out)-- Parked a --unpark (backoff due)--> Pending a
    v}

    [Completed] and [Dead] are sticky: once either is reached no retry,
    re-delivery or late finisher can resurrect the task — this is what
    preserves the exactly-once guarantee under retries.  A queue that
    (incorrectly or because the supervisor re-enqueued a recovered id)
    delivers the same task twice loses the [try_lease] race and executes
    nothing.

    Tasks may spawn tasks (the Pheet pattern): a body receives an {!api}
    record wired by the executing worker, so children inherit the
    batching/backpressure machinery of whichever thread runs the parent.

    {2 Fibers}

    A task body runs as the {e root fiber} of its lease attempt
    ({!Fiber}): besides [spawn] (a new task, through the queue) the {!api}
    offers [fork] (a child {e fiber}, pushed to the executing worker's
    own deque — never through the shared queue), [await] (block this
    fiber until a forked fiber finishes; {!Worker} resumes it exactly
    once) and [yield] (cooperative reschedule, the shape a fiber blocked
    on a spilled-block fetch uses).  A task completes when {e all} fibers
    of its attempt have finished — exactly-once accounting is asserted
    per-fiber, not just per-body. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Fiber = Fiber.Make (B)

  (** A task body.  The wrapper type breaks the recursion between "a body"
      and "the spawn callback that accepts bodies". *)
  type body = Body of (api -> unit)

  (** The capabilities a body receives from its executing worker. *)
  and api = {
    spawn : priority:int -> body -> unit;
        (** a new {e task}, through admission + the shared queue *)
    fork : 'a. (unit -> 'a) -> 'a Fiber.t;
        (** a child {e fiber} of this task's attempt, pushed to the
            current worker's deque (stealable by idle peers) *)
    await : 'a. 'a Fiber.t -> 'a;
        (** park this fiber until that one finishes; re-raises its
            exception *)
    yield : unit -> unit;  (** cooperative reschedule point *)
  }

  (** Execution state; the [int] is the number of lease attempts so far. *)
  type status =
    | Pending of int  (** queued (or re-queued); ready to be leased *)
    | Running of int * float  (** leased; the float is the lease expiry *)
    | Parked of int * float
        (** timed out; retry no earlier than the float (backoff) *)
    | Completed  (** body ran to completion exactly once; sticky *)
    | Dead  (** deadline missed or retries exhausted; sticky *)

  type t = {
    id : int;  (** dense index into the run's task table *)
    priority : int;  (** queue key; smaller is more urgent *)
    body : body;
    enqueued_at : float;  (** backend time at submission *)
    deadline : float;  (** absolute start-by deadline; [infinity] = none *)
    lease : float;  (** per-attempt execution budget; [infinity] = none *)
    status : status B.atomic;
    claims : int B.atomic;  (** delivery/lease attempts, for diagnostics *)
    mutable started_at : float;  (** owner-written by the leasing worker *)
    mutable finished_at : float;
  }

  let make ~id ~priority ~now ?(deadline = infinity) ?(lease = infinity) body =
    if priority < 0 then invalid_arg "Task.make: negative priority";
    {
      id;
      priority;
      body;
      enqueued_at = now;
      deadline;
      lease;
      status = B.make (Pending 0);
      claims = B.make 0;
      started_at = nan;
      finished_at = nan;
    }

  (** Lift a plain closure into a non-spawning, non-forking body. *)
  let fn f = Body (fun _ -> f ())

  let noop = Body (fun _ -> ())

  let status t = B.get t.status

  (** Number of delivery/lease attempts so far; > 1 means the task was
      delivered more than once — benign double deliveries (supervisor
      re-enqueues, queue races) that the lifecycle CAS stopped from
      becoming double executions. *)
  let claim_count t = B.get t.claims

  (** [claim t] is true for exactly one caller per task — the legacy
      counter-based guard, kept for direct users that need no
      timeout/retry machinery ({!try_lease} is the lifecycle-aware
      path). *)
  let claim t = B.fetch_and_add t.claims 1 = 0

  type lease_outcome =
    | Leased of int  (** run the body; the int is the attempt number *)
    | Lost  (** someone else holds/held it: drop this delivery *)
    | Deadline_expired  (** sat in the queue past its deadline: dead *)

  (** Try to take execution ownership at time [now].  At most one caller
      per (attempt) cycle receives [Leased]; a task whose deadline passed
      while queued transitions to [Dead] instead (exactly one caller gets
      [Deadline_expired] and owes the dead-letter bookkeeping). *)
  let try_lease t ~now =
    ignore (B.fetch_and_add t.claims 1);
    let s = B.get t.status in
    match s with
    | Pending a ->
        if now > t.deadline then
          if B.compare_and_set t.status s Dead then Deadline_expired else Lost
        else if B.compare_and_set t.status s (Running (a + 1, now +. t.lease))
        then begin
          t.started_at <- now;
          Leased (a + 1)
        end
        else Lost
    | Running _ | Parked _ | Completed | Dead -> Lost

  (** Mark the body's completion; [false] iff the task already reached a
      terminal state (a supervisor gave up on this attempt and the task
      completed — or died — elsewhere): the caller must then treat its own
      finish as late and not account a completion. *)
  let rec try_complete t ~now =
    let s = B.get t.status in
    match s with
    | Running _ | Parked _ | Pending _ ->
        if B.compare_and_set t.status s Completed then begin
          t.finished_at <- now;
          true
        end
        else try_complete t ~now
    | Completed | Dead -> false

  type expiry =
    | Expired_parked of float  (** retry scheduled for the given time *)
    | Expired_dead  (** attempts exhausted; caller owes dead-lettering *)
    | Not_expired

  (** Supervisor step: if the current lease ran out, either park the task
      for a retry (exponential backoff: [retry_delay * 2^(attempt-1)]) or,
      when [max_attempts] is spent, declare it dead.  CAS-guarded, so a
      worker completing at the same instant wins cleanly. *)
  let expire t ~now ~max_attempts ~retry_delay =
    let s = B.get t.status in
    match s with
    | Running (a, until) when now > until ->
        if a >= max_attempts then
          if B.compare_and_set t.status s Dead then Expired_dead
          else Not_expired
        else begin
          let due = now +. (retry_delay *. float_of_int (1 lsl (a - 1))) in
          if B.compare_and_set t.status s (Parked (a, due)) then
            Expired_parked due
          else Not_expired
        end
    | _ -> Not_expired

  (** Supervisor step: release a parked task whose backoff elapsed back to
      [Pending]; [true] iff this caller performed the transition (and so
      owes the re-enqueue). *)
  let unpark t ~now =
    let s = B.get t.status in
    match s with
    | Parked (a, due) when now >= due -> B.compare_and_set t.status s (Pending a)
    | _ -> false

  let start t ~now = t.started_at <- now

  (** Unconditional completion (legacy path for {!claim} users). *)
  let finish t ~now =
    t.finished_at <- now;
    B.set t.status Completed

  let is_completed t = B.get t.status = Completed
  let is_dead t = B.get t.status = Dead

  let status_name t =
    match B.get t.status with
    | Pending _ -> "pending"
    | Running _ -> "running"
    | Parked _ -> "parked"
    | Completed -> "completed"
    | Dead -> "dead"

  (** Seconds between submission and the start of execution. *)
  let queueing_delay t = t.started_at -. t.enqueued_at

  (** Seconds between submission and completion. *)
  let response_time t = t.finished_at -. t.enqueued_at

  let run t api =
    let (Body f) = t.body in
    f api
end
