(** Tasks for the scheduling runtime (lib/sched).

    The k-LSM was designed as the scheduling backbone of Wimmer's
    task-parallel runtime; this module is the unit of work that backbone
    moves around.  A task carries a priority (smaller = more urgent — the
    queue's key), a payload closure, the timestamp at which it entered the
    system (for queueing-delay metrics), and a completion cell.

    Execution is guarded by a claim counter: whichever worker wins the
    [claim] increment runs the body, so even a queue that (incorrectly)
    delivered the same task twice could not double-execute it — and the
    stress tests assert that the counter never exceeds one.

    Tasks may spawn tasks (the Pheet pattern): a body receives a [spawn]
    callback wired by the executing worker to its own submission path, so
    children inherit the batching/backpressure machinery of the parent's
    thread. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  (** A task body.  The wrapper type breaks the recursion between "a body"
      and "the spawn callback that accepts bodies". *)
  type body = Body of (spawn:(priority:int -> body -> unit) -> unit)

  type t = {
    id : int;  (** dense index into the run's task table *)
    priority : int;  (** queue key; smaller is more urgent *)
    body : body;
    enqueued_at : float;  (** backend time at submission *)
    claims : int B.atomic;  (** execution guard; first increment wins *)
    completed : bool B.atomic;  (** completion cell, set after the body ran *)
    mutable started_at : float;  (** owner-written by the claiming worker *)
    mutable finished_at : float;
  }

  let make ~id ~priority ~now body =
    if priority < 0 then invalid_arg "Task.make: negative priority";
    {
      id;
      priority;
      body;
      enqueued_at = now;
      claims = B.make 0;
      completed = B.make false;
      started_at = nan;
      finished_at = nan;
    }

  (** Lift a plain closure into a non-spawning body. *)
  let fn f = Body (fun ~spawn:_ -> f ())

  let noop = Body (fun ~spawn:_ -> ())

  (** [claim t] is true for exactly one caller per task. *)
  let claim t = B.fetch_and_add t.claims 1 = 0

  (** Number of claim attempts so far; > 1 would mean a queue delivered the
      task twice (the stress tests assert this never happens). *)
  let claim_count t = B.get t.claims

  let start t ~now = t.started_at <- now

  let finish t ~now =
    t.finished_at <- now;
    B.set t.completed true

  let is_completed t = B.get t.completed

  (** Seconds between submission and the start of execution. *)
  let queueing_delay t = t.started_at -. t.enqueued_at

  (** Seconds between submission and completion. *)
  let response_time t = t.finished_at -. t.enqueued_at

  let run t ~spawn =
    let (Body f) = t.body in
    f ~spawn
end
