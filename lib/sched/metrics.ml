(** Per-worker scheduling metrics.

    Each worker owns one {!worker} record and mutates it without
    synchronization (records are read only after [parallel_run] joins), so
    metric collection adds no contention — essential under the simulator,
    where every atomic access is charged coherence cost and would distort
    the very schedule being measured.

    Two series are recorded per executed task:

    - {b queueing delay}: seconds between submission and the start of
      execution — the latency the layer above the queue actually sees;
    - {b slack}: the priority-inversion magnitude at dequeue, measured as
      [max 0 (p_prev - p)] where [p_prev] is the priority of the task
      started immediately before (globally).  A relaxed queue serving
      out of order produces positive slack; the mean/p99 of this series is
      an oracle-free lower bound on rank error that works on the real
      backend too (the exact rank-error experiment lives in
      {!Klsm_harness.Quality}). *)

module Stats = Klsm_primitives.Stats

(** Growable float series; amortized O(1) push, no boxing beyond the
    float array itself. *)
type series = { mutable data : float array; mutable len : int }

let series () = { data = Array.make 64 0.0; len = 0 }

let push s v =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0.0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1

let to_array s = Array.sub s.data 0 s.len

type worker = {
  mutable executed : int;
  mutable submitted : int;  (** root tasks admitted by this worker *)
  mutable spawned : int;  (** children spawned by tasks this worker ran *)
  mutable flushes : int;  (** submitter buffer flushes *)
  mutable urgent_flushes : int;  (** flushes forced by priority inversion *)
  mutable rejected : int;  (** admission-control rejections (backpressure) *)
  mutable empty_pops : int;  (** delete-mins that found nothing *)
  mutable double_claims : int;
      (** lost lease/claim races; 0 unless faults force re-deliveries *)
  mutable shed : int;  (** admitted tasks dropped at a full task table *)
  mutable timeouts : int;  (** lease/deadline expiries this worker detected *)
  mutable retries : int;  (** bodies executed with attempt number > 1 *)
  mutable reenqueues : int;  (** parked/lost tasks this worker re-queued *)
  mutable dead_letters : int;  (** tasks this worker moved to the DLQ *)
  mutable late_completions : int;
      (** bodies that finished after the task's fate was sealed elsewhere *)
  mutable worker_deaths : int;  (** peers this worker declared dead *)
  mutable sweeps : int;  (** supervision passes over the task table *)
  mutable fibers : int;  (** fibers this worker created (roots + forks) *)
  mutable fibers_completed : int;
      (** fiber thunks that finished on this worker — equals the summed
          [fibers] after a fault-free run (per-fiber exactly-once) *)
  mutable fiber_suspends : int;  (** awaits/yields that actually parked *)
  mutable fiber_resumes : int;  (** parked fibers continued by this worker *)
  mutable steal_attempts : int;  (** Deque.steal calls on victims *)
  mutable steals : int;  (** attempts that took a fiber *)
  mutable steal_fallbacks : int;
      (** scheduling steps that found deque and victims dry and fell back
          to the shared queue's delete-min *)
  delays : series;  (** queueing delay per executed task, seconds *)
  slacks : series;  (** dequeue priority inversion per task, key units *)
}

let fresh_worker () =
  {
    executed = 0;
    submitted = 0;
    spawned = 0;
    flushes = 0;
    urgent_flushes = 0;
    rejected = 0;
    empty_pops = 0;
    double_claims = 0;
    shed = 0;
    timeouts = 0;
    retries = 0;
    reenqueues = 0;
    dead_letters = 0;
    late_completions = 0;
    worker_deaths = 0;
    sweeps = 0;
    fibers = 0;
    fibers_completed = 0;
    fiber_suspends = 0;
    fiber_resumes = 0;
    steal_attempts = 0;
    steals = 0;
    steal_fallbacks = 0;
    delays = series ();
    slacks = series ();
  }

let create ~num_workers = Array.init num_workers (fun _ -> fresh_worker ())

type summary = {
  executed : int;
  submitted : int;
  spawned : int;
  flushes : int;
  urgent_flushes : int;
  rejected : int;
  empty_pops : int;
  double_claims : int;
  shed : int;
  timeouts : int;
  retries : int;
  reenqueues : int;
  dead_letters : int;
  late_completions : int;
  worker_deaths : int;
  sweeps : int;
  fibers : int;
  fibers_completed : int;
  fiber_suspends : int;
  fiber_resumes : int;
  steal_attempts : int;
  steals : int;
  steal_fallbacks : int;
  delay : Stats.summary option;  (** [None] when nothing executed *)
  delay_p99 : float;
  slack : Stats.summary option;
  slack_p99 : float;
  inversions : int;  (** executed tasks with strictly positive slack *)
}

let summarize (workers : worker array) =
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 workers in
  let concat f =
    Array.concat (Array.to_list (Array.map (fun w -> to_array (f w)) workers))
  in
  let delays = concat (fun w -> w.delays) in
  let slacks = concat (fun w -> w.slacks) in
  let opt_summary a = if Array.length a = 0 then None else Some (Stats.summarize a) in
  let p99 a = if Array.length a = 0 then 0.0 else Stats.percentile a 99.0 in
  {
    executed = sum (fun w -> w.executed);
    submitted = sum (fun w -> w.submitted);
    spawned = sum (fun w -> w.spawned);
    flushes = sum (fun w -> w.flushes);
    urgent_flushes = sum (fun w -> w.urgent_flushes);
    rejected = sum (fun w -> w.rejected);
    empty_pops = sum (fun w -> w.empty_pops);
    double_claims = sum (fun w -> w.double_claims);
    shed = sum (fun w -> w.shed);
    timeouts = sum (fun w -> w.timeouts);
    retries = sum (fun w -> w.retries);
    reenqueues = sum (fun w -> w.reenqueues);
    dead_letters = sum (fun w -> w.dead_letters);
    late_completions = sum (fun w -> w.late_completions);
    worker_deaths = sum (fun w -> w.worker_deaths);
    sweeps = sum (fun w -> w.sweeps);
    fibers = sum (fun w -> w.fibers);
    fibers_completed = sum (fun w -> w.fibers_completed);
    fiber_suspends = sum (fun w -> w.fiber_suspends);
    fiber_resumes = sum (fun w -> w.fiber_resumes);
    steal_attempts = sum (fun w -> w.steal_attempts);
    steals = sum (fun w -> w.steals);
    steal_fallbacks = sum (fun w -> w.steal_fallbacks);
    delay = opt_summary delays;
    delay_p99 = p99 delays;
    slack = opt_summary slacks;
    slack_p99 = p99 slacks;
    inversions = Array.fold_left (fun acc s -> if s > 0.0 then acc + 1 else acc) 0 slacks;
  }
