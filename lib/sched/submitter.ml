(** The batched, sharded submission path of the scheduler.

    Every worker thread owns one submitter.  Instead of paying one queue
    insert per task, tasks accumulate in a thread-local buffer that is
    flushed through the queue's bulk path ({!Klsm_core.Pq_intf.S.insert_batch})
    — on the k-LSM a whole flush becomes a single sorted block inserted
    with one CAS, making shared-component updates [batch] times rarer
    (the same batching the DistLSM performs below the queue, §4.1/§4.3,
    repeated one layer up where "Engineering MultiQueues" [arXiv
    2504.11652] shows it dominates end-to-end throughput).

    Two safeguards keep batching from hurting the schedule:

    - {b priority-inversion flush}: buffered tasks are invisible to other
      workers, so holding an {e urgent} task back would manufacture
      priority inversion.  An incoming task that undercuts the buffered
      minimum by more than [urgency_margin] forces an immediate flush of
      the whole buffer (itself included).
    - {b bounded admission}: a shared in-flight counter implements a
      bounded queue.  [try_admit] refuses new roots beyond [capacity];
      {!admit_wait} converts refusal into a backoff-based backpressure
      wait ({!Klsm_primitives.Backoff}), which is the signal a load-shedding
      layer above would consume.

    The drain side has a symmetric knob: {!Worker.make_ctx}'s
    [~batch]/[~pop_batch] pulls a run of task ids per shared-queue round
    trip ([try_delete_min_batch]; one claiming CAS on the k-LSMs), so a
    flush published here as one block can be consumed as one batch there
    ([Closed_loop.config.dbuf] / [sched --dbuf]). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Backoff = Klsm_primitives.Backoff

  type config = {
    batch : int;  (** flush when this many tasks are buffered; >= 1 *)
    urgency_margin : int;
        (** flush immediately when an incoming priority undercuts the
            buffered minimum by more than this *)
    capacity : int;  (** admission bound on in-flight tasks *)
  }

  let default_config = { batch = 16; urgency_margin = 512; capacity = max_int }

  type t = {
    cfg : config;
    enqueue_batch : (int * int) array -> unit;  (** (priority, task id) *)
    inflight : int B.atomic;  (** shared by all submitters of one pool *)
    buf : (int * int) array;
    mutable len : int;
    mutable buf_min : int;  (** min priority currently buffered *)
    mutable flushes : int;
    mutable urgent_flushes : int;
    mutable rejections : int;
    mutable backpressure_waits : int;
  }

  let create ?(cfg = default_config) ~inflight ~enqueue_batch () =
    if cfg.batch < 1 then invalid_arg "Submitter.create: batch < 1";
    if cfg.capacity < 1 then invalid_arg "Submitter.create: capacity < 1";
    {
      cfg;
      enqueue_batch;
      inflight;
      buf = Array.make cfg.batch (0, 0);
      len = 0;
      buf_min = max_int;
      flushes = 0;
      urgent_flushes = 0;
      rejections = 0;
      backpressure_waits = 0;
    }

  let pending t = t.len
  let inflight t = B.get t.inflight

  (** Publish the buffered tasks to the queue as one batch.  A full buffer
      — the steady-state flush — is passed to [enqueue_batch] directly
      instead of being copied: {!Klsm_core.Pq_intf.S.insert_batch} borrows
      the array only for the duration of the call, and this thread (the
      buffer's single owner) does not refill it until the call returns. *)
  let flush t =
    if t.len > 0 then begin
      let pairs =
        if t.len = Array.length t.buf then t.buf else Array.sub t.buf 0 t.len
      in
      t.len <- 0;
      t.buf_min <- max_int;
      t.flushes <- t.flushes + 1;
      t.enqueue_batch pairs
    end

  (** Buffer one (already admitted, already published-in-the-table) task.
      Flushes on batch overflow, and immediately when the incoming task is
      urgent enough that buffering it would cause priority inversion. *)
  let push t ~priority ~id =
    let urgent = t.len > 0 && priority + t.cfg.urgency_margin < t.buf_min in
    t.buf.(t.len) <- (priority, id);
    t.len <- t.len + 1;
    if priority < t.buf_min then t.buf_min <- priority;
    if urgent then begin
      t.urgent_flushes <- t.urgent_flushes + 1;
      flush t
    end
    else if t.len >= t.cfg.batch then flush t

  (** Immediate, buffer-bypassing enqueue — the recovery/retry path.  A
      task being re-enqueued after a timeout or a worker death must become
      visible to every worker {e now}: parking it in this thread's private
      buffer would recreate exactly the invisibility the retry is
      repairing if this thread stalls in turn.  Counted as a flush. *)
  let push_now t ~priority ~id =
    t.flushes <- t.flushes + 1;
    t.enqueue_batch [| (priority, id) |]

  (** Admission control for root tasks: returns [Some inflight_now] (the
      counter after this admission, for peak tracking) or [None] when the
      pool is at capacity. *)
  let try_admit t =
    let now = B.fetch_and_add t.inflight 1 + 1 in
    if now <= t.cfg.capacity then Some now
    else begin
      ignore (B.fetch_and_add t.inflight (-1));
      t.rejections <- t.rejections + 1;
      None
    end

  (** Blocking admission: backoff until capacity frees up.  Only safe from
      a pure producer thread — a worker that also serves the queue must use
      {!try_admit} and keep executing instead (see {!Worker.run}). *)
  let admit_wait t =
    let bo = Backoff.create () in
    let rec go () =
      match try_admit t with
      | Some n -> n
      | None ->
          t.backpressure_waits <- t.backpressure_waits + 1;
          Backoff.once bo ~relax:B.relax_n;
          B.yield ();
          go ()
    in
    go ()

  (** Forced admission for spawned children: a task already inside the
      system spawning work must not block on the admission bound (all
      workers could be executing spawning bodies simultaneously — waiting
      here would deadlock the pool).  The in-flight counter still grows so
      liveness tracking stays exact; capacity is a bound on {e external}
      arrivals only. *)
  let admit_spawn t = ignore (B.fetch_and_add t.inflight 1)

  (** A completed task leaves the system. *)
  let release t = ignore (B.fetch_and_add t.inflight (-1))
end
