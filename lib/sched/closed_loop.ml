(** Replayable open/closed-loop workload driver for the scheduler — the
    experiment harness entry of lib/sched, sitting next to
    {!Klsm_harness.Throughput} and {!Klsm_harness.Quality}.

    Workers are clients and servers at once: each of the [num_workers]
    threads generates its share of root tasks (priorities drawn from a
    {!Klsm_harness.Workload} distribution, service demands from a
    {!service} distribution) and serves the shared queue.  Two arrival
    regimes:

    - {b closed loop}: a worker submits as fast as admission control
      admits — the in-flight population is pinned at [capacity], the
      classic closed system;
    - {b open loop}: arrivals follow a Poisson process of the given rate
      in backend time, decoupling offered load from service capacity so
      overload behaviour (backpressure, delay growth) is observable.

    Tasks optionally spawn children ([spawn_fanout]/[spawn_depth], the
    Pheet pattern), with priorities derived deterministically from the
    parent so the workload replays identically regardless of which worker
    executes what.

    Everything — completion order, makespan, every metric — is a
    deterministic function of (config, spec, simulator seed) under
    [Sim.Fair]; [test/test_sched.ml] asserts exact replay of the discrete
    outcomes (completion order, counters) and makespan equality up to the
    float rounding of the simulator's advancing clock base. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Registry = Klsm_harness.Registry.Make (B)
  module Workload = Klsm_harness.Workload
  module Task = Task.Make (B)
  module Submitter = Submitter.Make (B)
  module Worker = Worker.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro
  module Obs = Klsm_obs.Obs

  type arrival_mode =
    | Closed  (** submit as fast as admission control allows *)
    | Open_poisson of float  (** mean arrival rate per worker, tasks/s *)

  type service =
    | Fixed of int  (** every task costs this many work units *)
    | Uniform_work of int  (** uniform in [1, arg] *)
    | Exponential of float  (** exponential with this mean, >= 1 *)

  type config = {
    num_workers : int;
    roots_per_worker : int;
    mode : arrival_mode;
    service : service;
    priorities : Workload.t;  (** key distribution for task priorities *)
    spawn_fanout : int;  (** children per task, 0 = no spawning *)
    spawn_depth : int;  (** spawn recursion depth below each root *)
    fiber_fanout : int;
        (** child fibers forked (and awaited) per task body, 0 = the
            legacy straight-line body.  Each task then runs as
            [1 + fiber_fanout] fibers sharing its service demand, with
            odd-indexed children yielding once mid-work — the knob the
            [sched:fibers=<F>] spec form sets *)
    batch : int;  (** submitter buffer size *)
    dbuf : int;
        (** tasks pulled per shared-queue round trip by each worker
            (Worker [~batch]/[~pop_batch]): the delete-side counterpart of
            [batch].  The head task starts inline; the rest land in the
            worker's deque as steal-ready fibers.  0 (the default) keeps
            the classic one-pop serve loop — and the byte-identical
            same-seed Sim schedule the replay tests assert *)
    urgency_margin : int;  (** submitter priority-inversion flush margin *)
    capacity : int;  (** admission bound on in-flight tasks *)
    seed : int;
    robust : Worker.robust;
        (** timeout/retry/supervision knobs; {!Worker.default_robust}
            disables them all (the legacy trusting behaviour) *)
    drain_after : float;
        (** request a graceful drain this many backend-seconds into the
            run ([infinity] = never): admission stops, in-flight work
            finishes, leftovers are reported in the {!result} *)
  }

  let default_config =
    {
      num_workers = 8;
      roots_per_worker = 250;
      mode = Closed;
      service = Fixed 32;
      priorities = Workload.Uniform (1 lsl 20);
      spawn_fanout = 0;
      spawn_depth = 0;
      fiber_fanout = 0;
      batch = 16;
      dbuf = 0;
      urgency_margin = 512;
      capacity = 4096;
      seed = 42;
      robust = Worker.default_robust;
      drain_after = infinity;
    }

  (** Tasks ultimately created per root (the spawn tree). *)
  let tasks_per_root cfg =
    if cfg.spawn_fanout <= 0 || cfg.spawn_depth <= 0 then 1
    else begin
      let acc = ref 0 and layer = ref 1 in
      for _ = 0 to cfg.spawn_depth do
        acc := !acc + !layer;
        layer := !layer * cfg.spawn_fanout
      done;
      !acc
    end

  let total_tasks cfg = cfg.num_workers * cfg.roots_per_worker * tasks_per_root cfg

  let service_ticks service rng =
    match service with
    | Fixed n -> max 1 n
    | Uniform_work n -> 1 + Xoshiro.int rng (max 1 n)
    | Exponential mean ->
        max 1 (int_of_float (-.mean *. log (1.0 -. Xoshiro.float rng)))

  (* The task body: consume [ticks] units of (virtual) service time —
     straight-line, or exploded into a fiber tree when [fiber_fanout] > 0 —
     then spawn the next layer of the task tree.  Child priorities and
     demands derive only from the parent's, and fibers are forked and
     awaited in a fixed order, so the workload replays identically
     regardless of which worker (or thief) executes what. *)
  let rec make_body cfg ~depth ~priority ~ticks =
    Task.Body
      (fun api ->
        if cfg.fiber_fanout > 0 then begin
          (* Fork the children in index order, then join them in index
             order and check each value, so a mis-routed resumption
             cannot go unnoticed.  Odd children yield once mid-work to
             exercise the suspend/requeue/steal surface. *)
          let share = max 1 (ticks / cfg.fiber_fanout) in
          let kids =
            let rec build i acc =
              if i >= cfg.fiber_fanout then List.rev acc
              else
                let kid =
                  api.Task.fork (fun () ->
                      if i land 1 = 1 then api.Task.yield ();
                      B.tick share;
                      priority + i)
                in
                build (i + 1) (kid :: acc)
            in
            build 0 []
          in
          List.iteri
            (fun i f ->
              if api.Task.await f <> priority + i then
                failwith "Closed_loop: fiber tree joined to the wrong value")
            kids
        end
        else B.tick ticks;
        if depth > 0 then
          for i = 1 to cfg.spawn_fanout do
            let child_priority = priority + i in
            api.Task.spawn ~priority:child_priority
              (make_body cfg ~depth:(depth - 1) ~priority:child_priority
                 ~ticks:(max 1 (ticks / 2)))
          done)

  type result = {
    spec : Registry.spec;
    config : config;
    total_tasks : int;
    makespan : float;  (** wall (real) or virtual (sim) seconds *)
    throughput : float;  (** completed tasks per second *)
    completion_order : int array;  (** task ids, execution-finish order *)
    metrics : Metrics.summary;
    per_worker : Metrics.worker array;
    peak_inflight : int;
    lost : int;
        (** allocated tasks that reached no terminal state (neither
            completed nor dead-lettered); must be 0 — even under faults *)
    double : int;
        (** tasks delivered more than once.  Must be 0 in a fault-free
            run; under fault injection re-deliveries are expected (and
            harmless — the lease CAS blocks double {e execution}, which
            the completion-log permutation check still asserts) *)
    dead_lettered : int;  (** tasks that timed out of all their retries *)
    shed : int;  (** admissions refused by table overflow ([`Overflow]) *)
    leftovers : (int * string) list;
        (** unresolved (id, state) pairs after a drain or give-up *)
    gave_up : bool;  (** the run hit [robust.run_deadline]; must be false *)
    fiber_lost : int;
        (** fibers created minus fiber thunks finished, summed over
            workers — the per-fiber exactly-once audit.  Must be 0 in a
            fault-free run; under injected crashes a positive value is
            the expected signature of fibers that died with their worker
            (the task-level lease machinery re-ran them) *)
    queue_stats : Obs.snapshot;
        (** the queue's internal counters (Pq_intf.stats; lib/obs) *)
    sched_stats : Obs.snapshot;
        (** the scheduling layer's [sched.*] counters; both snapshots are
            empty unless observability was enabled before the run *)
  }

  let run config spec =
    if config.num_workers < 1 then invalid_arg "Closed_loop.run: num_workers";
    if config.roots_per_worker < 0 then
      invalid_arg "Closed_loop.run: roots_per_worker";
    if config.dbuf < 0 then invalid_arg "Closed_loop.run: dbuf < 0";
    let total = total_tasks config in
    let instance =
      Registry.make ~seed:config.seed ~num_threads:config.num_workers spec
    in
    let pool =
      Worker.create_pool ~robust:config.robust ~max_tasks:(max 1 total)
        ~num_workers:config.num_workers ()
    in
    let metrics = Metrics.create ~num_workers:config.num_workers in
    let sub_cfg =
      {
        Submitter.batch = config.batch;
        urgency_margin = config.urgency_margin;
        capacity = config.capacity;
      }
    in
    let sched_obs =
      Obs.create_sheet ~now:B.time ~num_threads:config.num_workers ()
    in
    let t0 = B.time () in
    B.parallel_run ~num_threads:config.num_workers (fun tid ->
        let h = instance.Registry.register tid in
        let sub =
          Submitter.create ~cfg:sub_cfg ~inflight:pool.Worker.inflight
            ~enqueue_batch:h.Registry.insert_batch ()
        in
        let obs = Obs.handle sched_obs ~tid in
        let ctx =
          Worker.make_ctx ~obs ~steal_seed:(config.seed + (6271 * tid))
            ~batch:(max 1 config.dbuf)
            ~pop_batch:h.Registry.try_delete_min_batch ~pool ~tid ~sub
            ~pop:h.Registry.try_delete_min ~metrics:metrics.(tid) ()
        in
        let rng = Xoshiro.create ~seed:(config.seed + (7919 * tid)) in
        let next_priority = Workload.generator config.priorities rng in
        let service_rng = Xoshiro.split rng in
        let arrival_rng = Xoshiro.split rng in
        let remaining = ref config.roots_per_worker in
        let next_arrival = ref (B.time ()) in
        let fresh_root () =
          decr remaining;
          let priority = next_priority () in
          let ticks = service_ticks config.service service_rng in
          `Submit
            (priority, make_body config ~depth:config.spawn_depth ~priority ~ticks)
        in
        let arrivals () =
          if
            config.drain_after < infinity
            && (not (Worker.draining pool))
            && B.time () -. t0 >= config.drain_after
          then Worker.request_drain pool;
          if !remaining <= 0 then `Done
          else
            match config.mode with
            | Closed -> fresh_root ()
            | Open_poisson rate ->
                if B.time () >= !next_arrival then begin
                  let gap =
                    -.log (1.0 -. Xoshiro.float arrival_rng) /. rate
                  in
                  next_arrival := !next_arrival +. gap;
                  fresh_root ()
                end
                else `Wait
        in
        (* Decorrelated idle backoff on the real backend; the simulator
           keeps the deterministic doubling path so same-seed replays stay
           byte-identical (see Backoff). *)
        let jitter =
          if B.name = "sim" then None
          else Some (Xoshiro.create ~seed:(config.seed + (104729 * tid)))
        in
        Worker.run ?jitter ctx ~arrivals;
        (* Fold the submitter's private counters into this worker's metrics
           record (they are separate objects so the submitter stays
           harness-agnostic). *)
        let w = metrics.(tid) in
        w.Metrics.flushes <- w.Metrics.flushes + sub.Submitter.flushes;
        w.Metrics.urgent_flushes <-
          w.Metrics.urgent_flushes + sub.Submitter.urgent_flushes;
        Obs.add obs Worker.c_flush sub.Submitter.flushes;
        Obs.add obs Worker.c_urgent_flush sub.Submitter.urgent_flushes);
    let makespan = B.time () -. t0 in
    (* Post-run audit: every allocated task must have reached a terminal
       state — completed exactly once, or dead-lettered exactly once.
       [claim_count > 1] means an id was delivered twice: a conservation
       bug in a fault-free run, the expected recovery signature under
       injected faults (the lease CAS stopped any double execution either
       way). *)
    let table = Array.length pool.Worker.tasks in
    let allocated = min (B.get pool.Worker.next_id) table in
    let lost = ref 0 and double = ref 0 and dead = ref 0 in
    for id = 0 to allocated - 1 do
      match B.get pool.Worker.tasks.(id) with
      | None -> incr lost
      | Some task ->
          (match Task.status task with
          | Task.Completed -> ()
          | Task.Dead -> incr dead
          | _ -> incr lost);
          if Task.claim_count task > 1 then incr double
    done;
    let summary = Metrics.summarize metrics in
    {
      spec;
      config;
      total_tasks = allocated;
      makespan;
      throughput =
        (if makespan > 0.0 then float_of_int allocated /. makespan
         else Float.nan);
      completion_order = Worker.completion_log pool;
      metrics = summary;
      per_worker = metrics;
      peak_inflight = Worker.peak_inflight pool;
      lost = !lost;
      (* [claims] counts every delivery attempt, so the scan above already
         covers ids that lost a lease race — adding [double_claims] on top
         would count those deliveries twice. *)
      double = !double;
      dead_lettered = !dead;
      shed = summary.Metrics.shed;
      leftovers = Worker.leftovers pool;
      gave_up = Worker.gave_up pool;
      fiber_lost = summary.Metrics.fibers - summary.Metrics.fibers_completed;
      queue_stats = instance.Registry.stats ();
      sched_stats = Obs.snapshot sched_obs;
    }
end
