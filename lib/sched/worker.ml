(** Worker loops: the execution layer of the scheduler.

    A pool is one scheduling run's shared state — the task table, the
    in-flight accounting, and the completion log.  Each participating
    thread builds a {!ctx} around its queue handle and runs {!run}, which
    interleaves three duties:

    + admitting new root tasks from an arrival source (with backpressure:
      a rejected arrival is retried after serving, never busy-waited on);
    + popping task ids from the priority queue and executing their bodies,
      wiring the [spawn] callback so tasks can spawn tasks (the Pheet
      pattern) through the executing worker's own batched submitter;
    + degrading gracefully when the queue runs dry: the worker first
      flushes its own submission buffer (the only place remaining work can
      hide from other threads), relying on the k-LSM's own spy/steal path
      for work sitting in other threads' DistLSMs, and backs off before
      re-polling so an idle worker does not saturate the shared components.

    Termination is exact, not heuristic: a worker exits only when every
    arrival source has finished {e and} the in-flight counter is zero.
    The counter is incremented before a task becomes visible and
    decremented only after its body completed, so "0" proves completion of
    everything ever admitted.

    Determinism: under [Sim.Fair] with a fixed seed the whole loop — pops,
    claims, completion-log appends — is a deterministic function of the
    virtual schedule, which is what makes same-seed runs byte-identical
    (asserted by [test/test_sched.ml]). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Task = Task.Make (B)
  module Submitter = Submitter.Make (B)
  module Backoff = Klsm_primitives.Backoff
  module Obs = Klsm_obs.Obs

  (* Observability (lib/obs; docs/METRICS.md).  These double the
     always-on {!Metrics} fields into the shared counter namespace so one
     BENCH_stats.json carries queue internals and scheduler behaviour
     side by side; [sched.flush]/[sched.urgent_flush] are folded in from
     the submitter after the run (see {!Closed_loop}). *)
  let c_claim_race = Obs.counter "sched.claim_race"
  let c_empty_pop = Obs.counter "sched.empty_pop"
  let c_reject = Obs.counter "sched.reject"
  let c_execute = Obs.counter "sched.execute"
  let c_flush = Obs.counter "sched.flush"
  let c_urgent_flush = Obs.counter "sched.urgent_flush"

  type pool = {
    tasks : Task.t option B.atomic array;  (** id -> task *)
    next_id : int B.atomic;
    inflight : int B.atomic;  (** admitted - completed; 0 = drained *)
    peak_inflight : int B.atomic;
    sources_live : int B.atomic;  (** workers still producing arrivals *)
    completed : int B.atomic;
    log : int array;
        (** completion order: task ids in the order execution finished.
            Each slot is written once by the finishing worker; read after
            the run joins. *)
    log_next : int B.atomic;
    last_started : int B.atomic;  (** priority watermark for slack metric *)
  }

  let create_pool ~max_tasks ~num_workers =
    if max_tasks < 1 then invalid_arg "Worker.create_pool: max_tasks < 1";
    if num_workers < 1 then invalid_arg "Worker.create_pool: num_workers < 1";
    {
      tasks = Array.init max_tasks (fun _ -> B.make None);
      next_id = B.make 0;
      inflight = B.make 0;
      peak_inflight = B.make 0;
      sources_live = B.make num_workers;
      completed = B.make 0;
      log = Array.make max_tasks (-1);
      log_next = B.make 0;
      last_started = B.make 0;
    }

  let completed_count pool = B.get pool.completed
  let peak_inflight pool = B.get pool.peak_inflight

  (** Completion order so far; call after the run for the full log. *)
  let completion_log pool = Array.sub pool.log 0 (B.get pool.log_next)

  type ctx = {
    pool : pool;
    tid : int;
    sub : Submitter.t;
    pop : unit -> (int * int) option;  (** the queue's try_delete_min *)
    w : Metrics.worker;
    obs : Obs.handle;
  }

  let make_ctx ?(obs = Obs.null_handle) ~pool ~tid ~sub ~pop ~metrics () =
    { pool; tid; sub; pop; w = metrics; obs }

  let rec bump_peak pool v =
    let cur = B.get pool.peak_inflight in
    if v > cur && not (B.compare_and_set pool.peak_inflight cur v) then
      bump_peak pool v

  (* Allocate an id, publish the task in the table, then hand the
     (priority, id) pair to the submitter.  Publication MUST precede the
     queue insert: a popped id is looked up in the table immediately. *)
  let inject ctx ~priority body =
    let id = B.fetch_and_add ctx.pool.next_id 1 in
    if id >= Array.length ctx.pool.tasks then
      failwith "Sched.Worker: task table overflow (max_tasks too small)";
    let task = Task.make ~id ~priority ~now:(B.time ()) body in
    B.set ctx.pool.tasks.(id) (Some task);
    Submitter.push ctx.sub ~priority ~id;
    id

  (** Root submission through admission control.  [false] = at capacity;
      the caller should serve the queue and retry instead of spinning. *)
  let try_submit_root ctx ~priority body =
    match Submitter.try_admit ctx.sub with
    | None ->
        ctx.w.rejected <- ctx.w.rejected + 1;
        Obs.incr ctx.obs c_reject;
        false
    | Some now ->
        bump_peak ctx.pool now;
        ignore (inject ctx ~priority body);
        ctx.w.submitted <- ctx.w.submitted + 1;
        true

  (* Spawn path handed to executing bodies: bypasses the admission bound
     (see Submitter.admit_spawn) but fully participates in accounting and
     batching. *)
  let spawn ctx ~priority body =
    Submitter.admit_spawn ctx.sub;
    ignore (inject ctx ~priority body);
    ctx.w.spawned <- ctx.w.spawned + 1

  let execute ctx task =
    let now = B.time () in
    Task.start task ~now;
    Metrics.push ctx.w.delays (Task.queueing_delay task);
    let prev = B.exchange ctx.pool.last_started task.Task.priority in
    Metrics.push ctx.w.slacks
      (float_of_int (max 0 (prev - task.Task.priority)));
    Task.run task ~spawn:(fun ~priority body -> spawn ctx ~priority body);
    Task.finish task ~now:(B.time ());
    let slot = B.fetch_and_add ctx.pool.log_next 1 in
    ctx.pool.log.(slot) <- task.Task.id;
    ignore (B.fetch_and_add ctx.pool.completed 1);
    Submitter.release ctx.sub;
    ctx.w.executed <- ctx.w.executed + 1;
    Obs.incr ctx.obs c_execute

  (** Pop and execute at most one task; [false] when the queue looked
      empty.  A task id the queue delivers twice loses the claim race and
      is counted (never re-executed). *)
  let try_execute_one ctx =
    match ctx.pop () with
    | None ->
        ctx.w.empty_pops <- ctx.w.empty_pops + 1;
        Obs.incr ctx.obs c_empty_pop;
        false
    | Some (_priority, id) ->
        (match B.get ctx.pool.tasks.(id) with
        | None ->
            (* Unreachable with a conserving queue: ids are enqueued only
               after table publication. *)
            ctx.w.double_claims <- ctx.w.double_claims + 1;
            Obs.incr ctx.obs c_claim_race
        | Some task ->
            if Task.claim task then execute ctx task
            else begin
              ctx.w.double_claims <- ctx.w.double_claims + 1;
              Obs.incr ctx.obs c_claim_race
            end);
        true

  (** The full worker loop.  [arrivals ()] drives this thread's workload:
      - [`Submit (priority, body)]: a root task wants in now;
      - [`Wait]: nothing due yet (open-loop pacing) — keep serving;
      - [`Done]: this worker's arrival stream is exhausted (final). *)
  let run ctx ~arrivals =
    let pending = ref None in
    let sources_done = ref false in
    let bo = Backoff.create ~max:256 () in
    let rec loop () =
      (* 1. Admit the next due arrival, honouring backpressure. *)
      (match !pending with
      | Some (priority, body) ->
          if try_submit_root ctx ~priority body then pending := None
      | None ->
          if not !sources_done then begin
            match arrivals () with
            | `Submit (priority, body) ->
                if not (try_submit_root ctx ~priority body) then
                  pending := Some (priority, body)
            | `Wait -> ()
            | `Done ->
                sources_done := true;
                ignore (B.fetch_and_add ctx.pool.sources_live (-1));
                (* Nothing will flow through the submit path anymore; make
                   any stragglers visible to the other workers. *)
                Submitter.flush ctx.sub
          end);
      (* 2. Serve the queue. *)
      if try_execute_one ctx then begin
        Backoff.reset bo;
        loop ()
      end
      else begin
        (* The queue looks dry.  Remaining work can only hide in (a) our
           own submission buffer — flush it; (b) other threads' DistLSMs —
           the queue's own spy path covers that on the next pop; (c) other
           workers' buffers — their own dry-queue flushes cover those. *)
        Submitter.flush ctx.sub;
        if B.get ctx.pool.sources_live = 0 && B.get ctx.pool.inflight = 0 then
          ()  (* every admitted task completed: exact termination *)
        else begin
          Backoff.once bo ~relax:B.relax_n;
          B.yield ();
          loop ()
        end
      end
    in
    loop ()
end
