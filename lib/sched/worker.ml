(** Worker loops: the execution layer of the scheduler, rebuilt on
    fibers and work-stealing deques.

    A pool is one scheduling run's shared state — the task table, the
    in-flight accounting, the completion log, the per-worker
    work-stealing deques, and (when a {!robust} configuration enables
    them) the supervision structures.  Each participating thread builds a
    {!ctx} around its queue handle and runs {!run}, which interleaves
    five duties:

    + admitting new root tasks from an arrival source (with backpressure:
      a rejected arrival is retried after serving, never busy-waited on —
      and with load shedding: a full task table refuses admission with
      [`Overflow] instead of killing the worker);
    + draining its own deque LIFO: every task body runs as the root
      {!Fiber} of its lease attempt, and fibers it forks (plus fibers it
      yields) land on the executing worker's deque, so the cache-hot,
      most-recently-created work is served first without touching the
      shared queue at all;
    + when the deque is dry, stealing FIFO from a random victim's deque —
      the {e oldest} fiber, the one the owner is least likely to come
      back to — {e before} falling back to the shared k-LSM;
    + only then popping a fresh task id from the priority queue and
      leasing it ({!Task.try_lease}).  The shared component alone decides
      {e which task starts next} (so the k-LSM's rank bound still governs
      priority order); the deques only absorb the churn of the short-lived
      fibers a started task explodes into.  With a delete batch configured
      ([make_ctx ~batch ~pop_batch]) that round trip claims a whole run of
      ids at once — one shared-component CAS on the k-LSMs — starting the
      most urgent inline and parking the rest in the deque as immediately
      steal-ready, lease-on-run fibers;
    + {b supervising} (robust mode): on dry rounds the worker heartbeat-
      checks its peers, declares silent ones dead, expires overdue leases
      into parked retries or the dead-letter queue, re-enqueues parked
      tasks whose backoff elapsed, and — after a persistent idle streak —
      re-enqueues [Pending] tasks wholesale.  Re-enqueueing is always
      safe: a duplicate delivery loses the lease CAS and executes nothing.

    {2 Per-fiber exactly-once}

    A lease attempt owns a padded live-fiber counter, starting at 1 for
    the root; [fork] increments it, every fiber decrements it when its
    thunk finishes, and whichever worker drives it to zero {e seals} the
    attempt — the [try_complete] CAS, the completion-log append, the
    in-flight release.  Sealing therefore happens exactly once per task
    even though its fibers ran on many workers, and a crashed worker
    (whose stolen fiber died with it) simply never drives the counter to
    zero: the lease expires and a fresh attempt gets a fresh counter, so
    orphaned fibers of the dead attempt can never double-complete the
    task.

    Termination is exact, not heuristic: a worker exits only when every
    arrival source has finished {e and} the in-flight counter is zero.
    Fibers cannot be stranded by that rule — an unfinished fiber keeps
    its task unsealed, hence in flight, hence some worker serving.

    Determinism: under [Sim.Fair] with a fixed seed the whole loop —
    pops, leases, steals (victims come from a per-worker seeded stream),
    fiber resumptions, completion-log appends — is a deterministic
    function of the virtual schedule, which is what makes same-seed runs
    byte-identical (asserted by [test/test_sched.ml]). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Task = Task.Make (B)
  module Fiber = Task.Fiber
  module Submitter = Submitter.Make (B)
  module Backoff = Klsm_primitives.Backoff
  module Xoshiro = Klsm_primitives.Xoshiro
  module Padded = Klsm_primitives.Padded
  module Obs = Klsm_obs.Obs

  module Deque = Klsm_primitives.Deque.Make (struct
    type 'a t = 'a B.atomic

    let make = B.make
    let get = B.get
    let set = B.set
    let compare_and_set = B.compare_and_set
  end)

  (* Observability (lib/obs; docs/METRICS.md).  These double the
     always-on {!Metrics} fields into the shared counter namespace so one
     BENCH_stats.json carries queue internals and scheduler behaviour
     side by side; [sched.flush]/[sched.urgent_flush] are folded in from
     the submitter after the run (see {!Closed_loop}).  The fiber-side
     counters [fiber.spawn]/[fiber.suspend]/[fiber.resume] are declared
     in {!Fiber} and incremented here through the executing worker
     ({!cur}). *)
  let c_claim_race = Obs.counter "sched.claim_race"
  let c_empty_pop = Obs.counter "sched.empty_pop"
  let c_reject = Obs.counter "sched.reject"
  let c_execute = Obs.counter "sched.execute"
  let c_flush = Obs.counter "sched.flush"
  let c_urgent_flush = Obs.counter "sched.urgent_flush"
  let c_overflow = Obs.counter "sched.overflow"
  let c_timeout = Obs.counter "sched.timeout"
  let c_retry = Obs.counter "sched.retry"
  let c_reenqueue = Obs.counter "sched.reenqueue"
  let c_dead_letter = Obs.counter "sched.dead_letter"
  let c_late = Obs.counter "sched.late_completion"
  let c_worker_dead = Obs.counter "sched.worker_dead"
  let c_sweep = Obs.counter "sched.sweep"
  let c_steal_attempt = Obs.counter "steal.attempt"
  let c_steal_success = Obs.counter "steal.success"
  let c_steal_fallback = Obs.counter "steal.fallback"

  (** Robustness knobs.  {!default_robust} disables everything (infinite
      leases and deadlines, one attempt), reproducing the trusting
      pre-supervision behaviour byte for byte — the knobs only change a
      run that actually needs them. *)
  type robust = {
    lease : float;  (** per-attempt execution budget, seconds *)
    max_attempts : int;  (** lease attempts before dead-lettering; >= 1 *)
    retry_delay : float;
        (** base retry backoff; attempt [a] parks for [retry_delay *
            2^(a-1)] before re-entering the queue *)
    task_deadline : float;
        (** start-by deadline relative to submission; a task still queued
            past it is dead-lettered instead of executed *)
    liveness_timeout : float;
        (** a worker silent (no heartbeat) for this long is declared dead
            and its arrival source closed *)
    run_deadline : float;
        (** give-up horizon for a whole run, measured from pool creation:
            the progress bound that turns a would-be deadlock into an
            explicit, reportable failure *)
  }

  let default_robust =
    {
      lease = infinity;
      max_attempts = 1;
      retry_delay = 1e-6;
      task_deadline = infinity;
      liveness_timeout = infinity;
      run_deadline = infinity;
    }

  let robust_active rc =
    rc.lease < infinity || rc.task_deadline < infinity
    || rc.liveness_timeout < infinity
    || rc.run_deadline < infinity || rc.max_attempts > 1

  (* Every hot atomic below is cache-line-padded (Padded.copy_as_padded):
     the task-table slots, the admission/termination counters and the
     per-worker lease clocks are the cells every worker hammers, and
     before padding they were allocated back to back — one worker's CAS
     traffic evicted its neighbours' lines. *)
  let patomic v = Padded.copy_as_padded (B.make v)

  type pool = {
    tasks : Task.t option B.atomic array;  (** id -> task; padded slots *)
    next_id : int B.atomic;
    inflight : int B.atomic;  (** admitted - resolved; 0 = drained *)
    peak_inflight : int B.atomic;
    sources_live : int B.atomic;  (** workers still producing arrivals *)
    completed : int B.atomic;
    log : int array;
        (** completion order: task ids in the order execution finished.
            Each slot is written once by the sealing worker; read after
            the run joins. *)
    log_next : int B.atomic;
    last_started : int B.atomic;  (** priority watermark for slack metric *)
    rc : robust;
    supervised : bool;  (** [robust_active rc], precomputed *)
    created_at : float;  (** backend time at pool creation (run_deadline) *)
    draining : bool B.atomic;  (** graceful shutdown: stop admission *)
    gave_up : bool B.atomic;  (** run_deadline elapsed without completion *)
    beats : float B.atomic array;
        (** per-worker heartbeat timestamps (the lease clocks); padded *)
    source_done : bool B.atomic array;
        (** per-worker "arrival source closed" latch; guards the single
            [sources_live] decrement whether the worker closed it itself
            or a supervisor declared it dead *)
    dead : int list B.atomic;  (** the dead-letter queue (task ids) *)
    deques : Fiber.work Deque.t array;  (** per-worker stealable deques *)
    failure : exn option B.atomic;
        (** first exception to escape a fiber; re-raised by the next
            worker to notice, aborting the run like an un-fibered body
            exception used to *)
    ctxs : ctx option array;
        (** tid -> that worker's context, registered by {!make_ctx}; the
            table behind {!cur} (each slot is written once, by its own
            worker or before the run starts) *)
  }

  and ctx = {
    pool : pool;
    tid : int;
    sub : Submitter.t;
    pop : unit -> (int * int) option;  (** the queue's try_delete_min *)
    pop_batch : int -> (int * int) list;
        (** the queue's try_delete_min_batch; on the k-LSMs one call
            claims a whole run of tasks from the shared component with a
            single CAS (see Shared_klsm.try_pop_batch) *)
    batch : int;
        (** tasks pulled per shared-queue round trip; 1 = the classic
            one-pop serve loop, byte-identical to the pre-batch worker *)
    w : Metrics.worker;
    obs : Obs.handle;
    deque : Fiber.work Deque.t;  (** this worker's own deque *)
    steal_rng : Xoshiro.t;  (** victim selection; seeded for replay *)
    hooks : Fiber.hooks;  (** suspend/resume accounting (see {!hooks_of}) *)
  }

  let create_pool ?(robust = default_robust) ~max_tasks ~num_workers () =
    if max_tasks < 1 then invalid_arg "Worker.create_pool: max_tasks < 1";
    if num_workers < 1 then invalid_arg "Worker.create_pool: num_workers < 1";
    if robust.max_attempts < 1 then
      invalid_arg "Worker.create_pool: max_attempts < 1";
    let now = B.time () in
    {
      tasks = Array.init max_tasks (fun _ -> patomic None);
      next_id = patomic 0;
      inflight = patomic 0;
      peak_inflight = patomic 0;
      sources_live = patomic num_workers;
      completed = patomic 0;
      log = Array.make max_tasks (-1);
      log_next = patomic 0;
      last_started = patomic 0;
      rc = robust;
      supervised = robust_active robust;
      created_at = now;
      draining = patomic false;
      gave_up = patomic false;
      beats = Array.init num_workers (fun _ -> patomic now);
      source_done = Array.init num_workers (fun _ -> patomic false);
      dead = patomic [];
      deques = Array.init num_workers (fun _ -> Deque.create ());
      failure = patomic None;
      ctxs = Array.make num_workers None;
    }

  let completed_count pool = B.get pool.completed
  let peak_inflight pool = B.get pool.peak_inflight

  (** Ids in the dead-letter queue (most recent first). *)
  let dead_letters pool = B.get pool.dead

  (** Graceful shutdown: stop admitting new roots.  Workers observe the
      flag, close their arrival sources, finish everything in flight, and
      exit through the normal exact-termination path; {!leftovers} then
      reports what never resolved. *)
  let request_drain pool = B.set pool.draining true

  let draining pool = B.get pool.draining
  let gave_up pool = B.get pool.gave_up

  (** Completion order so far; call after the run for the full log. *)
  let completion_log pool = Array.sub pool.log 0 (B.get pool.log_next)

  (** Post-run report of every task that never reached a terminal state —
      empty after a healthy run or a completed drain. *)
  let leftovers pool =
    let n = min (B.get pool.next_id) (Array.length pool.tasks) in
    let acc = ref [] in
    for id = n - 1 downto 0 do
      match B.get pool.tasks.(id) with
      | None -> ()
      | Some task -> (
          match Task.status task with
          | Task.Completed | Task.Dead -> ()
          | _ -> acc := (id, Task.status_name task) :: !acc)
    done;
    !acc

  (* The worker currently executing, resolved through [B.self ()] (the
     backend's dynamic thread identity) and the pool's registration
     table.  Fibers migrate: a continuation parked by worker A can be
     resumed inline by worker B (whoever finishes the awaited fiber), so
     accounting inside fiber code must bill the worker {e running right
     now}, not the one that created the closure — on the Real backend the
     latter would be a cross-domain mutation of another worker's metrics
     record.  [Domain.DLS] is NOT a valid shortcut here: under Sim every
     virtual worker shares one domain, so a domain-keyed ambient would
     hand one worker's submitter — and with it the strictly per-thread
     k-LSM insertion handle behind it — to a concurrently-running peer,
     corrupting the handle's snapshot state. *)
  let cur pool =
    let tid = B.self () in
    if tid < 0 || tid >= Array.length pool.ctxs then
      failwith "Worker: fiber operation outside a worker loop"
    else
      match pool.ctxs.(tid) with
      | Some c -> c
      | None -> failwith "Worker: fiber operation outside a worker loop"

  (* Suspend/resume accounting callbacks handed to {!Fiber}.  Resolved
     through {!cur} at event time because the suspending/resuming fiber
     may be running on any worker by then. *)
  let hooks_of pool =
    {
      Fiber.on_suspend =
        (fun () ->
          let c = cur pool in
          c.w.Metrics.fiber_suspends <- c.w.Metrics.fiber_suspends + 1;
          Obs.incr c.obs Fiber.c_suspend);
      on_resume =
        (fun () ->
          let c = cur pool in
          c.w.Metrics.fiber_resumes <- c.w.Metrics.fiber_resumes + 1;
          Obs.incr c.obs Fiber.c_resume);
    }

  let make_ctx ?(obs = Obs.null_handle) ?steal_seed ?(batch = 1) ?pop_batch
      ~pool ~tid ~sub ~pop ~metrics () =
    if tid < 0 || tid >= Array.length pool.ctxs then
      invalid_arg "Worker.make_ctx: tid out of range";
    if batch < 1 then invalid_arg "Worker.make_ctx: batch < 1";
    let seed =
      match steal_seed with Some s -> s | None -> 0x9E3779B9 + (6271 * tid)
    in
    let pop_batch =
      match pop_batch with
      | Some f -> f
      | None ->
          (* Queues without a bulk path: the Pq_intf default loop. *)
          fun n ->
            let rec go acc got =
              if got >= n then List.rev acc
              else
                match pop () with
                | Some kv -> go (kv :: acc) (got + 1)
                | None -> List.rev acc
            in
            go [] 0
    in
    let c =
      {
        pool;
        tid;
        sub;
        pop;
        pop_batch;
        batch;
        w = metrics;
        obs;
        deque = pool.deques.(tid);
        steal_rng = Xoshiro.create ~seed;
        hooks = hooks_of pool;
      }
    in
    pool.ctxs.(tid) <- Some c;
    c

  let rec bump_peak pool v =
    let cur = B.get pool.peak_inflight in
    if v > cur && not (B.compare_and_set pool.peak_inflight cur v) then
      bump_peak pool v

  (* Allocate an id, publish the task in the table, then hand the
     (priority, id) pair to the submitter.  Publication MUST precede the
     queue insert: a popped id is looked up in the table immediately.
     [`Overflow] sheds the task instead of the old [failwith]: the caller
     undoes its admission accounting and the burst is survived. *)
  let inject ctx ~priority body =
    let id = B.fetch_and_add ctx.pool.next_id 1 in
    if id >= Array.length ctx.pool.tasks then `Overflow
    else begin
      let now = B.time () in
      let rc = ctx.pool.rc in
      let task =
        Task.make ~id ~priority ~now ~deadline:(now +. rc.task_deadline)
          ~lease:rc.lease body
      in
      B.set ctx.pool.tasks.(id) (Some task);
      Submitter.push ctx.sub ~priority ~id;
      `Ok
    end

  let shed ctx =
    Submitter.release ctx.sub;
    ctx.w.shed <- ctx.w.shed + 1;
    Obs.incr ctx.obs c_overflow

  (** Root submission through admission control.  [`Backpressure] = at
      capacity, the caller should serve the queue and retry; [`Overflow] =
      the task table itself is full, the task was shed (a permanent
      refusal the arrival source must absorb). *)
  let try_submit_root ctx ~priority body =
    match Submitter.try_admit ctx.sub with
    | None ->
        ctx.w.rejected <- ctx.w.rejected + 1;
        Obs.incr ctx.obs c_reject;
        `Backpressure
    | Some now -> (
        bump_peak ctx.pool now;
        match inject ctx ~priority body with
        | `Ok ->
            ctx.w.submitted <- ctx.w.submitted + 1;
            `Admitted
        | `Overflow ->
            shed ctx;
            `Overflow)

  (* Spawn path handed to executing bodies: bypasses the admission bound
     (see Submitter.admit_spawn) but fully participates in accounting and
     batching.  Overflow sheds the child like a root.  Resolves the
     executing worker at call time: the spawning fiber may have migrated
     since it was created. *)
  let spawn_task pool ~priority body =
    let ctx = cur pool in
    Submitter.admit_spawn ctx.sub;
    match inject ctx ~priority body with
    | `Ok -> ctx.w.spawned <- ctx.w.spawned + 1
    | `Overflow -> shed ctx

  (* Move a task whose fate was just sealed as [Dead] to the dead-letter
     queue.  The caller must already own the terminal transition (the
     Task CAS), so each dead task is recorded exactly once. *)
  let rec push_dead pool id =
    let cur = B.get pool.dead in
    if not (B.compare_and_set pool.dead cur (id :: cur)) then push_dead pool id

  let dead_letter ctx (task : Task.t) =
    push_dead ctx.pool task.Task.id;
    Submitter.release ctx.sub;
    ctx.w.dead_letters <- ctx.w.dead_letters + 1;
    Obs.incr ctx.obs c_dead_letter

  (* One lease attempt of one task: the root fiber plus everything it
     forks, sharing a live-fiber counter.  The counter cell is padded —
     it is CASed by every worker that runs one of the attempt's fibers. *)
  type attempt = { task : Task.t; live : int B.atomic; pool : pool }

  let record_failure pool e =
    ignore (B.compare_and_set pool.failure None (Some e))

  (* Seal the attempt whose last fiber just finished: runs on whichever
     worker drove [live] to zero, using pool atomics plus that worker's
     own metrics/obs (the {!cur} read), so it is cross-domain safe. *)
  let seal att =
    let ctx = cur att.pool in
    B.fault_point "sched.execute.pre_complete";
    if Task.try_complete att.task ~now:(B.time ()) then begin
      let slot = B.fetch_and_add ctx.pool.log_next 1 in
      ctx.pool.log.(slot) <- att.task.Task.id;
      ignore (B.fetch_and_add ctx.pool.completed 1);
      Submitter.release ctx.sub;
      ctx.w.executed <- ctx.w.executed + 1;
      Obs.incr ctx.obs c_execute
    end
    else begin
      (* The supervisor sealed this task's fate (re-leased elsewhere or
         dead-lettered) while the attempt ran: the work is done but must
         not be accounted — whoever owns the terminal state did that. *)
      ctx.w.late_completions <- ctx.w.late_completions + 1;
      Obs.incr ctx.obs c_late
    end

  (* A fiber of [att] finished its thunk.  Crash discipline: this is only
     reached on normal return or a non-fatal exception — a killed worker
     unwinds past it, leaving [live] > 0 forever, which is exactly what
     routes the task to lease-expiry recovery instead of a bogus seal. *)
  let fiber_done att =
    let c = cur att.pool in
    c.w.Metrics.fibers_completed <- c.w.Metrics.fibers_completed + 1;
    if B.fetch_and_add att.live (-1) = 1 then seal att

  (* Wrap a fiber thunk with the attempt accounting.  A non-fatal
     exception still counts the fiber as finished (its work is over),
     is recorded as the run's failure — an exception escaping a fiber
     aborts the run, as it did when bodies ran bare — and then re-raised
     so Fiber turns it into [Raise] and waiters are discontinued. *)
  let wrap att th () =
    match th () with
    | v ->
        fiber_done att;
        v
    | exception e when not (Fiber.fatal e) ->
        record_failure att.pool e;
        fiber_done att;
        raise e

  let fork_fiber att th =
    let ctx = cur att.pool in
    ignore (B.fetch_and_add att.live 1);
    let fib = Fiber.create (wrap att th) in
    Deque.push ctx.deque (Fiber.Work fib);
    ctx.w.Metrics.fibers <- ctx.w.Metrics.fibers + 1;
    Obs.incr ctx.obs Fiber.c_spawn;
    fib

  let requeue_here pool w =
    let ctx = cur pool in
    Deque.push ctx.deque w

  (* The capability record a body sees.  Everything resolves the
     executing worker at call time because the calling fiber migrates. *)
  let api_of att =
    let hooks = hooks_of att.pool in
    {
      Task.spawn = (fun ~priority body -> spawn_task att.pool ~priority body);
      fork = (fun th -> fork_fiber att th);
      await = (fun f -> Fiber.await hooks f);
      yield = (fun () -> Fiber.yield hooks ~requeue:(requeue_here att.pool));
    }

  (* Start a freshly-leased task: build the attempt, count the root fiber,
     and run it inline (it parks itself in the deque whenever it blocks). *)
  let execute ctx task ~attempt =
    Metrics.push ctx.w.delays (Task.queueing_delay task);
    let prev = B.exchange ctx.pool.last_started task.Task.priority in
    Metrics.push ctx.w.slacks
      (float_of_int (max 0 (prev - task.Task.priority)));
    if attempt > 1 then begin
      ctx.w.retries <- ctx.w.retries + 1;
      Obs.incr ctx.obs c_retry
    end;
    B.fault_point "sched.execute.post_lease";
    let att = { task; live = patomic 1; pool = ctx.pool } in
    ctx.w.Metrics.fibers <- ctx.w.Metrics.fibers + 1;
    Obs.incr ctx.obs Fiber.c_spawn;
    let root = Fiber.create (wrap att (fun () -> Task.run task (api_of att))) in
    Fiber.run ctx.hooks (Fiber.Work root)

  (* Lease and start one freshly-popped task id on this worker, inline. *)
  let start_one (ctx : ctx) id =
    match B.get ctx.pool.tasks.(id) with
    | None ->
        (* Unreachable with a conserving queue: ids are enqueued only
           after table publication. *)
        ctx.w.double_claims <- ctx.w.double_claims + 1;
        Obs.incr ctx.obs c_claim_race
    | Some task -> (
        match Task.try_lease task ~now:(B.time ()) with
        | Task.Leased attempt -> execute ctx task ~attempt
        | Task.Lost ->
            ctx.w.double_claims <- ctx.w.double_claims + 1;
            Obs.incr ctx.obs c_claim_race
        | Task.Deadline_expired ->
            ctx.w.timeouts <- ctx.w.timeouts + 1;
            Obs.incr ctx.obs c_timeout;
            dead_letter ctx task)

  (* Park a batch-claimed task in the deque as a steal-ready fiber.  The
     LEASE happens when the fiber runs, not when it is deferred: the
     lease clock must not start ticking on a task that may sit in the
     deque behind a long head, and a worker killed with deferred tasks
     still on its deque leaves them [Pending] — never leased — so the
     supervisor's rescue sweep re-enqueues them exactly like ids stranded
     in a crashed worker's submission buffer.  All accounting resolves
     the executing worker through {!cur} because a thief, not the
     deferrer, may run the fiber.  The fiber is counted as spawned here
     and completed in every terminal branch (lease won or lost), keeping
     the per-fiber exactly-once audit balanced. *)
  let defer_task (ctx : ctx) (_priority, id) =
    let pool = ctx.pool in
    ctx.w.Metrics.fibers <- ctx.w.Metrics.fibers + 1;
    Obs.incr ctx.obs Fiber.c_spawn;
    let fib =
      Fiber.create (fun () ->
          let c = cur pool in
          let undone () =
            c.w.Metrics.fibers_completed <- c.w.Metrics.fibers_completed + 1
          in
          match B.get pool.tasks.(id) with
          | None ->
              c.w.double_claims <- c.w.double_claims + 1;
              Obs.incr c.obs c_claim_race;
              undone ()
          | Some task -> (
              match Task.try_lease task ~now:(B.time ()) with
              | Task.Leased attempt ->
                  (* This fiber becomes the attempt's root: same
                     accounting as {!execute}, minus the extra fiber
                     spawn (this fiber was counted at defer time). *)
                  Metrics.push c.w.delays (Task.queueing_delay task);
                  let prev =
                    B.exchange pool.last_started task.Task.priority
                  in
                  Metrics.push c.w.slacks
                    (float_of_int (max 0 (prev - task.Task.priority)));
                  if attempt > 1 then begin
                    c.w.retries <- c.w.retries + 1;
                    Obs.incr c.obs c_retry
                  end;
                  B.fault_point "sched.execute.post_lease";
                  let att = { task; live = patomic 1; pool } in
                  wrap att (fun () -> Task.run task (api_of att)) ()
              | Task.Lost ->
                  c.w.double_claims <- c.w.double_claims + 1;
                  Obs.incr c.obs c_claim_race;
                  undone ()
              | Task.Deadline_expired ->
                  c.w.timeouts <- c.w.timeouts + 1;
                  Obs.incr c.obs c_timeout;
                  dead_letter c task;
                  undone ()))
    in
    Deque.push ctx.deque (Fiber.Work fib)

  (** Pop and execute at most one task from the shared queue; [false]
      when it looked empty.  A task id delivered twice (queue race or
      supervisor re-enqueue) loses the lease race and is counted, never
      re-executed.

      With [ctx.batch > 1] the pull claims up to [batch] tasks in one
      shared-component round trip ({!ctx.pop_batch}; a single CAS on the
      k-LSMs): the most urgent starts inline and the rest are deferred
      into the deque as immediately steal-ready fibers.  The tail is
      pushed most-urgent-last so this worker's LIFO pop resumes the batch
      in priority order, while a thief's FIFO steal takes the batch's
      {e least} urgent task — the one the owner would reach last. *)
  let try_execute_one ctx =
    if ctx.batch > 1 then begin
      match ctx.pop_batch ctx.batch with
      | [] ->
          ctx.w.empty_pops <- ctx.w.empty_pops + 1;
          Obs.incr ctx.obs c_empty_pop;
          false
      | (_priority, id) :: rest ->
          List.iter (defer_task ctx) (List.rev rest);
          start_one ctx id;
          true
    end
    else
      match ctx.pop () with
      | None ->
          ctx.w.empty_pops <- ctx.w.empty_pops + 1;
          Obs.incr ctx.obs c_empty_pop;
          false
      | Some (_priority, id) ->
          start_one ctx id;
          true

  (* Steal the oldest fiber from a random victim's deque: up to two
     seeded-random victims per round, retrying a [`Race] once (someone is
     moving — work exists, one more CAS is cheap).  The crash window
     between winning the steal CAS and running the fiber is a first-class
     fault site: a kill here strands the stolen fiber, and recovery must
     come from the lease, never from the deque (docs/CHAOS.md). *)
  let try_steal (ctx : ctx) =
    let pool = ctx.pool in
    let n = Array.length pool.deques in
    if n <= 1 then None
    else begin
      let found = ref None in
      let rounds = ref 0 in
      while !found = None && !rounds < 2 do
        incr rounds;
        let victim =
          let v = Xoshiro.int ctx.steal_rng (n - 1) in
          if v >= ctx.tid then v + 1 else v
        in
        let dq = pool.deques.(victim) in
        let rec attempt retries =
          ctx.w.steal_attempts <- ctx.w.steal_attempts + 1;
          Obs.incr ctx.obs c_steal_attempt;
          match Deque.steal dq with
          | `Stolen w ->
              ctx.w.steals <- ctx.w.steals + 1;
              Obs.incr ctx.obs c_steal_success;
              B.fault_point "sched.steal";
              found := Some w
          | `Race -> if retries > 0 then attempt (retries - 1)
          | `Empty -> ()
        in
        attempt 1
      done;
      !found
    end

  (** One scheduling step: own deque (LIFO), then a steal round (FIFO
      from a victim), then the shared queue.  [false] = everything dry. *)
  let serve ctx =
    match Deque.pop ctx.deque with
    | Some w ->
        Fiber.run ctx.hooks w;
        true
    | None -> (
        match try_steal ctx with
        | Some w ->
            Fiber.run ctx.hooks w;
            true
        | None ->
            ctx.w.steal_fallbacks <- ctx.w.steal_fallbacks + 1;
            Obs.incr ctx.obs c_steal_fallback;
            try_execute_one ctx)

  (* Declare worker [w]'s arrival source closed; [true] iff this caller
     performed the (exactly-once) transition. *)
  let mark_source_done pool w =
    (not (B.get pool.source_done.(w)))
    && B.compare_and_set pool.source_done.(w) false true
    &&
    (ignore (B.fetch_and_add pool.sources_live (-1));
     true)

  (* One supervision pass (robust mode, executed on dry rounds only):
     heartbeat-check peers, expire overdue leases, re-enqueue due retries,
     and — when [rescue] (persistent idle) — re-enqueue every [Pending]
     task to recover ids stranded in a crashed worker's submission buffer.
     Everything here is idempotent or CAS-guarded, so concurrent
     supervisors cannot double-account. *)
  let supervise (ctx : ctx) ~rescue =
    let pool = ctx.pool in
    let rc = pool.rc in
    let now = B.time () in
    ctx.w.sweeps <- ctx.w.sweeps + 1;
    Obs.incr ctx.obs c_sweep;
    if rc.liveness_timeout < infinity then
      for w = 0 to Array.length pool.beats - 1 do
        if
          w <> ctx.tid
          && (not (B.get pool.source_done.(w)))
          && now -. B.get pool.beats.(w) > rc.liveness_timeout
          && mark_source_done pool w
        then begin
          ctx.w.worker_deaths <- ctx.w.worker_deaths + 1;
          Obs.incr ctx.obs c_worker_dead
        end
      done;
    let n = min (B.get pool.next_id) (Array.length pool.tasks) in
    for id = 0 to n - 1 do
      match B.get pool.tasks.(id) with
      | None -> ()
      | Some task ->
          (match
             Task.expire task ~now ~max_attempts:rc.max_attempts
               ~retry_delay:rc.retry_delay
           with
          | Task.Expired_parked _ ->
              ctx.w.timeouts <- ctx.w.timeouts + 1;
              Obs.incr ctx.obs c_timeout
          | Task.Expired_dead ->
              ctx.w.timeouts <- ctx.w.timeouts + 1;
              Obs.incr ctx.obs c_timeout;
              dead_letter ctx task
          | Task.Not_expired -> ());
          let requeue =
            Task.unpark task ~now
            || (rescue && match Task.status task with
                | Task.Pending _ -> true
                | _ -> false)
          in
          if requeue then begin
            Submitter.push_now ctx.sub ~priority:task.Task.priority ~id;
            ctx.w.reenqueues <- ctx.w.reenqueues + 1;
            Obs.incr ctx.obs c_reenqueue
          end
    done

  (** The full worker loop.  [arrivals ()] drives this thread's workload:
      - [`Submit (priority, body)]: a root task wants in now;
      - [`Wait]: nothing due yet (open-loop pacing) — keep serving;
      - [`Done]: this worker's arrival stream is exhausted (final). *)
  let run ?jitter (ctx : ctx) ~arrivals =
    let pool = ctx.pool in
    let rc = pool.rc in
    let pending = ref None in
    let sources_done = ref false in
    let idle = ref 0 in
    let bo = Backoff.create ?jitter ~max:256 () in
    let close_source () =
      if not !sources_done then begin
        sources_done := true;
        ignore (mark_source_done pool ctx.tid);
        (* Nothing will flow through the submit path anymore; make any
           stragglers visible to the other workers. *)
        Submitter.flush ctx.sub
      end
    in
    let rec loop () =
      (match B.get pool.failure with Some e -> raise e | None -> ());
      if pool.supervised then B.set pool.beats.(ctx.tid) (B.time ());
      if B.get pool.draining then begin
        (* Graceful shutdown: drop the backpressured arrival (it was never
           admitted) and stop pulling from the source. *)
        pending := None;
        close_source ()
      end;
      (* 1. Admit the next due arrival, honouring backpressure. *)
      (match !pending with
      | Some (priority, body) -> (
          match try_submit_root ctx ~priority body with
          | `Admitted | `Overflow -> pending := None
          | `Backpressure -> ())
      | None ->
          if not !sources_done then begin
            match arrivals () with
            | `Submit (priority, body) -> (
                match try_submit_root ctx ~priority body with
                | `Admitted | `Overflow -> ()
                | `Backpressure -> pending := Some (priority, body))
            | `Wait -> ()
            | `Done -> close_source ()
          end);
      (* 2. Serve: deque, then steal, then the shared queue. *)
      if serve ctx then begin
        idle := 0;
        Backoff.reset bo;
        loop ()
      end
      else begin
        (* Everything looks dry.  Remaining work can only hide in (a) our
           own submission buffer — flush it; (b) other threads' DistLSMs —
           the queue's own spy path covers that on the next pop; (c) other
           workers' buffers — their own dry-queue flushes cover those, or
           the rescue sweep below if the owner crashed. *)
        Submitter.flush ctx.sub;
        if B.get pool.sources_live = 0 && B.get pool.inflight = 0 then
          ()  (* every admitted task resolved: exact termination *)
        else if B.get pool.gave_up then ()
        else begin
          incr idle;
          if pool.supervised then begin
            if
              rc.run_deadline < infinity
              && B.time () -. pool.created_at > rc.run_deadline
            then B.set pool.gave_up true
            else supervise ctx ~rescue:(!idle >= 8 && !idle land 3 = 0)
          end;
          if B.get pool.gave_up then ()
          else begin
            Backoff.once bo ~relax:B.relax_n;
            B.yield ();
            loop ()
          end
        end
      end
    in
    loop ()
end
