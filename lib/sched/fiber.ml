(** Lightweight fibers on OCaml 5 effects — the execution substrate the
    rewritten {!Worker} multiplexes over a handful of domains.

    A fiber is a thunk plus a lifecycle cell.  Running it under
    [Effect.Deep.match_with] with the single {!Suspend} effect (the par-ml
    pattern) makes "block until that other fiber finishes" a constant-cost
    operation: the blocked computation is captured as a one-shot
    continuation and parked {e inside the awaited fiber's state cell}, so
    whichever worker finishes that fiber resumes the waiter inline — no
    polling, no per-fiber OS resources, millions of fibers per domain.

    {2 Lifecycle}

    {v
      Initial th --(a worker picks it up)--> Running --> Return v / Raise e
           \                                   /
            Join (k, _) ... Join (k', _) -----    (waiters stack on top)
    v}

    The cell holds the whole story at once: a [Join] chain of suspended
    waiters over the underlying [Initial]/[Running] phase.  Every
    transition is a CAS, so a waiter racing the fiber's completion either
    installs its continuation (and is resumed by the finisher) or observes
    the terminal state and continues immediately.  [Return]/[Raise] are
    sticky; a one-shot continuation can never be resumed twice because it
    is reachable from exactly one [Join] node and the terminal [exchange]
    empties the chain.

    Continuations may be resumed on a different worker (and, on the Real
    backend, a different domain) than the one that captured them — legal
    for OCaml one-shot continuations, and the whole point: a stolen fiber
    carries its blocked computation with it.

    Crash-fault discipline: {!Klsm_backend.Sim.kill_current} unwinds the
    virtual thread with an exception, and a worker crash must not be
    mistaken for a fiber's own failure — [run] catches only non-fatal
    exceptions into [Raise]; a kill propagates through every nested fiber
    frame and takes the worker down mid-protocol, leaving [Running] ghosts
    for lease supervision to recover (docs/CHAOS.md). *)

[@@@alert "-unstable"]

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Obs = Klsm_obs.Obs
  module Padded = Klsm_primitives.Padded

  (* Observability (docs/METRICS.md).  Declared here, incremented through
     the worker's per-thread handle via {!hooks}. *)
  let c_spawn = Obs.counter "fiber.spawn"
  let c_suspend = Obs.counter "fiber.suspend"
  let c_resume = Obs.counter "fiber.resume"

  type 'a continuation = ('a, unit) Effect.Deep.continuation

  type _ Effect.t +=
    | Suspend : ('a continuation -> unit) -> 'a Effect.t
          (** [perform (Suspend ef)] parks the current fiber: [ef] runs in
              the scheduler's frame with the captured continuation and
              decides where it goes (a [Join] cell, the local deque). *)

  type 'a state =
    | Initial of (unit -> 'a)  (** created, not yet picked up *)
    | Join of 'a continuation * 'a state
        (** a waiter parked on this fiber, stacked over the phase below *)
    | Running  (** some worker owns the body right now *)
    | Return of 'a  (** finished; sticky *)
    | Raise of exn  (** finished exceptionally; sticky *)

  type 'a t = 'a state B.atomic

  (** A unit of deque work: start a fresh fiber, or resume a yielded
      one. *)
  type work =
    | Work : 'a t -> work
    | Resume : unit continuation -> work

  (** Scheduler callbacks for the suspension/resumption events, so the
      worker can feed its per-thread metrics and obs handle without this
      module knowing about either. *)
  type hooks = { on_suspend : unit -> unit; on_resume : unit -> unit }

  let no_hooks = { on_suspend = ignore; on_resume = ignore }

  (* The state cell is the only contended word of a fiber (the thunk is
     reached through it), so pad it: fibers are created in bursts and
     would otherwise share lines with their siblings. *)
  let create th : 'a t = Padded.copy_as_padded (B.make (Initial th))

  let make_handler () =
    {
      Effect.Deep.retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend ef ->
              Some (fun (k : (a, _) Effect.Deep.continuation) -> ef k)
          (* Not ours (e.g. the simulator's preemption Yield): decline, so
             it forwards to the enclosing handler.  The continuation it
             captures spans our frames too — resumption flows back through
             them transparently. *)
          | _ -> None);
    }

  let handler = make_handler ()

  (* Exceptions that mean "this worker is dying", not "this fiber
     failed": they must unwind the whole virtual thread, never be
     captured as a fiber outcome. *)
  let fatal = function
    | Klsm_backend.Sim.Killed | Out_of_memory | Stack_overflow -> true
    | _ -> false

  let suspend ef = Effect.perform (Suspend ef)

  (* Walk a Join chain: [true] iff the underlying phase is a live thunk
     nobody has claimed yet. *)
  let rec thunk_of : type a. a state -> (unit -> a) option = function
    | Initial th -> Some th
    | Join (_, rest) -> thunk_of rest
    | Running | Return _ | Raise _ -> None

  let rec mark_running : type a. a state -> a state = function
    | Initial _ -> Running
    | Join (k, rest) -> Join (k, mark_running rest)
    | (Running | Return _ | Raise _) as s -> s

  (* Claim the thunk (waiters may already have stacked Join nodes over
     it — a parent can await a child that is still sitting in a deque). *)
  let rec try_start (st : 'a t) =
    let was = B.get st in
    match thunk_of was with
    | None -> None
    | Some th ->
        if B.compare_and_set st was (mark_running was) then Some th
        else try_start st

  (* Resume every waiter stacked on a just-finished fiber, inline on the
     finisher's stack.  Each continue runs the waiter until it returns or
     suspends again; its handler frames travel with the continuation. *)
  let rec dispatch : type a. hooks -> a state -> a state -> unit =
   fun hooks res -> function
    | Join (k, rest) ->
        B.fault_point "sched.fiber.resume";
        hooks.on_resume ();
        (match res with
        | Return v -> Effect.Deep.continue k v
        | Raise e -> Effect.Deep.discontinue k e
        | _ -> assert false);
        dispatch hooks res rest
    | Initial _ | Running | Return _ | Raise _ -> ()

  let finish hooks (st : 'a t) (res : 'a state) =
    dispatch hooks res (B.exchange st res)

  let run_thunk hooks (st : 'a t) th =
    let res =
      match th () with
      | v -> Return v
      | exception e when not (fatal e) -> Raise e
    in
    finish hooks st res

  (** Execute one work item.  [Work]: claim and run the fiber's thunk
      under the effect handler (a no-op if another worker got it first —
      safe under re-delivery).  [Resume]: continue a yielded fiber; the
      continuation reinstates its own handler frames, so no fresh
      [match_with] is needed. *)
  let run hooks = function
    | Work st ->
        Effect.Deep.match_with
          (fun () ->
            match try_start st with
            | Some th -> run_thunk hooks st th
            | None -> ())
          () handler
    | Resume k ->
        B.fault_point "sched.fiber.resume";
        hooks.on_resume ();
        Effect.Deep.continue k ()

  (** Block the calling fiber until [st] finishes; returns its value or
      re-raises its exception.  Fast path: already terminal, no
      suspension.  Slow path: park this continuation in a [Join] node; the
      finishing worker resumes us inline.  Must run inside {!run} (the
      [Suspend] effect needs its handler). *)
  let await hooks (st : 'a t) : 'a =
    match B.get st with
    | Return v -> v
    | Raise e -> raise e
    | Initial _ | Running | Join _ ->
        hooks.on_suspend ();
        suspend (fun (k : 'a continuation) ->
            let rec install () =
              let was = B.get st in
              match was with
              | Return v ->
                  (* finished while we were suspending: resume at once *)
                  B.fault_point "sched.fiber.resume";
                  hooks.on_resume ();
                  Effect.Deep.continue k v
              | Raise e ->
                  B.fault_point "sched.fiber.resume";
                  hooks.on_resume ();
                  Effect.Deep.discontinue k e
              | Initial _ | Running | Join _ ->
                  if not (B.compare_and_set st was (Join (k, was))) then
                    install ()
            in
            install ())

  (** Cooperative reschedule: park the calling fiber as a [Resume] work
      item via [requeue] (the worker passes its own deque push), letting
      the worker serve other work — the shape a fiber blocked on a
      spilled-block fetch (lib/store) or any slow external edge uses. *)
  let yield hooks ~requeue =
    hooks.on_suspend ();
    suspend (fun (k : unit continuation) -> requeue (Resume k))

  let poll (st : 'a t) =
    match B.get st with
    | Return v -> `Done v
    | Raise e -> `Failed e
    | Initial _ | Running | Join _ -> `Pending
end
