(** The filesystem seam under the durability tier (docs/STORAGE.md).

    Everything `lib/store` does to a disk — object writes, journal
    appends, the temp+rename publish dance, fsyncs, GC unlinks — goes
    through one of these records, so a test can replace the operating
    system with an adversary.  Two implementations:

    - {!real}: a passthrough to [Unix]/[Sys]/[out_channel], used by every
      production path.  The indirection is one closure call per I/O
      operation, far below the syscall it wraps (store-check's >= 90%
      gate holds over it).
    - {!faulty}: a fully in-memory filesystem with an explicit {e
      durability model} and an injectable fault plan.  Files keep two
      images — what the running process sees ([data]) and what would
      survive a power loss ([synced]) — and directory {e entries} are
      durable separately from contents: a rename is visible immediately
      but survives a crash only once its directory is fsynced, which is
      exactly the POSIX fine print the strict mode of [Store]/[Journal]
      must honour ("a rename is not durable until its directory is").

    {b The fault model} mirrors lib/chaos: a plan is a list of rules,
    each naming an operation {e site} ({!sites}), a 1-based hit index,
    and a {!fault}.  Rules fire at most once — except the [sticky]
    error variants, which keep failing every later arrival once
    triggered (a full disk does not drain itself).  The grammar lives in
    [Chaos.parse_plan] (docs/CHAOS.md lists the verbs); this module owns
    only the engine, so lib/store never depends on lib/chaos.

    {b Crash semantics} ({!crash}): [`Process_kill] models the chaos
    suite's default crash model — the OS survives, so every completed
    (flushed) operation survives; [`Power_loss] keeps only what the
    durability model calls synced: entry-durable files with their
    [synced] contents (a file whose entry is durable but whose content
    was never fsynced comes back {e zero-length} — the adversarial torn
    state recovery must classify, not trust).  Open handles die with the
    process either way. *)

exception Crashed of string
(** Raised by an injected [Crash]/[Torn_write] fault: the simulated
    process dies at this I/O operation.  Harnesses catch it, call
    {!crash} to apply the durability model, and restart.  Never caught
    by lib/store itself — a crash must not look like an I/O error. *)

(* ------------------------------------------------------------------ *)
(* The seam                                                            *)
(* ------------------------------------------------------------------ *)

type handle = {
  h_write : string -> unit;
      (** Append bytes and flush to the OS (the journal's per-append
          contract; a kill after a completed [h_write] keeps the bytes
          under the process-kill crash model). *)
  h_fsync : unit -> unit;  (** Force content (and creation) to media. *)
  h_close : unit -> unit;
}

type t = {
  vname : string;
  create : string -> handle;  (** open for writing, truncating *)
  open_append : string -> handle;  (** open for appending, creating *)
  read_file : string -> string;  (** whole-file read *)
  rename : string -> string -> unit;
  fsync_dir : string -> unit;
      (** Force the directory's entry table (renames, creates, removes)
          to media; a no-op wherever the OS makes it one. *)
  remove : string -> unit;
  mkdir_p : string -> unit;
  file_exists : string -> bool;
  is_directory : string -> bool;
  readdir : string -> string array;
}

(* ------------------------------------------------------------------ *)
(* Real: the passthrough                                               *)
(* ------------------------------------------------------------------ *)

let rec real_mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    real_mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Vfs: %S exists and is not a directory" dir)

let real_handle oc =
  {
    h_write =
      (fun s ->
        output_string oc s;
        flush oc);
    h_fsync = (fun () -> Unix.fsync (Unix.descr_of_out_channel oc));
    h_close = (fun () -> close_out oc);
  }

let real =
  {
    vname = "real";
    create = (fun path -> real_handle (open_out_bin path));
    open_append =
      (fun path ->
        real_handle
          (open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path));
    read_file =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)));
    rename = Unix.rename;
    fsync_dir =
      (fun dir ->
        (* Directory fsync is how a rename becomes durable on POSIX.
           Some filesystems reject fsync on a directory fd (EINVAL);
           there the OS gives no stronger primitive, so treat it as
           already-as-durable-as-possible rather than failing the
           publish. *)
        match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
        | fd ->
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                try Unix.fsync fd
                with Unix.Unix_error ((Unix.EINVAL | Unix.EBADF), _, _) -> ())
        | exception Unix.Unix_error _ -> ());
    remove = Sys.remove;
    mkdir_p = real_mkdir_p;
    file_exists = Sys.file_exists;
    is_directory = Sys.is_directory;
    readdir = Sys.readdir;
  }

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)
(* ------------------------------------------------------------------ *)

type fault =
  | Eio of bool  (** I/O error; [true] = sticky (every later arrival too) *)
  | Enospc of bool  (** no space; [true] = sticky *)
  | Short_write of int
      (** only the first N bytes land, then the write fails with EIO —
          the process sees the failure and runs its cleanup path *)
  | Torn_write of int
      (** the process dies mid-write: the first N bytes are on media
          (entry forced durable — they were physically written), the
          rest never happened; raises {!Crashed} *)
  | Bit_flip  (** a read returns the bytes with one bit flipped *)
  | Fsync_lie  (** fsync reports success without making anything durable *)
  | Drop_rename
      (** the rename is visible to the process but can never become
          durable — at a power-loss crash it unhappens *)
  | Crash  (** the process dies at this operation ({!Crashed}) *)

let fault_name = function
  | Eio false -> "eio"
  | Eio true -> "eio:sticky"
  | Enospc false -> "enospc"
  | Enospc true -> "enospc:sticky"
  | Short_write n -> Printf.sprintf "shortwrite:%d" n
  | Torn_write n -> Printf.sprintf "torn:%d" n
  | Bit_flip -> "bitflip"
  | Fsync_lie -> "fsynclie"
  | Drop_rename -> "droprename"
  | Crash -> "crash"

type rule = {
  site : string;
  hit : int;  (** fire on the n-th matching operation, 1-based *)
  fault : fault;
  mutable seen : int;
  mutable fired : bool;
}

let rule ?(hit = 1) site fault =
  if hit < 1 then invalid_arg "Vfs.rule: hit < 1";
  { site; hit; fault; seen = 0; fired = false }

(** The operation sites the {!faulty} engine recognizes (one per seam
    operation that can fail on a real disk; docs/CHAOS.md). *)
let sites =
  [ "vfs.write"; "vfs.read"; "vfs.rename"; "vfs.fsync"; "vfs.fsyncdir"; "vfs.remove" ]

(* ------------------------------------------------------------------ *)
(* Faulty: the in-memory adversary                                     *)
(* ------------------------------------------------------------------ *)

type mode = Process_kill | Power_loss

(* [data] is the running process's view; [synced] is what the platter
   holds ([None] = this inode's content never reached media). *)
type inode = { mutable data : string; mutable synced : string option }

type faulty = {
  mode : mode;
  mutable rules : rule list;
  live : (string, inode) Hashtbl.t;  (** the process's namespace *)
  durable : (string, inode) Hashtbl.t;  (** the on-media entry table *)
  dirs : (string, unit) Hashtbl.t;  (** directories (durable on creation) *)
  poisoned : (string, unit) Hashtbl.t;  (** entries a [Drop_rename] condemned *)
  mutable generation : int;  (** bumped by {!crash}; stales old handles *)
  mutable injected : (string * string) list;  (** (site, fault) log, newest first *)
}

let faulty ?(mode = Process_kill) ?(rules = []) () =
  {
    mode;
    rules;
    live = Hashtbl.create 64;
    durable = Hashtbl.create 64;
    dirs = Hashtbl.create 16;
    poisoned = Hashtbl.create 8;
    generation = 0;
    injected = [];
  }

(** Install [rules] (replacing any previous plan) and reset their run
    state; {!disarm} removes every rule. *)
let arm f rules =
  List.iter
    (fun r ->
      r.seen <- 0;
      r.fired <- false)
    rules;
  f.rules <- rules

let disarm f = arm f []
let injected f = List.length f.injected
let injected_log f = List.rev f.injected
let mode f = f.mode

let is_sticky = function Eio true | Enospc true -> true | _ -> false

(* Every matching rule advances its arrival count; the faults returned
   are the ones that fire at this operation (first-write-once, then
   sticky repeats). *)
let fire f site =
  List.filter_map
    (fun r ->
      if String.equal r.site site then begin
        r.seen <- r.seen + 1;
        if (not r.fired) && r.seen = r.hit then begin
          r.fired <- true;
          f.injected <- (site, fault_name r.fault) :: f.injected;
          Some r.fault
        end
        else if r.fired && is_sticky r.fault then begin
          f.injected <- (site, fault_name r.fault) :: f.injected;
          Some r.fault
        end
        else None
      end
      else None)
    f.rules

let crash_now path reason =
  raise (Crashed (Printf.sprintf "%s: injected crash (%s)" path reason))

let eio path what = raise (Sys_error (Printf.sprintf "%s: injected EIO%s" path what))
let enospc path = raise (Sys_error (path ^ ": injected ENOSPC"))
let absent path = raise (Sys_error (path ^ ": No such file or directory"))

let entry_durable f path ino =
  if f.mode = Power_loss && not (Hashtbl.mem f.poisoned path) then
    Hashtbl.replace f.durable path ino

let mem_handle f path ino =
  let gen = f.generation in
  let closed = ref false in
  let check () =
    if f.generation <> gen then
      raise (Sys_error (path ^ ": stale handle (process died)"));
    if !closed then raise (Sys_error (path ^ ": handle is closed"))
  in
  {
    h_write =
      (fun s ->
        check ();
        let faults = fire f "vfs.write" in
        match
          List.find_opt
            (function
              | Torn_write _ | Short_write _ | Eio _ | Enospc _ | Crash -> true
              | _ -> false)
            faults
        with
        | Some (Torn_write n) ->
            (* The platter got a prefix and the process died mid-write:
               the partial bytes are as durable as the write would have
               been. *)
            ino.data <- ino.data ^ String.sub s 0 (min n (String.length s));
            ino.synced <- Some ino.data;
            entry_durable f path ino;
            crash_now path "torn write"
        | Some (Short_write n) ->
            ino.data <- ino.data ^ String.sub s 0 (min n (String.length s));
            eio path " (short write)"
        | Some (Eio _) -> eio path ""
        | Some (Enospc _) -> enospc path
        | Some Crash -> crash_now path "write"
        | _ -> ino.data <- ino.data ^ s);
    h_fsync =
      (fun () ->
        check ();
        let faults = fire f "vfs.fsync" in
        if List.exists (function Fsync_lie -> true | _ -> false) faults then ()
        else if List.exists (function Eio _ -> true | _ -> false) faults then
          eio path " (fsync)"
        else if List.exists (function Crash -> true | _ -> false) faults then
          crash_now path "fsync"
        else begin
          ino.synced <- Some ino.data;
          (* Fsyncing a file also makes its creation durable (the ext4
             courtesy most databases rely on); only a *rename* needs the
             directory fsync. *)
          entry_durable f path ino
        end);
    h_close = (fun () -> closed := true);
  }

let require_dir f path =
  if not (Hashtbl.mem f.dirs (Filename.dirname path)) then absent path

let mem_create f path =
  require_dir f path;
  let ino = { data = ""; synced = None } in
  Hashtbl.replace f.live path ino;
  mem_handle f path ino

let mem_open_append f path =
  match Hashtbl.find_opt f.live path with
  | Some ino -> mem_handle f path ino
  | None -> mem_create f path

let flip_one_bit s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let pos = Bytes.length b / 2 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
    Bytes.unsafe_to_string b
  end

let mem_read f path =
  let faults = fire f "vfs.read" in
  if List.exists (function Eio _ -> true | _ -> false) faults then eio path ""
  else if List.exists (function Crash -> true | _ -> false) faults then
    crash_now path "read"
  else
    match Hashtbl.find_opt f.live path with
    | None -> absent path
    | Some ino ->
        if List.exists (function Bit_flip -> true | _ -> false) faults then
          flip_one_bit ino.data
        else ino.data

let mem_rename f a b =
  let faults = fire f "vfs.rename" in
  if List.exists (function Eio _ -> true | _ -> false) faults then eio a " (rename)"
  else if List.exists (function Enospc _ -> true | _ -> false) faults then enospc a
  else begin
    if List.exists (function Drop_rename -> true | _ -> false) faults then begin
      (* Neither the disappearance of [a] nor the appearance of [b] may
         ever reach the on-media entry table: at a power-loss crash the
         rename unhappens. *)
      Hashtbl.replace f.poisoned a ();
      Hashtbl.replace f.poisoned b ()
    end;
    (match Hashtbl.find_opt f.live a with
    | None -> absent a
    | Some ino ->
        Hashtbl.remove f.live a;
        Hashtbl.replace f.live b ino);
    if List.exists (function Crash -> true | _ -> false) faults then
      crash_now b "post-rename"
  end

let mem_fsync_dir f dir =
  let faults = fire f "vfs.fsyncdir" in
  if List.exists (function Fsync_lie -> true | _ -> false) faults then ()
  else if List.exists (function Eio _ -> true | _ -> false) faults then
    eio dir " (fsync dir)"
  else if List.exists (function Crash -> true | _ -> false) faults then
    crash_now dir "fsync dir"
  else if f.mode = Power_loss then begin
    (* Sync this directory's entry table: live entries (creates and
       rename targets) become durable, removed entries disappear from
       media — except poisoned ones, which a Drop_rename condemned. *)
    Hashtbl.iter
      (fun p ino ->
        if String.equal (Filename.dirname p) dir && not (Hashtbl.mem f.poisoned p)
        then Hashtbl.replace f.durable p ino)
      f.live;
    let stale =
      Hashtbl.fold
        (fun p _ acc ->
          if
            String.equal (Filename.dirname p) dir
            && (not (Hashtbl.mem f.live p))
            && not (Hashtbl.mem f.poisoned p)
          then p :: acc
          else acc)
        f.durable []
    in
    List.iter (Hashtbl.remove f.durable) stale
  end

let mem_remove f path =
  let faults = fire f "vfs.remove" in
  if List.exists (function Eio _ -> true | _ -> false) faults then
    eio path " (remove)"
  else if List.exists (function Crash -> true | _ -> false) faults then
    crash_now path "remove"
  else if Hashtbl.mem f.live path then Hashtbl.remove f.live path
  else absent path

let rec mem_mkdir_p f dir =
  if Hashtbl.mem f.live dir then
    invalid_arg (Printf.sprintf "Vfs: %S exists and is not a directory" dir)
  else if not (Hashtbl.mem f.dirs dir) then begin
    let parent = Filename.dirname dir in
    if not (String.equal parent dir) then mem_mkdir_p f parent;
    Hashtbl.replace f.dirs dir ()
  end

let mem_readdir f dir =
  if not (Hashtbl.mem f.dirs dir) then absent dir;
  let entries = Hashtbl.create 16 in
  let note p =
    if String.equal (Filename.dirname p) dir && not (String.equal p dir) then
      Hashtbl.replace entries (Filename.basename p) ()
  in
  Hashtbl.iter (fun p _ -> note p) f.live;
  Hashtbl.iter (fun p _ -> note p) f.dirs;
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) entries [] in
  Array.of_list (List.sort compare names)

(** The seam over an in-memory adversary. *)
let vfs f =
  {
    vname = (match f.mode with Process_kill -> "faulty:kill" | Power_loss -> "faulty:power");
    create = mem_create f;
    open_append = mem_open_append f;
    read_file = mem_read f;
    rename = mem_rename f;
    fsync_dir = mem_fsync_dir f;
    remove = mem_remove f;
    mkdir_p = mem_mkdir_p f;
    file_exists = (fun p -> Hashtbl.mem f.live p || Hashtbl.mem f.dirs p);
    is_directory =
      (fun p ->
        if Hashtbl.mem f.dirs p then true
        else if Hashtbl.mem f.live p then false
        else absent p);
    readdir = mem_readdir f;
  }

(** Apply the crash boundary: the process (and its handles) dies, and
    the filesystem reverts to what the mode's durability model kept —
    everything flushed ([`Process_kill]) or only the synced entry table
    ([`Power_loss], where an entry-durable file whose content never
    synced comes back zero-length).  Armed rules keep their state, so
    one plan can span the boundary (faults during recovery). *)
let crash f =
  f.generation <- f.generation + 1;
  let survivors = Hashtbl.create 64 in
  (match f.mode with
  | Process_kill ->
      Hashtbl.iter (fun p ino -> Hashtbl.replace survivors p ino.data) f.live
  | Power_loss ->
      Hashtbl.iter
        (fun p ino ->
          Hashtbl.replace survivors p (Option.value ~default:"" ino.synced))
        f.durable);
  Hashtbl.reset f.live;
  Hashtbl.reset f.durable;
  Hashtbl.reset f.poisoned;
  Hashtbl.iter
    (fun p data ->
      let ino = { data; synced = Some data } in
      Hashtbl.replace f.live p ino;
      Hashtbl.replace f.durable p ino)
    survivors
