(** The spill policy and crash recovery glue (docs/STORAGE.md).

    [Spill.Make (B)] sits between a queue's distributed LSMs and its shared
    component(s): the queue applies {!maybe_spill} to every block it is
    about to publish into a shared component, and blocks whose serialized
    size reaches the configured threshold are evicted to the
    content-addressed {!Store} — the in-RAM block is replaced by a cold
    {!Block.spilled} twin whose [keys] mirror stays resident, so every
    shared-component decision path is unchanged and only item selection on
    delete-min rehydrates (see {!Block.items}).

    {b The claim-first protocol.}  Items in a block can be aliased from
    other blocks (spies copy item {e pointers}, paper §4.2), so a spill
    cannot just serialize and drop: a RAM alias could deliver an item that
    recovery would later restore (resurrection).  Instead the spiller first
    {e claims} every alive item with the same test-and-set a delete-min
    uses.  From that point no RAM alias can deliver them; the claimed
    (key, value) pairs are then serialized, made durable, journaled, and
    reborn inside the cold block.  Between the claim and the cold block's
    publication the items are transiently invisible — the same transient
    the paper accepts between a DistLSM spill's two linearization points —
    and a kill inside that window is exactly the journal's department:
    after the [S] record the items are recoverable even though no RAM
    pointer survives; before it, they were never durable and the crash
    model permits losing them (in-RAM state dies with the process).

    {b Ordering obligations} (the failure matrix in docs/STORAGE.md):
    object file before [S] record; [S] record before the cold block links;
    [R] record before any rehydrated item is observable.  Each is a
    one-line invariant here and one row of the recovery proof. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Klsm_core.Item.Make (B)
  module Block = Klsm_core.Block.Make (B)
  module Obs = Klsm_obs.Obs
  module Backoff = Klsm_primitives.Backoff
  module Xoshiro = Klsm_primitives.Xoshiro

  (* Observability (lib/obs; docs/METRICS.md).  Rehydration can run on any
     thread but is attributed to the shard of the thread that spilled the
     block; the lost-update race on those plain counters is benign (counts
     may undercount under concurrent rehydrates, never corrupt). *)
  let c_spill = Obs.counter "store.spill"
  let c_spill_items = Obs.counter "store.spill_items"
  let c_spill_bytes = Obs.counter "store.spill_bytes"
  let c_spill_skip = Obs.counter "store.spill_skip"
  let c_rehydrate = Obs.counter "store.rehydrate"
  let c_rehydrate_memo = Obs.counter "store.rehydrate_memo"
  let c_recover_blocks = Obs.counter "store.recover_blocks"
  let c_recover_items = Obs.counter "store.recover_items"
  let c_io_error = Obs.counter "store.io_error"
  let c_retry = Obs.counter "store.retry"
  let c_quarantine = Obs.counter "store.quarantine"
  let c_lost = Obs.counter "store.lost"
  let sp_spill = Obs.span "store.spill"
  let sp_rehydrate = Obs.span "store.rehydrate"
  let sp_recover = Obs.span "store.recover"

  type t = {
    store : Store.t;
    journal : Journal.t;
    threshold : int;  (** spill blocks whose encoding is at least this *)
    obs : Obs.sheet;
  }

  (** Open (creating if needed) a spill tier rooted at [root].  A prior
      run's journal under the same root is preserved — {!recover} replays
      it; fresh instance ids continue above it either way.  [fsync]
      selects strict (media) durability for both objects and journal
      appends; the default flushes to the OS, sufficient for the
      process-kill crash model.  [vfs] is the I/O seam threaded to both
      the store and the journal (default: the passthrough; tests hand in
      a Faulty adversary, docs/CHAOS.md). *)
  let create ?(threshold = 1 lsl 20) ?fsync ?vfs ~num_threads ~root () =
    if threshold < 0 then invalid_arg "Spill.create: negative threshold";
    let store = Store.open_store ?fsync ?vfs ~root () in
    let journal =
      Journal.open_journal ?fsync ?vfs ~dir:(Store.journal_dir root)
        ~num_threads ()
    in
    let obs = Obs.create_sheet ~now:B.time ~num_threads () in
    (* Store/Journal report their swallowed I/O errors into this sheet
       (attributed to shard 0 — the counter is a health signal, not a
       per-thread attribution). *)
    Store.set_obs store (Obs.handle obs ~tid:0);
    Journal.set_obs journal (Obs.handle obs ~tid:0);
    { store; journal; threshold; obs }

  let store t = t.store
  let journal t = t.journal
  let threshold t = t.threshold

  (** Internal-counter snapshot; merged into the owning queue's stats by
      the harness registry. *)
  let stats t = Obs.snapshot t.obs

  let close t = Journal.close t.journal

  (* ---- block codec ---- *)

  let magic = "KLSMBLK1"
  let header_bytes = 24
  let bytes_per_item = 16

  (** Size {!maybe_spill} compares against the threshold. *)
  let encoded_size ~count = header_bytes + (bytes_per_item * count)

  (** Serialize claimed (key, value) pairs (descending keys, [int]
      payloads): magic, level, count, then fixed-width little-endian
      pairs.  The encoding is canonical — same pairs, same bytes — which
      is what makes content addressing dedup equal blocks. *)
  let encode ~level pairs =
    let n = Array.length pairs in
    let b = Bytes.create (encoded_size ~count:n) in
    Bytes.blit_string magic 0 b 0 8;
    Bytes.set_int64_le b 8 (Int64.of_int level);
    Bytes.set_int64_le b 16 (Int64.of_int n);
    Array.iteri
      (fun i (k, v) ->
        Bytes.set_int64_le b (header_bytes + (bytes_per_item * i)) (Int64.of_int k);
        Bytes.set_int64_le b (header_bytes + (bytes_per_item * i) + 8) (Int64.of_int v))
      pairs;
    Bytes.unsafe_to_string b

  (** Decode a serialized block; raises {!Store.Corrupt} on any structural
      mismatch (bad magic, impossible count, wrong length, ascending
      keys).  Callers have already digest-verified the bytes, so a failure
      here means an encoder/decoder bug, not disk rot — it is still a
      checked failure, never a wrong answer. *)
  let decode bytes =
    let len = String.length bytes in
    if len < header_bytes || not (String.equal (String.sub bytes 0 8) magic) then
      raise (Store.Corrupt "block: bad magic");
    let level = Int64.to_int (String.get_int64_le bytes 8) in
    let n = Int64.to_int (String.get_int64_le bytes 16) in
    if n < 0 || len <> encoded_size ~count:n then
      raise (Store.Corrupt "block: bad length");
    let pairs =
      Array.init n (fun i ->
          ( Int64.to_int
              (String.get_int64_le bytes (header_bytes + (bytes_per_item * i))),
            Int64.to_int
              (String.get_int64_le bytes (header_bytes + (bytes_per_item * i) + 8))
          ))
    in
    for i = 0 to n - 2 do
      if fst pairs.(i) < fst pairs.(i + 1) then
        raise (Store.Corrupt "block: keys not descending")
    done;
    (level, pairs)

  (* ---- cold blocks ---- *)

  (* Build the in-RAM twin of a durable block instance.  [fetch] runs at
     most once per instance (Block's claim CAS), on whichever thread's
     delete-min selects into the block first.  [verify] controls digest
     re-verification on the fetch: blocks spilled by this same process
     skip it (the bytes went through temp-write + rename moments ago, and
     re-hashing tens of kilobytes would double the spill cycle's CPU
     cost), while blocks adopted across a crash boundary always verify —
     the disk had the whole outage to rot them. *)
  let cold_block p ~obs ~verify ~iid ~digest ~level ~keys =
    let n = Array.length keys in
    let fetch () =
      B.fault_point "store.rehydrate";
      let t0 = Obs.span_begin obs in
      let bytes = Store.get ~verify p.store digest in
      let level', pairs = decode bytes in
      ignore level';
      if Array.length pairs <> n then
        raise
          (Store.Corrupt
             (Printf.sprintf "block %s: %d items serialized, %d expected"
                digest (Array.length pairs) n));
      Array.iteri
        (fun i (k, _) ->
          if k <> keys.(i) then
            raise
              (Store.Corrupt
                 (Printf.sprintf "block %s: resident key mirror diverges at %d"
                    digest i)))
        pairs;
      (* Journal the rehydration BEFORE any decoded item can escape: once
         an item is deliverable from RAM, this instance must never be
         recovered again (no resurrection). *)
      Journal.append_rehydrate p.journal ~iid ~digest;
      Store.decr_ref p.store digest;
      let items = Array.map (fun (k, v) -> Item.make k v) pairs in
      Obs.incr obs c_rehydrate;
      Obs.span_end obs sp_rehydrate t0;
      items
    in
    Block.spilled ~level ~keys ~ident:digest
      ~note_memo:(fun () -> Obs.incr obs c_rehydrate_memo)
      ~fetch

  (* ---- the policy ---- *)

  (** The eviction policy, applied by the queue wherever a block is about
      to enter a shared component.  Returns the block unchanged when it is
      below the threshold (or already spilled); otherwise claims its alive
      items, persists them, and returns the cold twin to publish in its
      place. *)
  let maybe_spill p ~alive ~tid block =
    if Block.is_spilled block then block
    else begin
      let f = Block.filled block in
      if encoded_size ~count:f < p.threshold || f = 0 then block
      else begin
        let obs = Obs.handle p.obs ~tid in
        let t0 = Obs.span_begin obs in
        let items = Block.items block in
        (* Claim pass: from here on no RAM alias (spy copies, snapshot
           readers) can deliver these items. *)
        let ks = Array.make f 0 and vs = Array.make f 0 in
        let n = ref 0 in
        for i = 0 to f - 1 do
          let it = items.(i) in
          if alive it && Item.take it then begin
            ks.(!n) <- Item.key it;
            vs.(!n) <- Item.value it;
            incr n
          end
        done;
        if !n = 0 then begin
          (* Everything died under us — nothing durable to create; hand the
             (now fully dead) block back to be merged away. *)
          Obs.incr obs c_spill_skip;
          block
        end
        else begin
          let pairs = Array.init !n (fun i -> (ks.(i), vs.(i))) in
          let bytes = encode ~level:(Block.level block) pairs in
          let digest = Store.put p.store bytes in
          Store.incr_ref p.store digest;
          (* Durability point: object on disk, then the S record.  A kill
             after this line loses no items (recovery replays the S); a
             kill before it loses only items that were never durable. *)
          let iid =
            Journal.append_spill p.journal ~tid ~digest
              ~level:(Block.level block) ~count:!n
          in
          B.fault_point "store.spill";
          Obs.incr obs c_spill;
          Obs.add obs c_spill_items !n;
          Obs.add obs c_spill_bytes (String.length bytes);
          let cold =
            cold_block p ~obs ~verify:false ~iid ~digest
              ~level:(Block.level block) ~keys:(Array.sub ks 0 !n)
          in
          Obs.span_end obs sp_spill t0;
          cold
        end
      end
    end

  (** The queue-facing policy closure ({!Klsm_core.Klsm.create_with}'s
      [?spill_policy] shape). *)
  let policy p ~alive ~tid block = maybe_spill p ~alive ~tid block

  (* ---- recovery ---- *)

  (** Rebuild the durable state after a crash: replay the journal, verify
      and reload every live block instance as a {e cold} block (items stay
      on disk until selected), hand each to [link] (typically
      [Klsm.adopt_block]), seed the store's refcounts, checkpoint the
      journal, and — only when the pass was fully clean — GC unreferenced
      objects.  Idempotent: recovering twice from the same root rebuilds
      the same queue.

      {b Totality.}  This function classifies, it does not abort: every
      live instance ends the pass as exactly one {!Audit.classification} —

      - transient I/O errors are retried (up to 3 times) behind the
        decorrelated-jitter [Backoff] from lib/primitives, so a soft read
        error or one-shot bit flip heals instead of failing the pass;
      - bytes that exist but cannot be trusted (digest mismatch, codec
        corruption, journal/object disagreement on count or level) are
        {e quarantined}: moved to [<root>/quarantine/<digest>] with a
        [.why] sidecar, and released durably by {e exclusion from the
        checkpoint} — no [L] record is needed, and a crash between the
        move and the checkpoint re-classifies them from the quarantine
        directory on the next pass;
      - bytes that cannot currently be produced at all (missing object,
        persistent errors) are {e lost}: their journal entries stay live
        in the checkpoint so a later recovery on a healthier disk — or
        after restoring the object from a replica — retries them;
      - a linking failure downgrades an already-verified instance back to
        lost (its checkpoint entry is live, nothing durable changed).

      The checkpoint is skipped entirely when any journal file was
      unreadable (never compact what could not be fully read), and GC runs
      only on a fully {!Audit.clean} pass.  The only exception that can
      escape is {!Vfs.Crashed} — the injected process death, which is not
      a failure of recovery but another crash for the next recovery to
      handle (bin/torture.exe exercises exactly that). *)
  let recover p ~link =
    let obs = Obs.handle p.obs ~tid:0 in
    let t0 = Obs.span_begin obs in
    B.fault_point "store.recover";
    let vfs = Store.vfs p.store in
    let retries = ref 0 and io_errors = ref 0 in
    let rng = Xoshiro.create ~seed:0x5EED1057 in
    let with_retries f =
      let b = Backoff.create ~min:1 ~max:64 ~jitter:rng () in
      let rec go attempt =
        match f () with
        | v -> Ok v
        | exception (Vfs.Crashed _ as e) -> raise e
        | exception e ->
            incr io_errors;
            Obs.incr obs c_io_error;
            if attempt >= 3 then Error e
            else begin
              incr retries;
              Obs.incr obs c_retry;
              Backoff.once b ~relax:B.relax_n;
              go (attempt + 1)
            end
      in
      go 0
    in
    let replay =
      Journal.read_all ~vfs ~dir:(Journal.dir p.journal) ()
    in
    (* Journal files that needed a re-read or stayed unreadable are I/O
       incidents too; fold them into the same health counters. *)
    io_errors := !io_errors + replay.Journal.unreadable_files;
    Obs.add obs c_io_error replay.Journal.unreadable_files;
    retries := !retries + replay.Journal.reread_retries;
    Obs.add obs c_retry replay.Journal.reread_retries;
    let live = Journal.live_instances replay.Journal.records in
    (* Phase 1: classify every live instance. *)
    let classify (li : Journal.live) =
      let fetch () =
        let bytes = Store.get p.store li.Journal.digest in
        let level, pairs = decode bytes in
        if Array.length pairs <> li.Journal.count then
          raise
            (Store.Corrupt
               (Printf.sprintf
                  "object %s: journal claims %d items, object decodes %d"
                  li.Journal.digest li.Journal.count (Array.length pairs)));
        if level <> li.Journal.level then
          raise
            (Store.Corrupt
               (Printf.sprintf
                  "object %s: journal claims level %d, object decodes %d"
                  li.Journal.digest li.Journal.level level));
        (level, Array.map fst pairs)
      in
      match with_retries fetch with
      | Ok (level, keys) -> `Recovered (level, keys)
      | Error (Store.Corrupt msg) -> (
          (* The bytes exist but cannot be trusted.  Preserve the
             evidence and release the instance by exclusion from the
             checkpoint below. *)
          match Store.quarantine p.store ~digest:li.Journal.digest ~why:msg with
          | _qpath -> `Quarantined msg
          | exception (Vfs.Crashed _ as e) -> raise e
          | exception e ->
              (* Couldn't even move it aside (e.g. the quarantine write
                 itself fails on a dying disk): keep the entry live for a
                 later, healthier pass. *)
              incr io_errors;
              Obs.incr obs c_io_error;
              `Lost
                (Printf.sprintf "%s; quarantine failed: %s" msg
                   (Printexc.to_string e)))
      | Error e ->
          if Store.quarantined p.store li.Journal.digest then
            (* A previous pass moved this object aside and died before its
               checkpoint landed; the quarantine directory is the durable
               half of that decision. *)
            `Quarantined "object already in quarantine"
          else `Lost (Printexc.to_string e)
    in
    let classified = List.map (fun li -> (li, ref (classify li))) live in
    (* Phase 2: checkpoint BEFORE linking, keeping recovered + lost
       (quarantined instances are released by exclusion).  Linking can
       itself rehydrate a cold block — adoption may merge it into an
       existing level — and the [R] record that emits must land in a log
       the checkpoint does not delete: an epoch written after such a
       rehydration would resurrect an instance whose items already
       escaped into RAM. *)
    let keep =
      List.filter_map
        (fun (li, c) ->
          match !c with `Recovered _ | `Lost _ -> Some li | `Quarantined _ -> None)
        classified
    in
    let checkpoint_ok =
      if replay.Journal.unreadable_files > 0 then false
      else
        match Journal.checkpoint p.journal ~live:keep with
        | _gen -> true
        | exception (Vfs.Crashed _ as e) -> raise e
        | exception _ ->
            incr io_errors;
            Obs.incr obs c_io_error;
            false
    in
    (* Phase 3: link the recovered instances as cold blocks (always
       verified on fetch — they crossed a crash boundary).  Linking can
       rehydrate eagerly: adoption may merge the new block into an
       existing level, fetching {e other} cold blocks whose [R] records
       then land mid-merge.  A transient fault on any of those fetches
       must therefore be retried {e here}, with the same block — a
       successful fetch is memoized on its block and the claim of a
       failed one is released, so the retry re-runs only the fetches
       that failed and never double-journals.  Abandoning the adopt
       instead would strand already-rehydrated items: their [R] records
       are durable, so no later pass can see them again (found by
       bin/torture.exe's transient-EIO grid).  Only after the retry
       budget is exhausted is the instance downgraded to lost: its
       checkpoint entry is live, so nothing durable is forgotten. *)
    let blocks = ref 0 and items = ref 0 in
    List.iter
      (fun ((li : Journal.live), c) ->
        match !c with
        | `Recovered (level, keys) -> (
            Store.incr_ref p.store li.Journal.digest;
            let b =
              cold_block p ~obs ~verify:true ~iid:li.Journal.iid
                ~digest:li.Journal.digest ~level ~keys
            in
            match with_retries (fun () -> link b) with
            | Ok () ->
                incr blocks;
                items := !items + Array.length keys
            | Error e ->
                Store.decr_ref p.store li.Journal.digest;
                c := `Lost (Printf.sprintf "link failed: %s" (Printexc.to_string e)))
        | _ -> ())
      classified;
    (* Phase 4: the audit books. *)
    let entries =
      List.map
        (fun ((li : Journal.live), c) ->
          let outcome =
            match !c with
            | `Recovered _ -> Audit.Recovered
            | `Quarantined why -> Audit.Quarantined why
            | `Lost why -> Audit.Lost why
          in
          {
            Audit.iid = li.Journal.iid;
            digest = li.Journal.digest;
            level = li.Journal.level;
            count = li.Journal.count;
            bytes = encoded_size ~count:li.Journal.count;
            outcome;
          })
        classified
    in
    let tally pred =
      List.fold_left
        (fun (n, it, by) (e : Audit.entry) ->
          if pred e.Audit.outcome then (n + 1, it + e.Audit.count, by + e.Audit.bytes)
          else (n, it, by))
        (0, 0, 0) entries
    in
    let spilled, spilled_items, spilled_bytes = tally (fun _ -> true) in
    let recovered, recovered_items, recovered_bytes =
      tally (function Audit.Recovered -> true | _ -> false)
    in
    let quarantined, quarantined_items, quarantined_bytes =
      tally (function Audit.Quarantined _ -> true | _ -> false)
    in
    let lost, lost_items, lost_bytes =
      tally (function Audit.Lost _ -> true | _ -> false)
    in
    (* Phase 5: GC, and only on a fully clean pass — with anything
       quarantined, lost, torn or unreadable in play, reclaiming
       "unreferenced" objects risks eating evidence or a retryable
       instance. *)
    let gc_ran, gc_reclaimed =
      if
        quarantined = 0 && lost = 0
        && replay.Journal.torn_lines = 0
        && replay.Journal.unreadable_files = 0
        && checkpoint_ok
      then
        match Store.gc p.store with
        | n -> (true, n)
        | exception (Vfs.Crashed _ as e) -> raise e
        | exception _ ->
            incr io_errors;
            Obs.incr obs c_io_error;
            (false, 0)
      else (false, 0)
    in
    Obs.add obs c_recover_blocks !blocks;
    Obs.add obs c_recover_items !items;
    Obs.add obs c_quarantine quarantined;
    Obs.add obs c_lost lost;
    Obs.span_end obs sp_recover t0;
    {
      Audit.spilled;
      recovered;
      quarantined;
      lost;
      spilled_items;
      recovered_items;
      quarantined_items;
      lost_items;
      spilled_bytes;
      recovered_bytes;
      quarantined_bytes;
      lost_bytes;
      retries = !retries;
      io_errors = !io_errors;
      skipped_lines = replay.Journal.torn_lines;
      unreadable_files = replay.Journal.unreadable_files;
      reread_retries = replay.Journal.reread_retries;
      checkpoint_ok;
      gc_ran;
      gc_reclaimed;
      entries;
    }
end
