(** The spill policy and crash recovery glue (docs/STORAGE.md).

    [Spill.Make (B)] sits between a queue's distributed LSMs and its shared
    component(s): the queue applies {!maybe_spill} to every block it is
    about to publish into a shared component, and blocks whose serialized
    size reaches the configured threshold are evicted to the
    content-addressed {!Store} — the in-RAM block is replaced by a cold
    {!Block.spilled} twin whose [keys] mirror stays resident, so every
    shared-component decision path is unchanged and only item selection on
    delete-min rehydrates (see {!Block.items}).

    {b The claim-first protocol.}  Items in a block can be aliased from
    other blocks (spies copy item {e pointers}, paper §4.2), so a spill
    cannot just serialize and drop: a RAM alias could deliver an item that
    recovery would later restore (resurrection).  Instead the spiller first
    {e claims} every alive item with the same test-and-set a delete-min
    uses.  From that point no RAM alias can deliver them; the claimed
    (key, value) pairs are then serialized, made durable, journaled, and
    reborn inside the cold block.  Between the claim and the cold block's
    publication the items are transiently invisible — the same transient
    the paper accepts between a DistLSM spill's two linearization points —
    and a kill inside that window is exactly the journal's department:
    after the [S] record the items are recoverable even though no RAM
    pointer survives; before it, they were never durable and the crash
    model permits losing them (in-RAM state dies with the process).

    {b Ordering obligations} (the failure matrix in docs/STORAGE.md):
    object file before [S] record; [S] record before the cold block links;
    [R] record before any rehydrated item is observable.  Each is a
    one-line invariant here and one row of the recovery proof. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Klsm_core.Item.Make (B)
  module Block = Klsm_core.Block.Make (B)
  module Obs = Klsm_obs.Obs

  (* Observability (lib/obs; docs/METRICS.md).  Rehydration can run on any
     thread but is attributed to the shard of the thread that spilled the
     block; the lost-update race on those plain counters is benign (counts
     may undercount under concurrent rehydrates, never corrupt). *)
  let c_spill = Obs.counter "store.spill"
  let c_spill_items = Obs.counter "store.spill_items"
  let c_spill_bytes = Obs.counter "store.spill_bytes"
  let c_spill_skip = Obs.counter "store.spill_skip"
  let c_rehydrate = Obs.counter "store.rehydrate"
  let c_rehydrate_memo = Obs.counter "store.rehydrate_memo"
  let c_recover_blocks = Obs.counter "store.recover_blocks"
  let c_recover_items = Obs.counter "store.recover_items"
  let sp_spill = Obs.span "store.spill"
  let sp_rehydrate = Obs.span "store.rehydrate"
  let sp_recover = Obs.span "store.recover"

  type t = {
    store : Store.t;
    journal : Journal.t;
    threshold : int;  (** spill blocks whose encoding is at least this *)
    obs : Obs.sheet;
  }

  (** Open (creating if needed) a spill tier rooted at [root].  A prior
      run's journal under the same root is preserved — {!recover} replays
      it; fresh instance ids continue above it either way.  [fsync]
      selects strict (media) durability for both objects and journal
      appends; the default flushes to the OS, sufficient for the
      process-kill crash model. *)
  let create ?(threshold = 1 lsl 20) ?fsync ~num_threads ~root () =
    if threshold < 0 then invalid_arg "Spill.create: negative threshold";
    let store = Store.open_store ?fsync ~root () in
    let journal =
      Journal.open_journal ?fsync ~dir:(Store.journal_dir root) ~num_threads ()
    in
    { store; journal; threshold; obs = Obs.create_sheet ~now:B.time ~num_threads () }

  let store t = t.store
  let journal t = t.journal
  let threshold t = t.threshold

  (** Internal-counter snapshot; merged into the owning queue's stats by
      the harness registry. *)
  let stats t = Obs.snapshot t.obs

  let close t = Journal.close t.journal

  (* ---- block codec ---- *)

  let magic = "KLSMBLK1"
  let header_bytes = 24
  let bytes_per_item = 16

  (** Size {!maybe_spill} compares against the threshold. *)
  let encoded_size ~count = header_bytes + (bytes_per_item * count)

  (** Serialize claimed (key, value) pairs (descending keys, [int]
      payloads): magic, level, count, then fixed-width little-endian
      pairs.  The encoding is canonical — same pairs, same bytes — which
      is what makes content addressing dedup equal blocks. *)
  let encode ~level pairs =
    let n = Array.length pairs in
    let b = Bytes.create (encoded_size ~count:n) in
    Bytes.blit_string magic 0 b 0 8;
    Bytes.set_int64_le b 8 (Int64.of_int level);
    Bytes.set_int64_le b 16 (Int64.of_int n);
    Array.iteri
      (fun i (k, v) ->
        Bytes.set_int64_le b (header_bytes + (bytes_per_item * i)) (Int64.of_int k);
        Bytes.set_int64_le b (header_bytes + (bytes_per_item * i) + 8) (Int64.of_int v))
      pairs;
    Bytes.unsafe_to_string b

  (** Decode a serialized block; raises {!Store.Corrupt} on any structural
      mismatch (bad magic, impossible count, wrong length, ascending
      keys).  Callers have already digest-verified the bytes, so a failure
      here means an encoder/decoder bug, not disk rot — it is still a
      checked failure, never a wrong answer. *)
  let decode bytes =
    let len = String.length bytes in
    if len < header_bytes || not (String.equal (String.sub bytes 0 8) magic) then
      raise (Store.Corrupt "block: bad magic");
    let level = Int64.to_int (String.get_int64_le bytes 8) in
    let n = Int64.to_int (String.get_int64_le bytes 16) in
    if n < 0 || len <> encoded_size ~count:n then
      raise (Store.Corrupt "block: bad length");
    let pairs =
      Array.init n (fun i ->
          ( Int64.to_int
              (String.get_int64_le bytes (header_bytes + (bytes_per_item * i))),
            Int64.to_int
              (String.get_int64_le bytes (header_bytes + (bytes_per_item * i) + 8))
          ))
    in
    for i = 0 to n - 2 do
      if fst pairs.(i) < fst pairs.(i + 1) then
        raise (Store.Corrupt "block: keys not descending")
    done;
    (level, pairs)

  (* ---- cold blocks ---- *)

  (* Build the in-RAM twin of a durable block instance.  [fetch] runs at
     most once per instance (Block's claim CAS), on whichever thread's
     delete-min selects into the block first. *)
  let cold_block p ~obs ~iid ~digest ~level ~keys =
    let n = Array.length keys in
    let fetch () =
      B.fault_point "store.rehydrate";
      let t0 = Obs.span_begin obs in
      (* No digest re-verification here: every linked instance's object was
         either written by this process (temp-write + rename) or verified
         by [recover] before linking, and the key-mirror cross-check below
         still catches a wrong or truncated decode. *)
      let bytes = Store.get ~verify:false p.store digest in
      let level', pairs = decode bytes in
      ignore level';
      if Array.length pairs <> n then
        raise
          (Store.Corrupt
             (Printf.sprintf "block %s: %d items serialized, %d expected"
                digest (Array.length pairs) n));
      Array.iteri
        (fun i (k, _) ->
          if k <> keys.(i) then
            raise
              (Store.Corrupt
                 (Printf.sprintf "block %s: resident key mirror diverges at %d"
                    digest i)))
        pairs;
      (* Journal the rehydration BEFORE any decoded item can escape: once
         an item is deliverable from RAM, this instance must never be
         recovered again (no resurrection). *)
      Journal.append_rehydrate p.journal ~iid ~digest;
      Store.decr_ref p.store digest;
      let items = Array.map (fun (k, v) -> Item.make k v) pairs in
      Obs.incr obs c_rehydrate;
      Obs.span_end obs sp_rehydrate t0;
      items
    in
    Block.spilled ~level ~keys ~ident:digest
      ~note_memo:(fun () -> Obs.incr obs c_rehydrate_memo)
      ~fetch

  (* ---- the policy ---- *)

  (** The eviction policy, applied by the queue wherever a block is about
      to enter a shared component.  Returns the block unchanged when it is
      below the threshold (or already spilled); otherwise claims its alive
      items, persists them, and returns the cold twin to publish in its
      place. *)
  let maybe_spill p ~alive ~tid block =
    if Block.is_spilled block then block
    else begin
      let f = Block.filled block in
      if encoded_size ~count:f < p.threshold || f = 0 then block
      else begin
        let obs = Obs.handle p.obs ~tid in
        let t0 = Obs.span_begin obs in
        let items = Block.items block in
        (* Claim pass: from here on no RAM alias (spy copies, snapshot
           readers) can deliver these items. *)
        let ks = Array.make f 0 and vs = Array.make f 0 in
        let n = ref 0 in
        for i = 0 to f - 1 do
          let it = items.(i) in
          if alive it && Item.take it then begin
            ks.(!n) <- Item.key it;
            vs.(!n) <- Item.value it;
            incr n
          end
        done;
        if !n = 0 then begin
          (* Everything died under us — nothing durable to create; hand the
             (now fully dead) block back to be merged away. *)
          Obs.incr obs c_spill_skip;
          block
        end
        else begin
          let pairs = Array.init !n (fun i -> (ks.(i), vs.(i))) in
          let bytes = encode ~level:(Block.level block) pairs in
          let digest = Store.put p.store bytes in
          Store.incr_ref p.store digest;
          (* Durability point: object on disk, then the S record.  A kill
             after this line loses no items (recovery replays the S); a
             kill before it loses only items that were never durable. *)
          let iid =
            Journal.append_spill p.journal ~tid ~digest
              ~level:(Block.level block) ~count:!n
          in
          B.fault_point "store.spill";
          Obs.incr obs c_spill;
          Obs.add obs c_spill_items !n;
          Obs.add obs c_spill_bytes (String.length bytes);
          let cold =
            cold_block p ~obs ~iid ~digest ~level:(Block.level block)
              ~keys:(Array.sub ks 0 !n)
          in
          Obs.span_end obs sp_spill t0;
          cold
        end
      end
    end

  (** The queue-facing policy closure ({!Klsm_core.Klsm.create_with}'s
      [?spill_policy] shape). *)
  let policy p ~alive ~tid block = maybe_spill p ~alive ~tid block

  (* ---- recovery ---- *)

  type recovery = {
    blocks : int;  (** live block instances reinserted *)
    items : int;  (** items they hold *)
    skipped_lines : int;  (** torn/corrupt journal lines ignored *)
    corrupt : (string * string) list;  (** (digest, reason) of unreadable objects *)
  }

  (** Rebuild the durable state after a crash: replay the journal, reload
      every live block instance as a {e cold} block (items stay on disk
      until selected), hand each to [link] (typically
      [Klsm.adopt_block]), seed the store's refcounts, checkpoint the
      journal, and GC unreferenced objects.  Idempotent: recovering twice
      from the same root rebuilds the same queue.  Unreadable or corrupt
      objects are reported, not silently dropped — and their journal
      entries are kept live so a later recovery (after, say, restoring the
      object from a replica) can still see them. *)
  let recover p ~link =
    let obs = Obs.handle p.obs ~tid:0 in
    let t0 = Obs.span_begin obs in
    B.fault_point "store.recover";
    let records, skipped_lines = Journal.read_all ~dir:(Journal.dir p.journal) in
    let live = Journal.live_instances records in
    let corrupt = ref [] in
    let loaded = ref [] in
    List.iter
      (fun (li : Journal.live) ->
        match
          let bytes = Store.get p.store li.Journal.digest in
          decode bytes
        with
        | exception Store.Corrupt msg ->
            corrupt := (li.Journal.digest, msg) :: !corrupt
        | exception Sys_error msg ->
            corrupt := (li.Journal.digest, msg) :: !corrupt
        | level, pairs ->
            Store.incr_ref p.store li.Journal.digest;
            loaded := (li, level, Array.map fst pairs) :: !loaded)
      live;
    let loaded = List.rev !loaded in
    (* Checkpoint BEFORE linking, and with the full live set (unreadable
       objects keep their entries for a later retry).  Linking can itself
       rehydrate a cold block — adoption may merge it into an existing
       level — and the [R] record that emits must land in a log the
       checkpoint does not delete: an epoch written after such a
       rehydration would resurrect an instance whose items already
       escaped into RAM. *)
    Journal.checkpoint p.journal ~live |> ignore;
    let blocks = ref 0 and items = ref 0 in
    List.iter
      (fun ((li : Journal.live), level, keys) ->
        let b =
          cold_block p ~obs ~iid:li.Journal.iid ~digest:li.Journal.digest
            ~level ~keys
        in
        link b;
        incr blocks;
        items := !items + Array.length keys)
      loaded;
    if !corrupt = [] then ignore (Store.gc p.store);
    Obs.add obs c_recover_blocks !blocks;
    Obs.add obs c_recover_items !items;
    Obs.span_end obs sp_recover t0;
    {
      blocks = !blocks;
      items = !items;
      skipped_lines;
      corrupt = List.rev !corrupt;
    }
end
