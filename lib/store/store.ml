(** The content-addressed object store (docs/STORAGE.md).

    Objects are immutable byte strings named by their SHA-256:

    {v <root>/objects/<d[0..1]>/<d>   where d = hex_digest(bytes) v}

    Content addressing buys three properties the spill tier leans on:

    - {b write-once}: an object file, once present, never changes — the
      durable mirror of the k-LSM's blocks-are-immutable-once-published
      invariant (paper §4), and the reason concurrent spills of identical
      content dedup to one file with no coordination;
    - {b self-verifying reads}: {!get} re-hashes what it read and raises
      {!Corrupt} on mismatch, so disk corruption is a checked failure, never
      a silently wrong queue;
    - {b idempotent recovery}: replaying a journal can only re-reference
      objects, never conflict on names.

    Writes go through a temp file in the same directory followed by a
    rename, so a crash mid-{!put} leaves either no object or a whole
    one — a torn tail can only exist under a name that doesn't match its
    digest, and {!get}/{!gc} treat such files as garbage.  In strict
    ([fsync=true]) mode the parent directory is fsynced after the rename:
    POSIX makes a rename durable only once its directory is, and skipping
    that step is exactly the unfsynced-rename crash the Faulty [Vfs]
    reproduces (docs/STORAGE.md "Failure model").

    Every byte this module touches goes through a {!Vfs.t} seam — the
    default {!Vfs.real} passthrough in production, an in-memory adversary
    under test — so torn writes, ENOSPC, bit rot and lost renames are
    injectable below the API (ISSUE 8, docs/CHAOS.md).

    Liveness is {e reference counts} held in memory and derived from the
    journal (lib/store [Journal]): one reference per live spilled block
    instance.  {!gc} removes object files whose count is zero or absent.
    The table is only meaningful when it was populated by this process —
    either because it performed the spills, or because [Spill.recover]
    seeded it from the journal; calling {!gc} on a freshly opened store
    without recovery would reclaim everything. *)

exception Corrupt of string

module Obs = Klsm_obs.Obs

(* Swallowed-I/O-error visibility (docs/METRICS.md): the same interned
   name is shared with Journal and Spill. *)
let c_io_error = Obs.counter "store.io_error"

type t = {
  root : string;
  fsync : bool;  (** fsync objects before rename (strict durability mode) *)
  vfs : Vfs.t;  (** the filesystem seam every I/O goes through *)
  mutex : Mutex.t;  (** serializes puts and refcount updates across domains *)
  refs : (string, int) Hashtbl.t;  (** digest -> live block instances *)
  mutable tmp_seq : int;  (** unique temp-file names under [mutex] *)
  mutable obs : Obs.handle;  (** sink for [store.io_error] increments *)
}

let objects_dir root = Filename.concat root "objects"
let journal_dir root = Filename.concat root "journal"
let quarantine_dir root = Filename.concat root "quarantine"

(* Kept for callers outside the seam (tools preparing real directories);
   store-internal code uses [t.vfs.mkdir_p]. *)
let mkdir_p = Vfs.real_mkdir_p

(** [fsync] forces objects to media before the rename publishes them, and
    the parent directory after — the strict durability mode.  The default
    flushes to the OS only, which the crash model (process kill, not
    power loss; see [Journal]) makes sufficient and keeps {!put} off the
    fsync cliff.  [vfs] is the I/O seam; defaults to the passthrough. *)
let open_store ?(fsync = false) ?(vfs = Vfs.real) ~root () =
  vfs.Vfs.mkdir_p (objects_dir root);
  vfs.Vfs.mkdir_p (journal_dir root);
  {
    root;
    fsync;
    vfs;
    mutex = Mutex.create ();
    refs = Hashtbl.create 64;
    tmp_seq = 0;
    obs = Obs.null_handle;
  }

let root t = t.root
let vfs t = t.vfs
let set_obs t h = t.obs <- h

(* A swallowed (or merely observed-and-handled) I/O error is never
   silent: every such site counts it.  Exact sites: docs/METRICS.md. *)
let note_io_error t = Obs.incr t.obs c_io_error

let object_path t digest =
  if String.length digest < 3 then invalid_arg "Store: malformed digest";
  Filename.concat
    (Filename.concat (objects_dir t.root) (String.sub digest 0 2))
    digest

let quarantine_path t digest = Filename.concat (quarantine_dir t.root) digest
let contains t digest = t.vfs.Vfs.file_exists (object_path t digest)

(** Store [bytes]; returns their hex digest.  Idempotent: if the object
    already exists the bytes are not rewritten (their content is equal by
    construction).  The temp-write + rename keeps the object directory free
    of torn files whatever happens mid-call. *)
let put t bytes =
  let d = Sha256.hex_digest bytes in
  let path = object_path t d in
  if not (t.vfs.Vfs.file_exists path) then begin
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        if not (t.vfs.Vfs.file_exists path) then begin
          let dir = Filename.dirname path in
          t.vfs.Vfs.mkdir_p dir;
          t.tmp_seq <- t.tmp_seq + 1;
          let tmp =
            Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) t.tmp_seq
          in
          let h = t.vfs.Vfs.create tmp in
          (try
             h.Vfs.h_write bytes;
             (* The rename only makes the object visible; in strict mode
                fsync first so visibility implies media durability. *)
             if t.fsync then h.Vfs.h_fsync ();
             h.Vfs.h_close ()
           with e ->
             h.Vfs.h_close ();
             (try t.vfs.Vfs.remove tmp
              with Sys_error _ ->
                (* The temp file may outlive us as garbage; GC sweeps it.
                   Counted, not silent (docs/METRICS.md, store.io_error). *)
                note_io_error t);
             raise e);
          t.vfs.Vfs.rename tmp path;
          (* A rename is not durable until its directory is. *)
          if t.fsync then t.vfs.Vfs.fsync_dir dir
        end)
  end;
  d

(** Read the object named [digest].  With [~verify:true] (the default)
    the content is re-hashed and checked against its name, raising
    {!Corrupt} on mismatch — recovery always verifies, because the object
    may predate this process and anything could have happened to the disk
    in between.  The hot rehydrate path passes [~verify:false] for blocks
    this same process spilled moments earlier through temp-write + rename,
    where re-hashing tens of kilobytes would double the spill cycle's CPU
    cost; blocks adopted across a crash boundary are always verified.
    Raises [Sys_error] when the object is absent. *)
let get ?(verify = true) t digest =
  let bytes = t.vfs.Vfs.read_file (object_path t digest) in
  if verify then begin
    let actual = Sha256.hex_digest bytes in
    if not (String.equal actual digest) then
      raise
        (Corrupt
           (Printf.sprintf "object %s: content hashes to %s" digest actual))
  end;
  bytes

(** Move the object named [digest] out of the addressable namespace into
    [<root>/quarantine/<digest>], writing a [.why] sidecar with the
    failure cause.  Used by recovery for bytes that exist but cannot be
    trusted: the evidence is preserved for forensics, while the object
    directory and checkpoint drop the instance (docs/STORAGE.md "Failure
    model").  Idempotent — re-quarantining the same digest overwrites the
    same quarantine entry.  The object's disappearance from [objects/] is
    best-effort (a failing remove is counted, and GC retries later);
    its appearance in [quarantine/] is what recovery keys on. *)
let quarantine t ~digest ~why =
  let qdir = quarantine_dir t.root in
  t.vfs.Vfs.mkdir_p qdir;
  let qpath = quarantine_path t digest in
  let opath = object_path t digest in
  (* Preserve the evidence bytes if they are still producible at all;
     a raw read that itself fails leaves an empty quarantine body. *)
  let bytes = try t.vfs.Vfs.read_file opath with _ -> "" in
  let h = t.vfs.Vfs.create qpath in
  (try
     h.Vfs.h_write bytes;
     if t.fsync then h.Vfs.h_fsync ();
     h.Vfs.h_close ()
   with e ->
     h.Vfs.h_close ();
     raise e);
  let hw = t.vfs.Vfs.create (qpath ^ ".why") in
  (try
     hw.Vfs.h_write (Printf.sprintf "digest: %s\nreason: %s\n" digest why);
     if t.fsync then hw.Vfs.h_fsync ();
     hw.Vfs.h_close ()
   with e ->
     hw.Vfs.h_close ();
     raise e);
  if t.fsync then t.vfs.Vfs.fsync_dir qdir;
  (try if t.vfs.Vfs.file_exists opath then t.vfs.Vfs.remove opath
   with Sys_error _ -> note_io_error t);
  qpath

let quarantined t digest = t.vfs.Vfs.file_exists (quarantine_path t digest)

(* ---- reference counts and GC ---- *)

let incr_ref t digest =
  Mutex.lock t.mutex;
  Hashtbl.replace t.refs digest
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.refs digest));
  Mutex.unlock t.mutex

let decr_ref t digest =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.refs digest with
  | Some n when n > 1 -> Hashtbl.replace t.refs digest (n - 1)
  | Some _ -> Hashtbl.remove t.refs digest
  | None -> ());
  Mutex.unlock t.mutex

let refcount t digest =
  Mutex.lock t.mutex;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.refs digest) in
  Mutex.unlock t.mutex;
  n

let iter_objects t f =
  let odir = objects_dir t.root in
  if t.vfs.Vfs.file_exists odir then
    Array.iter
      (fun prefix ->
        let pdir = Filename.concat odir prefix in
        if t.vfs.Vfs.is_directory pdir then
          Array.iter
            (fun name ->
              (* Skip temp droppings from crashed puts. *)
              if String.length name = 64 then f name)
            (t.vfs.Vfs.readdir pdir))
      (t.vfs.Vfs.readdir odir)

(** Delete every object whose refcount is zero (including torn temp files
    from crashed puts); returns the number of files actually reclaimed.
    Only sound when {!t.refs} reflects the journal — see the module
    header. *)
let gc t =
  let reclaimed = ref 0 in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let odir = objects_dir t.root in
      if t.vfs.Vfs.file_exists odir then
        Array.iter
          (fun prefix ->
            let pdir = Filename.concat odir prefix in
            if t.vfs.Vfs.is_directory pdir then
              Array.iter
                (fun name ->
                  let live =
                    String.length name = 64
                    && Option.value ~default:0 (Hashtbl.find_opt t.refs name)
                       > 0
                  in
                  if not live then begin
                    match t.vfs.Vfs.remove (Filename.concat pdir name) with
                    | () -> incr reclaimed
                    | exception Sys_error _ ->
                        (* Unreclaimed garbage, not a correctness issue;
                           counted so a sick disk shows up in the sheets. *)
                        note_io_error t
                  end)
                (t.vfs.Vfs.readdir pdir))
          (t.vfs.Vfs.readdir odir));
  !reclaimed
