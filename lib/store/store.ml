(** The content-addressed object store (docs/STORAGE.md).

    Objects are immutable byte strings named by their SHA-256:

    {v <root>/objects/<d[0..1]>/<d>   where d = hex_digest(bytes) v}

    Content addressing buys three properties the spill tier leans on:

    - {b write-once}: an object file, once present, never changes — the
      durable mirror of the k-LSM's blocks-are-immutable-once-published
      invariant (paper §4), and the reason concurrent spills of identical
      content dedup to one file with no coordination;
    - {b self-verifying reads}: {!get} re-hashes what it read and raises
      {!Corrupt} on mismatch, so disk corruption is a checked failure, never
      a silently wrong queue;
    - {b idempotent recovery}: replaying a journal can only re-reference
      objects, never conflict on names.

    Writes go through a temp file in the same directory followed by
    [Unix.rename], so a crash mid-{!put} leaves either no object or a whole
    one — a torn tail can only exist under a name that doesn't match its
    digest, and {!get}/{!gc} treat such files as garbage.

    Liveness is {e reference counts} held in memory and derived from the
    journal (lib/store [Journal]): one reference per live spilled block
    instance.  {!gc} removes object files whose count is zero or absent.
    The table is only meaningful when it was populated by this process —
    either because it performed the spills, or because [Spill.recover]
    seeded it from the journal; calling {!gc} on a freshly opened store
    without recovery would reclaim everything. *)

exception Corrupt of string

type t = {
  root : string;
  fsync : bool;  (** fsync objects before rename (strict durability mode) *)
  mutex : Mutex.t;  (** serializes puts and refcount updates across domains *)
  refs : (string, int) Hashtbl.t;  (** digest -> live block instances *)
  mutable tmp_seq : int;  (** unique temp-file names under [mutex] *)
}

let objects_dir root = Filename.concat root "objects"
let journal_dir root = Filename.concat root "journal"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Store: %S exists and is not a directory" dir)

(** [fsync] forces objects to media before the rename publishes them —
    the strict durability mode.  The default flushes to the OS only,
    which the crash model (process kill, not power loss; see [Journal])
    makes sufficient and keeps {!put} off the fsync cliff. *)
let open_store ?(fsync = false) ~root () =
  mkdir_p (objects_dir root);
  mkdir_p (journal_dir root);
  {
    root;
    fsync;
    mutex = Mutex.create ();
    refs = Hashtbl.create 64;
    tmp_seq = 0;
  }

let root t = t.root

let object_path t digest =
  if String.length digest < 3 then invalid_arg "Store: malformed digest";
  Filename.concat
    (Filename.concat (objects_dir t.root) (String.sub digest 0 2))
    digest

let contains t digest = Sys.file_exists (object_path t digest)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Store [bytes]; returns their hex digest.  Idempotent: if the object
    already exists the bytes are not rewritten (their content is equal by
    construction).  The temp-write + rename keeps the object directory free
    of torn files whatever happens mid-call. *)
let put t bytes =
  let d = Sha256.hex_digest bytes in
  let path = object_path t d in
  if not (Sys.file_exists path) then begin
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        if not (Sys.file_exists path) then begin
          mkdir_p (Filename.dirname path);
          t.tmp_seq <- t.tmp_seq + 1;
          let tmp =
            Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) t.tmp_seq
          in
          let oc = open_out_bin tmp in
          (try
             output_string oc bytes;
             flush oc;
             (* The rename only makes the object visible; in strict mode
                fsync first so visibility implies media durability. *)
             if t.fsync then Unix.fsync (Unix.descr_of_out_channel oc);
             close_out oc
           with e ->
             close_out_noerr oc;
             (try Sys.remove tmp with Sys_error _ -> ());
             raise e);
          Unix.rename tmp path
        end)
  end;
  d

(** Read the object named [digest].  With [~verify:true] (the default)
    the content is re-hashed and checked against its name, raising
    {!Corrupt} on mismatch — recovery always verifies, because the object
    may predate this process and anything could have happened to the disk
    in between.  The hot rehydrate path passes [~verify:false]: there the
    object was written by this same process moments earlier through
    temp-write + rename, and re-hashing tens of kilobytes would double the
    spill cycle's CPU cost for no added integrity.  Raises [Sys_error]
    when the object is absent. *)
let get ?(verify = true) t digest =
  let bytes = read_file (object_path t digest) in
  if verify then begin
    let actual = Sha256.hex_digest bytes in
    if not (String.equal actual digest) then
      raise
        (Corrupt
           (Printf.sprintf "object %s: content hashes to %s" digest actual))
  end;
  bytes

(* ---- reference counts and GC ---- *)

let incr_ref t digest =
  Mutex.lock t.mutex;
  Hashtbl.replace t.refs digest
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.refs digest));
  Mutex.unlock t.mutex

let decr_ref t digest =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.refs digest with
  | Some n when n > 1 -> Hashtbl.replace t.refs digest (n - 1)
  | Some _ -> Hashtbl.remove t.refs digest
  | None -> ());
  Mutex.unlock t.mutex

let refcount t digest =
  Mutex.lock t.mutex;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.refs digest) in
  Mutex.unlock t.mutex;
  n

let iter_objects t f =
  let odir = objects_dir t.root in
  if Sys.file_exists odir then
    Array.iter
      (fun prefix ->
        let pdir = Filename.concat odir prefix in
        if Sys.is_directory pdir then
          Array.iter
            (fun name ->
              (* Skip temp droppings from crashed puts. *)
              if String.length name = 64 then f name)
            (Sys.readdir pdir))
      (Sys.readdir odir)

(** Delete every object whose refcount is zero (including torn temp files
    from crashed puts); returns the number of files reclaimed.  Only sound
    when {!t.refs} reflects the journal — see the module header. *)
let gc t =
  let reclaimed = ref 0 in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let odir = objects_dir t.root in
      if Sys.file_exists odir then
        Array.iter
          (fun prefix ->
            let pdir = Filename.concat odir prefix in
            if Sys.is_directory pdir then
              Array.iter
                (fun name ->
                  let live =
                    String.length name = 64
                    && Option.value ~default:0 (Hashtbl.find_opt t.refs name)
                       > 0
                  in
                  if not live then begin
                    (try Sys.remove (Filename.concat pdir name)
                     with Sys_error _ -> ());
                    incr reclaimed
                  end)
                (Sys.readdir pdir))
          (Sys.readdir odir));
  !reclaimed
