(** The crash-recovery journal (docs/STORAGE.md).

    The durable state of a spill-enabled queue is a {e multiset of live
    spilled-block instances}, and the journal is its event log.  Every
    spilled block gets a fresh {b instance id} [t<tid>.<seq>] (unique per
    journal lifetime), and three record kinds move an instance through its
    life cycle:

    - [S <iid> <digest> <level> <count>] — block instance [iid] with the
      given content digest became durable and live (appended {e after} the
      object file is on disk, {e before} the in-RAM queue links the spilled
      block);
    - [R <iid> <digest>] — instance [iid] was rehydrated: its items are
      back in RAM and may be delivered from there (appended {e before} any
      rehydrated item can be returned by a delete-min);
    - [L <iid> <digest>] — instance [iid] was released without rehydration
      (e.g. every item was logically deleted cold).

    An instance is live iff its [S] has no matching [R]/[L].  [Spill.recover]
    replays the log and reinserts exactly the live instances — the ordering
    of appends above is what makes "no lost, no duplicated, no resurrected"
    hold across a kill at {e any} point (failure matrix in docs/STORAGE.md).

    {b Layout}: each thread appends its [S] records to its own
    [spill-<tid>.log] (single-writer, no locking); [R]/[L] can fire on any
    thread and go to a shared [events.log] under a mutex; checkpoints write
    [epoch.log].  Replay order across files is irrelevant — liveness is a
    per-instance predicate.

    {b Torn tails}: every line carries an 8-hex-char SHA-256 checksum over
    its payload.  A crash mid-append leaves a torn last line, which replay
    detects and skips; records are self-contained so nothing else is lost.
    Replay is line-by-line salvage, never all-or-nothing: a file with bad
    lines is re-read once (transient read corruption heals; persistent
    rot doesn't) and the surviving lines are used either way.  A file
    that cannot be read at all is counted in [replay.unreadable_files] —
    recovery then refuses to checkpoint (never compact what could not be
    fully read) and {!open_journal} refuses to mint instance ids over it.

    {b Checkpoints} ([epoch.log], written by recovery when the queue is
    quiescent) compact the log: the live instances are rewritten — with
    their {e original} instance ids — under a new epoch header, then the
    per-thread and event logs are deleted.  Keeping original ids makes the
    checkpoint idempotent under crashes: if the process dies between the
    epoch rename and the log deletions, replay sees some instances twice
    (epoch + old log) and deduplicates by id.  In strict mode the journal
    directory is fsynced {e between} the epoch rename and the log
    deletions — deleting the only copy of the live set before its
    replacement is durable is how a power loss loses everything.  Fresh
    writers scan existing records at open time and continue above the
    largest sequence number seen, so ids never recycle.

    All I/O goes through the {!Vfs} seam (default: the passthrough). *)

type record =
  | Spill of { iid : string; digest : string; level : int; count : int }
  | Rehydrate of { iid : string; digest : string }
  | Release of { iid : string; digest : string }
  | Epoch of int  (** checkpoint generation header *)

module Obs = Klsm_obs.Obs

(* Same interned name as Store/Spill (docs/METRICS.md). *)
let c_io_error = Obs.counter "store.io_error"

(* A log writer remembers whether its last append failed: a short write
   leaves a torn tail that the {e next} append would otherwise glue onto,
   corrupting an innocent record along with the torn one (found by
   bin/torture.exe's shortwrite grid).  A tainted writer terminates the
   tail with a bare newline before the next record; replay skips blank
   lines for free. *)
type writer = { wh : Vfs.handle; mutable torn_tail : bool }

type t = {
  dir : string;
  num_threads : int;
  fsync : bool;
  vfs : Vfs.t;
  writers : writer option array;  (** per-tid spill log, lazily opened *)
  next_seq : int array;
  mutable events : writer option;  (** shared rehydrate/release log *)
  ev_mutex : Mutex.t;
  mutable obs : Obs.handle;  (** sink for [store.io_error] increments *)
}

let dir j = j.dir
let set_obs j h = j.obs <- h
let note_io_error j = Obs.incr j.obs c_io_error

let spill_log dir tid = Filename.concat dir (Printf.sprintf "spill-%d.log" tid)
let events_log dir = Filename.concat dir "events.log"
let epoch_log dir = Filename.concat dir "epoch.log"

(* ---- line format ---- *)

let payload_of_record = function
  | Spill { iid; digest; level; count } ->
      Printf.sprintf "S %s %s %d %d" iid digest level count
  | Rehydrate { iid; digest } -> Printf.sprintf "R %s %s" iid digest
  | Release { iid; digest } -> Printf.sprintf "L %s %s" iid digest
  | Epoch gen -> Printf.sprintf "E %d" gen

let line_of_record r =
  let p = payload_of_record r in
  Printf.sprintf "%s %s\n" p (Sha256.line_checksum p)

(** Parse one line; [None] for torn, corrupt, or foreign lines. *)
let record_of_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
      let payload = String.sub line 0 i in
      let crc = String.sub line (i + 1) (String.length line - i - 1) in
      if not (String.equal crc (Sha256.line_checksum payload)) then None
      else begin
        match String.split_on_char ' ' payload with
        | [ "S"; iid; digest; level; count ] -> (
            match (int_of_string_opt level, int_of_string_opt count) with
            | Some level, Some count when count >= 0 ->
                Some (Spill { iid; digest; level; count })
            | _ -> None)
        | [ "R"; iid; digest ] -> Some (Rehydrate { iid; digest })
        | [ "L"; iid; digest ] -> Some (Release { iid; digest })
        | [ "E"; gen ] ->
            Option.map (fun g -> Epoch g) (int_of_string_opt gen)
        | _ -> None
      end

(* ---- replay ---- *)

type replay = {
  records : record list;
  torn_lines : int;  (** unparseable lines skipped (torn tails, rot) *)
  unreadable_files : int;  (** journal files whose read itself failed *)
  reread_retries : int;  (** files re-read after bad lines or a failed read *)
}

let parse_content content =
  let records = ref [] and bad = ref 0 in
  List.iter
    (fun line ->
      if String.length line > 0 then begin
        match record_of_line line with
        | Some r -> records := r :: !records
        | None -> incr bad
      end)
    (String.split_on_char '\n' content);
  (List.rev !records, !bad)

(* Read one journal file, salvaging line-by-line.  A read error or a
   file with bad lines gets exactly one retry: transient faults (the
   Faulty vfs's one-shot EIO or bit flip, a real disk's soft error)
   heal on the second read; persistent damage is taken as-is.  The
   better of the two attempts wins. *)
let read_one vfs path =
  if not (vfs.Vfs.file_exists path) then (Some [], 0, 0)
  else
    let attempt () =
      match vfs.Vfs.read_file path with
      | content -> Some (parse_content content)
      | exception Sys_error _ -> None
    in
    match attempt () with
    | Some (records, 0) -> (Some records, 0, 0)
    | first -> (
        (* Something was off — bad lines or a failed read.  Retry once. *)
        match (first, attempt ()) with
        | _, Some (records, 0) -> (Some records, 0, 1)
        | Some (r1, b1), Some (r2, b2) ->
            if b2 < b1 then (Some r2, b2, 1) else (Some r1, b1, 1)
        | Some (r1, b1), None -> (Some r1, b1, 1)
        | None, Some (r2, b2) -> (Some r2, b2, 1)
        | None, None -> (None, 0, 1))

(** Every record under [dir] (epoch first, then per-thread spill logs, then
    events), with salvage accounting.  Never raises on torn or unreadable
    state — recovery's totality starts here. *)
let read_all ?(vfs = Vfs.real) ~dir () =
  let records = ref [] in
  let torn = ref 0 and unreadable = ref 0 and rereads = ref 0 in
  let file path =
    let recs, bad, retried = read_one vfs path in
    torn := !torn + bad;
    rereads := !rereads + retried;
    match recs with
    | Some rs -> records := !records @ rs
    | None -> incr unreadable
  in
  file (epoch_log dir);
  if vfs.Vfs.file_exists dir then
    Array.iter
      (fun name ->
        if
          String.length name > 6
          && String.sub name 0 6 = "spill-"
          && Filename.check_suffix name ".log"
        then file (Filename.concat dir name))
      (vfs.Vfs.readdir dir);
  file (events_log dir);
  {
    records = !records;
    torn_lines = !torn;
    unreadable_files = !unreadable;
    reread_retries = !rereads;
  }

type live = { iid : string; digest : string; level : int; count : int }

(** The live instance multiset: spilled, deduplicated by instance id (a
    checkpoint interrupted before log deletion replays some [S] twice), and
    not rehydrated or released.  Order follows first [S] appearance. *)
let live_instances records =
  let spilled = Hashtbl.create 64 in
  let dead = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      match r with
      | Spill { iid; digest; level; count } ->
          if not (Hashtbl.mem spilled iid) then begin
            Hashtbl.replace spilled iid { iid; digest; level; count };
            order := iid :: !order
          end
      | Rehydrate { iid; _ } | Release { iid; _ } ->
          Hashtbl.replace dead iid ()
      | Epoch _ -> ())
    records;
  List.filter_map
    (fun iid ->
      if Hashtbl.mem dead iid then None else Hashtbl.find_opt spilled iid)
    (List.rev !order)

let max_epoch records =
  List.fold_left (fun acc r -> match r with Epoch g -> max acc g | _ -> acc) 0
    records

(* ---- writers ---- *)

let iid_seq iid =
  (* "t<tid>.<seq>" -> (tid, seq); None for ids we didn't mint. *)
  match String.index_opt iid '.' with
  | Some i when String.length iid > 1 && iid.[0] = 't' -> (
      match
        ( int_of_string_opt (String.sub iid 1 (i - 1)),
          int_of_string_opt
            (String.sub iid (i + 1) (String.length iid - i - 1)) )
      with
      | Some tid, Some seq -> Some (tid, seq)
      | _ -> None)
  | _ -> None

(** Open the journal under [dir] for [num_threads] writer slots.  Existing
    records (a prior run's epoch or logs) are scanned so new instance ids
    start above anything already on disk; if any journal file cannot be
    read even after a retry this {e refuses to open} ([Sys_error]) —
    minting ids over records we could not see risks recycling a live
    instance id, the one corruption replay cannot detect.  [fsync] forces
    an fsync per append — the strict durability mode; the default flushes
    to the OS, which the crash model of the chaos tests (process kill, not
    power loss) makes sufficient and keeps the spill path off the fsync
    cliff. *)
let open_journal ?(fsync = false) ?(vfs = Vfs.real) ~dir ~num_threads () =
  vfs.Vfs.mkdir_p dir;
  let next_seq = Array.make num_threads 0 in
  let replay = read_all ~vfs ~dir () in
  if replay.unreadable_files > 0 then
    raise
      (Sys_error
         (Printf.sprintf
            "%s: %d journal file(s) unreadable at open; refusing to mint \
             instance ids over records we could not see"
            dir replay.unreadable_files));
  List.iter
    (fun r ->
      match r with
      | Spill { iid; _ } | Rehydrate { iid; _ } | Release { iid; _ } -> (
          match iid_seq iid with
          | Some (tid, seq) when tid >= 0 && tid < num_threads ->
              if seq >= next_seq.(tid) then next_seq.(tid) <- seq + 1
          | _ -> ())
      | Epoch _ -> ())
    replay.records;
  {
    dir;
    num_threads;
    fsync;
    vfs;
    writers = Array.make num_threads None;
    next_seq;
    events = None;
    ev_mutex = Mutex.create ();
    obs = Obs.null_handle;
  }

let append_handle j w r =
  if w.torn_tail then begin
    (* The previous append failed and may have left a torn tail on this
       log; terminate it so this record starts on a fresh line.  The
       taint clears only once a write goes through. *)
    w.wh.Vfs.h_write "\n";
    w.torn_tail <- false
  end;
  (match w.wh.Vfs.h_write (line_of_record r) with
  | () -> ()
  | exception e ->
      w.torn_tail <- true;
      raise e);
  if j.fsync then w.wh.Vfs.h_fsync ()

(** Record a spill on [tid]'s private log; returns the fresh instance id.
    Single-writer per log: no locking, no cross-thread coherence. *)
let append_spill j ~tid ~digest ~level ~count =
  if tid < 0 || tid >= j.num_threads then invalid_arg "Journal: tid";
  let w =
    match j.writers.(tid) with
    | Some w -> w
    | None ->
        let w =
          { wh = j.vfs.Vfs.open_append (spill_log j.dir tid); torn_tail = false }
        in
        j.writers.(tid) <- Some w;
        w
  in
  let iid = Printf.sprintf "t%d.%d" tid j.next_seq.(tid) in
  j.next_seq.(tid) <- j.next_seq.(tid) + 1;
  append_handle j w (Spill { iid; digest; level; count });
  iid

let append_event j r =
  Mutex.lock j.ev_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock j.ev_mutex)
    (fun () ->
      let w =
        match j.events with
        | Some w -> w
        | None ->
            let w =
              { wh = j.vfs.Vfs.open_append (events_log j.dir); torn_tail = false }
            in
            j.events <- Some w;
            w
      in
      append_handle j w r)

(** Record a rehydration.  Must land on disk {e before} any item decoded
    from the object is observable by a delete-min — the no-resurrection
    half of the recovery argument. *)
let append_rehydrate j ~iid ~digest = append_event j (Rehydrate { iid; digest })

(** Record a no-rehydration release (dead-cold block dropped). *)
let append_release j ~iid ~digest = append_event j (Release { iid; digest })

let close_writers j =
  Array.iteri
    (fun i w ->
      match w with
      | Some w ->
          (try w.wh.Vfs.h_close () with _ -> ());
          j.writers.(i) <- None
      | None -> ())
    j.writers;
  (match j.events with
  | Some w ->
      (try w.wh.Vfs.h_close () with _ -> ());
      j.events <- None
  | None -> ())

let close j = close_writers j

(** Compact the journal to exactly [live] (original instance ids kept; see
    the module header for why that makes an interrupted checkpoint safe):
    write [epoch.log] via temp + rename, then delete the per-thread and
    event logs.  In strict mode the directory is fsynced after the rename
    and {e before} the deletions — the old logs are the only durable copy
    of the live set until the new epoch's rename is on media.  Caller
    must be quiescent (recovery is). *)
let checkpoint j ~live =
  let replay = read_all ~vfs:j.vfs ~dir:j.dir () in
  let gen = 1 + max_epoch replay.records in
  let tmp = epoch_log j.dir ^ ".tmp" in
  let h = j.vfs.Vfs.create tmp in
  (try
     h.Vfs.h_write (line_of_record (Epoch gen));
     List.iter
       (fun { iid; digest; level; count } ->
         h.Vfs.h_write (line_of_record (Spill { iid; digest; level; count })))
       live;
     h.Vfs.h_fsync ();
     h.Vfs.h_close ()
   with e ->
     (try h.Vfs.h_close () with _ -> ());
     (try j.vfs.Vfs.remove tmp with Sys_error _ -> note_io_error j);
     raise e);
  j.vfs.Vfs.rename tmp (epoch_log j.dir);
  if j.fsync then j.vfs.Vfs.fsync_dir j.dir;
  close_writers j;
  Array.iter
    (fun name ->
      let stale =
        (String.length name > 6 && String.sub name 0 6 = "spill-"
        && Filename.check_suffix name ".log")
        || String.equal name "events.log"
      in
      if stale then begin
        try j.vfs.Vfs.remove (Filename.concat j.dir name)
        with Sys_error _ ->
          (* Stale-but-undeletable logs are harmless (replay dedups by
             iid); counted so a sick disk shows up (docs/METRICS.md). *)
          note_io_error j
      end)
    (j.vfs.Vfs.readdir j.dir);
  if j.fsync then j.vfs.Vfs.fsync_dir j.dir;
  gen
