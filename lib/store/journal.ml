(** The crash-recovery journal (docs/STORAGE.md).

    The durable state of a spill-enabled queue is a {e multiset of live
    spilled-block instances}, and the journal is its event log.  Every
    spilled block gets a fresh {b instance id} [t<tid>.<seq>] (unique per
    journal lifetime), and three record kinds move an instance through its
    life cycle:

    - [S <iid> <digest> <level> <count>] — block instance [iid] with the
      given content digest became durable and live (appended {e after} the
      object file is on disk, {e before} the in-RAM queue links the spilled
      block);
    - [R <iid> <digest>] — instance [iid] was rehydrated: its items are
      back in RAM and may be delivered from there (appended {e before} any
      rehydrated item can be returned by a delete-min);
    - [L <iid> <digest>] — instance [iid] was released without rehydration
      (e.g. every item was logically deleted cold).

    An instance is live iff its [S] has no matching [R]/[L].  [Store.recover]
    replays the log and reinserts exactly the live instances — the ordering
    of appends above is what makes "no lost, no duplicated, no resurrected"
    hold across a kill at {e any} point (failure matrix in docs/STORAGE.md).

    {b Layout}: each thread appends its [S] records to its own
    [spill-<tid>.log] (single-writer, no locking); [R]/[L] can fire on any
    thread and go to a shared [events.log] under a mutex; checkpoints write
    [epoch.log].  Replay order across files is irrelevant — liveness is a
    per-instance predicate.

    {b Torn tails}: every line carries an 8-hex-char SHA-256 checksum over
    its payload.  A crash mid-append leaves a torn last line, which replay
    detects and skips; records are self-contained so nothing else is lost.

    {b Checkpoints} ([epoch.log], written by recovery when the queue is
    quiescent) compact the log: the live instances are rewritten — with
    their {e original} instance ids — under a new epoch header, then the
    per-thread and event logs are deleted.  Keeping original ids makes the
    checkpoint idempotent under crashes: if the process dies between the
    epoch rename and the log deletions, replay sees some instances twice
    (epoch + old log) and deduplicates by id.  Fresh writers scan existing
    records at open time and continue above the largest sequence number
    seen, so ids never recycle. *)

type record =
  | Spill of { iid : string; digest : string; level : int; count : int }
  | Rehydrate of { iid : string; digest : string }
  | Release of { iid : string; digest : string }
  | Epoch of int  (** checkpoint generation header *)

type t = {
  dir : string;
  num_threads : int;
  fsync : bool;
  writers : out_channel option array;  (** per-tid spill log, lazily opened *)
  next_seq : int array;
  mutable events : out_channel option;  (** shared rehydrate/release log *)
  ev_mutex : Mutex.t;
}

let dir j = j.dir

let spill_log dir tid = Filename.concat dir (Printf.sprintf "spill-%d.log" tid)
let events_log dir = Filename.concat dir "events.log"
let epoch_log dir = Filename.concat dir "epoch.log"

(* ---- line format ---- *)

let payload_of_record = function
  | Spill { iid; digest; level; count } ->
      Printf.sprintf "S %s %s %d %d" iid digest level count
  | Rehydrate { iid; digest } -> Printf.sprintf "R %s %s" iid digest
  | Release { iid; digest } -> Printf.sprintf "L %s %s" iid digest
  | Epoch gen -> Printf.sprintf "E %d" gen

let line_of_record r =
  let p = payload_of_record r in
  Printf.sprintf "%s %s\n" p (Sha256.line_checksum p)

(** Parse one line; [None] for torn, corrupt, or foreign lines. *)
let record_of_line line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
      let payload = String.sub line 0 i in
      let crc = String.sub line (i + 1) (String.length line - i - 1) in
      if not (String.equal crc (Sha256.line_checksum payload)) then None
      else begin
        match String.split_on_char ' ' payload with
        | [ "S"; iid; digest; level; count ] -> (
            match (int_of_string_opt level, int_of_string_opt count) with
            | Some level, Some count when count >= 0 ->
                Some (Spill { iid; digest; level; count })
            | _ -> None)
        | [ "R"; iid; digest ] -> Some (Rehydrate { iid; digest })
        | [ "L"; iid; digest ] -> Some (Release { iid; digest })
        | [ "E"; gen ] ->
            Option.map (fun g -> Epoch g) (int_of_string_opt gen)
        | _ -> None
      end

(* ---- replay ---- *)

let read_records_of_file path acc bad =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.length line > 0 then begin
              match record_of_line line with
              | Some r -> acc := r :: !acc
              | None -> incr bad
            end
          done
        with End_of_file -> ())
  end

(** Every record under [dir] (epoch first, then per-thread spill logs, then
    events), plus the count of unparseable lines skipped (torn tails). *)
let read_all ~dir =
  let acc = ref [] and bad = ref 0 in
  read_records_of_file (epoch_log dir) acc bad;
  if Sys.file_exists dir then
    Array.iter
      (fun name ->
        if
          String.length name > 6
          && String.sub name 0 6 = "spill-"
          && Filename.check_suffix name ".log"
        then read_records_of_file (Filename.concat dir name) acc bad)
      (Sys.readdir dir);
  read_records_of_file (events_log dir) acc bad;
  (List.rev !acc, !bad)

type live = { iid : string; digest : string; level : int; count : int }

(** The live instance multiset: spilled, deduplicated by instance id (a
    checkpoint interrupted before log deletion replays some [S] twice), and
    not rehydrated or released.  Order follows first [S] appearance. *)
let live_instances records =
  let spilled = Hashtbl.create 64 in
  let dead = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      match r with
      | Spill { iid; digest; level; count } ->
          if not (Hashtbl.mem spilled iid) then begin
            Hashtbl.replace spilled iid { iid; digest; level; count };
            order := iid :: !order
          end
      | Rehydrate { iid; _ } | Release { iid; _ } ->
          Hashtbl.replace dead iid ()
      | Epoch _ -> ())
    records;
  List.filter_map
    (fun iid ->
      if Hashtbl.mem dead iid then None else Hashtbl.find_opt spilled iid)
    (List.rev !order)

let max_epoch records =
  List.fold_left (fun acc r -> match r with Epoch g -> max acc g | _ -> acc) 0
    records

(* ---- writers ---- *)

let iid_seq iid =
  (* "t<tid>.<seq>" -> (tid, seq); None for ids we didn't mint. *)
  match String.index_opt iid '.' with
  | Some i when String.length iid > 1 && iid.[0] = 't' -> (
      match
        ( int_of_string_opt (String.sub iid 1 (i - 1)),
          int_of_string_opt
            (String.sub iid (i + 1) (String.length iid - i - 1)) )
      with
      | Some tid, Some seq -> Some (tid, seq)
      | _ -> None)
  | _ -> None

(** Open the journal under [dir] for [num_threads] writer slots.  Existing
    records (a prior run's epoch or logs) are scanned so new instance ids
    start above anything already on disk.  [fsync] forces an fsync per
    append — the strict durability mode; the default flushes to the OS,
    which the crash model of the chaos tests (process kill, not power
    loss) makes sufficient and keeps the spill path off the fsync cliff. *)
let open_journal ?(fsync = false) ~dir ~num_threads () =
  Store.mkdir_p dir;
  let next_seq = Array.make num_threads 0 in
  let records, _ = read_all ~dir in
  List.iter
    (fun r ->
      match r with
      | Spill { iid; _ } | Rehydrate { iid; _ } | Release { iid; _ } -> (
          match iid_seq iid with
          | Some (tid, seq) when tid >= 0 && tid < num_threads ->
              if seq >= next_seq.(tid) then next_seq.(tid) <- seq + 1
          | _ -> ())
      | Epoch _ -> ())
    records;
  {
    dir;
    num_threads;
    fsync;
    writers = Array.make num_threads None;
    next_seq;
    events = None;
    ev_mutex = Mutex.create ();
  }

let append_channel j ch r =
  output_string ch (line_of_record r);
  flush ch;
  if j.fsync then Unix.fsync (Unix.descr_of_out_channel ch)

let open_append path =
  open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path

(** Record a spill on [tid]'s private log; returns the fresh instance id.
    Single-writer per log: no locking, no cross-thread coherence. *)
let append_spill j ~tid ~digest ~level ~count =
  if tid < 0 || tid >= j.num_threads then invalid_arg "Journal: tid";
  let ch =
    match j.writers.(tid) with
    | Some ch -> ch
    | None ->
        let ch = open_append (spill_log j.dir tid) in
        j.writers.(tid) <- Some ch;
        ch
  in
  let iid = Printf.sprintf "t%d.%d" tid j.next_seq.(tid) in
  j.next_seq.(tid) <- j.next_seq.(tid) + 1;
  append_channel j ch (Spill { iid; digest; level; count });
  iid

let append_event j r =
  Mutex.lock j.ev_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock j.ev_mutex)
    (fun () ->
      let ch =
        match j.events with
        | Some ch -> ch
        | None ->
            let ch = open_append (events_log j.dir) in
            j.events <- Some ch;
            ch
      in
      append_channel j ch r)

(** Record a rehydration.  Must land on disk {e before} any item decoded
    from the object is observable by a delete-min — the no-resurrection
    half of the recovery argument. *)
let append_rehydrate j ~iid ~digest = append_event j (Rehydrate { iid; digest })

(** Record a no-rehydration release (dead-cold block dropped). *)
let append_release j ~iid ~digest = append_event j (Release { iid; digest })

let close_writers j =
  Array.iteri
    (fun i ch ->
      match ch with
      | Some ch ->
          close_out_noerr ch;
          j.writers.(i) <- None
      | None -> ())
    j.writers;
  (match j.events with
  | Some ch ->
      close_out_noerr ch;
      j.events <- None
  | None -> ())

let close j = close_writers j

(** Compact the journal to exactly [live] (original instance ids kept; see
    the module header for why that makes an interrupted checkpoint safe):
    write [epoch.log] via temp + rename, then delete the per-thread and
    event logs.  Caller must be quiescent (recovery is). *)
let checkpoint j ~live =
  let records, _ = read_all ~dir:j.dir in
  let gen = 1 + max_epoch records in
  let tmp = epoch_log j.dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (line_of_record (Epoch gen));
     List.iter
       (fun { iid; digest; level; count } ->
         output_string oc (line_of_record (Spill { iid; digest; level; count })))
       live;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp (epoch_log j.dir);
  close_writers j;
  Array.iter
    (fun name ->
      let stale =
        (String.length name > 6 && String.sub name 0 6 = "spill-"
        && Filename.check_suffix name ".log")
        || String.equal name "events.log"
      in
      if stale then
        try Sys.remove (Filename.concat j.dir name) with Sys_error _ -> ())
    (Sys.readdir j.dir);
  gen
