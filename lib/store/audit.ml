(** The recovery audit report (docs/STORAGE.md "Failure model").

    [Spill.recover] is {e total}: it never aborts, it classifies.  Every
    live journal instance it finds ends up in exactly one bucket —

    - {b Recovered}: object read, digest verified, codec decoded, cold
      block relinked into the fresh queue;
    - {b Quarantined}: the bytes exist but cannot be trusted (digest
      mismatch, codec corruption, journal/object disagreement); the file
      was moved to [<root>/quarantine/<digest>] next to a [.why] note and
      the instance was released by {e exclusion from the checkpoint};
    - {b Lost}: the bytes cannot currently be produced at all (missing
      file, persistent I/O errors after backoff); the instance is kept
      live in the checkpoint so a later recovery on a healthier disk can
      still retry it.

    The report is the machine-readable record of that classification —
    counts, item and byte accounting per bucket, retry/IO-error tallies —
    and the conservation oracle ([Klsm_harness.Oracle.store_conservation])
    checks its books: [recovered + quarantined + lost = spilled], in
    instances, items and bytes, with the per-entry lines summing to the
    totals.  [bin/torture.exe] asserts this across every cell of the fault
    grid. *)

type classification =
  | Recovered
  | Quarantined of string  (** why the bytes are untrustworthy *)
  | Lost of string  (** why the bytes are currently unproducible *)

type entry = {
  iid : string;  (** journal instance id, [t<tid>.<seq>] *)
  digest : string;
  level : int;
  count : int;  (** items the journal claims for this instance *)
  bytes : int;  (** encoded object size implied by [count] *)
  outcome : classification;
}

type t = {
  spilled : int;  (** live instances found in the journal replay *)
  recovered : int;
  quarantined : int;
  lost : int;
  spilled_items : int;
  recovered_items : int;
  quarantined_items : int;
  lost_items : int;
  spilled_bytes : int;
  recovered_bytes : int;
  quarantined_bytes : int;
  lost_bytes : int;
  retries : int;  (** backoff-mediated I/O retries during classification *)
  io_errors : int;  (** I/O errors observed (including each retried one) *)
  skipped_lines : int;  (** unparseable journal lines (torn tails) *)
  unreadable_files : int;  (** journal files that failed to read at all *)
  reread_retries : int;  (** journal files re-read after bad lines *)
  checkpoint_ok : bool;
      (** the compacting checkpoint landed (always skipped, and [false],
          when any journal file was unreadable — never compact what could
          not be fully read) *)
  gc_ran : bool;
      (** object GC ran — only when the pass was fully clean (no
          quarantined, lost, skipped or unreadable state) *)
  gc_reclaimed : int;
  entries : entry list;  (** one line per live instance, replay order *)
}

let classification_name = function
  | Recovered -> "recovered"
  | Quarantined _ -> "quarantined"
  | Lost _ -> "lost"

let classification_reason = function
  | Recovered -> ""
  | Quarantined why | Lost why -> why

(** Fully clean: every instance recovered and nothing about the journal
    itself was suspect.  This is the (only) state in which recovery lets
    GC loose on the object directory. *)
let clean t =
  t.quarantined = 0 && t.lost = 0 && t.skipped_lines = 0
  && t.unreadable_files = 0 && t.checkpoint_ok

let entry_to_string e =
  Printf.sprintf "%s %s level=%d count=%d bytes=%d %s%s" e.iid e.digest e.level
    e.count e.bytes
    (classification_name e.outcome)
    (match classification_reason e.outcome with
    | "" -> ""
    | why -> Printf.sprintf " (%s)" why)

let summary t =
  Printf.sprintf
    "spilled=%d recovered=%d quarantined=%d lost=%d items=%d/%d/%d/%d \
     bytes=%d/%d/%d/%d retries=%d io_errors=%d skipped=%d unreadable=%d \
     checkpoint=%b gc=%b"
    t.spilled t.recovered t.quarantined t.lost t.spilled_items
    t.recovered_items t.quarantined_items t.lost_items t.spilled_bytes
    t.recovered_bytes t.quarantined_bytes t.lost_bytes t.retries t.io_errors
    t.skipped_lines t.unreadable_files t.checkpoint_ok t.gc_ran

(* JSON without a JSON library, same hand-rolled style as bench/main.ml.
   Digests and iids are hex/alnum, reasons are our own messages; escape
   the two characters that could break a string anyway. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b " "
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let entry_to_json e =
  Printf.sprintf
    {|{"iid":"%s","digest":"%s","level":%d,"count":%d,"bytes":%d,"outcome":"%s","reason":"%s"}|}
    (json_escape e.iid) (json_escape e.digest) e.level e.count e.bytes
    (classification_name e.outcome)
    (json_escape (classification_reason e.outcome))

let to_json t =
  Printf.sprintf
    {|{"spilled":%d,"recovered":%d,"quarantined":%d,"lost":%d,"spilled_items":%d,"recovered_items":%d,"quarantined_items":%d,"lost_items":%d,"spilled_bytes":%d,"recovered_bytes":%d,"quarantined_bytes":%d,"lost_bytes":%d,"retries":%d,"io_errors":%d,"skipped_lines":%d,"unreadable_files":%d,"reread_retries":%d,"checkpoint_ok":%b,"gc_ran":%b,"gc_reclaimed":%d,"entries":[%s]}|}
    t.spilled t.recovered t.quarantined t.lost t.spilled_items
    t.recovered_items t.quarantined_items t.lost_items t.spilled_bytes
    t.recovered_bytes t.quarantined_bytes t.lost_bytes t.retries t.io_errors
    t.skipped_lines t.unreadable_files t.reread_retries t.checkpoint_ok
    t.gc_ran t.gc_reclaimed
    (String.concat "," (List.map entry_to_json t.entries))
