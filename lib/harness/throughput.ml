(** The paper's synthetic throughput benchmark (§6, Figure 3): threads
    hammer a prefilled queue with a 50-50 mix of inserts (uniform random
    keys) and delete-mins; the reported metric is throughput {e per thread}
    per second, so a flat line is linear scaling.

    Deviations from the paper, both deliberate (DESIGN.md §1.4): runs are
    bounded by an operation count rather than 10 wall seconds (determinism
    — essential under the simulator), and the default prefill is scaled
    down (paper scale reachable through the CLI). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Registry = Registry.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro

  type config = {
    num_threads : int;
    prefill : int;
    ops_per_thread : int;
    key_range : int;
    insert_ratio : float;  (** paper: 0.5 *)
    seed : int;
    workload : Workload.t;  (** key distribution; paper: uniform *)
  }

  let default_config =
    {
      num_threads = 1;
      prefill = 100_000;
      ops_per_thread = 50_000;
      key_range = 1 lsl 28;
      insert_ratio = 0.5;
      seed = 42;
      workload = Workload.Uniform (1 lsl 28);
    }

  type result = {
    spec : Registry.spec;
    config : config;
    total_ops : int;
    elapsed : float;  (** wall (real) or makespan (sim), seconds *)
    throughput_per_thread : float;
    failed_deletes : int;  (** delete-mins that returned [None] *)
    stats : Klsm_obs.Obs.snapshot;
        (** internal counters accumulated over prefill + timed phase; empty
            unless observability was enabled (lib/obs) *)
  }

  (** One benchmark run: prefill (untimed), then the timed mixed phase. *)
  let run config spec =
    let t = config.num_threads in
    if t < 1 then invalid_arg "Throughput.run";
    let instance = Registry.make ~seed:config.seed ~num_threads:t spec in
    let handles = Array.make t None in
    (* Prefill phase: split across all threads so per-thread structures
       (DLSM, Multi-Queue slots) start realistically populated. *)
    B.parallel_run ~num_threads:t (fun tid ->
        let h = instance.register tid in
        handles.(tid) <- Some h;
        let rng = Xoshiro.create ~seed:(config.seed + (7919 * tid)) in
        let next_key = Workload.generator config.workload rng in
        let share =
          (config.prefill / t) + if tid < config.prefill mod t then 1 else 0
        in
        for _ = 1 to share do
          h.Registry.insert (next_key ()) 0
        done);
    (* Timed phase. *)
    let failed = Array.make t 0 in
    let t0 = B.time () in
    B.parallel_run ~num_threads:t (fun tid ->
        let h = match handles.(tid) with Some h -> h | None -> assert false in
        let rng = Xoshiro.create ~seed:(config.seed + 13 + (104729 * tid)) in
        let next_key = Workload.generator config.workload rng in
        for _ = 1 to config.ops_per_thread do
          if Xoshiro.float rng < config.insert_ratio then
            h.Registry.insert (next_key ()) 0
          else begin
            match h.Registry.try_delete_min () with
            | Some _ -> ()
            | None -> failed.(tid) <- failed.(tid) + 1
          end
        done);
    let elapsed = B.time () -. t0 in
    let total_ops = t * config.ops_per_thread in
    {
      spec;
      config;
      total_ops;
      elapsed;
      throughput_per_thread =
        (if elapsed > 0. then
           float_of_int total_ops /. elapsed /. float_of_int t
         else Float.nan);
      failed_deletes = Array.fold_left ( + ) 0 failed;
      stats = instance.stats ();
    }

  (** Repeat [reps] times with distinct seeds; returns per-rep
      throughputs (for confidence intervals à la the paper's 30 reps). *)
  let run_reps ?(reps = 3) config spec =
    Array.init reps (fun r ->
        (run { config with seed = config.seed + (1009 * r) } spec)
          .throughput_per_thread)
end
