(** Plain-text experiment reporting: aligned tables (the textual analogue
    of the paper's figures) and CSV export for external plotting. *)

let spf = Printf.sprintf

(** Pretty scientific-ish formatting for throughputs. *)
let human_float v =
  if Float.is_nan v then "nan"
  else if Float.abs v >= 1e6 then spf "%.2fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then spf "%.2fk" (v /. 1e3)
  else spf "%.3g" v

(** Print an aligned table with a header row and a separator. *)
let table ?(out = stdout) ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> width.(i) <- max width.(i) (String.length cell))
        row)
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = String.make (width.(i) - String.length cell) ' ' in
        if i = 0 then Printf.fprintf out "%s%s" cell pad
        else Printf.fprintf out "  %s%s" pad cell)
      row;
    output_char out '\n'
  in
  print_row header;
  let sep =
    List.init (List.length header) (fun i -> String.make width.(i) '-')
  in
  print_row sep;
  List.iter print_row rows;
  flush out

(** Write rows as CSV (no quoting needed for our numeric/identifier
    cells). *)
let csv ~path ~header rows =
  let oc = open_out path in
  let line row = output_string oc (String.concat "," row ^ "\n") in
  line header;
  List.iter line rows;
  close_out oc

let section ?(out = stdout) title =
  Printf.fprintf out "\n== %s ==\n\n" title;
  flush out

(** Minimal JSON emitter for machine-readable benchmark output
    (BENCH_*.json files).  Numbers are emitted raw — callers pass the
    measured floats, not the [human_float]-formatted strings of the text
    tables — so downstream tooling can diff/plot without re-parsing. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let rec json_to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then
        (* nan/inf are not JSON *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (spf "%.12g" f)
  | String s ->
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | '\t' -> Buffer.add_string buf "\\t"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (spf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          json_to_buffer buf (String k);
          Buffer.add_char buf ':';
          json_to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  json_to_buffer buf j;
  Buffer.contents buf

let write_json ~path j =
  let oc = open_out path in
  output_string oc (json_to_string j);
  output_char oc '\n';
  close_out oc
