(** Rendering of [lib/obs] snapshots: per-thread counter tables for the
    console and the JSON shape of [BENCH_stats.json].

    Kept in the harness (not in [lib/obs]) so the observability library
    stays dependency-free and the JSON schema lives next to the other
    BENCH_*.json emitters ({!Report}). *)

module Obs = Klsm_obs.Obs

(** Print one snapshot as aligned tables: a counter table (total plus one
    column per thread) and, when any span fired, a span table (count, total
    ns, mean ns per call).  Prints nothing but a note when the snapshot is
    empty (observability disabled or no event fired). *)
let print_table ?(out = stdout) ~name (s : Obs.snapshot) =
  if s.Obs.counters = [] && s.Obs.spans = [] then
    Printf.fprintf out "[%s] no internal counters (observability disabled?)\n"
      name
  else begin
    Printf.fprintf out "-- %s: internal counters (%d threads) --\n" name
      s.Obs.threads;
    let tid_headers = List.init s.Obs.threads (fun i -> Printf.sprintf "t%d" i) in
    if s.Obs.counters <> [] then begin
      let rows =
        List.map
          (fun (cname, per) ->
            cname
            :: string_of_int (Obs.counter_total per)
            :: List.map string_of_int (Array.to_list per))
          s.Obs.counters
      in
      Report.table ~out ~header:(("counter" :: "total" :: tid_headers)) rows
    end;
    if s.Obs.spans <> [] then begin
      let rows =
        List.map
          (fun (sname, (d : Obs.span_data)) ->
            let count = Obs.counter_total d.Obs.count in
            let ns = Array.fold_left ( +. ) 0.0 d.Obs.ns in
            [
              sname;
              string_of_int count;
              Printf.sprintf "%.0f" ns;
              (if count = 0 then "-"
               else Printf.sprintf "%.1f" (ns /. float_of_int count));
            ])
          s.Obs.spans
      in
      Report.table ~out
        ~header:[ "span"; "count"; "total_ns"; "mean_ns" ]
        rows
    end
  end

(** The JSON shape of one snapshot as embedded in [BENCH_stats.json]:
    {v
    { "threads": T,
      "counters": [ {"name": n, "total": t, "per_thread": [..]} ],
      "spans":    [ {"name": n, "count": c, "total_ns": ns,
                     "per_thread_count": [..], "per_thread_ns": [..]} ] }
    v} *)
let to_json (s : Obs.snapshot) : Report.json =
  let ints arr = Report.List (List.map (fun i -> Report.Int i) (Array.to_list arr)) in
  let floats arr =
    Report.List (List.map (fun f -> Report.Float f) (Array.to_list arr))
  in
  Report.Obj
    [
      ("threads", Report.Int s.Obs.threads);
      ( "counters",
        Report.List
          (List.map
             (fun (name, per) ->
               Report.Obj
                 [
                   ("name", Report.String name);
                   ("total", Report.Int (Obs.counter_total per));
                   ("per_thread", ints per);
                 ])
             s.Obs.counters) );
      ( "spans",
        Report.List
          (List.map
             (fun (name, (d : Obs.span_data)) ->
               Report.Obj
                 [
                   ("name", Report.String name);
                   ("count", Report.Int (Obs.counter_total d.Obs.count));
                   ("total_ns", Report.Float (Array.fold_left ( +. ) 0.0 d.Obs.ns));
                   ("per_thread_count", ints d.Obs.count);
                   ("per_thread_ns", floats d.Obs.ns);
                 ])
             s.Obs.spans) );
    ]

(** Every counter/span name appearing in a snapshot; used by the schema
    sanity check to cross-reference [docs/METRICS.md]. *)
let names (s : Obs.snapshot) =
  List.map fst s.Obs.counters @ List.map fst s.Obs.spans
