(** Uniform access to every priority queue in the repository.

    The experiment drivers (throughput, SSSP, quality) need to iterate over
    heterogeneous queue implementations; this module erases each queue's
    concrete types behind a pair of closures per thread handle.  Values are
    monomorphized to [int] (payload = node id for SSSP, ignored for the
    synthetic benchmarks), matching the paper's integer-key workloads.

    [spec] is the figure-legend-level description of an implementation,
    including its parameters (k for the k-LSM, c for Multi-Queues...), with
    a parser for the CLIs. *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Klsm = Klsm_core.Klsm.Make (B)
  module Sharded = Klsm_core.Sharded_klsm.Make (B)
  module Spill = Klsm_store.Spill.Make (B)
  module Dlsm = Klsm_core.Dlsm.Make (B)
  module Locked_heap = Klsm_baselines.Locked_heap.Make (B)
  module Linden = Klsm_baselines.Linden_pq.Make (B)
  module Spraylist = Klsm_baselines.Spraylist.Make (B)
  module Multiq = Klsm_baselines.Multiq.Make (B)
  module Wimmer_centralized = Klsm_baselines.Wimmer_centralized.Make (B)
  module Wimmer_hybrid = Klsm_baselines.Wimmer_hybrid.Make (B)

  (** Durability-tier parameters parsed from the [+spill:<bytes>] /
      [+store:<dir>] spec suffixes (lib/store; docs/STORAGE.md). *)
  type store_cfg = {
    spill_bytes : int;  (** eviction threshold: serialized block size *)
    store_dir : string;  (** store root (objects + journal) *)
  }

  let default_store_dir = Filename.concat "_store" "default"
  let default_spill_bytes = 1 lsl 20

  (** Contention-engineering parameters of the sharded k-LSM
      (lib/core/sharded_klsm.ml; DESIGN.md §12 and §15; docs/TUNING.md). *)
  type sharded_cfg = {
    k : int;  (** global relaxation budget *)
    shards : int;  (** stripe count S (initial count with [adapt]) *)
    sticky : int;  (** stickiness window W; 0 = off *)
    buf : int;  (** insertion-buffer capacity B; 0 = off *)
    dbuf : int;  (** deletion batch size B (DESIGN.md §17); 0 = off *)
    adapt : (int * int) option;  (** adaptive stripe targets (lo, hi) *)
  }

  type spec =
    | Heap_lock
    | Linden
    | Spraylist
    | Multiq of int  (** c: queues per thread *)
    | Klsm of int  (** k *)
    | Klsm_sharded of sharded_cfg
    | Dlsm
    | Wimmer_centralized
    | Wimmer_hybrid of int  (** k *)
    | Stored of spec * store_cfg
        (** a klsm/klsm-sharded with the lib/store durability tier *)

  (** [klsm_sharded k shards] with the contention knobs defaulted off —
      the exact PR 5 sharded queue. *)
  let klsm_sharded ?(sticky = 0) ?(buf = 0) ?(dbuf = 0) ?adapt k shards =
    Klsm_sharded { k; shards; sticky; buf; dbuf; adapt }

  let rec spec_name = function
    | Heap_lock -> "heap+lock"
    | Linden -> "linden"
    | Spraylist -> "spraylist"
    | Multiq c -> Printf.sprintf "multiq(%d)" c
    | Klsm k -> Printf.sprintf "klsm(%d)" k
    | Klsm_sharded cfg ->
        let b = Buffer.create 32 in
        Buffer.add_string b
          (Printf.sprintf "klsm-sharded(%d,%d" cfg.k cfg.shards);
        if cfg.sticky > 0 then
          Buffer.add_string b (Printf.sprintf ",sticky=%d" cfg.sticky);
        if cfg.buf > 0 then
          Buffer.add_string b (Printf.sprintf ",buf=%d" cfg.buf);
        if cfg.dbuf > 0 then
          Buffer.add_string b (Printf.sprintf ",dbuf=%d" cfg.dbuf);
        (match cfg.adapt with
        | Some (lo, hi) ->
            Buffer.add_string b (Printf.sprintf ",adapt=%d-%d" lo hi)
        | None -> ());
        Buffer.add_char b ')';
        Buffer.contents b
    | Dlsm -> "dlsm"
    | Wimmer_centralized -> "centralized-k"
    | Wimmer_hybrid k -> Printf.sprintf "hybrid-k(%d)" k
    | Stored (inner, cfg) ->
        (* The store dir is deployment detail, not figure-legend identity. *)
        Printf.sprintf "%s+spill:%d" (spec_name inner) cfg.spill_bytes

  (* Parse a base spec (no [+spill]/[+store] suffixes; those are split off
     by {!parse_spec} below).  Error messages quote [s], the base part. *)
  let parse_base s =
    let base, arg =
      match String.index_opt s ':' with
      | None -> (s, None)
      | Some i ->
          (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
    in
    (* [spec ~default mk] parses the optional integer parameter; [no_arg]
       rejects any parameter at all. *)
    let with_arg ~what ~default mk =
      match arg with
      | None -> Ok (mk default)
      | Some a -> (
          match int_of_string_opt a with
          | Some v when v >= 0 -> Ok (mk v)
          | _ ->
              Error
                (Printf.sprintf
                   "%S: parameter %S is not a non-negative integer (%s)" s a
                   what))
    in
    let no_arg spec =
      match arg with
      | None -> Ok spec
      | Some a ->
          Error
            (Printf.sprintf "%S: %s takes no parameter, got %S" s
               (spec_name spec) a)
    in
    match String.lowercase_ascii base with
    | "heap" | "heap+lock" | "heaplock" -> no_arg Heap_lock
    | "linden" -> no_arg Linden
    | "spray" | "spraylist" -> no_arg Spraylist
    | "multiq" -> with_arg ~what:"c, queues per thread" ~default:2 (fun c -> Multiq c)
    | "klsm" -> with_arg ~what:"the relaxation k" ~default:256 (fun k -> Klsm k)
    | "klsm-sharded" | "sharded" -> (
        (* Colon-separated parameters: up to two positional integers (k,
           then the shard count S; defaults 256 and 4), then keyed knobs in
           any order — "sticky=<W>", "buf=<B>", "adapt=<LO>-<HI>".  The
           shard count must satisfy 1 <= S <= k so every stripe gets a
           non-empty slice of the relaxation budget; the knob constraints
           mirror Sharded_klsm.create_with (docs/TUNING.md). *)
        let parse_int ~what a =
          match int_of_string_opt a with
          | Some v when v >= 0 -> Ok v
          | _ ->
              Error
                (Printf.sprintf
                   "%S: parameter %S is not a non-negative integer (%s)" s a
                   what)
        in
        let is_pow2 n = n > 0 && n land (n - 1) = 0 in
        let toks =
          match arg with None -> [] | Some a -> String.split_on_char ':' a
        in
        let rec collect toks ~npos acc =
          match toks with
          | [] -> Ok acc
          | tok :: rest -> (
              match String.index_opt tok '=' with
              | None -> (
                  (* Positional: k first, then S. *)
                  let what, set =
                    match npos with
                    | 0 -> ("the relaxation k", fun v -> { acc with k = v })
                    | _ ->
                        ( "the shard count S, stripes",
                          fun v -> { acc with shards = v } )
                  in
                  if npos >= 2 then
                    Error
                      (Printf.sprintf
                         "%S: unexpected third positional parameter %S (only \
                          k and S are positional; use sticky=, buf=, adapt= \
                          for the contention knobs)"
                         s tok)
                  else
                    match parse_int ~what tok with
                    | Error e -> Error e
                    | Ok v -> collect rest ~npos:(npos + 1) (set v))
              | Some i -> (
                  let key = String.sub tok 0 i in
                  let v = String.sub tok (i + 1) (String.length tok - i - 1) in
                  match key with
                  | "sticky" -> (
                      match parse_int ~what:"the stickiness window W" v with
                      | Error e -> Error e
                      | Ok 0 ->
                          Error
                            (Printf.sprintf
                               "%S: stickiness window must be >= 1 (omit \
                                sticky= to disable stickiness)"
                               s)
                      | Ok w -> collect rest ~npos { acc with sticky = w })
                  | "buf" -> (
                      match
                        parse_int ~what:"the insertion-buffer capacity B" v
                      with
                      | Error e -> Error e
                      | Ok 0 ->
                          Error
                            (Printf.sprintf
                               "%S: insertion-buffer capacity must be >= 1 \
                                (omit buf= to disable buffering)"
                               s)
                      | Ok b -> collect rest ~npos { acc with buf = b })
                  | "dbuf" -> (
                      match
                        parse_int ~what:"the deletion batch size B" v
                      with
                      | Error e -> Error e
                      | Ok 0 ->
                          Error
                            (Printf.sprintf
                               "%S: deletion batch size must be >= 1 (omit \
                                dbuf= to disable delete batching)"
                               s)
                      | Ok b -> collect rest ~npos { acc with dbuf = b })
                  | "adapt" -> (
                      match String.index_opt v '-' with
                      | None ->
                          Error
                            (Printf.sprintf
                               "%S: adapt wants two stripe targets \
                                adapt=<LO>-<HI>, got %S"
                               s v)
                      | Some j -> (
                          let ls = String.sub v 0 j in
                          let hs =
                            String.sub v (j + 1) (String.length v - j - 1)
                          in
                          match
                            ( parse_int ~what:"the adapt lower target" ls,
                              parse_int ~what:"the adapt upper target" hs )
                          with
                          | Error e, _ | _, Error e -> Error e
                          | Ok lo, Ok hi ->
                              if not (is_pow2 lo && is_pow2 hi) then
                                Error
                                  (Printf.sprintf
                                     "%S: adaptive stripe targets must be \
                                      powers of two (got %d-%d); the active \
                                      count moves by doubling/halving"
                                     s lo hi)
                              else if lo > hi then
                                Error
                                  (Printf.sprintf
                                     "%S: adapt lower target %d exceeds \
                                      upper target %d"
                                     s lo hi)
                              else
                                collect rest ~npos
                                  { acc with adapt = Some (lo, hi) }))
                  | _ ->
                      Error
                        (Printf.sprintf
                           "%S: unknown parameter %S (known: sticky=<W>, \
                            buf=<B>, dbuf=<B>, adapt=<LO>-<HI>)"
                           s key)))
        in
        match
          collect toks ~npos:0
            { k = 256; shards = 4; sticky = 0; buf = 0; dbuf = 0; adapt = None }
        with
        | Error e -> Error e
        | Ok cfg ->
            if cfg.shards < 1 then
              Error
                (Printf.sprintf
                   "%S: shard count %d < 1 (need at least one stripe)" s
                   cfg.shards)
            else if cfg.shards > cfg.k then
              Error
                (Printf.sprintf
                   "%S: shard count %d exceeds the relaxation k = %d (every \
                    stripe needs a budget of at least 1)"
                   s cfg.shards cfg.k)
            else begin
              (* With ~adapt the stripe array is allocated at the upper
                 target, so the per-stripe budget — which bounds buf — is
                 ceil(k / hi). *)
              let adapt_err =
                match cfg.adapt with
                | None -> None
                | Some (lo, hi) ->
                    if not (is_pow2 cfg.shards) then
                      Some
                        (Printf.sprintf
                           "%S: with adapt= the shard count must be a power \
                            of two, got %d"
                           s cfg.shards)
                    else if cfg.shards < lo || cfg.shards > hi then
                      Some
                        (Printf.sprintf
                           "%S: shard count %d outside the adapt range \
                            [%d, %d]"
                           s cfg.shards lo hi)
                    else if hi > cfg.k then
                      Some
                        (Printf.sprintf
                           "%S: adapt upper target %d exceeds the relaxation \
                            k = %d (every stripe needs a budget of at least \
                            1)"
                           s hi cfg.k)
                    else None
              in
              match adapt_err with
              | Some e -> Error e
              | None ->
                  let stripes =
                    match cfg.adapt with
                    | Some (_, hi) -> hi
                    | None -> cfg.shards
                  in
                  let kp = (cfg.k + stripes - 1) / stripes in
                  if cfg.buf > kp then
                    Error
                      (Printf.sprintf
                         "%S: insertion buffer %d exceeds the per-stripe \
                          budget ceil(k/S) = %d (buffered items are charged \
                          against the local relaxation budget, so B must \
                          fit inside it)"
                         s cfg.buf kp)
                  else if cfg.dbuf > kp then
                    Error
                      (Printf.sprintf
                         "%S: deletion batch %d exceeds the per-stripe \
                          budget ceil(k/S) = %d (a batch claim must fit \
                          inside one stripe's relaxation)"
                         s cfg.dbuf kp)
                  else if cfg.buf + cfg.dbuf > kp then
                    Error
                      (Printf.sprintf
                         "%S: insertion buffer %d + deletion batch %d \
                          overdraw the per-stripe budget ceil(k/S) = %d"
                         s cfg.buf cfg.dbuf kp)
                  else Ok (Klsm_sharded cfg)
            end)
    | "dlsm" -> no_arg Dlsm
    | "centralized" | "centralized-k" -> no_arg Wimmer_centralized
    | "hybrid" | "hybrid-k" ->
        with_arg ~what:"the relaxation k" ~default:256 (fun k -> Wimmer_hybrid k)
    | _ ->
        Error
          (Printf.sprintf
             "unknown implementation %S; known: heap, linden, spray, \
              multiq[:C], klsm[:K], \
              klsm-sharded[:K[:S]][:sticky=W][:buf=B][:dbuf=B][:adapt=LO-HI], \
              dlsm, centralized, hybrid[:K]; klsm and klsm-sharded accept \
              +spill:<bytes> and +store:<dir> suffixes"
             s)

  (* "+spill:<bytes>": a non-negative size, optionally suffixed k/m/g
     (binary multiples — 64k = 65536). *)
  let parse_byte_size s a =
    let fail () =
      Error
        (Printf.sprintf
           "%S: %S is not a byte size (want a non-negative integer with an \
            optional k/m/g suffix, e.g. 4096, 64k, 1m)"
           s a)
    in
    let n = String.length a in
    if n = 0 then fail ()
    else begin
      let num, mult =
        match Char.lowercase_ascii a.[n - 1] with
        | 'k' -> (String.sub a 0 (n - 1), 1 lsl 10)
        | 'm' -> (String.sub a 0 (n - 1), 1 lsl 20)
        | 'g' -> (String.sub a 0 (n - 1), 1 lsl 30)
        | _ -> (a, 1)
      in
      match int_of_string_opt num with
      | Some v when v >= 0 -> Ok (v * mult)
      | _ -> fail ()
    end

  (* "+store:<dir>": existence is optional (created at [make] time), but a
     path that exists and is not a writable directory is a config error
     worth rejecting at parse time, before a benchmark spends its warmup. *)
  let parse_store_dir s a =
    if String.length a = 0 then
      Error (Printf.sprintf "%S: +store needs a directory, got an empty path" s)
    else if Sys.file_exists a then begin
      if not (Sys.is_directory a) then
        Error
          (Printf.sprintf "%S: store path %S exists and is not a directory" s a)
      else begin
        match Unix.access a [ Unix.W_OK; Unix.X_OK ] with
        | () -> Ok a
        | exception Unix.Unix_error _ ->
            Error
              (Printf.sprintf "%S: store directory %S is not writable" s a)
      end
    end
    else Ok a

  (** Parse ["klsm:256"], ["multiq:2"], ["hybrid:4096"], ["linden"], ...
      plus the durability suffixes ["klsm:256+spill:4096+store:/tmp/q"].
      Returns [Error msg] (not an option) so CLI typos are diagnosable: an
      unknown name, a malformed parameter, a parameter given to an
      implementation that takes none (["linden:4"]), a malformed byte size,
      or an unusable store directory are all rejected with a message naming
      the offending part. *)
  let parse_spec s =
    (* Split off +spill:/+store: suffixes; other '+'-joined tokens are part
       of the base name ("heap+lock"). *)
    let is_store_tok tok =
      let pre p =
        String.length tok >= String.length p
        && String.equal (String.sub tok 0 (String.length p)) p
      in
      pre "spill" || pre "store"
    in
    let toks = String.split_on_char '+' s in
    let base_toks, store_toks = List.partition (fun t -> not (is_store_tok t)) toks in
    let base = String.concat "+" base_toks in
    match parse_base base with
    | Error e -> Error e
    | Ok inner when store_toks = [] -> Ok inner
    | Ok inner -> (
        let cfg =
          List.fold_left
            (fun acc tok ->
              match acc with
              | Error _ -> acc
              | Ok (bytes, dir) -> (
                  match String.index_opt tok ':' with
                  | None ->
                      Error
                        (Printf.sprintf
                           "%S: suffix %S needs a parameter (+spill:<bytes> \
                            or +store:<dir>)"
                           s tok)
                  | Some i -> (
                      let key = String.sub tok 0 i in
                      let v =
                        String.sub tok (i + 1) (String.length tok - i - 1)
                      in
                      match key with
                      | "spill" -> (
                          match parse_byte_size s v with
                          | Ok b -> Ok (Some b, dir)
                          | Error e -> Error e)
                      | "store" -> (
                          match parse_store_dir s v with
                          | Ok d -> Ok (bytes, Some d)
                          | Error e -> Error e)
                      | _ ->
                          Error
                            (Printf.sprintf
                               "%S: unknown suffix %S (want +spill:<bytes> \
                                or +store:<dir>)"
                               s key))))
            (Ok (None, None))
            store_toks
        in
        match cfg with
        | Error e -> Error e
        | Ok (bytes, dir) -> (
            match inner with
            | Klsm _ | Klsm_sharded _ ->
                Ok
                  (Stored
                     ( inner,
                       {
                         spill_bytes =
                           Option.value ~default:default_spill_bytes bytes;
                         store_dir =
                           Option.value ~default:default_store_dir dir;
                       } ))
            | _ ->
                Error
                  (Printf.sprintf
                     "%S: +spill/+store apply only to klsm and klsm-sharded \
                      (%s keeps every item in RAM)"
                     s (spec_name inner))))

  (** [parse_spec_opt] is {!parse_spec} with errors collapsed to [None]. *)
  let parse_spec_opt s = Result.to_option (parse_spec s)

  (** Scheduler-runtime spec — not a queue.  ["sched"] or
      ["sched:fibers=<F>"] configures the fiber layer of lib/sched that
      sits {e on top of} whichever queue spec a run uses: [fibers] is the
      number of child fibers each task body forks and joins
      ([Closed_loop.config.fiber_fanout]; 0 = straight-line bodies).
      Shared by [bin/sched.exe --fibers] and the bench scheduler section
      so both speak the same string form. *)
  type sched_cfg = { fibers : int }

  let default_sched_cfg = { fibers = 0 }

  let sched_spec_name c =
    if c.fibers <= 0 then "sched" else Printf.sprintf "sched:fibers=%d" c.fibers

  let parse_sched_spec s =
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ "sched" ] -> Ok default_sched_cfg
    | [ "sched"; kv ] -> (
        match String.index_opt kv '=' with
        | Some i when String.equal (String.sub kv 0 i) "fibers" -> (
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match int_of_string_opt v with
            | Some f when f >= 0 -> Ok { fibers = f }
            | _ ->
                Error
                  (Printf.sprintf
                     "%S: fibers wants a non-negative integer, got %S" s v))
        | _ ->
            Error
              (Printf.sprintf
                 "%S: unknown scheduler knob %S (want sched[:fibers=<F>])" s kv))
    | _ ->
        Error
          (Printf.sprintf "%S: not a scheduler spec (want sched[:fibers=<F>])" s)

  (** The canonical spec grammar, one [(form, example)] row per accepted
      shape.  This list is the single source of truth for README.md's spec
      table: [bin/docscheck.ml] asserts every form string appears verbatim
      in the README and every example round-trips through {!parse_spec}
      (Makefile: [make docs-check]).  Extending the grammar without
      extending this list — or this list without the README — fails CI. *)
  let spec_forms =
    [
      ("heap+lock", "heap+lock");
      ("linden", "linden");
      ("spraylist", "spraylist");
      ("multiq[:C]", "multiq:2");
      ("klsm[:K]", "klsm:256");
      ( "klsm-sharded[:K[:S]][:sticky=W][:buf=B][:dbuf=B][:adapt=LO-HI]",
        "klsm-sharded:256:4:sticky=8:buf=16:dbuf=8:adapt=2-8" );
      ("dlsm", "dlsm");
      ("centralized-k", "centralized-k");
      ("hybrid-k[:K]", "hybrid-k:256");
      ("+spill:<bytes>", "klsm:256+spill:64k");
      ("+store:<dir>", "klsm-sharded:256:4+store:_store/docs-check");
    ]

  (** Whether the implementation honours the queue-side lazy-deletion
      predicate of §4.5 (the paper's SSSP figure only includes such
      queues). *)
  let rec supports_lazy_deletion = function
    | Klsm _ | Klsm_sharded _ | Dlsm | Wimmer_centralized | Wimmer_hybrid _ ->
        true
    | Heap_lock | Linden | Spraylist | Multiq _ -> false
    | Stored (inner, _) -> supports_lazy_deletion inner

  type handle = {
    insert : int -> int -> unit;  (** key, payload *)
    insert_batch : (int * int) array -> unit;
        (** bulk path (Pq_intf.insert_batch); the k-LSM linearizes the whole
            batch as one shared-component update *)
    try_delete_min : unit -> (int * int) option;
    try_delete_min_batch : int -> (int * int) list;
        (** bulk delete path (Pq_intf.try_delete_min_batch): up to n items,
            ascending; the k-LSMs claim the run with a single CAS *)
  }

  type instance = {
    name : string;
    register : int -> handle;  (** tid -> per-thread handle *)
    approximate_size : unit -> int;
    stats : unit -> Klsm_obs.Obs.snapshot;
        (** internal-counter snapshot (Pq_intf.stats); empty unless
            observability was enabled before [make] ran (lib/obs) *)
  }

  (** Instantiate a [spec].  [should_delete]/[on_lazy_delete] are passed to
      the queues that support lazy deletion and ignored by the others. *)
  let make ?(seed = 1) ?should_delete ?on_lazy_delete ~num_threads spec =
    match spec with
    | Heap_lock ->
        let q = Locked_heap.create ~num_threads () in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Locked_heap.register q tid in
              {
                insert = Locked_heap.insert h;
                insert_batch = Locked_heap.insert_batch h;
                try_delete_min = (fun () -> Locked_heap.try_delete_min h);
                try_delete_min_batch = Locked_heap.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Locked_heap.size q);
          stats = (fun () -> Locked_heap.stats q);
        }
    | Linden ->
        let q = Linden.create_with ~seed ~dummy:0 ~num_threads () in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Linden.register q tid in
              {
                insert = Linden.insert h;
                insert_batch = Linden.insert_batch h;
                try_delete_min = (fun () -> Linden.try_delete_min h);
                try_delete_min_batch = Linden.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Linden.alive_size q);
          stats = (fun () -> Linden.stats q);
        }
    | Spraylist ->
        let q = Spraylist.create_with ~seed ~dummy:0 ~num_threads () in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Spraylist.register q tid in
              {
                insert = Spraylist.insert h;
                insert_batch = Spraylist.insert_batch h;
                try_delete_min = (fun () -> Spraylist.try_delete_min h);
                try_delete_min_batch = Spraylist.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Spraylist.alive_size q);
          stats = (fun () -> Spraylist.stats q);
        }
    | Multiq c ->
        let q = Multiq.create_with ~seed ~c ~num_threads () in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Multiq.register q tid in
              {
                insert = Multiq.insert h;
                insert_batch = Multiq.insert_batch h;
                try_delete_min = (fun () -> Multiq.try_delete_min h);
                try_delete_min_batch = Multiq.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Multiq.approximate_size q);
          stats = (fun () -> Multiq.stats q);
        }
    | Klsm k ->
        let q = Klsm.create_with ~seed ~k ?should_delete ?on_lazy_delete ~num_threads () in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Klsm.register q tid in
              {
                insert = Klsm.insert h;
                insert_batch = Klsm.insert_batch h;
                try_delete_min = (fun () -> Klsm.try_delete_min h);
                try_delete_min_batch = Klsm.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Klsm.approximate_size q);
          stats = (fun () -> Klsm.stats q);
        }
    | Klsm_sharded { k; shards; sticky; buf; dbuf; adapt } ->
        let q =
          Sharded.create_with ~seed ~k ~shards ~sticky ~buf ~dbuf ?adapt
            ?should_delete ?on_lazy_delete ~num_threads ()
        in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Sharded.register q tid in
              {
                insert = Sharded.insert h;
                insert_batch = Sharded.insert_batch h;
                try_delete_min = (fun () -> Sharded.try_delete_min h);
                try_delete_min_batch = Sharded.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Sharded.approximate_size q);
          stats = (fun () -> Sharded.stats q);
        }
    | Dlsm ->
        let q = Dlsm.create_with ~seed ?should_delete ?on_lazy_delete ~num_threads () in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Dlsm.register q tid in
              {
                insert = Dlsm.insert h;
                insert_batch = Dlsm.insert_batch h;
                try_delete_min = (fun () -> Dlsm.try_delete_min h);
                try_delete_min_batch = Dlsm.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Dlsm.approximate_size q);
          stats = (fun () -> Dlsm.stats q);
        }
    | Wimmer_centralized ->
        let q =
          Wimmer_centralized.create_with ~seed ?should_delete ?on_lazy_delete
            ~num_threads ()
        in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Wimmer_centralized.register q tid in
              {
                insert = Wimmer_centralized.insert h;
                insert_batch = Wimmer_centralized.insert_batch h;
                try_delete_min =
                  (fun () -> Wimmer_centralized.try_delete_min h);
                try_delete_min_batch = Wimmer_centralized.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Wimmer_centralized.size q);
          stats = (fun () -> Wimmer_centralized.stats q);
        }
    | Wimmer_hybrid k ->
        let q =
          Wimmer_hybrid.create_with ~seed ~k ?should_delete ?on_lazy_delete
            ~num_threads ()
        in
        {
          name = spec_name spec;
          register =
            (fun tid ->
              let h = Wimmer_hybrid.register q tid in
              {
                insert = Wimmer_hybrid.insert h;
                insert_batch = Wimmer_hybrid.insert_batch h;
                try_delete_min = (fun () -> Wimmer_hybrid.try_delete_min h);
                try_delete_min_batch = Wimmer_hybrid.try_delete_min_batch h;
              });
          approximate_size = (fun () -> Wimmer_hybrid.approximate_size q);
          stats = (fun () -> Wimmer_hybrid.stats q);
        }
    | Stored (inner, cfg) -> (
        (* The durability tier (lib/store): a spill policy over a store
           rooted at [cfg.store_dir], threaded into the queue's publish
           paths.  Queue counters and store.* counters merge into one
           snapshot. *)
        let spill =
          Spill.create ~threshold:cfg.spill_bytes ~num_threads
            ~root:cfg.store_dir ()
        in
        let policy ~alive ~tid block = Spill.policy spill ~alive ~tid block in
        let merge_stats qstats () =
          let a = qstats () in
          let b = Spill.stats spill in
          {
            a with
            Klsm_obs.Obs.counters = a.Klsm_obs.Obs.counters @ b.Klsm_obs.Obs.counters;
            spans = a.Klsm_obs.Obs.spans @ b.Klsm_obs.Obs.spans;
          }
        in
        match inner with
        | Klsm k ->
            let q =
              Klsm.create_with ~seed ~k ?should_delete ?on_lazy_delete
                ~spill_policy:policy ~num_threads ()
            in
            {
              name = spec_name spec;
              register =
                (fun tid ->
                  let h = Klsm.register q tid in
                  {
                    insert = Klsm.insert h;
                    insert_batch = Klsm.insert_batch h;
                    try_delete_min = (fun () -> Klsm.try_delete_min h);
                try_delete_min_batch = Klsm.try_delete_min_batch h;
                  });
              approximate_size = (fun () -> Klsm.approximate_size q);
              stats = merge_stats (fun () -> Klsm.stats q);
            }
        | Klsm_sharded { k; shards; sticky; buf; dbuf; adapt } ->
            let q =
              Sharded.create_with ~seed ~k ~shards ~sticky ~buf ~dbuf ?adapt
                ?should_delete ?on_lazy_delete ~spill_policy:policy
                ~num_threads ()
            in
            {
              name = spec_name spec;
              register =
                (fun tid ->
                  let h = Sharded.register q tid in
                  {
                    insert = Sharded.insert h;
                    insert_batch = Sharded.insert_batch h;
                    try_delete_min = (fun () -> Sharded.try_delete_min h);
                try_delete_min_batch = Sharded.try_delete_min_batch h;
                  });
              approximate_size = (fun () -> Sharded.approximate_size q);
              stats = merge_stats (fun () -> Sharded.stats q);
            }
        | _ ->
            invalid_arg
              (Printf.sprintf
                 "Registry.make: %s does not support the durability tier"
                 (spec_name inner)))

  (** The full Figure 3 line-up, with the paper's parameters. *)
  let figure3_specs =
    [
      Heap_lock;
      Linden;
      Spraylist;
      Multiq 2;
      Klsm 0;
      Klsm 4;
      Klsm 256;
      Klsm 4096;
      Dlsm;
    ]

  (** The Figure 4 (left) line-up at k = 256. *)
  let figure4_specs = [ Wimmer_centralized; Wimmer_hybrid 256; Klsm 256 ]
end
