(** Rank oracle for the quality (rank-error) experiments.

    A Fenwick tree over the key universe counts how many copies of each key
    are logically present; the {e rank error} of a delete-min returning
    [k] is the number of strictly smaller keys still present at that
    moment — 0 for an exact priority queue, bounded by rho = T*k for the
    k-LSM (paper §5, Lemma 2).

    The oracle itself is sequential; under the simulator the wrapping
    harness updates it at operation completion, which measures rank errors
    the way the relaxed-PQ literature reports them. *)

type t = {
  counts : int array;  (** Fenwick-indexed (1-based) key multiset *)
  universe : int;
  mutable size : int;
}

let create ~universe =
  if universe < 1 then invalid_arg "Oracle.create";
  { counts = Array.make (universe + 1) 0; universe; size = 0 }

let add t key delta =
  if key < 0 || key >= t.universe then invalid_arg "Oracle: key out of range";
  let i = ref (key + 1) in
  while !i <= t.universe do
    t.counts.(!i) <- t.counts.(!i) + delta;
    i := !i + (!i land - !i)
  done

(** Number of present keys strictly below [key]. *)
let rank_below t key =
  if key <= 0 then 0
  else begin
    let key = min key t.universe in
    (* Sum of counts for keys 0 .. key-1, i.e. Fenwick prefix of index key. *)
    let acc = ref 0 in
    let i = ref key in
    while !i > 0 do
      acc := !acc + t.counts.(!i);
      i := !i - (!i land - !i)
    done;
    !acc
  end

let insert t key =
  add t key 1;
  t.size <- t.size + 1

(** Remove one copy of [key], returning its rank error.  Raises if [key]
    is not present (a conservation violation — callers treat that as a
    test failure). *)
let delete t key =
  let r = rank_below t key in
  let present = rank_below t (key + 1) - r in
  if present <= 0 then failwith "Oracle.delete: key not present";
  add t key (-1);
  t.size <- t.size - 1;
  r

let size t = t.size

(* ------------------------------------------------------------------ *)
(* Store-recovery conservation                                         *)
(* ------------------------------------------------------------------ *)

module Audit = Klsm_store.Audit

(** Check the books of a recovery audit (docs/STORAGE.md "Failure
    model"): every live journal instance must end the pass in exactly one
    class, so [recovered + quarantined + lost = spilled] in instances,
    items {e and} bytes; the per-entry lines must sum to the totals; and
    GC must only have run on a fully clean pass.  Returns the violations
    (empty = the audit balances). *)
let store_conservation (a : Audit.t) =
  let violations = ref [] in
  let v fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let conserve what spilled recovered quarantined lost =
    if recovered + quarantined + lost <> spilled then
      v "%s: %d recovered + %d quarantined + %d lost <> %d spilled" what
        recovered quarantined lost spilled
  in
  conserve "instances" a.Audit.spilled a.Audit.recovered a.Audit.quarantined
    a.Audit.lost;
  conserve "items" a.Audit.spilled_items a.Audit.recovered_items
    a.Audit.quarantined_items a.Audit.lost_items;
  conserve "bytes" a.Audit.spilled_bytes a.Audit.recovered_bytes
    a.Audit.quarantined_bytes a.Audit.lost_bytes;
  if List.length a.Audit.entries <> a.Audit.spilled then
    v "entries: %d lines for %d spilled instances"
      (List.length a.Audit.entries) a.Audit.spilled;
  let count pred =
    List.fold_left
      (fun (n, items, bytes) (e : Audit.entry) ->
        if pred e.Audit.outcome then
          (n + 1, items + e.Audit.count, bytes + e.Audit.bytes)
        else (n, items, bytes))
      (0, 0, 0) a.Audit.entries
  in
  let check_class what pred n items bytes =
    let n', items', bytes' = count pred in
    if n' <> n then v "%s: %d entries but %d counted" what n' n;
    if items' <> items then v "%s items: %d in entries but %d counted" what items' items;
    if bytes' <> bytes then v "%s bytes: %d in entries but %d counted" what bytes' bytes
  in
  check_class "recovered"
    (function Audit.Recovered -> true | _ -> false)
    a.Audit.recovered a.Audit.recovered_items a.Audit.recovered_bytes;
  check_class "quarantined"
    (function Audit.Quarantined _ -> true | _ -> false)
    a.Audit.quarantined a.Audit.quarantined_items a.Audit.quarantined_bytes;
  check_class "lost"
    (function Audit.Lost _ -> true | _ -> false)
    a.Audit.lost a.Audit.lost_items a.Audit.lost_bytes;
  if a.Audit.gc_ran && not (Audit.clean a) then
    v "gc ran on an unclean pass (%d quarantined, %d lost, %d skipped, %d unreadable, checkpoint_ok=%b)"
      a.Audit.quarantined a.Audit.lost a.Audit.skipped_lines
      a.Audit.unreadable_files a.Audit.checkpoint_ok;
  List.rev !violations
