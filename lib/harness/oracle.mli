(** Rank oracle for the quality (rank-error) experiments: a Fenwick tree
    over the key universe counting logically-present keys.  The rank error
    of a delete-min returning [k] is the number of strictly smaller keys
    still present — 0 for an exact queue, bounded by rho = T*k for the
    k-LSM (paper §5, Lemma 2). *)

type t

val create : universe:int -> t
(** Keys must lie in [\[0, universe)]. *)

val insert : t -> int -> unit

val delete : t -> int -> int
(** [delete t k] removes one copy of [k] and returns its rank error (the
    number of strictly smaller keys present).  Raises [Failure] if [k] is
    not present — a conservation violation. *)

val rank_below : t -> int -> int
(** Number of present keys strictly below the argument. *)

val size : t -> int

val store_conservation : Klsm_store.Audit.t -> string list
(** Conservation check over a recovery audit (docs/STORAGE.md "Failure
    model"): [recovered + quarantined + lost = spilled] in instances,
    items and bytes; per-entry lines sum to the totals; GC only on a
    fully clean pass.  Returns the violations, empty when the books
    balance.  Consumed by [Klsm_chaos.Drive.store_case] and
    [bin/torture.exe]. *)
