(** Plain-text experiment reporting: aligned tables (the textual analogue
    of the paper's figures) and CSV export for external plotting. *)

val human_float : float -> string
(** "2.50M", "3.20k", "12" — compact throughput formatting. *)

val table : ?out:out_channel -> header:string list -> string list list -> unit
(** Print an aligned table (first column left-aligned, rest right) with a
    dash separator under the header. *)

val csv : path:string -> header:string list -> string list list -> unit
(** Write header + rows as comma-separated lines. *)

val section : ?out:out_channel -> string -> unit
(** Print a "== title ==" banner. *)

(** Machine-readable output (the BENCH_*.json files).  Callers build the
    value from the raw measured numbers — not the [human_float]-formatted
    table strings — so downstream tooling can plot/diff without
    re-parsing. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact (single-line) serialization.  Non-finite floats become
    [null]. *)

val write_json : path:string -> json -> unit
(** [json_to_string] plus a trailing newline, written to [path]. *)
