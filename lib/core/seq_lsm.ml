(** The sequential log-structured merge-tree priority queue of paper §3 —
    the data structure the concurrent k-LSM is built from, usable on its own
    as a cache-efficient sequential priority queue (and as a second oracle
    besides the binary heap).

    Invariants (§3): a logarithmic list of {e blocks}, each a sorted
    (descending) array of keys; a block of level [l] holds [n] entries with
    [2^(l-1) < n <= 2^l]; at most one block per level.  Inserting adds a
    level-0 block and merges equal levels upward; deleting the minimum pops
    the tail of the block holding it and re-establishes the level bound by
    shrinking/merging.  All operations are amortized O(log n), and the
    arrays make the constant factors small (the cache-efficiency argument
    the paper makes against skiplists).

    Purely sequential: no atomics, physical deletion, not a functor. *)

type 'v block = {
  level : int;
  keys : int array;  (** capacity 2^level, descending *)
  values : 'v array;
  mutable filled : int;
}

type 'v t = {
  mutable blocks : 'v block list;  (** strictly decreasing levels *)
  mutable size : int;
}

let create () = { blocks = []; size = 0 }
let size t = t.size
let is_empty t = t.size = 0

let capacity_of_level level = 1 lsl level

let singleton_block key value =
  { level = 0; keys = [| key |]; values = [| value |]; filled = 1 }

(* Merge two blocks into one of the next-larger level. *)
let merge_blocks b1 b2 =
  let lvl = 1 + max b1.level b2.level in
  let n = b1.filled + b2.filled in
  let keys = Array.make (capacity_of_level lvl) 0 in
  let values = Array.make (capacity_of_level lvl) b1.values.(0) in
  let i = ref 0 and j = ref 0 and o = ref 0 in
  while !i < b1.filled && !j < b2.filled do
    if b1.keys.(!i) >= b2.keys.(!j) then begin
      keys.(!o) <- b1.keys.(!i);
      values.(!o) <- b1.values.(!i);
      incr i
    end
    else begin
      keys.(!o) <- b2.keys.(!j);
      values.(!o) <- b2.values.(!j);
      incr j
    end;
    incr o
  done;
  while !i < b1.filled do
    keys.(!o) <- b1.keys.(!i);
    values.(!o) <- b1.values.(!i);
    incr i;
    incr o
  done;
  while !j < b2.filled do
    keys.(!o) <- b2.keys.(!j);
    values.(!o) <- b2.values.(!j);
    incr j;
    incr o
  done;
  { level = lvl; keys; values; filled = n }

(* Copy a block down to the smallest level that fits its content. *)
let fit_level b =
  let l = ref b.level in
  while !l > 0 && b.filled <= capacity_of_level (!l - 1) do
    decr l
  done;
  if !l = b.level then b
  else begin
    let keys = Array.make (capacity_of_level !l) 0 in
    let values = Array.make (capacity_of_level !l) b.values.(0) in
    Array.blit b.keys 0 keys 0 b.filled;
    Array.blit b.values 0 values 0 b.filled;
    { level = !l; keys; values; filled = b.filled }
  end

(* Re-establish "strictly decreasing levels, at most one block per level"
   from an arbitrary list, merging collisions (§3's merge cascade). *)
let normalize blocks =
  let ordered =
    blocks
    |> List.filter (fun b -> b.filled > 0)
    (* Re-fit first: an underflowed block must drop to the level its
       content actually fills before collision merging. *)
    |> List.map fit_level
    |> List.stable_sort (fun a b -> compare b.level a.level)
  in
  let rec push stack b =
    if b.filled = 0 then stack
    else
      match stack with
      | top :: rest when top.level <= b.level ->
          push rest (fit_level (merge_blocks top b))
      | _ -> b :: stack
  in
  List.rev (List.fold_left push [] ordered)

let insert t key value =
  if key < 0 then invalid_arg "Seq_lsm.insert: negative key";
  (* [t.blocks] already satisfies the level invariant, so the general
     filter/fit/sort pipeline of [normalize] is overkill for one level-0
     arrival: cascade the new block directly up the (reversed,
     smallest-level-first) list, merging while levels collide — §3's merge
     cascade with no sorting and no per-block re-fitting. *)
  let rec cascade b = function
    | top :: rest when top.level <= b.level ->
        cascade (fit_level (merge_blocks top b)) rest
    | rest -> b :: rest
  in
  t.blocks <- List.rev (cascade (singleton_block key value) (List.rev t.blocks));
  t.size <- t.size + 1

(** Minimal key and its value, without removal; O(#blocks). *)
let find_min t =
  List.fold_left
    (fun best b ->
      if b.filled = 0 then best
      else begin
        let key = b.keys.(b.filled - 1) in
        match best with
        | Some (bk, _) when bk <= key -> best
        | _ -> Some (key, b.values.(b.filled - 1))
      end)
    None t.blocks

let delete_min t =
  (* Locate the block holding the global minimum. *)
  let best = ref None in
  List.iter
    (fun b ->
      if b.filled > 0 then begin
        let key = b.keys.(b.filled - 1) in
        match !best with
        | Some bb when bb.keys.(bb.filled - 1) <= key -> ()
        | _ -> best := Some b
      end)
    t.blocks;
  match !best with
  | None -> None
  | Some b ->
      let key = b.keys.(b.filled - 1) and value = b.values.(b.filled - 1) in
      b.filled <- b.filled - 1;
      t.size <- t.size - 1;
      (* If the block underflowed its level, shrink and re-merge (§3). *)
      if b.filled <= capacity_of_level (max 0 (b.level - 1)) && b.level > 0
      then t.blocks <- normalize t.blocks
      else if b.filled = 0 then
        t.blocks <- List.filter (fun b' -> b' != b) t.blocks;
      Some (key, value)

(** Drain in ascending key order (tests). *)
let drain t =
  let rec go acc =
    match delete_min t with None -> List.rev acc | Some kv -> go (kv :: acc)
  in
  go []

(** §3 structural invariants, for tests: strictly decreasing levels, one
    block per level, every block within its level bounds. *)
let check_invariants t =
  let rec go last_level total = function
    | [] -> total
    | b :: rest ->
        if b.level >= last_level then failwith "Seq_lsm: level order";
        if b.filled < 1 || b.filled > capacity_of_level b.level then
          failwith "Seq_lsm: filled out of level bounds";
        if b.level > 0 && b.filled <= capacity_of_level (b.level - 1) then
          failwith "Seq_lsm: block underflows its level";
        for i = 0 to b.filled - 2 do
          if b.keys.(i) < b.keys.(i + 1) then failwith "Seq_lsm: not sorted"
        done;
        go b.level (total + b.filled) rest
  in
  let total = go max_int 0 t.blocks in
  if total <> t.size then failwith "Seq_lsm: size mismatch"
