(** The shared k-LSM priority queue (paper §4.1 and Listing 3).

    All threads share one atomic pointer [shared] to the current
    {!Block_array}.  Every structural update builds a private copy (the
    {e snapshot}) and installs it with a single compare-and-swap; a failed
    CAS means some other thread made progress, which is what makes both
    [insert] and the consolidations inside [find_min] lock-free (paper §5,
    Lemmas 3-4).

    Thread-local state ([observed]/[snapshot]) lives in the {!handle}
    a thread obtains from [register].  With a garbage collector the CAS on
    [shared] is ABA-free: a reachable snapshot can never be recycled into a
    physically-equal new array (§4.4's GC remark). *)

module Make (B : Klsm_backend.Backend_intf.S) = struct
  module Item = Item.Make (B)
  module Block = Block.Make (B)
  module Block_array = Block_array.Make (B)
  module Xoshiro = Klsm_primitives.Xoshiro
  module Tabular_hash = Klsm_primitives.Tabular_hash
  module Obs = Klsm_obs.Obs

  (* Observability (lib/obs; docs/METRICS.md).  [Block_array] mutations are
     counted here because every one of them happens through this module's
     private snapshots. *)
  let c_cas = Obs.counter "shared.cas_attempt"
  let c_cas_fail = Obs.counter "shared.cas_fail"
  let c_insert_retry = Obs.counter "shared.insert_retry"
  let c_consolidate = Obs.counter "shared.consolidate"
  let c_pivots = Obs.counter "shared.pivot_recompute"
  let c_empty_publish = Obs.counter "shared.empty_publish"
  let c_batch_claim = Obs.counter "shared.batch_claim"
  let s_insert = Obs.span "shared.insert"
  let s_find_min = Obs.span "shared.find_min"

  type 'v t = {
    shared : 'v Block_array.t option B.atomic;
    k : int B.atomic;  (** runtime-configurable relaxation parameter *)
    hasher : Tabular_hash.t;  (** Bloom-filter hash (shared by all blocks) *)
    alive : 'v Item.t -> bool;
    local_ordering : bool;
        (** honour per-thread exact semantics via the Bloom filters (§4.1);
            disabling is an ablation knob, not a paper configuration *)
    maintain_hint : bool;
        (** keep {!min_hint} current on every publish; off by default so the
            standalone shared component's schedules are untouched — only the
            sharded composition ({!Sharded_klsm}) opts in *)
    hint : int B.atomic;
        (** conservative lower bound on the smallest {e alive} key in the
            published array ([max_int] = empty): the stored minimum counts
            logically deleted items, and deletion only ever raises the true
            minimum.  Lowered before a publish attempt, set exactly after a
            successful one, so readers that skip this stripe on
            [hint >= candidate] skip only stripes with nothing smaller
            (DESIGN.md §12 discusses the write-race slack). *)
  }

  type 'v handle = {
    q : 'v t;
    tid : int;
    rng : Xoshiro.t;
    obs : Obs.handle;
    pool : 'v Block.Pool.t;
        (** this thread's block pool (§4.4 reuse); recycles the private
            merge intermediates built inside snapshots *)
    scratch : 'v Block_array.Scratch.t;
        (** this thread's normalize/pivot scratch buffers *)
    mutable observed : 'v Block_array.t option;
    mutable snapshot : 'v Block_array.t option;
    mutable on_cas_fail : unit -> unit;
        (** contention hook: runs after every failed snapshot CAS.  The
            sharded composition installs per-stripe decorrelated backoff
            here; defaults to a no-op so standalone behaviour (and the
            simulator schedules the chaos replays depend on) is
            unchanged. *)
    mutable on_cas_success : unit -> unit;
        (** contention hook: runs after every successful snapshot CAS
            (backoff reset); no-op by default *)
  }

  let create ?(k = 256) ?(local_ordering = true) ?(maintain_hint = false)
      ?(padded = false) ~hasher ~alive () =
    if k < 0 then invalid_arg "Shared_klsm.create: k < 0";
    (* [~padded:true] (the sharded composition) reallocates the contended
       atomics behind a cache line each ({!Klsm_primitives.Padded}), so
       stripe [i]'s publish CAS traffic stops evicting stripe [i+1]'s
       hint: the atomics of S stripes created in one loop are otherwise
       adjacent minor-heap neighbours. *)
    let pad =
      if padded then Klsm_primitives.Padded.copy_as_padded else Fun.id
    in
    {
      shared = pad (B.make None);
      k = pad (B.make k);
      hasher;
      alive;
      local_ordering;
      maintain_hint;
      hint = pad (B.make max_int);
    }

  let get_k t = B.get t.k

  (** The relaxation can be reconfigured at any time; it takes effect on the
      next pivot recomputation (§1: "can be configured at run-time"). *)
  let set_k t k =
    if k < 0 then invalid_arg "Shared_klsm.set_k: k < 0";
    B.set t.k k

  let register ?(obs = Obs.null_handle) ?pool q ~tid ~rng =
    let pool =
      match pool with Some p -> p | None -> Block.Pool.create ~obs ()
    in
    {
      q;
      tid;
      rng;
      obs;
      pool;
      scratch = Block_array.Scratch.create ();
      observed = None;
      snapshot = None;
      on_cas_fail = ignore;
      on_cas_success = ignore;
    }

  (** Current lower bound on the smallest alive key ([max_int] = nothing
      published); only meaningful when the queue was created with
      [~maintain_hint:true]. *)
  let min_hint t = B.get t.hint

  (* Take a fresh consistent snapshot of the shared array. *)
  let refresh_snapshot h =
    let observed = B.get h.q.shared in
    h.observed <- observed;
    h.snapshot <- Option.map Block_array.copy observed

  (* Install the (modified) snapshot; fails iff [shared] moved since the
     snapshot was taken — i.e. iff someone else made progress.  Every block
     of the candidate is marked published BEFORE the CAS: the moment the
     CAS may succeed, another thread can reach them, so they must already
     be barred from recycling.  On failure they stay published — a missed
     recycle, never an aliased one. *)
  let push_snapshot h next =
    (match next with
    | Some arr -> Array.iter Block.publish (Block_array.blocks arr)
    | None -> ());
    (* Hint maintenance (sharded stripes only): pre-lower the hint so the
       window between a winning CAS and its exact hint write never shows a
       too-high bound to concurrent readers; a failed attempt leaves the
       hint conservatively low until the next publish fixes it. *)
    let next_min =
      if not h.q.maintain_hint then max_int
      else
        match next with
        | None -> max_int
        | Some arr ->
            let m = Block_array.min_key arr in
            if m < B.get h.q.hint then B.set h.q.hint m;
            m
    in
    Obs.incr h.obs c_cas;
    B.fault_point "shared.push_snapshot.before";
    let ok = B.compare_and_set h.q.shared h.observed next in
    B.fault_point "shared.push_snapshot.after";
    if ok then begin
      if h.q.maintain_hint then B.set h.q.hint next_min;
      h.on_cas_success ()
    end
    else begin
      Obs.incr h.obs c_cas_fail;
      h.on_cas_fail ()
    end;
    ok

  (** Insert a whole sorted block (the spill path of the distributed LSM and
      the only way items enter the shared component).  Lock-free: retries
      only when another thread's CAS succeeded. *)
  let insert h block =
    let alive = h.q.alive in
    let t0 = Obs.span_begin h.obs in
    (* Pin the incoming block: the retry loop feeds it into [normalize]
       once per attempt, so it must survive every attempt — publishing it
       up front bars the merge cascade from retiring it. *)
    Block.publish block;
    let rec attempt retry =
      if retry then Obs.incr h.obs c_insert_retry;
      refresh_snapshot h;
      let snap =
        match h.snapshot with
        | Some s -> s
        | None -> Block_array.empty ()
      in
      Block_array.insert ~pool:h.pool ~scratch:h.scratch ~alive snap block;
      Obs.incr h.obs c_pivots;
      Block_array.calculate_pivots ~scratch:h.scratch snap ~k:(B.get h.q.k);
      (* On success [observed] is left stale on purpose: the pushed array is
         now shared and immutable, so the next operation must take a fresh
         private copy (the [shared != observed] check forces it). *)
      if not (push_snapshot h (Some snap)) then attempt true
    in
    attempt false;
    Obs.span_end h.obs s_insert t0

  (** Listing 3's [find_min]: return an item that was alive in the calling
      thread's consistent snapshot, or [None] if the queue (as observed) is
      empty.  Encountering a logically deleted minimum triggers a
      consolidation; if that consolidation merged blocks or emptied the
      array, an installation attempt publishes the cleanup for everyone.
      The returned item may have been taken concurrently — the combined
      queue's delete-min loop handles that. *)
  let find_min h =
    let alive = h.q.alive in
    let t0 = Obs.span_begin h.obs in
    let rec loop () =
      if B.get h.q.shared != h.observed then refresh_snapshot h;
      match h.snapshot with
      | None -> None
      | Some snap -> (
          match
            Block_array.find_min ~local_ordering:h.q.local_ordering ~alive
              ~rng:h.rng ~my_tid:h.tid ~hasher:h.q.hasher snap
          with
          | None ->
              (* [find_min] returning [None] means every block looked
                 structurally empty.  Re-verify before publishing emptiness:
                 racing [filled] updates must never cause live items to be
                 disconnected by an over-eager [None] push. *)
              if Option.is_some h.observed then begin
                if Block_array.total_filled snap = 0 then begin
                  Obs.incr h.obs c_empty_publish;
                  ignore (push_snapshot h None);
                  refresh_snapshot h
                end
                else begin
                  (* Stale view: rebuild and retry.  The pivot rescan is
                     skipped when the consolidation changed no block
                     physically — the restored pivots are still sound
                     (candidate ranges only shrink under deletion). *)
                  Obs.incr h.obs c_consolidate;
                  let changed = ref true in
                  ignore
                    (Block_array.consolidate ~pool:h.pool ~scratch:h.scratch
                       ~changed ~alive snap);
                  if !changed then begin
                    Obs.incr h.obs c_pivots;
                    Block_array.calculate_pivots ~scratch:h.scratch snap
                      ~k:(B.get h.q.k)
                  end
                end
              end;
              if Option.is_none h.snapshot then None else loop ()
          | Some item ->
              if alive item then Some item
              else begin
                (* Deleted minimum: clean up, publish if we restructured. *)
                Obs.incr h.obs c_consolidate;
                let changed = ref true in
                let push =
                  Block_array.consolidate ~pool:h.pool ~scratch:h.scratch
                    ~changed ~alive snap
                in
                if Block_array.is_empty snap then begin
                  (* Whether or not our CAS wins, someone published a newer
                     state; re-snapshot either way. *)
                  Obs.incr h.obs c_empty_publish;
                  ignore (push_snapshot h None);
                  refresh_snapshot h
                end
                else begin
                  (* As above: an all-in-place consolidation (the common
                     shape of a delete retry whose CAS raced but whose view
                     is otherwise current) keeps its restored pivots and
                     skips the rescan. *)
                  if !changed then begin
                    Obs.incr h.obs c_pivots;
                    Block_array.calculate_pivots ~scratch:h.scratch snap
                      ~k:(B.get h.q.k)
                  end;
                  if push then begin
                    (* As in [insert]: a successfully pushed snapshot is
                       shared from now on, so leave [observed] stale and let
                       the next iteration re-copy. *)
                    ignore (push_snapshot h (Some snap));
                    refresh_snapshot h
                  end
                end;
                loop ()
              end)
    in
    let r = loop () in
    Obs.span_end h.obs s_find_min t0;
    r

  (** Batched delete (DESIGN.md §17): claim up to [n] smallest alive items
      of the shared array with a {e single} publish CAS.  A bounded
      multiway merge over the block tails (the same cursor walk as
      [calculate_pivots], but alive-filtered) selects the run; the snapshot
      is then rebuilt with the run removed — untouched blocks stay shared,
      a partially-consumed block is replaced by an O(1) same-level
      {!Block.prefix_view} over its own arrays, a fully-consumed one is
      dropped — pivots are recomputed and the result installed.  Only
      items with key [<= limit] are claimed, which is how callers keep
      the run within their own relaxed budget (the sharded composition
      caps at its local minimum and re-certifies each buffered item at
      serve time).

      The winning CAS is the linearization point of the whole run: from
      then on no other thread can reach the claimed items structurally, and
      the follow-up [Item.take] per item only arbitrates against threads
      holding older snapshots — a lost take means that thread consumed the
      item first, and it is silently dropped from the result.

      [stage] (when given) runs with the tentative run {e before} the CAS —
      the chaos harness's crash-accounting window: a thread killed inside
      the publish has the claim recorded whether or not the CAS landed.

      Returns the claimed [(key, value)] run in ascending key order; [[]]
      when nothing was claimable or the CAS lost twice (callers fall back
      to the single-pop path). *)
  let try_pop_batch ?stage ?(limit = max_int) h n =
    let alive = h.q.alive in
    if n <= 0 then []
    else begin
      let rec attempt tries =
        refresh_snapshot h;
        match h.snapshot with
        | None -> []
        | Some snap ->
            let blocks = Block_array.blocks snap in
            let nb = Array.length blocks in
            if nb = 0 then []
            else begin
              (* Multiway scan from each block's minimum ([filled - 1])
                 upward, skipping dead items; collects the ascending run.
                 The key walk streams the resident key mirrors; a block's
                 boxed items are fetched lazily on its first claim, so
                 blocks whose tail never wins the scan — and in particular
                 spilled blocks, whose [items] is a disk fault — are never
                 touched. *)
              let cursor = Array.map (fun b -> Block.filled b - 1) blocks in
              let items = Array.make nb [||] in
              let items_of i =
                if Array.length items.(i) = 0 then
                  items.(i) <- Block.items blocks.(i);
                items.(i)
              in
              let claimed = ref [] (* descending *) and claimed_n = ref 0 in
              let scanning = ref true in
              while !scanning && !claimed_n < n do
                let best = ref (-1) and best_key = ref max_int in
                for i = 0 to nb - 1 do
                  if cursor.(i) >= 0 then begin
                    let key = blocks.(i).Block.keys.(cursor.(i)) in
                    if !best = -1 || key < !best_key then begin
                      best := i;
                      best_key := key
                    end
                  end
                done;
                B.tick nb;
                if !best = -1 || !best_key > limit then scanning := false
                else begin
                  let i = !best in
                  let it = (items_of i).(cursor.(i)) in
                  if alive it then begin
                    claimed := it :: !claimed;
                    incr claimed_n
                  end;
                  cursor.(i) <- cursor.(i) - 1
                end
              done;
              if !claimed_n = 0 then []
              else begin
                (* Rebuild without the consumed tails.  [cursor.(i)] is the
                   last unexamined index, so entries [0 .. cursor] remain: a
                   partially-consumed block is replaced by an O(1)
                   [prefix_view] over the same (published, never-recycled)
                   arrays — the rebuild must not pay a copy of the large
                   prefix to drop the small tail. *)
                let kept = ref [] in
                for i = nb - 1 downto 0 do
                  let b = blocks.(i) in
                  let keep = cursor.(i) + 1 in
                  if keep >= Block.filled b then kept := b :: !kept
                  else if keep > 0 then
                    kept := Block.prefix_view b ~keep :: !kept
                done;
                let run = List.rev !claimed in
                (match stage with
                | Some f ->
                    f (List.map (fun it -> (Item.key it, Item.value it)) run)
                | None -> ());
                let arr = Array.of_list !kept in
                let won =
                  if Array.length arr = 0 then begin
                    Obs.incr h.obs c_empty_publish;
                    push_snapshot h None
                  end
                  else begin
                    Block_array.replace_blocks snap arr;
                    Obs.incr h.obs c_pivots;
                    Block_array.calculate_pivots ~scratch:h.scratch snap
                      ~k:(B.get h.q.k);
                    push_snapshot h (Some snap)
                  end
                in
                if won then begin
                  Obs.incr h.obs c_batch_claim;
                  (* Takes arbitrate against older-snapshot readers: a take
                     that fails with the flag set was consumed by them and
                     drops out of the run.  A failure with the flag still
                     clear is spurious (the chaos engine injects these) and
                     must be retried — the item is already pruned from the
                     published array, so silently dropping it here would
                     lose the payload. *)
                  let rec take_claimed it =
                    if Item.take it then true
                    else if Item.is_taken it then false
                    else take_claimed it
                  in
                  List.filter_map
                    (fun it ->
                      if take_claimed it then
                        Some (Item.key it, Item.value it)
                      else None)
                    run
                end
                else if tries > 0 then attempt (tries - 1)
                else []
              end
            end
      in
      attempt 1
    end

  (** Item count as observed in the current shared array (may include
      logically deleted items; the paper allows [size] to be off by rho). *)
  let approximate_size t =
    match B.get t.shared with
    | None -> 0
    | Some arr -> Block_array.total_filled arr

  let peek_shared t = B.get t.shared

  (** Detach and return every block of the shared array, leaving it empty.
      NOT linearizable — callers must have exclusive access to [t] (used by
      {!Klsm.meld}, which the paper's §4.5 leaves non-linearizable). *)
  let steal_all t =
    if t.maintain_hint then B.set t.hint max_int;
    match B.exchange t.shared None with
    | None -> []
    | Some arr -> Array.to_list (Block_array.blocks arr)
end
